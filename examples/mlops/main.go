// MLOps lifecycle: the full "canonical data science lifecycle" of Figure 1
// plus the paper's forward-looking requirements — AutoML model selection,
// responsible-AI checks (fairness and explainability) gating deployment,
// drift monitoring in production, and an automated retrain + transactional
// redeploy when drift is detected. Every model version lands in the
// registry with its lineage.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/ml"
	"repro/internal/monitor"
	"repro/internal/workload"
)

func main() {
	flock, err := core.New()
	if err != nil {
		log.Fatal(err)
	}
	flock.Access.AssignRole("mlops", "admin")

	// 1. AutoML: pick the model family by cross-validation.
	train, labels := workload.ScoringFrame(workload.ScoringConfig{Rows: 3000, Seed: 42, Regions: 6})
	feat := ml.NewFeaturizer().
		With("age", &ml.StandardScaler{}).
		With("income", &ml.StandardScaler{}).
		With("tenure", &ml.StandardScaler{}).
		With("region", &ml.OneHotEncoder{})
	res, err := ml.AutoML("churn", feat, train, labels, ml.TaskClassification, nil, 4, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("AutoML leaderboard (4-fold CV accuracy):")
	for _, trial := range res.Leaderboard {
		fmt.Printf("  %-10s %.4f\n", trial.Name, trial.Score)
	}

	// 2. Responsible-AI gate: fairness across regions + explainability.
	scores, err := res.Best.PredictBatch(train)
	if err != nil {
		log.Fatal(err)
	}
	fair, err := ml.EvaluateFairness(scores, labels, train.Col("region").Strs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfairness: demographic-parity gap %.3f, equalized-odds gap %.3f\n",
		fair.DemographicParityGap, fair.EqualizedOddsGap)
	for _, g := range fair.Groups {
		fmt.Printf("  %-9s n=%4d positive-rate=%.3f tpr=%.3f fpr=%.3f\n",
			g.Group, g.N, g.PositiveRate, g.TPR, g.FPR)
	}
	imps, err := ml.PipelineImportance(res.Best)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("input-column importance:")
	for _, ci := range imps {
		fmt.Printf("  %-9s %.3f\n", ci.Column, ci.Importance)
	}

	// 3. Deploy v1 with full lineage; baseline the monitor on the
	//    deployment-time score distribution.
	version, err := flock.DeployPipeline("mlops", "churn", res.Best, core.TrainingInfo{
		Script: "mlops_train.go", Tables: []string{"customers"},
		Hyperparams: map[string]string{"winner": res.BestTrial.Name},
		Metrics:     map[string]string{"cv_accuracy": fmt.Sprintf("%.4f", res.BestTrial.Score)},
	})
	if err != nil {
		log.Fatal(err)
	}
	mon, err := monitor.NewScoreMonitor("churn", scores, 2000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndeployed churn v%d (winner: %s)\n", version, res.BestTrial.Name)

	// 4. Production: the population drifts (younger, lower-income
	//    customers flood in); the monitor catches it.
	drifted, _ := workload.ScoringFrame(workload.ScoringConfig{Rows: 1500, Seed: 99, Regions: 6})
	for i, v := range drifted.Col("age").Nums {
		drifted.Col("age").Nums[i] = v*0.5 + 10
	}
	for i, v := range drifted.Col("income").Nums {
		drifted.Col("income").Nums[i] = v * 0.6
	}
	prodScores, err := res.Best.PredictBatch(drifted)
	if err != nil {
		log.Fatal(err)
	}
	mon.Observe(prodScores...)
	status, psi, err := mon.Check()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nproduction drift check: PSI=%.3f status=%s\n", psi, status)

	// 5. Automated response: retrain on fresh data and redeploy — the new
	//    version supersedes v1 atomically, and the registry keeps both.
	if status != monitor.Stable {
		fresh, freshLabels := workload.ScoringFrame(workload.ScoringConfig{Rows: 3000, Seed: 777, Regions: 6})
		feat2 := ml.NewFeaturizer().
			With("age", &ml.StandardScaler{}).
			With("income", &ml.StandardScaler{}).
			With("tenure", &ml.StandardScaler{}).
			With("region", &ml.OneHotEncoder{})
		res2, err := ml.AutoML("churn", feat2, fresh, freshLabels, ml.TaskClassification, nil, 4, 2)
		if err != nil {
			log.Fatal(err)
		}
		v2, err := flock.DeployPipeline("mlops", "churn", res2.Best, core.TrainingInfo{
			Script: "mlops_retrain.go", Tables: []string{"customers"},
			Hyperparams: map[string]string{"winner": res2.BestTrial.Name, "trigger": "drift"},
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("drift response: retrained and promoted churn v%d\n", v2)
	}

	fmt.Println("\nmodel registry:")
	for _, m := range flock.Models.List() {
		fmt.Printf("  %s v%d [%s] by %s\n", m.Name, m.Version, m.Stage, m.Creator)
	}
	fmt.Printf("audit chain intact: %t (%d entries)\n", flock.Audit.Verify() == -1, flock.Audit.Len())
}
