// Sysops: the paper's own in-production example — "models to automate the
// selection of parallelism for large big data jobs ... models occasionally
// predict resource requirements in excess of user-specified caps; business
// rules expressed as policies then override the model" (the Cosmos
// scenario). Demonstrates regression models, policy caps, transactional
// batch application with rollback, and the optimization-level ablation.
// The scoring query runs over the wire: an allocator process connects to
// the serving layer through the Go SDK (pkg/flockclient) and iterates a
// prepared, cursor-paged PREDICT query — the deployment shape the paper's
// Cosmos anecdote implies.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/ml"
	"repro/internal/opt"
	"repro/internal/policy"
	"repro/internal/server"
	"repro/pkg/flockclient"
)

func main() {
	flock, err := core.New()
	if err != nil {
		log.Fatal(err)
	}
	flock.Access.AssignRole("sre", "admin")

	// Historical job telemetry.
	mustExec(flock, `CREATE TABLE jobs
		(id int, input_gb float, stages float, avg_row_bytes float, queue text, user_cap float)`)
	r := ml.NewRand(11)
	queues := []string{"interactive", "batch", "adhoc"}
	for i := 1; i <= 200; i++ {
		q := fmt.Sprintf("INSERT INTO jobs VALUES (%d, %.1f, %.0f, %.0f, '%s', %.0f)",
			i, 1+r.Float64()*500, 1+r.Float64()*20, 50+r.Float64()*500,
			queues[r.Intn(3)], 100+float64(r.Intn(4))*100)
		mustExec(flock, q)
	}

	// Train a token-requirement regressor.
	pipe := trainTokenModel()
	if _, err := flock.DeployPipeline("sre", "tokens", pipe, core.TrainingInfo{
		Script: "sysops_train.go", Tables: []string{"jobs"},
	}); err != nil {
		log.Fatal(err)
	}

	// Policy: never allocate below 10 tokens; the per-job user cap is
	// applied in the transactional action below (caps that depend on the
	// decision's own attributes live in the action, static ones in rules).
	must(flock.Policies.AddRule(policy.Rule{
		Name: "floor", Model: "tokens", CapMin: policy.F(10),
		Reason: "minimum viable allocation",
	}))

	// Serve the governed instance and score the jobs over the wire: the
	// allocator dials in through the SDK and iterates a prepared,
	// cursor-paged PREDICT query (4-row pages here to show the paging).
	srv := server.New(flock, server.Config{MaxWorkers: 4,
		OnSession: func(user string) { flock.Access.AssignRole(user, "admin") }})
	go func() {
		if err := srv.ListenAndServe("127.0.0.1:0"); err != nil {
			log.Fatal(err)
		}
	}()
	for srv.Addr() == "" {
		time.Sleep(5 * time.Millisecond)
	}
	ctx := context.Background()
	client, err := flockclient.Dial(ctx, "http://"+srv.Addr(), "sre",
		flockclient.WithBatchRows(4))
	if err != nil {
		log.Fatal(err)
	}
	stmt, err := client.Prepare(ctx, `SELECT id, user_cap,
		PREDICT(tokens, input_gb, stages, avg_row_bytes, queue) AS predicted
		FROM jobs ORDER BY id LIMIT 10`)
	if err != nil {
		log.Fatal(err)
	}
	rows, err := stmt.Query(ctx)
	if err != nil {
		log.Fatal(err)
	}
	allocations := map[int64]float64{}
	var decisions []policy.Decision
	for rows.Next() {
		var id int64
		var userCap, predicted float64
		if err := rows.Scan(&id, &userCap, &predicted); err != nil {
			log.Fatal(err)
		}
		decisions = append(decisions, policy.Decision{
			Model:  "tokens",
			Entity: fmt.Sprint(id),
			Score:  predicted,
			Attrs:  map[string]float64{"user_cap": userCap, "id": float64(id)},
		})
	}
	if err := rows.Err(); err != nil {
		log.Fatal(err)
	}
	rows.Close()
	outcomes, err := flock.Policies.ApplyBatch(decisions,
		func(o policy.Outcome) error {
			alloc := o.Final
			if cap := o.Decision.Attrs["user_cap"]; alloc > cap {
				alloc = cap // the cap rule of the paper's Cosmos anecdote
			}
			allocations[int64(o.Decision.Attrs["id"])] = alloc
			return nil
		},
		func(o policy.Outcome) error {
			delete(allocations, int64(o.Decision.Attrs["id"]))
			return nil
		})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("token allocations (model prediction vs capped allocation):")
	for _, o := range outcomes {
		id := int64(o.Decision.Attrs["id"])
		capped := ""
		if allocations[id] < o.Decision.Score {
			capped = "  <- capped by policy"
		}
		fmt.Printf("  job %3d: predicted %7.1f -> allocated %7.1f%s\n",
			id, o.Decision.Score, allocations[id], capped)
	}

	// Optimization-level ablation on the full scoring query.
	fmt.Println("\nscoring latency by optimizer level (200 jobs, 50-tree GBM):")
	const q = `SELECT avg(PREDICT(tokens, input_gb, stages, avg_row_bytes, queue)) AS mean FROM jobs`
	for _, level := range []opt.Level{opt.LevelUDF, opt.LevelVectorized, opt.LevelFull} {
		start := time.Now()
		for i := 0; i < 20; i++ {
			if _, err := flock.ExecLevel("sre", q, level); err != nil {
				log.Fatal(err)
			}
		}
		fmt.Printf("  %-12s %8.2f ms / query\n", level, float64(time.Since(start).Microseconds())/20/1000)
	}

	if err := client.Close(ctx); err != nil {
		log.Fatal(err)
	}
	sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		log.Fatal(err)
	}
}

func trainTokenModel() *ml.Pipeline {
	r := ml.NewRand(12)
	n := 4000
	inputGB := make([]float64, n)
	stages := make([]float64, n)
	rowBytes := make([]float64, n)
	queue := make([]string, n)
	y := make([]float64, n)
	queues := []string{"interactive", "batch", "adhoc"}
	for i := 0; i < n; i++ {
		inputGB[i] = 1 + r.Float64()*500
		stages[i] = 1 + r.Float64()*20
		rowBytes[i] = 50 + r.Float64()*500
		queue[i] = queues[r.Intn(3)]
		y[i] = inputGB[i]*0.8 + stages[i]*12 + rowBytes[i]*0.05 + r.NormFloat64()*15
		if queue[i] == "interactive" {
			y[i] *= 1.4
		}
	}
	f := ml.NewFrame().
		AddNumeric("input_gb", inputGB).
		AddNumeric("stages", stages).
		AddNumeric("avg_row_bytes", rowBytes).
		AddCategorical("queue", queue)
	p := ml.NewPipeline("tokens",
		ml.NewFeaturizer().
			With("input_gb", &ml.StandardScaler{}).
			With("stages", &ml.StandardScaler{}).
			With("avg_row_bytes", &ml.StandardScaler{}).
			With("queue", &ml.OneHotEncoder{}),
		&ml.GradientBoosting{NTrees: 50, MaxDepth: 4})
	if err := p.Fit(f, y); err != nil {
		log.Fatal(err)
	}
	return p
}

func mustExec(f *core.Flock, q string) {
	if _, err := f.Exec("sre", q); err != nil {
		log.Fatal(err)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
