// Loan approval: the regulated-industry scenario from the paper's
// enterprise conversations — "a financial institution seeking to streamline
// its loan approval process". Shows the governance stack end to end:
// role-based access to tables AND models, policy rules that override model
// predictions under business constraints, denial auditing, and the
// tamper-evident audit chain.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/governance"
	"repro/internal/ml"
	"repro/internal/policy"
)

func main() {
	flock, err := core.New()
	if err != nil {
		log.Fatal(err)
	}
	flock.Access.AssignRole("dba", "admin")

	// Applicant data with sensitive columns.
	mustExec(flock, "dba", `CREATE TABLE applications
		(id int, income float, debt float, years_employed float, region text, sanctioned int)`)
	mustExec(flock, "dba", `INSERT INTO applications VALUES
		(101, 95000.0, 12000.0, 8.0, 'us-east', 0),
		(102, 43000.0, 39000.0, 1.5, 'eu-north', 0),
		(103, 120000.0, 20000.0, 12.0, 'us-east', 1),
		(104, 67000.0, 15000.0, 4.0, 'latam', 0)`)

	// Train the approval model on synthetic history.
	pipe := trainApprovalModel()
	if _, err := flock.DeployPipeline("dba", "loan_approval", pipe, core.TrainingInfo{
		Script: "loan_train.go", Tables: []string{"applications"},
	}); err != nil {
		log.Fatal(err)
	}

	// Least-privilege roles: loan officers may score but not read raw
	// sanctions data via ad-hoc SQL; auditors may read the audit trail.
	flock.Access.Grant("loan-officer", governance.ActSelect, governance.TableObject("applications"))
	flock.Access.Grant("loan-officer", governance.ActScore, governance.ModelObject("loan_approval"))
	flock.Access.AssignRole("olivia", "loan-officer")

	// An intern without grants is denied — and the denial is audited.
	if _, err := flock.Exec("intern", "SELECT * FROM applications"); err != nil {
		fmt.Printf("intern denied as expected: %v\n", err)
	}

	// Business policies that sit between model and decision (§4.1):
	must(flock.Policies.AddRule(policy.Rule{
		Name: "deny-sanctioned", Model: "loan_approval",
		When: func(d policy.Decision) bool { return d.Attrs["sanctioned"] == 1 },
		Deny: true, Reason: "compliance: sanctions screening",
	}))
	must(flock.Policies.AddRule(policy.Rule{
		Name: "cap-high-debt", Model: "loan_approval",
		When:   func(d policy.Decision) bool { return d.Attrs["debt_ratio"] > 0.5 },
		CapMax: policy.F(0.40), Reason: "risk: debt-to-income above 50%",
	}))

	// Score each application through the governed model-to-decision path.
	apps, err := flock.Exec("olivia",
		"SELECT id, income, debt, sanctioned FROM applications ORDER BY id")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nloan decisions:")
	for _, row := range apps.Rows {
		id := row[0].(int64)
		income := row[1].(float64)
		debt := row[2].(float64)
		sanctioned := float64(row[3].(int64))
		q := fmt.Sprintf(`SELECT PREDICT(loan_approval, income, debt, years_employed, region) AS s
			FROM applications WHERE id = %d`, id)
		outcome, err := flock.Decide("olivia", "loan_approval", q,
			fmt.Sprintf("app-%d", id),
			map[string]float64{"debt_ratio": debt / income, "sanctioned": sanctioned})
		if err != nil {
			log.Fatal(err)
		}
		verdict := "REJECT"
		if outcome.Denied {
			verdict = "BLOCKED"
		} else if outcome.Final >= 0.5 {
			verdict = "APPROVE"
		}
		fmt.Printf("  app-%d: model=%.3f final=%.3f %-8s", id, outcome.Decision.Score, outcome.Final, verdict)
		if outcome.Policy != "" {
			fmt.Printf(" [policy %s: %s]", outcome.Policy, outcome.Reason)
		}
		fmt.Println()
	}

	// The decision history supports end-to-end accountability.
	fmt.Printf("\npolicy overrides so far: %d\n", flock.Policies.Overrides())
	fmt.Printf("audit chain intact: %t (%d entries)\n",
		flock.Audit.Verify() == -1, flock.Audit.Len())
	for _, e := range flock.Audit.Entries() {
		if !e.Allowed {
			fmt.Printf("  audited denial: user=%s object=%s\n", e.User, e.Object)
		}
	}
}

func trainApprovalModel() *ml.Pipeline {
	r := ml.NewRand(3)
	n := 3000
	income := make([]float64, n)
	debt := make([]float64, n)
	years := make([]float64, n)
	region := make([]string, n)
	y := make([]float64, n)
	names := []string{"us-east", "eu-north", "apac", "latam"}
	for i := 0; i < n; i++ {
		income[i] = 25000 + r.Float64()*150000
		debt[i] = r.Float64() * 60000
		years[i] = r.Float64() * 20
		region[i] = names[r.Intn(4)]
		score := (income[i]-80000)/50000 - (debt[i]/income[i])*2 + years[i]/10
		if score > 0 {
			y[i] = 1
		}
	}
	f := ml.NewFrame().
		AddNumeric("income", income).
		AddNumeric("debt", debt).
		AddNumeric("years_employed", years).
		AddCategorical("region", region)
	p := ml.NewPipeline("loan_approval",
		ml.NewFeaturizer().
			With("income", &ml.StandardScaler{}).
			With("debt", &ml.StandardScaler{}).
			With("years_employed", &ml.StandardScaler{}).
			With("region", &ml.OneHotEncoder{}),
		&ml.GradientBoosting{NTrees: 50, MaxDepth: 3, Loss: ml.LossLogistic})
	if err := p.Fit(f, y); err != nil {
		log.Fatal(err)
	}
	return p
}

func mustExec(f *core.Flock, user, q string) {
	if _, err := f.Exec(user, q); err != nil {
		log.Fatal(err)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
