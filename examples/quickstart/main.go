// Quickstart: the core Flock loop — load data into the engine, train a
// pipeline "in the cloud", deploy it as a first-class model, score it in
// SQL with PREDICT, then serve the whole thing over HTTP and consume it
// through the Go SDK (pkg/flockclient): sessions, governed queries, and a
// cursor-paged result iterator (see docs/server.md and docs/api.md).
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/ml"
	"repro/internal/server"
	"repro/pkg/flockclient"
)

func main() {
	flock, err := core.New()
	if err != nil {
		log.Fatal(err)
	}
	flock.Access.AssignRole("demo", "admin")

	// 1. Operational data lives in the DBMS.
	mustExec(flock, "CREATE TABLE customers (id int, age float, income float, region text)")
	mustExec(flock, `INSERT INTO customers VALUES
		(1, 62.0, 180000.0, 'us-east'), (2, 24.0, 32000.0, 'apac'),
		(3, 47.0, 95000.0, 'eu-north'), (4, 55.0, 120000.0, 'us-east'),
		(5, 31.0, 45000.0, 'latam'),   (6, 68.0, 150000.0, 'eu-north')`)

	// 2. Train a pipeline (this is the "cloud" part — any process works,
	//    the model is just derived data).
	r := ml.NewRand(1)
	n := 2000
	ages := make([]float64, n)
	incomes := make([]float64, n)
	regions := make([]string, n)
	y := make([]float64, n)
	names := []string{"us-east", "eu-north", "apac", "latam"}
	for i := range ages {
		ages[i] = 20 + r.Float64()*55
		incomes[i] = 20000 + r.Float64()*180000
		regions[i] = names[r.Intn(4)]
		if (ages[i]-40)/20+(incomes[i]-90000)/80000 > 0 {
			y[i] = 1
		}
	}
	frame := ml.NewFrame().
		AddNumeric("age", ages).
		AddNumeric("income", incomes).
		AddCategorical("region", regions)
	pipe := ml.NewPipeline("churn",
		ml.NewFeaturizer().
			With("age", &ml.StandardScaler{}).
			With("income", &ml.StandardScaler{}).
			With("region", &ml.OneHotEncoder{}),
		&ml.GradientBoosting{NTrees: 40, MaxDepth: 3, Loss: ml.LossLogistic})
	if err := pipe.Fit(frame, y); err != nil {
		log.Fatal(err)
	}

	// 3. Deploy: versioned, governed, provenance-tracked.
	version, err := flock.DeployPipeline("demo", "churn", pipe, core.TrainingInfo{
		Script: "quickstart.go", Tables: []string{"customers"},
		Hyperparams: map[string]string{"n_trees": "40", "max_depth": "3"},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deployed model churn v%d\n\n", version)

	// 4. Score in the DBMS — no data leaves the engine.
	res, err := flock.Exec("demo", `
		SELECT id, region, PREDICT(churn, age, income, region) AS risk
		FROM customers WHERE PREDICT(churn, age, income, region) > 0.5
		ORDER BY risk DESC`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("high-risk customers (scored in-DB):")
	for _, row := range res.Rows {
		fmt.Printf("  id=%v region=%-9v risk=%.3f\n", row[0], row[1], row[2])
	}

	// 5. Everything was audited and captured.
	fmt.Printf("\naudit entries: %d (chain intact: %t)\n",
		flock.Audit.Len(), flock.Audit.Verify() == -1)
	nodes, edges := flock.Catalog.Size()
	fmt.Printf("provenance catalog: %d nodes, %d edges\n", nodes, edges)

	// 6. Serve it and consume it through the SDK: the same governed loop
	//    over HTTP — sessions carry the user identity into RBAC/audit, and
	//    SELECTs page through server-side cursors, so client memory stays
	//    O(page) no matter the result size.
	serveWalkthrough(flock)
}

// serveWalkthrough starts the serving layer in-process, then drives it
// with the public Go SDK: dial (login), a materialized count, a
// cursor-paged iteration, and a clean shutdown.
func serveWalkthrough(flock *core.Flock) {
	srv := server.New(flock, server.Config{
		MaxWorkers:   4,
		Authenticate: server.StaticTokenAuth(map[string]string{"demo": "s3cret"}),
	})
	go func() {
		if err := srv.ListenAndServe("127.0.0.1:0"); err != nil {
			log.Fatal(err)
		}
	}()
	for srv.Addr() == "" {
		time.Sleep(5 * time.Millisecond)
	}
	base := "http://" + srv.Addr()
	fmt.Printf("\nserving on %s\n", base)

	ctx := context.Background()
	client, err := flockclient.Dial(ctx, base, "demo",
		flockclient.WithToken("s3cret"), flockclient.WithBatchRows(2))
	if err != nil {
		log.Fatal(err)
	}

	res, err := client.Exec(ctx,
		"SELECT count(*) FROM customers WHERE PREDICT(churn, age, income, region) > 0.5")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("high-risk count over HTTP: %v\n", res.Rows[0][0])

	// Cursor-paged iteration (2-row pages here, to show the paging; real
	// clients use the 4096 default): the query runs once server-side and
	// the iterator fetches pages on demand.
	rows, err := client.Query(ctx,
		"SELECT id, region, PREDICT(churn, age, income, region) AS risk FROM customers ORDER BY risk DESC")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("risk ranking, paged through a server-side cursor:")
	for rows.Next() {
		var id int64
		var region string
		var risk float64
		if err := rows.Scan(&id, &region, &risk); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  id=%d region=%-9s risk=%.3f\n", id, region, risk)
	}
	if err := rows.Err(); err != nil {
		log.Fatal(err)
	}
	rows.Close()

	if err := client.Close(ctx); err != nil {
		log.Fatal(err)
	}
	sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("session closed, server drained and shut down cleanly")
}

func mustExec(f *core.Flock, q string) {
	if _, err := f.Exec("demo", q); err != nil {
		log.Fatal(err)
	}
}
