// Healthcare: the paper's motivating regulated scenario — "ML models may
// be trained on sensitive medical data, and make predictions that determine
// patient treatments". Shows the provenance story end to end: a Python
// training script is statically analyzed and linked into the catalog, the
// model is deployed and scored in-DB, lineage is traced from a scoring
// query all the way back to the training tables, and a schema change
// triggers impact analysis over the affected models.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/governance"
	"repro/internal/ml"
	"repro/internal/provenance"
	"repro/internal/pyprov"
)

func main() {
	flock, err := core.New()
	if err != nil {
		log.Fatal(err)
	}
	flock.Access.AssignRole("dba", "admin")

	// Sensitive clinical tables; access is tightly scoped.
	mustExec(flock, `CREATE TABLE patients (id int, age float, bmi float, smoker text, hba1c float)`)
	mustExec(flock, `CREATE TABLE admissions (patient_id int, days float, readmitted int)`)
	r := ml.NewRand(21)
	smokers := []string{"yes", "no", "former"}
	for i := 1; i <= 150; i++ {
		mustExec(flock, fmt.Sprintf("INSERT INTO patients VALUES (%d, %.1f, %.1f, '%s', %.1f)",
			i, 25+r.Float64()*60, 18+r.Float64()*22, smokers[r.Intn(3)], 4.5+r.Float64()*7))
	}

	// The data-science side: a Python training script. The pyprov module
	// statically identifies the model, its hyperparameters, and — through
	// the read_sql call — the exact DBMS tables it trained on.
	script := `import pandas as pd
from sklearn.ensemble import GradientBoostingClassifier
from sklearn.metrics import roc_auc_score

df = pd.read_sql('SELECT p.age, p.bmi, p.smoker, p.hba1c, a.readmitted FROM patients p JOIN admissions a ON p.id = a.patient_id', conn)
X = df[['age', 'bmi', 'smoker', 'hba1c']]
y = df['readmitted']
model = GradientBoostingClassifier(n_estimators=60, max_depth=3)
model.fit(X, y)
auc = roc_auc_score(y, model.predict(X))
`
	analysis := pyprov.NewAnalyzer().Analyze("readmission_train.py", script)
	fmt.Printf("static analysis of the training script:\n")
	for _, m := range analysis.Models {
		fmt.Printf("  model %q = %s (trained: %t)\n", m.Var, m.Class, m.Trained)
		fmt.Printf("  hyperparameters: %v\n", m.Hyperparams)
		for _, d := range m.Datasets {
			fmt.Printf("  training data: %s tables=%v\n", d.Kind, d.Tables)
		}
	}
	analysis.LinkToCatalog(flock.Prov)

	// Deploy the (equivalently trained) Go model with matching provenance.
	pipe := trainReadmissionModel()
	if _, err := flock.DeployPipeline("dba", "readmission", pipe, core.TrainingInfo{
		Script:      "readmission_train.py",
		Tables:      []string{"patients", "admissions"},
		Hyperparams: map[string]string{"n_estimators": "60", "max_depth": "3"},
		Metrics:     map[string]string{"auc": "0.93"},
	}); err != nil {
		log.Fatal(err)
	}

	// A clinician role can score but never read raw tables.
	flock.Access.Grant("clinician", governance.ActScore, governance.ModelObject("readmission"))
	flock.Access.Grant("clinician", governance.ActSelect, governance.TableObject("patients"))
	flock.Access.AssignRole("dr-chen", "clinician")

	res, err := flock.Exec("dr-chen", `SELECT id, PREDICT(readmission, age, bmi, smoker, hba1c) AS risk
		FROM patients WHERE PREDICT(readmission, age, bmi, smoker, hba1c) > 0.7 ORDER BY risk DESC LIMIT 5`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nhighest readmission risks (scored in-DB, never exported):")
	for _, row := range res.Rows {
		fmt.Printf("  patient %v: %.3f\n", row[0], row[1])
	}

	// GDPR-style question: where did the model behind these predictions
	// come from? Walk the lineage from the scoring query downstream.
	queries := flock.Catalog.EntitiesOfType(provenance.TypeQuery)
	scoring := queries[len(queries)-1]
	fmt.Println("\nlineage of the scoring decision:")
	seen := map[string]bool{}
	for _, e := range flock.Catalog.Lineage(scoring.ID, provenance.Downstream, 0) {
		key := string(e.Type) + ":" + e.Name
		if seen[key] {
			continue // versions of the same entity collapse for display
		}
		seen[key] = true
		if e.Type == provenance.TypeModel || e.Type == provenance.TypeTable ||
			e.Type == provenance.TypeScript || e.Type == provenance.TypeHyperparam {
			fmt.Printf("  %-10s %s\n", e.Type, e.Name)
		}
	}

	// Impact analysis: the lab changes the hba1c assay — which models must
	// be revalidated?
	fmt.Println("\nimpact analysis for a change to table 'patients':")
	for _, m := range flock.Prov.ImpactedModels("patients") {
		fmt.Printf("  model requiring revalidation: %s\n", m.Name)
	}

	fmt.Printf("\naudit chain intact: %t\n", flock.Audit.Verify() == -1)
}

func trainReadmissionModel() *ml.Pipeline {
	r := ml.NewRand(22)
	n := 3000
	age := make([]float64, n)
	bmi := make([]float64, n)
	smoker := make([]string, n)
	hba1c := make([]float64, n)
	y := make([]float64, n)
	smokers := []string{"yes", "no", "former"}
	for i := 0; i < n; i++ {
		age[i] = 25 + r.Float64()*60
		bmi[i] = 18 + r.Float64()*22
		smoker[i] = smokers[r.Intn(3)]
		hba1c[i] = 4.5 + r.Float64()*7
		risk := (age[i]-55)/20 + (bmi[i]-28)/8 + (hba1c[i]-7)/2
		if smoker[i] == "yes" {
			risk += 0.8
		}
		if risk > 0 {
			y[i] = 1
		}
	}
	f := ml.NewFrame().
		AddNumeric("age", age).
		AddNumeric("bmi", bmi).
		AddCategorical("smoker", smoker).
		AddNumeric("hba1c", hba1c)
	p := ml.NewPipeline("readmission",
		ml.NewFeaturizer().
			With("age", &ml.StandardScaler{}).
			With("bmi", &ml.StandardScaler{}).
			With("smoker", &ml.OneHotEncoder{}).
			With("hba1c", &ml.StandardScaler{}),
		&ml.GradientBoosting{NTrees: 60, MaxDepth: 3, Loss: ml.LossLogistic})
	if err := p.Fit(f, y); err != nil {
		log.Fatal(err)
	}
	return p
}

func mustExec(f *core.Flock, q string) {
	if _, err := f.Exec("dba", q); err != nil {
		log.Fatal(err)
	}
}
