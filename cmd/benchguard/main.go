// Command benchguard turns `go test -bench` output into a committed JSON
// baseline and fails CI when a benchmark regresses against it.
//
//	go test -run '^$' -bench . -benchtime=100ms . | tee bench.out
//	benchguard -emit bench.out -out BENCH_pr4.json
//	benchguard -compare BENCH_pr4_baseline.json -current BENCH_pr4.json -threshold 0.20
//
// Compare checks ns/op per benchmark: current > baseline*(1+threshold) is a
// regression. Benchmarks present on only one side are reported but never
// fail the run (suites evolve), and sub-10µs benchmarks are skipped as
// noise-dominated.
//
// Because the committed baseline and the CI runner are different machines,
// -normalize <benchmark> divides every ns/op by that anchor benchmark's
// ns/op from the same file before comparing: absolute machine speed
// cancels out and only relative regressions (this code got slower relative
// to the rest of the engine) trip the threshold.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's parsed measurements.
type Result struct {
	NsPerOp float64            `json:"ns_per_op"`
	Iters   int64              `json:"iters"`
	Metrics map[string]float64 `json:"metrics,omitempty"` // extra ReportMetric pairs (allocs/op, records/fsync, ...)
}

func main() {
	emit := flag.String("emit", "", "parse `go test -bench` output from this file (- for stdin) and write JSON")
	out := flag.String("out", "BENCH.json", "output path for -emit")
	baseline := flag.String("compare", "", "baseline JSON to compare against")
	current := flag.String("current", "", "current JSON for -compare")
	threshold := flag.Float64("threshold", 0.20, "allowed ns/op regression fraction")
	minNs := flag.Float64("min-ns", 10_000, "ignore benchmarks faster than this (noise floor)")
	normalize := flag.String("normalize", "", "anchor benchmark: compare ns/op ratios against it instead of absolute ns/op (cross-machine baselines)")
	skip := flag.String("skip", "", "regexp of benchmark names to exclude from the compare (shape-dependent entries, e.g. multi-worker sweeps whose scaling depends on core count)")
	flag.Parse()

	switch {
	case *emit != "":
		results, err := parseBench(*emit)
		if err != nil {
			fatal(err)
		}
		if len(results) == 0 {
			fatal(fmt.Errorf("no benchmark lines found in %s", *emit))
		}
		blob, err := json.MarshalIndent(results, "", "  ")
		if err != nil {
			fatal(err)
		}
		blob = append(blob, '\n')
		if err := os.WriteFile(*out, blob, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("benchguard: wrote %d benchmarks to %s\n", len(results), *out)
	case *baseline != "":
		if *current == "" {
			fatal(fmt.Errorf("-compare requires -current"))
		}
		if err := compare(*baseline, *current, *threshold, *minNs, *normalize, *skip); err != nil {
			fatal(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchguard:", err)
	os.Exit(1)
}

// parseBench extracts benchmark lines of the form
//
//	BenchmarkName/sub=1-8   123   45678 ns/op   12 B/op   3 allocs/op   4.5 extra-metric
func parseBench(path string) (map[string]Result, error) {
	var r *os.File
	if path == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer func() { _ = f.Close() }()
		r = f
	}
	results := map[string]Result{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		// The -N GOMAXPROCS suffix varies by runner; strip it so baselines
		// compare across machines.
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		res := Result{Iters: iters, Metrics: map[string]float64{}}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				res.NsPerOp = v
			default:
				res.Metrics[unit] = v
			}
		}
		if res.NsPerOp > 0 {
			results[name] = res
		}
	}
	return results, sc.Err()
}

func compare(basePath, curPath string, threshold, minNs float64, normalize, skip string) error {
	base, err := loadJSON(basePath)
	if err != nil {
		return err
	}
	cur, err := loadJSON(curPath)
	if err != nil {
		return err
	}
	var skipRe *regexp.Regexp
	if skip != "" {
		skipRe, err = regexp.Compile(skip)
		if err != nil {
			return fmt.Errorf("bad -skip pattern: %w", err)
		}
	}
	baseAnchor, curAnchor := 1.0, 1.0
	if normalize != "" {
		b, ok1 := base[normalize]
		c, ok2 := cur[normalize]
		if !ok1 || !ok2 {
			return fmt.Errorf("normalize anchor %q missing from baseline or current run", normalize)
		}
		baseAnchor, curAnchor = b.NsPerOp, c.NsPerOp
		fmt.Printf("benchguard: normalizing by %s (baseline %.0f ns/op, current %.0f ns/op)\n",
			normalize, baseAnchor, curAnchor)
	}
	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)
	var regressions []string
	for _, name := range names {
		if name == normalize {
			continue
		}
		if skipRe != nil && skipRe.MatchString(name) {
			fmt.Printf("benchguard: %-60s skipped (-skip)\n", name)
			continue
		}
		b := base[name]
		c, ok := cur[name]
		if !ok {
			fmt.Printf("benchguard: %-60s missing from current run (skipped)\n", name)
			continue
		}
		if b.NsPerOp < minNs {
			fmt.Printf("benchguard: %-60s %12.0f -> %12.0f ns/op (below noise floor, skipped)\n", name, b.NsPerOp, c.NsPerOp)
			continue
		}
		ratio := (c.NsPerOp / curAnchor) / (b.NsPerOp / baseAnchor)
		status := "ok"
		if ratio > 1+threshold {
			status = "REGRESSION"
			regressions = append(regressions, fmt.Sprintf("%s: %.0f -> %.0f ns/op (%.0f%% slower, normalized)",
				name, b.NsPerOp, c.NsPerOp, (ratio-1)*100))
		}
		fmt.Printf("benchguard: %-60s %12.0f -> %12.0f ns/op (%+5.1f%% normalized) %s\n",
			name, b.NsPerOp, c.NsPerOp, (ratio-1)*100, status)
	}
	for name := range cur {
		if _, ok := base[name]; !ok {
			fmt.Printf("benchguard: %-60s new benchmark (no baseline)\n", name)
		}
	}
	if len(regressions) > 0 {
		return fmt.Errorf("%d benchmark(s) regressed more than %.0f%%:\n  %s",
			len(regressions), threshold*100, strings.Join(regressions, "\n  "))
	}
	fmt.Println("benchguard: no regressions")
	return nil
}

func loadJSON(path string) (map[string]Result, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	out := map[string]Result{}
	if err := json.Unmarshal(blob, &out); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return out, nil
}
