// Command flock-smoke drives a live flock-serve instance through the Go
// SDK (pkg/flockclient) and exits non-zero on any failure — the CI smoke
// for the wire protocol: session auth, materialized queries, cursor
// pagination (small pages force many fetches), prepared statements run
// twice, and the PREDICT helper.
//
//	$ flock-serve -addr 127.0.0.1:8080 -rows 20000 &
//	$ flock-smoke -url http://127.0.0.1:8080 -rows 20000
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"repro/pkg/flockclient"
)

func main() {
	url := os.Getenv("FLOCK_URL")
	rows := 20000
	args := os.Args[1:]
	for i := 0; i < len(args); i++ {
		switch args[i] {
		case "-url":
			i++
			url = args[i]
		case "-rows":
			i++
			fmt.Sscanf(args[i], "%d", &rows)
		default:
			log.Fatalf("flock-smoke: unknown flag %q", args[i])
		}
	}
	if url == "" {
		log.Fatal("flock-smoke: -url (or FLOCK_URL) is required")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	c, err := flockclient.Dial(ctx, url, "smoke", flockclient.WithBatchRows(1000))
	if err != nil {
		log.Fatalf("flock-smoke: dial: %v", err)
	}
	defer c.Close(context.Background())
	if err := c.Ping(ctx); err != nil {
		log.Fatalf("flock-smoke: ping: %v", err)
	}

	// 1. Materialized count.
	res, err := c.Exec(ctx, "SELECT count(*) AS n FROM customers")
	if err != nil {
		log.Fatalf("flock-smoke: count: %v", err)
	}
	n, ok := res.Rows[0][0].(int64)
	if !ok || int(n) != rows {
		log.Fatalf("flock-smoke: count = %v, want %d", res.Rows[0][0], rows)
	}
	fmt.Printf("count ok: %d rows\n", n)

	// 2. Cursor pagination: 1000-row pages over the whole table, ids in
	// order, exact total — the query must run exactly once server-side.
	rs, err := c.Query(ctx, "SELECT id, income FROM customers")
	if err != nil {
		log.Fatalf("flock-smoke: query: %v", err)
	}
	seen, lastID := 0, int64(-1)
	for rs.Next() {
		var id int64
		var income float64
		if err := rs.Scan(&id, &income); err != nil {
			log.Fatalf("flock-smoke: scan: %v", err)
		}
		if id <= lastID {
			log.Fatalf("flock-smoke: ids out of order (%d after %d)", id, lastID)
		}
		lastID = id
		seen++
	}
	if err := rs.Err(); err != nil {
		log.Fatalf("flock-smoke: iterate: %v", err)
	}
	rs.Close()
	if seen != rows {
		log.Fatalf("flock-smoke: paged %d rows, want %d", seen, rows)
	}
	fmt.Printf("pagination ok: %d rows in %d-row pages\n", seen, 1000)

	// 3. Prepared statement, executed twice.
	stmt, err := c.Prepare(ctx, "SELECT region, count(*) AS n FROM customers GROUP BY region ORDER BY region")
	if err != nil {
		log.Fatalf("flock-smoke: prepare: %v", err)
	}
	for run := 0; run < 2; run++ {
		rs, err := stmt.Query(ctx)
		if err != nil {
			log.Fatalf("flock-smoke: prepared run %d: %v", run, err)
		}
		groups := 0
		for rs.Next() {
			var region string
			var cnt int64
			if err := rs.Scan(&region, &cnt); err != nil {
				log.Fatalf("flock-smoke: prepared scan: %v", err)
			}
			groups++
		}
		if err := rs.Err(); err != nil {
			log.Fatalf("flock-smoke: prepared iterate: %v", err)
		}
		rs.Close()
		if groups == 0 {
			log.Fatalf("flock-smoke: prepared run %d returned no groups", run)
		}
	}
	fmt.Println("prepared ok: 2 runs")

	// 4. In-DBMS inference through the PREDICT helper.
	rs, err = c.PredictAbove(ctx, "churn",
		"customers", []string{"age", "income", "tenure", "region", "notes"}, 0.5)
	if err != nil {
		log.Fatalf("flock-smoke: predict: %v", err)
	}
	scored := 0
	for rs.Next() {
		var score float64
		if err := rs.Scan(&score); err != nil {
			log.Fatalf("flock-smoke: predict scan: %v", err)
		}
		if score <= 0.5 {
			log.Fatalf("flock-smoke: score %v escaped the threshold", score)
		}
		scored++
	}
	if err := rs.Err(); err != nil {
		log.Fatalf("flock-smoke: predict iterate: %v", err)
	}
	rs.Close()
	fmt.Printf("predict ok: %d rows above threshold\n", scored)

	fmt.Println("flock-smoke: all checks passed")
}
