// Command flock-experiments regenerates every table and figure from the
// paper's evaluation and prints them in the paper's layout.
//
// Usage:
//
//	flock-experiments -run all            # everything (fig4 at full scale)
//	flock-experiments -run fig4 -max 100000
//	flock-experiments -run fig2,fig3,prov-sql,prov-py
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
	"repro/internal/landscape"
)

func main() {
	run := flag.String("run", "all", "comma-separated experiments: fig2, fig3, fig4, prov-sql, prov-py")
	maxRows := flag.Int("max", 1_000_000, "largest Figure-4 dataset size")
	trees := flag.Int("trees", 100, "GBM ensemble size for Figure 4")
	reps := flag.Int("reps", 3, "repetitions per timing (best-of)")
	flag.Parse()

	want := map[string]bool{}
	for _, name := range strings.Split(*run, ",") {
		want[strings.TrimSpace(name)] = true
	}
	all := want["all"]

	if all || want["fig2"] {
		if err := runFig2(); err != nil {
			fail(err)
		}
	}
	if all || want["fig3"] {
		runFig3()
	}
	if all || want["fig4"] {
		if err := runFig4(*maxRows, *trees, *reps); err != nil {
			fail(err)
		}
	}
	if all || want["prov-sql"] {
		if err := runProvSQL(); err != nil {
			fail(err)
		}
	}
	if all || want["prov-py"] {
		runProvPy()
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "flock-experiments:", err)
	os.Exit(1)
}

func runFig2() error {
	fmt.Println("== Figure 2: notebook coverage (%) for top-K packages ==")
	res := experiments.RunFigure2()
	fmt.Printf("%8s  %10s  %10s\n", "K", "2017", "2019")
	for _, r := range res.Rows {
		fmt.Printf("%8d  %9.1f%%  %9.1f%%\n", r.K, r.Coverage2017*100, r.Coverage2019*100)
	}
	fmt.Printf("packages: %d (2017) -> %d (2019), %.1fx growth  [paper: \"3x more packages\"]\n",
		res.Packages2017, res.Packages2019, float64(res.Packages2019)/float64(res.Packages2017))
	fmt.Printf("top-10 coverage gain: +%.1f points             [paper: \"top10: 5%% more coverage\"]\n\n",
		res.Top10Delta)
	return nil
}

func runFig3() {
	fmt.Println("== Figure 3: ML systems feature matrix ==")
	fmt.Print(landscape.Render())
	f := landscape.Analyze()
	fmt.Printf("\ntrend 1: proprietary data-management score %.2f vs third-party %.2f\n",
		f.ProprietaryDataMgmt, f.ThirdPartyDataMgmt)
	fmt.Printf("trend 2: best third-party full-matrix coverage %.0f%% (%s) — no complete offering\n\n",
		f.MaxCoverage*100, f.BestSystem)
}

func runFig4(maxRows, trees, reps int) error {
	fmt.Println("== Figure 4 (left): total inference time (ms) vs dataset size ==")
	sizes := []int{1000, 10000, 100000, 1000000}
	var use []int
	for _, s := range sizes {
		if s <= maxRows {
			use = append(use, s)
		}
	}
	rows, err := experiments.RunFigure4(use, trees, reps)
	if err != nil {
		return err
	}
	fmt.Printf("%10s  %12s  %12s  %12s  %12s  %10s\n",
		"rows", "scikit-learn", "ORT", "SONNX", "SONNX-ext", "qualifying")
	for _, r := range rows {
		fmt.Printf("%10d  %12.2f  %12.2f  %12.2f  %12.2f  %10d\n",
			r.Rows, ms(r.Sklearn), ms(r.ORT), ms(r.SONNX), ms(r.SONNXExt), r.Count)
	}
	fmt.Println("\nspeedups over standalone ORT (paper: \"5x to 24x over standalone\"):")
	for _, r := range rows {
		fmt.Printf("%10d rows:  SONNX %5.1fx   SONNX-ext %5.1fx\n",
			r.Rows, r.ORT.Seconds()/r.SONNX.Seconds(), r.ORT.Seconds()/r.SONNXExt.Seconds())
	}

	fmt.Println("\n== Figure 4 (right): optimization impact at 100K rows ==")
	n := 100000
	if n > maxRows {
		n = maxRows
	}
	panel, err := experiments.RunFigure4Speedup(n, trees, reps)
	if err != nil {
		return err
	}
	for _, p := range panel {
		fmt.Printf("%-36s %10.2f ms   %6.1fx\n", p.Config, ms(p.Elapsed), p.Speedup)
	}
	fmt.Println()
	return nil
}

func ms(d interface{ Seconds() float64 }) float64 { return d.Seconds() * 1000 }

func runProvSQL() error {
	fmt.Println("== Table 1: SQL provenance capture ==")
	rows, err := experiments.RunProvenanceCapture(2208, 2200)
	if err != nil {
		return err
	}
	fmt.Printf("%-8s  %8s  %12s  %18s  %14s\n", "Dataset", "#Queries", "Latency", "Size(nodes+edges)", "After compress")
	for _, r := range rows {
		fmt.Printf("%-8s  %8d  %12s  %18d  %14d\n",
			r.Dataset, r.Queries, r.Latency.Round(1000), r.Nodes+r.Edges, r.Compressed)
	}
	fmt.Println("(paper reported 22,330 / 34,785 nodes+edges and ~50ms/query against a remote Atlas;")
	fmt.Println(" our catalog is in-process, so latency is far lower while graph shape tracks the paper)")
	fmt.Println()
	return nil
}

func runProvPy() {
	fmt.Println("== Table 2: Python provenance coverage ==")
	fmt.Printf("%-10s  %8s  %14s  %24s\n", "Dataset", "#Scripts", "%Models", "%Training Datasets")
	for _, r := range experiments.RunPyProvCoverage() {
		fmt.Printf("%-10s  %8d  %13.0f%%  %23.0f%%\n", r.Dataset, r.Scripts, r.ModelsPct, r.DatasetsPct)
	}
	fmt.Println("(paper: Kaggle 49 scripts 95%/61%; Microsoft 37 scripts 100%/100%)")
	fmt.Println()
}
