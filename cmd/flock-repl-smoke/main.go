// Command flock-repl-smoke drives a two-node flock deployment — a leader
// and a read replica — through the Go SDK and exits non-zero on any
// failure: the CI smoke for replication. It writes rows through the
// leader, waits for the replica's applied LSN (flock_repl_apply_lsn) to
// converge on the leader's WAL position (flock_wal_last_lsn), reads the
// rows back through the replica (both directly and via the SDK's
// read-endpoint routing), and asserts the replica rejects writes.
//
//	$ flock-serve -addr 127.0.0.1:8080 -data-dir /tmp/leader -rows 0 &
//	$ flock-serve -addr 127.0.0.1:8081 -data-dir /tmp/replica \
//	      -replica-of http://127.0.0.1:8080 &
//	$ flock-repl-smoke -leader http://127.0.0.1:8080 -replica http://127.0.0.1:8081
//
// With -expect-chaos (the fault-armed CI variant: FLOCK_FAULTS=repl.ship
// on the leader, repl.stream on the replica) it additionally requires the
// failpoints to have fired — torn batches shipped, reconnects happened —
// proving convergence survived real stream interruptions, not an
// uneventful run.
//
// Two further modes drive the failover drill (the CI three-node smoke):
//
//	-mode failover -kill-pid P   write acked rows under quorum acks, kill
//	                             -9 the leader process, promote the
//	                             replica via /v1/admin/promote, and verify
//	                             every acked write survives exactly once
//	                             on the new leader while the SDK's
//	                             WithFailover follows the move;
//	-mode fenced -old URL        after the workflow restarts the old
//	                             leader with -repl-peers, assert it came
//	                             back fenced (role gauge -1, writes
//	                             refused), repoint it at the new leader,
//	                             and require full convergence.
package main

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/pkg/flockclient"
)

func main() {
	leaderURL := ""
	replicaURL := ""
	oldURL := ""
	mode := "replica"
	rows := 500
	killPID := 0
	expectChaos := false
	args := os.Args[1:]
	for i := 0; i < len(args); i++ {
		switch args[i] {
		case "-leader":
			i++
			leaderURL = args[i]
		case "-replica":
			i++
			replicaURL = args[i]
		case "-old":
			i++
			oldURL = args[i]
		case "-mode":
			i++
			mode = args[i]
		case "-rows":
			i++
			fmt.Sscanf(args[i], "%d", &rows)
		case "-kill-pid":
			i++
			fmt.Sscanf(args[i], "%d", &killPID)
		case "-expect-chaos":
			expectChaos = true
		default:
			log.Fatalf("flock-repl-smoke: unknown flag %q", args[i])
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()

	switch mode {
	case "replica":
	case "failover":
		if leaderURL == "" || replicaURL == "" || killPID == 0 {
			log.Fatal("flock-repl-smoke: -mode failover requires -leader, -replica, -kill-pid")
		}
		runFailover(ctx, leaderURL, replicaURL, rows, killPID, expectChaos)
		return
	case "fenced":
		if leaderURL == "" || oldURL == "" {
			log.Fatal("flock-repl-smoke: -mode fenced requires -leader (the new one) and -old")
		}
		runFenced(ctx, oldURL, leaderURL)
		return
	default:
		log.Fatalf("flock-repl-smoke: unknown -mode %q", mode)
	}
	if leaderURL == "" || replicaURL == "" {
		log.Fatal("flock-repl-smoke: -leader and -replica are required")
	}

	// 1. Write through the leader via the SDK, read-endpoint routed at the
	// replica (Query goes to the replica, Exec stays on the leader).
	c, err := flockclient.Dial(ctx, leaderURL, "repl-smoke",
		flockclient.WithReadEndpoint(replicaURL))
	if err != nil {
		log.Fatalf("flock-repl-smoke: dial leader: %v", err)
	}
	defer c.Close(context.Background())
	if _, err := c.Exec(ctx, "CREATE TABLE smoke (id int, v int)"); err != nil {
		log.Fatalf("flock-repl-smoke: create: %v", err)
	}
	for i := 0; i < rows; i++ {
		if _, err := c.Exec(ctx, fmt.Sprintf("INSERT INTO smoke VALUES (%d, %d)", i, i*7)); err != nil {
			log.Fatalf("flock-repl-smoke: insert %d: %v", i, err)
		}
	}
	fmt.Printf("wrote %d rows through the leader\n", rows)

	// 2. Convergence: the replica's applied LSN must reach the leader's WAL
	// position observed AFTER all writes — both scraped from /metrics.
	target := scrapeGauge(leaderURL, "flock_wal_last_lsn")
	deadline := time.Now().Add(90 * time.Second)
	for {
		// Tolerate scrape failures until the deadline: the SIGKILL CI
		// variant restarts the replica process mid-poll.
		applied, err := tryScrapeGauge(replicaURL, "flock_repl_apply_lsn")
		if err == nil && applied >= target {
			fmt.Printf("replica converged: applied LSN %.0f >= leader LSN %.0f\n", applied, target)
			break
		}
		if time.Now().After(deadline) {
			log.Fatalf("flock-repl-smoke: replica stuck at LSN %.0f, leader at %.0f (scrape err: %v)", applied, target, err)
		}
		select {
		case <-ctx.Done():
			log.Fatalf("flock-repl-smoke: canceled waiting for convergence at LSN %.0f of %.0f: %v", applied, target, ctx.Err())
		case <-time.After(250 * time.Millisecond):
		}
	}

	// 3. Read the rows back through the replica directly.
	rc, err := flockclient.Dial(ctx, replicaURL, "repl-smoke-read")
	if err != nil {
		log.Fatalf("flock-repl-smoke: dial replica: %v", err)
	}
	defer rc.Close(context.Background())
	res, err := rc.Exec(ctx, "SELECT count(*) AS n FROM smoke")
	if err != nil {
		log.Fatalf("flock-repl-smoke: replica count: %v", err)
	}
	if n, _ := res.Rows[0][0].(int64); int(n) != rows {
		log.Fatalf("flock-repl-smoke: replica count = %v, want %d", res.Rows[0][0], rows)
	}
	fmt.Printf("replica serves %d rows\n", rows)

	// 4. The read-endpoint-routed Query must agree (it hits the replica).
	rs, err := c.Query(ctx, "SELECT id FROM smoke")
	if err != nil {
		log.Fatalf("flock-repl-smoke: routed query: %v", err)
	}
	seen := 0
	for rs.Next() {
		seen++
	}
	if err := rs.Err(); err != nil {
		log.Fatalf("flock-repl-smoke: routed scan: %v", err)
	}
	if seen != rows {
		log.Fatalf("flock-repl-smoke: routed query saw %d rows, want %d", seen, rows)
	}
	fmt.Println("read-endpoint routing ok")

	// 5. The replica itself rejects writes read-only (503 + actionable
	// message + X-Flock-Leader). Asserted at the raw HTTP layer because
	// the SDK now follows the leader hint: the same write through the
	// replica-dialed client must succeed by redirecting to the leader.
	body := fmt.Sprintf(`{"session":%q,"sql":"INSERT INTO smoke VALUES (-1, 0)"}`, rc.Session())
	resp, err := http.Post(strings.TrimRight(replicaURL, "/")+"/v1/query", "application/json", strings.NewReader(body))
	if err != nil {
		log.Fatalf("flock-repl-smoke: raw replica write: %v", err)
	}
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		log.Fatalf("flock-repl-smoke: replica write got HTTP %d (%s), want 503", resp.StatusCode, strings.TrimSpace(string(raw)))
	}
	if !strings.Contains(string(raw), "read-only") {
		log.Fatalf("flock-repl-smoke: replica write rejection not read-only-shaped: %s", raw)
	}
	if hint := resp.Header.Get("X-Flock-Leader"); strings.TrimRight(hint, "/") != strings.TrimRight(leaderURL, "/") {
		log.Fatalf("flock-repl-smoke: replica rejection named leader %q, want %q", hint, leaderURL)
	}
	if _, err := rc.Exec(ctx, "INSERT INTO smoke VALUES (-1, 0)"); err != nil {
		log.Fatalf("flock-repl-smoke: SDK write via replica did not redirect to the leader: %v", err)
	}
	if got := rc.Endpoint(); got != strings.TrimRight(leaderURL, "/") {
		log.Fatalf("flock-repl-smoke: replica-dialed client at %q after redirect, want the leader %q", got, leaderURL)
	}
	fmt.Println("replica write rejection + leader redirect ok")

	// 6. Chaos variant: the failpoints must actually have fired — a torn
	// ship on the leader and/or stream drops (reconnects) on the replica.
	if expectChaos {
		torn := scrapeGauge(leaderURL, "flock_repl_ship_torn_total")
		reconnects := scrapeGauge(replicaURL, "flock_repl_reconnects_total")
		if torn == 0 && reconnects == 0 {
			log.Fatal("flock-repl-smoke: -expect-chaos but no torn batches and no reconnects")
		}
		fmt.Printf("chaos ok: %.0f torn batches, %.0f reconnects survived\n", torn, reconnects)
	}
	fmt.Println("flock-repl-smoke: PASS")
}

// runFailover is the kill-leader drill. The leader must run with quorum
// acks (-repl-ack quorum -repl-quorum 1) so "Exec returned nil" implies
// the write is applied and fsynced on the replica — the set this mode
// asserts survives the promotion exactly once.
func runFailover(ctx context.Context, leaderURL, replicaURL string, rows, killPID int, expectChaos bool) {
	c, err := flockclient.Dial(ctx, leaderURL, "repl-smoke",
		flockclient.WithFailover(replicaURL))
	if err != nil {
		log.Fatalf("flock-repl-smoke: dial leader: %v", err)
	}
	defer c.Close(context.Background())
	if _, err := c.Exec(ctx, "CREATE TABLE smoke (id int, v int)"); err != nil {
		log.Fatalf("flock-repl-smoke: create: %v", err)
	}
	acked := map[int]bool{}
	for i := 0; i < rows; i++ {
		if _, err := c.Exec(ctx, fmt.Sprintf("INSERT INTO smoke VALUES (%d, %d)", i, i*7)); err == nil {
			acked[i] = true
		}
	}
	if len(acked) == 0 {
		log.Fatal("flock-repl-smoke: no write was acked before the kill")
	}
	fmt.Printf("acked %d/%d rows under quorum\n", len(acked), rows)

	// SIGKILL the leader mid-deployment: no shutdown hooks, no final fsync.
	proc, err := os.FindProcess(killPID)
	if err != nil {
		log.Fatalf("flock-repl-smoke: find leader pid %d: %v", killPID, err)
	}
	if err := proc.Kill(); err != nil {
		log.Fatalf("flock-repl-smoke: kill leader: %v", err)
	}
	fmt.Printf("killed leader pid %d\n", killPID)

	// A few post-kill writes: they may fail (dead leader, not-yet-promoted
	// replica) — only nil-err writes join the acked set. Never re-Exec a
	// failed id: an ambiguous commit retried blindly could double-apply.
	for i := rows; i < rows+10; i++ {
		if _, err := c.Exec(ctx, fmt.Sprintf("INSERT INTO smoke VALUES (%d, %d)", i, i*7)); err == nil {
			acked[i] = true
		}
	}

	// Promote the replica. Under -expect-chaos the replica runs with
	// FLOCK_FAULTS=repl.promote:1:1 armed, so the first attempt draws a
	// 409 and the retry proves an aborted promotion leaves a working
	// follower, not a stuck node.
	attempts, err := adminCall(ctx, replicaURL, "/v1/admin/promote", "")
	if err != nil {
		log.Fatalf("flock-repl-smoke: promote: %v", err)
	}
	fmt.Printf("promoted %s in %d attempt(s)\n", replicaURL, attempts)
	if expectChaos && attempts < 2 {
		log.Fatal("flock-repl-smoke: -expect-chaos but the armed repl.promote failpoint never aborted an attempt")
	}
	if role := scrapeGauge(replicaURL, "flock_repl_role"); role != 1 {
		log.Fatalf("flock-repl-smoke: promoted node role gauge %.0f, want 1 (leader)", role)
	}
	if epoch := scrapeGauge(replicaURL, "flock_repl_epoch"); epoch < 2 {
		log.Fatalf("flock-repl-smoke: promoted node epoch gauge %.0f, want >= 2", epoch)
	}

	// An idempotent call fails over the SDK session to a live candidate;
	// writes then land on the new leader through the same client.
	if _, err := c.Query(ctx, "SELECT id FROM smoke WHERE id = 0"); err != nil {
		log.Fatalf("flock-repl-smoke: post-failover query: %v", err)
	}
	if got := c.Endpoint(); got != strings.TrimRight(replicaURL, "/") {
		log.Fatalf("flock-repl-smoke: SDK failed over to %q, want %q", got, replicaURL)
	}
	if _, err := c.Exec(ctx, "INSERT INTO smoke VALUES (-100, 0)"); err != nil {
		log.Fatalf("flock-repl-smoke: write on new leader via failed-over client: %v", err)
	}
	fmt.Println("SDK failover ok")

	// Exactly once: every acked id is present with count 1 on the new
	// leader. One grouped query through the failed-over client.
	rs, err := c.Query(ctx, "SELECT id, count(*) AS n FROM smoke GROUP BY id")
	if err != nil {
		log.Fatalf("flock-repl-smoke: survivor scan: %v", err)
	}
	counts := map[int]int64{}
	for rs.Next() {
		var id, n int64
		if err := rs.Scan(&id, &n); err != nil {
			log.Fatalf("flock-repl-smoke: scan: %v", err)
		}
		counts[int(id)] = n
	}
	if err := rs.Err(); err != nil {
		log.Fatalf("flock-repl-smoke: survivor scan: %v", err)
	}
	for id := range acked {
		if counts[id] != 1 {
			log.Fatalf("flock-repl-smoke: acked id %d present %d times after promotion, want exactly 1", id, counts[id])
		}
	}
	fmt.Printf("all %d acked writes survived exactly once\n", len(acked))
	fmt.Println("flock-repl-smoke failover: PASS")
}

// runFenced verifies the restarted old leader (booted with -repl-peers
// naming the new leader) is fenced, repoints it, and requires it to
// converge as a replica of the new lineage.
func runFenced(ctx context.Context, oldURL, newURL string) {
	// The boot probe fences before the listener accepts traffic, but give
	// the process a moment to come up at all.
	deadline := time.Now().Add(30 * time.Second)
	for {
		role, err := tryScrapeGauge(oldURL, "flock_repl_role")
		if err == nil && role == -1 {
			break
		}
		if time.Now().After(deadline) {
			log.Fatalf("flock-repl-smoke: old leader role gauge %.0f, want -1 (fenced); err %v", role, err)
		}
		select {
		case <-ctx.Done():
			log.Fatalf("flock-repl-smoke: canceled waiting for the fence: %v", ctx.Err())
		case <-time.After(250 * time.Millisecond):
		}
	}
	fmt.Println("old leader came back fenced")

	oc, err := flockclient.Dial(ctx, oldURL, "repl-smoke-fenced")
	if err != nil {
		log.Fatalf("flock-repl-smoke: dial old leader: %v", err)
	}
	defer oc.Close(context.Background())
	if _, err := oc.Exec(ctx, "INSERT INTO smoke VALUES (-2, 0)"); err == nil {
		log.Fatal("flock-repl-smoke: fenced old leader accepted a write")
	} else if !strings.Contains(err.Error(), "fenced") {
		log.Fatalf("flock-repl-smoke: fenced write rejection not fenced-shaped: %v", err)
	}
	fmt.Println("fenced write rejection ok")

	if _, err := adminCall(ctx, oldURL, "/v1/admin/repoint", newURL); err != nil {
		log.Fatalf("flock-repl-smoke: repoint: %v", err)
	}
	target := scrapeGauge(newURL, "flock_wal_last_lsn")
	deadline = time.Now().Add(60 * time.Second)
	for {
		applied, err := tryScrapeGauge(oldURL, "flock_repl_apply_lsn")
		if err == nil && applied >= target {
			fmt.Printf("old leader rejoined: applied LSN %.0f >= new leader LSN %.0f\n", applied, target)
			break
		}
		if time.Now().After(deadline) {
			log.Fatalf("flock-repl-smoke: rejoining old leader stuck at LSN %.0f, new leader at %.0f (err %v)", applied, target, err)
		}
		select {
		case <-ctx.Done():
			log.Fatalf("flock-repl-smoke: canceled waiting for convergence: %v", ctx.Err())
		case <-time.After(250 * time.Millisecond):
		}
	}
	if epoch := scrapeGauge(oldURL, "flock_repl_epoch"); epoch < 2 {
		log.Fatalf("flock-repl-smoke: rejoined old leader epoch gauge %.0f, want >= 2", epoch)
	}

	// Contents agree across the failover boundary.
	nc, err := flockclient.Dial(ctx, newURL, "repl-smoke-verify")
	if err != nil {
		log.Fatalf("flock-repl-smoke: dial new leader: %v", err)
	}
	defer nc.Close(context.Background())
	want := countRows(ctx, nc)
	got := countRows(ctx, oc)
	if want != got {
		log.Fatalf("flock-repl-smoke: row count diverged: new leader %d, rejoined old leader %d", want, got)
	}
	fmt.Printf("contents converged: %d rows on both\n", want)
	fmt.Println("flock-repl-smoke fenced: PASS")
}

func countRows(ctx context.Context, c *flockclient.Client) int64 {
	res, err := c.Exec(ctx, "SELECT count(*) AS n FROM smoke")
	if err != nil {
		log.Fatalf("flock-repl-smoke: count: %v", err)
	}
	n, _ := res.Rows[0][0].(int64)
	return n
}

// adminCall posts to an admin endpoint with a fresh session, retrying 409s
// (an armed repl.promote/repl.repoint failpoint, or a transient refusal)
// for up to 20 attempts. Returns the number of attempts made.
func adminCall(ctx context.Context, baseURL, path, leader string) (int, error) {
	c, err := flockclient.Dial(ctx, baseURL, "repl-smoke-admin")
	if err != nil {
		return 0, fmt.Errorf("dial for admin session: %w", err)
	}
	defer c.Close(context.Background())
	body := fmt.Sprintf(`{"session":%q}`, c.Session())
	if leader != "" {
		body = fmt.Sprintf(`{"session":%q,"leader":%q}`, c.Session(), leader)
	}
	var lastErr error
	for attempt := 1; attempt <= 20; attempt++ {
		resp, err := http.Post(strings.TrimRight(baseURL, "/")+path, "application/json", strings.NewReader(body))
		if err != nil {
			lastErr = err
		} else {
			buf := make([]byte, 512)
			n, _ := resp.Body.Read(buf)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return attempt, nil
			}
			lastErr = fmt.Errorf("%s: HTTP %d: %s", path, resp.StatusCode, strings.TrimSpace(string(buf[:n])))
		}
		select {
		case <-ctx.Done():
			return attempt, ctx.Err()
		case <-time.After(500 * time.Millisecond):
		}
	}
	return 20, lastErr
}

// scrapeGauge fetches one gauge from a node's /metrics, fatally on any
// transport failure (0 when the gauge is absent — callers compare against
// known-positive targets).
func scrapeGauge(baseURL, name string) float64 {
	v, err := tryScrapeGauge(baseURL, name)
	if err != nil {
		log.Fatalf("flock-repl-smoke: scrape %s: %v", baseURL, err)
	}
	return v
}

// tryScrapeGauge is scrapeGauge with the transport error returned instead
// of fatal — the convergence poll rides through node restarts.
func tryScrapeGauge(baseURL, name string) (float64, error) {
	resp, err := http.Get(strings.TrimRight(baseURL, "/") + "/metrics")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, name+" ") {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(strings.TrimPrefix(line, name)), 64)
		if err == nil {
			return v, nil
		}
	}
	return 0, nil
}
