// Command flock-repl-smoke drives a two-node flock deployment — a leader
// and a read replica — through the Go SDK and exits non-zero on any
// failure: the CI smoke for replication. It writes rows through the
// leader, waits for the replica's applied LSN (flock_repl_apply_lsn) to
// converge on the leader's WAL position (flock_wal_last_lsn), reads the
// rows back through the replica (both directly and via the SDK's
// read-endpoint routing), and asserts the replica rejects writes.
//
//	$ flock-serve -addr 127.0.0.1:8080 -data-dir /tmp/leader -rows 0 &
//	$ flock-serve -addr 127.0.0.1:8081 -data-dir /tmp/replica \
//	      -replica-of http://127.0.0.1:8080 &
//	$ flock-repl-smoke -leader http://127.0.0.1:8080 -replica http://127.0.0.1:8081
//
// With -expect-chaos (the fault-armed CI variant: FLOCK_FAULTS=repl.ship
// on the leader, repl.stream on the replica) it additionally requires the
// failpoints to have fired — torn batches shipped, reconnects happened —
// proving convergence survived real stream interruptions, not an
// uneventful run.
package main

import (
	"bufio"
	"context"
	"fmt"
	"log"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/pkg/flockclient"
)

func main() {
	leaderURL := ""
	replicaURL := ""
	rows := 500
	expectChaos := false
	args := os.Args[1:]
	for i := 0; i < len(args); i++ {
		switch args[i] {
		case "-leader":
			i++
			leaderURL = args[i]
		case "-replica":
			i++
			replicaURL = args[i]
		case "-rows":
			i++
			fmt.Sscanf(args[i], "%d", &rows)
		case "-expect-chaos":
			expectChaos = true
		default:
			log.Fatalf("flock-repl-smoke: unknown flag %q", args[i])
		}
	}
	if leaderURL == "" || replicaURL == "" {
		log.Fatal("flock-repl-smoke: -leader and -replica are required")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()

	// 1. Write through the leader via the SDK, read-endpoint routed at the
	// replica (Query goes to the replica, Exec stays on the leader).
	c, err := flockclient.Dial(ctx, leaderURL, "repl-smoke",
		flockclient.WithReadEndpoint(replicaURL))
	if err != nil {
		log.Fatalf("flock-repl-smoke: dial leader: %v", err)
	}
	defer c.Close(context.Background())
	if _, err := c.Exec(ctx, "CREATE TABLE smoke (id int, v int)"); err != nil {
		log.Fatalf("flock-repl-smoke: create: %v", err)
	}
	for i := 0; i < rows; i++ {
		if _, err := c.Exec(ctx, fmt.Sprintf("INSERT INTO smoke VALUES (%d, %d)", i, i*7)); err != nil {
			log.Fatalf("flock-repl-smoke: insert %d: %v", i, err)
		}
	}
	fmt.Printf("wrote %d rows through the leader\n", rows)

	// 2. Convergence: the replica's applied LSN must reach the leader's WAL
	// position observed AFTER all writes — both scraped from /metrics.
	target := scrapeGauge(leaderURL, "flock_wal_last_lsn")
	deadline := time.Now().Add(90 * time.Second)
	for {
		// Tolerate scrape failures until the deadline: the SIGKILL CI
		// variant restarts the replica process mid-poll.
		applied, err := tryScrapeGauge(replicaURL, "flock_repl_apply_lsn")
		if err == nil && applied >= target {
			fmt.Printf("replica converged: applied LSN %.0f >= leader LSN %.0f\n", applied, target)
			break
		}
		if time.Now().After(deadline) {
			log.Fatalf("flock-repl-smoke: replica stuck at LSN %.0f, leader at %.0f (scrape err: %v)", applied, target, err)
		}
		select {
		case <-ctx.Done():
			log.Fatalf("flock-repl-smoke: canceled waiting for convergence at LSN %.0f of %.0f: %v", applied, target, ctx.Err())
		case <-time.After(250 * time.Millisecond):
		}
	}

	// 3. Read the rows back through the replica directly.
	rc, err := flockclient.Dial(ctx, replicaURL, "repl-smoke-read")
	if err != nil {
		log.Fatalf("flock-repl-smoke: dial replica: %v", err)
	}
	defer rc.Close(context.Background())
	res, err := rc.Exec(ctx, "SELECT count(*) AS n FROM smoke")
	if err != nil {
		log.Fatalf("flock-repl-smoke: replica count: %v", err)
	}
	if n, _ := res.Rows[0][0].(int64); int(n) != rows {
		log.Fatalf("flock-repl-smoke: replica count = %v, want %d", res.Rows[0][0], rows)
	}
	fmt.Printf("replica serves %d rows\n", rows)

	// 4. The read-endpoint-routed Query must agree (it hits the replica).
	rs, err := c.Query(ctx, "SELECT id FROM smoke")
	if err != nil {
		log.Fatalf("flock-repl-smoke: routed query: %v", err)
	}
	seen := 0
	for rs.Next() {
		seen++
	}
	if err := rs.Err(); err != nil {
		log.Fatalf("flock-repl-smoke: routed scan: %v", err)
	}
	if seen != rows {
		log.Fatalf("flock-repl-smoke: routed query saw %d rows, want %d", seen, rows)
	}
	fmt.Println("read-endpoint routing ok")

	// 5. Writes on the replica are rejected, and the rejection is the
	// read-only taxonomy (503 + actionable message), not a generic failure.
	if _, err := rc.Exec(ctx, "INSERT INTO smoke VALUES (-1, 0)"); err == nil {
		log.Fatal("flock-repl-smoke: replica accepted a write")
	} else if !strings.Contains(err.Error(), "read-only") {
		log.Fatalf("flock-repl-smoke: replica write rejection not read-only-shaped: %v", err)
	}
	fmt.Println("replica write rejection ok")

	// 6. Chaos variant: the failpoints must actually have fired — a torn
	// ship on the leader and/or stream drops (reconnects) on the replica.
	if expectChaos {
		torn := scrapeGauge(leaderURL, "flock_repl_ship_torn_total")
		reconnects := scrapeGauge(replicaURL, "flock_repl_reconnects_total")
		if torn == 0 && reconnects == 0 {
			log.Fatal("flock-repl-smoke: -expect-chaos but no torn batches and no reconnects")
		}
		fmt.Printf("chaos ok: %.0f torn batches, %.0f reconnects survived\n", torn, reconnects)
	}
	fmt.Println("flock-repl-smoke: PASS")
}

// scrapeGauge fetches one gauge from a node's /metrics, fatally on any
// transport failure (0 when the gauge is absent — callers compare against
// known-positive targets).
func scrapeGauge(baseURL, name string) float64 {
	v, err := tryScrapeGauge(baseURL, name)
	if err != nil {
		log.Fatalf("flock-repl-smoke: scrape %s: %v", baseURL, err)
	}
	return v
}

// tryScrapeGauge is scrapeGauge with the transport error returned instead
// of fatal — the convergence poll rides through node restarts.
func tryScrapeGauge(baseURL, name string) (float64, error) {
	resp, err := http.Get(strings.TrimRight(baseURL, "/") + "/metrics")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, name+" ") {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(strings.TrimPrefix(line, name)), 64)
		if err == nil {
			return v, nil
		}
	}
	return 0, nil
}
