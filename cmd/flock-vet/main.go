// Command flock-vet runs the internal/lint invariant suite — the
// mechanical form of the durability, concurrency, and resilience
// contracts PRs 2–7 established (see docs/invariants.md).
//
// Two modes share the same analyzers:
//
// Standalone, over package patterns (what `make lint` and the meta-test
// run):
//
//	$ go run ./cmd/flock-vet ./...
//
// As a vet tool, speaking cmd/go's vet.cfg protocol (what CI runs, so
// results ride go's build cache):
//
//	$ go build -o flock-vet ./cmd/flock-vet
//	$ go vet -vettool=$PWD/flock-vet ./...
//
// Exit status is non-zero when any finding survives //flockvet:ignore
// filtering. Diagnostics print one per line as
// file:line:col: message (analyzer).
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
	"repro/internal/lint/load"
)

func main() {
	args := os.Args[1:]
	for _, a := range args {
		if a == "-V=full" {
			printVersion()
			return
		}
		if a == "-flags" {
			// cmd/go probes the tool's flag schema before running it;
			// this suite takes no analyzer flags.
			fmt.Println("[]")
			return
		}
		if a == "-h" || a == "-help" || a == "--help" {
			printHelp()
			return
		}
	}
	if n := len(args); n > 0 && strings.HasSuffix(args[n-1], ".cfg") {
		os.Exit(runVetTool(args[n-1]))
	}
	os.Exit(runPatterns(args))
}

// printVersion implements the `-V=full` handshake cmd/go uses to key
// its vet cache: a single line whose second field is "version" and
// whose remainder uniquely identifies this build. Hashing our own
// executable means rebuilding flock-vet (new analyzers, changed rules)
// invalidates cached vet results.
func printVersion() {
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			_, _ = io.Copy(h, f)
			_ = f.Close()
		}
	}
	fmt.Printf("flock-vet version v1.0.0-%x\n", h.Sum(nil)[:6])
}

func printHelp() {
	fmt.Println("flock-vet: the flock invariant suite")
	fmt.Println()
	fmt.Println("usage: flock-vet [package patterns]     (default ./...)")
	fmt.Println("       go vet -vettool=$(which flock-vet) ./...")
	fmt.Println()
	fmt.Println("Suppress a finding with //flockvet:ignore <analyzer> <reason>")
	fmt.Println("on the flagged line or the line above it.")
	fmt.Println()
	fmt.Println("analyzers:")
	for _, a := range lint.Analyzers() {
		doc := a.Doc
		if i := strings.IndexByte(doc, '\n'); i >= 0 {
			doc = doc[:i]
		}
		fmt.Printf("  %-16s %s\n", a.Name, doc)
	}
}

// runPatterns is standalone mode: load, analyze, and report every
// package matching the patterns (relative to the current directory).
func runPatterns(patterns []string) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "flock-vet: %v\n", err)
		return 2
	}
	pkgs, err := load.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "flock-vet: %v\n", err)
		return 2
	}
	analyzers := lint.Analyzers()
	bad := false
	for _, pkg := range pkgs {
		findings, err := lint.RunPackage(pkg, analyzers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "flock-vet: %s: %v\n", pkg.PkgPath, err)
			return 2
		}
		for _, f := range findings {
			bad = true
			printFinding(cwd, f)
		}
	}
	if bad {
		return 1
	}
	return 0
}

func printFinding(base string, f lint.Finding) {
	name := f.Pos.Filename
	if rel, err := filepath.Rel(base, name); err == nil && !strings.HasPrefix(rel, "..") {
		name = rel
	}
	fmt.Fprintf(os.Stderr, "%s:%d:%d: %s (%s)\n", name, f.Pos.Line, f.Pos.Column, f.Message, f.Analyzer)
}

// vetConfig is the configuration cmd/go writes for -vettool binaries
// (see $GOROOT/src/cmd/go/internal/work/exec.go, vetConfig).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	GoVersion                 string
	SucceedOnTypecheckFailure bool
}

// runVetTool is vettool mode: one invocation per package, config read
// from the .cfg file, diagnostics on stderr, non-zero exit on findings.
func runVetTool(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "flock-vet: reading vet config: %v\n", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "flock-vet: parsing vet config %s: %v\n", cfgPath, err)
		return 2
	}

	// cmd/go expects the facts file even though this suite exports no
	// facts; writing it keeps the vet cache happy.
	writeVetx := func() int {
		if cfg.VetxOutput != "" {
			if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
				fmt.Fprintf(os.Stderr, "flock-vet: writing vetx: %v\n", err)
				return 2
			}
		}
		return 0
	}
	if cfg.VetxOnly {
		return writeVetx()
	}

	fset := token.NewFileSet()
	imp := load.NewImporter(fset, cfg.PackageFile)
	files := make([]string, 0, len(cfg.GoFiles))
	for _, f := range cfg.GoFiles {
		if !filepath.IsAbs(f) {
			f = filepath.Join(cfg.Dir, f)
		}
		files = append(files, f)
	}
	pkg, err := load.TypeCheck(fset, cfg.ImportPath, cfg.Dir, files, imp.ForPackage(cfg.ImportMap), cfg.GoVersion)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return writeVetx()
		}
		fmt.Fprintf(os.Stderr, "flock-vet: %v\n", err)
		return 2
	}
	findings, err := lint.RunPackage(pkg, lint.Analyzers())
	if err != nil {
		fmt.Fprintf(os.Stderr, "flock-vet: %s: %v\n", cfg.ImportPath, err)
		return 2
	}
	if rc := writeVetx(); rc != 0 {
		return rc
	}
	if len(findings) > 0 {
		for _, f := range findings {
			printFinding(cfg.Dir, f)
		}
		return 1
	}
	return 0
}
