// Command flock-serve runs the HTTP serving layer over a Flock instance
// pre-loaded with the demo customers table and a deployed "churn" model:
//
//	$ flock-serve -addr 127.0.0.1:8080 -rows 100000
//	$ curl -s localhost:8080/v1/sessions -d '{"user":"alice"}'
//	  -> {"session":"<id>", ...}
//	$ curl -s localhost:8080/v1/query -d '{"session":"<id>",
//	      "sql":"SELECT count(*) FROM customers WHERE PREDICT(churn, age, income, tenure, region, notes) > 0.8"}'
//
// With -tokens, sessions require credentials ("user:token,user2:token2");
// without it any user is admitted (development mode). Every authenticated
// user is granted the admin role so the demo works out of the box; in a
// real deployment wire your own role assignment before starting the server.
//
// With -data-dir the instance is crash-safe: committed DML is write-ahead
// logged (fsync per commit under -wal-sync always), a background
// checkpointer folds the log into an atomic snapshot every
// -checkpoint-interval, and a restart recovers tables, time-travel
// history, deployed models, the query log and the audit chain — the demo
// workload is seeded only on first boot. See docs/durability.md.
//
// With -data-dir the instance also serves the /v1/repl/* log-shipping
// endpoints, so read replicas can attach at any time; -repl-ack=quorum
// additionally holds each commit's ack until -repl-quorum followers
// confirm. With -replica-of=<leader-url> the process runs as a read-only
// replica instead: it streams the leader's WAL, applies it through the
// recovery path, serves SELECT/PREDICT and cursor traffic, rejects writes
// with 503, and gates /readyz on replication lag. See docs/replication.md.
//
// SIGINT/SIGTERM triggers a graceful shutdown: the listener closes,
// in-flight queries get a drain window, whatever remains is canceled
// engine-wide at the next batch boundary, and a final checkpoint folds the
// WAL before exit.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/infer"
	"repro/internal/monitor"
	"repro/internal/onnx"
	"repro/internal/repl"
	"repro/internal/server"
	"repro/internal/workload"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	rows := flag.Int("rows", 100000, "size of the demo customers table")
	workers := flag.Int("workers", 0, "max concurrent queries (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 64, "admission wait-queue depth")
	timeout := flag.Duration("timeout", 30*time.Second, "default per-query timeout")
	maxTimeout := flag.Duration("max-timeout", 5*time.Minute, "per-query timeout ceiling")
	sessionTTL := flag.Duration("session-ttl", 30*time.Minute, "idle session expiry")
	sessionMaxLife := flag.Duration("session-max-life", 24*time.Hour, "hard session lifetime cap (expires even sessions holding cursors)")
	cursorTTL := flag.Duration("cursor-ttl", 5*time.Minute, "idle server-side cursor expiry")
	maxCursors := flag.Int("max-cursors", 16, "open server-side cursors per session")
	planCache := flag.Int("plan-cache", 256, "prepared-plan LRU capacity")
	tokens := flag.String("tokens", "", "comma-separated user:token credentials (empty = allow any user)")
	drain := flag.Duration("drain", 10*time.Second, "shutdown drain window for in-flight queries")
	dataDir := flag.String("data-dir", "", "durable data directory (empty = in-memory only; data does not survive restarts)")
	ckptEvery := flag.Duration("checkpoint-interval", time.Minute, "how often the background checkpointer folds the WAL into a snapshot")
	walSync := flag.String("wal-sync", "always", "WAL durability: 'always' fsyncs each committed DML statement, 'off' leaves flushing to the OS")
	scorerURL := flag.String("scorer-url", "", "remote HTTP scoring endpoint for UDF-mode PREDICT (empty = in-process scoring)")
	scorerRetries := flag.Int("scorer-retries", 2, "retries per scoring call against -scorer-url (jittered exponential backoff)")
	scorerBreakFails := flag.Int("scorer-breaker-failures", 5, "consecutive failures before the scorer circuit breaker opens")
	scorerBreakCooldown := flag.Duration("scorer-breaker-cooldown", 5*time.Second, "open-circuit cooldown before a half-open probe")
	scorerFallback := flag.Bool("scorer-fallback", true, "fall back to the native in-process scorer when -scorer-url is unavailable")
	replicaOf := flag.String("replica-of", "", "leader base URL; run as a read-only replica streaming its WAL (requires -data-dir)")
	replicaID := flag.String("replica-id", "", "follower id reported in acks and leader status (default: the listen address)")
	replToken := flag.String("repl-token", "", "shared replication token (leader: required from followers; replica: presented to the leader)")
	maxReplicaLag := flag.Int64("max-replica-lag", 0, "replica readiness gate: /readyz turns 503 past this many frames of lag (0 = no lag gate)")
	replAck := flag.String("repl-ack", "async", "leader ack policy: 'async' acks after local fsync, 'quorum' additionally waits for -repl-quorum follower acks")
	replQuorum := flag.Int("repl-quorum", 1, "follower acks required per commit under -repl-ack=quorum")
	replQuorumTimeout := flag.Duration("repl-quorum-timeout", 5*time.Second, "how long a commit waits for quorum before failing as ambiguous")
	replPeers := flag.String("repl-peers", "", "comma-separated peer base URLs, probed at boot: a restarted ex-leader deposed while down comes back fenced instead of accepting doomed writes")
	inferOn := flag.Bool("infer", true, "route PREDICT through the inference plane (micro-batching, score cache, canary deployments)")
	inferWindow := flag.Duration("infer-batch-window", 2*time.Millisecond, "micro-batch latency bound: longest a queued PREDICT waits for peers")
	inferRows := flag.Int("infer-batch-rows", 256, "micro-batch size bound; larger requests bypass coalescing")
	inferCache := flag.Int("infer-cache-size", 65536, "score-cache capacity in entries (negative disables caching)")
	inferCanaryMin := flag.Int64("infer-canary-min-samples", 500, "mirrored samples required before the canary gate acts")
	inferCanaryMaxDis := flag.Float64("infer-canary-max-disagreement", 0.05, "largest mean |candidate-primary| the canary gate promotes through")
	flag.Parse()

	var syncWAL bool
	switch *walSync {
	case "always":
		syncWAL = true
	case "off":
		syncWAL = false
	default:
		log.Fatalf("flock-serve: bad -wal-sync %q (want always|off)", *walSync)
	}

	replica := *replicaOf != ""
	if replica && *dataDir == "" {
		log.Fatal("flock-serve: -replica-of requires -data-dir (the replica's own WAL and snapshot live there)")
	}

	var flock *core.Flock
	var dur *core.Durability
	var err error
	switch {
	case replica:
		flock, dur, err = core.OpenDirReplica(*dataDir, *replicaOf, core.DurabilityOptions{WALSync: syncWAL})
		if err != nil {
			log.Fatal(err)
		}
		rec := dur.Recovery()
		fmt.Printf("flock-serve: replica of %s, recovered %s (snapshot=%t, %d WAL records replayed) applied_lsn=%d\n",
			*replicaOf, *dataDir, rec.SnapshotLoaded, rec.Records, flock.DB.AppliedLSN())
	case *dataDir != "":
		flock, dur, err = core.OpenDir(*dataDir, core.DurabilityOptions{WALSync: syncWAL})
		if err != nil {
			log.Fatal(err)
		}
		rec := dur.Recovery()
		if rec.SnapshotLoaded || rec.Records > 0 {
			fmt.Printf("flock-serve: recovered %s (snapshot=%t, %d WAL records replayed, torn tail=%t) in %s\n",
				*dataDir, rec.SnapshotLoaded, rec.Records, rec.TornTail, rec.Duration.Round(time.Millisecond))
		}
	default:
		flock, err = core.New()
		if err != nil {
			log.Fatal(err)
		}
	}

	flock.Access.AssignRole("flock-serve", "admin")

	// Demo workload: the Figure-4 scoring table plus a deployed churn model.
	// A recovered data directory already holds both, so seed only what is
	// missing (first boot, or an in-memory instance). A replica seeds
	// nothing: every row and model arrives from the leader's log.
	if !replica {
		if _, terr := flock.DB.Table("customers"); terr != nil {
			if err := workload.LoadScoringTable(flock.DB, workload.ScoringConfig{
				Rows: *rows, Seed: 7, Regions: 6, WithText: true,
			}); err != nil {
				log.Fatal(err)
			}
		}
		if _, gerr := flock.Models.GraphFor("churn"); gerr != nil {
			pipe, err := workload.TrainScoringPipeline(4000, 42, 50, true)
			if err != nil {
				log.Fatal(err)
			}
			if _, err := flock.DeployPipeline("flock-serve", "churn", pipe, core.TrainingInfo{
				Script: "flock-serve bootstrap", Tables: []string{"customers"},
			}); err != nil {
				log.Fatal(err)
			}
		}
	}

	cfg := server.Config{
		MaxWorkers:           *workers,
		MaxQueue:             *queue,
		DefaultTimeout:       *timeout,
		MaxTimeout:           *maxTimeout,
		SessionTTL:           *sessionTTL,
		SessionMaxLifetime:   *sessionMaxLife,
		CursorTTL:            *cursorTTL,
		MaxCursorsPerSession: *maxCursors,
		PlanCacheSize:        *planCache,
		// Demo role assignment: every authenticated user can do everything.
		OnSession: func(user string) { flock.Access.AssignRole(user, "admin") },
	}
	if *tokens != "" {
		creds := map[string]string{}
		for _, pair := range strings.Split(*tokens, ",") {
			user, token, ok := strings.Cut(strings.TrimSpace(pair), ":")
			if !ok {
				log.Fatalf("flock-serve: bad -tokens entry %q (want user:token)", pair)
			}
			creds[user] = token
		}
		cfg.Authenticate = server.StaticTokenAuth(creds)
	}

	// Remote scoring with the full availability ladder: per-endpoint shared
	// circuit breaker (the engine rebuilds scorers per query, the breaker
	// state must not reset with them), bounded jittered retry, and optional
	// fallback to the native in-process scorer. The same factory backs both
	// UDF-mode PREDICT and the inference plane's remote backend.
	var remoteScorer func(g *onnx.Graph) (onnx.Scorer, error)
	if *scorerURL != "" {
		remoteScorer = func(g *onnx.Graph) (onnx.Scorer, error) {
			rs := &onnx.ResilientScorer{
				S:          onnx.NewHTTPScorer(g, *scorerURL, 1000),
				Breaker:    onnx.SharedBreaker(*scorerURL, *scorerBreakFails, *scorerBreakCooldown),
				MaxRetries: *scorerRetries,
			}
			if *scorerFallback {
				local, err := onnx.NewLocalScorer(g)
				if err != nil {
					return nil, err
				}
				rs.Fallback = local
			}
			return rs, nil
		}
		flock.DB.SetUDFScorerFactory(remoteScorer)
	}

	srv := server.New(flock, cfg) // breaker gauges ride /metrics natively

	// Inference plane: micro-batched, cached, canaried PREDICT. On a
	// replica the cache stays correct because applied frames refresh the
	// model registry and bump its generation. With -scorer-url set the
	// plane's backend calls ride the same resilient remote scorer — one
	// round trip per micro-batch window instead of one per call.
	if *inferOn {
		icfg := infer.Config{
			BatchWindow:           *inferWindow,
			BatchRows:             *inferRows,
			CacheSize:             *inferCache,
			CanaryMinSamples:      *inferCanaryMin,
			CanaryMaxDisagreement: *inferCanaryMaxDis,
		}
		if *scorerURL != "" {
			icfg.Remote = remoteScorer
		}
		plane := flock.EnableInferPlane(icfg)
		srv.AttachInferPlane(plane)
		defer flock.DisableInferPlane()
	}

	// Baseline the score monitor on the deployed model's training-time
	// distribution so /metrics exports drift state from the start. A
	// replica skips it: its model arrives later from the leader's log.
	if !replica {
		if mon := baselineMonitor(flock); mon != nil {
			srv.AttachMonitor(mon)
		}
	}

	if dur != nil {
		// Background checkpointer + durability gauges on /metrics, and the
		// operator recovery path for a degraded (poisoned-WAL) instance.
		dur.Run(*ckptEvery, func(err error) { log.Printf("flock-serve: checkpoint failed: %v", err) })
		srv.AttachGauges(dur.Gauges)
		srv.AttachReopen(dur.Reopen)
	}

	// Replication wiring. Both roles mount a repl.Node, so either can
	// change roles at runtime: a primary with a data directory starts as
	// the leader (followers may attach at any time; under -repl-ack=quorum
	// the commit gate holds client acks until enough followers confirm) and
	// can be demoted via /v1/admin/repoint; a replica runs the follower
	// loop, gates /readyz on connection and lag, and can be promoted via
	// /v1/admin/promote.
	replCtx, replCancel := context.WithCancel(context.Background())
	defer replCancel()
	if replica || *dataDir != "" {
		leaderOpts := repl.Options{Token: *replToken, AckTimeout: *replQuorumTimeout}
		switch *replAck {
		case "async":
		case "quorum":
			leaderOpts.Quorum = *replQuorum
		default:
			log.Fatalf("flock-serve: bad -repl-ack %q (want async|quorum)", *replAck)
		}
		id := *replicaID
		if id == "" {
			id = *addr
		}
		nodeOpts := repl.NodeOptions{
			Leader: leaderOpts,
			Follower: repl.FollowerOptions{
				ID:    id,
				Token: *replToken,
				// Refresh the model registry (and thereby invalidate cached
				// plans via its generation counter) as shipped frames land.
				OnApplied: func() {
					if err := flock.RefreshModels(); err != nil {
						log.Printf("flock-serve: replica model refresh failed: %v", err)
					}
				},
			},
		}
		var node *repl.Node
		if replica {
			node = repl.NewFollowerNode(flock.DB, *replicaOf, nodeOpts)
			srv.AttachReadiness(func() error {
				f := node.Follower()
				if f == nil {
					return nil // promoted: the leader readiness rules apply
				}
				if !f.Connected() {
					return fmt.Errorf("replica: not connected to leader %s: %s", f.Leader(), f.LastError())
				}
				if *maxReplicaLag > 0 && f.Lag() > *maxReplicaLag {
					return fmt.Errorf("replica: %d frames behind the leader (max %d)", f.Lag(), *maxReplicaLag)
				}
				return nil
			})
		} else {
			node = repl.NewLeaderNode(flock.DB, nodeOpts)
			if leaderOpts.Quorum > 0 {
				fmt.Printf("flock-serve: quorum acks enabled (%d follower(s), timeout %s)\n", leaderOpts.Quorum, *replQuorumTimeout)
			}
		}
		srv.AttachReplicationNode(node)
		if *replPeers != "" {
			node.ProbePeers(replCtx, strings.Split(*replPeers, ","))
			if fenced, observed, source := flock.DB.Fenced(); fenced {
				fmt.Printf("flock-serve: fenced at boot: epoch %d observed via %s; repoint this node to the new leader\n", observed, source)
			}
		}
		go func() { _ = node.Run(replCtx) }()
	}

	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe(*addr) }()
	// Give the listener a beat to bind so the banner prints the truth.
	time.Sleep(50 * time.Millisecond)
	if replica {
		fmt.Printf("flock-serve: read-only replica of %s, listening on %s\n", *replicaOf, *addr)
	} else {
		fmt.Printf("flock-serve: %d customers, model 'churn' deployed, listening on %s\n", *rows, *addr)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-done:
		if err != nil {
			log.Fatal(err)
		}
	case <-sig:
		fmt.Println("flock-serve: shutting down...")
		replCancel() // stop the follower loop before the final checkpoint
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		err := srv.Shutdown(ctx)
		// The drain finished (or was forced): every statement that will
		// commit has committed, so fold the WAL one last time — a clean
		// restart recovers from the snapshot alone.
		if dur != nil {
			if cerr := dur.Close(); cerr != nil {
				log.Printf("flock-serve: final checkpoint failed: %v", cerr)
			}
		}
		if err != nil {
			log.Printf("flock-serve: forced shutdown after drain window: %v", err)
			os.Exit(1)
		}
		fmt.Println("flock-serve: clean shutdown")
	}
}

// baselineMonitor scores a sample of the customers table through the
// deployed model, snapshots the first part as the drift baseline, and
// seeds the sliding window with the rest — so /metrics exports live
// flock_monitor_psi / drift_status gauges (reading ~0 / stable) from the
// first scrape, with production traffic expected to keep feeding Observe.
func baselineMonitor(flock *core.Flock) *monitor.ScoreMonitor {
	res, err := flock.Exec("flock-serve",
		"SELECT PREDICT(churn, age, income, tenure, region, notes) FROM customers LIMIT 3000")
	if err != nil {
		log.Printf("flock-serve: monitor baseline skipped: %v", err)
		return nil
	}
	scores := make([]float64, 0, len(res.Rows))
	for _, row := range res.Rows {
		if f, ok := row[0].(float64); ok {
			scores = append(scores, f)
		}
	}
	split := len(scores) * 2 / 3
	if split < monitor.DefaultBins {
		log.Printf("flock-serve: monitor baseline skipped: only %d scores", len(scores))
		return nil
	}
	mon, err := monitor.NewScoreMonitor("churn", scores[:split], 5000)
	if err != nil {
		log.Printf("flock-serve: monitor baseline skipped: %v", err)
		return nil
	}
	mon.Observe(scores[split:]...)
	return mon
}
