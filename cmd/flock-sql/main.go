// Command flock-sql is an interactive shell over a Flock instance
// pre-loaded with the Figure-4 scoring table and a deployed "churn" model,
// for poking at the engine and the PREDICT extension:
//
//	$ flock-sql
//	flock> SELECT region, avg(PREDICT(churn, age, income, tenure, region, notes)) AS risk
//	       FROM customers GROUP BY region ORDER BY risk DESC
//
// Meta commands: \tables, \models, \audit, \prov, \explain <query>,
// \save <path>, \quit.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/opt"
	"repro/internal/sql"
	"repro/internal/workload"
)

func main() {
	rows := flag.Int("rows", 10000, "size of the demo customers table")
	flag.Parse()

	flock, err := core.New()
	if err != nil {
		fatal(err)
	}
	flock.Access.AssignRole("shell", "admin")
	if err := workload.LoadScoringTable(flock.DB, workload.ScoringConfig{
		Rows: *rows, Seed: 7, Regions: 6, WithText: true,
	}); err != nil {
		fatal(err)
	}
	pipe, err := workload.TrainScoringPipeline(4000, 42, 50, true)
	if err != nil {
		fatal(err)
	}
	if _, err := flock.DeployPipeline("shell", "churn", pipe, core.TrainingInfo{
		Script: "flock-sql bootstrap", Tables: []string{"customers"},
	}); err != nil {
		fatal(err)
	}
	fmt.Printf("flock-sql: %d customers loaded, model 'churn' deployed. \\quit to exit.\n", *rows)

	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Print("flock> ")
		if !in.Scan() {
			break
		}
		line := strings.TrimSpace(in.Text())
		switch {
		case line == "":
			continue
		case line == `\quit` || line == `\q`:
			return
		case line == `\tables`:
			for _, t := range flock.DB.TableNames() {
				tab, _ := flock.DB.Table(t)
				fmt.Printf("  %s (%d rows)\n", t, tab.NumRows())
			}
		case line == `\models`:
			for _, m := range flock.Models.List() {
				fmt.Printf("  %s v%d [%s] inputs=%v nodes=%d blob=%dB\n",
					m.Name, m.Version, m.Stage, m.Inputs, m.NumNodes, m.BlobSize)
			}
		case line == `\audit`:
			for _, e := range flock.Audit.Entries() {
				fmt.Printf("  #%d %s %s %s allowed=%t\n", e.Seq, e.User, e.Action, e.Object, e.Allowed)
			}
			fmt.Printf("  chain intact: %t\n", flock.Audit.Verify() == -1)
		case line == `\prov`:
			n, e := flock.Catalog.Size()
			fmt.Printf("  catalog: %d nodes, %d edges\n", n, e)
		case strings.HasPrefix(line, `\save `):
			// Crash-safe save: temp file + fsync + atomic rename (a crash
			// mid-\save can no longer corrupt an existing snapshot in place,
			// and write/close errors surface instead of being discarded).
			path := strings.TrimSpace(strings.TrimPrefix(line, `\save `))
			if err := flock.DB.SaveSnapshotFile(path); err != nil {
				fmt.Println("error:", err)
			} else {
				fmt.Println("snapshot written to", path)
			}
		case strings.HasPrefix(line, `\explain `):
			explain(flock, strings.TrimPrefix(line, `\explain `))
		default:
			run(flock, line)
		}
	}
}

func run(flock *core.Flock, query string) {
	res, err := flock.Exec("shell", query)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	if len(res.Columns) > 0 {
		fmt.Println(strings.Join(res.Columns, " | "))
	}
	limit := len(res.Rows)
	if limit > 40 {
		limit = 40
	}
	for _, row := range res.Rows[:limit] {
		parts := make([]string, len(row))
		for i, v := range row {
			parts[i] = fmt.Sprint(v)
		}
		fmt.Println(strings.Join(parts, " | "))
	}
	if len(res.Rows) > limit {
		fmt.Printf("... (%d rows total)\n", len(res.Rows))
	}
	if res.Affected > 0 {
		fmt.Printf("%d rows affected\n", res.Affected)
	}
}

func explain(flock *core.Flock, query string) {
	stmt, err := sql.ParseOne(query)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	sel, ok := stmt.(*sql.SelectStmt)
	if !ok {
		fmt.Println("\\explain takes a SELECT")
		return
	}
	plan, err := opt.PlanSelect(sel, flock.Models, flock.DB, flock.DB.DefaultLevel)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Print(opt.FormatPlan(plan.Root))
	_, report, err := flock.DB.ExecSelect(sel, engine.ExecOptions{Level: flock.DB.DefaultLevel})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("optimizer:", report)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "flock-sql:", err)
	os.Exit(1)
}
