// Command flock-sql is an interactive shell over a Flock instance
// pre-loaded with the Figure-4 scoring table and a deployed "churn" model,
// for poking at the engine and the PREDICT extension:
//
//	$ flock-sql
//	flock> SELECT region, avg(PREDICT(churn, age, income, tenure, region, notes)) AS risk
//	       FROM customers GROUP BY region ORDER BY risk DESC
//
// Meta commands: \tables, \models, \audit, \prov, \explain <query>,
// \save <path>, \quit.
//
// With -url the shell connects to a running flock-serve over the wire
// protocol through the Go SDK (pkg/flockclient) instead of embedding an
// engine: statements stream through server-side cursors, so even huge
// results print page by page with O(page) client memory. Only \quit works
// remotely; the other meta commands inspect in-process state.
//
//	$ flock-sql -url http://127.0.0.1:8080 -user alice -token s3cret
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/opt"
	"repro/internal/sql"
	"repro/internal/workload"
	"repro/pkg/flockclient"
)

func main() {
	rows := flag.Int("rows", 10000, "size of the demo customers table")
	url := flag.String("url", "", "connect to a flock-serve at this base URL instead of embedding an engine")
	user := flag.String("user", "shell", "user for the remote session (-url mode)")
	token := flag.String("token", "", "credential token for the remote session (-url mode)")
	flag.Parse()

	if *url != "" {
		runRemote(*url, *user, *token)
		return
	}

	flock, err := core.New()
	if err != nil {
		fatal(err)
	}
	flock.Access.AssignRole("shell", "admin")
	if err := workload.LoadScoringTable(flock.DB, workload.ScoringConfig{
		Rows: *rows, Seed: 7, Regions: 6, WithText: true,
	}); err != nil {
		fatal(err)
	}
	pipe, err := workload.TrainScoringPipeline(4000, 42, 50, true)
	if err != nil {
		fatal(err)
	}
	if _, err := flock.DeployPipeline("shell", "churn", pipe, core.TrainingInfo{
		Script: "flock-sql bootstrap", Tables: []string{"customers"},
	}); err != nil {
		fatal(err)
	}
	fmt.Printf("flock-sql: %d customers loaded, model 'churn' deployed. \\quit to exit.\n", *rows)

	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Print("flock> ")
		if !in.Scan() {
			break
		}
		line := strings.TrimSpace(in.Text())
		switch {
		case line == "":
			continue
		case line == `\quit` || line == `\q`:
			return
		case line == `\tables`:
			for _, t := range flock.DB.TableNames() {
				tab, _ := flock.DB.Table(t)
				fmt.Printf("  %s (%d rows)\n", t, tab.NumRows())
			}
		case line == `\models`:
			for _, m := range flock.Models.List() {
				fmt.Printf("  %s v%d [%s] inputs=%v nodes=%d blob=%dB\n",
					m.Name, m.Version, m.Stage, m.Inputs, m.NumNodes, m.BlobSize)
			}
		case line == `\audit`:
			for _, e := range flock.Audit.Entries() {
				fmt.Printf("  #%d %s %s %s allowed=%t\n", e.Seq, e.User, e.Action, e.Object, e.Allowed)
			}
			fmt.Printf("  chain intact: %t\n", flock.Audit.Verify() == -1)
		case line == `\prov`:
			n, e := flock.Catalog.Size()
			fmt.Printf("  catalog: %d nodes, %d edges\n", n, e)
		case strings.HasPrefix(line, `\save `):
			// Crash-safe save: temp file + fsync + atomic rename (a crash
			// mid-\save can no longer corrupt an existing snapshot in place,
			// and write/close errors surface instead of being discarded).
			path := strings.TrimSpace(strings.TrimPrefix(line, `\save `))
			if err := flock.DB.SaveSnapshotFile(path); err != nil {
				fmt.Println("error:", err)
			} else {
				fmt.Println("snapshot written to", path)
			}
		case strings.HasPrefix(line, `\explain `):
			explain(flock, strings.TrimPrefix(line, `\explain `))
		default:
			run(flock, line)
		}
	}
}

func run(flock *core.Flock, query string) {
	res, err := flock.Exec("shell", query)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	if len(res.Columns) > 0 {
		fmt.Println(strings.Join(res.Columns, " | "))
	}
	limit := len(res.Rows)
	if limit > 40 {
		limit = 40
	}
	for _, row := range res.Rows[:limit] {
		parts := make([]string, len(row))
		for i, v := range row {
			parts[i] = fmt.Sprint(v)
		}
		fmt.Println(strings.Join(parts, " | "))
	}
	if len(res.Rows) > limit {
		fmt.Printf("... (%d rows total)\n", len(res.Rows))
	}
	if res.Affected > 0 {
		fmt.Printf("%d rows affected\n", res.Affected)
	}
}

func explain(flock *core.Flock, query string) {
	stmt, err := sql.ParseOne(query)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	sel, ok := stmt.(*sql.SelectStmt)
	if !ok {
		fmt.Println("\\explain takes a SELECT")
		return
	}
	plan, err := opt.PlanSelect(sel, flock.Models, flock.DB, flock.DB.DefaultLevel)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Print(opt.FormatPlan(plan.Root))
	_, report, err := flock.DB.ExecSelect(sel, engine.ExecOptions{Level: flock.DB.DefaultLevel})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("optimizer:", report)
}

// runRemote is the SDK-backed shell: every statement goes over the wire,
// SELECT results page through a server-side cursor (printed as they
// arrive, capped at 40 rows like the local shell).
func runRemote(url, user, token string) {
	ctx := context.Background()
	var opts []flockclient.Option
	if token != "" {
		opts = append(opts, flockclient.WithToken(token))
	}
	c, err := flockclient.Dial(ctx, url, user, opts...)
	if err != nil {
		fatal(err)
	}
	defer c.Close(context.Background())
	fmt.Printf("flock-sql: connected to %s as %s. \\quit to exit.\n", url, user)

	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Print("flock> ")
		if !in.Scan() {
			return
		}
		line := strings.TrimSpace(in.Text())
		switch {
		case line == "":
			continue
		case line == `\quit` || line == `\q`:
			return
		case strings.HasPrefix(line, `\`):
			fmt.Println("meta commands inspect in-process state; only \\quit works over -url")
		case strings.HasPrefix(strings.ToLower(line), "select"):
			runRemoteSelect(ctx, c, line)
		default:
			res, err := c.Exec(ctx, line)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			if res.Affected > 0 {
				fmt.Printf("%d rows affected\n", res.Affected)
			} else if len(res.Rows) > 0 {
				printRemoteRows(res.Columns, res.Rows, len(res.Rows))
			}
		}
	}
}

func runRemoteSelect(ctx context.Context, c *flockclient.Client, query string) {
	rs, err := c.Query(ctx, query)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	defer rs.Close()
	cols := rs.Columns()
	if len(cols) > 0 {
		fmt.Println(strings.Join(cols, " | "))
	}
	const display = 40
	printed, total := 0, 0
	row := make([]any, len(cols))
	ptrs := make([]any, len(cols))
	for i := range row {
		ptrs[i] = &row[i]
	}
	for rs.Next() {
		if err := rs.Scan(ptrs...); err != nil {
			fmt.Println("error:", err)
			return
		}
		total++
		if printed < display {
			parts := make([]string, len(row))
			for i, v := range row {
				parts[i] = fmt.Sprint(v)
			}
			fmt.Println(strings.Join(parts, " | "))
			printed++
		}
	}
	if err := rs.Err(); err != nil {
		fmt.Println("error:", err)
		return
	}
	if total > printed {
		fmt.Printf("... (%d rows total)\n", total)
	}
}

func printRemoteRows(cols []string, rows [][]any, limit int) {
	if len(cols) > 0 {
		fmt.Println(strings.Join(cols, " | "))
	}
	for _, row := range rows[:limit] {
		parts := make([]string, len(row))
		for i, v := range row {
			parts[i] = fmt.Sprint(v)
		}
		fmt.Println(strings.Join(parts, " | "))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "flock-sql:", err)
	os.Exit(1)
}
