// Package repro's root benchmarks regenerate every table and figure of the
// paper's evaluation as testing.B benchmarks, plus ablations for the design
// choices called out in DESIGN.md. Run with:
//
//	go test -bench=. -benchmem
//
// Figure-4 benchmarks report the qualifying-row count as a sanity metric;
// provenance benchmarks report graph sizes (nodes+edges).
package repro

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/notebooks"
	"repro/internal/onnx"
	"repro/internal/opt"
	"repro/internal/provenance"
	"repro/internal/pyprov"
	sqlpkg "repro/internal/sql"
	"repro/internal/workload"
)

// fig4Envs caches one environment per dataset size across benchmarks.
var (
	fig4Mu   sync.Mutex
	fig4Envs = map[int]*experiments.Fig4Env{}
)

const fig4Trees = 100

func fig4Env(b *testing.B, rows int) *experiments.Fig4Env {
	b.Helper()
	fig4Mu.Lock()
	defer fig4Mu.Unlock()
	env, ok := fig4Envs[rows]
	if !ok {
		var err error
		env, err = experiments.NewFig4Env(rows, fig4Trees)
		if err != nil {
			b.Fatal(err)
		}
		fig4Envs[rows] = env
	}
	return env
}

var fig4Sizes = []int{1000, 10000, 100000, 1000000}

// BenchmarkFigure4InferenceTime is the Figure-4 left panel: total inference
// time per configuration and dataset size.
func BenchmarkFigure4InferenceTime(b *testing.B) {
	configs := []struct {
		name string
		run  func(*experiments.Fig4Env) (int64, error)
	}{
		{"sklearn", func(e *experiments.Fig4Env) (int64, error) { return e.RunSklearn() }},
		{"ORT", func(e *experiments.Fig4Env) (int64, error) { return e.RunORT() }},
		{"SONNX", func(e *experiments.Fig4Env) (int64, error) { return e.RunInDB(opt.LevelParallel) }},
		{"SONNXext", func(e *experiments.Fig4Env) (int64, error) { return e.RunInDB(opt.LevelFull) }},
	}
	for _, cfg := range configs {
		for _, rows := range fig4Sizes {
			b.Run(fmt.Sprintf("%s/rows=%d", cfg.name, rows), func(b *testing.B) {
				env := fig4Env(b, rows)
				var count int64
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					n, err := cfg.run(env)
					if err != nil {
						b.Fatal(err)
					}
					count = n
				}
				b.ReportMetric(float64(count), "qualifying-rows")
			})
		}
	}
}

// BenchmarkFigure4Speedup is the right panel: the same query at 100K rows
// under increasing optimization levels (UDF baseline -> inlined -> full
// cross-optimization).
func BenchmarkFigure4Speedup(b *testing.B) {
	levels := []struct {
		name  string
		level opt.Level
	}{
		{"UDFBaseline", opt.LevelUDF},
		{"InlineSQL", opt.LevelParallel},
		{"Optimized", opt.LevelFull},
	}
	for _, l := range levels {
		b.Run(l.name, func(b *testing.B) {
			env := fig4Env(b, 100000)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := env.RunInDB(l.level); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkProvenanceCapture is Table 1: eager capture latency and graph
// size over the TPC-H and TPC-C workloads.
func BenchmarkProvenanceCapture(b *testing.B) {
	for _, w := range []struct {
		name    string
		queries []string
	}{
		{"TPCH", workload.TPCHWorkload(2208, 1)},
		{"TPCC", workload.TPCCWorkload(2200, 2)},
	} {
		b.Run(w.name, func(b *testing.B) {
			var nodes, edges int
			for i := 0; i < b.N; i++ {
				catalog := provenance.NewCatalog()
				tracker := provenance.NewSQLTracker(catalog)
				for _, q := range w.queries {
					if _, err := tracker.CaptureQuery(q, "bench"); err != nil {
						b.Fatal(err)
					}
				}
				nodes, edges = catalog.Size()
			}
			b.ReportMetric(float64(nodes+edges), "graph-size")
			b.ReportMetric(float64(len(w.queries)), "queries")
		})
	}
}

// BenchmarkProvenanceEagerVsLazy is the capture-mode ablation.
func BenchmarkProvenanceEagerVsLazy(b *testing.B) {
	queries := workload.TPCHWorkload(500, 3)
	log := make([]engine.LogEntry, len(queries))
	for i, q := range queries {
		log[i] = engine.LogEntry{Seq: int64(i + 1), Text: q, User: "u"}
	}
	b.Run("Eager", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tracker := provenance.NewSQLTracker(provenance.NewCatalog())
			for _, q := range queries {
				if _, err := tracker.CaptureQuery(q, "u"); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("Lazy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tracker := provenance.NewSQLTracker(provenance.NewCatalog())
			if captured, _ := tracker.CaptureLog(log); captured != len(queries) {
				b.Fatal("lazy capture missed queries")
			}
		}
	})
}

// BenchmarkProvenanceCompression is the graph-compression ablation.
func BenchmarkProvenanceCompression(b *testing.B) {
	tracker := provenance.NewSQLTracker(provenance.NewCatalog())
	for _, q := range workload.TPCHWorkload(1000, 4) {
		if _, err := tracker.CaptureQuery(q, "u"); err != nil {
			b.Fatal(err)
		}
	}
	var after int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		compressed, _ := provenance.Compress(tracker.Catalog())
		n, e := compressed.Size()
		after = n + e
	}
	nb, eb := tracker.Catalog().Size()
	b.ReportMetric(float64(nb+eb), "size-before")
	b.ReportMetric(float64(after), "size-after")
}

// BenchmarkPyProvCoverage is Table 2: analyzer throughput over the two
// corpora, reporting the coverage percentages as metrics.
func BenchmarkPyProvCoverage(b *testing.B) {
	for _, c := range []struct {
		name   string
		corpus []pyprov.Script
	}{
		{"Kaggle", pyprov.KaggleCorpus()},
		{"Microsoft", pyprov.MicrosoftCorpus()},
	} {
		b.Run(c.name, func(b *testing.B) {
			a := pyprov.NewAnalyzer()
			var rep pyprov.CoverageReport
			for i := 0; i < b.N; i++ {
				rep = pyprov.EvaluateCoverage(a, c.corpus)
			}
			b.ReportMetric(rep.ModelPct(), "models-pct")
			b.ReportMetric(rep.DatasetPct(), "datasets-pct")
		})
	}
}

// BenchmarkFigure2NotebookCoverage regenerates the notebook study,
// reporting the top-10 coverage of each corpus.
func BenchmarkFigure2NotebookCoverage(b *testing.B) {
	for _, gen := range []struct {
		name string
		make func() *notebooks.Corpus
	}{
		{"2017", notebooks.Corpus2017},
		{"2019", notebooks.Corpus2019},
	} {
		b.Run(gen.name, func(b *testing.B) {
			var top10 float64
			for i := 0; i < b.N; i++ {
				c := gen.make()
				top10 = c.Coverage([]int{10})[0]
			}
			b.ReportMetric(top10*100, "top10-coverage-pct")
		})
	}
}

// BenchmarkAblationRowVsVectorized compares in-process row-at-a-time vs
// vectorized prediction. In compiled Go the two are nearly equal — which
// localizes the UDF-inlining win of Figure 4 (right) in the per-call
// marshalling, not the arithmetic (see EXPERIMENTS.md).
func BenchmarkAblationRowVsVectorized(b *testing.B) {
	env := fig4Env(b, 10000)
	b.Run("RowAtATime", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := env.Pipe.Predict(env.Frame); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Vectorized", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := env.Pipe.PredictBatch(env.Frame); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationParallelism sweeps the engine's worker count over the
// in-DB scoring query (on a single-core host the sweep is flat — that is
// the finding, not a bug).
func BenchmarkAblationParallelism(b *testing.B) {
	env := fig4Env(b, 100000)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := env.DB.ExecAs(
					`SELECT count(*) AS n FROM customers WHERE PREDICT(churn, age, income, tenure, region, notes) >= 0.5`,
					"bench", engine.ExecOptions{Level: opt.LevelParallel, Parallelism: workers})
				if err != nil {
					b.Fatal(err)
				}
				_ = res
			}
		})
	}
}

// BenchmarkAblationPruning isolates model-input pruning + compression: the
// same vectorized scoring with and without the cross-optimizer's model
// rewrites (no threshold in the query, so push-up does not apply). On this
// dense GBM the passes are neutral; they exist for sparse models and must
// at minimum never regress correctness or performance materially.
func BenchmarkAblationPruning(b *testing.B) {
	env := fig4Env(b, 100000)
	const q = `SELECT avg(PREDICT(churn, age, income, tenure, region, notes)) AS s FROM customers`
	for _, cfg := range []struct {
		name  string
		level opt.Level
	}{
		{"Off", opt.LevelParallel},
		{"On", opt.LevelFull},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := env.DB.ExecAs(q, "bench", engine.ExecOptions{Level: cfg.level}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationCompression measures stats-driven tree compression in
// isolation at the graph level: session throughput before and after
// CompressWithStats.
func BenchmarkAblationCompression(b *testing.B) {
	env := fig4Env(b, 10000)
	batch, err := onnx.BatchFromFrame(env.Graph, env.Frame)
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, g *onnx.Graph, batch *onnx.Batch) {
		sess, err := onnx.NewSession(g)
		if err != nil {
			b.Fatal(err)
		}
		out := make([]float64, batch.N)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := sess.RunInto(batch, out); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("Uncompressed", func(b *testing.B) { run(b, env.Graph, batch) })
	b.Run("Compressed", func(b *testing.B) {
		g := env.Graph.Clone()
		tab, err := env.DB.Table("customers")
		if err != nil {
			b.Fatal(err)
		}
		res := onnx.CompressWithStats(g, tab.Stats())
		b.ReportMetric(float64(res.NodesBefore), "tree-nodes-before")
		b.ReportMetric(float64(res.NodesAfter), "tree-nodes-after")
		cb, err := onnx.BatchFromFrame(g, env.Frame)
		if err != nil {
			b.Fatal(err)
		}
		run(b, g, cb)
	})
}

// BenchmarkAblationWireFormat compares the remote-scoring wire formats
// (binary vs JSON/REST) that separate SONNX from the standalone paths.
func BenchmarkAblationWireFormat(b *testing.B) {
	env := fig4Env(b, 10000)
	batch, err := onnx.BatchFromFrame(env.Graph, env.Frame)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("Binary", func(b *testing.B) {
		rs, err := onnx.NewRemoteScorer(env.Graph, 1000)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			if _, err := rs.Score(batch); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("JSON", func(b *testing.B) {
		rs, err := onnx.NewRemoteScorerJSON(env.Graph, 1000)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			if _, err := rs.Score(batch); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTPCHExecution measures the engine end to end on the executable
// TPC-H template subset over generated data (scale 1: 1,500 orders).
func BenchmarkTPCHExecution(b *testing.B) {
	db := engine.NewDB()
	if err := workload.LoadTPCH(db, 1); err != nil {
		b.Fatal(err)
	}
	p := workload.NewTPCHParams(1)
	queries := map[int]string{}
	for _, q := range workload.ExecutableTPCHQueries {
		queries[q] = workload.TPCHQuery(q, p)
	}
	for _, q := range workload.ExecutableTPCHQueries {
		b.Run(fmt.Sprintf("Q%d", q), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := db.Exec(queries[q]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSnapshotPersistence measures durable snapshot save/load of the
// Figure-4 table (the durability requirement of §4.2).
func BenchmarkSnapshotPersistence(b *testing.B) {
	env := fig4Env(b, 100000)
	b.Run("Save", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := env.DB.SnapshotBytes(); err != nil {
				b.Fatal(err)
			}
		}
	})
	blob, err := env.DB.SnapshotBytes()
	if err != nil {
		b.Fatal(err)
	}
	b.Run("Load", func(b *testing.B) {
		b.SetBytes(int64(len(blob)))
		for i := 0; i < b.N; i++ {
			db := engine.NewDB()
			if err := db.LoadSnapshot(bytesReader(blob)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func bytesReader(b []byte) *bytes.Reader { return bytes.NewReader(b) }

// Engine hot-path microbenchmarks: filter, group-by, and hash join over a
// synthetic events/dims schema. These isolate the expression kernels and the
// typed hash table from model scoring; run with -benchmem to see allocs/op.

const benchRows = 200_000

// benchDB builds an "events" fact table (200K rows, 1000 groups) and a
// "dims" dimension table (10K rows) with a deterministic LCG so before/after
// runs see identical data.
func benchDB(b *testing.B) *engine.DB {
	b.Helper()
	db := engine.NewDB()
	seed := uint64(0x9E3779B97F4A7C15)
	next := func() uint64 {
		seed = seed*6364136223846793005 + 1442695040888963407
		return seed >> 11
	}
	ids := make([]int64, benchRows)
	grps := make([]int64, benchRows)
	vals := make([]float64, benchRows)
	cats := make([]string, benchRows)
	catNames := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta"}
	for i := 0; i < benchRows; i++ {
		ids[i] = int64(i)
		grps[i] = int64(next() % 1000)
		vals[i] = float64(next()%1_000_000) / 1000.0 // uniform [0, 1000)
		cats[i] = catNames[next()%8]
	}
	if _, err := db.CreateTableFromColumns("events",
		[]string{"id", "grp", "val", "cat"},
		[]engine.Column{
			engine.IntColumn(ids), engine.IntColumn(grps),
			engine.FloatColumn(vals), engine.StringColumn(cats),
		}); err != nil {
		b.Fatal(err)
	}
	const dimRows = 10_000
	ks := make([]int64, dimRows)
	names := make([]string, dimRows)
	for i := 0; i < dimRows; i++ {
		ks[i] = int64(i)
		names[i] = fmt.Sprintf("dim-%d", i)
	}
	if _, err := db.CreateTableFromColumns("dims",
		[]string{"k", "name"},
		[]engine.Column{engine.IntColumn(ks), engine.StringColumn(names)}); err != nil {
		b.Fatal(err)
	}
	return db
}

// benchExec runs q single-threaded so the numbers measure kernel work, not
// scheduling. The statement is parsed once up front: the loop measures
// planning + execution, so allocs/op reflects the engine hot path rather
// than the SQL lexer.
func benchExec(b *testing.B, db *engine.DB, q string, wantRows int) {
	b.Helper()
	stmt, err := sqlpkg.ParseOne(q)
	if err != nil {
		b.Fatal(err)
	}
	sel, ok := stmt.(*sqlpkg.SelectStmt)
	if !ok {
		b.Fatalf("query %q is not a SELECT", q)
	}
	opts := engine.ExecOptions{Level: opt.LevelParallel, Parallelism: 1}
	rs, _, err := db.ExecSelect(sel, opts)
	if err != nil {
		b.Fatal(err)
	}
	if rs.N != wantRows {
		b.Fatalf("query %q: %d rows, want %d", q, rs.N, wantRows)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs, _, err := db.ExecSelect(sel, opts)
		if err != nil {
			b.Fatal(err)
		}
		if rs.N != wantRows {
			b.Fatalf("row count drifted: %d, want %d", rs.N, wantRows)
		}
	}
}

// BenchmarkFilter measures predicate evaluation + selection over 200K rows
// (~1% selectivity, reduced by a global count so result conversion is not
// part of the measurement).
func BenchmarkFilter(b *testing.B) {
	db := benchDB(b)
	benchExec(b, db,
		`SELECT count(*) AS n FROM events WHERE val > 985.0 AND grp <> 500 AND cat <> 'zeta'`,
		1)
}

// BenchmarkGroupBy measures hash aggregation: 200K rows into 1000 groups
// with count/sum/min/max.
func BenchmarkGroupBy(b *testing.B) {
	db := benchDB(b)
	benchExec(b, db,
		`SELECT grp, count(*) AS n, sum(val) AS s, min(val) AS lo, max(val) AS hi
			FROM events GROUP BY grp`,
		1000)
}

// BenchmarkHashJoin measures the build+probe path: 200K-row fact against a
// 10K-row dimension on an int key, reduced by a global count.
func BenchmarkHashJoin(b *testing.B) {
	db := benchDB(b)
	benchExec(b, db,
		`SELECT count(*) AS n FROM events e JOIN dims d ON e.grp = d.k`,
		1)
}

// BenchmarkDistinct measures duplicate elimination over the 8-value cat
// column plus grp (8000 distinct pairs).
func BenchmarkDistinct(b *testing.B) {
	db := benchDB(b)
	benchExec(b, db, `SELECT DISTINCT cat, grp FROM events`, 8000)
}

// ---- morsel-parallel operator benchmarks ----
//
// 1M-row inputs at workers=1 vs 8: the morsel queue's speedup target is
// ≥2× for GROUP BY and hash join at 8 workers on a multicore host. On a
// single-core host the sweep is flat — that is the finding, not a bug.

const parallelBenchRows = 1_000_000

var (
	parallelBenchMu sync.Mutex
	parallelBenchDB *engine.DB
)

// benchParallelDB builds (once) a 1M-row events table and a 100K-row dims
// table with the same deterministic LCG shape as benchDB.
func benchParallelDBGet(b *testing.B) *engine.DB {
	b.Helper()
	parallelBenchMu.Lock()
	defer parallelBenchMu.Unlock()
	if parallelBenchDB != nil {
		return parallelBenchDB
	}
	db := engine.NewDB()
	seed := uint64(0x9E3779B97F4A7C15)
	next := func() uint64 {
		seed = seed*6364136223846793005 + 1442695040888963407
		return seed >> 11
	}
	n := parallelBenchRows
	ids := make([]int64, n)
	grps := make([]int64, n)
	vals := make([]float64, n)
	cats := make([]string, n)
	catNames := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta"}
	for i := 0; i < n; i++ {
		ids[i] = int64(i)
		grps[i] = int64(next() % 10_000)
		vals[i] = float64(next()%1_000_000) / 1000.0
		cats[i] = catNames[next()%8]
	}
	if _, err := db.CreateTableFromColumns("events",
		[]string{"id", "grp", "val", "cat"},
		[]engine.Column{
			engine.IntColumn(ids), engine.IntColumn(grps),
			engine.FloatColumn(vals), engine.StringColumn(cats),
		}); err != nil {
		b.Fatal(err)
	}
	const dimRows = 100_000
	ks := make([]int64, dimRows)
	names := make([]string, dimRows)
	for i := 0; i < dimRows; i++ {
		ks[i] = int64(i) // unique keys: every probe row matches exactly once
		names[i] = fmt.Sprintf("dim-%d", i)
	}
	if _, err := db.CreateTableFromColumns("dims",
		[]string{"k", "name"},
		[]engine.Column{engine.IntColumn(ks), engine.StringColumn(names)}); err != nil {
		b.Fatal(err)
	}
	parallelBenchDB = db
	return db
}

// benchExecParallel runs q at each worker count as sub-benchmarks.
func benchExecParallel(b *testing.B, q string, wantRows int) {
	b.Helper()
	db := benchParallelDBGet(b)
	stmt, err := sqlpkg.ParseOne(q)
	if err != nil {
		b.Fatal(err)
	}
	sel, ok := stmt.(*sqlpkg.SelectStmt)
	if !ok {
		b.Fatalf("query %q is not a SELECT", q)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			opts := engine.ExecOptions{Level: opt.LevelParallel, Parallelism: workers}
			rs, _, err := db.ExecSelect(sel, opts)
			if err != nil {
				b.Fatal(err)
			}
			if rs.N != wantRows {
				b.Fatalf("query %q: %d rows, want %d", q, rs.N, wantRows)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := db.ExecSelect(sel, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParallelGroupBy: 1M rows into 10K groups with thread-local
// pre-aggregation and a merge phase.
func BenchmarkParallelGroupBy(b *testing.B) {
	benchExecParallel(b,
		`SELECT grp, count(*) AS n, sum(val) AS s, min(val) AS lo, max(val) AS hi
			FROM events GROUP BY grp`,
		10_000)
}

// BenchmarkParallelHashJoin: radix-partitioned parallel build over 100K
// dims, morsel-parallel probe over 1M events (one match per probe row,
// reduced by a count).
func BenchmarkParallelHashJoin(b *testing.B) {
	benchExecParallel(b,
		`SELECT count(*) AS n FROM events e JOIN dims d ON e.grp = d.k`,
		1)
}

// BenchmarkParallelDistinct: 80K distinct (cat, grp) pairs out of 1M rows.
func BenchmarkParallelDistinct(b *testing.B) {
	benchExecParallel(b, `SELECT DISTINCT cat, grp FROM events`, 80_000)
}

// BenchmarkParallelSort: chunk sorts + pairwise merges over 1M rows.
func BenchmarkParallelSort(b *testing.B) {
	benchExecParallel(b, `SELECT val, id FROM events ORDER BY val, id`, parallelBenchRows)
}

// BenchmarkParallelFilter: skewed predicate over 1M rows through the morsel
// queue (contiguous ranges would idle workers on the cheap half).
func BenchmarkParallelFilter(b *testing.B) {
	benchExecParallel(b,
		`SELECT count(*) AS n FROM events WHERE val > 990.0 AND cat <> 'zeta'`,
		1)
}

// BenchmarkWALGroupCommit measures committed-DML throughput under the
// always-fsync policy at increasing writer concurrency: group commit turns
// N per-commit fsyncs into ~1 per batch, so throughput should rise steeply
// with writers while per-commit durability is unchanged.
func BenchmarkWALGroupCommit(b *testing.B) {
	for _, writers := range []int{1, 8, 32} {
		b.Run(fmt.Sprintf("writers=%d", writers), func(b *testing.B) {
			dir := b.TempDir()
			db, _, err := engine.OpenDirDB(dir, true)
			if err != nil {
				b.Fatal(err)
			}
			defer db.CloseDurability()
			if _, err := db.Exec(`CREATE TABLE bench_writes (w int, i int)`); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var wg sync.WaitGroup
			per := (b.N + writers - 1) / writers
			var failed atomic.Bool
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < per; i++ {
						q := fmt.Sprintf("INSERT INTO bench_writes VALUES (%d, %d)", w, i)
						if _, err := db.Exec(q); err != nil {
							failed.Store(true)
							return
						}
					}
				}(w)
			}
			wg.Wait()
			b.StopTimer()
			if failed.Load() {
				b.Fatal("a concurrent INSERT failed")
			}
			syncs, records := db.WALGroupCommitStats()
			if syncs > 0 {
				b.ReportMetric(float64(records)/float64(syncs), "records/fsync")
			}
		})
	}
}
