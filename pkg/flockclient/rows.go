package flockclient

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
)

// Rows iterates a query result database/sql-style, fetching pages from the
// server-side cursor on demand: the query executed once at Query time, and
// client memory is bounded by one page. Not safe for concurrent use.
//
//	for rows.Next() {
//	    if err := rows.Scan(&id, &score); err != nil { ... }
//	}
//	if err := rows.Err(); err != nil { ... }
//	rows.Close()
type Rows struct {
	c      *Client
	ctx    context.Context
	cursor string
	cols   []string

	page [][]any
	i    int   // next unread row within page
	cur  []any // the row Next advanced to; what Scan reads
	// done: the server finished (and already released) the cursor; the
	// buffered page may still hold rows to iterate. closed: the user (or a
	// drained iteration) is finished with the Rows.
	done   bool
	closed bool
	err    error
}

// Columns names the result columns.
func (r *Rows) Columns() []string { return append([]string(nil), r.cols...) }

// Next advances to the next row (database/sql semantics: Next moves, Scan
// reads the current row and may be called any number of times per Next),
// fetching the next page from the server when the buffered one is
// exhausted. It returns false at the end of the result or on error (check
// Err).
func (r *Rows) Next() bool {
	if r.err != nil || (r.closed && !r.done) {
		return false
	}
	for r.i >= len(r.page) {
		if r.done {
			r.closed = true // drained; the server already released the cursor
			r.cur = nil
			return false
		}
		if !r.fetch() {
			return false
		}
	}
	r.cur = r.page[r.i]
	r.i++
	return true
}

// fetch pulls one page; false means error (EOF is signaled through done and
// handled by Next's loop). Fetch is retryable by design (and WithRetry
// exploits it): the server rolls a failing or timed-out window back before
// reporting, so re-fetching resumes from the same position — no rows are
// skipped or duplicated.
func (r *Rows) fetch() bool {
	var out struct {
		Rows [][]json.RawMessage `json:"rows"`
		Done bool                `json:"done"`
	}
	err := r.c.postIdem(r.ctx, "/v1/cursor/fetch", map[string]any{
		"session": r.c.sessionID(), "cursor": r.cursor, "max_rows": r.c.batchRows,
	}, &out)
	if err != nil {
		r.err = err
		return false
	}
	page, err := decodeRows(out.Rows)
	if err != nil {
		r.err = err
		return false
	}
	r.page = page
	r.i = 0
	r.done = out.Done
	return true
}

// Scan copies the current row (the one Next advanced to) into dest
// pointers (*int64, *int, *float64, *string, *bool, *any). Numeric cells
// convert across int/float when the value fits. Scan does not advance: a
// failed Scan loses nothing, and repeated Scans reread the same row.
func (r *Rows) Scan(dest ...any) error {
	if r.err != nil {
		return r.err
	}
	row := r.cur
	if row == nil {
		return errors.New("flockclient: Scan called without a successful Next")
	}
	if len(dest) != len(row) {
		return fmt.Errorf("flockclient: Scan got %d destinations for %d columns", len(dest), len(row))
	}
	for i, d := range dest {
		if err := assign(d, row[i]); err != nil {
			return fmt.Errorf("flockclient: column %d (%s): %w", i, r.colName(i), err)
		}
	}
	return nil
}

func (r *Rows) colName(i int) string {
	if i < len(r.cols) {
		return r.cols[i]
	}
	return fmt.Sprintf("#%d", i)
}

// Err reports the first error encountered while iterating.
func (r *Rows) Err() error {
	if r.err != nil && IsCursorExpired(r.err) {
		return fmt.Errorf("cursor expired mid-iteration (TTL or server restart); re-run the query: %w", r.err)
	}
	return r.err
}

// Close releases the server-side cursor early. Iterators drained to
// completion are already released server-side; Close is then a no-op.
// Always safe to defer.
func (r *Rows) Close() error {
	if r.closed || r.done {
		r.closed = true
		return nil
	}
	r.closed = true
	err := r.c.postIdem(r.ctx, "/v1/cursor/close", map[string]any{
		"session": r.c.sessionID(), "cursor": r.cursor,
	}, nil)
	var ae *APIError
	if errors.As(err, &ae) && (ae.Status == http.StatusNotFound || ae.Status == http.StatusGone) {
		return nil // already gone (drained, expired, or session-closed)
	}
	return err
}

// assign converts one wire value into a destination pointer.
func assign(dest, v any) error {
	switch d := dest.(type) {
	case *any:
		*d = v
		return nil
	case *int64:
		switch x := v.(type) {
		case int64:
			*d = x
			return nil
		case float64:
			if x == float64(int64(x)) {
				*d = int64(x)
				return nil
			}
			return fmt.Errorf("float %v into *int64", x)
		}
	case *int:
		switch x := v.(type) {
		case int64:
			*d = int(x)
			return nil
		case float64:
			if x == float64(int64(x)) {
				*d = int(x)
				return nil
			}
			return fmt.Errorf("float %v into *int", x)
		}
	case *float64:
		switch x := v.(type) {
		case float64:
			*d = x
			return nil
		case int64:
			*d = float64(x)
			return nil
		}
	case *string:
		if x, ok := v.(string); ok {
			*d = x
			return nil
		}
	case *bool:
		if x, ok := v.(bool); ok {
			*d = x
			return nil
		}
	default:
		return fmt.Errorf("unsupported Scan destination %T", dest)
	}
	if v == nil {
		return fmt.Errorf("NULL into %T (use *any)", dest)
	}
	return fmt.Errorf("cannot scan %T into %T", v, dest)
}
