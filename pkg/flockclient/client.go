// Package flockclient is the public Go SDK for the Flock serving layer
// (wire protocol v1, see docs/api.md): authenticated sessions, queries
// returning a database/sql-shaped Rows iterator that pages through a
// server-side cursor (the query runs once, pages are fetched on demand,
// and client memory stays O(page)), prepared statements, and PREDICT
// helpers for in-DBMS inference.
//
//	c, err := flockclient.Dial(ctx, "http://127.0.0.1:8080", "alice",
//	    flockclient.WithToken("s3cret"))
//	defer c.Close(context.Background())
//
//	rows, err := c.Query(ctx, "SELECT id, income FROM customers WHERE income > 50000.0")
//	defer rows.Close()
//	for rows.Next() {
//	    var id int64
//	    var income float64
//	    if err := rows.Scan(&id, &income); err != nil { ... }
//	}
//	if err := rows.Err(); err != nil { ... }
package flockclient

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// APIError is a non-2xx response from the server, carrying the HTTP status
// and the server's error message.
type APIError struct {
	Status  int
	Message string
	// RetryAfter is the server's backoff advice from the Retry-After header
	// (zero when absent). The server derives it from live queue pressure,
	// so honoring it beats a fixed client-side backoff.
	RetryAfter time.Duration
	// Leader is the X-Flock-Leader hint a replica stamps on read-only write
	// rejections: the base URL of the node currently accepting writes
	// (empty when absent). Failover follows it.
	Leader string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("flockclient: server returned %d: %s", e.Status, e.Message)
}

// IsTransient reports whether err is a transient condition a retry can
// plausibly outlive: server-side shedding or degradation (503), an
// upstream scoring failure (502), a server-side timeout (504), or a
// transport-level timeout/connection failure. Client mistakes (4xx) and
// context cancellation are not transient.
func IsTransient(err error) bool {
	var ae *APIError
	if errors.As(err, &ae) {
		switch ae.Status {
		case http.StatusServiceUnavailable, http.StatusBadGateway, http.StatusGatewayTimeout:
			return true
		}
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return true
	}
	var op *net.OpError
	return errors.As(err, &op) // dial/read against a dead or restarting server
}

// IsCursorExpired reports whether err is the server's distinct "cursor
// expired or closed" condition (HTTP 410): the cursor's TTL lapsed or it
// was closed, and the query must be re-run to resume.
func IsCursorExpired(err error) bool {
	var ae *APIError
	return errors.As(err, &ae) && ae.Status == http.StatusGone
}

// Client is a connected session against one Flock server. It is safe for
// concurrent use; each Rows iterator, however, must be driven from one
// goroutine at a time.
type Client struct {
	hc        *http.Client
	user      string
	token     string
	batchRows int
	level     string
	retryMax  int
	retryBase time.Duration

	// epMu guards base and session: failover re-dials a session at another
	// endpoint and swaps both while calls may be in flight.
	epMu    sync.Mutex
	base    string
	session string
	// failover is the WithFailover candidate list, rotated through when the
	// current endpoint keeps failing transiently.
	failover []string

	// Read-endpoint routing (WithReadEndpoint): reads go to a replica
	// through a lazily dialed sub-client, with fallback to the primary.
	readURL string
	readMu  sync.Mutex
	readC   *Client
}

// Option configures Dial.
type Option func(*Client)

// WithToken authenticates the session with a credential token.
func WithToken(token string) Option {
	return func(c *Client) { c.token = token }
}

// WithHTTPClient substitutes the underlying *http.Client (timeouts,
// transports, test doubles). The default has no overall timeout — streams
// and fetches carry per-request contexts instead.
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// WithBatchRows sets the page size Rows fetches per round trip (default
// 4096). Smaller pages bound client memory tighter; larger pages cut round
// trips.
func WithBatchRows(n int) Option {
	return func(c *Client) {
		if n > 0 {
			c.batchRows = n
		}
	}
}

// WithLevel pins an optimization level ("udf", "vectorized", "parallel",
// "full") on every query; the default lets the server choose.
func WithLevel(level string) Option {
	return func(c *Client) { c.level = level }
}

// WithReadEndpoint routes read traffic — Query, Predict, PredictAbove,
// and the cursor fetches behind them — to a read replica at url (a
// flock-serve -replica-of instance), while Exec and prepared statements
// (whose handles live in the primary's plan cache) keep going to the
// primary. The replica session is dialed
// lazily on the first read; when the replica is unreachable or answers
// with a transient error (down, degraded, lagging), the read falls back
// to the primary transparently. Replicas apply the leader's log
// asynchronously, so routed reads are eventually consistent: a row
// written through Exec appears on the replica after the replication lag,
// not instantly.
func WithReadEndpoint(url string) Option {
	return func(c *Client) { c.readURL = strings.TrimRight(url, "/") }
}

// WithFailover registers alternate server endpoints for leader failover.
// When a call fails transiently (the server is down or sheds it) the
// client re-dials a session at the next candidate — following the
// X-Flock-Leader hint first when a replica named the current leader — and
// retries there, under the WithRetry budget (failover implies a retry
// budget of at least len(endpoints) attempts). Exec is redirected only on
// a definitive read-only rejection from a replica, where the statement
// provably did not execute; ambiguous outcomes still surface to the
// caller. Open cursors and prepared statements do not survive failover:
// fetches fail and handles answer 404, so re-run the query or re-prepare.
func WithFailover(endpoints ...string) Option {
	return func(c *Client) {
		for _, e := range endpoints {
			if e = strings.TrimRight(e, "/"); e != "" {
				c.failover = append(c.failover, e)
			}
		}
	}
}

// WithRetry enables bounded retry with exponential backoff for transient
// failures (see IsTransient) on idempotent calls: Dial, Ping, Query,
// Prepare, prepared-SELECT Query, and cursor fetch/close. Exec is NEVER
// retried — DML is not idempotent and an ambiguous outcome (request landed,
// response lost) must surface to the caller. max bounds re-attempts after
// the first try; base seeds the backoff (doubled per retry with jitter,
// default 100ms), overridden by the server's Retry-After advice when
// present. Retries stop immediately once the call's context is done.
func WithRetry(max int, base time.Duration) Option {
	return func(c *Client) {
		if max > 0 {
			c.retryMax = max
		}
		if base > 0 {
			c.retryBase = base
		}
	}
}

// Dial opens an authenticated session. Close releases it server-side.
func Dial(ctx context.Context, baseURL, user string, opts ...Option) (*Client, error) {
	c := &Client{
		base:      strings.TrimRight(baseURL, "/"),
		hc:        &http.Client{},
		user:      user,
		batchRows: 4096,
		retryBase: 100 * time.Millisecond,
	}
	for _, o := range opts {
		o(c)
	}
	if len(c.failover) > 0 && c.retryMax < len(c.failover) {
		// Failover needs at least one attempt per candidate to be useful.
		c.retryMax = len(c.failover)
	}
	var out struct {
		Session string `json:"session"`
	}
	// Session creation is safely retryable: a duplicate session from a
	// landed-but-lost first attempt just expires with its TTL.
	if err := c.postIdem(ctx, "/v1/sessions", map[string]any{"user": user, "token": c.token}, &out); err != nil {
		return nil, err
	}
	if out.Session == "" {
		return nil, errors.New("flockclient: server returned no session id")
	}
	c.epMu.Lock()
	c.session = out.Session
	c.epMu.Unlock()
	return c, nil
}

// endpointURL reports the base URL calls currently go to (failover swaps it).
func (c *Client) endpointURL() string {
	c.epMu.Lock()
	defer c.epMu.Unlock()
	return c.base
}

// sessionID reports the current session id (failover re-dials a new one).
func (c *Client) sessionID() string {
	c.epMu.Lock()
	defer c.epMu.Unlock()
	return c.session
}

// failTo re-dials a session at url and makes it the client's endpoint. The
// session dial doubles as the liveness probe: a dead candidate fails here
// and the previous endpoint stays in place.
func (c *Client) failTo(ctx context.Context, url string) error {
	url = strings.TrimRight(url, "/")
	if url == "" {
		return errors.New("flockclient: empty failover endpoint")
	}
	var out struct {
		Session string `json:"session"`
	}
	if err := c.postTo(ctx, url, "/v1/sessions", map[string]any{"user": c.user, "token": c.token}, &out); err != nil {
		return err
	}
	if out.Session == "" {
		return errors.New("flockclient: failover endpoint returned no session id")
	}
	c.epMu.Lock()
	c.base, c.session = url, out.Session
	c.epMu.Unlock()
	return nil
}

// maybeFailover reacts to a transient error by moving the client to
// another endpoint: the server's X-Flock-Leader hint first (a replica
// naming the actual leader beats guessing), then the WithFailover
// candidates in order. Reports whether the endpoint changed.
func (c *Client) maybeFailover(ctx context.Context, err error) bool {
	var ae *APIError
	if errors.As(err, &ae) && ae.Leader != "" && ae.Leader != c.endpointURL() {
		if c.failTo(ctx, ae.Leader) == nil {
			return true
		}
	}
	for _, url := range c.failover {
		if url == c.endpointURL() {
			continue
		}
		if c.failTo(ctx, url) == nil {
			return true
		}
	}
	return false
}

// Close deletes the server-side session (which also releases any cursors
// it still holds), including the read-endpoint session if one was dialed.
func (c *Client) Close(ctx context.Context) error {
	c.readMu.Lock()
	rc := c.readC
	c.readC = nil
	c.readMu.Unlock()
	if rc != nil {
		_ = rc.Close(ctx) // best-effort: the replica session dies with its TTL anyway
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, c.endpointURL()+"/v1/sessions/"+c.sessionID(), nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusNotFound {
		return readAPIError(resp)
	}
	return nil
}

// Ping checks the server's health endpoint.
func (c *Client) Ping(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.endpointURL()+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return readAPIError(resp)
	}
	return nil
}

// Session exposes the raw session id (for debugging and tests).
func (c *Client) Session() string { return c.sessionID() }

// Endpoint exposes the base URL calls currently go to — after a failover
// it names the endpoint the client moved to.
func (c *Client) Endpoint() string { return c.endpointURL() }

// Result is the outcome of a non-cursor statement.
type Result struct {
	Columns  []string
	Rows     [][]any
	Affected int64
}

// Exec runs a statement (DML, DDL, or a small SELECT) and returns the
// materialized result. For large SELECTs use Query, which pages. Exec is
// never retried by WithRetry: DML is not idempotent, and an ambiguous
// outcome (the request landed but the response was lost) must surface to
// the caller rather than risk a double-apply.
func (c *Client) Exec(ctx context.Context, sql string) (*Result, error) {
	body := map[string]any{"session": c.sessionID(), "sql": sql}
	if c.level != "" {
		body["level"] = c.level
	}
	var out struct {
		Columns  []string            `json:"columns"`
		Rows     [][]json.RawMessage `json:"rows"`
		Affected int64               `json:"affected"`
	}
	err := c.post(ctx, "/v1/query", body, &out)
	var ae *APIError
	if err != nil && errors.As(err, &ae) && ae.Status == http.StatusServiceUnavailable && ae.Leader != "" {
		// A read-only replica named the leader: the rejection is definitive
		// (the statement provably did not execute there), so redirecting
		// once is not a double-apply. Everything else stays non-retried.
		if ferr := c.failTo(ctx, ae.Leader); ferr == nil {
			body["session"] = c.sessionID()
			err = c.post(ctx, "/v1/query", body, &out)
		}
	}
	if err != nil {
		return nil, err
	}
	rows, err := decodeRows(out.Rows)
	if err != nil {
		return nil, err
	}
	return &Result{Columns: out.Columns, Rows: rows, Affected: out.Affected}, nil
}

// Query opens a server-side cursor over a SELECT and returns a Rows
// iterator that fetches pages lazily. The caller must Close the Rows (or
// drain it to completion); abandoning it leaves the server cursor to its
// TTL. With WithReadEndpoint configured, the query (and the cursor behind
// it) runs on the read replica, falling back to the primary when the
// replica is unreachable or sheds the request.
func (c *Client) Query(ctx context.Context, sql string) (*Rows, error) {
	if rc := c.readClient(ctx); rc != nil {
		rows, err := rc.queryHere(ctx, sql)
		if err == nil {
			return rows, nil
		}
		if !IsTransient(err) {
			return nil, err
		}
		// The replica shed the read (down, degraded, or lagging past its
		// readiness gate): serve it from the primary instead.
	}
	return c.queryHere(ctx, sql)
}

// readClient lazily dials the configured read endpoint, returning nil when
// none is configured or the dial fails (the caller then uses the primary;
// the next read retries the dial).
func (c *Client) readClient(ctx context.Context) *Client {
	if c.readURL == "" || c.readURL == c.endpointURL() {
		return nil
	}
	c.readMu.Lock()
	defer c.readMu.Unlock()
	if c.readC != nil {
		return c.readC
	}
	rc, err := Dial(ctx, c.readURL, c.user, func(n *Client) {
		n.hc = c.hc
		n.token = c.token
		n.batchRows = c.batchRows
		n.level = c.level
		n.retryMax = c.retryMax
		n.retryBase = c.retryBase
	})
	if err != nil {
		return nil
	}
	c.readC = rc
	return rc
}

// queryHere opens the cursor on this client's own endpoint (no routing).
func (c *Client) queryHere(ctx context.Context, sql string) (*Rows, error) {
	body := map[string]any{"session": c.sessionID(), "sql": sql, "cursor": true}
	if c.level != "" {
		body["level"] = c.level
	}
	var out struct {
		Cursor  string   `json:"cursor"`
		Columns []string `json:"columns"`
	}
	// Opening a cursor is retryable: a cursor orphaned by a lost response
	// expires with its TTL, and the query has no side effects.
	if err := c.postIdem(ctx, "/v1/query", body, &out); err != nil {
		return nil, err
	}
	if out.Cursor == "" {
		return nil, errors.New("flockclient: server returned no cursor id")
	}
	return &Rows{c: c, ctx: ctx, cursor: out.Cursor, cols: out.Columns}, nil
}

// Stmt is a prepared statement handle. The server may evict handles from
// its LRU; Query/Exec then return a 404 APIError and the statement must be
// re-prepared.
type Stmt struct {
	c      *Client
	handle string
	kind   string
}

// Prepare plans a statement once for repeated execution.
func (c *Client) Prepare(ctx context.Context, sql string) (*Stmt, error) {
	body := map[string]any{"session": c.sessionID(), "sql": sql}
	if c.level != "" {
		body["level"] = c.level
	}
	var out struct {
		Stmt string `json:"stmt"`
		Kind string `json:"kind"`
	}
	if err := c.postIdem(ctx, "/v1/prepare", body, &out); err != nil {
		return nil, err
	}
	return &Stmt{c: c, handle: out.Stmt, kind: out.Kind}, nil
}

// Kind reports the prepared statement kind ("select", "insert", ...).
func (s *Stmt) Kind() string { return s.kind }

// Query opens a paging cursor over a prepared SELECT.
func (s *Stmt) Query(ctx context.Context) (*Rows, error) {
	var out struct {
		Cursor  string   `json:"cursor"`
		Columns []string `json:"columns"`
	}
	err := s.c.postIdem(ctx, "/v1/exec", map[string]any{
		"session": s.c.sessionID(), "stmt": s.handle, "cursor": true,
	}, &out)
	if err != nil {
		return nil, err
	}
	return &Rows{c: s.c, ctx: ctx, cursor: out.Cursor, cols: out.Columns}, nil
}

// Exec runs a prepared statement and materializes the result.
func (s *Stmt) Exec(ctx context.Context) (*Result, error) {
	var out struct {
		Columns  []string            `json:"columns"`
		Rows     [][]json.RawMessage `json:"rows"`
		Affected int64               `json:"affected"`
	}
	err := s.c.post(ctx, "/v1/exec", map[string]any{
		"session": s.c.sessionID(), "stmt": s.handle,
	}, &out)
	if err != nil {
		return nil, err
	}
	rows, err := decodeRows(out.Rows)
	if err != nil {
		return nil, err
	}
	return &Result{Columns: out.Columns, Rows: rows, Affected: out.Affected}, nil
}

// PredictExpr renders a PREDICT(model, args...) SQL expression — the
// in-DBMS inference extension.
func PredictExpr(model string, args ...string) string {
	return fmt.Sprintf("PREDICT(%s, %s)", model, strings.Join(args, ", "))
}

// Predict scores every row of table through a deployed model, returning a
// paging Rows with a single "score" column. where, when non-empty, filters
// the input rows (base-table columns only).
func (c *Client) Predict(ctx context.Context, model, table string, args []string, where string) (*Rows, error) {
	q := fmt.Sprintf("SELECT %s AS score FROM %s", PredictExpr(model, args...), table)
	if where != "" {
		q += " WHERE " + where
	}
	return c.Query(ctx, q)
}

// PredictAbove scores table rows and keeps those whose score exceeds
// threshold — shaped so the engine's fused threshold-compare optimization
// applies (the score column feeds the selection kernel directly).
func (c *Client) PredictAbove(ctx context.Context, model, table string, args []string, threshold float64) (*Rows, error) {
	expr := PredictExpr(model, args...)
	q := fmt.Sprintf("SELECT %s AS score FROM %s WHERE %s > %g", expr, table, expr, threshold)
	return c.Query(ctx, q)
}

// ---- transport plumbing ----

// postIdem is post plus the bounded retry policy configured by WithRetry —
// for idempotent endpoints only. Re-running a query open or a fetch is safe
// by the server's design: a failed or timed-out fetch rolls its window
// back, and an orphaned cursor dies with its TTL. The delay honors the
// server's Retry-After advice when present, else jittered exponential
// backoff from the configured base.
func (c *Client) postIdem(ctx context.Context, path string, body, out any) error {
	var err error
	for attempt := 0; ; attempt++ {
		err = c.post(ctx, path, body, out)
		if err == nil || attempt >= c.retryMax || !IsTransient(err) || ctx.Err() != nil {
			return err
		}
		// Before backing off, try moving to a healthier endpoint (the
		// leader hint or a WithFailover candidate). The retried request
		// must ride the new endpoint's session.
		if c.maybeFailover(ctx, err) {
			if m, ok := body.(map[string]any); ok {
				if _, has := m["session"]; has {
					m["session"] = c.sessionID()
				}
			}
			continue // the new endpoint answers immediately; no backoff
		}
		delay := c.retryBase << attempt
		delay = delay/2 + time.Duration(rand.Int63n(int64(delay))) // ±50% jitter
		var ae *APIError
		if errors.As(err, &ae) && ae.RetryAfter > 0 {
			delay = ae.RetryAfter
		}
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return err
		}
	}
}

// post sends a JSON body to the current endpoint and decodes a JSON
// response into out (out may be nil). Non-2xx responses become *APIError.
func (c *Client) post(ctx context.Context, path string, body, out any) error {
	return c.postTo(ctx, c.endpointURL(), path, body, out)
}

// postTo is post against an explicit base URL (the failover probe path).
func (c *Client) postTo(ctx context.Context, base, path string, body, out any) error {
	buf, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+path, bytes.NewReader(buf))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return readAPIError(resp)
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	dec := json.NewDecoder(resp.Body)
	dec.UseNumber()
	return dec.Decode(out)
}

// readAPIError consumes an error response body ({"error": "..."}).
func readAPIError(resp *http.Response) error {
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
	var envelope struct {
		Error string `json:"error"`
	}
	msg := strings.TrimSpace(string(raw))
	if json.Unmarshal(raw, &envelope) == nil && envelope.Error != "" {
		msg = envelope.Error
	}
	ae := &APIError{Status: resp.StatusCode, Message: msg}
	if v := resp.Header.Get("Retry-After"); v != "" {
		if secs, err := strconv.Atoi(v); err == nil && secs >= 0 {
			ae.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	ae.Leader = strings.TrimRight(resp.Header.Get("X-Flock-Leader"), "/")
	return ae
}

// decodeRows converts raw JSON cells into Go values (int64 where the
// number is integral, float64 otherwise, plus string/bool/nil).
func decodeRows(raw [][]json.RawMessage) ([][]any, error) {
	rows := make([][]any, len(raw))
	for i, r := range raw {
		row := make([]any, len(r))
		for j, cell := range r {
			v, err := decodeCell(cell)
			if err != nil {
				return nil, err
			}
			row[j] = v
		}
		rows[i] = row
	}
	return rows, nil
}

func decodeCell(cell json.RawMessage) (any, error) {
	dec := json.NewDecoder(bytes.NewReader(cell))
	dec.UseNumber()
	var v any
	if err := dec.Decode(&v); err != nil {
		return nil, err
	}
	if num, ok := v.(json.Number); ok {
		if i, err := num.Int64(); err == nil && !strings.ContainsAny(num.String(), ".eE") {
			return i, nil
		}
		f, err := num.Float64()
		if err != nil {
			return nil, err
		}
		return f, nil
	}
	return v, nil
}

// InferDeployment is the server's view of one candidate model deployment
// on the inference plane (see /v1/admin/infer/status).
type InferDeployment struct {
	Model     string  `json:"model"`
	Version   int     `json:"version"`
	Stage     string  `json:"stage"`
	Samples   int64   `json:"samples"`
	PSI       float64 `json:"psi"`
	Agreement float64 `json:"agreement"`
	Reason    string  `json:"reason,omitempty"`
}

// InferDeploy registers a model version as a candidate on the server's
// inference plane. Stage is "shadow" (observe only) or "canary" (mirrored
// traffic gates automatic promotion or rollback).
func (c *Client) InferDeploy(ctx context.Context, model string, version int, stage string) (*InferDeployment, error) {
	body := map[string]any{"session": c.sessionID(), "model": model, "version": version, "stage": stage}
	var out InferDeployment
	if err := c.post(ctx, "/v1/admin/infer/deploy", body, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// InferPromote manually promotes the model's candidate to production,
// regardless of the canary gate's stats.
func (c *Client) InferPromote(ctx context.Context, model string) (*InferDeployment, error) {
	body := map[string]any{"session": c.sessionID(), "model": model}
	var out InferDeployment
	if err := c.post(ctx, "/v1/admin/infer/promote", body, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// InferRollback manually rolls the model's candidate back; mirrored
// scoring stops.
func (c *Client) InferRollback(ctx context.Context, model string) (*InferDeployment, error) {
	body := map[string]any{"session": c.sessionID(), "model": model}
	var out InferDeployment
	if err := c.post(ctx, "/v1/admin/infer/rollback", body, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// InferStatus reports every candidate deployment on the inference plane.
func (c *Client) InferStatus(ctx context.Context) ([]InferDeployment, error) {
	body := map[string]any{"session": c.sessionID()}
	var out struct {
		Deployments []InferDeployment `json:"deployments"`
	}
	if err := c.postIdem(ctx, "/v1/admin/infer/status", body, &out); err != nil {
		return nil, err
	}
	return out.Deployments, nil
}
