package flockclient

// SDK round-trip tests against an in-process serving layer: session
// lifecycle, paged Query iteration with Scan conversions, prepared
// statements, PREDICT helpers, DML via Exec, and the distinct
// cursor-expired condition.

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/server"
	"repro/internal/workload"
)

func testServer(t *testing.T, rows int, cfg server.Config) string {
	t.Helper()
	f, err := core.New()
	if err != nil {
		t.Fatal(err)
	}
	f.Access.AssignRole("root", "admin")
	if err := workload.LoadScoringTable(f.DB, workload.ScoringConfig{
		Rows: rows, Seed: 7, Regions: 6,
	}); err != nil {
		t.Fatal(err)
	}
	pipe, err := workload.TrainScoringPipeline(500, 42, 10, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.DeployPipeline("root", "churn", pipe, core.TrainingInfo{
		Script: "flockclient_test", Tables: []string{"customers"},
	}); err != nil {
		t.Fatal(err)
	}
	cfg.OnSession = func(user string) { f.Access.AssignRole(user, "admin") }
	s := server.New(f, cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return ts.URL
}

func TestQueryPagination(t *testing.T) {
	const rows = 10_000
	url := testServer(t, rows, server.Config{})
	ctx := context.Background()
	c, err := Dial(ctx, url, "root", WithBatchRows(777))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close(ctx)

	rs, err := c.Query(ctx, "SELECT id, income, region FROM customers")
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	if cols := rs.Columns(); len(cols) != 3 || cols[2] != "region" {
		t.Fatalf("columns: %v", cols)
	}
	n := 0
	lastID := int64(-1)
	for rs.Next() {
		var id int64
		var income float64
		var region string
		if err := rs.Scan(&id, &income, &region); err != nil {
			t.Fatal(err)
		}
		if id <= lastID {
			t.Fatalf("ids out of order: %d after %d", id, lastID)
		}
		lastID = id
		if region == "" {
			t.Fatal("empty region")
		}
		n++
	}
	if err := rs.Err(); err != nil {
		t.Fatal(err)
	}
	if n != rows {
		t.Fatalf("iterated %d rows, want %d", n, rows)
	}
	// Drained to completion: the server cursor is gone; Close is a no-op.
	if err := rs.Close(); err != nil {
		t.Fatal(err)
	}
	if open := engine.CursorsOpen(); open != 0 {
		t.Fatalf("%d engine cursors left open", open)
	}
}

func TestPreparedAndExec(t *testing.T) {
	url := testServer(t, 2000, server.Config{})
	ctx := context.Background()
	c, err := Dial(ctx, url, "root")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close(ctx)

	// DML through Exec.
	res, err := c.Exec(ctx, "CREATE TABLE notes (id int, body text)")
	if err != nil {
		t.Fatal(err)
	}
	res, err = c.Exec(ctx, "INSERT INTO notes VALUES (1, 'alpha'), (2, 'beta')")
	if err != nil {
		t.Fatal(err)
	}
	if res.Affected != 2 {
		t.Fatalf("affected %d, want 2", res.Affected)
	}

	// Small SELECT through Exec materializes with int64/string cells.
	res, err = c.Exec(ctx, "SELECT id, body FROM notes ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][0] != int64(1) || res.Rows[1][1] != "beta" {
		t.Fatalf("rows: %v", res.Rows)
	}

	// Prepared SELECT pages through a cursor.
	stmt, err := c.Prepare(ctx, "SELECT id FROM customers WHERE income > 50000.0")
	if err != nil {
		t.Fatal(err)
	}
	if stmt.Kind() != "select" {
		t.Fatalf("kind %q", stmt.Kind())
	}
	for run := 0; run < 2; run++ { // the whole point: run it twice
		rs, err := stmt.Query(ctx)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for rs.Next() {
			var id int64
			if err := rs.Scan(&id); err != nil {
				t.Fatal(err)
			}
			n++
		}
		if err := rs.Err(); err != nil {
			t.Fatal(err)
		}
		rs.Close()
		if n == 0 || n >= 2000 {
			t.Fatalf("run %d: %d rows, want a filtered subset", run, n)
		}
	}
}

func TestPredictHelper(t *testing.T) {
	url := testServer(t, 1500, server.Config{})
	ctx := context.Background()
	c, err := Dial(ctx, url, "root")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close(ctx)

	if e := PredictExpr("churn", "age", "income"); e != "PREDICT(churn, age, income)" {
		t.Fatalf("PredictExpr: %q", e)
	}
	rs, err := c.PredictAbove(ctx, "churn", "customers",
		[]string{"age", "income", "tenure", "region"}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	n := 0
	for rs.Next() {
		var score float64
		if err := rs.Scan(&score); err != nil {
			t.Fatal(err)
		}
		if score <= 0.5 || score > 1 {
			t.Fatalf("score %v escaped the threshold", score)
		}
		n++
	}
	if err := rs.Err(); err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no rows scored above threshold")
	}
}

func TestCursorExpiredIsDistinct(t *testing.T) {
	url := testServer(t, 5000, server.Config{
		CursorTTL: 600 * time.Millisecond,
	})
	ctx := context.Background()
	c, err := Dial(ctx, url, "root", WithBatchRows(100))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close(ctx)

	rs, err := c.Query(ctx, "SELECT id FROM customers")
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	if !rs.Next() {
		t.Fatalf("first page: %v", rs.Err())
	}
	// Abandon the cursor well past its TTL, then resume iterating: the
	// buffered page drains fine, but the next fetch must surface the
	// distinct cursor-expired condition, not a generic error.
	time.Sleep(2 * time.Second)
	for rs.Next() {
		var id int64
		if err := rs.Scan(&id); err != nil {
			break
		}
	}
	err = rs.Err()
	if err == nil {
		t.Fatal("iteration ended with no error after expiry")
	}
	if !IsCursorExpired(err) {
		t.Fatalf("want cursor-expired, got: %v", err)
	}
	if !strings.Contains(err.Error(), "re-run the query") {
		t.Fatalf("error should tell the user to re-run: %v", err)
	}
}

func TestDialAuthFailure(t *testing.T) {
	url := testServer(t, 100, server.Config{
		Authenticate: server.StaticTokenAuth(map[string]string{"root": "hunter2"}),
	})
	ctx := context.Background()
	if _, err := Dial(ctx, url, "root", WithToken("wrong")); err == nil {
		t.Fatal("bad token accepted")
	}
	c, err := Dial(ctx, url, "root", WithToken("hunter2"))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Ping(ctx); err != nil {
		t.Fatal(err)
	}
	c.Close(ctx)
}
