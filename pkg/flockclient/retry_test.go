package flockclient

// Retry-policy tests against a scripted stub server (the real serving layer
// is exercised in flockclient_test.go): transient 503s are retried with
// backoff on idempotent calls, Retry-After advice is parsed into the typed
// error, and Exec — DML, not idempotent — is never retried.

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// stubFlock scripts per-path failure counts: the first fail[path] requests
// to path get a 503 (with optional Retry-After), the rest succeed with a
// canned body.
type stubFlock struct {
	mu         chan struct{} // 1-token mutex; keeps the stub -race clean
	fails      map[string]int
	hits       map[string]*atomic.Int64
	retryAfter string
}

func newStub(fails map[string]int, retryAfter string) *stubFlock {
	s := &stubFlock{mu: make(chan struct{}, 1), fails: fails,
		hits: map[string]*atomic.Int64{}, retryAfter: retryAfter}
	s.mu <- struct{}{}
	return s
}

func (s *stubFlock) hit(path string) *atomic.Int64 {
	<-s.mu
	defer func() { s.mu <- struct{}{} }()
	h, ok := s.hits[path]
	if !ok {
		h = &atomic.Int64{}
		s.hits[path] = h
	}
	return h
}

func (s *stubFlock) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	n := s.hit(r.URL.Path).Add(1)
	<-s.mu
	remaining := s.fails[r.URL.Path]
	s.mu <- struct{}{}
	if int(n) <= remaining {
		if s.retryAfter != "" {
			w.Header().Set("Retry-After", s.retryAfter)
		}
		http.Error(w, `{"error":"instance degraded"}`, http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	switch r.URL.Path {
	case "/v1/sessions":
		_ = json.NewEncoder(w).Encode(map[string]any{"session": "s1"})
	case "/v1/query":
		var req map[string]any
		_ = json.NewDecoder(r.Body).Decode(&req)
		if req["cursor"] == true {
			_ = json.NewEncoder(w).Encode(map[string]any{"cursor": "c1", "columns": []string{"id"}})
			return
		}
		_ = json.NewEncoder(w).Encode(map[string]any{"columns": []string{"id"}, "rows": [][]any{{1}}, "affected": 1})
	case "/v1/cursor/fetch":
		_ = json.NewEncoder(w).Encode(map[string]any{"rows": [][]any{{1}, {2}}, "done": true})
	case "/v1/cursor/close":
		_ = json.NewEncoder(w).Encode(map[string]any{})
	default:
		http.Error(w, `{"error":"unknown path"}`, http.StatusNotFound)
	}
}

func TestDialRetriesTransient(t *testing.T) {
	stub := newStub(map[string]int{"/v1/sessions": 2}, "")
	ts := httptest.NewServer(stub)
	defer ts.Close()
	c, err := Dial(context.Background(), ts.URL, "root", WithRetry(3, time.Millisecond))
	if err != nil {
		t.Fatalf("Dial should have retried through 2 transient failures: %v", err)
	}
	if c.Session() != "s1" {
		t.Fatalf("session = %q", c.Session())
	}
	if got := stub.hit("/v1/sessions").Load(); got != 3 {
		t.Fatalf("attempts = %d, want 3 (1 + 2 retries)", got)
	}
}

func TestNoRetryWithoutOptIn(t *testing.T) {
	stub := newStub(map[string]int{"/v1/sessions": 1}, "")
	ts := httptest.NewServer(stub)
	defer ts.Close()
	_, err := Dial(context.Background(), ts.URL, "root")
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusServiceUnavailable {
		t.Fatalf("err = %v, want the 503 APIError", err)
	}
	if got := stub.hit("/v1/sessions").Load(); got != 1 {
		t.Fatalf("attempts = %d, want exactly 1 without WithRetry", got)
	}
	if !IsTransient(err) {
		t.Fatal("503 should classify as transient")
	}
}

func TestRetryAfterParsedIntoError(t *testing.T) {
	stub := newStub(map[string]int{"/v1/sessions": 99}, "7")
	ts := httptest.NewServer(stub)
	defer ts.Close()
	_, err := Dial(context.Background(), ts.URL, "root")
	var ae *APIError
	if !errors.As(err, &ae) {
		t.Fatalf("err = %v, want APIError", err)
	}
	if ae.RetryAfter != 7*time.Second {
		t.Fatalf("RetryAfter = %v, want 7s", ae.RetryAfter)
	}
}

func TestRetryHonorsRetryAfterAdvice(t *testing.T) {
	// One failure carrying "Retry-After: 1": the retry must wait the advised
	// second, not the 1ms base backoff.
	stub := newStub(map[string]int{"/v1/sessions": 1}, "1")
	ts := httptest.NewServer(stub)
	defer ts.Close()
	start := time.Now()
	if _, err := Dial(context.Background(), ts.URL, "root", WithRetry(1, time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < time.Second {
		t.Fatalf("retried after %v, want >= the advised 1s", elapsed)
	}
}

func TestExecNeverRetried(t *testing.T) {
	stub := newStub(map[string]int{"/v1/query": 1}, "")
	ts := httptest.NewServer(stub)
	defer ts.Close()
	c, err := Dial(context.Background(), ts.URL, "root", WithRetry(5, time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec(context.Background(), "INSERT INTO t VALUES (1)"); err == nil {
		t.Fatal("Exec should surface the 503")
	}
	if got := stub.hit("/v1/query").Load(); got != 1 {
		t.Fatalf("Exec attempts = %d, want exactly 1 — DML must never be blind-retried", got)
	}
}

func TestQueryAndFetchRetried(t *testing.T) {
	stub := newStub(map[string]int{"/v1/query": 1, "/v1/cursor/fetch": 1}, "")
	ts := httptest.NewServer(stub)
	defer ts.Close()
	c, err := Dial(context.Background(), ts.URL, "root", WithRetry(2, time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	rows, err := c.Query(context.Background(), "SELECT id FROM t")
	if err != nil {
		t.Fatalf("Query should have retried the transient 503: %v", err)
	}
	var got []int64
	for rows.Next() {
		var id int64
		if err := rows.Scan(&id); err != nil {
			t.Fatal(err)
		}
		got = append(got, id)
	}
	if err := rows.Err(); err != nil {
		t.Fatalf("fetch should have retried the transient 503: %v", err)
	}
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("rows = %v", got)
	}
	if n := stub.hit("/v1/cursor/fetch").Load(); n != 2 {
		t.Fatalf("fetch attempts = %d, want 2 (failed, then retried)", n)
	}
}

func TestRetryStopsOnContextCancel(t *testing.T) {
	stub := newStub(map[string]int{"/v1/sessions": 99}, "")
	ts := httptest.NewServer(stub)
	defer ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := Dial(ctx, ts.URL, "root", WithRetry(50, 40*time.Millisecond))
	if err == nil {
		t.Fatal("canceled Dial should fail")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("retry loop ignored the context for %v", elapsed)
	}
}
