package fault

import (
	"errors"
	"os"
	"testing"
	"time"
)

func TestDisarmedInjectIsNil(t *testing.T) {
	Reset()
	if err := Inject("never.armed"); err != nil {
		t.Fatalf("disarmed failpoint fired: %v", err)
	}
}

func TestDeterministicTrigger(t *testing.T) {
	Reset()
	defer Reset()
	Enable("x", Spec{}) // zero Spec: every evaluation fails with ErrInjected
	for i := 0; i < 3; i++ {
		if err := Inject("x"); !errors.Is(err, ErrInjected) {
			t.Fatalf("eval %d: got %v, want ErrInjected", i, err)
		}
	}
	if got := Triggered("x"); got != 3 {
		t.Fatalf("Triggered = %d, want 3", got)
	}
	Disable("x")
	if err := Inject("x"); err != nil {
		t.Fatalf("disabled failpoint fired: %v", err)
	}
}

func TestCustomError(t *testing.T) {
	Reset()
	defer Reset()
	want := errors.New("no space left on device")
	Enable("x", Spec{Err: want})
	if err := Inject("x"); !errors.Is(err, want) {
		t.Fatalf("got %v, want the armed error", err)
	}
}

func TestCountCap(t *testing.T) {
	Reset()
	defer Reset()
	Enable("x", Spec{Count: 2})
	fired := 0
	for i := 0; i < 10; i++ {
		if Inject("x") != nil {
			fired++
		}
	}
	if fired != 2 {
		t.Fatalf("fired %d times, want exactly Count=2", fired)
	}
	if got := Triggered("x"); got != 2 {
		t.Fatalf("Triggered = %d, want 2", got)
	}
}

func TestAfterSkipsEarlyEvaluations(t *testing.T) {
	Reset()
	defer Reset()
	Enable("x", Spec{After: 3, Count: 1})
	for i := 0; i < 3; i++ {
		if err := Inject("x"); err != nil {
			t.Fatalf("eval %d fired before After=3: %v", i, err)
		}
	}
	if err := Inject("x"); err == nil {
		t.Fatal("4th evaluation should fire")
	}
}

func TestProbabilityIsSeededAndPartial(t *testing.T) {
	Reset()
	defer Reset()
	Seed(42)
	Enable("x", Spec{Prob: 0.5})
	fired := 0
	for i := 0; i < 1000; i++ {
		if Inject("x") != nil {
			fired++
		}
	}
	if fired < 400 || fired > 600 {
		t.Fatalf("Prob=0.5 fired %d/1000", fired)
	}
	// The same seed replays the same schedule.
	Reset()
	Seed(42)
	Enable("x", Spec{Prob: 0.5})
	again := 0
	for i := 0; i < 1000; i++ {
		if Inject("x") != nil {
			again++
		}
	}
	if again != fired {
		t.Fatalf("same seed, different schedule: %d vs %d", again, fired)
	}
}

func TestLatency(t *testing.T) {
	Reset()
	defer Reset()
	Enable("x", Spec{Latency: 30 * time.Millisecond})
	start := time.Now()
	if err := Inject("x"); err == nil {
		t.Fatal("latency failpoint should still error")
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("returned after %v, want >= 30ms", d)
	}
}

func TestArmedListing(t *testing.T) {
	Reset()
	defer Reset()
	Enable("a.one", Spec{})
	Enable("b.two", Spec{})
	names := map[string]bool{}
	for _, n := range Armed() {
		names[n] = true
	}
	if !names["a.one"] || !names["b.two"] || len(names) != 2 {
		t.Fatalf("Armed = %v", names)
	}
}

func TestFromEnv(t *testing.T) {
	Reset()
	defer Reset()
	t.Setenv("FLOCK_FAULTS", "wal.fsync:0.25:3, scorer.http")
	if err := FromEnv(); err != nil {
		t.Fatal(err)
	}
	armed := map[string]bool{}
	for _, n := range Armed() {
		armed[n] = true
	}
	if !armed["wal.fsync"] || !armed["scorer.http"] {
		t.Fatalf("Armed = %v", armed)
	}
	// scorer.http parsed with no prob/count → deterministic.
	if err := Inject("scorer.http"); err == nil {
		t.Fatal("env-armed deterministic failpoint did not fire")
	}

	Reset()
	os.Setenv("FLOCK_FAULTS", "wal.fsync:notanumber")
	defer os.Unsetenv("FLOCK_FAULTS")
	if err := FromEnv(); err == nil {
		t.Fatal("malformed schedule must error")
	}
}
