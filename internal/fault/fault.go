// Package fault is the process-wide fault-injection plane: a registry of
// named failpoints that test harnesses (and, via FLOCK_FAULTS, operators
// running chaos drills) arm with probability/count/error/latency triggers,
// and that production code consults at the I/O and RPC boundaries where
// real systems fail — WAL appends and fsyncs, checkpoint renames, snapshot
// writes, remote scorer calls.
//
// The design follows the coverage-guided stance of the network-config
// testing literature: the fault space is enumerated (every failpoint has a
// stable dotted name like "wal.fsync") so a chaos suite can iterate the
// matrix instead of stumbling into failures. When no failpoint is armed the
// hot path is a single atomic load — safe to leave compiled into
// production binaries.
package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is the default error returned by a triggered failpoint; it
// deliberately reads like an I/O failure so callers exercise their real
// error paths.
var ErrInjected = errors.New("fault: injected failure")

// Spec arms one failpoint. The zero value triggers on every evaluation
// with ErrInjected.
type Spec struct {
	// Err is returned when the failpoint triggers (ErrInjected when nil).
	Err error
	// Prob is the per-evaluation trigger probability; 0 means 1.0
	// (deterministic failure). Values outside (0,1] are clamped.
	Prob float64
	// Count caps the number of triggers; 0 means unlimited. After Count
	// triggers the failpoint stays registered but fires no more.
	Count int
	// After skips the first After evaluations before the failpoint can
	// trigger (deterministically fail "the Nth fsync").
	After int
	// Latency is slept before the failpoint returns, with or without an
	// error — a slow disk or a hung backend rather than a dead one.
	Latency time.Duration
	// Partial marks write failpoints as short writes: the wrapped Write
	// persists roughly half the buffer before reporting the error,
	// producing a torn frame on disk exactly like a crash mid-write.
	Partial bool
}

// outcome is one triggered evaluation.
type outcome struct {
	err     error
	latency time.Duration
	partial bool
}

func (o outcome) fail() error {
	if o.latency > 0 {
		time.Sleep(o.latency)
	}
	return o.err
}

type point struct {
	spec      Spec
	evals     int
	triggered int
}

var (
	// active short-circuits Inject when no failpoint is armed: the
	// production fast path is this one atomic load.
	active atomic.Int32

	mu     sync.Mutex
	points = map[string]*point{}
	rng    = rand.New(rand.NewSource(1)) // deterministic under a fixed seed; reseed via Seed
)

// Seed reseeds the probability source (chaos harnesses log the seed so a
// failing schedule can be replayed).
func Seed(seed int64) {
	mu.Lock()
	defer mu.Unlock()
	rng = rand.New(rand.NewSource(seed))
}

// Enable arms (or re-arms) the named failpoint.
func Enable(name string, s Spec) {
	mu.Lock()
	defer mu.Unlock()
	if _, ok := points[name]; !ok {
		active.Add(1)
	}
	points[name] = &point{spec: s}
}

// Disable disarms one failpoint.
func Disable(name string) {
	mu.Lock()
	defer mu.Unlock()
	if _, ok := points[name]; ok {
		delete(points, name)
		active.Add(-1)
	}
}

// Reset disarms every failpoint (test cleanup).
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	active.Add(-int32(len(points)))
	points = map[string]*point{}
}

// Triggered reports how many times the named failpoint has fired since it
// was armed (assertions that a schedule actually exercised a fault).
func Triggered(name string) int {
	mu.Lock()
	defer mu.Unlock()
	if p, ok := points[name]; ok {
		return p.triggered
	}
	return 0
}

// Armed lists the currently armed failpoint names (exported on /metrics by
// the serving layer so a chaos drill is visible to observability).
func Armed() []string {
	mu.Lock()
	defer mu.Unlock()
	out := make([]string, 0, len(points))
	for n := range points {
		out = append(out, n)
	}
	return out
}

// eval decides whether the named failpoint triggers on this evaluation.
func eval(name string) (outcome, bool) {
	if active.Load() == 0 {
		return outcome{}, false
	}
	mu.Lock()
	defer mu.Unlock()
	p, ok := points[name]
	if !ok {
		return outcome{}, false
	}
	p.evals++
	if p.evals <= p.spec.After {
		return outcome{}, false
	}
	if p.spec.Count > 0 && p.triggered >= p.spec.Count {
		return outcome{}, false
	}
	prob := p.spec.Prob
	if prob <= 0 || prob > 1 {
		prob = 1
	}
	if prob < 1 && rng.Float64() >= prob {
		return outcome{}, false
	}
	p.triggered++
	err := p.spec.Err
	if err == nil {
		err = ErrInjected
	}
	return outcome{err: err, latency: p.spec.Latency, partial: p.spec.Partial}, true
}

// Inject evaluates the named failpoint: nil when disarmed or not triggered,
// the armed error (after any armed latency) when it fires. This is the
// one-line hook production code places at a fault boundary:
//
//	if err := fault.Inject("scorer.http"); err != nil { return err }
func Inject(name string) error {
	o, ok := eval(name)
	if !ok {
		return nil
	}
	return o.fail()
}

// envVar seeds failpoints from the environment at process start:
//
//	FLOCK_FAULTS="wal.fsync:0.01,scorer.http:0.05:10"
//
// Each comma-separated entry is name[:prob[:count]]. Used by chaos smoke
// jobs to run a real binary under a fault schedule without recompiling.
const envVar = "FLOCK_FAULTS"

func init() {
	if err := FromEnv(); err != nil {
		// A malformed schedule must be loud, not silently ignored: a chaos
		// drill that thinks faults are armed when they are not proves nothing.
		panic(err)
	}
}

// FromEnv arms failpoints from FLOCK_FAULTS (no-op when unset).
func FromEnv() error {
	v := os.Getenv(envVar)
	if v == "" {
		return nil
	}
	for _, entry := range strings.Split(v, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		parts := strings.Split(entry, ":")
		s := Spec{}
		if len(parts) >= 2 {
			p, err := strconv.ParseFloat(parts[1], 64)
			if err != nil {
				return fmt.Errorf("fault: %s entry %q: bad probability: %w", envVar, entry, err)
			}
			s.Prob = p
		}
		if len(parts) >= 3 {
			c, err := strconv.Atoi(parts[2])
			if err != nil {
				return fmt.Errorf("fault: %s entry %q: bad count: %w", envVar, entry, err)
			}
			s.Count = c
		}
		if len(parts) > 3 {
			return fmt.Errorf("fault: %s entry %q: want name[:prob[:count]]", envVar, entry)
		}
		Enable(parts[0], s)
	}
	return nil
}
