package fault

import "os"

// File wraps an *os.File so the failure modes disks actually exhibit —
// fsync errors, ENOSPC, short writes, torn renames — can be injected at
// named failpoints. Each wrapped file carries a prefix ("wal", "snapshot",
// ...) and consults "<prefix>.write", "<prefix>.fsync", "<prefix>.close",
// and "<prefix>.truncate". With nothing armed every method is a direct
// passthrough plus one atomic load.
type File struct {
	*os.File
	prefix string
}

// NewFile wraps f under the given failpoint prefix.
func NewFile(f *os.File, prefix string) *File {
	return &File{File: f, prefix: prefix}
}

// Write consults "<prefix>.write". A triggered failpoint with Partial set
// first persists the front half of the buffer — a torn frame, exactly what
// a crash mid-write leaves on disk — before reporting the error.
func (f *File) Write(p []byte) (int, error) {
	o, ok := eval(f.prefix + ".write")
	if !ok {
		return f.File.Write(p)
	}
	if o.partial && len(p) > 1 {
		n, werr := f.File.Write(p[: len(p)/2 : len(p)/2])
		if werr != nil {
			return n, werr
		}
		return n, o.fail()
	}
	return 0, o.fail()
}

// Sync consults "<prefix>.fsync". Note that a real fsync error means the
// kernel may already have dropped the dirty pages, so callers must treat
// this as non-retryable — which is exactly the WAL-poison path this
// failpoint exists to exercise.
func (f *File) Sync() error {
	if err := Inject(f.prefix + ".fsync"); err != nil {
		return err
	}
	return f.File.Sync()
}

// Close consults "<prefix>.close".
func (f *File) Close() error {
	if err := Inject(f.prefix + ".close"); err != nil {
		return err
	}
	return f.File.Close()
}

// Truncate consults "<prefix>.truncate" — the WAL's rewind-on-partial-write
// repair path, whose own failure is what actually poisons the log.
func (f *File) Truncate(size int64) error {
	if err := Inject(f.prefix + ".truncate"); err != nil {
		return err
	}
	return f.File.Truncate(size)
}

// SyncDir opens, fsyncs, and closes the directory at dir through a named
// failpoint (conventionally "<prefix>.dirsync"). The directory fsync is
// what makes a just-renamed file survive a crash — losing it silently is
// exactly the failure mode this point exists to inject.
func SyncDir(point, dir string) error {
	if err := Inject(point); err != nil {
		return err
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		_ = d.Close()
		return err
	}
	return d.Close()
}

// Rename routes os.Rename through a named failpoint so checkpoint segment
// rotation and snapshot publication can be made to fail atomically (the
// rename either happened or it did not — no torn state, matching rename(2)
// on POSIX filesystems).
func Rename(point, oldpath, newpath string) error {
	if err := Inject(point); err != nil {
		return err
	}
	return os.Rename(oldpath, newpath)
}
