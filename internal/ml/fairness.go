package ml

import (
	"fmt"
	"sort"
)

// Fairness metrics for binary classifiers — the responsible-AI layer the
// paper's enterprise customers demand ("automate it, and don't get me
// sued"): per-group rates, demographic parity and equalized-odds gaps.

// GroupStats summarizes a classifier's behaviour on one protected group.
type GroupStats struct {
	Group        string
	N            int
	PositiveRate float64 // P(pred=1 | group)
	TPR          float64 // P(pred=1 | y=1, group)
	FPR          float64 // P(pred=1 | y=0, group)
	BaseRate     float64 // P(y=1 | group)
}

// FairnessReport aggregates group stats and the standard gap metrics.
type FairnessReport struct {
	Groups []GroupStats
	// DemographicParityGap is the max difference in positive rates
	// between any two groups (0 is perfectly fair by this criterion).
	DemographicParityGap float64
	// EqualizedOddsGap is the max over (TPR gap, FPR gap).
	EqualizedOddsGap float64
}

// EvaluateFairness thresholds scores at 0.5 and computes per-group rates
// and gaps. groups assigns each row to a protected group.
func EvaluateFairness(scores, y []float64, groups []string) (*FairnessReport, error) {
	if len(scores) != len(y) || len(scores) != len(groups) {
		return nil, fmt.Errorf("ml: EvaluateFairness: length mismatch %d/%d/%d",
			len(scores), len(y), len(groups))
	}
	if len(scores) == 0 {
		return nil, fmt.Errorf("ml: EvaluateFairness: empty input")
	}
	type counts struct {
		n, pos, yPos, tp, fp int
	}
	byGroup := map[string]*counts{}
	for i, s := range scores {
		c := byGroup[groups[i]]
		if c == nil {
			c = &counts{}
			byGroup[groups[i]] = c
		}
		c.n++
		pred := s >= 0.5
		actual := y[i] == 1
		if pred {
			c.pos++
		}
		if actual {
			c.yPos++
			if pred {
				c.tp++
			}
		} else if pred {
			c.fp++
		}
	}
	rep := &FairnessReport{}
	names := make([]string, 0, len(byGroup))
	for g := range byGroup {
		names = append(names, g)
	}
	sort.Strings(names)
	for _, g := range names {
		c := byGroup[g]
		gs := GroupStats{Group: g, N: c.n}
		gs.PositiveRate = float64(c.pos) / float64(c.n)
		gs.BaseRate = float64(c.yPos) / float64(c.n)
		if c.yPos > 0 {
			gs.TPR = float64(c.tp) / float64(c.yPos)
		}
		if neg := c.n - c.yPos; neg > 0 {
			gs.FPR = float64(c.fp) / float64(neg)
		}
		rep.Groups = append(rep.Groups, gs)
	}
	for i := range rep.Groups {
		for j := i + 1; j < len(rep.Groups); j++ {
			dp := abs(rep.Groups[i].PositiveRate - rep.Groups[j].PositiveRate)
			if dp > rep.DemographicParityGap {
				rep.DemographicParityGap = dp
			}
			eo := abs(rep.Groups[i].TPR - rep.Groups[j].TPR)
			if f := abs(rep.Groups[i].FPR - rep.Groups[j].FPR); f > eo {
				eo = f
			}
			if eo > rep.EqualizedOddsGap {
				rep.EqualizedOddsGap = eo
			}
		}
	}
	return rep, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
