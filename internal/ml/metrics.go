package ml

import (
	"fmt"
	"math"
	"sort"
)

// MSE returns the mean squared error between predictions and targets.
func MSE(pred, y []float64) float64 {
	if len(pred) == 0 {
		return 0
	}
	var s float64
	for i, p := range pred {
		d := p - y[i]
		s += d * d
	}
	return s / float64(len(pred))
}

// RMSE returns the root mean squared error.
func RMSE(pred, y []float64) float64 { return math.Sqrt(MSE(pred, y)) }

// Accuracy returns the fraction of predictions whose 0.5-thresholded class
// matches the binary target.
func Accuracy(pred, y []float64) float64 {
	if len(pred) == 0 {
		return 0
	}
	var hits int
	for i, p := range pred {
		c := 0.0
		if p >= 0.5 {
			c = 1
		}
		if c == y[i] {
			hits++
		}
	}
	return float64(hits) / float64(len(pred))
}

// AUC returns the area under the ROC curve for probability scores against
// binary targets, computed via the rank statistic (ties get midranks).
func AUC(pred, y []float64) (float64, error) {
	if len(pred) != len(y) {
		return 0, fmt.Errorf("ml: AUC: %d predictions but %d targets", len(pred), len(y))
	}
	type pair struct {
		score float64
		label float64
	}
	ps := make([]pair, len(pred))
	var pos, neg int
	for i := range pred {
		ps[i] = pair{pred[i], y[i]}
		if y[i] == 1 {
			pos++
		} else {
			neg++
		}
	}
	if pos == 0 || neg == 0 {
		return 0, fmt.Errorf("ml: AUC: need both classes (pos=%d neg=%d)", pos, neg)
	}
	sort.Slice(ps, func(a, b int) bool { return ps[a].score < ps[b].score })
	// Sum of ranks of positives, with midranks for ties.
	var rankSum float64
	i := 0
	for i < len(ps) {
		j := i
		for j < len(ps) && ps[j].score == ps[i].score {
			j++
		}
		midrank := float64(i+j+1) / 2 // ranks are 1-based
		for k := i; k < j; k++ {
			if ps[k].label == 1 {
				rankSum += midrank
			}
		}
		i = j
	}
	np, nn := float64(pos), float64(neg)
	return (rankSum - np*(np+1)/2) / (np * nn), nil
}

// TrainTestSplit partitions indices [0, n) into train and test sets using a
// deterministic multiplicative hash so results are reproducible.
func TrainTestSplit(n int, testFrac float64, seed uint64) (train, test []int) {
	for i := 0; i < n; i++ {
		h := splitmix(seed + uint64(i))
		if float64(h%10000)/10000.0 < testFrac {
			test = append(test, i)
		} else {
			train = append(train, i)
		}
	}
	return train, test
}

// splitmix is the SplitMix64 hash step; used anywhere the library needs
// cheap deterministic pseudo-randomness.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Rand is a tiny deterministic PRNG (SplitMix64) for the library's synthetic
// data generators; stdlib math/rand would also do, but a local generator
// keeps generated corpora stable across Go versions.
type Rand struct{ state uint64 }

// NewRand seeds a generator.
func NewRand(seed uint64) *Rand { return &Rand{state: seed} }

// Uint64 returns the next pseudo-random value.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	x := r.state
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Intn returns a uniform value in [0, n).
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("ml: Rand.Intn: n must be positive")
	}
	return int(r.Uint64() % uint64(n))
}

// NormFloat64 returns an approximately standard-normal value via the sum of
// uniforms (Irwin–Hall with 12 terms).
func (r *Rand) NormFloat64() float64 {
	var s float64
	for i := 0; i < 12; i++ {
		s += r.Float64()
	}
	return s - 6
}
