package ml

import "fmt"

// PredictInterpreted scores the pipeline the way a dynamic-language runtime
// does: every scalar is boxed, every operation dispatches on dynamic type,
// and each row allocates its feature buffer. It produces bit-identical
// results to PredictBatch while paying CPython-style interpretation costs —
// this is the "scikit-learn" baseline of Figure 4 on a runtime that has no
// interpreter of its own. (Go cannot be slowed down to CPython's 10-100x;
// boxing + dynamic dispatch is the honest analog with the same asymptotics.)
func (p *Pipeline) PredictInterpreted(f *Frame) ([]float64, error) {
	cols, err := p.bindColumns(f)
	if err != nil {
		return nil, err
	}
	n := f.NumRows()
	out := make([]float64, n)
	scratch := make([]float64, p.Feat.Width())
	for r := 0; r < n; r++ {
		// Boxed feature vector: one heap value per feature.
		boxed := make([]any, p.Feat.Width())
		p.Feat.TransformRow(cols, r, scratch)
		for j, v := range scratch {
			boxed[j] = v
		}
		v, err := dynamicPredict(p.Pred, boxed)
		if err != nil {
			return nil, err
		}
		out[r] = v
	}
	return out, nil
}

// dynamicPredict walks the model with boxed values and per-step dynamic
// dispatch.
func dynamicPredict(pred Predictor, row []any) (float64, error) {
	switch m := pred.(type) {
	case *LinearRegression:
		acc := any(float64(0))
		for j, w := range m.Weights {
			acc = addAny(acc, mulAny(w, row[j]))
		}
		return unbox(addAny(acc, m.Intercept))
	case *LogisticRegression:
		acc := any(float64(0))
		for j, w := range m.Weights {
			acc = addAny(acc, mulAny(w, row[j]))
		}
		z, err := unbox(addAny(acc, m.Intercept))
		if err != nil {
			return 0, err
		}
		return Sigmoid(z), nil
	case *DecisionTree:
		return dynamicTree(m, row)
	case *GradientBoosting:
		rate := m.LearningRate
		if rate == 0 {
			rate = 0.1
		}
		acc := any(m.Base)
		for _, t := range m.Trees {
			v, err := dynamicTree(t, row)
			if err != nil {
				return 0, err
			}
			acc = addAny(acc, mulAny(rate, v))
		}
		s, err := unbox(acc)
		if err != nil {
			return 0, err
		}
		if m.Loss == LossLogistic {
			return Sigmoid(s), nil
		}
		return s, nil
	default:
		return 0, fmt.Errorf("ml: PredictInterpreted: unsupported predictor %T", pred)
	}
}

func dynamicTree(t *DecisionTree, row []any) (float64, error) {
	n := int32(0)
	for {
		node := &t.Nodes[n]
		if node.IsLeaf() {
			return node.Value, nil
		}
		less, err := lessAny(row[node.Feature], node.Threshold)
		if err != nil {
			return 0, err
		}
		if less {
			n = node.Left
		} else {
			n = node.Right
		}
	}
}

// Boxed arithmetic with dynamic type dispatch — the interpreter's inner
// loop.

func addAny(a, b any) any {
	af, ok1 := a.(float64)
	bf, ok2 := b.(float64)
	if ok1 && ok2 {
		return af + bf
	}
	return nil
}

func mulAny(a, b any) any {
	af, ok1 := a.(float64)
	bf, ok2 := b.(float64)
	if ok1 && ok2 {
		return af * bf
	}
	return nil
}

func lessAny(a, b any) (bool, error) {
	af, ok1 := a.(float64)
	bf, ok2 := b.(float64)
	if !ok1 || !ok2 {
		return false, fmt.Errorf("ml: interpreted compare on non-float")
	}
	return af < bf, nil
}

func unbox(a any) (float64, error) {
	f, ok := a.(float64)
	if !ok {
		return 0, fmt.Errorf("ml: interpreted arithmetic type error")
	}
	return f, nil
}
