package ml

import (
	"math"
	"testing"
	"testing/quick"
)

// synthLinear builds y = 3*x0 - 2*x1 + 0.5 + noise.
func synthLinear(n int, noise float64, seed uint64) (*Matrix, []float64) {
	r := NewRand(seed)
	x := NewMatrix(n, 2)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		a, b := r.NormFloat64(), r.NormFloat64()
		x.Set(i, 0, a)
		x.Set(i, 1, b)
		y[i] = 3*a - 2*b + 0.5 + noise*r.NormFloat64()
	}
	return x, y
}

func TestLinearRegressionRecoversCoefficients(t *testing.T) {
	x, y := synthLinear(500, 0, 1)
	lr := &LinearRegression{}
	if err := lr.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if !almostEq(lr.Weights[0], 3, 1e-6) || !almostEq(lr.Weights[1], -2, 1e-6) {
		t.Errorf("weights = %v, want [3 -2]", lr.Weights)
	}
	if !almostEq(lr.Intercept, 0.5, 1e-6) {
		t.Errorf("intercept = %v, want 0.5", lr.Intercept)
	}
}

func TestLinearRegressionWithNoise(t *testing.T) {
	x, y := synthLinear(2000, 0.1, 2)
	lr := &LinearRegression{}
	if err := lr.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	pred := make([]float64, len(y))
	lr.PredictInto(x, pred)
	if rmse := RMSE(pred, y); rmse > 0.15 {
		t.Errorf("RMSE = %v, want < 0.15", rmse)
	}
}

func TestLinearRegressionDegenerate(t *testing.T) {
	// Duplicate column: singular Gram matrix; ridge fallback must engage.
	x := NewMatrix(10, 2)
	y := make([]float64, 10)
	for i := 0; i < 10; i++ {
		v := float64(i)
		x.Set(i, 0, v)
		x.Set(i, 1, v)
		y[i] = 2 * v
	}
	lr := &LinearRegression{}
	if err := lr.Fit(x, y); err != nil {
		t.Fatalf("ridge fallback failed: %v", err)
	}
	if p := lr.PredictRow([]float64{4, 4}); !almostEq(p, 8, 1e-3) {
		t.Errorf("predict(4,4) = %v, want ~8", p)
	}
}

func TestLinearRegressionErrors(t *testing.T) {
	lr := &LinearRegression{}
	if err := lr.Fit(NewMatrix(0, 2), nil); err == nil {
		t.Error("empty training set should error")
	}
	if err := lr.Fit(NewMatrix(3, 2), []float64{1}); err == nil {
		t.Error("length mismatch should error")
	}
}

func TestLogisticRegressionSeparable(t *testing.T) {
	// Positive iff x0 + x1 > 0 with margin.
	r := NewRand(3)
	n := 600
	x := NewMatrix(n, 2)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		a, b := r.NormFloat64(), r.NormFloat64()
		x.Set(i, 0, a)
		x.Set(i, 1, b)
		if a+b > 0 {
			y[i] = 1
		}
	}
	lr := &LogisticRegression{Epochs: 500}
	if err := lr.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	pred := make([]float64, n)
	lr.PredictInto(x, pred)
	if acc := Accuracy(pred, y); acc < 0.95 {
		t.Errorf("accuracy = %v, want >= 0.95", acc)
	}
	auc, err := AUC(pred, y)
	if err != nil {
		t.Fatal(err)
	}
	if auc < 0.97 {
		t.Errorf("AUC = %v, want >= 0.97", auc)
	}
}

func TestLogisticRegressionRejectsNonBinary(t *testing.T) {
	x := NewMatrix(2, 1)
	lr := &LogisticRegression{}
	if err := lr.Fit(x, []float64{0, 2}); err == nil {
		t.Error("non-binary labels should error")
	}
}

func TestDecisionTreeFitsStepFunction(t *testing.T) {
	// y = 10 if x0 >= 5 else -10: one split suffices.
	n := 100
	x := NewMatrix(n, 1)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x.Set(i, 0, float64(i)/10)
		if x.At(i, 0) >= 5 {
			y[i] = 10
		} else {
			y[i] = -10
		}
	}
	dt := &DecisionTree{MaxDepth: 2}
	if err := dt.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if p := dt.PredictRow([]float64{7}); p != 10 {
		t.Errorf("predict(7) = %v, want 10", p)
	}
	if p := dt.PredictRow([]float64{2}); p != -10 {
		t.Errorf("predict(2) = %v, want -10", p)
	}
	if d := dt.Depth(); d < 1 || d > 2 {
		t.Errorf("depth = %d, want 1..2", d)
	}
}

func TestDecisionTreeConstantTarget(t *testing.T) {
	x := NewMatrix(20, 3)
	y := make([]float64, 20)
	for i := range y {
		y[i] = 7
	}
	dt := &DecisionTree{}
	if err := dt.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if len(dt.Nodes) != 1 || !dt.Nodes[0].IsLeaf() {
		t.Errorf("constant target should produce a single leaf, got %d nodes", len(dt.Nodes))
	}
	if dt.PredictRow([]float64{0, 0, 0}) != 7 {
		t.Error("leaf value should be the mean target")
	}
}

func TestDecisionTreeMinLeaf(t *testing.T) {
	x, y := synthLinear(50, 0.5, 4)
	dt := &DecisionTree{MaxDepth: 10, MinLeaf: 10}
	if err := dt.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	// Count rows reaching each leaf; none may hold fewer than MinLeaf.
	counts := map[int32]int{}
	for i := 0; i < x.Rows; i++ {
		n := int32(0)
		for !dt.Nodes[n].IsLeaf() {
			if x.At(i, int(dt.Nodes[n].Feature)) < dt.Nodes[n].Threshold {
				n = dt.Nodes[n].Left
			} else {
				n = dt.Nodes[n].Right
			}
		}
		counts[n]++
	}
	for leaf, c := range counts {
		if c < 10 {
			t.Errorf("leaf %d has %d rows, want >= 10", leaf, c)
		}
	}
}

func TestDecisionTreeUsedFeatures(t *testing.T) {
	// Only feature 1 is informative.
	r := NewRand(5)
	n := 200
	x := NewMatrix(n, 3)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x.Set(i, 0, r.NormFloat64())
		x.Set(i, 1, r.NormFloat64())
		x.Set(i, 2, r.NormFloat64())
		if x.At(i, 1) > 0 {
			y[i] = 100
		}
	}
	dt := &DecisionTree{MaxDepth: 1}
	if err := dt.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	used := dt.UsedFeatures()
	if len(used) != 1 || used[0] != 1 {
		t.Errorf("UsedFeatures = %v, want [1]", used)
	}
}

func TestGradientBoostingRegression(t *testing.T) {
	// Nonlinear target: y = sin-ish step surface a linear model can't fit.
	r := NewRand(6)
	n := 800
	x := NewMatrix(n, 2)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		a, b := r.Float64()*10, r.Float64()*10
		x.Set(i, 0, a)
		x.Set(i, 1, b)
		y[i] = math.Floor(a/2)*3 + math.Floor(b/3)*2
	}
	g := &GradientBoosting{NTrees: 80, MaxDepth: 4}
	if err := g.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	pred := make([]float64, n)
	g.PredictInto(x, pred)
	if rmse := RMSE(pred, y); rmse > 1.0 {
		t.Errorf("GBM RMSE = %v, want < 1.0", rmse)
	}
	// GBM must beat a linear fit on this target by a clear margin.
	lr := &LinearRegression{}
	if err := lr.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	lp := make([]float64, n)
	lr.PredictInto(x, lp)
	if RMSE(pred, y) > RMSE(lp, y)/2 {
		t.Errorf("GBM (%v) should clearly beat linear (%v)", RMSE(pred, y), RMSE(lp, y))
	}
}

func TestGradientBoostingLogistic(t *testing.T) {
	// XOR-ish pattern: linearly inseparable.
	r := NewRand(8)
	n := 600
	x := NewMatrix(n, 2)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		a, b := r.NormFloat64(), r.NormFloat64()
		x.Set(i, 0, a)
		x.Set(i, 1, b)
		if (a > 0) != (b > 0) {
			y[i] = 1
		}
	}
	g := &GradientBoosting{NTrees: 60, MaxDepth: 3, Loss: LossLogistic}
	if err := g.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	pred := make([]float64, n)
	g.PredictInto(x, pred)
	for _, p := range pred {
		if p < 0 || p > 1 {
			t.Fatalf("probability %v out of [0,1]", p)
		}
	}
	if acc := Accuracy(pred, y); acc < 0.9 {
		t.Errorf("accuracy = %v, want >= 0.9 on XOR", acc)
	}
}

func TestGradientBoostingUsedFeatures(t *testing.T) {
	r := NewRand(9)
	n := 300
	x := NewMatrix(n, 5)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < 5; j++ {
			x.Set(i, j, r.NormFloat64())
		}
		y[i] = 5 * x.At(i, 2) // only feature 2 matters
	}
	g := &GradientBoosting{NTrees: 20, MaxDepth: 2}
	if err := g.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	used := g.UsedFeatures()
	for _, f := range used {
		if f != 2 {
			// Small spurious splits are possible but feature 2 must dominate.
			t.Logf("note: spurious feature %d used", f)
		}
	}
	found := false
	for _, f := range used {
		if f == 2 {
			found = true
		}
	}
	if !found {
		t.Error("feature 2 should be used")
	}
}

// Property: ensemble prediction equals base + rate * sum of tree predictions.
func TestGBMDecompositionProperty(t *testing.T) {
	x, y := synthLinear(200, 0.3, 11)
	g := &GradientBoosting{NTrees: 15, MaxDepth: 3}
	if err := g.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsInf(a, 0) || math.IsNaN(b) || math.IsInf(b, 0) {
			return true
		}
		row := []float64{a, b}
		want := g.Base
		for _, tr := range g.Trees {
			want += 0.1 * tr.PredictRow(row)
		}
		return almostEq(g.PredictRow(row), want, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMetrics(t *testing.T) {
	if got := MSE([]float64{1, 2}, []float64{1, 4}); got != 2 {
		t.Errorf("MSE = %v, want 2", got)
	}
	if got := Accuracy([]float64{0.9, 0.2, 0.7}, []float64{1, 0, 0}); !almostEq(got, 2.0/3, 1e-12) {
		t.Errorf("Accuracy = %v", got)
	}
	auc, err := AUC([]float64{0.1, 0.4, 0.35, 0.8}, []float64{0, 0, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(auc, 0.75, 1e-12) {
		t.Errorf("AUC = %v, want 0.75", auc)
	}
	if _, err := AUC([]float64{0.5}, []float64{1}); err == nil {
		t.Error("single-class AUC should error")
	}
	if _, err := AUC([]float64{0.5, 0.5}, []float64{1}); err == nil {
		t.Error("length mismatch should error")
	}
}

func TestTrainTestSplit(t *testing.T) {
	train, test := TrainTestSplit(1000, 0.25, 42)
	if len(train)+len(test) != 1000 {
		t.Fatal("split must partition")
	}
	frac := float64(len(test)) / 1000
	if frac < 0.2 || frac > 0.3 {
		t.Errorf("test fraction = %v, want ~0.25", frac)
	}
	// Deterministic.
	train2, _ := TrainTestSplit(1000, 0.25, 42)
	if len(train2) != len(train) {
		t.Error("split not deterministic")
	}
}
