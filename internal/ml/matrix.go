// Package ml is a from-scratch training library in the spirit of
// scikit-learn: dense linear algebra, linear and logistic regression, CART
// decision trees, gradient-boosted ensembles, column featurizers and a
// Pipeline abstraction that chains featurization with a final predictor.
//
// It plays two roles in the Flock reproduction: it is the model *producer*
// for the rest of the stack (pipelines are exported to internal/onnx graphs
// and deployed into the engine), and its deliberately interpreted,
// row-oriented Predict path is the "scikit-learn" baseline of Figure 4.
package ml

import (
	"errors"
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix of float64.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// NewMatrix allocates a zero Rows x Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// MatrixFromRows builds a matrix by copying the given rows, which must all
// have the same length.
func MatrixFromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 {
		return &Matrix{}, nil
	}
	cols := len(rows[0])
	m := NewMatrix(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			return nil, fmt.Errorf("ml: row %d has %d columns, want %d", i, len(r), cols)
		}
		copy(m.Data[i*cols:(i+1)*cols], r)
	}
	return m, nil
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a slice aliasing row i.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// T returns the transpose of m as a new matrix.
func (m *Matrix) T() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			t.Data[j*t.Cols+i] = v
		}
	}
	return t
}

// MatMul returns a*b. It panics if the inner dimensions disagree, matching
// the behaviour of out-of-range slice indexing for programmer errors.
func MatMul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("ml: MatMul dimension mismatch %dx%d * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// MulVec returns m*v as a new vector.
func (m *Matrix) MulVec(v []float64) []float64 {
	if len(v) != m.Cols {
		panic(fmt.Sprintf("ml: MulVec dimension mismatch %dx%d * %d", m.Rows, m.Cols, len(v)))
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		var s float64
		for j, rv := range row {
			s += rv * v[j]
		}
		out[i] = s
	}
	return out
}

// Gram returns X^T X (a Cols x Cols symmetric positive semidefinite matrix).
func (m *Matrix) Gram() *Matrix {
	g := NewMatrix(m.Cols, m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for a, va := range row {
			if va == 0 {
				continue
			}
			grow := g.Row(a)
			for b, vb := range row {
				grow[b] += va * vb
			}
		}
	}
	return g
}

// ErrSingular reports that a linear system could not be solved because the
// matrix is singular (or numerically indistinguishable from singular).
var ErrSingular = errors.New("ml: matrix is singular")

// SolveSPD solves A x = b for symmetric positive-definite A using Cholesky
// decomposition. A is not modified.
func SolveSPD(a *Matrix, b []float64) ([]float64, error) {
	n := a.Rows
	if a.Cols != n || len(b) != n {
		return nil, fmt.Errorf("ml: SolveSPD shape mismatch %dx%d, b=%d", a.Rows, a.Cols, len(b))
	}
	// Cholesky factorization A = L L^T, storing L in the lower triangle.
	l := a.Clone()
	for j := 0; j < n; j++ {
		d := l.At(j, j)
		for k := 0; k < j; k++ {
			ljk := l.At(j, k)
			d -= ljk * ljk
		}
		if d <= 0 || math.IsNaN(d) {
			return nil, ErrSingular
		}
		d = math.Sqrt(d)
		l.Set(j, j, d)
		for i := j + 1; i < n; i++ {
			s := l.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			l.Set(i, j, s/d)
		}
	}
	// Forward substitution L y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= l.At(i, k) * y[k]
		}
		y[i] = s / l.At(i, i)
	}
	// Back substitution L^T x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * x[k]
		}
		x[i] = s / l.At(i, i)
	}
	return x, nil
}

// Dot returns the dot product of a and b.
func Dot(a, b []float64) float64 {
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	mu := Mean(xs)
	var s float64
	for _, v := range xs {
		d := v - mu
		s += d * d
	}
	return s / float64(len(xs))
}

// Sigmoid is the standard logistic function.
func Sigmoid(z float64) float64 {
	// Split on sign for numerical stability at large |z|.
	if z >= 0 {
		return 1 / (1 + math.Exp(-z))
	}
	e := math.Exp(z)
	return e / (1 + e)
}

// Logit is the inverse of Sigmoid: Logit(Sigmoid(z)) == z for p in (0, 1).
func Logit(p float64) float64 { return math.Log(p / (1 - p)) }
