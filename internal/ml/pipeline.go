package ml

import (
	"errors"
	"fmt"
)

// Pipeline chains a Featurizer with a final Predictor, mirroring the
// structure of practical end-to-end prediction pipelines the paper observes
// ("featurizers such as text encoding and models such as decision trees").
type Pipeline struct {
	Name string
	Feat *Featurizer
	Pred Predictor
}

// NewPipeline constructs a pipeline.
func NewPipeline(name string, feat *Featurizer, pred Predictor) *Pipeline {
	return &Pipeline{Name: name, Feat: feat, Pred: pred}
}

// Fit fits the featurizer, transforms the frame and fits the predictor.
func (p *Pipeline) Fit(f *Frame, y []float64) error {
	if p.Feat == nil || p.Pred == nil {
		return errors.New("ml: Pipeline.Fit: pipeline is missing a featurizer or predictor")
	}
	if err := f.Validate(); err != nil {
		return err
	}
	if err := p.Feat.Fit(f); err != nil {
		return err
	}
	x, err := p.Feat.Transform(f)
	if err != nil {
		return err
	}
	return p.Pred.Fit(x, y)
}

// Predict is the deliberately interpreted, row-oriented scoring path: one
// featurization buffer allocation and full per-row dispatch per input row.
// This models the standalone "scikit-learn" baseline of Figure 4.
func (p *Pipeline) Predict(f *Frame) ([]float64, error) {
	cols, err := p.bindColumns(f)
	if err != nil {
		return nil, err
	}
	n := f.NumRows()
	out := make([]float64, n)
	for r := 0; r < n; r++ {
		buf := make([]float64, p.Feat.Width()) // interpreted path: per-row alloc
		p.Feat.TransformRow(cols, r, buf)
		out[r] = p.Pred.PredictRow(buf)
	}
	return out, nil
}

// PredictBatch is the efficient in-process path: vectorized featurization
// followed by a batch predict.
func (p *Pipeline) PredictBatch(f *Frame) ([]float64, error) {
	x, err := p.Feat.Transform(f)
	if err != nil {
		return nil, err
	}
	out := make([]float64, x.Rows)
	p.Pred.PredictInto(x, out)
	return out, nil
}

func (p *Pipeline) bindColumns(f *Frame) ([]*FrameCol, error) {
	cols := make([]*FrameCol, len(p.Feat.Slots))
	for i := range p.Feat.Slots {
		c := f.Col(p.Feat.Slots[i].ColName)
		if c == nil {
			return nil, fmt.Errorf("ml: Pipeline: column %q not in frame", p.Feat.Slots[i].ColName)
		}
		cols[i] = c
	}
	return cols, nil
}

// InputColumns returns the source columns the pipeline consumes.
func (p *Pipeline) InputColumns() []string { return p.Feat.Columns() }
