package ml

import (
	"errors"
	"fmt"
)

// GBMLoss selects the loss function optimized by GradientBoosting.
type GBMLoss int

// Supported boosting losses.
const (
	LossSquared  GBMLoss = iota // regression, squared error
	LossLogistic                // binary classification, log loss
)

// GradientBoosting is a gradient-boosted ensemble of CART regression trees,
// in the style of scikit-learn's GradientBoostingRegressor/Classifier.
// For LossLogistic, predictions are positive-class probabilities.
type GradientBoosting struct {
	// NTrees defaults to 100, LearningRate to 0.1, MaxDepth to 3,
	// MinLeaf to 1.
	NTrees       int
	LearningRate float64
	MaxDepth     int
	MinLeaf      int
	Loss         GBMLoss

	Base  float64 // initial raw score
	Trees []*DecisionTree
}

func (g *GradientBoosting) defaults() (nTrees int, rate float64, depth, minLeaf int) {
	nTrees, rate, depth, minLeaf = g.NTrees, g.LearningRate, g.MaxDepth, g.MinLeaf
	if nTrees == 0 {
		nTrees = 100
	}
	if rate == 0 {
		rate = 0.1
	}
	if depth == 0 {
		depth = 3
	}
	if minLeaf == 0 {
		minLeaf = 1
	}
	return nTrees, rate, depth, minLeaf
}

// Fit trains the ensemble on x, y. For LossLogistic, y must be 0/1 labels.
func (g *GradientBoosting) Fit(x *Matrix, y []float64) error {
	if x.Rows != len(y) {
		return fmt.Errorf("ml: GradientBoosting.Fit: %d rows but %d targets", x.Rows, len(y))
	}
	if x.Rows == 0 {
		return errors.New("ml: GradientBoosting.Fit: empty training set")
	}
	nTrees, rate, depth, minLeaf := g.defaults()

	raw := make([]float64, x.Rows) // current raw score per row
	switch g.Loss {
	case LossSquared:
		g.Base = Mean(y)
	case LossLogistic:
		p := Mean(y)
		const eps = 1e-6
		if p < eps {
			p = eps
		}
		if p > 1-eps {
			p = 1 - eps
		}
		g.Base = Logit(p)
	default:
		return fmt.Errorf("ml: GradientBoosting.Fit: unknown loss %d", g.Loss)
	}
	for i := range raw {
		raw[i] = g.Base
	}

	residual := make([]float64, x.Rows)
	pred := make([]float64, x.Rows)
	g.Trees = g.Trees[:0]
	for t := 0; t < nTrees; t++ {
		// Negative gradient of the loss w.r.t. the raw score.
		switch g.Loss {
		case LossSquared:
			for i, v := range y {
				residual[i] = v - raw[i]
			}
		case LossLogistic:
			for i, v := range y {
				residual[i] = v - Sigmoid(raw[i])
			}
		}
		tree := &DecisionTree{MaxDepth: depth, MinLeaf: minLeaf}
		if err := tree.Fit(x, residual); err != nil {
			return fmt.Errorf("ml: GradientBoosting.Fit tree %d: %w", t, err)
		}
		tree.PredictInto(x, pred)
		for i := range raw {
			raw[i] += rate * pred[i]
		}
		g.Trees = append(g.Trees, tree)
	}
	return nil
}

// rawRow computes the unsquashed ensemble score for one feature vector.
func (g *GradientBoosting) rawRow(row []float64) float64 {
	rate := g.LearningRate
	if rate == 0 {
		rate = 0.1
	}
	s := g.Base
	for _, t := range g.Trees {
		s += rate * t.PredictRow(row)
	}
	return s
}

// PredictInto writes one prediction per row of x into out. For
// LossLogistic, predictions are probabilities.
//
// The loop runs row-outer with the tree walk inlined: a row's features
// (tens of bytes) stay in L1 while every tree is walked, instead of
// streaming the whole matrix through cache once per tree. Per row the
// terms accumulate in tree order, so results are bit-identical to the
// per-row PredictRow walk.
func (g *GradientBoosting) PredictInto(x *Matrix, out []float64) {
	n := x.Rows
	acc := out[:n]
	rate := g.LearningRate
	if rate == 0 {
		rate = 0.1
	}
	trees := g.Trees
	data, cols := x.Data, x.Cols
	logistic := g.Loss == LossLogistic
	for i := 0; i < n; i++ {
		row := data[i*cols : i*cols+cols]
		s := g.Base
		for ti := range trees {
			nodes := trees[ti].Nodes
			nn := int32(0)
			for {
				nd := &nodes[nn]
				if nd.Left < 0 {
					s += rate * nd.Value
					break
				}
				if row[nd.Feature] < nd.Threshold {
					nn = nd.Left
				} else {
					nn = nd.Right
				}
			}
		}
		if logistic {
			s = Sigmoid(s)
		}
		acc[i] = s
	}
}

// PredictColumns scores a column-major batch (cols[f][i] is feature f of
// row i) into out, with the same row-outer accumulation as PredictInto.
func (g *GradientBoosting) PredictColumns(cols [][]float64, out []float64) {
	rate := g.LearningRate
	if rate == 0 {
		rate = 0.1
	}
	trees := g.Trees
	logistic := g.Loss == LossLogistic
	for i := range out {
		s := g.Base
		for ti := range trees {
			nodes := trees[ti].Nodes
			nn := int32(0)
			for {
				nd := &nodes[nn]
				if nd.Left < 0 {
					s += rate * nd.Value
					break
				}
				if cols[nd.Feature][i] < nd.Threshold {
					nn = nd.Left
				} else {
					nn = nd.Right
				}
			}
		}
		if logistic {
			s = Sigmoid(s)
		}
		out[i] = s
	}
}

// PredictRow scores a single feature vector.
func (g *GradientBoosting) PredictRow(row []float64) float64 {
	s := g.rawRow(row)
	if g.Loss == LossLogistic {
		return Sigmoid(s)
	}
	return s
}

// UsedFeatures returns the sorted union of feature indices used by any tree.
func (g *GradientBoosting) UsedFeatures() []int {
	seen := map[int]bool{}
	for _, t := range g.Trees {
		for _, f := range t.UsedFeatures() {
			seen[f] = true
		}
	}
	out := make([]int, 0, len(seen))
	for f := 0; ; f++ {
		if len(out) == len(seen) {
			break
		}
		if seen[f] {
			out = append(out, f)
		}
	}
	return out
}
