package ml

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(0, 0, 1)
	m.Set(0, 2, 5)
	m.Set(1, 1, -2)
	if got := m.At(0, 2); got != 5 {
		t.Errorf("At(0,2) = %v, want 5", got)
	}
	if got := m.Row(1)[1]; got != -2 {
		t.Errorf("Row(1)[1] = %v, want -2", got)
	}
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Error("Clone is not a deep copy")
	}
}

func TestMatrixFromRows(t *testing.T) {
	m, err := MatrixFromRows([][]float64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows != 2 || m.Cols != 2 || m.At(1, 0) != 3 {
		t.Errorf("unexpected matrix %+v", m)
	}
	if _, err := MatrixFromRows([][]float64{{1, 2}, {3}}); err == nil {
		t.Error("ragged rows should error")
	}
	empty, err := MatrixFromRows(nil)
	if err != nil || empty.Rows != 0 {
		t.Errorf("empty input: %v %v", empty, err)
	}
}

func TestTranspose(t *testing.T) {
	m, _ := MatrixFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.T()
	if tr.Rows != 3 || tr.Cols != 2 {
		t.Fatalf("transpose shape %dx%d", tr.Rows, tr.Cols)
	}
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Fatalf("T mismatch at %d,%d", i, j)
			}
		}
	}
}

func TestMatMul(t *testing.T) {
	a, _ := MatrixFromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := MatrixFromRows([][]float64{{5, 6}, {7, 8}})
	c := MatMul(a, b)
	want := [][]float64{{19, 22}, {43, 50}}
	for i := range want {
		for j := range want[i] {
			if c.At(i, j) != want[i][j] {
				t.Errorf("MatMul[%d][%d] = %v, want %v", i, j, c.At(i, j), want[i][j])
			}
		}
	}
}

func TestMatMulDimensionPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on dimension mismatch")
		}
	}()
	a := NewMatrix(2, 3)
	b := NewMatrix(2, 3)
	MatMul(a, b)
}

func TestMulVec(t *testing.T) {
	m, _ := MatrixFromRows([][]float64{{1, 0, 2}, {0, 3, 0}})
	got := m.MulVec([]float64{2, 1, 1})
	if got[0] != 4 || got[1] != 3 {
		t.Errorf("MulVec = %v", got)
	}
}

func TestGramMatchesMatMul(t *testing.T) {
	r := NewRand(7)
	m := NewMatrix(13, 5)
	for i := range m.Data {
		m.Data[i] = r.NormFloat64()
	}
	g := m.Gram()
	ref := MatMul(m.T(), m)
	for i := range g.Data {
		if !almostEq(g.Data[i], ref.Data[i], 1e-9) {
			t.Fatalf("Gram differs from X^T X at %d: %v vs %v", i, g.Data[i], ref.Data[i])
		}
	}
}

func TestSolveSPD(t *testing.T) {
	// A = [[4,1],[1,3]], b = [1,2] -> x = [1/11, 7/11]
	a, _ := MatrixFromRows([][]float64{{4, 1}, {1, 3}})
	x, err := SolveSPD(a, []float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(x[0], 1.0/11, 1e-12) || !almostEq(x[1], 7.0/11, 1e-12) {
		t.Errorf("SolveSPD = %v", x)
	}
}

func TestSolveSPDSingular(t *testing.T) {
	a, _ := MatrixFromRows([][]float64{{1, 1}, {1, 1}})
	if _, err := SolveSPD(a, []float64{1, 1}); err == nil {
		t.Error("singular system should error")
	}
}

func TestSolveSPDShapeMismatch(t *testing.T) {
	a := NewMatrix(2, 3)
	if _, err := SolveSPD(a, []float64{1, 2}); err == nil {
		t.Error("non-square system should error")
	}
}

// Property: for random SPD systems built as G = X^T X + I, the solution
// satisfies ||G x - b|| ~ 0.
func TestSolveSPDProperty(t *testing.T) {
	f := func(seed uint16) bool {
		r := NewRand(uint64(seed) + 1)
		n := 2 + r.Intn(6)
		x := NewMatrix(n+3, n)
		for i := range x.Data {
			x.Data[i] = r.NormFloat64()
		}
		g := x.Gram()
		for i := 0; i < n; i++ {
			g.Set(i, i, g.At(i, i)+1)
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = r.NormFloat64()
		}
		sol, err := SolveSPD(g, b)
		if err != nil {
			return false
		}
		res := g.MulVec(sol)
		for i := range res {
			if !almostEq(res[i], b[i], 1e-6) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSigmoidLogitInverse(t *testing.T) {
	for _, z := range []float64{-30, -5, -1, 0, 0.5, 3, 20} {
		p := Sigmoid(z)
		if p <= 0 || p >= 1 {
			t.Fatalf("Sigmoid(%v) = %v out of (0,1)", z, p)
		}
		if z > -20 && z < 20 && !almostEq(Logit(p), z, 1e-6) {
			t.Errorf("Logit(Sigmoid(%v)) = %v", z, Logit(p))
		}
	}
}

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Errorf("Mean = %v", got)
	}
	if got := Variance(xs); got != 4 {
		t.Errorf("Variance = %v", got)
	}
	if Mean(nil) != 0 || Variance(nil) != 0 {
		t.Error("empty-slice mean/variance should be 0")
	}
}
