package ml

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"strings"
)

// ColumnEncoder turns one Frame column into Width() dense features. Encoders
// are fit once and then applied either row-at-a-time (the interpreted
// pipeline path) or column-at-a-time (the vectorized path).
type ColumnEncoder interface {
	Fit(col *FrameCol) error
	Width() int
	// EncodeInto writes Width() features for the given row into out.
	EncodeInto(col *FrameCol, row int, out []float64)
}

// StandardScaler standardizes a numeric column to zero mean, unit variance.
type StandardScaler struct {
	Mean  float64
	Scale float64 // standard deviation; 1 when the column is constant
}

// Fit computes mean and scale from the column.
func (s *StandardScaler) Fit(col *FrameCol) error {
	if col.Kind != KindNumeric {
		return fmt.Errorf("ml: StandardScaler requires a numeric column, got %v", col.Kind)
	}
	s.Mean = Mean(col.Nums)
	sd := math.Sqrt(Variance(col.Nums))
	if sd == 0 {
		sd = 1
	}
	s.Scale = sd
	return nil
}

// Width returns 1.
func (s *StandardScaler) Width() int { return 1 }

// EncodeInto writes the standardized value.
func (s *StandardScaler) EncodeInto(col *FrameCol, row int, out []float64) {
	out[0] = (col.Nums[row] - s.Mean) / s.Scale
}

// OneHotEncoder maps a categorical column to indicator features, one per
// category seen during Fit. Unseen categories encode to all zeros.
type OneHotEncoder struct {
	Categories []string       // sorted
	index      map[string]int // category -> slot
}

// Fit collects the distinct categories.
func (o *OneHotEncoder) Fit(col *FrameCol) error {
	if col.Kind != KindCategorical {
		return fmt.Errorf("ml: OneHotEncoder requires a categorical column, got %v", col.Kind)
	}
	set := map[string]bool{}
	for _, v := range col.Strs {
		set[v] = true
	}
	o.Categories = make([]string, 0, len(set))
	for v := range set {
		o.Categories = append(o.Categories, v)
	}
	sort.Strings(o.Categories)
	o.buildIndex()
	return nil
}

func (o *OneHotEncoder) buildIndex() {
	o.index = make(map[string]int, len(o.Categories))
	for i, v := range o.Categories {
		o.index[v] = i
	}
}

// Restrict narrows the encoder to the given categories (in their current
// relative order), returning the indices of the surviving slots in the old
// encoding. The cross-optimizer uses this for stats-driven model compression.
func (o *OneHotEncoder) Restrict(keep map[string]bool) []int {
	var kept []string
	var surviving []int
	for i, c := range o.Categories {
		if keep[c] {
			kept = append(kept, c)
			surviving = append(surviving, i)
		}
	}
	o.Categories = kept
	o.buildIndex()
	return surviving
}

// Width returns the number of categories.
func (o *OneHotEncoder) Width() int { return len(o.Categories) }

// EncodeInto writes the indicator vector.
func (o *OneHotEncoder) EncodeInto(col *FrameCol, row int, out []float64) {
	for i := range out[:len(o.Categories)] {
		out[i] = 0
	}
	if o.index == nil {
		o.buildIndex()
	}
	if slot, ok := o.index[col.Strs[row]]; ok {
		out[slot] = 1
	}
}

// HashingVectorizer featurizes free text with the hashing trick: tokens are
// lower-cased, split on non-letters, and hashed into Buckets counts.
type HashingVectorizer struct {
	Buckets int // defaults to 64
}

func (h *HashingVectorizer) buckets() int {
	if h.Buckets == 0 {
		return 64
	}
	return h.Buckets
}

// Fit is stateless for the hashing trick.
func (h *HashingVectorizer) Fit(col *FrameCol) error {
	if col.Kind != KindText {
		return fmt.Errorf("ml: HashingVectorizer requires a text column, got %v", col.Kind)
	}
	return nil
}

// Width returns the number of hash buckets.
func (h *HashingVectorizer) Width() int { return h.buckets() }

// HashToken returns the bucket for a token; exported so the onnx kernel can
// reproduce the training-time featurization bit-for-bit (the paper's
// "preserve the exact behavior crafted in the training environment").
func HashToken(tok string, buckets int) int {
	f := fnv.New32a()
	f.Write([]byte(tok))
	return int(f.Sum32() % uint32(buckets))
}

// Tokenize splits text into lower-cased alphabetic tokens.
func Tokenize(s string) []string {
	return strings.FieldsFunc(strings.ToLower(s), func(r rune) bool {
		return r < 'a' || r > 'z'
	})
}

// EncodeInto writes bucketed token counts.
func (h *HashingVectorizer) EncodeInto(col *FrameCol, row int, out []float64) {
	b := h.buckets()
	for i := range out[:b] {
		out[i] = 0
	}
	for _, tok := range Tokenize(col.Strs[row]) {
		out[HashToken(tok, b)]++
	}
}

// FeatureSlot records where one source column lands in the feature matrix.
type FeatureSlot struct {
	ColName string
	Encoder ColumnEncoder
	Offset  int // first output feature index
}

// Featurizer is a column transformer: it applies one encoder per configured
// source column and concatenates the outputs into a single feature matrix.
type Featurizer struct {
	Slots []FeatureSlot
	width int
}

// NewFeaturizer returns an empty featurizer; add columns with With.
func NewFeaturizer() *Featurizer { return &Featurizer{} }

// With registers an encoder for the named column. Offsets are assigned
// during Fit.
func (ft *Featurizer) With(colName string, enc ColumnEncoder) *Featurizer {
	ft.Slots = append(ft.Slots, FeatureSlot{ColName: colName, Encoder: enc})
	return ft
}

// Fit fits every encoder on its column and lays out output offsets.
func (ft *Featurizer) Fit(f *Frame) error {
	off := 0
	for i := range ft.Slots {
		s := &ft.Slots[i]
		col := f.Col(s.ColName)
		if col == nil {
			return fmt.Errorf("ml: Featurizer.Fit: column %q not in frame", s.ColName)
		}
		if err := s.Encoder.Fit(col); err != nil {
			return fmt.Errorf("ml: Featurizer.Fit %q: %w", s.ColName, err)
		}
		s.Offset = off
		off += s.Encoder.Width()
	}
	ft.width = off
	return nil
}

// Width returns the total number of output features.
func (ft *Featurizer) Width() int { return ft.width }

// Relayout recomputes offsets and width after encoders were mutated (e.g.
// by the cross-optimizer's compression pass).
func (ft *Featurizer) Relayout() {
	off := 0
	for i := range ft.Slots {
		ft.Slots[i].Offset = off
		off += ft.Slots[i].Encoder.Width()
	}
	ft.width = off
}

// Transform featurizes the whole frame into a matrix (vectorized path).
func (ft *Featurizer) Transform(f *Frame) (*Matrix, error) {
	n := f.NumRows()
	out := NewMatrix(n, ft.width)
	for i := range ft.Slots {
		s := &ft.Slots[i]
		col := f.Col(s.ColName)
		if col == nil {
			return nil, fmt.Errorf("ml: Featurizer.Transform: column %q not in frame", s.ColName)
		}
		w := s.Encoder.Width()
		for r := 0; r < n; r++ {
			s.Encoder.EncodeInto(col, r, out.Row(r)[s.Offset:s.Offset+w])
		}
	}
	return out, nil
}

// TransformRow featurizes a single row into out, which must have length
// Width(). cols must be indexed identically to the frame used for Fit.
func (ft *Featurizer) TransformRow(cols []*FrameCol, row int, out []float64) {
	for i := range ft.Slots {
		s := &ft.Slots[i]
		w := s.Encoder.Width()
		s.Encoder.EncodeInto(cols[i], row, out[s.Offset:s.Offset+w])
	}
}

// Columns returns the source column names in slot order.
func (ft *Featurizer) Columns() []string {
	names := make([]string, len(ft.Slots))
	for i := range ft.Slots {
		names[i] = ft.Slots[i].ColName
	}
	return names
}
