package ml

import (
	"math"
	"testing"
)

func TestEvaluateFairnessBalanced(t *testing.T) {
	// Perfectly symmetric groups: zero gaps.
	scores := []float64{0.9, 0.1, 0.9, 0.1}
	y := []float64{1, 0, 1, 0}
	groups := []string{"a", "a", "b", "b"}
	rep, err := EvaluateFairness(scores, y, groups)
	if err != nil {
		t.Fatal(err)
	}
	if rep.DemographicParityGap != 0 || rep.EqualizedOddsGap != 0 {
		t.Errorf("symmetric groups should have zero gaps: %+v", rep)
	}
	if len(rep.Groups) != 2 || rep.Groups[0].Group != "a" {
		t.Errorf("groups = %+v", rep.Groups)
	}
}

func TestEvaluateFairnessBiased(t *testing.T) {
	// Group b never receives positive predictions despite positives.
	scores := []float64{0.9, 0.9, 0.1, 0.1}
	y := []float64{1, 0, 1, 0}
	groups := []string{"a", "a", "b", "b"}
	rep, err := EvaluateFairness(scores, y, groups)
	if err != nil {
		t.Fatal(err)
	}
	if rep.DemographicParityGap != 1 {
		t.Errorf("parity gap = %v, want 1", rep.DemographicParityGap)
	}
	if rep.EqualizedOddsGap != 1 {
		t.Errorf("odds gap = %v, want 1", rep.EqualizedOddsGap)
	}
}

func TestEvaluateFairnessErrors(t *testing.T) {
	if _, err := EvaluateFairness([]float64{1}, []float64{1, 2}, []string{"a"}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := EvaluateFairness(nil, nil, nil); err == nil {
		t.Error("empty input should error")
	}
}

func TestFeatureImportanceTree(t *testing.T) {
	r := NewRand(31)
	n := 400
	x := NewMatrix(n, 4)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < 4; j++ {
			x.Set(i, j, r.NormFloat64())
		}
		y[i] = 10 * x.At(i, 2) // only feature 2 matters
	}
	g := &GradientBoosting{NTrees: 20, MaxDepth: 3}
	if err := g.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	imp, err := FeatureImportance(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, v := range imp {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("importance sum = %v", sum)
	}
	for j := range imp {
		if j != 2 && imp[j] > imp[2] {
			t.Errorf("feature %d importance %v exceeds informative feature's %v", j, imp[j], imp[2])
		}
	}
	if imp[2] < 0.5 {
		t.Errorf("informative feature importance = %v, want dominant", imp[2])
	}
}

func TestFeatureImportanceLinear(t *testing.T) {
	lr := &LinearRegression{Weights: []float64{0, 3, -1}, Intercept: 1}
	imp, err := FeatureImportance(lr, 3)
	if err != nil {
		t.Fatal(err)
	}
	if imp[0] != 0 || imp[1] != 0.75 || imp[2] != 0.25 {
		t.Errorf("importance = %v", imp)
	}
}

func TestPipelineImportance(t *testing.T) {
	r := NewRand(33)
	n := 500
	ages := make([]float64, n)
	noise := make([]float64, n)
	regions := make([]string, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		ages[i] = r.Float64() * 100
		noise[i] = r.NormFloat64()
		regions[i] = []string{"x", "y"}[r.Intn(2)]
		if ages[i] > 50 {
			y[i] = 1
		}
	}
	f := NewFrame().
		AddNumeric("age", ages).
		AddNumeric("noise", noise).
		AddCategorical("region", regions)
	p := NewPipeline("imp",
		NewFeaturizer().
			With("age", &StandardScaler{}).
			With("noise", &StandardScaler{}).
			With("region", &OneHotEncoder{}),
		&GradientBoosting{NTrees: 20, MaxDepth: 3, Loss: LossLogistic})
	if err := p.Fit(f, y); err != nil {
		t.Fatal(err)
	}
	cols, err := PipelineImportance(p)
	if err != nil {
		t.Fatal(err)
	}
	if cols[0].Column != "age" {
		t.Errorf("most important column = %s, want age (%+v)", cols[0].Column, cols)
	}
	if _, err := PipelineImportance(&Pipeline{}); err == nil {
		t.Error("incomplete pipeline should error")
	}
}

func TestPredictInterpretedMatchesBatch(t *testing.T) {
	for _, pred := range []Predictor{
		&LinearRegression{},
		&LogisticRegression{Epochs: 30},
		&DecisionTree{MaxDepth: 4},
		&GradientBoosting{NTrees: 15, MaxDepth: 3, Loss: LossLogistic},
	} {
		r := NewRand(41)
		n := 200
		ages := make([]float64, n)
		regions := make([]string, n)
		y := make([]float64, n)
		for i := 0; i < n; i++ {
			ages[i] = r.Float64() * 100
			regions[i] = []string{"x", "y", "z"}[r.Intn(3)]
			if ages[i] > 50 {
				y[i] = 1
			}
		}
		f := NewFrame().AddNumeric("age", ages).AddCategorical("region", regions)
		p := NewPipeline("i",
			NewFeaturizer().With("age", &StandardScaler{}).With("region", &OneHotEncoder{}),
			pred)
		if err := p.Fit(f, y); err != nil {
			t.Fatal(err)
		}
		batch, err := p.PredictBatch(f)
		if err != nil {
			t.Fatal(err)
		}
		interp, err := p.PredictInterpreted(f)
		if err != nil {
			t.Fatal(err)
		}
		for i := range batch {
			if batch[i] != interp[i] {
				t.Fatalf("%T: interpreted differs at row %d: %v vs %v", pred, i, interp[i], batch[i])
			}
		}
	}
}

func TestKFoldIndices(t *testing.T) {
	folds := KFoldIndices(100, 5, 9)
	seen := map[int]bool{}
	total := 0
	for _, f := range folds {
		total += len(f)
		for _, i := range f {
			if seen[i] {
				t.Fatal("row in two folds")
			}
			seen[i] = true
		}
	}
	if total != 100 {
		t.Fatalf("folds cover %d rows", total)
	}
	for fi, f := range folds {
		if len(f) < 10 {
			t.Errorf("fold %d suspiciously small: %d", fi, len(f))
		}
	}
}

func TestAutoMLSelectsNonlinearModel(t *testing.T) {
	// XOR-ish target: linear cannot fit it, GBM can; AutoML must rank the
	// GBM first.
	r := NewRand(51)
	n := 600
	a := make([]float64, n)
	b := make([]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		a[i] = r.NormFloat64()
		b[i] = r.NormFloat64()
		if (a[i] > 0) != (b[i] > 0) {
			y[i] = 1
		}
	}
	f := NewFrame().AddNumeric("a", a).AddNumeric("b", b)
	feat := NewFeaturizer().With("a", &StandardScaler{}).With("b", &StandardScaler{})
	res, err := AutoML("xor", feat, f, y, TaskClassification, nil, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Leaderboard) != 3 {
		t.Fatalf("leaderboard = %+v", res.Leaderboard)
	}
	if res.BestTrial.Name == "logistic" {
		t.Errorf("AutoML picked the linear model on XOR: %+v", res.Leaderboard)
	}
	if res.BestTrial.Score < 0.85 {
		t.Errorf("best CV accuracy = %v", res.BestTrial.Score)
	}
	// The refit winner is deployable.
	pred, err := res.Best.PredictBatch(f)
	if err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(pred, y); acc < 0.9 {
		t.Errorf("refit accuracy = %v", acc)
	}
	// Leaderboard is sorted descending.
	for i := 1; i < len(res.Leaderboard); i++ {
		if res.Leaderboard[i].Score > res.Leaderboard[i-1].Score {
			t.Error("leaderboard not sorted")
		}
	}
}

func TestAutoMLRegression(t *testing.T) {
	x, y := synthLinear(300, 0.1, 61)
	f := NewFrame().AddNumeric("a", colOf(x, 0)).AddNumeric("b", colOf(x, 1))
	feat := NewFeaturizer().With("a", &StandardScaler{}).With("b", &StandardScaler{})
	res, err := AutoML("lin", feat, f, y, TaskRegression, nil, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	// On a truly linear target the linear model should be at or near the
	// top; at minimum it must beat the shallow tree.
	rank := map[string]int{}
	for i, tr := range res.Leaderboard {
		rank[tr.Name] = i
	}
	if rank["linear"] > rank["tree-d4"] {
		t.Errorf("linear ranked below a shallow tree on a linear target: %+v", res.Leaderboard)
	}
}

func colOf(m *Matrix, j int) []float64 {
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = m.At(i, j)
	}
	return out
}
