package ml

import (
	"testing"
	"testing/quick"
)

func TestStandardScaler(t *testing.T) {
	col := &FrameCol{Name: "x", Kind: KindNumeric, Nums: []float64{2, 4, 4, 4, 5, 5, 7, 9}}
	s := &StandardScaler{}
	if err := s.Fit(col); err != nil {
		t.Fatal(err)
	}
	if s.Mean != 5 || s.Scale != 2 {
		t.Fatalf("mean=%v scale=%v, want 5, 2", s.Mean, s.Scale)
	}
	out := make([]float64, 1)
	s.EncodeInto(col, 0, out)
	if !almostEq(out[0], -1.5, 1e-12) {
		t.Errorf("scaled = %v, want -1.5", out[0])
	}
}

func TestStandardScalerConstantColumn(t *testing.T) {
	col := &FrameCol{Name: "x", Kind: KindNumeric, Nums: []float64{3, 3, 3}}
	s := &StandardScaler{}
	if err := s.Fit(col); err != nil {
		t.Fatal(err)
	}
	if s.Scale != 1 {
		t.Errorf("constant column scale = %v, want 1", s.Scale)
	}
}

func TestStandardScalerKindMismatch(t *testing.T) {
	col := &FrameCol{Name: "x", Kind: KindCategorical, Strs: []string{"a"}}
	if err := (&StandardScaler{}).Fit(col); err == nil {
		t.Error("fitting a scaler on a categorical column should error")
	}
}

func TestOneHotEncoder(t *testing.T) {
	col := &FrameCol{Name: "c", Kind: KindCategorical, Strs: []string{"red", "blue", "red", "green"}}
	o := &OneHotEncoder{}
	if err := o.Fit(col); err != nil {
		t.Fatal(err)
	}
	if o.Width() != 3 {
		t.Fatalf("width = %d, want 3", o.Width())
	}
	// Categories are sorted: blue, green, red.
	out := make([]float64, 3)
	o.EncodeInto(col, 0, out) // "red"
	if out[0] != 0 || out[1] != 0 || out[2] != 1 {
		t.Errorf("encode(red) = %v", out)
	}
	// Unseen category encodes to zeros.
	unseen := &FrameCol{Name: "c", Kind: KindCategorical, Strs: []string{"purple"}}
	o.EncodeInto(unseen, 0, out)
	if out[0] != 0 || out[1] != 0 || out[2] != 0 {
		t.Errorf("encode(unseen) = %v, want zeros", out)
	}
}

func TestOneHotRestrict(t *testing.T) {
	col := &FrameCol{Name: "c", Kind: KindCategorical, Strs: []string{"a", "b", "c", "d"}}
	o := &OneHotEncoder{}
	if err := o.Fit(col); err != nil {
		t.Fatal(err)
	}
	surviving := o.Restrict(map[string]bool{"b": true, "d": true})
	if o.Width() != 2 {
		t.Fatalf("restricted width = %d, want 2", o.Width())
	}
	if len(surviving) != 2 || surviving[0] != 1 || surviving[1] != 3 {
		t.Errorf("surviving slots = %v, want [1 3]", surviving)
	}
	out := make([]float64, 2)
	o.EncodeInto(col, 3, out) // "d" -> slot 1 now
	if out[0] != 0 || out[1] != 1 {
		t.Errorf("encode(d) after restrict = %v", out)
	}
	o.EncodeInto(col, 0, out) // "a" was dropped -> zeros
	if out[0] != 0 || out[1] != 0 {
		t.Errorf("encode(dropped) = %v, want zeros", out)
	}
}

func TestHashingVectorizer(t *testing.T) {
	col := &FrameCol{Name: "t", Kind: KindText, Strs: []string{"Hello hello WORLD", ""}}
	h := &HashingVectorizer{Buckets: 16}
	if err := h.Fit(col); err != nil {
		t.Fatal(err)
	}
	out := make([]float64, 16)
	h.EncodeInto(col, 0, out)
	var total float64
	for _, v := range out {
		total += v
	}
	if total != 3 { // three tokens
		t.Errorf("token count = %v, want 3", total)
	}
	// "hello" appears twice and must land in one bucket with count 2.
	if out[HashToken("hello", 16)] != 2 {
		t.Errorf("hello bucket = %v, want 2", out[HashToken("hello", 16)])
	}
	h.EncodeInto(col, 1, out)
	for _, v := range out {
		if v != 0 {
			t.Error("empty text should encode to zeros")
		}
	}
}

func TestTokenize(t *testing.T) {
	got := Tokenize("The quick-brown fox, 42 times!")
	want := []string{"the", "quick", "brown", "fox", "times"}
	if len(got) != len(want) {
		t.Fatalf("Tokenize = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func testFrame() *Frame {
	return NewFrame().
		AddNumeric("age", []float64{30, 40, 50, 60}).
		AddCategorical("region", []string{"us", "eu", "us", "apac"}).
		AddText("notes", []string{"good customer", "late payment", "", "good"})
}

func testFeaturizer() *Featurizer {
	return NewFeaturizer().
		With("age", &StandardScaler{}).
		With("region", &OneHotEncoder{}).
		With("notes", &HashingVectorizer{Buckets: 8})
}

func TestFeaturizerLayout(t *testing.T) {
	f := testFrame()
	ft := testFeaturizer()
	if err := ft.Fit(f); err != nil {
		t.Fatal(err)
	}
	if ft.Width() != 1+3+8 {
		t.Fatalf("width = %d, want 12", ft.Width())
	}
	if ft.Slots[1].Offset != 1 || ft.Slots[2].Offset != 4 {
		t.Errorf("offsets = %d, %d, want 1, 4", ft.Slots[1].Offset, ft.Slots[2].Offset)
	}
	x, err := ft.Transform(f)
	if err != nil {
		t.Fatal(err)
	}
	if x.Rows != 4 || x.Cols != 12 {
		t.Fatalf("transform shape = %dx%d", x.Rows, x.Cols)
	}
}

func TestFeaturizerRowMatchesBatch(t *testing.T) {
	f := testFrame()
	ft := testFeaturizer()
	if err := ft.Fit(f); err != nil {
		t.Fatal(err)
	}
	x, err := ft.Transform(f)
	if err != nil {
		t.Fatal(err)
	}
	cols := []*FrameCol{f.Col("age"), f.Col("region"), f.Col("notes")}
	buf := make([]float64, ft.Width())
	for r := 0; r < f.NumRows(); r++ {
		ft.TransformRow(cols, r, buf)
		for j, v := range buf {
			if v != x.At(r, j) {
				t.Fatalf("row path differs from batch path at (%d,%d): %v vs %v", r, j, v, x.At(r, j))
			}
		}
	}
}

func TestFeaturizerMissingColumn(t *testing.T) {
	ft := NewFeaturizer().With("nope", &StandardScaler{})
	if err := ft.Fit(testFrame()); err == nil {
		t.Error("missing column should error")
	}
}

func TestFrameValidate(t *testing.T) {
	f := NewFrame().AddNumeric("a", []float64{1, 2}).AddCategorical("b", []string{"x"})
	if err := f.Validate(); err == nil {
		t.Error("ragged frame should fail validation")
	}
	if err := testFrame().Validate(); err != nil {
		t.Errorf("valid frame failed: %v", err)
	}
}

func TestFrameSlice(t *testing.T) {
	f := testFrame()
	s := f.Slice(1, 3)
	if s.NumRows() != 2 {
		t.Fatalf("slice rows = %d", s.NumRows())
	}
	if s.Col("age").Nums[0] != 40 || s.Col("region").Strs[1] != "us" {
		t.Error("slice contents wrong")
	}
}

func TestPipelineEndToEnd(t *testing.T) {
	// Binary target correlated with age and region.
	r := NewRand(13)
	n := 400
	ages := make([]float64, n)
	regions := make([]string, n)
	notes := make([]string, n)
	y := make([]float64, n)
	regionNames := []string{"us", "eu", "apac"}
	for i := 0; i < n; i++ {
		ages[i] = 20 + r.Float64()*50
		regions[i] = regionNames[r.Intn(3)]
		notes[i] = "customer note"
		score := (ages[i]-45)/10 + map[string]float64{"us": 1, "eu": 0, "apac": -1}[regions[i]]
		if score > 0 {
			y[i] = 1
		}
	}
	f := NewFrame().AddNumeric("age", ages).AddCategorical("region", regions).AddText("notes", notes)
	p := NewPipeline("risk",
		NewFeaturizer().
			With("age", &StandardScaler{}).
			With("region", &OneHotEncoder{}).
			With("notes", &HashingVectorizer{Buckets: 4}),
		&GradientBoosting{NTrees: 40, MaxDepth: 3, Loss: LossLogistic})
	if err := p.Fit(f, y); err != nil {
		t.Fatal(err)
	}
	rowPred, err := p.Predict(f)
	if err != nil {
		t.Fatal(err)
	}
	batchPred, err := p.PredictBatch(f)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rowPred {
		if !almostEq(rowPred[i], batchPred[i], 1e-12) {
			t.Fatalf("row vs batch mismatch at %d: %v vs %v", i, rowPred[i], batchPred[i])
		}
	}
	if acc := Accuracy(batchPred, y); acc < 0.9 {
		t.Errorf("pipeline accuracy = %v, want >= 0.9", acc)
	}
	cols := p.InputColumns()
	if len(cols) != 3 || cols[0] != "age" {
		t.Errorf("InputColumns = %v", cols)
	}
}

func TestPipelineErrors(t *testing.T) {
	p := &Pipeline{}
	if err := p.Fit(testFrame(), nil); err == nil {
		t.Error("pipeline without parts should error on Fit")
	}
	p = NewPipeline("x", testFeaturizer(), &LinearRegression{})
	f := testFrame()
	if err := p.Fit(f, []float64{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	bad := NewFrame().AddNumeric("age", []float64{1})
	if _, err := p.Predict(bad); err == nil {
		t.Error("predicting with missing columns should error")
	}
	if _, err := p.PredictBatch(bad); err == nil {
		t.Error("batch predicting with missing columns should error")
	}
}

// Property: one-hot encoding always produces at most a single 1 and the rest
// zeros, for arbitrary category strings.
func TestOneHotProperty(t *testing.T) {
	f := func(cats []string, probe string) bool {
		if len(cats) == 0 {
			return true
		}
		col := &FrameCol{Name: "c", Kind: KindCategorical, Strs: cats}
		o := &OneHotEncoder{}
		if err := o.Fit(col); err != nil {
			return false
		}
		out := make([]float64, o.Width())
		pc := &FrameCol{Name: "c", Kind: KindCategorical, Strs: []string{probe}}
		o.EncodeInto(pc, 0, out)
		ones := 0
		for _, v := range out {
			if v == 1 {
				ones++
			} else if v != 0 {
				return false
			}
		}
		return ones <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
