package ml

import (
	"fmt"
	"sort"
)

// Explainability: feature and input-column importance, needed for the
// paper's "interpret the predictions and answer questions such as whether
// they were biased" requirement, and reused by the cross-optimizer story
// (sparsity pruning drops exactly the zero-importance inputs).

// FeatureImportance returns a weight per dense feature. For tree
// ensembles it is split-frequency weighted by subtree size; for linear
// models the absolute coefficient. Weights are normalized to sum to 1
// (all-zero weights stay zero).
func FeatureImportance(pred Predictor, numFeatures int) ([]float64, error) {
	imp := make([]float64, numFeatures)
	switch m := pred.(type) {
	case *LinearRegression:
		for i, w := range m.Weights {
			if i < numFeatures {
				imp[i] = abs(w)
			}
		}
	case *LogisticRegression:
		for i, w := range m.Weights {
			if i < numFeatures {
				imp[i] = abs(w)
			}
		}
	case *DecisionTree:
		treeImportance(m, imp)
	case *GradientBoosting:
		for _, t := range m.Trees {
			treeImportance(t, imp)
		}
	default:
		return nil, fmt.Errorf("ml: FeatureImportance: unsupported predictor %T", pred)
	}
	var total float64
	for _, v := range imp {
		total += v
	}
	if total > 0 {
		for i := range imp {
			imp[i] /= total
		}
	}
	return imp, nil
}

// treeImportance credits each split feature with the absolute value spread
// between its children (a cheap proxy for variance gain).
func treeImportance(t *DecisionTree, imp []float64) {
	for i := range t.Nodes {
		n := &t.Nodes[i]
		if n.IsLeaf() {
			continue
		}
		f := int(n.Feature)
		if f >= len(imp) {
			continue
		}
		spread := abs(t.Nodes[n.Left].Value - t.Nodes[n.Right].Value)
		imp[f] += spread + 1e-9 // every split counts at least a little
	}
}

// ColumnImportance is one input column's aggregate importance.
type ColumnImportance struct {
	Column     string
	Importance float64
}

// PipelineImportance aggregates per-feature importance back to the
// pipeline's source columns (summing over each encoder's output block) and
// returns them sorted descending.
func PipelineImportance(p *Pipeline) ([]ColumnImportance, error) {
	if p == nil || p.Feat == nil || p.Pred == nil {
		return nil, fmt.Errorf("ml: PipelineImportance: incomplete pipeline")
	}
	imp, err := FeatureImportance(p.Pred, p.Feat.Width())
	if err != nil {
		return nil, err
	}
	var out []ColumnImportance
	for _, slot := range p.Feat.Slots {
		var sum float64
		for j := 0; j < slot.Encoder.Width(); j++ {
			sum += imp[slot.Offset+j]
		}
		out = append(out, ColumnImportance{Column: slot.ColName, Importance: sum})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Importance > out[j].Importance })
	return out, nil
}
