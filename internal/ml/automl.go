package ml

import (
	"fmt"
	"sort"
)

// A small AutoML layer — candidate generation + k-fold cross-validated
// selection — reproducing the paper's observation that AutoML is the third
// wave of ML-systems work and depends on exactly the metadata the catalog
// tracks (every trial is a model version with hyperparameters and metrics).

// Candidate is one model configuration to try.
type Candidate struct {
	Name string
	// New constructs a fresh, untrained predictor for each fold.
	New func() Predictor
}

// Task selects the objective for model selection.
type Task int

// AutoML tasks.
const (
	TaskRegression     Task = iota // minimize RMSE
	TaskClassification             // maximize accuracy
)

// TrialResult records one candidate's cross-validated performance.
type TrialResult struct {
	Name  string
	Score float64 // higher is better (negative RMSE for regression)
	Folds []float64
}

// DefaultCandidates returns a reasonable search space for the task.
func DefaultCandidates(task Task) []Candidate {
	if task == TaskRegression {
		return []Candidate{
			{Name: "linear", New: func() Predictor { return &LinearRegression{} }},
			{Name: "tree-d4", New: func() Predictor { return &DecisionTree{MaxDepth: 4} }},
			{Name: "tree-d8", New: func() Predictor { return &DecisionTree{MaxDepth: 8, MinLeaf: 5} }},
			{Name: "gbm-50x3", New: func() Predictor { return &GradientBoosting{NTrees: 50, MaxDepth: 3} }},
			{Name: "gbm-100x4", New: func() Predictor { return &GradientBoosting{NTrees: 100, MaxDepth: 4} }},
		}
	}
	return []Candidate{
		{Name: "logistic", New: func() Predictor { return &LogisticRegression{Epochs: 150} }},
		{Name: "gbm-50x3", New: func() Predictor {
			return &GradientBoosting{NTrees: 50, MaxDepth: 3, Loss: LossLogistic}
		}},
		{Name: "gbm-100x4", New: func() Predictor {
			return &GradientBoosting{NTrees: 100, MaxDepth: 4, Loss: LossLogistic}
		}},
	}
}

// KFoldIndices deterministically partitions n rows into k folds.
func KFoldIndices(n, k int, seed uint64) [][]int {
	if k < 2 {
		k = 2
	}
	folds := make([][]int, k)
	for i := 0; i < n; i++ {
		f := int(splitmix(seed+uint64(i)) % uint64(k))
		folds[f] = append(folds[f], i)
	}
	return folds
}

// CrossValidate scores one candidate with k-fold CV over a feature matrix.
func CrossValidate(c Candidate, task Task, x *Matrix, y []float64, k int, seed uint64) (TrialResult, error) {
	folds := KFoldIndices(x.Rows, k, seed)
	res := TrialResult{Name: c.Name}
	for fi, holdout := range folds {
		if len(holdout) == 0 {
			continue
		}
		inFold := make([]bool, x.Rows)
		for _, i := range holdout {
			inFold[i] = true
		}
		trainX := NewMatrix(0, x.Cols)
		var trainY []float64
		testX := NewMatrix(0, x.Cols)
		var testY []float64
		for i := 0; i < x.Rows; i++ {
			if inFold[i] {
				testX.Data = append(testX.Data, x.Row(i)...)
				testX.Rows++
				testY = append(testY, y[i])
			} else {
				trainX.Data = append(trainX.Data, x.Row(i)...)
				trainX.Rows++
				trainY = append(trainY, y[i])
			}
		}
		model := c.New()
		if err := model.Fit(trainX, trainY); err != nil {
			return res, fmt.Errorf("ml: CrossValidate %s fold %d: %w", c.Name, fi, err)
		}
		pred := make([]float64, testX.Rows)
		model.PredictInto(testX, pred)
		var score float64
		if task == TaskRegression {
			score = -RMSE(pred, testY)
		} else {
			score = Accuracy(pred, testY)
		}
		res.Folds = append(res.Folds, score)
	}
	res.Score = Mean(res.Folds)
	return res, nil
}

// AutoMLResult is the outcome of a search: the refit best pipeline plus
// the full leaderboard (one TrialResult per candidate, best first).
type AutoMLResult struct {
	Best        *Pipeline
	BestTrial   TrialResult
	Leaderboard []TrialResult
}

// AutoML cross-validates every candidate over the featurized frame and
// refits the winner on all data, returning a deployable pipeline.
func AutoML(name string, feat *Featurizer, frame *Frame, y []float64,
	task Task, candidates []Candidate, k int, seed uint64) (*AutoMLResult, error) {

	if len(candidates) == 0 {
		candidates = DefaultCandidates(task)
	}
	if err := frame.Validate(); err != nil {
		return nil, err
	}
	if err := feat.Fit(frame); err != nil {
		return nil, err
	}
	x, err := feat.Transform(frame)
	if err != nil {
		return nil, err
	}
	res := &AutoMLResult{}
	for _, c := range candidates {
		trial, err := CrossValidate(c, task, x, y, k, seed)
		if err != nil {
			return nil, err
		}
		res.Leaderboard = append(res.Leaderboard, trial)
	}
	sort.SliceStable(res.Leaderboard, func(i, j int) bool {
		return res.Leaderboard[i].Score > res.Leaderboard[j].Score
	})
	res.BestTrial = res.Leaderboard[0]
	var winner Candidate
	for _, c := range candidates {
		if c.Name == res.BestTrial.Name {
			winner = c
		}
	}
	best := winner.New()
	if err := best.Fit(x, y); err != nil {
		return nil, err
	}
	res.Best = NewPipeline(name, feat, best)
	return res, nil
}
