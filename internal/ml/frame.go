package ml

import "fmt"

// ColKind classifies a Frame column for featurization purposes.
type ColKind int

// Column kinds understood by the featurizers.
const (
	KindNumeric ColKind = iota
	KindCategorical
	KindText
)

func (k ColKind) String() string {
	switch k {
	case KindNumeric:
		return "numeric"
	case KindCategorical:
		return "categorical"
	case KindText:
		return "text"
	default:
		return fmt.Sprintf("ColKind(%d)", int(k))
	}
}

// FrameCol is a single named, typed column. Numeric columns use Nums;
// categorical and text columns use Strs.
type FrameCol struct {
	Name string
	Kind ColKind
	Nums []float64
	Strs []string
}

// Len returns the number of rows in the column.
func (c *FrameCol) Len() int {
	if c.Kind == KindNumeric {
		return len(c.Nums)
	}
	return len(c.Strs)
}

// Frame is a small columnar data frame: the training-side data abstraction
// (the paper's observation is that most pipelines ultimately funnel data into
// a structured DataFrame; this is ours).
type Frame struct {
	Cols []FrameCol
}

// NewFrame returns an empty frame.
func NewFrame() *Frame { return &Frame{} }

// AddNumeric appends a numeric column.
func (f *Frame) AddNumeric(name string, vals []float64) *Frame {
	f.Cols = append(f.Cols, FrameCol{Name: name, Kind: KindNumeric, Nums: vals})
	return f
}

// AddCategorical appends a categorical (string) column.
func (f *Frame) AddCategorical(name string, vals []string) *Frame {
	f.Cols = append(f.Cols, FrameCol{Name: name, Kind: KindCategorical, Strs: vals})
	return f
}

// AddText appends a free-text column.
func (f *Frame) AddText(name string, vals []string) *Frame {
	f.Cols = append(f.Cols, FrameCol{Name: name, Kind: KindText, Strs: vals})
	return f
}

// NumRows returns the row count (0 for an empty frame).
func (f *Frame) NumRows() int {
	if len(f.Cols) == 0 {
		return 0
	}
	return f.Cols[0].Len()
}

// Col returns the column with the given name, or nil if absent.
func (f *Frame) Col(name string) *FrameCol {
	for i := range f.Cols {
		if f.Cols[i].Name == name {
			return &f.Cols[i]
		}
	}
	return nil
}

// Validate checks that all columns have equal length.
func (f *Frame) Validate() error {
	n := f.NumRows()
	for i := range f.Cols {
		if l := f.Cols[i].Len(); l != n {
			return fmt.Errorf("ml: column %q has %d rows, want %d", f.Cols[i].Name, l, n)
		}
	}
	return nil
}

// Slice returns a shallow frame containing rows [lo, hi).
func (f *Frame) Slice(lo, hi int) *Frame {
	out := &Frame{Cols: make([]FrameCol, len(f.Cols))}
	for i := range f.Cols {
		c := f.Cols[i]
		nc := FrameCol{Name: c.Name, Kind: c.Kind}
		if c.Kind == KindNumeric {
			nc.Nums = c.Nums[lo:hi]
		} else {
			nc.Strs = c.Strs[lo:hi]
		}
		out.Cols[i] = nc
	}
	return out
}
