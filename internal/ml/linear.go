package ml

import (
	"errors"
	"fmt"
)

// Predictor is a trained (or trainable) model over dense feature matrices.
// PredictInto is the batch path; PredictRow the interpreted row path used by
// the scikit-learn-style Pipeline baseline.
type Predictor interface {
	Fit(x *Matrix, y []float64) error
	PredictInto(x *Matrix, out []float64)
	PredictRow(row []float64) float64
}

// LinearRegression fits y = w·x + b by ridge-regularized least squares
// (normal equations solved with Cholesky).
type LinearRegression struct {
	// L2 is the ridge penalty; 0 means ordinary least squares. A tiny
	// default is applied when the Gram matrix is singular.
	L2 float64

	Weights   []float64
	Intercept float64
}

// Fit estimates weights and intercept from x, y.
func (lr *LinearRegression) Fit(x *Matrix, y []float64) error {
	if x.Rows != len(y) {
		return fmt.Errorf("ml: LinearRegression.Fit: %d rows but %d targets", x.Rows, len(y))
	}
	if x.Rows == 0 {
		return errors.New("ml: LinearRegression.Fit: empty training set")
	}
	// Augment with a bias column by folding the intercept into the system:
	// solve over centered data, then recover the intercept from the means.
	d := x.Cols
	colMean := make([]float64, d)
	for i := 0; i < x.Rows; i++ {
		row := x.Row(i)
		for j, v := range row {
			colMean[j] += v
		}
	}
	for j := range colMean {
		colMean[j] /= float64(x.Rows)
	}
	yMean := Mean(y)

	// Gram matrix of centered X plus ridge term.
	g := NewMatrix(d, d)
	rhs := make([]float64, d)
	for i := 0; i < x.Rows; i++ {
		row := x.Row(i)
		dy := y[i] - yMean
		for a := 0; a < d; a++ {
			va := row[a] - colMean[a]
			if va == 0 {
				continue
			}
			grow := g.Row(a)
			for b := 0; b < d; b++ {
				grow[b] += va * (row[b] - colMean[b])
			}
			rhs[a] += va * dy
		}
	}
	l2 := lr.L2
	for attempt := 0; ; attempt++ {
		sys := g.Clone()
		for j := 0; j < d; j++ {
			sys.Set(j, j, sys.At(j, j)+l2)
		}
		w, err := SolveSPD(sys, rhs)
		if err == nil {
			lr.Weights = w
			lr.Intercept = yMean - Dot(w, colMean)
			return nil
		}
		if attempt >= 8 {
			return fmt.Errorf("ml: LinearRegression.Fit: %w", err)
		}
		if l2 == 0 {
			l2 = 1e-8
		} else {
			l2 *= 100
		}
	}
}

// PredictInto writes one prediction per row of x into out.
func (lr *LinearRegression) PredictInto(x *Matrix, out []float64) {
	for i := 0; i < x.Rows; i++ {
		out[i] = lr.PredictRow(x.Row(i))
	}
}

// PredictRow scores a single feature vector.
func (lr *LinearRegression) PredictRow(row []float64) float64 {
	return Dot(lr.Weights, row) + lr.Intercept
}

// LogisticRegression is a binary classifier trained with full-batch gradient
// descent on the regularized log loss. Predictions are probabilities of the
// positive class.
type LogisticRegression struct {
	// LearningRate defaults to 0.1, Epochs to 200, L2 to 1e-4 when zero.
	LearningRate float64
	Epochs       int
	L2           float64

	Weights   []float64
	Intercept float64
}

func (lr *LogisticRegression) defaults() (rate float64, epochs int, l2 float64) {
	rate, epochs, l2 = lr.LearningRate, lr.Epochs, lr.L2
	if rate == 0 {
		rate = 0.1
	}
	if epochs == 0 {
		epochs = 200
	}
	if l2 == 0 {
		l2 = 1e-4
	}
	return rate, epochs, l2
}

// Fit trains on x with binary labels y (values 0 or 1).
func (lr *LogisticRegression) Fit(x *Matrix, y []float64) error {
	if x.Rows != len(y) {
		return fmt.Errorf("ml: LogisticRegression.Fit: %d rows but %d targets", x.Rows, len(y))
	}
	if x.Rows == 0 {
		return errors.New("ml: LogisticRegression.Fit: empty training set")
	}
	for _, v := range y {
		if v != 0 && v != 1 {
			return fmt.Errorf("ml: LogisticRegression.Fit: label %v is not binary", v)
		}
	}
	rate, epochs, l2 := lr.defaults()
	d := x.Cols
	w := make([]float64, d)
	var b float64
	grad := make([]float64, d)
	n := float64(x.Rows)
	for e := 0; e < epochs; e++ {
		for j := range grad {
			grad[j] = 0
		}
		var gradB float64
		for i := 0; i < x.Rows; i++ {
			row := x.Row(i)
			p := Sigmoid(Dot(w, row) + b)
			diff := p - y[i]
			for j, v := range row {
				grad[j] += diff * v
			}
			gradB += diff
		}
		for j := range w {
			w[j] -= rate * (grad[j]/n + l2*w[j])
		}
		b -= rate * gradB / n
	}
	lr.Weights, lr.Intercept = w, b
	return nil
}

// PredictInto writes positive-class probabilities into out.
func (lr *LogisticRegression) PredictInto(x *Matrix, out []float64) {
	for i := 0; i < x.Rows; i++ {
		out[i] = lr.PredictRow(x.Row(i))
	}
}

// PredictRow returns the positive-class probability for one feature vector.
func (lr *LogisticRegression) PredictRow(row []float64) float64 {
	return Sigmoid(Dot(lr.Weights, row) + lr.Intercept)
}
