package ml

import (
	"errors"
	"fmt"
	"sort"
)

// TreeNode is one node of a CART tree in flattened array form. Leaves have
// Left == -1 and carry Value; internal nodes route rows with
// feature < Threshold to Left and the rest to Right.
type TreeNode struct {
	Feature   int32
	Threshold float64
	Left      int32 // -1 for leaves
	Right     int32
	Value     float64
}

// IsLeaf reports whether the node is a leaf.
func (n *TreeNode) IsLeaf() bool { return n.Left < 0 }

// DecisionTree is a CART regression tree (variance-reduction splits). It is
// the building block of GradientBoosting and can be used standalone; for
// binary classification, fit it on 0/1 labels and read the leaf value as a
// probability estimate.
type DecisionTree struct {
	// MaxDepth defaults to 6, MinLeaf (minimum samples per leaf) to 1,
	// MaxFeatures to all features when zero.
	MaxDepth int
	MinLeaf  int

	Nodes []TreeNode
}

type treeBuilder struct {
	x        *Matrix
	y        []float64
	maxDepth int
	minLeaf  int
	nodes    []TreeNode
}

// Fit grows the tree on x, y.
func (t *DecisionTree) Fit(x *Matrix, y []float64) error {
	if x.Rows != len(y) {
		return fmt.Errorf("ml: DecisionTree.Fit: %d rows but %d targets", x.Rows, len(y))
	}
	if x.Rows == 0 {
		return errors.New("ml: DecisionTree.Fit: empty training set")
	}
	maxDepth := t.MaxDepth
	if maxDepth == 0 {
		maxDepth = 6
	}
	minLeaf := t.MinLeaf
	if minLeaf == 0 {
		minLeaf = 1
	}
	b := &treeBuilder{x: x, y: y, maxDepth: maxDepth, minLeaf: minLeaf}
	idx := make([]int, x.Rows)
	for i := range idx {
		idx[i] = i
	}
	b.build(idx, 0)
	t.Nodes = b.nodes
	return nil
}

// build grows a subtree over the rows in idx and returns its node index.
func (b *treeBuilder) build(idx []int, depth int) int32 {
	node := int32(len(b.nodes))
	b.nodes = append(b.nodes, TreeNode{Left: -1, Right: -1})

	var sum float64
	for _, i := range idx {
		sum += b.y[i]
	}
	mean := sum / float64(len(idx))
	b.nodes[node].Value = mean

	if depth >= b.maxDepth || len(idx) < 2*b.minLeaf {
		return node
	}
	feat, thr, ok := b.bestSplit(idx)
	if !ok {
		return node
	}
	// Partition idx in place.
	lo, hi := 0, len(idx)
	for lo < hi {
		if b.x.At(idx[lo], feat) < thr {
			lo++
		} else {
			hi--
			idx[lo], idx[hi] = idx[hi], idx[lo]
		}
	}
	if lo < b.minLeaf || len(idx)-lo < b.minLeaf {
		return node
	}
	left := b.build(idx[:lo], depth+1)
	right := b.build(idx[lo:], depth+1)
	b.nodes[node].Feature = int32(feat)
	b.nodes[node].Threshold = thr
	b.nodes[node].Left = left
	b.nodes[node].Right = right
	return node
}

// bestSplit finds the (feature, threshold) pair maximizing variance
// reduction via a sorted sweep per feature.
func (b *treeBuilder) bestSplit(idx []int) (feature int, threshold float64, ok bool) {
	n := len(idx)
	var totalSum, totalSq float64
	for _, i := range idx {
		totalSum += b.y[i]
		totalSq += b.y[i] * b.y[i]
	}
	parentSSE := totalSq - totalSum*totalSum/float64(n)
	bestGain := 1e-12

	order := make([]int, n)
	for f := 0; f < b.x.Cols; f++ {
		copy(order, idx)
		sort.Slice(order, func(a, c int) bool {
			return b.x.At(order[a], f) < b.x.At(order[c], f)
		})
		var leftSum, leftSq float64
		for k := 0; k < n-1; k++ {
			yv := b.y[order[k]]
			leftSum += yv
			leftSq += yv * yv
			nl := k + 1
			if nl < b.minLeaf || n-nl < b.minLeaf {
				continue
			}
			cur, next := b.x.At(order[k], f), b.x.At(order[k+1], f)
			if cur == next {
				continue
			}
			rightSum := totalSum - leftSum
			rightSq := totalSq - leftSq
			sse := (leftSq - leftSum*leftSum/float64(nl)) +
				(rightSq - rightSum*rightSum/float64(n-nl))
			gain := parentSSE - sse
			if gain > bestGain {
				bestGain = gain
				feature = f
				threshold = (cur + next) / 2
				ok = true
			}
		}
	}
	return feature, threshold, ok
}

// PredictInto writes one prediction per row of x into out. The tree walk is
// inlined batch-style — the node array and matrix data stay in registers
// across the whole batch instead of paying a PredictRow call per row — and
// produces bit-identical results to the per-row walk.
func (t *DecisionTree) PredictInto(x *Matrix, out []float64) {
	nodes := t.Nodes
	data, cols := x.Data, x.Cols
	for i := 0; i < x.Rows; i++ {
		base := i * cols
		n := int32(0)
		for {
			nd := &nodes[n]
			if nd.Left < 0 {
				out[i] = nd.Value
				break
			}
			if data[base+int(nd.Feature)] < nd.Threshold {
				n = nd.Left
			} else {
				n = nd.Right
			}
		}
	}
}

// PredictColumns scores a column-major batch — cols[f][i] is feature f of
// row i, the layout the engine's columnar batches arrive in — without
// materializing a row-major Matrix. len(out) rows are scored.
func (t *DecisionTree) PredictColumns(cols [][]float64, out []float64) {
	nodes := t.Nodes
	for i := range out {
		n := int32(0)
		for {
			nd := &nodes[n]
			if nd.Left < 0 {
				out[i] = nd.Value
				break
			}
			if cols[nd.Feature][i] < nd.Threshold {
				n = nd.Left
			} else {
				n = nd.Right
			}
		}
	}
}

// PredictRow routes a single feature vector to its leaf value.
func (t *DecisionTree) PredictRow(row []float64) float64 {
	n := int32(0)
	for {
		node := &t.Nodes[n]
		if node.IsLeaf() {
			return node.Value
		}
		if row[node.Feature] < node.Threshold {
			n = node.Left
		} else {
			n = node.Right
		}
	}
}

// Depth returns the maximum depth of the fitted tree (0 for a single leaf).
func (t *DecisionTree) Depth() int {
	var walk func(n int32) int
	walk = func(n int32) int {
		node := &t.Nodes[n]
		if node.IsLeaf() {
			return 0
		}
		l, r := walk(node.Left), walk(node.Right)
		if l > r {
			return l + 1
		}
		return r + 1
	}
	if len(t.Nodes) == 0 {
		return 0
	}
	return walk(0)
}

// UsedFeatures returns the sorted set of feature indices the tree actually
// tests. The cross-optimizer uses this for model-sparsity input pruning.
func (t *DecisionTree) UsedFeatures() []int {
	seen := map[int]bool{}
	for i := range t.Nodes {
		if !t.Nodes[i].IsLeaf() {
			seen[int(t.Nodes[i].Feature)] = true
		}
	}
	out := make([]int, 0, len(seen))
	for f := range seen {
		out = append(out, f)
	}
	sort.Ints(out)
	return out
}
