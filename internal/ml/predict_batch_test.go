package ml

import (
	"math/rand"
	"testing"
)

// synthMatrix builds a deterministic random feature matrix.
func synthMatrix(rows, cols int, seed int64) *Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

// columnsOf transposes a row-major matrix into column-major slices.
func columnsOf(m *Matrix) [][]float64 {
	cols := make([][]float64, m.Cols)
	for f := range cols {
		cols[f] = make([]float64, m.Rows)
		for i := 0; i < m.Rows; i++ {
			cols[f][i] = m.At(i, f)
		}
	}
	return cols
}

func synthLabels(x *Matrix, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	y := make([]float64, x.Rows)
	for i := range y {
		if x.At(i, 0)+0.5*x.At(i, 1)+0.1*rng.NormFloat64() > 0 {
			y[i] = 1
		}
	}
	return y
}

// TestTreeBatchRowEquivalence pins the vectorized batch walks (row-major,
// column-major) to the scalar PredictRow walk bit for bit.
func TestTreeBatchRowEquivalence(t *testing.T) {
	x := synthMatrix(500, 6, 1)
	y := synthLabels(x, 2)

	tree := &DecisionTree{MaxDepth: 7}
	if err := tree.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	xt := synthMatrix(333, 6, 3)
	cols := columnsOf(xt)

	batch := make([]float64, xt.Rows)
	tree.PredictInto(xt, batch)
	byCols := make([]float64, xt.Rows)
	tree.PredictColumns(cols, byCols)
	for i := 0; i < xt.Rows; i++ {
		want := tree.PredictRow(xt.Row(i))
		if batch[i] != want {
			t.Fatalf("row %d: PredictInto %v != PredictRow %v", i, batch[i], want)
		}
		if byCols[i] != want {
			t.Fatalf("row %d: PredictColumns %v != PredictRow %v", i, byCols[i], want)
		}
	}
}

// TestGBMBatchRowEquivalence does the same for the boosted ensemble, for
// both losses (raw scores and sigmoid-squashed probabilities).
func TestGBMBatchRowEquivalence(t *testing.T) {
	x := synthMatrix(400, 5, 4)
	y := synthLabels(x, 5)

	for _, loss := range []GBMLoss{LossSquared, LossLogistic} {
		g := &GradientBoosting{NTrees: 40, MaxDepth: 3, Loss: loss}
		if err := g.Fit(x, y); err != nil {
			t.Fatal(err)
		}
		xt := synthMatrix(257, 5, 6)
		cols := columnsOf(xt)

		batch := make([]float64, xt.Rows)
		g.PredictInto(xt, batch)
		byCols := make([]float64, xt.Rows)
		g.PredictColumns(cols, byCols)
		for i := 0; i < xt.Rows; i++ {
			want := g.PredictRow(xt.Row(i))
			if batch[i] != want {
				t.Fatalf("loss %d row %d: PredictInto %v != PredictRow %v", loss, i, batch[i], want)
			}
			if byCols[i] != want {
				t.Fatalf("loss %d row %d: PredictColumns %v != PredictRow %v", loss, i, byCols[i], want)
			}
		}
	}
}

// BenchmarkTreeEnsemblePredict compares per-row dispatch against the
// vectorized batch walk over a realistic GBM (benchguard-tracked).
func BenchmarkTreeEnsemblePredict(b *testing.B) {
	x := synthMatrix(2000, 8, 7)
	y := synthLabels(x, 8)
	g := &GradientBoosting{NTrees: 60, MaxDepth: 4, Loss: LossLogistic}
	if err := g.Fit(x, y); err != nil {
		b.Fatal(err)
	}
	xt := synthMatrix(4096, 8, 9)
	out := make([]float64, xt.Rows)

	b.Run("mode=row", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for r := 0; r < xt.Rows; r++ {
				out[r] = g.PredictRow(xt.Row(r))
			}
		}
	})
	b.Run("mode=batch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g.PredictInto(xt, out)
		}
	})
}
