package governance

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"
	"time"
)

// AuditEntry is one immutable audit record. Hash covers the entry's fields
// and the previous entry's hash, making the log tamper-evident: mutating or
// removing any historical entry breaks every subsequent hash.
type AuditEntry struct {
	Seq      int64
	At       time.Time
	User     string
	Action   string
	Object   string
	Detail   string
	Allowed  bool
	PrevHash string
	Hash     string
}

// AuditLog is an append-only, hash-chained log.
type AuditLog struct {
	mu      sync.RWMutex
	entries []AuditEntry
	sink    func(AuditEntry)
}

// NewAuditLog returns an empty log.
func NewAuditLog() *AuditLog { return &AuditLog{} }

func hashEntry(e *AuditEntry) string {
	h := sha256.New()
	fmt.Fprintf(h, "%d|%d|%s|%s|%s|%s|%t|%s",
		e.Seq, e.At.UnixNano(), e.User, e.Action, e.Object, e.Detail, e.Allowed, e.PrevHash)
	return hex.EncodeToString(h.Sum(nil))
}

// Record appends an entry and returns it.
func (l *AuditLog) Record(user, action, object, detail string, allowed bool) AuditEntry {
	l.mu.Lock()
	defer l.mu.Unlock()
	e := AuditEntry{
		Seq: int64(len(l.entries) + 1), At: time.Now(),
		User: user, Action: action, Object: object, Detail: detail, Allowed: allowed,
	}
	if len(l.entries) > 0 {
		e.PrevHash = l.entries[len(l.entries)-1].Hash
	}
	e.Hash = hashEntry(&e)
	l.entries = append(l.entries, e)
	if l.sink != nil {
		l.sink(e)
	}
	return e
}

// SetSink registers a function invoked (under the log lock, in append
// order) for every new entry — the durability layer's hook for persisting
// the chain as it grows.
func (l *AuditLog) SetSink(fn func(AuditEntry)) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.sink = fn
}

// Restore seeds an empty log with previously persisted entries after
// verifying the hash chain end to end — recovery must not resurrect a
// tampered log.
func (l *AuditLog) Restore(entries []AuditEntry) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.entries) != 0 {
		return fmt.Errorf("governance: Restore requires an empty audit log (%d entries present)", len(l.entries))
	}
	prev := ""
	for i := range entries {
		e := entries[i]
		if e.Seq != int64(i+1) {
			return fmt.Errorf("governance: restored audit entry %d has seq %d", i, e.Seq)
		}
		if e.PrevHash != prev || hashEntry(&e) != e.Hash {
			return fmt.Errorf("governance: restored audit chain broken at entry %d", i)
		}
		prev = e.Hash
	}
	l.entries = append([]AuditEntry(nil), entries...)
	return nil
}

// Entries returns a copy of the log.
func (l *AuditLog) Entries() []AuditEntry {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return append([]AuditEntry(nil), l.entries...)
}

// Len returns the entry count.
func (l *AuditLog) Len() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.entries)
}

// Verify walks the chain and returns the index of the first corrupted
// entry, or -1 if the log is intact.
func (l *AuditLog) Verify() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	prev := ""
	for i := range l.entries {
		e := l.entries[i]
		if e.PrevHash != prev {
			return i
		}
		if hashEntry(&e) != e.Hash {
			return i
		}
		prev = e.Hash
	}
	return -1
}

// tamper mutates an entry in place; exported only to the package tests via
// the _test file. It exists so the tamper-evidence property can be tested
// without reflection.
func (l *AuditLog) tamper(i int, detail string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.entries[i].Detail = detail
}
