package governance

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"
	"time"
)

// AuditEntry is one immutable audit record. Hash covers the entry's fields
// and the previous entry's hash, making the log tamper-evident: mutating or
// removing any historical entry breaks every subsequent hash.
type AuditEntry struct {
	Seq      int64
	At       time.Time
	User     string
	Action   string
	Object   string
	Detail   string
	Allowed  bool
	PrevHash string
	Hash     string
}

// AuditLog is an append-only, hash-chained log.
type AuditLog struct {
	mu      sync.RWMutex
	entries []AuditEntry
}

// NewAuditLog returns an empty log.
func NewAuditLog() *AuditLog { return &AuditLog{} }

func hashEntry(e *AuditEntry) string {
	h := sha256.New()
	fmt.Fprintf(h, "%d|%d|%s|%s|%s|%s|%t|%s",
		e.Seq, e.At.UnixNano(), e.User, e.Action, e.Object, e.Detail, e.Allowed, e.PrevHash)
	return hex.EncodeToString(h.Sum(nil))
}

// Record appends an entry and returns it.
func (l *AuditLog) Record(user, action, object, detail string, allowed bool) AuditEntry {
	l.mu.Lock()
	defer l.mu.Unlock()
	e := AuditEntry{
		Seq: int64(len(l.entries) + 1), At: time.Now(),
		User: user, Action: action, Object: object, Detail: detail, Allowed: allowed,
	}
	if len(l.entries) > 0 {
		e.PrevHash = l.entries[len(l.entries)-1].Hash
	}
	e.Hash = hashEntry(&e)
	l.entries = append(l.entries, e)
	return e
}

// Entries returns a copy of the log.
func (l *AuditLog) Entries() []AuditEntry {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return append([]AuditEntry(nil), l.entries...)
}

// Len returns the entry count.
func (l *AuditLog) Len() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.entries)
}

// Verify walks the chain and returns the index of the first corrupted
// entry, or -1 if the log is intact.
func (l *AuditLog) Verify() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	prev := ""
	for i := range l.entries {
		e := l.entries[i]
		if e.PrevHash != prev {
			return i
		}
		if hashEntry(&e) != e.Hash {
			return i
		}
		prev = e.Hash
	}
	return -1
}

// tamper mutates an entry in place; exported only to the package tests via
// the _test file. It exists so the tamper-evidence property can be tested
// without reflection.
func (l *AuditLog) tamper(i int, detail string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.entries[i].Detail = detail
}
