package governance

import (
	"testing"
	"testing/quick"
)

func TestAccessDenyByDefault(t *testing.T) {
	a := NewAccessController()
	if err := a.Check("alice", ActSelect, TableObject("t")); err == nil {
		t.Error("unknown user should be denied")
	}
	a.AssignRole("alice", "analyst")
	if err := a.Check("alice", ActSelect, TableObject("t")); err == nil {
		t.Error("role without grants should be denied")
	}
}

func TestAccessGrantRevoke(t *testing.T) {
	a := NewAccessController()
	a.Grant("analyst", ActSelect, TableObject("orders"))
	a.AssignRole("alice", "analyst")
	if err := a.Check("alice", ActSelect, TableObject("orders")); err != nil {
		t.Errorf("granted access denied: %v", err)
	}
	if err := a.Check("alice", ActInsert, TableObject("orders")); err == nil {
		t.Error("ungranted action should be denied")
	}
	if err := a.Check("alice", ActSelect, TableObject("other")); err == nil {
		t.Error("ungranted object should be denied")
	}
	a.Revoke("analyst", ActSelect, TableObject("orders"))
	if err := a.Check("alice", ActSelect, TableObject("orders")); err == nil {
		t.Error("revoked access should be denied")
	}
}

func TestAccessWildcardAndModels(t *testing.T) {
	a := NewAccessController()
	a.Grant("admin", ActScore, AllObjects)
	a.AssignRole("root", "admin")
	if err := a.Check("root", ActScore, ModelObject("churn")); err != nil {
		t.Errorf("wildcard denied: %v", err)
	}
	a.Grant("scorer", ActScore, ModelObject("churn"))
	a.AssignRole("svc", "scorer")
	if err := a.Check("svc", ActScore, ModelObject("churn")); err != nil {
		t.Errorf("model grant denied: %v", err)
	}
	if err := a.Check("svc", ActScore, ModelObject("fraud")); err == nil {
		t.Error("other model should be denied")
	}
}

func TestRemoveRole(t *testing.T) {
	a := NewAccessController()
	a.Grant("analyst", ActSelect, AllObjects)
	a.AssignRole("bob", "analyst")
	if err := a.Check("bob", ActSelect, TableObject("t")); err != nil {
		t.Fatal(err)
	}
	a.RemoveRole("bob", "analyst")
	if err := a.Check("bob", ActSelect, TableObject("t")); err == nil {
		t.Error("removed role should deny")
	}
	if got := len(a.RolesOf("bob")); got != 0 {
		t.Errorf("roles = %d", got)
	}
}

func TestPermissionErrorMessage(t *testing.T) {
	a := NewAccessController()
	err := a.Check("eve", ActDelete, TableObject("payroll"))
	pe, ok := err.(*PermissionError)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if pe.User != "eve" || pe.Act != ActDelete {
		t.Errorf("error fields: %+v", pe)
	}
}

// Property: revoking never widens access — any (user, action, object)
// denied before a revoke stays denied after.
func TestRevokeMonotonicProperty(t *testing.T) {
	f := func(grantBits uint16) bool {
		a := NewAccessController()
		acts := []Action{ActSelect, ActInsert, ActScore, ActDeploy}
		objs := []Object{TableObject("t"), ModelObject("m"), AllObjects}
		// Grant a subset.
		bit := 0
		for _, act := range acts {
			for _, obj := range objs {
				if grantBits&(1<<bit) != 0 {
					a.Grant("r", act, obj)
				}
				bit++
			}
		}
		a.AssignRole("u", "r")
		deniedBefore := map[int]bool{}
		idx := 0
		for _, act := range acts {
			for _, obj := range objs {
				if obj != AllObjects && a.Check("u", act, obj) != nil {
					deniedBefore[idx] = true
				}
				idx++
			}
		}
		// Revoke something.
		a.Revoke("r", acts[int(grantBits)%len(acts)], objs[int(grantBits)%len(objs)])
		idx = 0
		for _, act := range acts {
			for _, obj := range objs {
				if obj != AllObjects && deniedBefore[idx] && a.Check("u", act, obj) == nil {
					return false
				}
				idx++
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestAuditChain(t *testing.T) {
	l := NewAuditLog()
	l.Record("alice", "select", "table:orders", "q1", true)
	l.Record("bob", "insert", "table:orders", "q2", true)
	l.Record("eve", "denied", "table:payroll", "q3", false)
	if l.Len() != 3 {
		t.Fatalf("len = %d", l.Len())
	}
	if bad := l.Verify(); bad != -1 {
		t.Fatalf("fresh log verify failed at %d", bad)
	}
	entries := l.Entries()
	if entries[1].PrevHash != entries[0].Hash {
		t.Error("chain not linked")
	}
	if entries[0].Seq != 1 || entries[2].Seq != 3 {
		t.Error("sequence numbers wrong")
	}
}

func TestAuditTamperDetection(t *testing.T) {
	l := NewAuditLog()
	for i := 0; i < 10; i++ {
		l.Record("u", "a", "o", "detail", true)
	}
	l.tamper(4, "rewritten history")
	if bad := l.Verify(); bad != 4 {
		t.Errorf("tamper detected at %d, want 4", bad)
	}
}

// Property: the audit chain verifies if and only if untampered, for random
// entry counts and tamper positions.
func TestAuditChainProperty(t *testing.T) {
	f := func(n, pos uint8) bool {
		count := int(n)%20 + 2
		l := NewAuditLog()
		for i := 0; i < count; i++ {
			l.Record("u", "act", "obj", "d", i%2 == 0)
		}
		if l.Verify() != -1 {
			return false
		}
		p := int(pos) % count
		l.tamper(p, "x")
		return l.Verify() == p
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
