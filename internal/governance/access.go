// Package governance provides the enterprise-grade controls the paper says
// the DB community must extend to models: role-based access control over
// tables AND deployed models ("access to a deployed model must be
// controlled, similar to how access to data or a view is controlled in a
// DBMS"), and a hash-chained, tamper-evident audit log so storage and
// scoring are "secured and auditably tracked".
package governance

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Action is a controllable operation.
type Action string

// Actions subject to access control.
const (
	ActSelect Action = "select"
	ActInsert Action = "insert"
	ActUpdate Action = "update"
	ActDelete Action = "delete"
	ActScore  Action = "score"  // run inference with a model
	ActDeploy Action = "deploy" // register/promote a model
	ActCreate Action = "create" // create tables
)

// Object identifies a protected object: "table:<name>", "model:<name>", or
// "*" for everything.
type Object string

// TableObject names a table object.
func TableObject(name string) Object { return Object("table:" + name) }

// ColumnObject names a single column for fine-grained grants; a user with
// only column grants may read exactly those columns of the table.
func ColumnObject(table, column string) Object { return Object("column:" + table + "." + column) }

// ModelObject names a model object.
func ModelObject(name string) Object { return Object("model:" + name) }

// AllObjects matches every object.
const AllObjects Object = "*"

// perm is one (action, object) grant.
type perm struct {
	act Action
	obj Object
}

// AccessController is a deny-by-default RBAC store.
type AccessController struct {
	mu    sync.RWMutex
	roles map[string]map[perm]bool // role -> grants
	users map[string]map[string]bool
}

// NewAccessController returns an empty controller (everything denied).
func NewAccessController() *AccessController {
	return &AccessController{
		roles: map[string]map[perm]bool{},
		users: map[string]map[string]bool{},
	}
}

// Grant adds (action, object) to a role, creating the role if needed.
func (a *AccessController) Grant(role string, act Action, obj Object) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.roles[role] == nil {
		a.roles[role] = map[perm]bool{}
	}
	a.roles[role][perm{act, obj}] = true
}

// Revoke removes a grant from a role.
func (a *AccessController) Revoke(role string, act Action, obj Object) {
	a.mu.Lock()
	defer a.mu.Unlock()
	delete(a.roles[role], perm{act, obj})
}

// AssignRole gives a user a role.
func (a *AccessController) AssignRole(user, role string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.users[user] == nil {
		a.users[user] = map[string]bool{}
	}
	a.users[user][role] = true
}

// RemoveRole revokes a user's role membership.
func (a *AccessController) RemoveRole(user, role string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	delete(a.users[user], role)
}

// PermissionError reports a denied access with enough context to audit.
type PermissionError struct {
	User string
	Act  Action
	Obj  Object
}

func (e *PermissionError) Error() string {
	return fmt.Sprintf("governance: user %q denied %s on %s", e.User, e.Act, e.Obj)
}

// Check returns nil if user may perform act on obj; otherwise a
// *PermissionError. Deny by default.
func (a *AccessController) Check(user string, act Action, obj Object) error {
	a.mu.RLock()
	defer a.mu.RUnlock()
	for role := range a.users[user] {
		grants := a.roles[role]
		if grants[perm{act, obj}] || grants[perm{act, AllObjects}] {
			return nil
		}
	}
	return &PermissionError{User: user, Act: act, Obj: obj}
}

// RolesOf lists a user's roles (sorted).
func (a *AccessController) RolesOf(user string) []string {
	a.mu.RLock()
	defer a.mu.RUnlock()
	var out []string
	for r := range a.users[user] {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

// Grants lists a role's grants as "action object" strings (sorted).
func (a *AccessController) Grants(role string) []string {
	a.mu.RLock()
	defer a.mu.RUnlock()
	var out []string
	for p := range a.roles[role] {
		out = append(out, string(p.act)+" "+string(p.obj))
	}
	sort.Strings(out)
	return out
}

// String summarizes the controller for debugging.
func (a *AccessController) String() string {
	a.mu.RLock()
	defer a.mu.RUnlock()
	var b strings.Builder
	fmt.Fprintf(&b, "rbac{roles=%d users=%d}", len(a.roles), len(a.users))
	return b.String()
}
