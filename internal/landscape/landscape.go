// Package landscape reproduces the competitive-landscape study (Figure 3):
// a feature-support matrix of ML platforms across Training, Serving and
// Data Management capabilities. The paper shows the matrix as colored
// cells; the values here are a curated approximation of the published
// figure (the paper itself calls its grading "ostensibly a subjective
// judgement"), encoded so the two trends the paper derives are queryable:
// (1) mature proprietary stacks have stronger data-management support, and
// (2) no third-party offering is complete.
package landscape

import (
	"fmt"
	"sort"
	"strings"
)

// Support grades one system on one feature.
type Support int

// Support levels, ordered.
const (
	Unknown Support = iota
	None
	OK
	Good
)

func (s Support) String() string {
	switch s {
	case Good:
		return "good"
	case OK:
		return "ok"
	case None:
		return "none"
	default:
		return "?"
	}
}

// glyph renders a compact cell.
func (s Support) glyph() string {
	switch s {
	case Good:
		return "●"
	case OK:
		return "◐"
	case None:
		return "○"
	default:
		return "·"
	}
}

// Area groups features.
type Area string

// Feature areas.
const (
	AreaTraining Area = "Training"
	AreaServing  Area = "Serving"
	AreaDataMgmt Area = "Data Management"
)

// Feature is one graded capability.
type Feature struct {
	Name string
	Area Area
}

// Features lists the Figure-3 rows in order.
var Features = []Feature{
	{"Experiment Tracking", AreaTraining},
	{"Managed Notebooks", AreaTraining},
	{"Pipelines / Projects", AreaTraining},
	{"Multi-Framework", AreaTraining},
	{"Proprietary Algos", AreaTraining},
	{"Distributed Training", AreaTraining},
	{"AutoML", AreaTraining},
	{"Batch prediction", AreaServing},
	{"On-prem deployment", AreaServing},
	{"Model Monitoring", AreaServing},
	{"Model Validation", AreaServing},
	{"Data Provenance", AreaDataMgmt},
	{"Data testing", AreaDataMgmt},
	{"Feature Store", AreaDataMgmt},
	{"Featurization DSL", AreaDataMgmt},
	{"Labelling", AreaDataMgmt},
	{"In-DB ML", AreaDataMgmt},
}

// System is one graded platform.
type System struct {
	Name        string
	Proprietary bool // internal "unicorn" infrastructure
	Cloud       bool // public cloud service
	Grades      map[string]Support
}

// Systems is the Figure-3 column set with curated grades.
var Systems = []System{
	{
		Name: "Bing (internal)", Proprietary: true,
		Grades: grades(`Experiment Tracking=good Managed Notebooks=ok Pipelines / Projects=good
			Multi-Framework=ok Proprietary Algos=good Distributed Training=good AutoML=ok
			Batch prediction=good On-prem deployment=none Model Monitoring=good Model Validation=good
			Data Provenance=good Data testing=good Feature Store=good Featurization DSL=good
			Labelling=good In-DB ML=ok`),
	},
	{
		Name: "Uber Michelangelo", Proprietary: true,
		Grades: grades(`Experiment Tracking=good Managed Notebooks=ok Pipelines / Projects=good
			Multi-Framework=ok Proprietary Algos=good Distributed Training=good AutoML=ok
			Batch prediction=good On-prem deployment=none Model Monitoring=good Model Validation=good
			Data Provenance=good Data testing=ok Feature Store=good Featurization DSL=good
			Labelling=none In-DB ML=none`),
	},
	{
		Name: "LinkedIn ProML", Proprietary: true,
		Grades: grades(`Experiment Tracking=good Managed Notebooks=good Pipelines / Projects=good
			Multi-Framework=ok Proprietary Algos=good Distributed Training=good AutoML=ok
			Batch prediction=good On-prem deployment=none Model Monitoring=ok Model Validation=good
			Data Provenance=good Data testing=ok Feature Store=good Featurization DSL=good
			Labelling=none In-DB ML=none`),
	},
	{
		Name: "Azure ML", Cloud: true,
		Grades: grades(`Experiment Tracking=good Managed Notebooks=good Pipelines / Projects=good
			Multi-Framework=good Proprietary Algos=ok Distributed Training=good AutoML=good
			Batch prediction=good On-prem deployment=ok Model Monitoring=ok Model Validation=none
			Data Provenance=ok Data testing=none Feature Store=none Featurization DSL=ok
			Labelling=good In-DB ML=ok`),
	},
	{
		Name: "AWS SageMaker", Cloud: true,
		Grades: grades(`Experiment Tracking=ok Managed Notebooks=good Pipelines / Projects=ok
			Multi-Framework=good Proprietary Algos=good Distributed Training=good AutoML=ok
			Batch prediction=good On-prem deployment=none Model Monitoring=ok Model Validation=none
			Data Provenance=none Data testing=none Feature Store=none Featurization DSL=none
			Labelling=good In-DB ML=none`),
	},
	{
		Name: "Google Cloud AI", Cloud: true,
		Grades: grades(`Experiment Tracking=ok Managed Notebooks=good Pipelines / Projects=ok
			Multi-Framework=ok Proprietary Algos=good Distributed Training=good AutoML=good
			Batch prediction=good On-prem deployment=none Model Monitoring=ok Model Validation=none
			Data Provenance=none Data testing=none Feature Store=none Featurization DSL=none
			Labelling=good In-DB ML=ok`),
	},
	{
		Name: "MLflow",
		Grades: grades(`Experiment Tracking=good Managed Notebooks=none Pipelines / Projects=good
			Multi-Framework=good Proprietary Algos=none Distributed Training=none AutoML=none
			Batch prediction=ok On-prem deployment=good Model Monitoring=none Model Validation=none
			Data Provenance=ok Data testing=none Feature Store=none Featurization DSL=none
			Labelling=none In-DB ML=none`),
	},
	{
		Name: "Kubeflow",
		Grades: grades(`Experiment Tracking=ok Managed Notebooks=good Pipelines / Projects=good
			Multi-Framework=good Proprietary Algos=none Distributed Training=good AutoML=ok
			Batch prediction=ok On-prem deployment=good Model Monitoring=none Model Validation=none
			Data Provenance=ok Data testing=none Feature Store=none Featurization DSL=none
			Labelling=none In-DB ML=none`),
	},
	{
		Name: "TFX",
		Grades: grades(`Experiment Tracking=ok Managed Notebooks=none Pipelines / Projects=good
			Multi-Framework=none Proprietary Algos=none Distributed Training=good AutoML=none
			Batch prediction=good On-prem deployment=good Model Monitoring=ok Model Validation=good
			Data Provenance=good Data testing=good Feature Store=none Featurization DSL=good
			Labelling=none In-DB ML=none`),
	},
}

func grades(spec string) map[string]Support {
	out := map[string]Support{}
	// Entries are "Feature Name=level" separated by whitespace; feature
	// names may contain spaces, so split on '=' boundaries.
	fields := strings.Fields(spec)
	var nameParts []string
	for _, f := range fields {
		if i := strings.IndexByte(f, '='); i >= 0 {
			nameParts = append(nameParts, f[:i])
			name := strings.Join(nameParts, " ")
			nameParts = nil
			var s Support
			switch f[i+1:] {
			case "good":
				s = Good
			case "ok":
				s = OK
			case "none":
				s = None
			default:
				s = Unknown
			}
			out[name] = s
		} else {
			nameParts = append(nameParts, f)
		}
	}
	return out
}

// Grade looks up a system's support for a feature.
func (s *System) Grade(feature string) Support { return s.Grades[feature] }

// AreaScore averages a system's grades over one area (Good=2, OK=1,
// None/Unknown=0), normalized to [0, 1].
func (s *System) AreaScore(area Area) float64 {
	var sum, n float64
	for _, f := range Features {
		if f.Area != area {
			continue
		}
		n++
		switch s.Grades[f.Name] {
		case Good:
			sum += 2
		case OK:
			sum++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / (2 * n)
}

// Findings computes the two trends the paper reports from the matrix.
type Findings struct {
	// ProprietaryDataMgmt and ThirdPartyDataMgmt are the average
	// data-management area scores of the two groups.
	ProprietaryDataMgmt float64
	ThirdPartyDataMgmt  float64
	// MaxCoverage is the best full-matrix coverage of any non-proprietary
	// system (fraction of features at Good).
	MaxCoverage float64
	BestSystem  string
}

// Analyze derives the findings.
func Analyze() Findings {
	var f Findings
	var pSum, pN, tSum, tN float64
	for i := range Systems {
		s := &Systems[i]
		dm := s.AreaScore(AreaDataMgmt)
		if s.Proprietary {
			pSum += dm
			pN++
		} else {
			tSum += dm
			tN++
			good := 0
			for _, feat := range Features {
				if s.Grades[feat.Name] == Good {
					good++
				}
			}
			cov := float64(good) / float64(len(Features))
			if cov > f.MaxCoverage {
				f.MaxCoverage = cov
				f.BestSystem = s.Name
			}
		}
	}
	f.ProprietaryDataMgmt = pSum / pN
	f.ThirdPartyDataMgmt = tSum / tN
	return f
}

// Render prints the matrix in Figure-3 layout (features as rows grouped by
// area, systems as columns).
func Render() string {
	var b strings.Builder
	nameW := 0
	for _, f := range Features {
		if len(f.Name) > nameW {
			nameW = len(f.Name)
		}
	}
	fmt.Fprintf(&b, "%-*s", nameW+2, "")
	for _, s := range Systems {
		fmt.Fprintf(&b, "%-4s", initials(s.Name))
	}
	b.WriteString("\n")
	lastArea := Area("")
	for _, f := range Features {
		if f.Area != lastArea {
			fmt.Fprintf(&b, "%s\n", f.Area)
			lastArea = f.Area
		}
		fmt.Fprintf(&b, "  %-*s", nameW, f.Name)
		for i := range Systems {
			fmt.Fprintf(&b, " %s  ", Systems[i].Grades[f.Name].glyph())
		}
		b.WriteString("\n")
	}
	b.WriteString("● good   ◐ ok   ○ none   · unknown\ncolumns: ")
	var cols []string
	for _, s := range Systems {
		cols = append(cols, initials(s.Name)+"="+s.Name)
	}
	b.WriteString(strings.Join(cols, ", "))
	b.WriteString("\n")
	return b.String()
}

func initials(name string) string {
	var out []byte
	for _, w := range strings.Fields(name) {
		c := w[0]
		if c >= 'a' && c <= 'z' {
			c -= 32
		}
		if c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' {
			out = append(out, c)
		}
	}
	if len(out) > 3 {
		out = out[:3]
	}
	return string(out)
}

// SystemsSupporting lists systems with at least the given level on a
// feature, sorted by name.
func SystemsSupporting(feature string, atLeast Support) []string {
	var out []string
	for i := range Systems {
		if Systems[i].Grades[feature] >= atLeast {
			out = append(out, Systems[i].Name)
		}
	}
	sort.Strings(out)
	return out
}
