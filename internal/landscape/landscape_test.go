package landscape

import (
	"strings"
	"testing"
)

func TestMatrixComplete(t *testing.T) {
	// Every system grades every feature (no accidental holes).
	for _, s := range Systems {
		for _, f := range Features {
			if _, ok := s.Grades[f.Name]; !ok {
				t.Errorf("system %q missing grade for %q", s.Name, f.Name)
			}
		}
		if len(s.Grades) != len(Features) {
			t.Errorf("system %q has %d grades, want %d (stray feature name?)",
				s.Name, len(s.Grades), len(Features))
		}
	}
}

func TestFigure3Shape(t *testing.T) {
	if len(Systems) != 9 {
		t.Errorf("systems = %d, want 9", len(Systems))
	}
	if len(Features) != 17 {
		t.Errorf("features = %d, want 17", len(Features))
	}
	areas := map[Area]int{}
	for _, f := range Features {
		areas[f.Area]++
	}
	if areas[AreaTraining] != 7 || areas[AreaServing] != 4 || areas[AreaDataMgmt] != 6 {
		t.Errorf("area sizes = %v", areas)
	}
}

func TestPaperTrends(t *testing.T) {
	f := Analyze()
	// Trend 1: "mature proprietary solutions have stronger support for
	// data management".
	if f.ProprietaryDataMgmt <= f.ThirdPartyDataMgmt {
		t.Errorf("proprietary data-mgmt score (%.2f) should exceed third-party (%.2f)",
			f.ProprietaryDataMgmt, f.ThirdPartyDataMgmt)
	}
	// Trend 2: "providing complete and usable third-party solutions in
	// this space is non-trivial" — nobody outside the unicorns covers
	// even 2/3 of the matrix at Good.
	if f.MaxCoverage >= 0.67 {
		t.Errorf("best third-party coverage = %.2f (%s); matrix no longer supports the paper's trend",
			f.MaxCoverage, f.BestSystem)
	}
}

func TestAreaScoreBounds(t *testing.T) {
	for _, s := range Systems {
		for _, a := range []Area{AreaTraining, AreaServing, AreaDataMgmt} {
			sc := s.AreaScore(a)
			if sc < 0 || sc > 1 {
				t.Errorf("%s %s score = %v", s.Name, a, sc)
			}
		}
	}
}

func TestRender(t *testing.T) {
	out := Render()
	for _, want := range []string{"Training", "Serving", "Data Management", "In-DB ML", "good"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
	if len(strings.Split(out, "\n")) < len(Features)+3 {
		t.Error("render too short")
	}
}

func TestSystemsSupporting(t *testing.T) {
	indb := SystemsSupporting("In-DB ML", OK)
	// Azure ML and Google Cloud AI ship in-DB scoring paths; Bing counts
	// via SQL Server integration.
	if len(indb) < 2 {
		t.Errorf("in-DB ML supporters = %v", indb)
	}
	all := SystemsSupporting("Batch prediction", OK)
	if len(all) != len(Systems) {
		t.Errorf("batch prediction should be table stakes, got %v", all)
	}
	none := SystemsSupporting("Feature Store", Good)
	for _, n := range none {
		found := false
		for _, s := range Systems {
			if s.Name == n && s.Proprietary {
				found = true
			}
		}
		if !found {
			t.Errorf("non-proprietary system %q has a Good feature store; matrix drifted", n)
		}
	}
}

func TestSupportString(t *testing.T) {
	if Good.String() != "good" || OK.String() != "ok" || None.String() != "none" || Unknown.String() != "?" {
		t.Error("support labels changed")
	}
}
