package engine

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/onnx"
	"repro/internal/opt"
	"repro/internal/sql"
)

// LogEntry is one statement recorded in the query log, the input to lazy
// provenance capture.
type LogEntry struct {
	Seq  int64
	Text string
	User string
	At   time.Time
}

// DB is the in-process database: named tables, a query log, and an optional
// model provider enabling the PREDICT extension.
type DB struct {
	mu     sync.RWMutex
	tables map[string]*Table
	log    []LogEntry
	logSeq int64

	// commitMu is the statement-level commit barrier: every committing
	// statement (DML apply + WAL append, DDL, query-log append) holds it in
	// read mode, and snapshot/checkpoint construction holds it exclusively.
	// A snapshot therefore sits between whole statements — never inside one,
	// and never between a statement's in-memory apply and its WAL record.
	commitMu sync.RWMutex

	// wal, durDir and replayLSN are set by OpenDirDB: the attached
	// write-ahead log, the data directory it lives in, and the highest LSN
	// applied during boot-time recovery (snapshot + replay). ckptMu
	// serializes whole checkpoints: overlapping runs could otherwise retire
	// segments covered only by the other's not-yet-renamed snapshot.
	wal       *WAL
	durDir    string
	walSync   bool // the fsync policy OpenDirDB attached the WAL with (ReopenWAL reuses it)
	replayLSN int64
	ckptMu    sync.Mutex
	// walHorizon is the highest LSN folded into the on-disk snapshot:
	// frames at or below it are no longer on disk, so log shipping from
	// below the horizon must bootstrap from the snapshot instead. Guarded
	// by ckptMu (every writer holds it; OpenDirDB writes pre-publication).
	walHorizon int64
	// replica, when non-nil, marks this database a read-only replica: local
	// writes fail with ErrReadOnly and the only accepted mutations are
	// shipped WAL frames (ApplyReplicated / BootstrapReplica).
	replica atomic.Pointer[replicaState]
	// applyMu serializes replica-side frame application and bootstrap (the
	// follower loop is single-threaded, but the invariant should not depend
	// on it).
	applyMu sync.Mutex
	// commitGate, when set, runs after local durability and before a commit
	// is acknowledged — the quorum-replication ack wait (SetCommitGate).
	commitGate atomic.Pointer[func(lsn int64) error]
	// degraded, when non-nil, marks read-only degraded mode: the WAL is
	// poisoned, writes fail fast with ErrReadOnly, reads keep serving. Set
	// by noteWALErr, cleared by a successful ReopenWAL.
	degraded atomic.Pointer[degradedState]
	// epoch is the replication leadership generation this node's log belongs
	// to; epochStart is the last LSN of the previous epoch (frames at or
	// below it are shared history across a promotion, frames above it belong
	// to the current generation). 0 means "unknown/legacy"; OpenDirDB
	// initializes fresh directories at epoch 1. Changed only by promotion,
	// bootstrap, and WALEpoch replay.
	epoch      atomic.Int64
	epochStart atomic.Int64
	// fenced, when non-nil, marks this node a deposed leader: it observed a
	// higher epoch, so it must never ack another write. Set by Fence,
	// cleared only by DemoteToReplica / BootstrapReplica (adopting the new
	// lineage) — ReopenWAL deliberately refuses to clear it.
	fenced atomic.Pointer[fencedState]
	// retiredWAL keeps the closed WAL reachable so a commit whose
	// durability wait races CloseDurability still resolves against the
	// final sync's outcome instead of silently acking (see walWaitDurable).
	retiredWAL *WAL

	models opt.ModelProvider

	// udfScorer builds the scorer used by UDF-mode PREDICT; defaults to an
	// in-memory JSON remote scorer and can be replaced (e.g. with a real
	// HTTP scoring client) via SetUDFScorerFactory.
	udfScorer func(g *onnx.Graph) (onnx.Scorer, error)

	// predictPlane, when set, routes both PREDICT paths (vectorized
	// operator and row-mode UDF) through the inference plane for
	// micro-batching, score caching, and canary mirroring. nil preserves
	// the direct scoring paths.
	predictPlane PredictPlane

	// DefaultLevel is the optimization level used by Exec; defaults to
	// opt.LevelFull.
	DefaultLevel opt.Level
}

// NewDB returns an empty database.
func NewDB() *DB {
	return &DB{tables: map[string]*Table{}, DefaultLevel: opt.LevelFull}
}

// SetModelProvider wires in the model registry that resolves PREDICT names.
func (db *DB) SetModelProvider(p opt.ModelProvider) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.models = p
}

// CreateTable registers a new empty table (a committed, WAL-logged DDL
// statement).
func (db *DB) CreateTable(name string, schema Schema) (*Table, error) {
	if err := db.checkWritable(); err != nil {
		return nil, err
	}
	db.commitMu.RLock()
	defer db.commitMu.RUnlock()
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.tables[name]; ok {
		return nil, fmt.Errorf("engine: table %q already exists", name)
	}
	t := NewTable(name, schema)
	if err := db.walAppend(&WALRecord{Kind: WALCreate, Table: name, Schema: t.schema}, true); err != nil {
		return nil, err
	}
	db.tables[name] = t
	return t, nil
}

// CreateTableFromColumns registers a table and bulk-loads it in one step.
func (db *DB) CreateTableFromColumns(name string, names []string, cols []Column) (*Table, error) {
	if len(names) != len(cols) {
		return nil, fmt.Errorf("engine: %d names for %d columns", len(names), len(cols))
	}
	schema := make(Schema, len(names))
	for i := range names {
		schema[i] = ColMeta{Name: names[i], Type: cols[i].Type}
	}
	t, err := db.CreateTable(name, schema)
	if err != nil {
		return nil, err
	}
	t.writeMu.Lock()
	lsn, err := db.commitReplace(t, cols)
	t.writeMu.Unlock()
	if err != nil {
		return nil, err
	}
	if err := db.walWaitDurable(lsn); err != nil {
		return nil, err
	}
	return t, nil
}

// DropTable removes a table (a committed, WAL-logged DDL statement).
func (db *DB) DropTable(name string) error {
	if err := db.checkWritable(); err != nil {
		return err
	}
	db.commitMu.RLock()
	defer db.commitMu.RUnlock()
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.tables[name]; !ok {
		return fmt.Errorf("engine: unknown table %q", name)
	}
	if err := db.walAppend(&WALRecord{Kind: WALDrop, Table: name}, true); err != nil {
		return err
	}
	delete(db.tables, name)
	return nil
}

// Table looks up a table by name.
func (db *DB) Table(name string) (*Table, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[name]
	if !ok {
		return nil, fmt.Errorf("engine: unknown table %q", name)
	}
	return t, nil
}

// TableNames lists the tables.
func (db *DB) TableNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.tables))
	for n := range db.tables {
		out = append(out, n)
	}
	return out
}

// TableColumns implements opt.CatalogInfo.
func (db *DB) TableColumns(table string) ([]string, error) {
	t, err := db.Table(table)
	if err != nil {
		return nil, err
	}
	return t.Schema().Names(), nil
}

// TableStats implements opt.CatalogInfo.
func (db *DB) TableStats(table string) onnx.Stats {
	t, err := db.Table(table)
	if err != nil {
		return nil
	}
	return t.Stats()
}

// QueryLog returns a copy of the query log (for lazy provenance capture).
func (db *DB) QueryLog() []LogEntry {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return append([]LogEntry(nil), db.log...)
}

// appendLog records an executed statement. The entry is WAL-logged but
// never forces an fsync of its own: the query log is provenance metadata,
// so its tail riding on the next committed DML record's sync (or being
// lost with an unacknowledged crash window) is an acceptable trade against
// paying one fsync per SELECT. On a replica the entry stays in memory
// only: the replica's WAL is a byte-for-byte copy of the leader's frame
// sequence, and interleaving local frames would desynchronize its LSNs.
func (db *DB) appendLog(text, user string) {
	db.commitMu.RLock()
	defer db.commitMu.RUnlock()
	db.mu.Lock()
	defer db.mu.Unlock()
	db.logSeq++
	e := LogEntry{Seq: db.logSeq, Text: text, User: user, At: time.Now()}
	db.log = append(db.log, e)
	if db.IsReplica() {
		return
	}
	_ = db.walAppend(&WALRecord{Kind: WALLog, Entry: &e}, false)
}

// installCreate registers a replayed or replicated CREATE TABLE without
// WAL-logging it — the record already exists in the log being applied.
func (db *DB) installCreate(name string, schema Schema) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.tables[name]; ok {
		return fmt.Errorf("engine: table %q already exists", name)
	}
	db.tables[name] = NewTable(name, schema)
	return nil
}

// installDrop is installCreate's DROP TABLE sibling.
func (db *DB) installDrop(name string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.tables[name]; !ok {
		return fmt.Errorf("engine: unknown table %q", name)
	}
	delete(db.tables, name)
	return nil
}

// commitAppend applies a batch append and its WAL record as one committed
// statement, in validate -> log -> install order: a validation error logs
// nothing, and a WAL append failure (disk full) installs nothing — either
// way the statement that errors to the client has no effect. The caller
// holds t.writeMu (the statement-level write lock — the commit point), so
// the sequence cannot interleave with another statement on the same table.
//
// The returned LSN is the statement's WAL frame (0 when no WAL is
// attached): the frame is written but NOT yet known durable. The caller
// must release t.writeMu and then block on walWaitDurable(lsn) before
// acknowledging — moving the fsync wait outside the statement lock is what
// lets concurrent writers on one table share a single group-commit fsync.
func (db *DB) commitAppend(t *Table, rows [][]Value) (int64, error) {
	if err := db.checkWritable(); err != nil {
		return 0, err
	}
	db.commitMu.RLock()
	defer db.commitMu.RUnlock()
	if len(rows) == 0 {
		return 0, nil
	}
	newCols, err := t.appendBuild(rows)
	if err != nil {
		return 0, err
	}
	rec := &WALRecord{Kind: WALInsert, Table: t.Name, Rows: rows}
	if err := db.walAppendFrame(rec); err != nil {
		return 0, err
	}
	t.install(newCols)
	return rec.LSN, nil
}

// commitReplace applies a whole-table rebuild (UPDATE/DELETE/bulk load) and
// its WAL record as one committed statement, with the same validate ->
// log -> install -> wait-durable discipline as commitAppend. Caller holds
// t.writeMu and must walWaitDurable the returned LSN after releasing it.
func (db *DB) commitReplace(t *Table, cols []Column) (int64, error) {
	if err := db.checkWritable(); err != nil {
		return 0, err
	}
	db.commitMu.RLock()
	defer db.commitMu.RUnlock()
	if err := t.validateReplace(cols); err != nil {
		return 0, err
	}
	rec := &WALRecord{Kind: WALReplace, Table: t.Name, Cols: cols}
	if err := db.walAppendFrame(rec); err != nil {
		return 0, err
	}
	t.install(cols)
	return rec.LSN, nil
}

// AppendRows appends rows to the named table as one committed, WAL-logged
// statement — the write path internal writers (e.g. the model registry's
// system table) share with INSERT. Returns after the record is durable.
func (db *DB) AppendRows(table string, rows [][]Value) error {
	t, err := db.Table(table)
	if err != nil {
		return err
	}
	t.writeMu.Lock()
	lsn, err := db.commitAppend(t, rows)
	t.writeMu.Unlock()
	if err != nil {
		return err
	}
	return db.walWaitDurable(lsn)
}

// sessionFor resolves a model name to a planned scoring session (row-mode
// PREDICT path).
func (db *DB) sessionFor(model string) (*onnx.Session, error) {
	db.mu.RLock()
	provider := db.models
	db.mu.RUnlock()
	if provider == nil {
		return nil, fmt.Errorf("engine: no model provider configured")
	}
	g, err := provider.GraphFor(model)
	if err != nil {
		return nil, err
	}
	return onnx.NewSession(g)
}

// SetUDFScorerFactory replaces the scorer used by UDF-mode PREDICT (e.g.
// with a client for a real HTTP scoring service).
func (db *DB) SetUDFScorerFactory(f func(g *onnx.Graph) (onnx.Scorer, error)) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.udfScorer = f
}

// PredictPlane is the inference plane's engine-facing hook (implemented by
// internal/infer.Plane): it scores a PREDICT batch for a model with
// micro-batching across concurrent sessions, generation-keyed score
// caching, and candidate mirroring. g is the planned graph — possibly
// sparsity-pruned, so the plane must score it as given rather than
// re-resolve the model name — and out receives one score per row of b.
type PredictPlane interface {
	Score(ctx context.Context, model string, g *onnx.Graph, b *onnx.Batch, out []float64) error
}

// SetPredictPlane installs (or, with nil, removes) the inference plane.
func (db *DB) SetPredictPlane(p PredictPlane) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.predictPlane = p
}

// plane returns the installed inference plane, if any.
func (db *DB) plane() PredictPlane {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.predictPlane
}

// remoteFor resolves a model name to the UDF-mode scorer: by default a
// one-row-per-call JSON remote scorer (each call pays REST-style
// marshalling), or whatever SetUDFScorerFactory installed.
func (db *DB) remoteFor(model string) (onnx.Scorer, error) {
	db.mu.RLock()
	provider := db.models
	factory := db.udfScorer
	db.mu.RUnlock()
	if provider == nil {
		return nil, fmt.Errorf("engine: no model provider configured")
	}
	g, err := provider.GraphFor(model)
	if err != nil {
		return nil, err
	}
	if factory != nil {
		return factory(g)
	}
	return onnx.NewRemoteScorerJSON(g, 1)
}

// Exec parses and executes a statement string at the default level,
// recording it in the query log.
func (db *DB) Exec(query string) (*Result, error) {
	return db.ExecAs(query, "system", ExecOptions{Level: db.DefaultLevel})
}

// ExecContext is Exec with a cancellation context: execution aborts at the
// next batch boundary once ctx is done.
func (db *DB) ExecContext(ctx context.Context, query string) (*Result, error) {
	return db.ExecAsContext(ctx, query, "system", ExecOptions{Level: db.DefaultLevel})
}

// ExecLevel executes with an explicit optimization level.
func (db *DB) ExecLevel(query string, level opt.Level) (*Result, error) {
	return db.ExecAs(query, "system", ExecOptions{Level: level})
}

// ExecAs executes a statement on behalf of a user with explicit options.
func (db *DB) ExecAs(query, user string, o ExecOptions) (*Result, error) {
	return db.ExecAsContext(context.Background(), query, user, o)
}

// ExecAsContext is ExecAs with a cancellation context.
func (db *DB) ExecAsContext(ctx context.Context, query, user string, o ExecOptions) (*Result, error) {
	stmts, err := sql.Parse(query)
	if err != nil {
		return nil, err
	}
	if len(stmts) == 0 {
		return nil, fmt.Errorf("engine: empty statement")
	}
	var last *Result
	for _, stmt := range stmts {
		db.appendLog(sql.FormatStatement(stmt), user)
		res, err := db.ExecStmtContext(ctx, stmt, o)
		if err != nil {
			return nil, err
		}
		last = res
	}
	return last, nil
}

// LogStatement records an externally-executed statement in the query log
// (the prepared-statement path logs through here, keeping lazy provenance
// capture complete).
func (db *DB) LogStatement(text, user string) { db.appendLog(text, user) }

// ExecStmt executes a parsed statement (without logging).
func (db *DB) ExecStmt(stmt sql.Statement, o ExecOptions) (*Result, error) {
	return db.ExecStmtContext(context.Background(), stmt, o)
}

// ExecStmtContext executes a parsed statement (without logging) under a
// cancellation context.
func (db *DB) ExecStmtContext(ctx context.Context, stmt sql.Statement, o ExecOptions) (*Result, error) {
	switch s := stmt.(type) {
	case *sql.SelectStmt:
		rs, _, err := db.ExecSelectContext(ctx, s, o)
		if err != nil {
			return nil, err
		}
		return resultFromRowSet(rs), nil
	case *sql.CreateTableStmt:
		return db.execCreate(s)
	case *sql.InsertStmt:
		return db.execInsertLevel(ctx, s, o)
	case *sql.UpdateStmt:
		return db.execUpdate(ctx, s, o)
	case *sql.DeleteStmt:
		return db.execDelete(ctx, s, o)
	}
	return nil, fmt.Errorf("engine: unsupported statement %T", stmt)
}

// ExecSelect plans and executes a SELECT, returning the rowset and the
// optimizer report (for EXPLAIN-style inspection and ablation benches).
func (db *DB) ExecSelect(s *sql.SelectStmt, o ExecOptions) (*RowSet, *opt.Report, error) {
	return db.ExecSelectContext(context.Background(), s, o)
}

// ExecSelectContext is ExecSelect with a cancellation context: the executor
// polls ctx at operator and batch boundaries, so a canceled query returns
// within one batch of work.
func (db *DB) ExecSelectContext(ctx context.Context, s *sql.SelectStmt, o ExecOptions) (*RowSet, *opt.Report, error) {
	plan, err := db.PlanSelect(s, o.Level)
	if err != nil {
		return nil, nil, err
	}
	plan.Report.Parallelism = o.MaxWorkers()
	rs, err := db.ExecPlanContext(ctx, plan, o)
	if err != nil {
		return nil, nil, err
	}
	return rs, &plan.Report, nil
}

// PlanSelect lowers a SELECT into an optimized plan without executing it —
// the planning half of ExecSelect, exposed for plan caching (prepared
// statements reuse the plan across calls).
func (db *DB) PlanSelect(s *sql.SelectStmt, level opt.Level) (*opt.Plan, error) {
	db.mu.RLock()
	provider := db.models
	db.mu.RUnlock()
	if provider == nil {
		provider = noModels{}
	}
	// At LevelUDF there is no ML-aware planning at all; PREDICT stays a
	// scalar call inside expressions.
	return opt.PlanSelect(s, provider, db, level)
}

// ExecPlanContext executes a previously planned SELECT, materializing the
// result — a thin Collect wrapper over the cursor path, so LIMIT-capped
// streamable pipelines short-circuit the scan even for materialized
// callers. Callers caching plans must revalidate them against table
// versions and the model registry generation (see core.Prepared).
func (db *DB) ExecPlanContext(ctx context.Context, plan *opt.Plan, o ExecOptions) (*RowSet, error) {
	cur, err := db.OpenPlanCursor(ctx, plan, o)
	if err != nil {
		return nil, err
	}
	return Collect(ctx, cur)
}

// noModels is the provider used when none is configured: every lookup fails.
type noModels struct{}

func (noModels) GraphFor(name string) (*onnx.Graph, error) {
	return nil, fmt.Errorf("engine: no model provider configured (model %q)", name)
}
