package engine

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
)

// Durable snapshots: the engine serializes every table (schema, data,
// version counter, retained time-travel history) and the query log to a
// single stream, and restores them into an empty database — the durability
// half of the paper's call for "query, lineage-tracking and storage
// technology that can cover heterogeneous, versioned, and durable data".
// Model blobs live in the registry's system table, so a snapshot +
// ModelRegistry.LoadPersisted is a full recovery.
//
// Format v2 adds the retained history (time travel survives restarts) and
// the WAL sequence number the snapshot covers (recovery replays only newer
// records). v1 snapshots still load, with an empty history.

const snapshotMagic = "FLKD"

// savedVersion is one retained historical table version.
type savedVersion struct {
	Version int64
	Cols    []Column
	Rows    int
}

type savedTable struct {
	Name    string
	Schema  Schema
	Cols    []Column
	Version int64
	History []savedVersion
	Retain  int
}

type savedDB struct {
	FormatVersion int
	Tables        []savedTable
	Log           []LogEntry
	LogSeq        int64
	LSN           int64
	// Epoch and EpochStart carry the replication leadership generation
	// across restarts and follower bootstraps. Gob leaves them zero when
	// decoding a pre-epoch snapshot; OpenDirDB then defaults the epoch to 1.
	Epoch      int64
	EpochStart int64
}

// buildSnapshot deep-copies the whole database under the commit barrier.
func (db *DB) buildSnapshot() savedDB {
	db.commitMu.Lock()
	defer db.commitMu.Unlock()
	return db.buildSnapshotLocked()
}

// buildSnapshotLocked assembles a deep copy of every table, the query log
// and the covered LSN. The caller holds commitMu exclusively, so no
// statement can commit between any two copies: the log, each table, and
// cross-table state are captured at one instant (a torn snapshot whose log
// and data disagree — or whose tables are from different moments — cannot
// be produced).
func (db *DB) buildSnapshotLocked() savedDB {
	db.mu.RLock()
	snap := savedDB{
		FormatVersion: 2,
		Log:           append([]LogEntry(nil), db.log...),
		LogSeq:        db.logSeq,
		LSN:           db.replayLSN,
		Epoch:         db.epoch.Load(),
		EpochStart:    db.epochStart.Load(),
	}
	if db.wal != nil {
		snap.LSN = db.wal.lsn // quiesced: appenders hold commitMu in read mode
	}
	tables := make([]*Table, 0, len(db.tables))
	for _, t := range db.tables {
		tables = append(tables, t)
	}
	db.mu.RUnlock()

	for _, t := range tables {
		t.mu.RLock()
		rows := 0
		if len(t.cols) > 0 {
			rows = t.cols[0].Len()
		}
		st := savedTable{Name: t.Name, Schema: t.schema, Version: t.version, Retain: t.retain}
		st.Cols = make([]Column, len(t.cols))
		for i := range t.cols {
			st.Cols[i] = copyColumn(truncateCol(t.cols[i], rows))
		}
		for _, h := range t.history {
			hv := savedVersion{Version: h.version, Rows: h.rows, Cols: make([]Column, len(h.cols))}
			for i := range h.cols {
				hv.Cols[i] = copyColumn(h.cols[i])
			}
			st.History = append(st.History, hv)
		}
		t.mu.RUnlock()
		snap.Tables = append(snap.Tables, st)
	}
	return snap
}

func encodeSnapshot(w io.Writer, snap savedDB) error {
	if _, err := io.WriteString(w, snapshotMagic); err != nil {
		return fmt.Errorf("engine: SaveSnapshot: %w", err)
	}
	if err := gob.NewEncoder(w).Encode(snap); err != nil {
		return fmt.Errorf("engine: SaveSnapshot: %w", err)
	}
	return nil
}

// SaveSnapshot writes a durable snapshot of all tables (including retained
// time-travel history) and the query log. The copy is taken under the
// statement-level commit barrier, so concurrent DML cannot tear it; the
// encoding happens after the barrier is released.
func (db *DB) SaveSnapshot(w io.Writer) error {
	return encodeSnapshot(w, db.buildSnapshot())
}

func copyColumn(c Column) Column {
	out := Column{Type: c.Type}
	switch c.Type {
	case TypeInt:
		out.Ints = append([]int64(nil), c.Ints...)
	case TypeFloat:
		out.Floats = append([]float64(nil), c.Floats...)
	case TypeString:
		out.Strs = append([]string(nil), c.Strs...)
	case TypeBool:
		out.Bools = append([]bool(nil), c.Bools...)
	}
	return out
}

// checkSavedCols validates decoded columns against a schema: count, types,
// and a uniform row count.
func checkSavedCols(schema Schema, cols []Column, wantRows int) error {
	if len(cols) != len(schema) {
		return fmt.Errorf("%d columns for %d schema entries", len(cols), len(schema))
	}
	for i, c := range cols {
		if c.Type != schema[i].Type {
			return fmt.Errorf("column %s: type %s, want %s", schema[i].Name, c.Type, schema[i].Type)
		}
		if c.Len() != wantRows {
			return fmt.Errorf("column %s: %d rows, want %d", schema[i].Name, c.Len(), wantRows)
		}
	}
	return nil
}

// tableFromSaved rebuilds one table (data, version counter, history) from
// its decoded form, validating everything before the table is published.
func tableFromSaved(st savedTable, formatVersion int) (*Table, error) {
	t := NewTable(st.Name, st.Schema)
	rows := 0
	if len(st.Cols) > 0 {
		rows = st.Cols[0].Len()
	}
	if err := checkSavedCols(t.schema, st.Cols, rows); err != nil {
		return nil, fmt.Errorf("table %s: %w", st.Name, err)
	}
	t.cols = st.Cols
	t.version = st.Version
	t.statsVersion = -1
	if formatVersion >= 2 {
		t.retain = st.Retain
	}
	for _, h := range st.History {
		if err := checkSavedCols(t.schema, h.Cols, h.Rows); err != nil {
			return nil, fmt.Errorf("table %s version %d: %w", st.Name, h.Version, err)
		}
		t.history = append(t.history, tableSnapshot{version: h.Version, cols: h.Cols, rows: h.Rows})
	}
	t.trimHistoryLocked() // t is unpublished; no lock needed yet
	return t, nil
}

// LoadSnapshot restores a snapshot into this (empty) database. The restore
// is all-or-nothing: every table is decoded and validated before anything
// is installed, so a corrupt snapshot leaves the database empty and a
// retry (with a good snapshot) succeeds.
func (db *DB) LoadSnapshot(r io.Reader) error {
	magic := make([]byte, len(snapshotMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return fmt.Errorf("engine: LoadSnapshot: %w", err)
	}
	if string(magic) != snapshotMagic {
		return fmt.Errorf("engine: LoadSnapshot: bad magic (not a snapshot)")
	}
	var snap savedDB
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return fmt.Errorf("engine: LoadSnapshot: %w", err)
	}
	if snap.FormatVersion != 1 && snap.FormatVersion != 2 {
		return fmt.Errorf("engine: LoadSnapshot: unsupported format %d", snap.FormatVersion)
	}
	tables := make(map[string]*Table, len(snap.Tables))
	for _, st := range snap.Tables {
		if _, dup := tables[st.Name]; dup {
			return fmt.Errorf("engine: LoadSnapshot: duplicate table %q", st.Name)
		}
		t, err := tableFromSaved(st, snap.FormatVersion)
		if err != nil {
			return fmt.Errorf("engine: LoadSnapshot: %w", err)
		}
		tables[st.Name] = t
	}

	db.mu.Lock()
	defer db.mu.Unlock()
	if len(db.tables) != 0 {
		return fmt.Errorf("engine: LoadSnapshot requires an empty database (%d tables present)", len(db.tables))
	}
	for n, t := range tables {
		db.tables[n] = t
	}
	db.log = snap.Log
	db.logSeq = snap.LogSeq
	db.replayLSN = snap.LSN
	if snap.Epoch > 0 {
		db.epoch.Store(snap.Epoch)
		db.epochStart.Store(snap.EpochStart)
	}
	return nil
}

// SaveSnapshotFile writes a snapshot to path crash-safely: temp file in the
// same directory, fsync, atomic rename, directory fsync — the export path
// (e.g. flock-sql's \save) shares the checkpoint's write discipline.
func (db *DB) SaveSnapshotFile(path string) error {
	return writeSnapshotFile(path, db.buildSnapshot())
}

// SnapshotBytes is a convenience wrapper returning the snapshot as a blob.
func (db *DB) SnapshotBytes() ([]byte, error) {
	var buf bytes.Buffer
	if err := db.SaveSnapshot(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
