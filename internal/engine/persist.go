package engine

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
)

// Durable snapshots: the engine serializes every table (schema, data,
// version counter) and the query log to a single stream, and restores them
// into an empty database — the durability half of the paper's call for
// "query, lineage-tracking and storage technology that can cover
// heterogeneous, versioned, and durable data". Model blobs live in the
// registry's system table, so a snapshot + ModelRegistry.LoadPersisted is
// a full recovery.

const snapshotMagic = "FLKD"

type savedTable struct {
	Name    string
	Schema  Schema
	Cols    []Column
	Version int64
}

type savedDB struct {
	FormatVersion int
	Tables        []savedTable
	Log           []LogEntry
	LogSeq        int64
}

// SaveSnapshot writes a durable snapshot of all tables and the query log.
func (db *DB) SaveSnapshot(w io.Writer) error {
	db.mu.RLock()
	snap := savedDB{FormatVersion: 1, Log: append([]LogEntry(nil), db.log...), LogSeq: db.logSeq}
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	tables := make([]*Table, 0, len(names))
	for _, n := range names {
		tables = append(tables, db.tables[n])
	}
	db.mu.RUnlock()

	for _, t := range tables {
		cols, schema, rows := t.snapshot()
		_ = rows
		st := savedTable{Name: t.Name, Schema: schema, Version: t.Version()}
		// Deep-copy columns so the snapshot is stable even if writes race.
		st.Cols = make([]Column, len(cols))
		for i := range cols {
			st.Cols[i] = copyColumn(cols[i])
		}
		snap.Tables = append(snap.Tables, st)
	}

	if _, err := io.WriteString(w, snapshotMagic); err != nil {
		return fmt.Errorf("engine: SaveSnapshot: %w", err)
	}
	if err := gob.NewEncoder(w).Encode(snap); err != nil {
		return fmt.Errorf("engine: SaveSnapshot: %w", err)
	}
	return nil
}

func copyColumn(c Column) Column {
	out := Column{Type: c.Type}
	switch c.Type {
	case TypeInt:
		out.Ints = append([]int64(nil), c.Ints...)
	case TypeFloat:
		out.Floats = append([]float64(nil), c.Floats...)
	case TypeString:
		out.Strs = append([]string(nil), c.Strs...)
	case TypeBool:
		out.Bools = append([]bool(nil), c.Bools...)
	}
	return out
}

// LoadSnapshot restores a snapshot into this (empty) database.
func (db *DB) LoadSnapshot(r io.Reader) error {
	magic := make([]byte, len(snapshotMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return fmt.Errorf("engine: LoadSnapshot: %w", err)
	}
	if string(magic) != snapshotMagic {
		return fmt.Errorf("engine: LoadSnapshot: bad magic (not a snapshot)")
	}
	var snap savedDB
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return fmt.Errorf("engine: LoadSnapshot: %w", err)
	}
	if snap.FormatVersion != 1 {
		return fmt.Errorf("engine: LoadSnapshot: unsupported format %d", snap.FormatVersion)
	}
	db.mu.Lock()
	if len(db.tables) != 0 {
		db.mu.Unlock()
		return fmt.Errorf("engine: LoadSnapshot requires an empty database (%d tables present)", len(db.tables))
	}
	db.log = snap.Log
	db.logSeq = snap.LogSeq
	db.mu.Unlock()

	for _, st := range snap.Tables {
		t, err := db.CreateTable(st.Name, st.Schema)
		if err != nil {
			return err
		}
		if err := t.ReplaceColumns(st.Cols); err != nil {
			return err
		}
		t.mu.Lock()
		t.version = st.Version
		t.history = nil // history does not survive restarts (documented)
		t.statsVersion = -1
		t.mu.Unlock()
	}
	return nil
}

// SnapshotBytes is a convenience wrapper returning the snapshot as a blob.
func (db *DB) SnapshotBytes() ([]byte, error) {
	var buf bytes.Buffer
	if err := db.SaveSnapshot(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
