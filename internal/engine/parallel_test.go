package engine

// Parallel-vs-serial equivalence pinning: every morsel-parallel operator
// (filter, hash join, GROUP BY, DISTINCT, ORDER BY) must produce the same
// rows in the same order at Parallelism 1 and at many workers. Float
// aggregates compare under a tiny relative tolerance (parallel merging
// re-associates the additions); everything else must match exactly.

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"

	"repro/internal/opt"
	"repro/internal/sql"
)

// parallelTestDB builds a skewed fact table (wide enough to clear the
// parallel threshold several times over) plus a dimension table. The skew —
// 60% of rows in one group, a hot join key, NULLs sprinkled into the
// aggregate column — is the morsel queue's reason to exist.
func parallelTestDB(t testing.TB, rows int) *DB {
	t.Helper()
	db := NewDB()
	seed := uint64(0x2545F4914F6CDD1D)
	next := func() uint64 {
		seed ^= seed << 13
		seed ^= seed >> 7
		seed ^= seed << 17
		return seed
	}
	ids := make([]int64, rows)
	grps := make([]int64, rows)
	vals := make([]float64, rows)
	cats := make([]string, rows)
	flags := make([]bool, rows)
	catNames := []string{"alpha", "beta", "gamma", "delta"}
	for i := 0; i < rows; i++ {
		ids[i] = int64(i)
		if next()%10 < 6 {
			grps[i] = 7 // hot group and hot join key
		} else {
			grps[i] = int64(next() % 500)
		}
		vals[i] = float64(next()%1_000_000)/997.0 - 300
		cats[i] = catNames[next()%4]
		flags[i] = next()%3 == 0
	}
	if _, err := db.CreateTableFromColumns("facts",
		[]string{"id", "grp", "val", "cat", "flag"},
		[]Column{IntColumn(ids), IntColumn(grps), FloatColumn(vals), StringColumn(cats), BoolColumn(flags)}); err != nil {
		t.Fatal(err)
	}
	const dimRows = 600
	ks := make([]int64, dimRows)
	names := make([]string, dimRows)
	for i := 0; i < dimRows; i++ {
		ks[i] = int64(i % 500) // duplicate keys: probes fan out
		names[i] = fmt.Sprintf("d%03d", i)
	}
	if _, err := db.CreateTableFromColumns("dim",
		[]string{"k", "name"},
		[]Column{IntColumn(ks), StringColumn(names)}); err != nil {
		t.Fatal(err)
	}
	return db
}

// runAt executes a SELECT at the given worker cap.
func runAt(t testing.TB, db *DB, query string, workers int) *RowSet {
	t.Helper()
	stmt, err := sql.ParseOne(query)
	if err != nil {
		t.Fatalf("%s: %v", query, err)
	}
	sel, ok := stmt.(*sql.SelectStmt)
	if !ok {
		t.Fatalf("%s: not a SELECT", query)
	}
	rs, _, err := db.ExecSelect(sel, ExecOptions{Level: opt.LevelParallel, Parallelism: workers})
	if err != nil {
		t.Fatalf("%s (workers=%d): %v", query, workers, err)
	}
	return rs
}

// requireSameRowSet compares two rowsets cell by cell: exact for ints,
// strings and bools, relative 1e-9 for floats (parallel merge re-associates
// float additions).
func requireSameRowSet(t *testing.T, query string, serial, parallel *RowSet) {
	t.Helper()
	if serial.N != parallel.N {
		t.Fatalf("%s: serial %d rows, parallel %d rows", query, serial.N, parallel.N)
	}
	if len(serial.Cols) != len(parallel.Cols) {
		t.Fatalf("%s: column count differs: %d vs %d", query, len(serial.Cols), len(parallel.Cols))
	}
	for c := range serial.Cols {
		if serial.Cols[c].Type != parallel.Cols[c].Type {
			t.Fatalf("%s: column %d type differs: %v vs %v", query, c, serial.Cols[c].Type, parallel.Cols[c].Type)
		}
	}
	for r := 0; r < serial.N; r++ {
		for c := range serial.Cols {
			sv := serial.Cols[c].Value(r)
			pv := parallel.Cols[c].Value(r)
			if sv.Null != pv.Null {
				t.Fatalf("%s: row %d col %d null mismatch: %v vs %v", query, r, c, sv, pv)
			}
			if sv.Null {
				continue
			}
			if sv.Kind == TypeFloat {
				d := math.Abs(sv.F - pv.F)
				if d > 1e-9*math.Max(1, math.Abs(sv.F)) {
					t.Fatalf("%s: row %d col %d float mismatch: %v vs %v", query, r, c, sv.F, pv.F)
				}
				continue
			}
			if sv != pv {
				t.Fatalf("%s: row %d col %d mismatch: %v vs %v", query, r, c, sv, pv)
			}
		}
	}
}

// equivalenceQueries cover every parallel operator, including the
// accumulator-merge corners (AVG, MIN/MAX, COUNT/SUM DISTINCT), LEFT JOIN
// unmatched padding, residual join predicates, multi-key sorts with heavy
// ties, and skewed filters.
var equivalenceQueries = []string{
	`SELECT id, grp FROM facts WHERE val > 400.0 AND cat <> 'beta'`,
	`SELECT id FROM facts WHERE grp = 7 AND flag`,
	`SELECT grp, count(*) AS n, sum(val) AS s, avg(val) AS a, min(val) AS lo, max(val) AS hi
		FROM facts GROUP BY grp`,
	`SELECT cat, count(val) AS nv, max(val) AS mx FROM facts GROUP BY cat`,
	`SELECT grp, count(CASE WHEN flag THEN val END) AS n, sum(CASE WHEN flag THEN val END) AS s,
		min(CASE WHEN flag THEN val END) AS lo FROM facts GROUP BY grp`,
	`SELECT grp, count(DISTINCT cat) AS dc, sum(DISTINCT val) AS ds, min(DISTINCT val) AS dm
		FROM facts GROUP BY grp`,
	`SELECT count(*) AS n, sum(val) AS s, avg(val) AS a FROM facts`,
	`SELECT DISTINCT cat, grp FROM facts`,
	`SELECT DISTINCT flag FROM facts`,
	`SELECT f.id, d.name FROM facts f JOIN dim d ON f.grp = d.k WHERE f.val > 650.0`,
	`SELECT f.id, d.name FROM facts f LEFT JOIN dim d ON f.grp = d.k AND d.name > 'd250' WHERE f.id < 20000`,
	`SELECT count(*) AS n FROM facts f JOIN dim d ON f.grp = d.k AND f.cat = 'alpha'`,
	`SELECT id, grp, cat, flag FROM facts ORDER BY cat, flag DESC, grp`,
	`SELECT grp, val, id FROM facts ORDER BY val DESC, id`,
	`SELECT cat, count(*) AS n FROM facts GROUP BY cat ORDER BY n DESC, cat`,
}

func TestParallelSerialEquivalence(t *testing.T) {
	db := parallelTestDB(t, 50_000)
	for _, q := range equivalenceQueries {
		serial := runAt(t, db, q, 1)
		parallel := runAt(t, db, q, 8)
		requireSameRowSet(t, q, serial, parallel)
	}
}

// TestParallelEquivalenceManyWorkerCounts sweeps worker counts across one
// aggregate and one sort so morsel-count edge cases (workers > morsels,
// odd chunk counts in the merge tree) are covered.
func TestParallelEquivalenceManyWorkerCounts(t *testing.T) {
	db := parallelTestDB(t, parallelThreshold+123)
	queries := []string{
		`SELECT grp, count(*) AS n, sum(val) AS s FROM facts GROUP BY grp`,
		`SELECT cat, id FROM facts ORDER BY cat, id DESC`,
	}
	for _, q := range queries {
		serial := runAt(t, db, q, 1)
		for _, w := range []int{2, 3, 5, 16, 64} {
			requireSameRowSet(t, fmt.Sprintf("%s @%d", q, w), serial, runAt(t, db, q, w))
		}
	}
}

// TestParallelConcurrentQueries runs parallel queries from many goroutines
// at once — under -race this pins the morsel queue, the scratch pools, and
// the thread-local aggregation states against each other.
func TestParallelConcurrentQueries(t *testing.T) {
	db := parallelTestDB(t, 30_000)
	queries := []string{
		`SELECT grp, count(*) AS n, sum(val) AS s FROM facts GROUP BY grp`,
		`SELECT count(*) AS n FROM facts f JOIN dim d ON f.grp = d.k`,
		`SELECT DISTINCT cat, grp FROM facts`,
		`SELECT val, id FROM facts WHERE val > 500.0 ORDER BY val, id`,
	}
	want := make([]*RowSet, len(queries))
	for i, q := range queries {
		want[i] = runAt(t, db, q, 1)
	}
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			q := queries[g%len(queries)]
			got := runAt(t, db, q, 4)
			if got.N != want[g%len(queries)].N {
				errs <- fmt.Sprintf("%s: got %d rows, want %d", q, got.N, want[g%len(queries)].N)
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

// TestReportParallelismDegree pins the EXPLAIN surface: the optimizer
// report carries the resolved morsel worker cap.
func TestReportParallelismDegree(t *testing.T) {
	db := parallelTestDB(t, parallelThreshold)
	stmt, err := sql.ParseOne(`SELECT count(*) AS n FROM facts`)
	if err != nil {
		t.Fatal(err)
	}
	sel := stmt.(*sql.SelectStmt)
	_, rep, err := db.ExecSelect(sel, ExecOptions{Level: opt.LevelParallel, Parallelism: 6})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Parallelism != 6 {
		t.Fatalf("report parallelism = %d, want 6", rep.Parallelism)
	}
	if !strings.Contains(rep.String(), "workers=6") {
		t.Fatalf("report string %q missing workers=6", rep.String())
	}
	_, rep, err = db.ExecSelect(sel, ExecOptions{Level: opt.LevelVectorized})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Parallelism != 1 {
		t.Fatalf("sub-parallel level reports %d workers, want 1", rep.Parallelism)
	}
}

// TestParallelAggregateEmptyGroups pins the degenerate shapes: empty input,
// global aggregates, and a group count near the worker count.
func TestParallelAggregateEmptyGroups(t *testing.T) {
	db := NewDB()
	if _, err := db.CreateTableFromColumns("tiny",
		[]string{"g", "v"},
		[]Column{IntColumn(nil), FloatColumn(nil)}); err != nil {
		t.Fatal(err)
	}
	res, err := db.ExecAs(`SELECT count(*) AS n, sum(v) AS s FROM tiny`, "t",
		ExecOptions{Level: opt.LevelParallel, Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].(int64); got != 0 {
		t.Fatalf("count over empty table = %d", got)
	}
}
