package engine

// Cursor-path pinning: LIMIT pushdown short-circuits scans on the serial
// and morsel paths, cursor drains match materialized execution exactly at
// 1 and 8 workers, partial consumption (close mid-stream, cancellation
// between Next calls) releases cleanly, no cursor leaks, and a streamable
// drain holds O(batch) — not O(result) — memory.

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"testing"

	"repro/internal/opt"
	"repro/internal/sql"
)

// openCursorOn parses a SELECT and opens a cursor at the given options.
func openCursorOn(t testing.TB, db *DB, query string, o ExecOptions) Cursor {
	t.Helper()
	stmt, err := sql.ParseOne(query)
	if err != nil {
		t.Fatalf("%s: %v", query, err)
	}
	sel, ok := stmt.(*sql.SelectStmt)
	if !ok {
		t.Fatalf("%s: not a SELECT", query)
	}
	cur, _, err := db.OpenCursor(context.Background(), sel, o)
	if err != nil {
		t.Fatalf("%s: open cursor: %v", query, err)
	}
	return cur
}

// drainBatches pulls a cursor dry, returning the concatenated result and
// the number of non-empty batches seen (without using Collect, so the
// windowed path is exercised even without a LIMIT).
func drainBatches(t *testing.T, cur Cursor) (*RowSet, int) {
	t.Helper()
	var batches []*Batch
	total := 0
	for {
		b, err := cur.Next(context.Background())
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if b.N == 0 {
			t.Fatalf("Next returned an empty batch")
		}
		batches = append(batches, b)
		total += b.N
	}
	schema := cur.Schema()
	out := &RowSet{Schema: schema, N: total, Cols: make([]Column, len(schema))}
	for i := range schema {
		out.Cols[i] = concatBatches(schema[i].Type, batches, i, total)
	}
	return out, len(batches)
}

// TestCursorLimitShortCircuitsScan pins LIMIT pushdown with a counting
// scan: a capped streamable pipeline must stop reading the base table as
// soon as enough rows are produced, on both the serial (1 worker) and
// morsel (8 workers) paths, for cursor drains and materialized ExecSelect
// alike.
func TestCursorLimitShortCircuitsScan(t *testing.T) {
	const rows = 200_000
	db := parallelTestDB(t, rows)
	query := `SELECT id FROM facts WHERE val > -1000.0 LIMIT 64`

	for _, tc := range []struct {
		name string
		o    ExecOptions
	}{
		{"serial", ExecOptions{Level: opt.LevelVectorized}},
		{"morsel", ExecOptions{Level: opt.LevelParallel, Parallelism: 8}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			o := tc.o
			o.Counters = &ExecCounters{}
			stmt, _ := sql.ParseOne(query)
			rs, _, err := db.ExecSelect(stmt.(*sql.SelectStmt), o)
			if err != nil {
				t.Fatal(err)
			}
			if rs.N != 64 {
				t.Fatalf("got %d rows, want 64", rs.N)
			}
			scanned := o.Counters.RowsScanned.Load()
			if scanned == 0 || scanned >= rows/2 {
				t.Fatalf("scanned %d of %d rows for LIMIT 64; want an early-terminated scan", scanned, rows)
			}
		})
	}

	// Without a LIMIT the same pipeline must still scan everything.
	o := ExecOptions{Level: opt.LevelParallel, Parallelism: 8, Counters: &ExecCounters{}}
	stmt, _ := sql.ParseOne(`SELECT id FROM facts WHERE val > -1000.0`)
	if _, _, err := db.ExecSelect(stmt.(*sql.SelectStmt), o); err != nil {
		t.Fatal(err)
	}
	if scanned := o.Counters.RowsScanned.Load(); scanned != rows {
		t.Fatalf("uncapped scan read %d rows, want %d", scanned, rows)
	}
}

// TestCursorDrainMatchesExec pins cursor-vs-materialized equivalence over
// streamable and blocking plan shapes at 1 and 8 workers: a windowed drain
// must concatenate to exactly what ExecSelect materializes.
func TestCursorDrainMatchesExec(t *testing.T) {
	db := parallelTestDB(t, 60_000)
	queries := []string{
		`SELECT id, val FROM facts WHERE val > 100.0 AND cat <> 'beta'`,
		`SELECT id + grp AS k, val * 2.0 AS v2 FROM facts WHERE flag`,
		`SELECT id FROM facts WHERE val > 0.0 LIMIT 1000`,
		`SELECT cat, count(*) AS n, sum(val) AS s FROM facts GROUP BY cat`,
		`SELECT DISTINCT cat, grp FROM facts`,
		`SELECT id, val FROM facts ORDER BY val DESC, id LIMIT 500`,
		`SELECT f.id, d.name FROM facts f JOIN dim d ON f.grp = d.k WHERE f.val > 400.0`,
		`SELECT 1 + 2 AS three`,
	}
	for _, q := range queries {
		for _, workers := range []int{1, 8} {
			o := ExecOptions{Level: opt.LevelParallel, Parallelism: workers}
			want := runAt(t, db, q, workers)
			cur := openCursorOn(t, db, q, o)
			got, _ := drainBatches(t, cur)
			if err := cur.Close(); err != nil {
				t.Fatalf("%s: close: %v", q, err)
			}
			requireSameRowSet(t, fmt.Sprintf("%s (cursor, workers=%d)", q, workers), want, got)
		}
	}
}

// TestCursorPartialConsumption covers the paths a materialize-then-copy API
// structurally hides: closing a cursor mid-stream, cancellation between
// Next calls, and pulls after close.
func TestCursorPartialConsumption(t *testing.T) {
	db := parallelTestDB(t, 120_000)
	o := ExecOptions{Level: opt.LevelVectorized}

	t.Run("close mid-stream", func(t *testing.T) {
		cur := openCursorOn(t, db, `SELECT id FROM facts WHERE val > -1000.0`, o)
		if _, err := cur.Next(context.Background()); err != nil {
			t.Fatal(err)
		}
		if err := cur.Close(); err != nil {
			t.Fatal(err)
		}
		if err := cur.Close(); err != nil {
			t.Fatalf("double close: %v", err)
		}
		if _, err := cur.Next(context.Background()); err != errCursorClosed {
			t.Fatalf("Next after Close: got %v, want errCursorClosed", err)
		}
	})

	t.Run("cancel between Next calls is retryable", func(t *testing.T) {
		cur := openCursorOn(t, db, `SELECT id FROM facts WHERE val > -1000.0`, o)
		defer cur.Close()
		ctx, cancel := context.WithCancel(context.Background())
		first, err := cur.Next(ctx)
		if err != nil {
			t.Fatal(err)
		}
		total := first.N
		cancel()
		if _, err := cur.Next(ctx); err != context.Canceled {
			t.Fatalf("Next after cancel: got %v, want context.Canceled", err)
		}
		// Context errors are NOT sticky: a fresh context resumes the drain
		// exactly where it left off — the canceled pull consumed nothing
		// (server fetch retryability depends on this).
		for {
			b, err := cur.Next(context.Background())
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("Next after retry: %v", err)
			}
			total += b.N
		}
		if total != 120_000 {
			t.Fatalf("drained %d rows across the canceled pull, want 120000 (rows lost or repeated)", total)
		}
	})

	t.Run("limit state rolls back across canceled pulls", func(t *testing.T) {
		cur := openCursorOn(t, db, `SELECT id FROM facts WHERE val > -1000.0 LIMIT 9000`, o)
		defer cur.Close()
		canceled, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := cur.Next(canceled); err != context.Canceled {
			t.Fatalf("canceled pull: got %v", err)
		}
		total := 0
		for {
			b, err := cur.Next(context.Background())
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			total += b.N
		}
		if total != 9000 {
			t.Fatalf("LIMIT drained %d rows after a canceled pull, want exactly 9000", total)
		}
	})
}

// TestCursorLeakCount pins the open-cursor accounting: every open is
// balanced by exactly one close, across drained, abandoned, and Collect'd
// cursors.
func TestCursorLeakCount(t *testing.T) {
	db := parallelTestDB(t, 20_000)
	base := CursorsOpen()
	o := ExecOptions{Level: opt.LevelParallel, Parallelism: 4}

	cur := openCursorOn(t, db, `SELECT id FROM facts`, o)
	if got := CursorsOpen(); got != base+1 {
		t.Fatalf("after open: %d cursors, want %d", got, base+1)
	}
	if err := cur.Close(); err != nil {
		t.Fatal(err)
	}
	if got := CursorsOpen(); got != base {
		t.Fatalf("after close: %d cursors, want %d", got, base)
	}

	// Collect closes the cursor it drains, and ExecSelect rides on Collect.
	stmt, _ := sql.ParseOne(`SELECT grp, count(*) AS n FROM facts GROUP BY grp`)
	if _, _, err := db.ExecSelect(stmt.(*sql.SelectStmt), o); err != nil {
		t.Fatal(err)
	}
	if got := CursorsOpen(); got != base {
		t.Fatalf("after ExecSelect: %d cursors, want %d", got, base)
	}
}

// TestCursorEmptyAndEdgeShapes covers empty tables, LIMIT 0, and blocking
// roots drained through the cursor protocol.
func TestCursorEmptyAndEdgeShapes(t *testing.T) {
	db := NewDB()
	if _, err := db.CreateTableFromColumns("empty",
		[]string{"a", "b"}, []Column{IntColumn(nil), StringColumn(nil)}); err != nil {
		t.Fatal(err)
	}
	o := ExecOptions{Level: opt.LevelVectorized}

	cur := openCursorOn(t, db, `SELECT a, b FROM empty`, o)
	if _, err := cur.Next(context.Background()); err != io.EOF {
		t.Fatalf("empty table: got %v, want io.EOF", err)
	}
	if len(cur.Schema()) != 2 {
		t.Fatalf("empty table schema: %v", cur.Schema())
	}
	cur.Close()

	db2 := parallelTestDB(t, 20_000)
	cur = openCursorOn(t, db2, `SELECT id FROM facts LIMIT 0`, o)
	if _, err := cur.Next(context.Background()); err != io.EOF {
		t.Fatalf("LIMIT 0: got %v, want io.EOF", err)
	}
	cur.Close()

	// Blocking root: the sort materializes at open, then drains in batches.
	cur = openCursorOn(t, db2, `SELECT id, val FROM facts ORDER BY val`, o)
	rs, batches := drainBatches(t, cur)
	cur.Close()
	if rs.N != 20_000 {
		t.Fatalf("sorted drain: %d rows", rs.N)
	}
	if batches < 2 {
		t.Fatalf("sorted drain arrived in %d batch(es); want a windowed drain", batches)
	}
	for r := 1; r < rs.N; r++ {
		if rs.Cols[1].Floats[r] < rs.Cols[1].Floats[r-1] {
			t.Fatalf("sorted drain out of order at row %d", r)
		}
	}
}

// TestCursorBoundedMemory pins the redesign's point: draining a streamable
// 1M-row SELECT through a cursor must hold O(batch) live heap, not the
// O(result) a materialized execution allocates.
func TestCursorBoundedMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("1M-row allocation assertion")
	}
	const rows = 1_000_000
	db := NewDB()
	ids := make([]int64, rows)
	vals := make([]float64, rows)
	for i := 0; i < rows; i++ {
		ids[i] = int64(i)
		vals[i] = float64(i%10_000) / 3.0
	}
	if _, err := db.CreateTableFromColumns("big",
		[]string{"id", "val"}, []Column{IntColumn(ids), FloatColumn(vals)}); err != nil {
		t.Fatal(err)
	}

	// Computed projections force every batch to allocate fresh columns
	// (pass-through columns would alias table storage and prove nothing).
	const query = `SELECT id + 1 AS id2, val * 2.0 AS v2 FROM big WHERE val >= 0.0`
	o := ExecOptions{Level: opt.LevelVectorized}

	// Materialized floor: the full result is ~16 MB of column data.
	materialized := func() int {
		rs, _, err := db.ExecSelect(mustSelect(t, query), o)
		if err != nil {
			t.Fatal(err)
		}
		return 8*len(rs.Cols[0].Ints) + 8*len(rs.Cols[1].Floats)
	}()

	cur := openCursorOn(t, db, query, o)
	defer cur.Close()
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	baseline := ms.HeapAlloc

	var maxLive uint64
	n, batch := 0, 0
	for {
		b, err := cur.Next(context.Background())
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		n += b.N
		batch++
		if batch%32 == 0 {
			runtime.GC()
			runtime.ReadMemStats(&ms)
			if live := ms.HeapAlloc - baseline; live > maxLive {
				maxLive = live
			}
		}
	}
	if n != rows {
		t.Fatalf("drained %d rows, want %d", n, rows)
	}
	if maxLive > uint64(materialized)/2 {
		t.Fatalf("streaming drain held %d B live heap; materialized result is %d B — not O(batch)",
			maxLive, materialized)
	}
	t.Logf("streaming live heap max %d B over a %d B materialized result", maxLive, materialized)
}

func mustSelect(t testing.TB, q string) *sql.SelectStmt {
	t.Helper()
	stmt, err := sql.ParseOne(q)
	if err != nil {
		t.Fatal(err)
	}
	return stmt.(*sql.SelectStmt)
}
