package engine

import (
	"bytes"
	"strings"
	"testing"
)

func TestSnapshotRoundTrip(t *testing.T) {
	db := newTestDB(t)
	if _, err := db.Exec("UPDATE orders SET amount = amount + 1 WHERE id = 1"); err != nil {
		t.Fatal(err)
	}
	want, err := db.Exec("SELECT id, region, amount, priority FROM orders ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	blob, err := db.SnapshotBytes()
	if err != nil {
		t.Fatal(err)
	}

	restored := NewDB()
	if err := restored.LoadSnapshot(bytes.NewReader(blob)); err != nil {
		t.Fatal(err)
	}
	// Query log survives as-is (lazy provenance can rebuild after restart).
	if len(restored.QueryLog()) != len(db.QueryLog()) {
		t.Errorf("log = %d entries, want %d", len(restored.QueryLog()), len(db.QueryLog()))
	}
	got, err := restored.Exec("SELECT id, region, amount, priority FROM orders ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Rows) != len(want.Rows) {
		t.Fatalf("rows = %d, want %d", len(got.Rows), len(want.Rows))
	}
	for i := range want.Rows {
		for c := range want.Rows[i] {
			if got.Rows[i][c] != want.Rows[i][c] {
				t.Fatalf("row %d col %d: %v vs %v", i, c, got.Rows[i][c], want.Rows[i][c])
			}
		}
	}
	// Version counter survives.
	orig, _ := db.Table("orders")
	rest, _ := restored.Table("orders")
	if rest.Version() != orig.Version() {
		t.Errorf("version = %d, want %d", rest.Version(), orig.Version())
	}
	// Restored DB accepts writes and keeps sequencing.
	if _, err := restored.Exec("INSERT INTO orders VALUES (9, 'eu', 1.0, 1)"); err != nil {
		t.Fatal(err)
	}
	logs := restored.QueryLog()
	if logs[len(logs)-1].Seq <= logs[len(logs)-2].Seq {
		t.Error("log sequence did not continue after restore")
	}
}

func TestSnapshotErrors(t *testing.T) {
	db := newTestDB(t)
	if err := db.LoadSnapshot(strings.NewReader("not a snapshot")); err == nil {
		t.Error("bad magic should error")
	}
	blob, _ := db.SnapshotBytes()
	if err := db.LoadSnapshot(bytes.NewReader(blob)); err == nil {
		t.Error("loading into a non-empty database should error")
	}
	if err := NewDB().LoadSnapshot(bytes.NewReader(blob[:6])); err == nil {
		t.Error("truncated snapshot should error")
	}
}

func TestSnapshotEmptyDB(t *testing.T) {
	blob, err := NewDB().SnapshotBytes()
	if err != nil {
		t.Fatal(err)
	}
	restored := NewDB()
	if err := restored.LoadSnapshot(bytes.NewReader(blob)); err != nil {
		t.Fatal(err)
	}
	if len(restored.TableNames()) != 0 {
		t.Error("empty snapshot should restore empty")
	}
}
