package engine

// Vectorized expression compilation. Where compile.go interprets one row at
// a time through boxed Values, this file compiles an expression into a
// kernel that evaluates a whole batch per call: one typed inner loop per
// operator, a shared null mask, and no per-row allocation or error check in
// the steady state.
//
// The batch ABI:
//
//   - A kernel is a vecFunc: it receives a RowSet and returns a *Vec whose
//     logical length is rs.N.
//   - A Vec is a typed vector. Column references alias table storage
//     (zero-copy); literals are Const vectors holding one physical element
//     broadcast to the batch length.
//   - Nulls are a side mask (nil when the vector has no nulls). Null slots
//     always hold the zero value of the type, matching how Column stores
//     NULLs, so a Vec can alias or become a Column without rewriting.
//   - Predicates reduce to []bool truth masks; filterRowSet turns a mask
//     into a selection vector ([]int32 row ids) and gathers once.
//
// Kernels use fast typed loops when both operands are non-null and of a
// directly comparable class; otherwise they fall back to a per-row loop
// over the same scalar helpers the row interpreter uses (arith, Compare),
// so semantics — null propagation, error messages, NaN ordering — are
// identical by construction. compile.go remains as that reference
// interpreter and as the row-mode path for LevelUDF PREDICT and DML.

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/sql"
)

// Vec is a batch of values produced by a vectorized kernel.
//
// Err/ErrMask carry deferred row-level errors: a data-dependent failure
// (division by zero on row r) does not abort the kernel, it flags row r.
// Elementwise kernels union their operands' flags; AND/OR and CASE discard
// flags exactly on the rows the row interpreter's short circuit would have
// skipped; consumers (filter, project, sort keys, aggregates) surface any
// surviving flag via pendingErr. This reproduces the interpreter's
// guard-then-compute semantics (`b <> 0 AND a/b > 1`) under batch
// evaluation.
type Vec struct {
	Type    ColType
	Const   bool   // one physical element broadcast to the batch length
	Nulls   []bool // parallel null mask; nil means no nulls
	Err     error  // first deferred row error; nil when ErrMask is clear
	ErrMask []bool // rows carrying a deferred error; nil when none
	Ints    []int64
	Floats  []float64
	Strs    []string
	Bools   []bool
}

// vecFunc evaluates a compiled expression over a whole rowset.
type vecFunc func(rs *RowSet) (*Vec, error)

func newVec(t ColType, n int) *Vec {
	v := &Vec{Type: t}
	switch t {
	case TypeInt:
		v.Ints = make([]int64, n)
	case TypeFloat:
		v.Floats = make([]float64, n)
	case TypeString:
		v.Strs = make([]string, n)
	case TypeBool:
		v.Bools = make([]bool, n)
	}
	return v
}

func constVec(val Value) *Vec {
	v := newVec(val.Kind, 1)
	v.Const = true
	if val.Null {
		v.Nulls = []bool{true}
		return v
	}
	switch val.Kind {
	case TypeInt:
		v.Ints[0] = val.I
	case TypeFloat:
		v.Floats[0] = val.F
	case TypeString:
		v.Strs[0] = val.S
	case TypeBool:
		v.Bools[0] = val.B
	}
	return v
}

// colVec wraps a column as a vector without copying.
func colVec(c *Column) *Vec {
	return &Vec{Type: c.Type, Ints: c.Ints, Floats: c.Floats, Strs: c.Strs, Bools: c.Bools}
}

// phys is the physical element count (1 for Const vectors).
func (v *Vec) phys() int {
	if v.Const {
		return 1
	}
	switch v.Type {
	case TypeInt:
		return len(v.Ints)
	case TypeFloat:
		return len(v.Floats)
	case TypeString:
		return len(v.Strs)
	case TypeBool:
		return len(v.Bools)
	}
	return 0
}

// idx maps a logical row to a physical slot.
func (v *Vec) idx(i int) int {
	if v.Const {
		return 0
	}
	return i
}

func (v *Vec) isNull(i int) bool { return v.Nulls != nil && v.Nulls[v.idx(i)] }

// deferErr flags physical slot i with a row-level error (the slot keeps its
// zero value).
func (v *Vec) deferErr(i int, err error) {
	if v.ErrMask == nil {
		v.ErrMask = make([]bool, v.phys())
	}
	v.ErrMask[i] = true
	if v.Err == nil {
		v.Err = err
	}
}

// hasErr reports whether logical row i carries a deferred error.
func (v *Vec) hasErr(i int) bool { return v.Err != nil && v.ErrMask[v.idx(i)] }

// addErrsFrom unions src's deferred-error rows into dst, broadcasting a
// flagged Const operand to every row. Used by elementwise kernels, which —
// like the interpreter — evaluate all their operands for every row.
func (dst *Vec) addErrsFrom(src *Vec) {
	if src == nil || src.Err == nil {
		return
	}
	if src.Const {
		if !src.ErrMask[0] {
			return
		}
		if dst.ErrMask == nil {
			dst.ErrMask = make([]bool, dst.phys())
		}
		for i := range dst.ErrMask {
			dst.ErrMask[i] = true
		}
		if dst.Err == nil {
			dst.Err = src.Err
		}
		return
	}
	any := false
	for i, b := range src.ErrMask {
		if !b {
			continue
		}
		if dst.ErrMask == nil {
			dst.ErrMask = make([]bool, dst.phys())
		}
		j := i
		if dst.Const {
			j = 0
		}
		dst.ErrMask[j] = true
		any = true
	}
	if any && dst.Err == nil {
		dst.Err = src.Err
	}
}

// pendingErr surfaces a deferred row error if any of the n logical rows
// still carries one (a Const flag counts only when n > 0, since zero rows
// means the interpreter would never have evaluated the expression).
func (v *Vec) pendingErr(n int) error {
	if v == nil || v.Err == nil || n == 0 {
		return nil
	}
	for _, b := range v.ErrMask {
		if b {
			return v.Err
		}
	}
	return nil
}

// valueAt boxes logical row i as a Value (fallback paths and group output).
func (v *Vec) valueAt(i int) Value {
	i = v.idx(i)
	if v.Nulls != nil && v.Nulls[i] {
		return NullValue()
	}
	switch v.Type {
	case TypeInt:
		return IntValue(v.Ints[i])
	case TypeFloat:
		return FloatValue(v.Floats[i])
	case TypeString:
		return StringValue(v.Strs[i])
	case TypeBool:
		return BoolValue(v.Bools[i])
	}
	return NullValue()
}

// floatAt reads logical row i as float64 (numeric and bool vectors only).
func (v *Vec) floatAt(i int) float64 {
	i = v.idx(i)
	switch v.Type {
	case TypeInt:
		return float64(v.Ints[i])
	case TypeFloat:
		return v.Floats[i]
	case TypeBool:
		if v.Bools[i] {
			return 1
		}
	}
	return 0
}

// materialize expands a Const vector to n physical elements; non-const
// vectors are returned as-is.
func (v *Vec) materialize(n int) *Vec {
	if !v.Const {
		return v
	}
	out := newVec(v.Type, n)
	if v.Err != nil && v.ErrMask[0] {
		out.Err = v.Err
		out.ErrMask = make([]bool, n)
		for i := range out.ErrMask {
			out.ErrMask[i] = true
		}
	}
	if v.Nulls != nil && v.Nulls[0] {
		out.Nulls = make([]bool, n)
		for i := range out.Nulls {
			out.Nulls[i] = true
		}
		return out
	}
	switch v.Type {
	case TypeInt:
		for i := range out.Ints {
			out.Ints[i] = v.Ints[0]
		}
	case TypeFloat:
		for i := range out.Floats {
			out.Floats[i] = v.Floats[0]
		}
	case TypeString:
		for i := range out.Strs {
			out.Strs[i] = v.Strs[0]
		}
	case TypeBool:
		for i := range out.Bools {
			out.Bools[i] = v.Bools[0]
		}
	}
	return out
}

// toColumn converts the vector into a Column of type t over n logical rows,
// applying the same coercions (and rejections) as Column.Append. Same-typed
// vectors alias their backing storage; null slots already hold zero values.
func (v *Vec) toColumn(t ColType, n int) (Column, error) {
	if err := v.pendingErr(n); err != nil {
		return Column{}, err
	}
	m := v.materialize(n)
	if m.Type == t {
		return Column{Type: t, Ints: m.Ints, Floats: m.Floats, Strs: m.Strs, Bools: m.Bools}, nil
	}
	out := NewColumn(t)
	switch t {
	case TypeInt:
		if m.Type != TypeFloat {
			return Column{}, fmt.Errorf("engine: cannot store %s into int column", m.Type)
		}
		out.Ints = make([]int64, n)
		for i, f := range m.Floats {
			out.Ints[i] = int64(f)
		}
	case TypeFloat:
		switch m.Type {
		case TypeInt:
			out.Floats = make([]float64, n)
			for i, x := range m.Ints {
				out.Floats[i] = float64(x)
			}
		case TypeBool:
			out.Floats = make([]float64, n)
			for i, b := range m.Bools {
				if b && !m.isNull(i) {
					out.Floats[i] = 1
				}
			}
		default:
			return Column{}, fmt.Errorf("engine: cannot store %s into float column", m.Type)
		}
	case TypeString:
		return Column{}, fmt.Errorf("engine: cannot store %s into text column", m.Type)
	case TypeBool:
		return Column{}, fmt.Errorf("engine: cannot store %s into bool column", m.Type)
	}
	return out, nil
}

// setFrom assigns dst[i] = src[j] with the Append coercion matrix; nulls
// transfer to the mask and zero the slot.
func (dst *Vec) setFrom(i int, src *Vec, j int) error {
	if src.isNull(j) {
		if dst.Nulls == nil {
			dst.Nulls = make([]bool, dst.phys())
		}
		dst.Nulls[i] = true
		return nil
	}
	j = src.idx(j)
	switch dst.Type {
	case TypeInt:
		switch src.Type {
		case TypeInt:
			dst.Ints[i] = src.Ints[j]
		case TypeFloat:
			dst.Ints[i] = int64(src.Floats[j])
		default:
			return fmt.Errorf("engine: cannot store %s into int column", src.Type)
		}
	case TypeFloat:
		switch src.Type {
		case TypeInt:
			dst.Floats[i] = float64(src.Ints[j])
		case TypeFloat:
			dst.Floats[i] = src.Floats[j]
		case TypeBool:
			if src.Bools[j] {
				dst.Floats[i] = 1
			}
		default:
			return fmt.Errorf("engine: cannot store %s into float column", src.Type)
		}
	case TypeString:
		if src.Type != TypeString {
			return fmt.Errorf("engine: cannot store %s into text column", src.Type)
		}
		dst.Strs[i] = src.Strs[j]
	case TypeBool:
		if src.Type != TypeBool {
			return fmt.Errorf("engine: cannot store %s into bool column", src.Type)
		}
		dst.Bools[i] = src.Bools[j]
	}
	return nil
}

// truthyMask reduces the vector to a physical-length truth mask (NULL is
// false). The mask is freshly allocated and owned by the caller.
func (v *Vec) truthyMask() []bool {
	return v.truthyMaskInto(make([]bool, v.phys()))
}

// truthyMaskInto is truthyMask writing into a caller-owned buffer of length
// phys() (the pooled-scratch path: appendTrue discards the mask immediately,
// so it borrows one from the morsel pool instead of allocating).
func (v *Vec) truthyMaskInto(m []bool) []bool {
	n := v.phys()
	switch v.Type {
	case TypeBool:
		copy(m, v.Bools[:n])
	case TypeInt:
		for i := 0; i < n; i++ {
			m[i] = v.Ints[i] != 0
		}
	case TypeFloat:
		for i := 0; i < n; i++ {
			m[i] = v.Floats[i] != 0
		}
	case TypeString:
		for i := 0; i < n; i++ {
			m[i] = v.Strs[i] != ""
		}
	}
	if v.Nulls != nil {
		for i := 0; i < n; i++ {
			if v.Nulls[i] {
				m[i] = false
			}
		}
	}
	return m
}

func boolVec(m []bool, konst bool) *Vec { return &Vec{Type: TypeBool, Bools: m, Const: konst} }

// appendTrue appends base+i to sel for every logical row i < n whose truth
// mask entry is set. The truth mask is pooled scratch: it lives only for
// this call.
func appendTrue(sel []int32, v *Vec, n, base int) []int32 {
	mp := getMask(v.phys())
	defer putMask(mp)
	m := v.truthyMaskInto(*mp)
	if v.Const {
		if m[0] {
			for i := 0; i < n; i++ {
				sel = append(sel, int32(base+i))
			}
		}
		return sel
	}
	for i, t := range m {
		if t {
			sel = append(sel, int32(base+i))
		}
	}
	return sel
}

// vecCompareRows orders logical rows a and b of one vector with the scalar
// Compare semantics: NULL sorts first and equals only NULL; numeric kinds
// compare as float64 (so NaN ties with everything).
func vecCompareRows(v *Vec, a, b int) int {
	an, bn := v.isNull(a), v.isNull(b)
	if an || bn {
		switch {
		case an && bn:
			return 0
		case an:
			return -1
		default:
			return 1
		}
	}
	ia, ib := v.idx(a), v.idx(b)
	switch v.Type {
	case TypeInt:
		x, y := float64(v.Ints[ia]), float64(v.Ints[ib])
		switch {
		case x < y:
			return -1
		case x > y:
			return 1
		}
	case TypeFloat:
		x, y := v.Floats[ia], v.Floats[ib]
		switch {
		case x < y:
			return -1
		case x > y:
			return 1
		}
	case TypeString:
		return strings.Compare(v.Strs[ia], v.Strs[ib])
	case TypeBool:
		x, y := v.Bools[ia], v.Bools[ib]
		switch {
		case x == y:
			return 0
		case !x:
			return -1
		default:
			return 1
		}
	}
	return 0
}

// selectFloatCompare builds the selection vector of rows whose score
// satisfies (score op threshold) — the fused-threshold kernel shared with
// the PREDICT operator.
func selectFloatCompare(scores []float64, op string, thr float64) ([]int32, error) {
	sel := make([]int32, 0, len(scores)/4)
	switch op {
	case ">":
		for r, s := range scores {
			if s > thr {
				sel = append(sel, int32(r))
			}
		}
	case ">=":
		for r, s := range scores {
			if s >= thr {
				sel = append(sel, int32(r))
			}
		}
	case "<":
		for r, s := range scores {
			if s < thr {
				sel = append(sel, int32(r))
			}
		}
	case "<=":
		for r, s := range scores {
			if s <= thr {
				sel = append(sel, int32(r))
			}
		}
	case "=":
		for r, s := range scores {
			if s == thr {
				sel = append(sel, int32(r))
			}
		}
	case "<>":
		for r, s := range scores {
			if s != thr {
				sel = append(sel, int32(r))
			}
		}
	default:
		return nil, fmt.Errorf("engine: unsupported fused compare %q", op)
	}
	return sel, nil
}

// litValue materializes a literal as a Value.
func litValue(x *sql.Lit) Value {
	switch x.Kind {
	case sql.LitInt:
		return IntValue(x.I)
	case sql.LitFloat:
		return FloatValue(x.F)
	case sql.LitString:
		return StringValue(x.S)
	case sql.LitBool:
		return BoolValue(x.B)
	}
	return NullValue()
}

// compileVec compiles e against the schema into a batch kernel. Column
// references are resolved at compile time; expressions the vectorizer does
// not specialize (PREDICT in row mode, unknown nodes) fall back to a
// batched loop over the row interpreter.
func compileVec(e sql.Expr, schema Schema, env *compileEnv) (vecFunc, error) {
	switch x := e.(type) {
	case *sql.ColRef:
		idx, err := schema.Resolve(x.Table, x.Name)
		if err != nil {
			return nil, err
		}
		return func(rs *RowSet) (*Vec, error) {
			return colVec(&rs.Cols[idx]), nil
		}, nil

	case *sql.Lit:
		v := constVec(litValue(x))
		return func(rs *RowSet) (*Vec, error) { return v, nil }, nil

	case *sql.Unary:
		return compileVecUnary(x, schema, env)

	case *sql.Binary:
		return compileVecBinary(x, schema, env)

	case *sql.Between:
		return compileVecBetween(x, schema, env)

	case *sql.InList:
		return compileVecInList(x, schema, env)

	case *sql.Like:
		return compileVecLike(x, schema, env)

	case *sql.IsNull:
		inner, err := compileVec(x.X, schema, env)
		if err != nil {
			return nil, err
		}
		not := x.Not
		return func(rs *RowSet) (*Vec, error) {
			v, err := inner(rs)
			if err != nil {
				return nil, err
			}
			m := make([]bool, v.phys())
			if v.Nulls != nil {
				copy(m, v.Nulls[:len(m)])
			}
			if not {
				for i := range m {
					m[i] = !m[i]
				}
			}
			out := boolVec(m, v.Const)
			out.addErrsFrom(v)
			return out, nil
		}, nil

	case *sql.Case:
		return compileVecCase(x, schema, env)

	case *sql.FuncCall:
		return compileVecFunc(x, schema, env)

	case *sql.Interval:
		return nil, fmt.Errorf("engine: INTERVAL is only valid in date arithmetic")

	case *sql.Exists, *sql.Subquery:
		return nil, fmt.Errorf("engine: subqueries are not executable")
	}
	// PREDICT (row-mode UDF path) and anything else: batched row loop.
	return fallbackVec(e, schema, env)
}

// fallbackVec wraps the row interpreter in a batch loop. PREDICT in scalar
// position deliberately stays on this path: its per-row one-batch scoring is
// the Figure-4 UDF baseline whose cost profile must be preserved.
func fallbackVec(e sql.Expr, schema Schema, env *compileEnv) (vecFunc, error) {
	fn, err := compileExpr(e, schema, env)
	if err != nil {
		return nil, err
	}
	t, err := inferType(e, schema)
	if err != nil {
		return nil, err
	}
	return func(rs *RowSet) (*Vec, error) {
		out := newVec(t, rs.N)
		for r := 0; r < rs.N; r++ {
			v, err := fn(rs, r)
			if err != nil {
				return nil, err
			}
			if err := out.setFromValue(r, v); err != nil {
				return nil, err
			}
		}
		return out, nil
	}, nil
}

// setFromValue assigns one boxed value into slot i with Append coercions.
func (dst *Vec) setFromValue(i int, v Value) error {
	if v.Null {
		if dst.Nulls == nil {
			dst.Nulls = make([]bool, dst.phys())
		}
		dst.Nulls[i] = true
		return nil
	}
	switch dst.Type {
	case TypeInt:
		switch v.Kind {
		case TypeInt:
			dst.Ints[i] = v.I
		case TypeFloat:
			dst.Ints[i] = int64(v.F)
		default:
			return fmt.Errorf("engine: cannot store %s into int column", v.Kind)
		}
	case TypeFloat:
		f, err := v.AsFloat()
		if err != nil {
			return fmt.Errorf("engine: cannot store %s into float column", v.Kind)
		}
		dst.Floats[i] = f
	case TypeString:
		if v.Kind != TypeString {
			return fmt.Errorf("engine: cannot store %s into text column", v.Kind)
		}
		dst.Strs[i] = v.S
	case TypeBool:
		if v.Kind != TypeBool {
			return fmt.Errorf("engine: cannot store %s into bool column", v.Kind)
		}
		dst.Bools[i] = v.B
	}
	return nil
}

func compileVecUnary(x *sql.Unary, schema Schema, env *compileEnv) (vecFunc, error) {
	inner, err := compileVec(x.X, schema, env)
	if err != nil {
		return nil, err
	}
	if x.Op == "NOT" {
		return func(rs *RowSet) (*Vec, error) {
			v, err := inner(rs)
			if err != nil {
				return nil, err
			}
			m := v.truthyMask()
			for i := range m {
				m[i] = !m[i]
			}
			out := boolVec(m, v.Const)
			out.addErrsFrom(v)
			return out, nil
		}, nil
	}
	return func(rs *RowSet) (*Vec, error) {
		v, err := inner(rs)
		if err != nil {
			return nil, err
		}
		n := v.phys()
		switch v.Type {
		case TypeInt:
			out := newVec(TypeInt, n)
			out.Const = v.Const
			for i := 0; i < n; i++ {
				out.Ints[i] = -v.Ints[i]
			}
			// Negating NULL yields a non-null zero in the row interpreter
			// (NullValue has int kind); mirror that.
			if v.Nulls != nil {
				for i := 0; i < n; i++ {
					if v.Nulls[i] {
						out.Ints[i] = 0
					}
				}
			}
			out.addErrsFrom(v)
			return out, nil
		case TypeFloat:
			out := newVec(TypeFloat, n)
			out.Const = v.Const
			for i := 0; i < n; i++ {
				out.Floats[i] = -v.Floats[i]
			}
			if v.Nulls != nil {
				for i := 0; i < n; i++ {
					if v.Nulls[i] {
						out.Floats[i] = 0
					}
				}
			}
			out.addErrsFrom(v)
			return out, nil
		}
		if rs.N == 0 {
			return newVec(v.Type, 0), nil
		}
		return nil, fmt.Errorf("engine: cannot negate %s", v.Type)
	}, nil
}

func compileVecBinary(x *sql.Binary, schema Schema, env *compileEnv) (vecFunc, error) {
	// Date +/- INTERVAL: constant shift over a date-string vector.
	if iv, ok := x.R.(*sql.Interval); ok && (x.Op == "+" || x.Op == "-") {
		inner, err := compileVec(x.L, schema, env)
		if err != nil {
			return nil, err
		}
		n := 0
		if _, err := fmt.Sscanf(iv.Value, "%d", &n); err != nil {
			return nil, fmt.Errorf("engine: bad interval value %q", iv.Value)
		}
		if x.Op == "-" {
			n = -n
		}
		unit := iv.Unit
		return func(rs *RowSet) (*Vec, error) {
			v, err := inner(rs)
			if err != nil {
				return nil, err
			}
			p := v.phys()
			if v.Type != TypeString {
				if rs.N == 0 {
					return newVec(TypeString, 0), nil
				}
				return nil, fmt.Errorf("engine: interval arithmetic requires a date string")
			}
			out := newVec(TypeString, p)
			out.Const = v.Const
			for i := 0; i < p; i++ {
				if v.Nulls != nil && v.Nulls[i] {
					return nil, fmt.Errorf("engine: interval arithmetic requires a date string")
				}
				d, err := AddInterval(v.Strs[i], n, unit)
				if err != nil {
					return nil, err
				}
				out.Strs[i] = d
			}
			out.addErrsFrom(v)
			return out, nil
		}, nil
	}

	lf, err := compileVec(x.L, schema, env)
	if err != nil {
		return nil, err
	}
	rf, err := compileVec(x.R, schema, env)
	if err != nil {
		return nil, err
	}
	op := x.Op
	switch op {
	case "AND", "OR":
		isAnd := op == "AND"
		return func(rs *RowSet) (*Vec, error) {
			lv, err := lf(rs)
			if err != nil {
				return nil, err
			}
			lm := lv.truthyMask()
			if lv.Const {
				if lv.hasErr(0) {
					// Left errors on every row; the interpreter never
					// reaches the right side.
					out := boolVec([]bool{false}, true)
					out.addErrsFrom(lv)
					return out, nil
				}
				// Mirror the row interpreter's short circuit.
				if isAnd && !lm[0] {
					return boolVec([]bool{false}, true), nil
				}
				if !isAnd && lm[0] {
					return boolVec([]bool{true}, true), nil
				}
				rv, err := rf(rs)
				if err != nil {
					return nil, err
				}
				out := boolVec(rv.truthyMask(), rv.Const)
				out.addErrsFrom(rv)
				return out, nil
			}
			rv, err := rf(rs)
			if err != nil {
				return nil, err
			}
			rm := rv.truthyMask()
			// Right-side deferred errors count only on rows where the
			// interpreter's short circuit would evaluate the right side
			// (left truthy for AND, left non-truthy for OR). Gate before
			// the value combine overwrites lm.
			var gatedErrs []bool
			if rv.Err != nil {
				gatedErrs = make([]bool, len(lm))
				for i := range lm {
					gate := lm[i]
					if !isAnd {
						gate = !gate
					}
					if gate && rv.ErrMask[rv.idx(i)] {
						gatedErrs[i] = true
					}
				}
			}
			if rv.Const {
				c := rm[0]
				if isAnd {
					if !c {
						for i := range lm {
							lm[i] = false
						}
					}
				} else if c {
					for i := range lm {
						lm[i] = true
					}
				}
			} else if isAnd {
				for i := range lm {
					lm[i] = lm[i] && rm[i]
				}
			} else {
				for i := range lm {
					lm[i] = lm[i] || rm[i]
				}
			}
			out := boolVec(lm, false)
			out.addErrsFrom(lv) // left always evaluated
			if gatedErrs != nil {
				for i, b := range gatedErrs {
					if b {
						out.deferErr(i, rv.Err)
					}
				}
			}
			return out, nil
		}, nil

	case "=", "<>", "<", "<=", ">", ">=":
		return func(rs *RowSet) (*Vec, error) {
			lv, err := lf(rs)
			if err != nil {
				return nil, err
			}
			rv, err := rf(rs)
			if err != nil {
				return nil, err
			}
			return cmpVec(op, lv, rv, rs.N)
		}, nil

	case "+", "-", "*", "/", "%":
		return func(rs *RowSet) (*Vec, error) {
			lv, err := lf(rs)
			if err != nil {
				return nil, err
			}
			rv, err := rf(rs)
			if err != nil {
				return nil, err
			}
			return arithVec(op, lv, rv, rs.N)
		}, nil

	case "||":
		return func(rs *RowSet) (*Vec, error) {
			lv, err := lf(rs)
			if err != nil {
				return nil, err
			}
			rv, err := rf(rs)
			if err != nil {
				return nil, err
			}
			konst := lv.Const && rv.Const
			n := rs.N
			if konst {
				n = 1
			}
			out := newVec(TypeString, n)
			out.Const = konst
			for i := 0; i < n; i++ {
				out.Strs[i] = lv.valueAt(i).String() + rv.valueAt(i).String()
			}
			out.addErrsFrom(lv)
			out.addErrsFrom(rv)
			return out, nil
		}, nil
	}
	return nil, fmt.Errorf("engine: unsupported operator %q", op)
}

// number covers the element types of numeric vectors.
type number interface{ ~int64 | ~float64 }

// Deferred data-dependent errors (identical text to the interpreter's).
var (
	errDivZero    = fmt.Errorf("engine: division by zero")
	errModuloZero = fmt.Errorf("engine: modulo by zero")
)

// cmpVec compares two vectors with the row interpreter's semantics: NULL on
// either side yields false; numeric kinds compare as float64 (so NaN is
// "equal" to everything, as in Compare); mismatched classes error.
func cmpVec(op string, lv, rv *Vec, n int) (*Vec, error) {
	konst := lv.Const && rv.Const
	ln := isNumeric(lv.Type)
	rn := isNumeric(rv.Type)
	fast := lv.Nulls == nil && rv.Nulls == nil &&
		((ln && rn) || (lv.Type == TypeString && rv.Type == TypeString))
	if !fast {
		return cmpVecFallback(op, lv, rv, n, konst)
	}
	pn := n
	if konst {
		pn = 1
	}
	dst := make([]bool, pn)
	if ln {
		switch {
		case lv.Type == TypeInt && rv.Type == TypeInt:
			cmpNum(op, lv.Const, rv.Const, lv.Ints, rv.Ints, dst)
		case lv.Type == TypeInt:
			cmpNum(op, lv.Const, rv.Const, lv.Ints, rv.Floats, dst)
		case rv.Type == TypeInt:
			cmpNum(op, lv.Const, rv.Const, lv.Floats, rv.Ints, dst)
		default:
			cmpNum(op, lv.Const, rv.Const, lv.Floats, rv.Floats, dst)
		}
	} else {
		cmpStr(op, lv.Const, rv.Const, lv.Strs, rv.Strs, dst)
	}
	out := boolVec(dst, konst)
	out.addErrsFrom(lv)
	out.addErrsFrom(rv)
	return out, nil
}

// cmpNum compares numeric slices as float64 — exactly what Compare does for
// numeric kinds, including its NaN behavior (NaN neither < nor >, so "=",
// "<=", ">=" hold against anything). Const operands broadcast via stride 0.
func cmpNum[A, B number](op string, lc, rc bool, a []A, b []B, dst []bool) {
	sa, sb := 1, 1
	if lc {
		sa = 0
	}
	if rc {
		sb = 0
	}
	ia, ib := 0, 0
	switch op {
	case "=":
		for i := range dst {
			x, y := float64(a[ia]), float64(b[ib])
			dst[i] = !(x < y) && !(x > y)
			ia += sa
			ib += sb
		}
	case "<>":
		for i := range dst {
			x, y := float64(a[ia]), float64(b[ib])
			dst[i] = x < y || x > y
			ia += sa
			ib += sb
		}
	case "<":
		for i := range dst {
			dst[i] = float64(a[ia]) < float64(b[ib])
			ia += sa
			ib += sb
		}
	case "<=":
		for i := range dst {
			dst[i] = !(float64(a[ia]) > float64(b[ib]))
			ia += sa
			ib += sb
		}
	case ">":
		for i := range dst {
			dst[i] = float64(a[ia]) > float64(b[ib])
			ia += sa
			ib += sb
		}
	case ">=":
		for i := range dst {
			dst[i] = !(float64(a[ia]) < float64(b[ib]))
			ia += sa
			ib += sb
		}
	}
}

func cmpStr(op string, lc, rc bool, a, b []string, dst []bool) {
	sa, sb := 1, 1
	if lc {
		sa = 0
	}
	if rc {
		sb = 0
	}
	ia, ib := 0, 0
	switch op {
	case "=":
		for i := range dst {
			dst[i] = a[ia] == b[ib]
			ia += sa
			ib += sb
		}
	case "<>":
		for i := range dst {
			dst[i] = a[ia] != b[ib]
			ia += sa
			ib += sb
		}
	case "<":
		for i := range dst {
			dst[i] = a[ia] < b[ib]
			ia += sa
			ib += sb
		}
	case "<=":
		for i := range dst {
			dst[i] = a[ia] <= b[ib]
			ia += sa
			ib += sb
		}
	case ">":
		for i := range dst {
			dst[i] = a[ia] > b[ib]
			ia += sa
			ib += sb
		}
	case ">=":
		for i := range dst {
			dst[i] = a[ia] >= b[ib]
			ia += sa
			ib += sb
		}
	}
}

// cmpVecFallback handles null-bearing or mixed-class operands one row at a
// time via the scalar Compare, mirroring the interpreter exactly.
func cmpVecFallback(op string, lv, rv *Vec, n int, konst bool) (*Vec, error) {
	if konst {
		n = 1
	}
	dst := make([]bool, n)
	for i := 0; i < n; i++ {
		a := lv.valueAt(i)
		b := rv.valueAt(i)
		if a.Null || b.Null {
			continue
		}
		c, err := Compare(a, b)
		if err != nil {
			return nil, err
		}
		switch op {
		case "=":
			dst[i] = c == 0
		case "<>":
			dst[i] = c != 0
		case "<":
			dst[i] = c < 0
		case "<=":
			dst[i] = c <= 0
		case ">":
			dst[i] = c > 0
		case ">=":
			dst[i] = c >= 0
		}
	}
	out := boolVec(dst, konst)
	out.addErrsFrom(lv)
	out.addErrsFrom(rv)
	return out, nil
}

// arithVec evaluates lv op rv. Both-int (except "/") stays int64; anything
// else numeric runs in float64, mirroring arith.
func arithVec(op string, lv, rv *Vec, n int) (*Vec, error) {
	konst := lv.Const && rv.Const
	pn := n
	if konst {
		pn = 1
	}
	if lv.Nulls != nil || rv.Nulls != nil ||
		!numericOrBool(lv.Type) || !numericOrBool(rv.Type) {
		return arithVecFallback(op, lv, rv, pn, konst)
	}
	if lv.Type == TypeInt && rv.Type == TypeInt && op != "/" {
		out := newVec(TypeInt, pn)
		out.Const = konst
		if err := arithInt(op, lv.Const, rv.Const, lv.Ints, rv.Ints, out); err != nil {
			return nil, err
		}
		out.addErrsFrom(lv)
		out.addErrsFrom(rv)
		return out, nil
	}
	out := newVec(TypeFloat, pn)
	out.Const = konst
	var err error
	switch {
	case lv.Type != TypeFloat && rv.Type != TypeFloat:
		err = arithFloat(op, lv.Const, rv.Const, intsOf(lv), intsOf(rv), out)
	case lv.Type != TypeFloat:
		err = arithFloat(op, lv.Const, rv.Const, intsOf(lv), rv.Floats, out)
	case rv.Type != TypeFloat:
		err = arithFloat(op, lv.Const, rv.Const, lv.Floats, intsOf(rv), out)
	default:
		err = arithFloat(op, lv.Const, rv.Const, lv.Floats, rv.Floats, out)
	}
	if err != nil {
		return nil, err
	}
	out.addErrsFrom(lv)
	out.addErrsFrom(rv)
	return out, nil
}

func numericOrBool(t ColType) bool { return t == TypeInt || t == TypeFloat || t == TypeBool }

// intsOf views an int or bool vector as []int64 (bools convert, 0/1).
func intsOf(v *Vec) []int64 {
	if v.Type == TypeInt {
		return v.Ints
	}
	out := make([]int64, len(v.Bools))
	for i, b := range v.Bools {
		if b {
			out[i] = 1
		}
	}
	return out
}

func arithInt(op string, lc, rc bool, a, b []int64, out *Vec) error {
	dst := out.Ints
	sa, sb := 1, 1
	if lc {
		sa = 0
	}
	if rc {
		sb = 0
	}
	ia, ib := 0, 0
	switch op {
	case "+":
		for i := range dst {
			dst[i] = a[ia] + b[ib]
			ia += sa
			ib += sb
		}
	case "-":
		for i := range dst {
			dst[i] = a[ia] - b[ib]
			ia += sa
			ib += sb
		}
	case "*":
		for i := range dst {
			dst[i] = a[ia] * b[ib]
			ia += sa
			ib += sb
		}
	case "%":
		for i := range dst {
			if y := b[ib]; y != 0 {
				dst[i] = a[ia] % y
			} else {
				// Deferred: an enclosing guard may discard this row.
				out.deferErr(i, errModuloZero)
			}
			ia += sa
			ib += sb
		}
	default:
		return fmt.Errorf("engine: unsupported arithmetic %q", op)
	}
	return nil
}

func arithFloat[A, B number](op string, lc, rc bool, a []A, b []B, out *Vec) error {
	dst := out.Floats
	sa, sb := 1, 1
	if lc {
		sa = 0
	}
	if rc {
		sb = 0
	}
	ia, ib := 0, 0
	switch op {
	case "+":
		for i := range dst {
			dst[i] = float64(a[ia]) + float64(b[ib])
			ia += sa
			ib += sb
		}
	case "-":
		for i := range dst {
			dst[i] = float64(a[ia]) - float64(b[ib])
			ia += sa
			ib += sb
		}
	case "*":
		for i := range dst {
			dst[i] = float64(a[ia]) * float64(b[ib])
			ia += sa
			ib += sb
		}
	case "/":
		for i := range dst {
			if y := float64(b[ib]); y != 0 {
				dst[i] = float64(a[ia]) / y
			} else {
				// Deferred: an enclosing guard may discard this row.
				out.deferErr(i, errDivZero)
			}
			ia += sa
			ib += sb
		}
	case "%":
		for i := range dst {
			dst[i] = math.Mod(float64(a[ia]), float64(b[ib]))
			ia += sa
			ib += sb
		}
	default:
		return fmt.Errorf("engine: unsupported arithmetic %q", op)
	}
	return nil
}

// arithVecFallback routes null-bearing or oddly-typed operands through the
// scalar arith helper, one row at a time.
func arithVecFallback(op string, lv, rv *Vec, pn int, konst bool) (*Vec, error) {
	t := TypeFloat
	if lv.Type == TypeInt && rv.Type == TypeInt && op != "/" {
		t = TypeInt
	}
	out := newVec(t, pn)
	out.Const = konst
	for i := 0; i < pn; i++ {
		v, err := arith(op, lv.valueAt(i), rv.valueAt(i))
		if err != nil {
			// Data-dependent failure: flag the row instead of aborting, so
			// an enclosing guard (AND/OR/CASE) can still discard it.
			out.deferErr(i, err)
			continue
		}
		if err := out.setFromValue(i, v); err != nil {
			return nil, err
		}
	}
	out.addErrsFrom(lv)
	out.addErrsFrom(rv)
	return out, nil
}

func compileVecBetween(x *sql.Between, schema Schema, env *compileEnv) (vecFunc, error) {
	xf, err := compileVec(x.X, schema, env)
	if err != nil {
		return nil, err
	}
	lof, err := compileVec(x.Lo, schema, env)
	if err != nil {
		return nil, err
	}
	hif, err := compileVec(x.Hi, schema, env)
	if err != nil {
		return nil, err
	}
	not := x.Not
	return func(rs *RowSet) (*Vec, error) {
		v, err := xf(rs)
		if err != nil {
			return nil, err
		}
		lo, err := lof(rs)
		if err != nil {
			return nil, err
		}
		hi, err := hif(rs)
		if err != nil {
			return nil, err
		}
		konst := v.Const && lo.Const && hi.Const
		pn := rs.N
		if konst {
			pn = 1
		}
		dst := make([]bool, pn)
		if v.Nulls == nil && lo.Nulls == nil && hi.Nulls == nil &&
			isNumeric(v.Type) && isNumeric(lo.Type) && isNumeric(hi.Type) {
			// c1 >= 0 && c2 <= 0 under float Compare semantics is
			// !(v < lo) && !(v > hi); NaN falls in every range.
			for i := 0; i < pn; i++ {
				f := v.floatAt(i)
				in := !(f < lo.floatAt(i)) && !(f > hi.floatAt(i))
				dst[i] = in != not
			}
			out := boolVec(dst, konst)
			out.addErrsFrom(v)
			out.addErrsFrom(lo)
			out.addErrsFrom(hi)
			return out, nil
		}
		for i := 0; i < pn; i++ {
			c1, err := Compare(v.valueAt(i), lo.valueAt(i))
			if err != nil {
				return nil, err
			}
			c2, err := Compare(v.valueAt(i), hi.valueAt(i))
			if err != nil {
				return nil, err
			}
			in := c1 >= 0 && c2 <= 0
			dst[i] = in != not
		}
		out := boolVec(dst, konst)
		out.addErrsFrom(v)
		out.addErrsFrom(lo)
		out.addErrsFrom(hi)
		return out, nil
	}, nil
}

func compileVecInList(x *sql.InList, schema Schema, env *compileEnv) (vecFunc, error) {
	if x.Sub != nil {
		return nil, fmt.Errorf("engine: IN subqueries are not executable")
	}
	xf, err := compileVec(x.X, schema, env)
	if err != nil {
		return nil, err
	}
	elems := make([]vecFunc, len(x.List))
	for i, e := range x.List {
		ef, err := compileVec(e, schema, env)
		if err != nil {
			return nil, err
		}
		elems[i] = ef
	}
	not := x.Not
	return func(rs *RowSet) (*Vec, error) {
		v, err := xf(rs)
		if err != nil {
			return nil, err
		}
		evs := make([]*Vec, len(elems))
		konst := v.Const
		allConstStr := v.Type == TypeString && v.Nulls == nil
		for i, ef := range elems {
			ev, err := ef(rs)
			if err != nil {
				return nil, err
			}
			evs[i] = ev
			konst = konst && ev.Const
			if !ev.Const || ev.Type != TypeString || ev.Nulls != nil {
				allConstStr = false
			}
		}
		pn := rs.N
		if konst {
			pn = 1
		}
		dst := make([]bool, pn)
		if allConstStr && !v.Const {
			// Common shape: text column IN ('a', 'b', ...).
			list := make([]string, len(evs))
			for i, ev := range evs {
				list[i] = ev.Strs[0]
			}
			for i := 0; i < pn; i++ {
				s := v.Strs[i]
				hit := false
				for _, e := range list {
					if s == e {
						hit = true
						break
					}
				}
				dst[i] = hit != not
			}
			out := boolVec(dst, false)
			out.addErrsFrom(v)
			return out, nil
		}
		for i := 0; i < pn; i++ {
			a := v.valueAt(i)
			hit := false
			for _, ev := range evs {
				// Mirror the interpreter: comparison errors mean "no match".
				if c, err := Compare(a, ev.valueAt(i)); err == nil && c == 0 {
					hit = true
					break
				}
			}
			dst[i] = hit != not
		}
		out := boolVec(dst, konst)
		out.addErrsFrom(v)
		for _, ev := range evs {
			out.addErrsFrom(ev)
		}
		return out, nil
	}, nil
}

func compileVecLike(x *sql.Like, schema Schema, env *compileEnv) (vecFunc, error) {
	xf, err := compileVec(x.X, schema, env)
	if err != nil {
		return nil, err
	}
	pf, err := compileVec(x.Pattern, schema, env)
	if err != nil {
		return nil, err
	}
	not := x.Not
	return func(rs *RowSet) (*Vec, error) {
		v, err := xf(rs)
		if err != nil {
			return nil, err
		}
		p, err := pf(rs)
		if err != nil {
			return nil, err
		}
		if v.Type != TypeString || p.Type != TypeString {
			if rs.N == 0 {
				return boolVec(nil, false), nil
			}
			return nil, fmt.Errorf("engine: LIKE requires strings")
		}
		konst := v.Const && p.Const
		pn := rs.N
		if konst {
			pn = 1
		}
		dst := make([]bool, pn)
		for i := 0; i < pn; i++ {
			m := likeMatch(v.Strs[v.idx(i)], p.Strs[p.idx(i)])
			dst[i] = m != not
		}
		out := boolVec(dst, konst)
		out.addErrsFrom(v)
		out.addErrsFrom(p)
		return out, nil
	}, nil
}

func compileVecCase(x *sql.Case, schema Schema, env *compileEnv) (vecFunc, error) {
	var operand vecFunc
	var err error
	if x.Operand != nil {
		operand, err = compileVec(x.Operand, schema, env)
		if err != nil {
			return nil, err
		}
	}
	conds := make([]vecFunc, len(x.Whens))
	thens := make([]vecFunc, len(x.Whens))
	for i, w := range x.Whens {
		conds[i], err = compileVec(w.Cond, schema, env)
		if err != nil {
			return nil, err
		}
		thens[i], err = compileVec(w.Then, schema, env)
		if err != nil {
			return nil, err
		}
	}
	var elseFn vecFunc
	if x.Else != nil {
		elseFn, err = compileVec(x.Else, schema, env)
		if err != nil {
			return nil, err
		}
	}
	outType, err := inferType(x, schema)
	if err != nil {
		return nil, err
	}
	return func(rs *RowSet) (*Vec, error) {
		n := rs.N
		var opv *Vec
		if operand != nil {
			v, err := operand(rs)
			if err != nil {
				return nil, err
			}
			opv = v
		}
		condVecs := make([]*Vec, len(conds))
		condMasks := make([][]bool, len(conds))
		thenVecs := make([]*Vec, len(thens))
		for i := range conds {
			cv, err := conds[i](rs)
			if err != nil {
				return nil, err
			}
			condVecs[i] = cv
			if opv != nil {
				m := make([]bool, n)
				for r := 0; r < n; r++ {
					c, err := Compare(opv.valueAt(r), cv.valueAt(r))
					if err != nil {
						return nil, err
					}
					m[r] = c == 0
				}
				condMasks[i] = m
			} else {
				m := cv.truthyMask()
				if cv.Const {
					e := make([]bool, n)
					if m[0] {
						for r := range e {
							e[r] = true
						}
					}
					m = e
				}
				condMasks[i] = m
			}
			tv, err := thens[i](rs)
			if err != nil {
				return nil, err
			}
			thenVecs[i] = tv
		}
		var elseVec *Vec
		if elseFn != nil {
			ev, err := elseFn(rs)
			if err != nil {
				return nil, err
			}
			elseVec = ev
		}
		// Per-row branch selection in the interpreter's evaluation order:
		// a deferred error counts only on the inputs the interpreter would
		// actually touch for that row (operand, conditions up to the first
		// match, the selected branch). Everything else is discarded —
		// preserving the guard-then-compute idiom
		// (CASE WHEN b = 0 THEN 0 ELSE a / b END).
		out := newVec(outType, n)
	rows:
		for r := 0; r < n; r++ {
			if opv != nil && opv.hasErr(r) {
				out.deferErr(r, opv.Err)
				continue
			}
			for i := range condMasks {
				if condVecs[i].hasErr(r) {
					out.deferErr(r, condVecs[i].Err)
					continue rows
				}
				if condMasks[i][r] {
					if thenVecs[i].hasErr(r) {
						out.deferErr(r, thenVecs[i].Err)
						continue rows
					}
					if err := out.setFrom(r, thenVecs[i], r); err != nil {
						return nil, err
					}
					continue rows
				}
			}
			if elseVec != nil {
				if elseVec.hasErr(r) {
					out.deferErr(r, elseVec.Err)
					continue
				}
				if err := out.setFrom(r, elseVec, r); err != nil {
					return nil, err
				}
				continue
			}
			if out.Nulls == nil {
				out.Nulls = make([]bool, n)
			}
			out.Nulls[r] = true
		}
		return out, nil
	}, nil
}

func compileVecFunc(x *sql.FuncCall, schema Schema, env *compileEnv) (vecFunc, error) {
	switch x.Name {
	case "count", "sum", "avg", "min", "max":
		return nil, fmt.Errorf("engine: aggregate %s in scalar context", x.Name)
	}
	args := make([]vecFunc, len(x.Args))
	for i, a := range x.Args {
		af, err := compileVec(a, schema, env)
		if err != nil {
			return nil, err
		}
		args[i] = af
	}
	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("engine: %s expects %d arguments, got %d", x.Name, n, len(args))
		}
		return nil
	}
	// strAt mirrors Value.S access: non-string values read as "".
	strAt := func(v *Vec, i int) string {
		if v.Type != TypeString {
			return ""
		}
		return v.Strs[v.idx(i)]
	}
	switch x.Name {
	case "substring":
		if len(args) != 2 && len(args) != 3 {
			return nil, fmt.Errorf("engine: substring expects 2 or 3 arguments")
		}
		return func(rs *RowSet) (*Vec, error) {
			sv, err := args[0](rs)
			if err != nil {
				return nil, err
			}
			fromV, err := args[1](rs)
			if err != nil {
				return nil, err
			}
			var lenV *Vec
			if len(args) == 3 {
				lenV, err = args[2](rs)
				if err != nil {
					return nil, err
				}
			}
			intArg := func(v *Vec, i int) int {
				j := v.idx(i)
				if v.Type == TypeFloat {
					return int(v.Floats[j])
				}
				if v.Type == TypeInt {
					return int(v.Ints[j])
				}
				return 0
			}
			out := newVec(TypeString, rs.N)
			for i := 0; i < rs.N; i++ {
				s := strAt(sv, i)
				start := intArg(fromV, i) - 1 // SQL is 1-based
				if start < 0 {
					start = 0
				}
				if start > len(s) {
					start = len(s)
				}
				end := len(s)
				if lenV != nil {
					if l := intArg(lenV, i); start+l < end {
						end = start + l
					}
					if end < start {
						end = start // negative length yields the empty string
					}
				}
				out.Strs[i] = s[start:end]
			}
			out.addErrsFrom(sv)
			out.addErrsFrom(fromV)
			out.addErrsFrom(lenV)
			return out, nil
		}, nil
	case "length":
		if err := need(1); err != nil {
			return nil, err
		}
		return func(rs *RowSet) (*Vec, error) {
			v, err := args[0](rs)
			if err != nil {
				return nil, err
			}
			out := newVec(TypeInt, v.phys())
			out.Const = v.Const
			if v.Type == TypeString {
				for i := range out.Ints {
					out.Ints[i] = int64(len(v.Strs[i]))
				}
			}
			out.addErrsFrom(v)
			return out, nil
		}, nil
	case "upper", "lower":
		if err := need(1); err != nil {
			return nil, err
		}
		up := x.Name == "upper"
		return func(rs *RowSet) (*Vec, error) {
			v, err := args[0](rs)
			if err != nil {
				return nil, err
			}
			out := newVec(TypeString, v.phys())
			out.Const = v.Const
			if v.Type == TypeString {
				for i := range out.Strs {
					if up {
						out.Strs[i] = strings.ToUpper(v.Strs[i])
					} else {
						out.Strs[i] = strings.ToLower(v.Strs[i])
					}
				}
			}
			out.addErrsFrom(v)
			return out, nil
		}, nil
	case "abs":
		if err := need(1); err != nil {
			return nil, err
		}
		return func(rs *RowSet) (*Vec, error) {
			v, err := args[0](rs)
			if err != nil {
				return nil, err
			}
			p := v.phys()
			switch v.Type {
			case TypeInt:
				out := newVec(TypeInt, p)
				out.Const = v.Const
				out.Nulls = v.Nulls
				for i := 0; i < p; i++ {
					if x := v.Ints[i]; x < 0 {
						out.Ints[i] = -x
					} else {
						out.Ints[i] = x
					}
				}
				out.addErrsFrom(v)
				return out, nil
			case TypeFloat:
				out := newVec(TypeFloat, p)
				out.Const = v.Const
				out.Nulls = v.Nulls
				for i := 0; i < p; i++ {
					out.Floats[i] = math.Abs(v.Floats[i])
				}
				out.addErrsFrom(v)
				return out, nil
			}
			if rs.N == 0 {
				return newVec(v.Type, 0), nil
			}
			return nil, fmt.Errorf("engine: abs of %s", v.Type)
		}, nil
	case "round":
		if err := need(1); err != nil {
			return nil, err
		}
		return func(rs *RowSet) (*Vec, error) {
			v, err := args[0](rs)
			if err != nil {
				return nil, err
			}
			if !numericOrBool(v.Type) {
				if rs.N == 0 {
					return newVec(TypeFloat, 0), nil
				}
				return nil, fmt.Errorf("engine: %s is not numeric", v.Type)
			}
			p := v.phys()
			out := newVec(TypeFloat, p)
			out.Const = v.Const
			for i := 0; i < p; i++ {
				out.Floats[i] = math.Round(v.floatAt(i))
			}
			out.addErrsFrom(v)
			return out, nil
		}, nil
	}
	return nil, fmt.Errorf("engine: unknown function %q", x.Name)
}
