package engine

import (
	"strings"
	"testing"
)

func TestTimeTravelSelect(t *testing.T) {
	db := NewDB()
	if _, err := db.Exec("CREATE TABLE t (a int)"); err != nil {
		t.Fatal(err)
	}
	tab, _ := db.Table("t")
	// Version 0: empty. Each insert bumps the version.
	for i := 1; i <= 3; i++ {
		if _, err := db.Exec("INSERT INTO t VALUES (" + strings.Repeat("1", i) + ")"); err != nil {
			t.Fatal(err)
		}
	}
	if tab.Version() != 3 {
		t.Fatalf("version = %d", tab.Version())
	}
	// Current read sees 3 rows.
	res, err := db.Exec("SELECT count(*) AS n FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0] != int64(3) {
		t.Fatalf("current rows = %v", res.Rows[0][0])
	}
	// Time travel to each retained version.
	for v, want := range map[string]int64{"0": 0, "1": 1, "2": 2, "3": 3} {
		res, err := db.Exec("SELECT count(*) AS n FROM t VERSION " + v)
		if err != nil {
			t.Fatalf("version %s: %v", v, err)
		}
		if res.Rows[0][0] != want {
			t.Errorf("version %s rows = %v, want %d", v, res.Rows[0][0], want)
		}
	}
}

func TestTimeTravelSeesPreUpdateValues(t *testing.T) {
	db := NewDB()
	if _, err := db.Exec("CREATE TABLE t (a int, b float)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO t VALUES (1, 10.0)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("UPDATE t SET b = 99.0 WHERE a = 1"); err != nil {
		t.Fatal(err)
	}
	res, err := db.Exec("SELECT b FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0] != 99.0 {
		t.Fatalf("current b = %v", res.Rows[0][0])
	}
	// Version 1 (after insert, before update) still shows the old value.
	res, err = db.Exec("SELECT b FROM t VERSION 1")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0] != 10.0 {
		t.Errorf("historical b = %v, want 10", res.Rows[0][0])
	}
}

func TestTimeTravelRetentionWindow(t *testing.T) {
	db := NewDB()
	if _, err := db.Exec("CREATE TABLE t (a int)"); err != nil {
		t.Fatal(err)
	}
	tab, _ := db.Table("t")
	tab.SetRetention(2)
	for i := 0; i < 5; i++ {
		if _, err := db.Exec("INSERT INTO t VALUES (1)"); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.Exec("SELECT count(*) AS n FROM t VERSION 0"); err == nil {
		t.Error("evicted version should error")
	}
	versions := tab.RetainedVersions()
	if len(versions) != 2 || versions[0] != 3 || versions[1] != 4 {
		t.Errorf("retained = %v, want [3 4]", versions)
	}
	if _, err := db.Exec("SELECT count(*) AS n FROM t VERSION 4"); err != nil {
		t.Errorf("retained version failed: %v", err)
	}
	if _, err := db.Exec("SELECT count(*) AS n FROM t VERSION 99"); err == nil {
		t.Error("future version should error")
	}
}

func TestTimeTravelDelete(t *testing.T) {
	db := newTestDB(t) // 6 orders, version 1 (bulk load)
	tab, _ := db.Table("orders")
	v := tab.Version()
	if _, err := db.Exec("DELETE FROM orders WHERE region = 'us'"); err != nil {
		t.Fatal(err)
	}
	res, err := db.Exec("SELECT count(*) AS n FROM orders")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0] != int64(3) {
		t.Fatalf("after delete = %v", res.Rows[0][0])
	}
	// The pre-delete snapshot still shows all six rows.
	res, err = db.Exec("SELECT count(*) AS n FROM orders VERSION " + itoa64(v))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0] != int64(6) {
		t.Errorf("historical count = %v, want 6", res.Rows[0][0])
	}
}

func itoa64(v int64) string {
	if v == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}
