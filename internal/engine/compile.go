package engine

import (
	"context"
	"fmt"
	"math"
	"strings"

	"repro/internal/ml"
	"repro/internal/onnx"
	"repro/internal/sql"
)

// evalFunc evaluates a compiled expression for one row of a rowset. This
// row-at-a-time interpreter is the engine's reference semantics: the batch
// kernels in vector.go must agree with it (see
// TestKernelInterpreterEquivalence), relational operators call the kernels,
// and this path remains for row-mode PREDICT (the Figure-4 UDF baseline,
// whose per-call cost must not be vectorized away), INSERT row evaluation,
// and as the kernels' fallback tier.
type evalFunc func(rs *RowSet, row int) (Value, error)

// compileEnv supplies out-of-schema context to the compiler: model
// resolution for row-mode PREDICT (the UDF path). UDF-mode predictions go
// through a per-call JSON remote scorer, reproducing the cost profile of a
// containerized scoring service invoked via HTTP/REST.
type compileEnv struct {
	// ctx is the query's cancellation context; row-mode PREDICT polls it
	// before every scorer call so a hung scoring service cannot wedge the
	// interpreter loop. nil means no cancellation.
	ctx        context.Context
	sessionFor func(model string) (*onnx.Session, error)
	remoteFor  func(model string) (onnx.Scorer, error)
	// plane, when set, routes row-mode PREDICT through the inference
	// plane — the path where cross-session micro-batching pays off most,
	// since every call here is a one-row batch.
	plane PredictPlane
}

// compileExpr compiles e against the schema into an evaluator. All column
// references are resolved at compile time.
func compileExpr(e sql.Expr, schema Schema, env *compileEnv) (evalFunc, error) {
	switch x := e.(type) {
	case *sql.ColRef:
		idx, err := schema.Resolve(x.Table, x.Name)
		if err != nil {
			return nil, err
		}
		return func(rs *RowSet, row int) (Value, error) {
			return rs.Cols[idx].Value(row), nil
		}, nil

	case *sql.Lit:
		var v Value
		switch x.Kind {
		case sql.LitInt:
			v = IntValue(x.I)
		case sql.LitFloat:
			v = FloatValue(x.F)
		case sql.LitString:
			v = StringValue(x.S)
		case sql.LitBool:
			v = BoolValue(x.B)
		case sql.LitNull:
			v = NullValue()
		}
		return func(rs *RowSet, row int) (Value, error) { return v, nil }, nil

	case *sql.Unary:
		inner, err := compileExpr(x.X, schema, env)
		if err != nil {
			return nil, err
		}
		if x.Op == "NOT" {
			return func(rs *RowSet, row int) (Value, error) {
				v, err := inner(rs, row)
				if err != nil {
					return Value{}, err
				}
				return BoolValue(!v.Truthy()), nil
			}, nil
		}
		return func(rs *RowSet, row int) (Value, error) {
			v, err := inner(rs, row)
			if err != nil {
				return Value{}, err
			}
			switch v.Kind {
			case TypeInt:
				return IntValue(-v.I), nil
			case TypeFloat:
				return FloatValue(-v.F), nil
			}
			return Value{}, fmt.Errorf("engine: cannot negate %s", v.Kind)
		}, nil

	case *sql.Binary:
		return compileBinary(x, schema, env)

	case *sql.Between:
		inner, err := compileExpr(x.X, schema, env)
		if err != nil {
			return nil, err
		}
		lo, err := compileExpr(x.Lo, schema, env)
		if err != nil {
			return nil, err
		}
		hi, err := compileExpr(x.Hi, schema, env)
		if err != nil {
			return nil, err
		}
		return func(rs *RowSet, row int) (Value, error) {
			v, err := inner(rs, row)
			if err != nil {
				return Value{}, err
			}
			lv, err := lo(rs, row)
			if err != nil {
				return Value{}, err
			}
			hv, err := hi(rs, row)
			if err != nil {
				return Value{}, err
			}
			c1, err := Compare(v, lv)
			if err != nil {
				return Value{}, err
			}
			c2, err := Compare(v, hv)
			if err != nil {
				return Value{}, err
			}
			in := c1 >= 0 && c2 <= 0
			if x.Not {
				in = !in
			}
			return BoolValue(in), nil
		}, nil

	case *sql.InList:
		if x.Sub != nil {
			return nil, fmt.Errorf("engine: IN subqueries are not executable")
		}
		inner, err := compileExpr(x.X, schema, env)
		if err != nil {
			return nil, err
		}
		elems := make([]evalFunc, len(x.List))
		for i, v := range x.List {
			ev, err := compileExpr(v, schema, env)
			if err != nil {
				return nil, err
			}
			elems[i] = ev
		}
		return func(rs *RowSet, row int) (Value, error) {
			v, err := inner(rs, row)
			if err != nil {
				return Value{}, err
			}
			for _, el := range elems {
				ev, err := el(rs, row)
				if err != nil {
					return Value{}, err
				}
				if c, err := Compare(v, ev); err == nil && c == 0 {
					return BoolValue(!x.Not), nil
				}
			}
			return BoolValue(x.Not), nil
		}, nil

	case *sql.Like:
		inner, err := compileExpr(x.X, schema, env)
		if err != nil {
			return nil, err
		}
		pat, err := compileExpr(x.Pattern, schema, env)
		if err != nil {
			return nil, err
		}
		return func(rs *RowSet, row int) (Value, error) {
			v, err := inner(rs, row)
			if err != nil {
				return Value{}, err
			}
			pv, err := pat(rs, row)
			if err != nil {
				return Value{}, err
			}
			if v.Kind != TypeString || pv.Kind != TypeString {
				return Value{}, fmt.Errorf("engine: LIKE requires strings")
			}
			m := likeMatch(v.S, pv.S)
			if x.Not {
				m = !m
			}
			return BoolValue(m), nil
		}, nil

	case *sql.IsNull:
		inner, err := compileExpr(x.X, schema, env)
		if err != nil {
			return nil, err
		}
		return func(rs *RowSet, row int) (Value, error) {
			v, err := inner(rs, row)
			if err != nil {
				return Value{}, err
			}
			isNull := v.Null
			if x.Not {
				isNull = !isNull
			}
			return BoolValue(isNull), nil
		}, nil

	case *sql.Case:
		return compileCase(x, schema, env)

	case *sql.FuncCall:
		return compileFunc(x, schema, env)

	case *sql.Predict:
		return compilePredictUDF(x, schema, env)

	case *sql.Interval:
		return nil, fmt.Errorf("engine: INTERVAL is only valid in date arithmetic")

	case *sql.Exists, *sql.Subquery:
		return nil, fmt.Errorf("engine: subqueries are not executable")
	}
	return nil, fmt.Errorf("engine: unsupported expression %T", e)
}

func compileBinary(x *sql.Binary, schema Schema, env *compileEnv) (evalFunc, error) {
	// Date +/- INTERVAL folds to a constant-shift evaluator.
	if iv, ok := x.R.(*sql.Interval); ok && (x.Op == "+" || x.Op == "-") {
		inner, err := compileExpr(x.L, schema, env)
		if err != nil {
			return nil, err
		}
		n := 0
		if _, err := fmt.Sscanf(iv.Value, "%d", &n); err != nil {
			return nil, fmt.Errorf("engine: bad interval value %q", iv.Value)
		}
		if x.Op == "-" {
			n = -n
		}
		unit := iv.Unit
		return func(rs *RowSet, row int) (Value, error) {
			v, err := inner(rs, row)
			if err != nil {
				return Value{}, err
			}
			if v.Kind != TypeString {
				return Value{}, fmt.Errorf("engine: interval arithmetic requires a date string")
			}
			d, err := AddInterval(v.S, n, unit)
			if err != nil {
				return Value{}, err
			}
			return StringValue(d), nil
		}, nil
	}

	l, err := compileExpr(x.L, schema, env)
	if err != nil {
		return nil, err
	}
	r, err := compileExpr(x.R, schema, env)
	if err != nil {
		return nil, err
	}
	op := x.Op
	switch op {
	case "AND":
		return func(rs *RowSet, row int) (Value, error) {
			lv, err := l(rs, row)
			if err != nil {
				return Value{}, err
			}
			if !lv.Truthy() {
				return BoolValue(false), nil
			}
			rv, err := r(rs, row)
			if err != nil {
				return Value{}, err
			}
			return BoolValue(rv.Truthy()), nil
		}, nil
	case "OR":
		return func(rs *RowSet, row int) (Value, error) {
			lv, err := l(rs, row)
			if err != nil {
				return Value{}, err
			}
			if lv.Truthy() {
				return BoolValue(true), nil
			}
			rv, err := r(rs, row)
			if err != nil {
				return Value{}, err
			}
			return BoolValue(rv.Truthy()), nil
		}, nil
	case "=", "<>", "<", "<=", ">", ">=":
		return func(rs *RowSet, row int) (Value, error) {
			lv, err := l(rs, row)
			if err != nil {
				return Value{}, err
			}
			rv, err := r(rs, row)
			if err != nil {
				return Value{}, err
			}
			if lv.Null || rv.Null {
				return BoolValue(false), nil
			}
			c, err := Compare(lv, rv)
			if err != nil {
				return Value{}, err
			}
			var b bool
			switch op {
			case "=":
				b = c == 0
			case "<>":
				b = c != 0
			case "<":
				b = c < 0
			case "<=":
				b = c <= 0
			case ">":
				b = c > 0
			case ">=":
				b = c >= 0
			}
			return BoolValue(b), nil
		}, nil
	case "+", "-", "*", "/", "%":
		return func(rs *RowSet, row int) (Value, error) {
			lv, err := l(rs, row)
			if err != nil {
				return Value{}, err
			}
			rv, err := r(rs, row)
			if err != nil {
				return Value{}, err
			}
			return arith(op, lv, rv)
		}, nil
	case "||":
		return func(rs *RowSet, row int) (Value, error) {
			lv, err := l(rs, row)
			if err != nil {
				return Value{}, err
			}
			rv, err := r(rs, row)
			if err != nil {
				return Value{}, err
			}
			return StringValue(lv.String() + rv.String()), nil
		}, nil
	}
	return nil, fmt.Errorf("engine: unsupported operator %q", op)
}

func arith(op string, a, b Value) (Value, error) {
	if a.Null || b.Null {
		return NullValue(), nil
	}
	if a.Kind == TypeInt && b.Kind == TypeInt && op != "/" {
		switch op {
		case "+":
			return IntValue(a.I + b.I), nil
		case "-":
			return IntValue(a.I - b.I), nil
		case "*":
			return IntValue(a.I * b.I), nil
		case "%":
			if b.I == 0 {
				return Value{}, fmt.Errorf("engine: modulo by zero")
			}
			return IntValue(a.I % b.I), nil
		}
	}
	af, err := a.AsFloat()
	if err != nil {
		return Value{}, fmt.Errorf("engine: arithmetic on %s", a.Kind)
	}
	bf, err := b.AsFloat()
	if err != nil {
		return Value{}, fmt.Errorf("engine: arithmetic on %s", b.Kind)
	}
	switch op {
	case "+":
		return FloatValue(af + bf), nil
	case "-":
		return FloatValue(af - bf), nil
	case "*":
		return FloatValue(af * bf), nil
	case "/":
		if bf == 0 {
			return Value{}, fmt.Errorf("engine: division by zero")
		}
		return FloatValue(af / bf), nil
	case "%":
		return FloatValue(math.Mod(af, bf)), nil
	}
	return Value{}, fmt.Errorf("engine: unsupported arithmetic %q", op)
}

func compileCase(x *sql.Case, schema Schema, env *compileEnv) (evalFunc, error) {
	var operand evalFunc
	var err error
	if x.Operand != nil {
		operand, err = compileExpr(x.Operand, schema, env)
		if err != nil {
			return nil, err
		}
	}
	conds := make([]evalFunc, len(x.Whens))
	thens := make([]evalFunc, len(x.Whens))
	for i, w := range x.Whens {
		conds[i], err = compileExpr(w.Cond, schema, env)
		if err != nil {
			return nil, err
		}
		thens[i], err = compileExpr(w.Then, schema, env)
		if err != nil {
			return nil, err
		}
	}
	var elseFn evalFunc
	if x.Else != nil {
		elseFn, err = compileExpr(x.Else, schema, env)
		if err != nil {
			return nil, err
		}
	}
	return func(rs *RowSet, row int) (Value, error) {
		var opv Value
		var err error
		if operand != nil {
			opv, err = operand(rs, row)
			if err != nil {
				return Value{}, err
			}
		}
		for i := range conds {
			cv, err := conds[i](rs, row)
			if err != nil {
				return Value{}, err
			}
			hit := false
			if operand != nil {
				c, err := Compare(opv, cv)
				if err != nil {
					return Value{}, err
				}
				hit = c == 0
			} else {
				hit = cv.Truthy()
			}
			if hit {
				return thens[i](rs, row)
			}
		}
		if elseFn != nil {
			return elseFn(rs, row)
		}
		return NullValue(), nil
	}, nil
}

func compileFunc(x *sql.FuncCall, schema Schema, env *compileEnv) (evalFunc, error) {
	switch x.Name {
	case "count", "sum", "avg", "min", "max":
		return nil, fmt.Errorf("engine: aggregate %s in scalar context", x.Name)
	}
	args := make([]evalFunc, len(x.Args))
	for i, a := range x.Args {
		ev, err := compileExpr(a, schema, env)
		if err != nil {
			return nil, err
		}
		args[i] = ev
	}
	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("engine: %s expects %d arguments, got %d", x.Name, n, len(args))
		}
		return nil
	}
	switch x.Name {
	case "substring":
		if len(args) != 2 && len(args) != 3 {
			return nil, fmt.Errorf("engine: substring expects 2 or 3 arguments")
		}
		return func(rs *RowSet, row int) (Value, error) {
			sv, err := args[0](rs, row)
			if err != nil {
				return Value{}, err
			}
			fromV, err := args[1](rs, row)
			if err != nil {
				return Value{}, err
			}
			start := int(fromV.I) - 1 // SQL is 1-based
			if fromV.Kind == TypeFloat {
				start = int(fromV.F) - 1
			}
			s := sv.S
			if start < 0 {
				start = 0
			}
			if start > len(s) {
				start = len(s)
			}
			end := len(s)
			if len(args) == 3 {
				lv, err := args[2](rs, row)
				if err != nil {
					return Value{}, err
				}
				l := int(lv.I)
				if lv.Kind == TypeFloat {
					l = int(lv.F)
				}
				if start+l < end {
					end = start + l
				}
				if end < start {
					end = start // negative length yields the empty string
				}
			}
			return StringValue(s[start:end]), nil
		}, nil
	case "length":
		if err := need(1); err != nil {
			return nil, err
		}
		return func(rs *RowSet, row int) (Value, error) {
			v, err := args[0](rs, row)
			if err != nil {
				return Value{}, err
			}
			return IntValue(int64(len(v.S))), nil
		}, nil
	case "upper", "lower":
		if err := need(1); err != nil {
			return nil, err
		}
		up := x.Name == "upper"
		return func(rs *RowSet, row int) (Value, error) {
			v, err := args[0](rs, row)
			if err != nil {
				return Value{}, err
			}
			if up {
				return StringValue(strings.ToUpper(v.S)), nil
			}
			return StringValue(strings.ToLower(v.S)), nil
		}, nil
	case "abs":
		if err := need(1); err != nil {
			return nil, err
		}
		return func(rs *RowSet, row int) (Value, error) {
			v, err := args[0](rs, row)
			if err != nil {
				return Value{}, err
			}
			switch v.Kind {
			case TypeInt:
				if v.I < 0 {
					return IntValue(-v.I), nil
				}
				return v, nil
			case TypeFloat:
				return FloatValue(math.Abs(v.F)), nil
			}
			return Value{}, fmt.Errorf("engine: abs of %s", v.Kind)
		}, nil
	case "round":
		if err := need(1); err != nil {
			return nil, err
		}
		return func(rs *RowSet, row int) (Value, error) {
			v, err := args[0](rs, row)
			if err != nil {
				return Value{}, err
			}
			f, err := v.AsFloat()
			if err != nil {
				return Value{}, err
			}
			return FloatValue(math.Round(f)), nil
		}, nil
	}
	return nil, fmt.Errorf("engine: unknown function %q", x.Name)
}

// compilePredictUDF compiles a row-at-a-time PREDICT evaluation — the
// unoptimized "external UDF call" path of Figure 4: per row, it gathers the
// argument values, builds a one-row batch, and invokes the scoring session.
func compilePredictUDF(x *sql.Predict, schema Schema, env *compileEnv) (evalFunc, error) {
	if env == nil || env.sessionFor == nil || env.remoteFor == nil {
		return nil, fmt.Errorf("engine: PREDICT is not available in this context")
	}
	sess, err := env.sessionFor(x.Model)
	if err != nil {
		return nil, err
	}
	remote, err := env.remoteFor(x.Model)
	if err != nil {
		return nil, err
	}
	g := sess.Graph()
	if len(x.Args) != len(g.Inputs) {
		return nil, fmt.Errorf("engine: PREDICT(%s, ...) takes %d arguments, got %d",
			x.Model, len(g.Inputs), len(x.Args))
	}
	args := make([]evalFunc, len(x.Args))
	for i, a := range x.Args {
		ev, err := compileExpr(a, schema, env)
		if err != nil {
			return nil, err
		}
		args[i] = ev
	}
	kinds := make([]ml.ColKind, len(g.Inputs))
	for i, in := range g.Inputs {
		kinds[i] = in.Kind
	}
	return func(rs *RowSet, row int) (Value, error) {
		// env.ctx is read per call, not captured at compile time: a stream
		// cursor re-anchors the environment on each Next's context, and the
		// compiled closure must observe that (the cursor outlives the
		// request whose context it was compiled under).
		ctx := env.ctx
		if err := ctxCheck(ctx); err != nil {
			return Value{}, err
		}
		// One-row batch per invocation: deliberately allocation-heavy,
		// mirroring per-call UDF marshalling overheads.
		b := &onnx.Batch{N: 1, Cols: make([]onnx.Column, len(args))}
		for i, a := range args {
			v, err := a(rs, row)
			if err != nil {
				return Value{}, err
			}
			if kinds[i] == ml.KindNumeric {
				f, err := v.AsFloat()
				if err != nil {
					return Value{}, fmt.Errorf("engine: PREDICT argument %d: %w", i+1, err)
				}
				b.Cols[i] = onnx.Column{Nums: []float64{f}}
			} else {
				if v.Kind != TypeString {
					return Value{}, fmt.Errorf("engine: PREDICT argument %d must be text", i+1)
				}
				b.Cols[i] = onnx.Column{Strs: []string{v.S}}
			}
		}
		if env.plane != nil {
			out := make([]float64, 1)
			if err := env.plane.Score(ctx, x.Model, g, b, out); err != nil {
				return Value{}, err
			}
			return FloatValue(out[0]), nil
		}
		out, err := onnx.ScoreWithContext(ctx, remote, b)
		if err != nil {
			return Value{}, err
		}
		return FloatValue(out[0]), nil
	}, nil
}
