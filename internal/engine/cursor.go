package engine

// Pull-based streaming result API. A SELECT no longer has to materialize
// its whole result before the first row reaches a caller: OpenPlanCursor
// lowers a plan into a Cursor that produces batches on demand. Streamable
// pipelines — any top chain of Scan / Filter / Project / Predict / Limit —
// run incrementally, one window of morsels per Next call, so a drain holds
// O(batch) memory regardless of result size and a LIMIT stops the scan as
// soon as enough rows were produced. Blocking operators (ORDER BY,
// GROUP BY, DISTINCT, joins) cannot stream: the subtree below the last
// streamable chain is materialized once at open and then drained in
// batches, so every plan shape speaks the same cursor protocol.
//
// The materialized API is preserved as a thin wrapper: ExecSelect is
// Collect(OpenPlanCursor(...)), and Collect drains a limit-free streamable
// cursor in one window covering the whole input — byte-for-byte the same
// kernel invocations (and the same zero-copy pass-through results) as the
// pre-cursor executor, so materialized callers pay nothing for the
// redesign.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync/atomic"

	"repro/internal/ml"
	"repro/internal/onnx"
	"repro/internal/opt"
	"repro/internal/sql"
)

// Batch is one chunk of cursor output: a RowSet whose columns may alias
// table storage (scan batches are zero-copy slices). A batch is immutable
// once returned and remains valid after subsequent Next calls.
type Batch = RowSet

// Cursor is the pull-based result of a SELECT. Next returns the next
// non-empty batch, or (nil, io.EOF) when the result is drained, or an
// error. Execution errors are sticky — every later Next returns the same
// error. Context errors (cancellation, deadline) are NOT sticky: the pull
// that died consumed nothing, so a later Next under a live context resumes
// exactly where the stream left off — the server's fetch protocol relies
// on this to make timed-out fetches retryable. A Cursor is NOT safe for
// concurrent use; callers interleaving Next from multiple goroutines must
// serialize. Close is idempotent and must be called exactly once-or-more on
// every opened cursor, drained or not — the engine counts open cursors
// (CursorsOpen) so serving layers can assert they never leak one.
type Cursor interface {
	// Schema describes the cursor's output columns.
	Schema() Schema
	// Next returns the next batch. The context applies to this call only:
	// a cursor outlives any single request, and each pull may carry its own
	// deadline (the server-side cursor protocol fetches under per-request
	// timeouts).
	Next(ctx context.Context) (*Batch, error)
	// Close releases the cursor. Safe to call multiple times.
	Close() error
}

// errCursorClosed surfaces pulls on a closed cursor.
var errCursorClosed = errors.New("engine: cursor is closed")

// openCursors counts engine cursors that were opened and not yet closed,
// across every query (exported on /metrics and asserted zero by cursor-leak
// tests).
var openCursors atomic.Int64

// CursorsOpen reports how many engine cursors are currently open.
func CursorsOpen() int64 { return openCursors.Load() }

// ExecCounters collects optional execution statistics when attached via
// ExecOptions.Counters. All fields are safe for concurrent update.
type ExecCounters struct {
	// RowsScanned counts base-table rows read by scans. With LIMIT pushdown
	// a capped streamable pipeline stops scanning early, so this stays well
	// below the table size (pinned by TestCursorLimitShortCircuitsScan).
	RowsScanned atomic.Int64
}

// OpenCursor plans a SELECT and opens a cursor over it — the streaming
// sibling of ExecSelectContext. The returned report carries the resolved
// parallelism like the materialized path.
func (db *DB) OpenCursor(ctx context.Context, s *sql.SelectStmt, o ExecOptions) (Cursor, *opt.Report, error) {
	plan, err := db.PlanSelect(s, o.Level)
	if err != nil {
		return nil, nil, err
	}
	plan.Report.Parallelism = o.MaxWorkers()
	cur, err := db.OpenPlanCursor(ctx, plan, o)
	if err != nil {
		return nil, nil, err
	}
	return cur, &plan.Report, nil
}

// OpenPlanCursor opens a cursor over a previously planned SELECT. Blocking
// plan shapes (sort, aggregate, distinct, join) execute fully during the
// open call under ctx; streamable pipelines defer all scan work to Next.
// Callers caching plans must revalidate them (see core.Prepared).
func (db *DB) OpenPlanCursor(ctx context.Context, plan *opt.Plan, o ExecOptions) (Cursor, error) {
	ex := &executor{ctx: ctx, db: db, o: o,
		env: &compileEnv{ctx: ctx, sessionFor: db.sessionFor, remoteFor: db.remoteFor, plane: db.plane()}}
	return ex.openCursor(plan.Root)
}

// streamOp is one precompiled streamable operator applied batch-by-batch.
// Operators are compiled once at open (expression compilation, scoring
// session setup, column resolution) and applied to every batch, so per-Next
// overhead is just kernel work.
type streamOp interface {
	apply(ex *executor, in *RowSet) (*RowSet, error)
	schema() Schema
}

// streamCursor drains src — either a base-table scan snapshot or the
// materialized output of a blocking subtree — through a chain of
// precompiled streamable ops, one window of morsels per Next.
type streamCursor struct {
	ex  *executor
	src *RowSet
	ops []streamOp
	out Schema

	// srcIsScan marks src as a live table snapshot (rows pulled from it
	// count toward ExecCounters.RowsScanned; materialized sources were
	// already counted by their scans inside exec).
	srcIsScan bool
	// window is how many morsels one Next processes; the parallel worker
	// cap, so a batch is exactly one round of the morsel pool.
	window int
	// drainAll makes the next Next process every remaining morsel in one
	// batch — Collect sets it on limit-free cursors so materialization runs
	// the kernels over the whole input exactly like the pre-cursor executor.
	drainAll bool
	// hasLimit notes a LIMIT somewhere in the op chain; exhausted flips when
	// a limit op has emitted its N rows, stopping the scan early.
	hasLimit  bool
	exhausted bool

	nextMorsel int
	closed     bool
	err        error
}

// openCursor peels the maximal streamable chain (Limit / Project / Filter /
// Predict) off the top of the plan, materializes whatever blocking subtree
// remains below it, and assembles the cursor bottom-up.
func (ex *executor) openCursor(root opt.Node) (Cursor, error) {
	if err := ex.checkCtx(); err != nil {
		return nil, err
	}
	var chain []opt.Node // top-down
	node := root
peel:
	for {
		switch n := node.(type) {
		case *opt.Limit:
			chain = append(chain, n)
			node = n.Input
		case *opt.Project:
			chain = append(chain, n)
			node = n.Input
		case *opt.Filter:
			chain = append(chain, n)
			node = n.Input
		case *opt.Predict:
			chain = append(chain, n)
			node = n.Input
		default:
			break peel
		}
	}

	sc := &streamCursor{ex: ex}
	if scan, ok := node.(*opt.Scan); ok {
		src, err := ex.scanSource(scan)
		if err != nil {
			return nil, err
		}
		sc.src = src
		sc.srcIsScan = true
		if len(scan.Filters) > 0 {
			// Pushed-down scan conjuncts become the bottom-most filter op.
			chain = append(chain, &opt.Filter{Preds: scan.Filters})
		}
	} else {
		// Blocking subtree (or FROM-less nil): materialize it now; the
		// cursor drains the result in batches.
		rs, err := ex.exec(node)
		if err != nil {
			return nil, err
		}
		sc.src = rs
	}

	schema := sc.src.Schema
	sc.ops = make([]streamOp, 0, len(chain))
	for i := len(chain) - 1; i >= 0; i-- {
		var op streamOp
		var err error
		switch n := chain[i].(type) {
		case *opt.Filter:
			pred := opt.AndAll(n.Preds)
			if pred == nil {
				continue
			}
			op, err = newFilterOp(ex, pred, schema)
		case *opt.Project:
			op, err = newProjectOp(ex, n, schema)
		case *opt.Predict:
			op, err = newPredictOp(ex, n, schema)
		case *opt.Limit:
			op = &limitOp{sc: sc, remaining: n.N, in: schema}
			sc.hasLimit = true
		}
		if err != nil {
			return nil, err
		}
		sc.ops = append(sc.ops, op)
		schema = op.schema()
	}
	sc.out = schema
	sc.window = ex.o.MaxWorkers()
	if sc.window < 1 {
		sc.window = 1
	}
	openCursors.Add(1)
	return sc, nil
}

// scanSource snapshots the scanned table with the alias-qualified schema
// (the scan half of execScan; pushed-down filters become a stream op).
func (ex *executor) scanSource(n *opt.Scan) (*RowSet, error) {
	t, err := ex.db.Table(n.Table)
	if err != nil {
		return nil, err
	}
	var cols []Column
	var schema Schema
	var rows int
	if n.Version >= 0 {
		cols, schema, rows, err = t.SnapshotAt(n.Version)
		if err != nil {
			return nil, err
		}
	} else {
		cols, schema, rows = t.snapshot()
	}
	qualified := make(Schema, len(schema))
	for i, m := range schema {
		qualified[i] = ColMeta{Qual: n.Alias, Name: m.Name, Type: m.Type}
	}
	return &RowSet{Schema: qualified, Cols: cols, N: rows}, nil
}

func (sc *streamCursor) Schema() Schema { return sc.out }

func (sc *streamCursor) Next(ctx context.Context) (*Batch, error) {
	if sc.closed {
		return nil, errCursorClosed
	}
	if sc.err != nil {
		return nil, sc.err
	}
	// The cursor outlives the request that opened it: every pull re-anchors
	// the executor (and the compiled row-mode PREDICT environment) on the
	// caller's current context.
	sc.ex.setCtx(ctx)
	total := morselCount(sc.src.N)
	for {
		if sc.exhausted || sc.nextMorsel >= total {
			return nil, io.EOF
		}
		if err := sc.ex.checkCtx(); err != nil {
			// Pre-window: nothing consumed, so a retry under a live
			// context resumes cleanly.
			return nil, err
		}
		mhi := sc.nextMorsel + sc.window
		if sc.drainAll && !sc.hasLimit {
			mhi = total
		}
		if mhi > total {
			mhi = total
		}
		lo, _ := morselBounds(sc.nextMorsel, sc.src.N)
		_, hi := morselBounds(mhi-1, sc.src.N)

		// Snapshot the window-consuming state so a context error mid-window
		// can roll back and the next pull re-processes the same window —
		// no rows are lost to a timed-out fetch.
		savedMorsel := sc.nextMorsel
		savedLimits := sc.snapshotLimits()
		sc.nextMorsel = mhi

		batch := sc.src.Slice(lo, hi)
		var err error
		for _, op := range sc.ops {
			batch, err = op.apply(sc.ex, batch)
			if err != nil {
				break
			}
		}
		if err != nil {
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				sc.nextMorsel = savedMorsel
				sc.restoreLimits(savedLimits)
				return nil, err
			}
			sc.err = err // execution errors are sticky
			return nil, err
		}
		if sc.srcIsScan {
			if c := sc.ex.o.Counters; c != nil {
				c.RowsScanned.Add(int64(hi - lo))
			}
		}
		if batch.N > 0 {
			return batch, nil
		}
		// Every row of the window was filtered out (or a LIMIT landed on a
		// window boundary): keep pulling rather than returning empty batches.
	}
}

// snapshotLimits / restoreLimits save the mutable state of limit ops (and
// the exhausted flag they drive) around one window, for mid-window rollback
// on context errors.
func (sc *streamCursor) snapshotLimits() []int64 {
	var saved []int64
	for _, op := range sc.ops {
		if l, ok := op.(*limitOp); ok {
			saved = append(saved, l.remaining)
		}
	}
	return saved
}

func (sc *streamCursor) restoreLimits(saved []int64) {
	i := 0
	for _, op := range sc.ops {
		if l, ok := op.(*limitOp); ok {
			l.remaining = saved[i]
			i++
		}
	}
	sc.exhausted = false
}

func (sc *streamCursor) Close() error {
	if sc.closed {
		return nil
	}
	sc.closed = true
	sc.src = nil
	sc.ops = nil
	openCursors.Add(-1)
	return nil
}

// setCtx re-anchors the executor on a new context: ex.ctx feeds the
// cancellation checkpoints, env.ctx the compiled row-mode PREDICT closures
// (which read it per call). Only the goroutine driving the cursor may call
// this; operator workers spawned inside a Next observe the write through
// goroutine creation.
func (ex *executor) setCtx(ctx context.Context) {
	ex.ctx = ctx
	ex.env.ctx = ctx
}

// Collect drains a cursor into a materialized RowSet and closes it — the
// bridge that keeps every pre-cursor caller working. On a limit-free
// streamable cursor it drains the whole input as one window, so the kernel
// work (and zero-copy pass-through results) match the old executor exactly;
// capped cursors keep their window-at-a-time pulls so LIMIT still
// short-circuits the scan.
func Collect(ctx context.Context, c Cursor) (*RowSet, error) {
	defer c.Close()
	if sc, ok := c.(*streamCursor); ok && !sc.hasLimit {
		sc.drainAll = true
	}
	var batches []*Batch
	total := 0
	for {
		b, err := c.Next(ctx)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		batches = append(batches, b)
		total += b.N
	}
	if len(batches) == 1 {
		return batches[0], nil
	}
	schema := c.Schema()
	out := &RowSet{Schema: schema, N: total, Cols: make([]Column, len(schema))}
	for i := range schema {
		out.Cols[i] = concatBatches(schema[i].Type, batches, i, total)
	}
	return out, nil
}

// concatBatches concatenates column i of every batch into one typed column
// with a single allocation.
func concatBatches(t ColType, batches []*Batch, i, total int) Column {
	out := Column{Type: t}
	switch t {
	case TypeInt:
		vals := make([]int64, 0, total)
		for _, b := range batches {
			vals = append(vals, b.Cols[i].Ints...)
		}
		out.Ints = vals
	case TypeFloat:
		vals := make([]float64, 0, total)
		for _, b := range batches {
			vals = append(vals, b.Cols[i].Floats...)
		}
		out.Floats = vals
	case TypeString:
		vals := make([]string, 0, total)
		for _, b := range batches {
			vals = append(vals, b.Cols[i].Strs...)
		}
		out.Strs = vals
	case TypeBool:
		vals := make([]bool, 0, total)
		for _, b := range batches {
			vals = append(vals, b.Cols[i].Bools...)
		}
		out.Bools = vals
	}
	return out
}

// ---- streamable operators ----

// filterOp applies a precompiled predicate kernel per batch.
type filterOp struct {
	fn vecFunc
	sc Schema
}

func newFilterOp(ex *executor, pred sql.Expr, in Schema) (*filterOp, error) {
	fn, err := compileVec(pred, in, ex.env)
	if err != nil {
		return nil, err
	}
	return &filterOp{fn: fn, sc: in}, nil
}

func (f *filterOp) schema() Schema { return f.sc }

func (f *filterOp) apply(ex *executor, in *RowSet) (*RowSet, error) {
	return ex.filterCompiled(in, f.fn)
}

// projExpr is one compiled projection: either a bare column alias or a
// compiled expression with its inferred output type.
type projExpr struct {
	colIdx int // >= 0: alias input column colIdx
	fn     vecFunc
	typ    ColType
}

// projectOp applies precompiled output expressions per batch.
type projectOp struct {
	exprs []projExpr
	out   Schema
}

func newProjectOp(ex *executor, n *opt.Project, in Schema) (*projectOp, error) {
	exprs := make([]projExpr, len(n.Exprs))
	out := make(Schema, len(n.Exprs))
	for i, e := range n.Exprs {
		// Fast path: bare column references alias storage.
		if cr, ok := e.(*sql.ColRef); ok {
			idx, err := in.Resolve(cr.Table, cr.Name)
			if err != nil {
				return nil, err
			}
			exprs[i] = projExpr{colIdx: idx}
			out[i] = ColMeta{Name: n.Names[i], Type: in[idx].Type}
			continue
		}
		fn, err := compileVec(e, in, ex.env)
		if err != nil {
			return nil, err
		}
		t, err := inferType(e, in)
		if err != nil {
			return nil, err
		}
		exprs[i] = projExpr{colIdx: -1, fn: fn, typ: t}
		out[i] = ColMeta{Name: n.Names[i], Type: t}
	}
	return &projectOp{exprs: exprs, out: out}, nil
}

func (p *projectOp) schema() Schema { return p.out }

func (p *projectOp) apply(ex *executor, in *RowSet) (*RowSet, error) {
	outCols := make([]Column, len(p.exprs))
	for i, pe := range p.exprs {
		if err := ex.checkCtx(); err != nil {
			return nil, err
		}
		if pe.colIdx >= 0 {
			outCols[i] = in.Cols[pe.colIdx]
			continue
		}
		v, err := pe.fn(in)
		if err != nil {
			return nil, err
		}
		col, err := v.toColumn(pe.typ, in.N)
		if err != nil {
			return nil, err
		}
		outCols[i] = col
	}
	return &RowSet{Schema: p.out, Cols: outCols, N: in.N}, nil
}

// argBind is one resolved PREDICT argument: a direct input column or a
// compiled derived expression.
type argBind struct {
	colIdx int
	fn     vecFunc
	typ    ColType
}

// predictOp scores batches through a scoring session created once at open,
// with the optional fused threshold compare.
type predictOp struct {
	n    *opt.Predict
	sess *onnx.Session
	args []argBind
	out  Schema
}

func newPredictOp(ex *executor, n *opt.Predict, in Schema) (*predictOp, error) {
	g := n.Graph
	if len(n.Args) != len(g.Inputs) {
		return nil, fmt.Errorf("engine: PREDICT(%s, ...) takes %d arguments, got %d",
			n.Model, len(g.Inputs), len(n.Args))
	}
	sess, err := onnx.NewSession(g)
	if err != nil {
		return nil, err
	}
	args := make([]argBind, len(n.Args))
	for i, a := range n.Args {
		if cr, ok := a.(*sql.ColRef); ok {
			idx, err := in.Resolve(cr.Table, cr.Name)
			if err != nil {
				return nil, fmt.Errorf("engine: PREDICT(%s) argument %d: %w", n.Model, i+1, err)
			}
			args[i] = argBind{colIdx: idx}
			continue
		}
		fn, err := compileVec(a, in, ex.env)
		if err != nil {
			return nil, fmt.Errorf("engine: PREDICT(%s) argument %d: %w", n.Model, i+1, err)
		}
		t, err := inferType(a, in)
		if err != nil {
			return nil, fmt.Errorf("engine: PREDICT(%s) argument %d: %w", n.Model, i+1, err)
		}
		args[i] = argBind{colIdx: -1, fn: fn, typ: t}
	}
	out := append(append(Schema(nil), in...), ColMeta{Name: n.OutName, Type: TypeFloat})
	return &predictOp{n: n, sess: sess, args: args, out: out}, nil
}

func (p *predictOp) schema() Schema { return p.out }

func (p *predictOp) apply(ex *executor, in *RowSet) (*RowSet, error) {
	g := p.n.Graph
	batchCols := make([]onnx.Column, len(p.args))
	for i, ab := range p.args {
		var col Column
		if ab.colIdx >= 0 {
			col = in.Cols[ab.colIdx]
		} else {
			v, err := ab.fn(in)
			if err != nil {
				return nil, fmt.Errorf("engine: PREDICT(%s) argument %d: %w", p.n.Model, i+1, err)
			}
			col, err = v.toColumn(ab.typ, in.N)
			if err != nil {
				return nil, fmt.Errorf("engine: PREDICT(%s) argument %d: %w", p.n.Model, i+1, err)
			}
		}
		switch g.Inputs[i].Kind {
		case ml.KindNumeric:
			switch col.Type {
			case TypeFloat:
				batchCols[i] = onnx.Column{Nums: col.Floats}
			case TypeInt:
				conv := make([]float64, len(col.Ints))
				for j, v := range col.Ints {
					conv[j] = float64(v)
				}
				batchCols[i] = onnx.Column{Nums: conv}
			default:
				return nil, fmt.Errorf("engine: PREDICT(%s) argument %d: model wants numeric, column is %s",
					p.n.Model, i+1, col.Type)
			}
		default: // categorical or text
			if col.Type != TypeString {
				return nil, fmt.Errorf("engine: PREDICT(%s) argument %d: model wants text, column is %s",
					p.n.Model, i+1, col.Type)
			}
			batchCols[i] = onnx.Column{Strs: col.Strs}
		}
	}

	scores := make([]float64, in.N)
	w := ex.workers(in.N)
	plane := ex.env.plane
	err := ex.runMorsels(in.N, w, func(wid, m, lo, hi int) error {
		for clo := lo; clo < hi; clo += predictChunk {
			chi := clo + predictChunk
			if chi > hi {
				chi = hi
			}
			b := onnx.Batch{N: chi - clo, Cols: make([]onnx.Column, len(batchCols))}
			for i := range batchCols {
				if batchCols[i].Nums != nil {
					b.Cols[i].Nums = batchCols[i].Nums[clo:chi]
				} else {
					b.Cols[i].Strs = batchCols[i].Strs[clo:chi]
				}
			}
			if plane != nil {
				if err := plane.Score(ex.ctx, p.n.Model, g, &b, scores[clo:chi]); err != nil {
					return err
				}
				continue
			}
			if err := p.sess.RunInto(&b, scores[clo:chi]); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	if p.n.Compare == nil {
		cols := append(append([]Column(nil), in.Cols...), FloatColumn(scores))
		return &RowSet{Schema: p.out, Cols: cols, N: in.N}, nil
	}
	// Fused threshold filter: the score column feeds the shared selection
	// kernel directly, no per-row boxing.
	sel, err := selectFloatCompare(scores, p.n.Compare.Op, p.n.Compare.Threshold)
	if err != nil {
		return nil, err
	}
	out := in.Gather(sel)
	fc := FloatColumn(scores)
	scoreCol := fc.Gather(sel)
	out.Schema = p.out
	out.Cols = append(out.Cols, scoreCol)
	return out, nil
}

// limitOp truncates the stream after N rows and flips the cursor to
// exhausted, which is what terminates the scan early (LIMIT pushdown).
type limitOp struct {
	sc        *streamCursor
	remaining int64
	in        Schema
}

func (l *limitOp) schema() Schema { return l.in }

func (l *limitOp) apply(ex *executor, in *RowSet) (*RowSet, error) {
	if l.remaining <= 0 {
		l.sc.exhausted = true
		return in.Slice(0, 0), nil
	}
	if int64(in.N) >= l.remaining {
		out := in
		if int64(in.N) > l.remaining {
			out = in.Slice(0, int(l.remaining))
		}
		l.remaining = 0
		l.sc.exhausted = true
		return out, nil
	}
	l.remaining -= int64(in.N)
	return in, nil
}
