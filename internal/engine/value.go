// Package engine is the columnar, vectorized query engine that plays the
// role of the DBMS runtime in the Flock reproduction: typed columnar
// storage, a batch expression compiler (vector.go) whose kernels evaluate
// whole columns per call with typed inner loops and null masks, typed
// multi-column hash tables for aggregation/distinct/joins (hash.go),
// volcano-style physical operators (including the vectorized, parallel
// PREDICT operator of §4.1), table statistics, versioning, and a query log
// for lazy provenance capture. A row-at-a-time reference interpreter
// (compile.go) backs the LevelUDF PREDICT path and DML, and pins kernel
// semantics through an equivalence property test; docs/engine.md describes
// the batch-kernel ABI.
package engine

import (
	"fmt"
	"strconv"
	"strings"
)

// ColType enumerates storage types.
type ColType int

// Column types.
const (
	TypeInt ColType = iota
	TypeFloat
	TypeString
	TypeBool
)

func (t ColType) String() string {
	switch t {
	case TypeInt:
		return "int"
	case TypeFloat:
		return "float"
	case TypeString:
		return "text"
	case TypeBool:
		return "bool"
	default:
		return fmt.Sprintf("ColType(%d)", int(t))
	}
}

// ParseColType maps SQL type names to ColType.
func ParseColType(s string) (ColType, error) {
	switch strings.ToLower(s) {
	case "int":
		return TypeInt, nil
	case "float":
		return TypeFloat, nil
	case "text":
		return TypeString, nil
	case "bool":
		return TypeBool, nil
	}
	return 0, fmt.Errorf("engine: unknown column type %q", s)
}

// Value is a scalar runtime value.
type Value struct {
	Kind ColType
	Null bool
	I    int64
	F    float64
	S    string
	B    bool
}

// Convenience constructors.
func IntValue(i int64) Value     { return Value{Kind: TypeInt, I: i} }
func FloatValue(f float64) Value { return Value{Kind: TypeFloat, F: f} }
func StringValue(s string) Value { return Value{Kind: TypeString, S: s} }
func BoolValue(b bool) Value     { return Value{Kind: TypeBool, B: b} }
func NullValue() Value           { return Value{Null: true} }

// AsFloat coerces numeric values to float64.
func (v Value) AsFloat() (float64, error) {
	switch v.Kind {
	case TypeInt:
		return float64(v.I), nil
	case TypeFloat:
		return v.F, nil
	case TypeBool:
		if v.B {
			return 1, nil
		}
		return 0, nil
	}
	return 0, fmt.Errorf("engine: %s is not numeric", v.Kind)
}

// Truthy interprets the value as a boolean predicate result.
func (v Value) Truthy() bool {
	if v.Null {
		return false
	}
	switch v.Kind {
	case TypeBool:
		return v.B
	case TypeInt:
		return v.I != 0
	case TypeFloat:
		return v.F != 0
	case TypeString:
		return v.S != ""
	}
	return false
}

// Any converts to a plain Go value for result sets (nil for NULL).
func (v Value) Any() any {
	if v.Null {
		return nil
	}
	switch v.Kind {
	case TypeInt:
		return v.I
	case TypeFloat:
		return v.F
	case TypeString:
		return v.S
	case TypeBool:
		return v.B
	}
	return nil
}

// String renders the value for display.
func (v Value) String() string {
	if v.Null {
		return "NULL"
	}
	switch v.Kind {
	case TypeInt:
		return strconv.FormatInt(v.I, 10)
	case TypeFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case TypeString:
		return v.S
	case TypeBool:
		if v.B {
			return "true"
		}
		return "false"
	}
	return "?"
}

// Compare orders two values: -1, 0, +1. Numeric kinds compare numerically
// across int/float; NULL sorts first and equals only NULL.
func Compare(a, b Value) (int, error) {
	if a.Null || b.Null {
		switch {
		case a.Null && b.Null:
			return 0, nil
		case a.Null:
			return -1, nil
		default:
			return 1, nil
		}
	}
	if isNumeric(a.Kind) && isNumeric(b.Kind) {
		af, _ := a.AsFloat()
		bf, _ := b.AsFloat()
		switch {
		case af < bf:
			return -1, nil
		case af > bf:
			return 1, nil
		default:
			return 0, nil
		}
	}
	if a.Kind == TypeString && b.Kind == TypeString {
		return strings.Compare(a.S, b.S), nil
	}
	if a.Kind == TypeBool && b.Kind == TypeBool {
		switch {
		case a.B == b.B:
			return 0, nil
		case !a.B:
			return -1, nil
		default:
			return 1, nil
		}
	}
	return 0, fmt.Errorf("engine: cannot compare %s with %s", a.Kind, b.Kind)
}

func isNumeric(t ColType) bool { return t == TypeInt || t == TypeFloat }

// likeMatch implements SQL LIKE with % (any run) and _ (any single rune).
func likeMatch(s, pattern string) bool {
	return likeMatchBytes(s, pattern)
}

func likeMatchBytes(s, p string) bool {
	// Iterative two-pointer matching with backtracking on the last '%'.
	si, pi := 0, 0
	star, ss := -1, 0
	for si < len(s) {
		switch {
		case pi < len(p) && (p[pi] == '_' || p[pi] == s[si]):
			si++
			pi++
		case pi < len(p) && p[pi] == '%':
			star = pi
			ss = si
			pi++
		case star >= 0:
			pi = star + 1
			ss++
			si = ss
		default:
			return false
		}
	}
	for pi < len(p) && p[pi] == '%' {
		pi++
	}
	return pi == len(p)
}

// Date arithmetic over ISO-8601 date strings ("YYYY-MM-DD"), sufficient for
// the TPC-H-style templates.

func parseDate(s string) (y, m, d int, err error) {
	if len(s) < 10 || s[4] != '-' || s[7] != '-' {
		return 0, 0, 0, fmt.Errorf("engine: bad date %q", s)
	}
	y, err1 := strconv.Atoi(s[0:4])
	m, err2 := strconv.Atoi(s[5:7])
	d, err3 := strconv.Atoi(s[8:10])
	if err1 != nil || err2 != nil || err3 != nil || m < 1 || m > 12 || d < 1 || d > 31 {
		return 0, 0, 0, fmt.Errorf("engine: bad date %q", s)
	}
	return y, m, d, nil
}

func daysInMonth(y, m int) int {
	switch m {
	case 1, 3, 5, 7, 8, 10, 12:
		return 31
	case 4, 6, 9, 11:
		return 30
	default:
		if y%4 == 0 && (y%100 != 0 || y%400 == 0) {
			return 29
		}
		return 28
	}
}

// AddInterval adds n units (day/month/year) to an ISO date string; negative
// n subtracts.
func AddInterval(date string, n int, unit string) (string, error) {
	y, m, d, err := parseDate(date)
	if err != nil {
		return "", err
	}
	switch strings.ToLower(unit) {
	case "year", "years":
		y += n
	case "month", "months":
		total := (y*12 + (m - 1)) + n
		y = total / 12
		m = total%12 + 1
		if m < 1 {
			m += 12
			y--
		}
		if d > daysInMonth(y, m) {
			d = daysInMonth(y, m)
		}
	case "day", "days":
		d += n
		for d > daysInMonth(y, m) {
			d -= daysInMonth(y, m)
			m++
			if m > 12 {
				m = 1
				y++
			}
		}
		for d < 1 {
			m--
			if m < 1 {
				m = 12
				y--
			}
			d += daysInMonth(y, m)
		}
	default:
		return "", fmt.Errorf("engine: unknown interval unit %q", unit)
	}
	return fmt.Sprintf("%04d-%02d-%02d", y, m, d), nil
}
