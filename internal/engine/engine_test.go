package engine

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/ml"
	"repro/internal/onnx"
	"repro/internal/opt"
	sqlpkg "repro/internal/sql"
)

// fakeModels is a trivial model provider for tests.
type fakeModels map[string]*onnx.Graph

func (f fakeModels) GraphFor(name string) (*onnx.Graph, error) {
	g, ok := f[name]
	if !ok {
		return nil, fmt.Errorf("unknown model %q", name)
	}
	return g, nil
}

// newTestDB builds a DB with an "orders" table.
func newTestDB(t *testing.T) *DB {
	t.Helper()
	db := NewDB()
	_, err := db.CreateTableFromColumns("orders",
		[]string{"id", "region", "amount", "priority"},
		[]Column{
			IntColumn([]int64{1, 2, 3, 4, 5, 6}),
			StringColumn([]string{"us", "eu", "us", "apac", "eu", "us"}),
			FloatColumn([]float64{10, 20, 30, 40, 50, 60}),
			IntColumn([]int64{1, 2, 1, 3, 2, 1}),
		})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestCreateInsertSelect(t *testing.T) {
	db := NewDB()
	if _, err := db.Exec("CREATE TABLE t (a int, b text, c float)"); err != nil {
		t.Fatal(err)
	}
	res, err := db.Exec("INSERT INTO t (a, b, c) VALUES (1, 'x', 1.5), (2, 'y', 2.5)")
	if err != nil {
		t.Fatal(err)
	}
	if res.Affected != 2 {
		t.Errorf("affected = %d", res.Affected)
	}
	res, err = db.Exec("SELECT a, b, c FROM t WHERE a = 2")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][1] != "y" || res.Rows[0][2] != 2.5 {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestSelectFilterProject(t *testing.T) {
	db := newTestDB(t)
	res, err := db.Exec("SELECT id, amount * 2 AS dbl FROM orders WHERE region = 'us' AND amount > 15")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Columns[1] != "dbl" {
		t.Errorf("columns = %v", res.Columns)
	}
	if res.Rows[0][1] != 60.0 || res.Rows[1][1] != 120.0 {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestSelectStar(t *testing.T) {
	db := newTestDB(t)
	res, err := db.Exec("SELECT * FROM orders WHERE id <= 2")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || len(res.Columns) != 4 {
		t.Errorf("star select: %v %v", res.Columns, res.Rows)
	}
}

func TestAggregates(t *testing.T) {
	db := newTestDB(t)
	res, err := db.Exec(`SELECT region, count(*) AS n, sum(amount) AS total, avg(amount) AS mean,
		min(amount) AS lo, max(amount) AS hi
		FROM orders GROUP BY region ORDER BY region`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %v", res.Rows)
	}
	// apac, eu, us
	if res.Rows[0][0] != "apac" || res.Rows[0][1] != int64(1) || res.Rows[0][2] != 40.0 {
		t.Errorf("apac row = %v", res.Rows[0])
	}
	if res.Rows[2][0] != "us" || res.Rows[2][1] != int64(3) || res.Rows[2][2] != 100.0 {
		t.Errorf("us row = %v", res.Rows[2])
	}
	if res.Rows[1][3] != 35.0 || res.Rows[1][4] != 20.0 || res.Rows[1][5] != 50.0 {
		t.Errorf("eu stats = %v", res.Rows[1])
	}
}

func TestHavingAndOrderByAgg(t *testing.T) {
	db := newTestDB(t)
	res, err := db.Exec(`SELECT region, sum(amount) AS total FROM orders
		GROUP BY region HAVING sum(amount) > 50 ORDER BY total DESC`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][0] != "us" || res.Rows[1][0] != "eu" {
		t.Errorf("order = %v", res.Rows)
	}
}

func TestGlobalAggregateEmptyInput(t *testing.T) {
	db := newTestDB(t)
	res, err := db.Exec("SELECT count(*) AS n, sum(amount) AS s FROM orders WHERE amount > 1000")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0] != int64(0) {
		t.Errorf("empty aggregate = %v", res.Rows)
	}
}

func TestCountDistinct(t *testing.T) {
	db := newTestDB(t)
	res, err := db.Exec("SELECT count(DISTINCT region) AS n FROM orders")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0] != int64(3) {
		t.Errorf("distinct regions = %v", res.Rows)
	}
}

func TestDistinctAndLimit(t *testing.T) {
	db := newTestDB(t)
	res, err := db.Exec("SELECT DISTINCT region FROM orders ORDER BY region LIMIT 2")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][0] != "apac" || res.Rows[1][0] != "eu" {
		t.Errorf("distinct+limit = %v", res.Rows)
	}
}

func TestJoin(t *testing.T) {
	db := newTestDB(t)
	if _, err := db.Exec("CREATE TABLE regions (code text, name text)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO regions VALUES ('us', 'United States'), ('eu', 'Europe')"); err != nil {
		t.Fatal(err)
	}
	res, err := db.Exec(`SELECT o.id, r.name FROM orders o JOIN regions r ON o.region = r.code
		WHERE o.amount >= 30 ORDER BY o.id`)
	if err != nil {
		t.Fatal(err)
	}
	// orders with amount >= 30: ids 3 (us), 4 (apac, no match), 5 (eu), 6 (us)
	if len(res.Rows) != 3 {
		t.Fatalf("join rows = %v", res.Rows)
	}
	if res.Rows[0][0] != int64(3) || res.Rows[0][1] != "United States" {
		t.Errorf("join row 0 = %v", res.Rows[0])
	}
}

func TestLeftJoin(t *testing.T) {
	db := newTestDB(t)
	if _, err := db.Exec("CREATE TABLE regions (code text, name text)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO regions VALUES ('us', 'United States')"); err != nil {
		t.Fatal(err)
	}
	res, err := db.Exec("SELECT o.id, r.name FROM orders o LEFT JOIN regions r ON o.region = r.code ORDER BY o.id")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("left join rows = %d", len(res.Rows))
	}
}

func TestUpdateDelete(t *testing.T) {
	db := newTestDB(t)
	res, err := db.Exec("UPDATE orders SET amount = amount + 100 WHERE region = 'eu'")
	if err != nil {
		t.Fatal(err)
	}
	if res.Affected != 2 {
		t.Errorf("update affected = %d", res.Affected)
	}
	res, err = db.Exec("SELECT sum(amount) AS s FROM orders")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0] != 410.0 {
		t.Errorf("sum after update = %v", res.Rows[0][0])
	}
	res, err = db.Exec("DELETE FROM orders WHERE priority = 1")
	if err != nil {
		t.Fatal(err)
	}
	if res.Affected != 3 {
		t.Errorf("delete affected = %d", res.Affected)
	}
	res, _ = db.Exec("SELECT count(*) AS n FROM orders")
	if res.Rows[0][0] != int64(3) {
		t.Errorf("rows after delete = %v", res.Rows[0][0])
	}
}

func TestVersionBumpsOnWrite(t *testing.T) {
	db := newTestDB(t)
	tab, _ := db.Table("orders")
	v0 := tab.Version()
	if _, err := db.Exec("INSERT INTO orders VALUES (7, 'us', 70.0, 2)"); err != nil {
		t.Fatal(err)
	}
	if tab.Version() <= v0 {
		t.Error("version should bump on insert")
	}
	v1 := tab.Version()
	if _, err := db.Exec("UPDATE orders SET amount = 0 WHERE id = 7"); err != nil {
		t.Fatal(err)
	}
	if tab.Version() <= v1 {
		t.Error("version should bump on update")
	}
}

func TestTableStats(t *testing.T) {
	db := newTestDB(t)
	tab, _ := db.Table("orders")
	stats := tab.Stats()
	am := stats["amount"]
	if !am.HasRange || am.Min != 10 || am.Max != 60 {
		t.Errorf("amount stats = %+v", am)
	}
	reg := stats["region"]
	if len(reg.Categories) != 3 || !reg.Categories["us"] {
		t.Errorf("region stats = %+v", reg)
	}
	// Stats invalidate on write.
	if _, err := db.Exec("INSERT INTO orders VALUES (7, 'latam', 99.0, 1)"); err != nil {
		t.Fatal(err)
	}
	stats = tab.Stats()
	if stats["amount"].Max != 99 || !stats["region"].Categories["latam"] {
		t.Error("stats not refreshed after write")
	}
}

func TestQueryLog(t *testing.T) {
	db := newTestDB(t)
	if _, err := db.Exec("SELECT id FROM orders WHERE id = 1"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO orders VALUES (9, 'us', 1.0, 1)"); err != nil {
		t.Fatal(err)
	}
	log := db.QueryLog()
	if len(log) != 2 {
		t.Fatalf("log entries = %d", len(log))
	}
	if log[0].Seq != 1 || log[1].Seq != 2 {
		t.Error("log sequence wrong")
	}
}

func TestDateAndLike(t *testing.T) {
	db := NewDB()
	if _, err := db.Exec("CREATE TABLE ship (id int, d text, comment text)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`INSERT INTO ship VALUES
		(1, '1994-01-15', 'urgent deliver'),
		(2, '1994-06-15', 'standard'),
		(3, '1995-02-01', 'urgent')`); err != nil {
		t.Fatal(err)
	}
	res, err := db.Exec(`SELECT id FROM ship
		WHERE d >= DATE '1994-01-01' AND d < DATE '1994-01-01' + INTERVAL '1' year
		AND comment LIKE '%urgent%' ORDER BY id`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0] != int64(1) {
		t.Errorf("date+like rows = %v", res.Rows)
	}
}

func TestCaseExpression(t *testing.T) {
	db := newTestDB(t)
	res, err := db.Exec(`SELECT id, CASE WHEN amount >= 40 THEN 'big' ELSE 'small' END AS size
		FROM orders ORDER BY id`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][1] != "small" || res.Rows[5][1] != "big" {
		t.Errorf("case rows = %v", res.Rows)
	}
}

func TestBetweenInSubstring(t *testing.T) {
	db := newTestDB(t)
	res, err := db.Exec(`SELECT id, substring(region, 1, 1) AS initial FROM orders
		WHERE amount BETWEEN 20 AND 50 AND region IN ('eu', 'apac') ORDER BY id`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][1] != "e" {
		t.Errorf("substring = %v", res.Rows[0][1])
	}
}

func TestFromLessSelect(t *testing.T) {
	db := NewDB()
	res, err := db.Exec("SELECT 1 + 2 AS three, 'x' AS s")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0] != int64(3) || res.Rows[0][1] != "x" {
		t.Errorf("from-less = %v", res.Rows)
	}
}

func TestErrors(t *testing.T) {
	db := newTestDB(t)
	for _, q := range []string{
		"SELECT nope FROM orders",
		"SELECT id FROM missing",
		"SELECT PREDICT(ghost, amount) FROM orders",
		"INSERT INTO orders VALUES (1)",
		"SELECT id FROM orders WHERE region IN (SELECT region FROM orders)",
		"SELECT amount / 0 FROM orders",
	} {
		if _, err := db.Exec(q); err == nil {
			t.Errorf("expected error for %q", q)
		}
	}
}

// buildScoringSetup trains a pipeline over a synthetic customer table,
// deploys the graph via a fake provider, and loads the data into a table.
func buildScoringSetup(t testing.TB, db *DB, n int) *onnx.Graph {
	r := ml.NewRand(123)
	ids := make([]int64, n)
	ages := make([]float64, n)
	income := make([]float64, n)
	regions := make([]string, n)
	y := make([]float64, n)
	regionNames := []string{"us", "eu", "apac", "latam"}
	for i := 0; i < n; i++ {
		ids[i] = int64(i)
		ages[i] = 20 + r.Float64()*50
		income[i] = 20000 + r.Float64()*100000
		regions[i] = regionNames[r.Intn(4)]
		score := (ages[i]-45)/12 + (income[i]-70000)/40000
		if regions[i] == "us" {
			score++
		}
		if score > 0 {
			y[i] = 1
		}
	}
	f := ml.NewFrame().
		AddNumeric("age", ages).
		AddNumeric("income", income).
		AddCategorical("region", regions)
	pipe := ml.NewPipeline("churn",
		ml.NewFeaturizer().
			With("age", &ml.StandardScaler{}).
			With("income", &ml.StandardScaler{}).
			With("region", &ml.OneHotEncoder{}),
		&ml.GradientBoosting{NTrees: 20, MaxDepth: 3, Loss: ml.LossLogistic})
	if err := pipe.Fit(f, y); err != nil {
		t.Fatal(err)
	}
	g, err := onnx.Export(pipe)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTableFromColumns("customers",
		[]string{"id", "age", "income", "region"},
		[]Column{IntColumn(ids), FloatColumn(ages), FloatColumn(income), StringColumn(regions)}); err != nil {
		t.Fatal(err)
	}
	db.SetModelProvider(fakeModels{"churn": g})
	return g
}

func TestPredictAllLevelsAgree(t *testing.T) {
	db := NewDB()
	buildScoringSetup(t, db, 2000)
	const q = `SELECT id, PREDICT(churn, age, income, region) AS score FROM customers
		WHERE age > 30 AND PREDICT(churn, age, income, region) > 0.7 ORDER BY id`

	var ref *Result
	for _, level := range []opt.Level{opt.LevelUDF, opt.LevelVectorized, opt.LevelParallel, opt.LevelFull} {
		res, err := db.ExecLevel(q, level)
		if err != nil {
			t.Fatalf("level %v: %v", level, err)
		}
		if ref == nil {
			ref = res
			if len(res.Rows) == 0 {
				t.Fatal("query returned no rows; test is vacuous")
			}
			continue
		}
		if len(res.Rows) != len(ref.Rows) {
			t.Fatalf("level %v: %d rows, want %d", level, len(res.Rows), len(ref.Rows))
		}
		for i := range res.Rows {
			if res.Rows[i][0] != ref.Rows[i][0] {
				t.Fatalf("level %v row %d id mismatch", level, i)
			}
			a := res.Rows[i][1].(float64)
			b := ref.Rows[i][1].(float64)
			if math.Abs(a-b) > 1e-9 {
				t.Fatalf("level %v row %d score %v vs %v", level, i, a, b)
			}
		}
	}
}

func TestPredictPushUpChangesPlanNotResult(t *testing.T) {
	db := NewDB()
	buildScoringSetup(t, db, 1000)
	// Score used only in the threshold: push-up applies at LevelFull.
	const q = `SELECT id FROM customers WHERE PREDICT(churn, age, income, region) >= 0.8 ORDER BY id`
	stmt, err := sqlpkg.ParseOne(q)
	if err != nil {
		t.Fatal(err)
	}
	_, repFull, err := db.ExecSelect(stmt.(*sqlpkg.SelectStmt), ExecOptions{Level: opt.LevelFull})
	if err != nil {
		t.Fatal(err)
	}
	if !repFull.PushedUp {
		t.Error("push-up should fire when score is only compared")
	}
	resFull, err := db.ExecLevel(q, opt.LevelFull)
	if err != nil {
		t.Fatal(err)
	}
	resBase, err := db.ExecLevel(q, opt.LevelVectorized)
	if err != nil {
		t.Fatal(err)
	}
	if len(resFull.Rows) != len(resBase.Rows) {
		t.Fatalf("push-up changed results: %d vs %d rows", len(resFull.Rows), len(resBase.Rows))
	}
	for i := range resFull.Rows {
		if resFull.Rows[i][0] != resBase.Rows[i][0] {
			t.Fatalf("push-up changed row %d", i)
		}
	}
}

func TestPredictAggregates(t *testing.T) {
	db := NewDB()
	buildScoringSetup(t, db, 500)
	res, err := db.Exec(`SELECT region, avg(PREDICT(churn, age, income, region)) AS mean_score, count(*) AS n
		FROM customers GROUP BY region ORDER BY region`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %v", res.Rows)
	}
	var total int64
	for _, row := range res.Rows {
		total += row[2].(int64)
		score := row[1].(float64)
		if score < 0 || score > 1 {
			t.Errorf("mean score %v out of range", score)
		}
	}
	if total != 500 {
		t.Errorf("total rows = %d", total)
	}
}

func TestConcurrentReadsDuringWrites(t *testing.T) {
	db := newTestDB(t)
	done := make(chan error, 4)
	for w := 0; w < 2; w++ {
		go func() {
			for i := 0; i < 50; i++ {
				if _, err := db.Exec("SELECT count(*) AS n, sum(amount) AS s FROM orders"); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for w := 0; w < 2; w++ {
		go func(w int) {
			for i := 0; i < 50; i++ {
				q := fmt.Sprintf("INSERT INTO orders VALUES (%d, 'us', 5.0, 1)", 100+w*50+i)
				if _, err := db.Exec(q); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(w)
	}
	for i := 0; i < 4; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// Property: LIKE matcher agrees with a reference implementation on random
// inputs drawn from a small alphabet.
func TestLikeProperty(t *testing.T) {
	ref := func(s, p string) bool {
		// Simple recursive reference.
		var rec func(si, pi int) bool
		rec = func(si, pi int) bool {
			if pi == len(p) {
				return si == len(s)
			}
			switch p[pi] {
			case '%':
				for k := si; k <= len(s); k++ {
					if rec(k, pi+1) {
						return true
					}
				}
				return false
			case '_':
				return si < len(s) && rec(si+1, pi+1)
			default:
				return si < len(s) && s[si] == p[pi] && rec(si+1, pi+1)
			}
		}
		return rec(0, 0)
	}
	alphabet := []byte("ab%_")
	f := func(sBits, pBits uint32) bool {
		var s, p []byte
		for i := 0; i < 8; i++ {
			s = append(s, alphabet[(sBits>>(i*2))&1]) // only 'a','b' in s
			p = append(p, alphabet[(pBits>>(i*2))&3])
		}
		return likeMatch(string(s), string(p)) == ref(string(s), string(p))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestAddInterval(t *testing.T) {
	cases := []struct {
		in   string
		n    int
		unit string
		want string
	}{
		{"1994-01-01", 1, "year", "1995-01-01"},
		{"1994-01-31", 1, "month", "1994-02-28"},
		{"1996-01-31", 1, "month", "1996-02-29"},
		{"1994-12-31", 1, "day", "1995-01-01"},
		{"1994-03-01", -1, "day", "1994-02-28"},
		{"1994-01-15", 90, "day", "1994-04-15"},
		{"1994-11-15", 3, "month", "1995-02-15"},
	}
	for _, c := range cases {
		got, err := AddInterval(c.in, c.n, c.unit)
		if err != nil {
			t.Fatalf("AddInterval(%s, %d, %s): %v", c.in, c.n, c.unit, err)
		}
		if got != c.want {
			t.Errorf("AddInterval(%s, %d, %s) = %s, want %s", c.in, c.n, c.unit, got, c.want)
		}
	}
	if _, err := AddInterval("bogus", 1, "day"); err == nil {
		t.Error("bad date should error")
	}
	if _, err := AddInterval("1994-01-01", 1, "fortnight"); err == nil {
		t.Error("bad unit should error")
	}
}

func TestInsertSelectBatchWriteback(t *testing.T) {
	db := NewDB()
	buildScoringSetup(t, db, 300)
	if _, err := db.Exec("CREATE TABLE scores (id int, score float)"); err != nil {
		t.Fatal(err)
	}
	res, err := db.Exec(`INSERT INTO scores (id, score)
		SELECT id, PREDICT(churn, age, income, region) FROM customers WHERE age > 40`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Affected == 0 {
		t.Fatal("no rows written back")
	}
	check, err := db.Exec("SELECT count(*) AS n, min(score) AS lo, max(score) AS hi FROM scores")
	if err != nil {
		t.Fatal(err)
	}
	if check.Rows[0][0].(int64) != res.Affected {
		t.Errorf("stored %v rows, affected %d", check.Rows[0][0], res.Affected)
	}
	if lo := check.Rows[0][1].(float64); lo < 0 || lo > 1 {
		t.Errorf("score out of range: %v", lo)
	}
	// Mismatched column count errors cleanly.
	if _, err := db.Exec("INSERT INTO scores (id, score) SELECT id FROM customers"); err == nil {
		t.Error("column-count mismatch should error")
	}
}
