package engine

// Group-commit pinning: concurrent committers must share fsyncs without
// weakening the ack-after-sync invariant — every acknowledged statement
// survives a reopen, exactly once.

import (
	"fmt"
	"sync"
	"testing"
)

// TestGroupCommitConcurrentWriters hammers one table from many goroutines
// under the always-fsync policy and verifies (a) every acknowledged INSERT
// survives a reopen, (b) the group-commit stats show fsyncs covering the
// committed records. Run with -race to pin the leader/follower handoff.
func TestGroupCommitConcurrentWriters(t *testing.T) {
	dir := t.TempDir()
	db, _, err := OpenDirDB(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`CREATE TABLE hits (w int, i int)`); err != nil {
		t.Fatal(err)
	}
	const writers = 16
	const perWriter = 6
	var wg sync.WaitGroup
	errs := make(chan error, writers*perWriter)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if _, err := db.Exec(fmt.Sprintf("INSERT INTO hits VALUES (%d, %d)", w, i)); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	syncs, records := db.WALGroupCommitStats()
	if syncs == 0 {
		t.Fatal("no group-commit fsyncs recorded under -wal-sync always")
	}
	if records < writers*perWriter {
		t.Fatalf("group-commit stats cover %d records, want >= %d", records, writers*perWriter)
	}
	t.Logf("group commit: %d records over %d fsyncs (%.1f records/fsync)",
		records, syncs, float64(records)/float64(syncs))

	if err := db.CloseDurability(); err != nil {
		t.Fatal(err)
	}
	re, info, err := OpenDirDB(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	defer re.CloseDurability()
	res, err := re.Exec(`SELECT count(*) FROM hits`)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].(int64); got != writers*perWriter {
		t.Fatalf("recovered %d rows, want %d (recovery: %+v)", got, writers*perWriter, info)
	}
	// Exactly once: no duplicated (w, i) pairs.
	res, err = re.Exec(`SELECT count(*) FROM (SELECT DISTINCT w, i FROM hits) d`)
	if err != nil {
		// Subqueries may be unsupported; distinct-count the pairs directly.
		res, err = re.Exec(`SELECT count(*) AS n FROM hits GROUP BY w, i ORDER BY n DESC LIMIT 1`)
		if err != nil {
			t.Fatal(err)
		}
		if got := res.Rows[0][0].(int64); got != 1 {
			t.Fatalf("a committed row was applied %d times", got)
		}
		return
	}
	if got := res.Rows[0][0].(int64); got != writers*perWriter {
		t.Fatalf("distinct pairs %d, want %d", got, writers*perWriter)
	}
}

// TestGroupCommitUnderCheckpoint interleaves concurrent committers with
// checkpoints: rotation swaps the log under the exclusive commit barrier,
// and every in-flight waiter must still learn its frame became durable
// (the pre-rotation sync covers it). Everything must survive a reopen.
func TestGroupCommitUnderCheckpoint(t *testing.T) {
	dir := t.TempDir()
	db, _, err := OpenDirDB(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`CREATE TABLE ck (v int)`); err != nil {
		t.Fatal(err)
	}
	const writers = 8
	const perWriter = 5
	var wg sync.WaitGroup
	errs := make(chan error, writers*perWriter+8)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if _, err := db.Exec(fmt.Sprintf("INSERT INTO ck VALUES (%d)", w*100+i)); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 4; i++ {
			if err := db.Checkpoint(); err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := db.CloseDurability(); err != nil {
		t.Fatal(err)
	}
	re, _, err := OpenDirDB(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	defer re.CloseDurability()
	res, err := re.Exec(`SELECT count(*) FROM ck`)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].(int64); got != writers*perWriter {
		t.Fatalf("recovered %d rows, want %d", got, writers*perWriter)
	}
}
