package engine

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"testing"
)

// rotateWAL forces a segment rotation without a checkpoint, producing the
// multi-segment on-disk layouts the shipper's read path must handle.
func rotateWAL(t *testing.T, db *DB) {
	t.Helper()
	db.commitMu.Lock()
	_, err := db.wal.rotate()
	db.commitMu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
}

// collectSince pages through ReadWALSince until the durable watermark,
// asserting contiguity, and returns the LSNs and payloads seen.
func collectSince(t *testing.T, db *DB, from int64, maxBytes int) ([]int64, [][]byte) {
	t.Helper()
	var lsns []int64
	var payloads [][]byte
	for {
		last, durable, err := db.ReadWALSince(from, maxBytes, func(lsn int64, payload []byte) error {
			lsns = append(lsns, lsn)
			payloads = append(payloads, append([]byte(nil), payload...))
			return nil
		})
		if err != nil {
			t.Fatalf("ReadWALSince(%d): %v", from, err)
		}
		if last >= durable {
			return lsns, payloads
		}
		from = last
	}
}

// TestReadWALSinceOffsets exercises the shipper's read path from every
// possible LSN offset over a multi-segment layout (two rotated segments
// plus the live log): each scan must deliver exactly the contiguous run
// (from, durable].
func TestReadWALSinceOffsets(t *testing.T) {
	dir := t.TempDir()
	db, _, err := OpenDirDB(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	defer db.CloseDurability()
	mustExec(t, db, "CREATE TABLE kv (id int, v int)")
	for i := 0; i < 10; i++ {
		mustExec(t, db, fmt.Sprintf("INSERT INTO kv VALUES (%d, %d)", i, i))
	}
	rotateWAL(t, db)
	for i := 10; i < 20; i++ {
		mustExec(t, db, fmt.Sprintf("INSERT INTO kv VALUES (%d, %d)", i, i))
	}
	rotateWAL(t, db)
	for i := 20; i < 30; i++ {
		mustExec(t, db, fmt.Sprintf("INSERT INTO kv VALUES (%d, %d)", i, i))
	}
	durable := db.DurableLSN()
	if durable < 31 {
		t.Fatalf("expected at least 31 durable frames, got %d", durable)
	}
	for from := int64(0); from <= durable; from++ {
		lsns, _ := collectSince(t, db, from, 1<<30)
		want := durable - from
		if int64(len(lsns)) != want {
			t.Fatalf("from %d: got %d frames, want %d", from, len(lsns), want)
		}
		for i, lsn := range lsns {
			if lsn != from+int64(i)+1 {
				t.Fatalf("from %d: frame %d has LSN %d, want %d", from, i, lsn, from+int64(i)+1)
			}
		}
	}

	// A one-byte budget degenerates to one frame per call and still
	// converges on the same sequence.
	paged, _ := collectSince(t, db, 0, 1)
	if int64(len(paged)) != durable {
		t.Fatalf("paged scan returned %d frames, want %d", len(paged), durable)
	}
}

// TestReadWALSinceTruncated pins the horizon contract: after a checkpoint
// folds frames into the snapshot, reading from below the horizon reports
// ErrWALTruncated (bootstrap needed) while reading from the horizon works.
func TestReadWALSinceTruncated(t *testing.T) {
	dir := t.TempDir()
	db, _, err := OpenDirDB(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	defer db.CloseDurability()
	mustExec(t, db, "CREATE TABLE kv (id int)")
	for i := 0; i < 5; i++ {
		mustExec(t, db, fmt.Sprintf("INSERT INTO kv VALUES (%d)", i))
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	horizon := db.WALHorizon()
	if horizon == 0 {
		t.Fatal("horizon still 0 after checkpoint")
	}
	mustExec(t, db, "INSERT INTO kv VALUES (99)")

	_, _, err = db.ReadWALSince(0, 1<<20, func(int64, []byte) error { return nil })
	if !errors.Is(err, ErrWALTruncated) {
		t.Fatalf("read below horizon: got %v, want ErrWALTruncated", err)
	}
	lsns, _ := collectSince(t, db, horizon, 1<<20)
	if len(lsns) == 0 {
		t.Fatal("read from horizon returned nothing")
	}

	// A snapshot now exists and covers exactly the horizon.
	blob, snapLSN, err := db.SnapshotForShip()
	if err != nil {
		t.Fatal(err)
	}
	if snapLSN != horizon {
		t.Fatalf("snapshot LSN %d != horizon %d", snapLSN, horizon)
	}
	if len(blob) == 0 {
		t.Fatal("empty snapshot blob")
	}
}

// TestReadWALSinceTornTail appends garbage and a truncated frame header
// past the durable frames: the scan must deliver everything durable and
// end cleanly, never surfacing the tear (it is an unacked partial append).
func TestReadWALSinceTornTail(t *testing.T) {
	dir := t.TempDir()
	db, _, err := OpenDirDB(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, "CREATE TABLE kv (id int)")
	horizon := db.WALHorizon()
	for i := 0; i < 8; i++ {
		mustExec(t, db, fmt.Sprintf("INSERT INTO kv VALUES (%d)", i))
	}
	durable := db.DurableLSN()

	// Tear the tail on disk: half a frame header, then nothing. Everything
	// durable precedes it, so the scan must not notice.
	f, err := os.OpenFile(filepath.Join(dir, walFile), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x10, 0x00, 0x00}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	lsns, _ := collectSince(t, db, horizon, 1<<20)
	if int64(len(lsns)) != durable-horizon {
		t.Fatalf("torn-tail scan returned %d frames, want %d", len(lsns), durable-horizon)
	}
}

// TestReplicaApplyRoundTrip ships frames engine-to-engine: every leader
// frame applied through ApplyReplicated must land the replica on the same
// LSN with the same query results, duplicates must skip idempotently, and
// gaps must be rejected.
func TestReplicaApplyRoundTrip(t *testing.T) {
	leader, _, err := OpenDirDB(t.TempDir(), false)
	if err != nil {
		t.Fatal(err)
	}
	defer leader.CloseDurability()
	replica, _, err := OpenDirDB(t.TempDir(), false)
	if err != nil {
		t.Fatal(err)
	}
	defer replica.CloseDurability()
	replica.SetReplicaMode("test-leader")

	mustExec(t, leader, "CREATE TABLE kv (id int, v int)")
	for i := 0; i < 20; i++ {
		mustExec(t, leader, fmt.Sprintf("INSERT INTO kv VALUES (%d, %d)", i, i*10))
	}
	mustExec(t, leader, "UPDATE kv SET v = v + 1 WHERE id < 5")
	mustExec(t, leader, "DELETE FROM kv WHERE id = 19")

	_, payloads := collectSince(t, leader, 0, 1<<30)
	for _, p := range payloads {
		if _, err := replica.ApplyReplicated(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := replica.SyncWALTo(replica.AppliedLSN()); err != nil {
		t.Fatal(err)
	}
	if got, want := replica.AppliedLSN(), leader.DurableLSN(); got != want {
		t.Fatalf("replica at LSN %d, leader durable %d", got, want)
	}
	for _, q := range []string{
		"SELECT count(*) FROM kv",
		"SELECT sum(v) FROM kv",
	} {
		lr, err := leader.Exec(q)
		if err != nil {
			t.Fatal(err)
		}
		rr, err := replica.Exec(q)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(lr.Rows) != fmt.Sprint(rr.Rows) {
			t.Fatalf("%s diverged: leader %v, replica %v", q, lr.Rows, rr.Rows)
		}
	}

	// Re-applying an old frame is an idempotent skip, not an error.
	if lsn, err := replica.ApplyReplicated(payloads[0]); err != nil || lsn != replica.AppliedLSN() {
		t.Fatalf("duplicate apply: lsn=%d err=%v", lsn, err)
	}
	// A frame that skips ahead is a gap and must be rejected. Fabricate it
	// by replaying the last payloads on a second fresh replica out of order.
	replica2, _, err := OpenDirDB(t.TempDir(), false)
	if err != nil {
		t.Fatal(err)
	}
	defer replica2.CloseDurability()
	replica2.SetReplicaMode("test-leader")
	if _, err := replica2.ApplyReplicated(payloads[3]); err == nil {
		t.Fatal("gap apply succeeded; want error")
	}
	// Local writes are rejected while replicating.
	if _, err := replica.Exec("INSERT INTO kv VALUES (100, 100)"); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("replica write: got %v, want ErrReadOnly", err)
	}
}

// TestBootstrapReplicaFromSnapshot covers the behind-the-horizon path: a
// fresh replica cannot read from LSN 0 after the leader checkpointed, so
// it rebases onto the shipped snapshot and tails the rest of the log.
func TestBootstrapReplicaFromSnapshot(t *testing.T) {
	leader, _, err := OpenDirDB(t.TempDir(), false)
	if err != nil {
		t.Fatal(err)
	}
	defer leader.CloseDurability()
	mustExec(t, leader, "CREATE TABLE kv (id int)")
	for i := 0; i < 10; i++ {
		mustExec(t, leader, fmt.Sprintf("INSERT INTO kv VALUES (%d)", i))
	}
	if err := leader.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for i := 10; i < 15; i++ {
		mustExec(t, leader, fmt.Sprintf("INSERT INTO kv VALUES (%d)", i))
	}

	replicaDir := t.TempDir()
	replica, _, err := OpenDirDB(replicaDir, false)
	if err != nil {
		t.Fatal(err)
	}
	replica.SetReplicaMode("test-leader")

	_, _, err = leader.ReadWALSince(0, 1<<20, func(int64, []byte) error { return nil })
	if !errors.Is(err, ErrWALTruncated) {
		t.Fatalf("expected truncation from LSN 0, got %v", err)
	}
	blob, snapLSN, err := leader.SnapshotForShip()
	if err != nil {
		t.Fatal(err)
	}
	if err := replica.BootstrapReplica(blob); err != nil {
		t.Fatal(err)
	}
	if replica.AppliedLSN() != snapLSN {
		t.Fatalf("bootstrap landed at %d, want %d", replica.AppliedLSN(), snapLSN)
	}
	_, payloads := collectSince(t, leader, snapLSN, 1<<30)
	for _, p := range payloads {
		if _, err := replica.ApplyReplicated(p); err != nil {
			t.Fatal(err)
		}
	}
	res, err := replica.Exec("SELECT count(*) FROM kv")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].(int64) != 15 {
		t.Fatalf("replica count %v, want 15", res.Rows[0][0])
	}

	// The bootstrap must survive a restart: recovery from the replica's
	// own directory lands on the same LSN and contents.
	applied := replica.AppliedLSN()
	if err := replica.CloseDurability(); err != nil {
		t.Fatal(err)
	}
	re, _, err := OpenDirDB(replicaDir, false)
	if err != nil {
		t.Fatal(err)
	}
	defer re.CloseDurability()
	if re.LastLSN() != applied {
		t.Fatalf("recovered replica at LSN %d, want %d", re.LastLSN(), applied)
	}
	res2, err := re.Exec("SELECT count(*) FROM kv")
	if err != nil {
		t.Fatal(err)
	}
	if res2.Rows[0][0].(int64) != 15 {
		t.Fatalf("recovered count %v, want 15", res2.Rows[0][0])
	}
}

// TestCommitGateOrdering pins the quorum seam: the gate runs after local
// durability with the statement's LSN; a gate error fails the ack but the
// write stays installed and durable (an ambiguous commit, like a response
// lost on the wire).
func TestCommitGateOrdering(t *testing.T) {
	db, _, err := OpenDirDB(t.TempDir(), true)
	if err != nil {
		t.Fatal(err)
	}
	defer db.CloseDurability()
	mustExec(t, db, "CREATE TABLE kv (id int)")

	var mu sync.Mutex
	var gated []int64
	db.SetCommitGate(func(lsn int64) error {
		if db.DurableLSN() < lsn {
			t.Errorf("gate ran before LSN %d was durable (watermark %d)", lsn, db.DurableLSN())
		}
		mu.Lock()
		gated = append(gated, lsn)
		mu.Unlock()
		return nil
	})
	mustExec(t, db, "INSERT INTO kv VALUES (1)")
	mustExec(t, db, "INSERT INTO kv VALUES (2)")
	mu.Lock()
	n := len(gated)
	mu.Unlock()
	if n != 2 {
		t.Fatalf("gate ran %d times, want 2", n)
	}

	gateErr := errors.New("quorum lost")
	db.SetCommitGate(func(int64) error { return gateErr })
	if _, err := db.Exec("INSERT INTO kv VALUES (3)"); !errors.Is(err, gateErr) {
		t.Fatalf("gated insert: got %v, want the gate error", err)
	}
	db.SetCommitGate(nil)
	res, err := db.Exec("SELECT count(*) FROM kv")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].(int64) != 3 {
		t.Fatalf("count %v, want 3 (ambiguous commit must still install)", res.Rows[0][0])
	}
}

// TestReopenWALCheckpointExclusive pins the reopen/checkpointer mutual
// exclusion (both serialize on the checkpoint lock): concurrent
// checkpoints, reopens and writers must never corrupt the on-disk state —
// a final recovery sees every committed row exactly once.
func TestReopenWALCheckpointExclusive(t *testing.T) {
	dir := t.TempDir()
	db, _, err := OpenDirDB(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, "CREATE TABLE kv (id int)")

	const writers, rounds = 4, 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				if _, err := db.Exec("INSERT INTO kv VALUES (" + strconv.Itoa(w*rounds+i) + ")"); err != nil {
					t.Errorf("insert: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			if err := db.Checkpoint(); err != nil {
				t.Errorf("checkpoint: %v", err)
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			if err := db.ReopenWAL(); err != nil {
				t.Errorf("reopen: %v", err)
			}
		}
	}()
	wg.Wait()
	if down, reason := db.Degraded(); down {
		t.Fatalf("degraded after reopen/checkpoint race: %s", reason)
	}
	if err := db.CloseDurability(); err != nil {
		t.Fatal(err)
	}

	re, _, err := OpenDirDB(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	defer re.CloseDurability()
	res, err := re.Exec("SELECT count(*) FROM kv")
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].(int64); got != writers*rounds {
		t.Fatalf("recovered %d rows, want %d", got, writers*rounds)
	}
}

// TestWriteFuzzCorpus regenerates the committed FuzzWALReplay seed corpus
// covering multi-segment layouts (run with FLOCK_WRITE_CORPUS=1; normally
// it only verifies the files exist). The corpus entries are single-stream
// concatenations of rotated segment frames plus the live log — exactly
// what boot replay walks, including a torn and a duplicated variant.
func TestWriteFuzzCorpus(t *testing.T) {
	corpusDir := filepath.Join("testdata", "fuzz", "FuzzWALReplay")
	if os.Getenv("FLOCK_WRITE_CORPUS") == "" {
		entries, err := os.ReadDir(corpusDir)
		if err != nil || len(entries) == 0 {
			t.Fatalf("committed fuzz corpus missing at %s (regenerate with FLOCK_WRITE_CORPUS=1): %v", corpusDir, err)
		}
		return
	}
	dir := t.TempDir()
	db, _, err := OpenDirDB(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, "CREATE TABLE fz (id int, v int)")
	for i := 0; i < 6; i++ {
		mustExec(t, db, fmt.Sprintf("INSERT INTO fz VALUES (%d, %d)", i, i))
	}
	rotateWAL(t, db)
	for i := 6; i < 12; i++ {
		mustExec(t, db, fmt.Sprintf("INSERT INTO fz VALUES (%d, %d)", i, i))
	}
	rotateWAL(t, db)
	mustExec(t, db, "UPDATE fz SET v = v + 1 WHERE id < 3")
	if err := db.CloseDurability(); err != nil {
		t.Fatal(err)
	}

	// Stitch segments + live log into one stream (single header).
	files, err := walFilesInOrder(dir)
	if err != nil {
		t.Fatal(err)
	}
	var stream bytes.Buffer
	stream.WriteString(walHeader)
	var segFrames [][]byte // frames of the middle segment, for the dup variant
	for i, path := range files {
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		body := raw[len(walHeader):]
		stream.Write(body)
		if i == 1 {
			segFrames = append(segFrames, body)
		}
	}
	full := stream.Bytes()
	write := func(name string, data []byte) {
		t.Helper()
		if err := os.MkdirAll(corpusDir, 0o755); err != nil {
			t.Fatal(err)
		}
		content := "go test fuzz v1\n[]byte(" + strconv.Quote(string(data)) + ")\n"
		if err := os.WriteFile(filepath.Join(corpusDir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("multiseg", full)
	write("multiseg_torn", full[:len(full)-5])
	dup := append([]byte(nil), full...)
	for _, b := range segFrames {
		dup = append(dup, b...) // stale duplicated segment at the tail
	}
	write("multiseg_dup", dup)
}
