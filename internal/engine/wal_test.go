package engine

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// mustExec fails the test on statement error.
func mustExec(t *testing.T, db *DB, q string) {
	t.Helper()
	if _, err := db.Exec(q); err != nil {
		t.Fatalf("%s: %v", q, err)
	}
}

func countOf(t *testing.T, db *DB, q string) int64 {
	t.Helper()
	res, err := db.Exec(q)
	if err != nil {
		t.Fatalf("%s: %v", q, err)
	}
	return res.Rows[0][0].(int64)
}

// workloadDirDB opens dir and runs a small mixed DML workload through it.
func workloadDirDB(t *testing.T, dir string) *DB {
	t.Helper()
	db, _, err := OpenDirDB(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, "CREATE TABLE kv (id int, v int)")
	for i := 0; i < 10; i++ {
		mustExec(t, db, fmt.Sprintf("INSERT INTO kv VALUES (%d, %d)", i, i))
	}
	mustExec(t, db, "UPDATE kv SET v = v + 100 WHERE id >= 5")
	mustExec(t, db, "DELETE FROM kv WHERE id = 0")
	return db
}

func checkWorkloadState(t *testing.T, db *DB) {
	t.Helper()
	if got := countOf(t, db, "SELECT count(*) FROM kv"); got != 9 {
		t.Fatalf("rows = %d, want 9", got)
	}
	if got := countOf(t, db, "SELECT count(*) FROM kv WHERE v >= 100"); got != 5 {
		t.Fatalf("updated rows = %d, want 5", got)
	}
}

// TestOpenDirRecoversWithoutCheckpoint is the crash path at engine level:
// every acknowledged statement is in the WAL, the process dies without ever
// checkpointing, and a reopen replays the log into the same state —
// including version counters and retained time-travel history.
func TestOpenDirRecoversWithoutCheckpoint(t *testing.T) {
	dir := t.TempDir()
	db := workloadDirDB(t, dir)
	tab, _ := db.Table("kv")
	wantVersion := tab.Version()
	wantRetained := tab.RetainedVersions()
	// No Checkpoint, no CloseDurability: simulate a crash (the OS file is
	// written; only the in-memory state dies with the first DB).

	db2, info, err := OpenDirDB(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if info.Records == 0 {
		t.Fatalf("recovery replayed no records: %+v", info)
	}
	// Query log survived too (lazy provenance depends on it); compare before
	// the verification SELECTs below append to it.
	if len(db2.QueryLog()) != len(db.QueryLog()) {
		t.Errorf("log = %d entries, want %d", len(db2.QueryLog()), len(db.QueryLog()))
	}
	checkWorkloadState(t, db2)
	tab2, err := db2.Table("kv")
	if err != nil {
		t.Fatal(err)
	}
	if tab2.Version() != wantVersion {
		t.Errorf("recovered version = %d, want %d", tab2.Version(), wantVersion)
	}
	got := tab2.RetainedVersions()
	if len(got) != len(wantRetained) {
		t.Fatalf("retained versions = %v, want %v", got, wantRetained)
	}
	// Time travel works across the restart: the pre-delete version still
	// shows all ten rows.
	res, err := db2.Exec(fmt.Sprintf("SELECT count(*) FROM kv VERSION %d", wantVersion-1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].(int64) != 10 {
		t.Errorf("historical count = %v, want 10", res.Rows[0][0])
	}
}

// TestCheckpointFoldsWAL: a checkpoint truncates the live log, retires the
// rotated segment, and the directory still recovers (snapshot + post-
// checkpoint records).
func TestCheckpointFoldsWAL(t *testing.T) {
	dir := t.TempDir()
	db := workloadDirDB(t, dir)
	before := db.WALSizeBytes()
	if before <= int64(len(walHeader)) {
		t.Fatalf("wal size before checkpoint = %d", before)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if after := db.WALSizeBytes(); after >= before {
		t.Errorf("wal size after checkpoint = %d, want < %d", after, before)
	}
	if segs, _ := filepath.Glob(filepath.Join(dir, "wal-*"+walSegSuffix)); len(segs) != 0 {
		t.Errorf("rotated segments not retired: %v", segs)
	}
	if _, err := os.Stat(filepath.Join(dir, snapshotFile)); err != nil {
		t.Fatalf("no snapshot after checkpoint: %v", err)
	}
	// Writes after the checkpoint land in the fresh log and replay on boot.
	mustExec(t, db, "INSERT INTO kv VALUES (99, 99)")

	db2, info, err := OpenDirDB(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if !info.SnapshotLoaded {
		t.Error("recovery did not load the checkpoint snapshot")
	}
	if got := countOf(t, db2, "SELECT count(*) FROM kv"); got != 10 {
		t.Fatalf("rows = %d, want 10", got)
	}
}

// TestWALReplayIdempotent: replaying the same log twice is a no-op — the
// LSN skip leaves row counts, versions and the query log unchanged.
func TestWALReplayIdempotent(t *testing.T) {
	dir := t.TempDir()
	db := workloadDirDB(t, dir)
	_ = db
	wal, err := os.ReadFile(filepath.Join(dir, walFile))
	if err != nil {
		t.Fatal(err)
	}

	fresh := NewDB()
	applied, skipped, torn, err := fresh.ReplayWAL(bytes.NewReader(wal))
	if err != nil {
		t.Fatal(err)
	}
	if torn || applied == 0 || skipped != 0 {
		t.Fatalf("first replay: applied=%d skipped=%d torn=%t", applied, skipped, torn)
	}
	tab, _ := fresh.Table("kv")
	version := tab.Version()
	logLen := len(fresh.QueryLog())

	applied2, skipped2, torn2, err := fresh.ReplayWAL(bytes.NewReader(wal))
	if err != nil {
		t.Fatal(err)
	}
	if applied2 != 0 || skipped2 != applied+skipped || torn2 {
		t.Fatalf("second replay: applied=%d skipped=%d torn=%t, want 0/%d/false", applied2, skipped2, torn2, applied)
	}
	if tab.Version() != version {
		t.Errorf("version after double replay = %d, want %d", tab.Version(), version)
	}
	if len(fresh.QueryLog()) != logLen {
		t.Errorf("log after double replay = %d entries, want %d", len(fresh.QueryLog()), logLen)
	}
	checkWorkloadState(t, fresh)
}

// TestWALTornTail: a crash mid-append leaves a partial final record; replay
// applies everything before the tear and reports it, and a corrupted (CRC-
// mismatching) tail is treated the same way.
func TestWALTornTail(t *testing.T) {
	dir := t.TempDir()
	workloadDirDB(t, dir)
	wal, err := os.ReadFile(filepath.Join(dir, walFile))
	if err != nil {
		t.Fatal(err)
	}

	fresh := NewDB()
	full, _, _, err := fresh.ReplayWAL(bytes.NewReader(wal))
	if err != nil {
		t.Fatal(err)
	}

	for name, mutate := range map[string]func([]byte) []byte{
		"truncated": func(b []byte) []byte { return b[:len(b)-3] },
		"corrupted": func(b []byte) []byte {
			b = append([]byte(nil), b...)
			b[len(b)-2] ^= 0xFF
			return b
		},
	} {
		db := NewDB()
		applied, _, torn, err := db.ReplayWAL(bytes.NewReader(mutate(wal)))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !torn {
			t.Errorf("%s tail not reported as torn", name)
		}
		if applied != full-1 {
			t.Errorf("%s: applied %d records, want %d (all but the torn tail)", name, applied, full-1)
		}
	}

	// A directory whose live log is torn recovers cleanly end-to-end.
	if err := os.WriteFile(filepath.Join(dir, walFile), wal[:len(wal)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	db2, info, err := OpenDirDB(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if !info.TornTail {
		t.Error("recovery did not report the torn tail")
	}
	// The torn record was the DELETE; everything before it is present.
	if got := countOf(t, db2, "SELECT count(*) FROM kv"); got != 10 {
		t.Errorf("rows after torn-tail recovery = %d, want 10", got)
	}
}

// TestSnapshotConsistentUnderConcurrentDML: the snapshot barrier must
// capture all tables (and the query log) at one statement boundary. A
// writer inserts into a then b in lockstep; any consistent cut has
// count(a) - count(b) ∈ {0, 1}, while a torn per-table copy could observe
// b ahead of a. Run with -race to also exercise the locking.
func TestSnapshotConsistentUnderConcurrentDML(t *testing.T) {
	db := NewDB()
	mustExec(t, db, "CREATE TABLE a (x int)")
	mustExec(t, db, "CREATE TABLE b (x int)")

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := db.Exec(fmt.Sprintf("INSERT INTO a VALUES (%d)", i)); err != nil {
				t.Error(err)
				return
			}
			if _, err := db.Exec(fmt.Sprintf("INSERT INTO b VALUES (%d)", i)); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	for i := 0; i < 10; i++ {
		blob, err := db.SnapshotBytes()
		if err != nil {
			t.Fatal(err)
		}
		restored := NewDB()
		if err := restored.LoadSnapshot(bytes.NewReader(blob)); err != nil {
			t.Fatal(err)
		}
		na := countOf(t, restored, "SELECT count(*) FROM a")
		nb := countOf(t, restored, "SELECT count(*) FROM b")
		if na-nb < 0 || na-nb > 1 {
			t.Fatalf("torn snapshot: count(a)=%d count(b)=%d", na, nb)
		}
	}
	close(stop)
	wg.Wait()
}

// TestLoadSnapshotAllOrNothing: a snapshot that fails validation midway
// must leave the database untouched, so a retry with a good snapshot
// succeeds (no partial-restore poisoning).
func TestLoadSnapshotAllOrNothing(t *testing.T) {
	good := savedDB{FormatVersion: 2, Tables: []savedTable{
		{Name: "ok", Schema: Schema{{Name: "x", Type: TypeInt}}, Cols: []Column{IntColumn([]int64{1, 2})}, Version: 1},
	}}
	bad := savedDB{FormatVersion: 2, Tables: []savedTable{
		{Name: "ok", Schema: Schema{{Name: "x", Type: TypeInt}}, Cols: []Column{IntColumn([]int64{1, 2})}, Version: 1},
		// Ragged: the column type contradicts the schema.
		{Name: "broken", Schema: Schema{{Name: "x", Type: TypeInt}}, Cols: []Column{FloatColumn([]float64{1})}, Version: 1},
	}}
	encode := func(s savedDB) []byte {
		var buf bytes.Buffer
		if err := encodeSnapshot(&buf, s); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	db := NewDB()
	if err := db.LoadSnapshot(bytes.NewReader(encode(bad))); err == nil {
		t.Fatal("corrupt snapshot loaded without error")
	}
	if n := len(db.TableNames()); n != 0 {
		t.Fatalf("failed restore left %d tables behind", n)
	}
	// The retry that used to fail with "requires an empty database".
	if err := db.LoadSnapshot(bytes.NewReader(encode(good))); err != nil {
		t.Fatalf("retry after failed restore: %v", err)
	}
	if got := countOf(t, db, "SELECT count(*) FROM ok"); got != 2 {
		t.Fatalf("rows = %d, want 2", got)
	}
}

// TestSnapshotV2KeepsHistory: retained time-travel versions survive a
// snapshot round trip (the v1 "history does not survive restarts" carve-out
// is gone).
func TestSnapshotV2KeepsHistory(t *testing.T) {
	db := NewDB()
	mustExec(t, db, "CREATE TABLE t (a int)")
	for i := 1; i <= 3; i++ {
		mustExec(t, db, fmt.Sprintf("INSERT INTO t VALUES (%d)", i))
	}
	mustExec(t, db, "UPDATE t SET a = a * 10 WHERE a = 2")

	blob, err := db.SnapshotBytes()
	if err != nil {
		t.Fatal(err)
	}
	restored := NewDB()
	if err := restored.LoadSnapshot(bytes.NewReader(blob)); err != nil {
		t.Fatal(err)
	}
	tab, _ := db.Table("t")
	rtab, err := restored.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	want := tab.RetainedVersions()
	got := rtab.RetainedVersions()
	if len(got) != len(want) {
		t.Fatalf("retained = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("retained = %v, want %v", got, want)
		}
	}
	// Version 3 (before the UPDATE) still shows the original value.
	res, err := restored.Exec("SELECT sum(a) FROM t VERSION 3")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].(float64) != 6 {
		t.Errorf("historical sum = %v, want 6", res.Rows[0][0])
	}
	res, err = restored.Exec("SELECT sum(a) FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].(float64) != 24 {
		t.Errorf("current sum = %v, want 24", res.Rows[0][0])
	}
}

// TestDropTableWALLogged: DDL is logged too — a dropped table stays dropped
// after recovery.
func TestDropTableWALLogged(t *testing.T) {
	dir := t.TempDir()
	db := workloadDirDB(t, dir)
	mustExec(t, db, "CREATE TABLE doomed (x int)")
	if err := db.DropTable("doomed"); err != nil {
		t.Fatal(err)
	}
	db2, _, err := OpenDirDB(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db2.Table("doomed"); err == nil {
		t.Error("dropped table came back after recovery")
	}
	checkWorkloadState(t, db2)
}
