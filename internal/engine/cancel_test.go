package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/onnx"
	"repro/internal/opt"
	"repro/internal/sql"
)

func TestExecContextPreCanceled(t *testing.T) {
	db := NewDB()
	buildScoringSetup(t, db, 1000)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := db.ExecContext(ctx, "SELECT count(*) FROM customers WHERE age > 30")
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestDMLContextPreCanceled(t *testing.T) {
	db := NewDB()
	buildScoringSetup(t, db, 1000)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := db.ExecContext(ctx, "UPDATE customers SET age = age + 1"); !errors.Is(err, context.Canceled) {
		t.Fatalf("UPDATE: want context.Canceled, got %v", err)
	}
	if _, err := db.ExecContext(ctx, "DELETE FROM customers WHERE age > 100"); !errors.Is(err, context.Canceled) {
		t.Fatalf("DELETE: want context.Canceled, got %v", err)
	}
	// The canceled statements must not have mutated anything.
	res, err := db.Exec("SELECT count(*) FROM customers")
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].(int64); got != 1000 {
		t.Fatalf("canceled DML changed the table: %d rows", got)
	}
}

// TestFilterRangeCancelsAtBatchBoundary proves the acceptance criterion
// directly: a cancellation arriving mid-scan stops the filter loop at the
// NEXT morsel boundary — exactly one more kernel call never happens.
func TestFilterRangeCancelsAtBatchBoundary(t *testing.T) {
	n := morselRows * 4
	rs := &RowSet{
		Schema: Schema{{Name: "x", Type: TypeInt}},
		Cols:   []Column{IntColumn(make([]int64, n))},
		N:      n,
	}
	ctx, cancel := context.WithCancel(context.Background())
	ex := &executor{ctx: ctx, o: ExecOptions{Level: opt.LevelVectorized}}

	calls := 0
	fn := func(part *RowSet) (*Vec, error) {
		calls++
		if calls == 2 {
			cancel() // cancellation lands while batch 2 is "executing"
		}
		v := newVec(TypeBool, part.N)
		for i := range v.Bools {
			v.Bools[i] = true
		}
		return v, nil
	}
	sels, err := ex.filterMorsels(fn, rs, 1)
	for _, s := range sels {
		if s != nil {
			putSel(s)
		}
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if calls != 2 {
		t.Fatalf("filter ran %d batches; cancellation must stop it right after batch 2", calls)
	}
}

// TestConcurrentDMLNoLostWrites interleaves INSERTs with UPDATE/DELETE
// read-modify-write statements on one table: statement-level write
// exclusion must guarantee no committed insert is dropped by a concurrent
// rebuild, and no canceled statement leaves partial rows behind.
func TestConcurrentDMLNoLostWrites(t *testing.T) {
	db := NewDB()
	// A wide initial table makes the UPDATE's snapshot -> rebuild -> replace
	// window long enough that unserialized inserts would land inside it.
	const seed = 20000
	ids := make([]int64, seed)
	vs := make([]int64, seed)
	for i := range ids {
		ids[i] = int64(-i - 1)
	}
	if _, err := db.CreateTableFromColumns("t",
		[]string{"id", "v"},
		[]Column{IntColumn(ids), IntColumn(vs)}); err != nil {
		t.Fatal(err)
	}
	const inserters = 4
	const perInserter = 25
	const updaters = 2
	var wg sync.WaitGroup
	for w := 0; w < inserters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perInserter; i++ {
				q := fmt.Sprintf("INSERT INTO t VALUES (%d, 0)", w*1000+i+1)
				if _, err := db.Exec(q); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	for w := 0; w < updaters; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if _, err := db.Exec("UPDATE t SET v = v + 1 WHERE id >= 0"); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	res, err := db.Exec("SELECT count(*) FROM t")
	if err != nil {
		t.Fatal(err)
	}
	want := int64(seed + inserters*perInserter)
	if got := res.Rows[0][0].(int64); got != want {
		t.Fatalf("lost writes under concurrent DML: %d rows, want %d", got, want)
	}
}

// TestInsertTypeErrorIsAtomic: a multi-row INSERT whose later row fails a
// type check must commit nothing — no partial rows, no ragged columns, no
// version bump.
func TestInsertTypeErrorIsAtomic(t *testing.T) {
	db := NewDB()
	if _, err := db.Exec("CREATE TABLE t (a int, b text)"); err != nil {
		t.Fatal(err)
	}
	tab, _ := db.Table("t")
	v0 := tab.Version()
	_, err := db.Exec("INSERT INTO t VALUES (1, 'ok'), (2, 3)")
	if err == nil {
		t.Fatal("expected a type error storing int into text column")
	}
	res, err := db.Exec("SELECT count(*) FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].(int64); got != 0 {
		t.Fatalf("failed INSERT committed %d partial rows", got)
	}
	if tab.Version() != v0 {
		t.Fatalf("failed INSERT bumped version %d -> %d", v0, tab.Version())
	}
}

// TestInsertSelectCancelLeavesNoPartialWrite: a canceled INSERT ... SELECT
// must write nothing at all — never a torn prefix of the result.
func TestInsertSelectCancelLeavesNoPartialWrite(t *testing.T) {
	db := NewDB()
	buildScoringSetup(t, db, 100)
	if _, err := db.Exec("CREATE TABLE scores (id int, s float)"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := db.ExecAsContext(ctx,
		"INSERT INTO scores SELECT id, PREDICT(churn, age, income, region) FROM customers",
		"test", ExecOptions{Level: opt.LevelFull})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	res, err := db.Exec("SELECT count(*) FROM scores")
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].(int64); got != 0 {
		t.Fatalf("canceled INSERT...SELECT left %d partial rows", got)
	}
}

// blockingScorer parks every scoring call until its context is canceled —
// a model service that hangs. Deployed through SetUDFScorerFactory it
// proves a wedged scorer cannot wedge a session once ctx is canceled.
type blockingScorer struct {
	started chan struct{}
	once    sync.Once
}

func (b *blockingScorer) Score(batch *onnx.Batch) ([]float64, error) {
	return b.ScoreContext(context.Background(), batch)
}

func (b *blockingScorer) ScoreContext(ctx context.Context, batch *onnx.Batch) ([]float64, error) {
	b.once.Do(func() { close(b.started) })
	<-ctx.Done()
	return nil, ctx.Err()
}

func TestCancelUnblocksHungScorer(t *testing.T) {
	db := NewDB()
	buildScoringSetup(t, db, 500)
	bs := &blockingScorer{started: make(chan struct{})}
	db.SetUDFScorerFactory(func(g *onnx.Graph) (onnx.Scorer, error) { return bs, nil })

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() {
		_, err := db.ExecAsContext(ctx,
			"SELECT PREDICT(churn, age, income, region) FROM customers",
			"test", ExecOptions{Level: opt.LevelUDF})
		done <- err
	}()

	select {
	case <-bs.started:
	case <-time.After(10 * time.Second):
		t.Fatal("scorer never invoked")
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled query did not return; hung scorer wedged the session")
	}
}

// TestCancelDuringScan smoke-checks the end-to-end path: a query over a
// large table canceled mid-flight returns a context error promptly rather
// than running to completion.
func TestCancelDuringScan(t *testing.T) {
	db := NewDB()
	const n = 1 << 20
	ids := make([]int64, n)
	notes := make([]string, n)
	for i := range ids {
		ids[i] = int64(i)
		notes[i] = "the quick brown fox jumps over the lazy dog and keeps on running far away"
	}
	if _, err := db.CreateTableFromColumns("big",
		[]string{"id", "notes"},
		[]Column{IntColumn(ids), StringColumn(notes)}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := db.ExecAsContext(ctx,
			"SELECT count(*) FROM big WHERE notes LIKE '%keeps on running%' AND notes LIKE '%nowhere%'",
			"test", ExecOptions{Level: opt.LevelVectorized})
		done <- err
	}()
	time.Sleep(2 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		// The query may legitimately finish before the cancel lands on a
		// fast machine; all that matters is a prompt, clean return.
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("unexpected error: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("canceled scan did not return within 10s")
	}
}

// countdownCtx is a deterministic cancellation source: it reports Done
// (closed channel) only after its Done() method has been polled more than
// threshold times. Execution over a fixed input polls in a fixed order, so
// the trip point can be placed precisely — here, inside the sort
// comparator.
type countdownCtx struct {
	threshold int
	polls     int
	closed    chan struct{}
	open      chan struct{}
}

func newCountdownCtx(threshold int) *countdownCtx {
	c := &countdownCtx{threshold: threshold, closed: make(chan struct{}), open: make(chan struct{})}
	close(c.closed)
	return c
}

func (c *countdownCtx) Done() <-chan struct{} {
	c.polls++
	if c.polls > c.threshold {
		return c.closed
	}
	return c.open
}

func (c *countdownCtx) Err() error {
	if c.polls > c.threshold {
		return context.Canceled
	}
	return nil
}

func (c *countdownCtx) Deadline() (time.Time, bool) { return time.Time{}, false }
func (c *countdownCtx) Value(any) any               { return nil }

// TestSortCancelsInsideComparator pins the ORDER BY cancellation
// checkpoint: the sort.SliceStable comparator loop must poll the context,
// so a cancellation landing between key materialization and gather aborts
// the statement instead of running the full O(n log n) sort.
func TestSortCancelsInsideComparator(t *testing.T) {
	db := NewDB()
	const n = cancelBatchRows * 4
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64((i * 2654435761) % n) // scrambled, forces real sorting
	}
	if _, err := db.CreateTableFromColumns("big",
		[]string{"id"}, []Column{IntColumn(vals)}); err != nil {
		t.Fatal(err)
	}

	run := func(ctx context.Context) error {
		ex := &executor{ctx: ctx, db: db, o: ExecOptions{Level: opt.LevelVectorized},
			env: &compileEnv{ctx: ctx}}
		_, err := ex.execSort(&opt.Sort{
			Input: &opt.Scan{Table: "big", Version: -1},
			Keys:  []opt.SortKey{{Expr: &sql.ColRef{Name: "id"}}},
		})
		return err
	}

	// Pass 1: count every context poll of a full, uncanceled run. The polls
	// beyond the handful made by the scan and key materialization all come
	// from the comparator.
	counter := newCountdownCtx(1 << 30)
	if err := run(counter); err != nil {
		t.Fatal(err)
	}
	total := counter.polls
	const preSortPolls = 20 // generous bound on scan + materialization polls
	if total <= preSortPolls {
		t.Fatalf("only %d context polls for a %d-row sort: comparator is not polling", total, n)
	}

	// Pass 2: trip the context a few polls before the end — provably inside
	// the comparator loop — and require a context.Canceled abort.
	if err := run(newCountdownCtx(total - 3)); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled from mid-sort cancellation, got %v", err)
	}
}
