package engine

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// validWALBytes produces a real on-disk WAL: header plus CRC-framed records
// from an actual workload.
func validWALBytes(tb testing.TB) []byte {
	tb.Helper()
	dir := tb.TempDir()
	db, _, err := OpenDirDB(dir, false)
	if err != nil {
		tb.Fatal(err)
	}
	if _, err := db.Exec("CREATE TABLE fz (id int, v int)"); err != nil {
		tb.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, err := db.Exec(fmt.Sprintf("INSERT INTO fz VALUES (%d, %d)", i, i*10)); err != nil {
			tb.Fatal(err)
		}
	}
	if err := db.CloseDurability(); err != nil {
		tb.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, walFile))
	if err != nil {
		tb.Fatal(err)
	}
	return data
}

// FuzzWALReplay hammers recovery with mutated logs: truncated frames,
// flipped CRCs, garbage tails, hostile length fields. The invariants —
// replay never panics, and a stream that replays cleanly is idempotent
// (replaying it again applies zero records, because applied LSNs only move
// forward).
func FuzzWALReplay(f *testing.F) {
	valid := validWALBytes(f)
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte(walHeader))                        // header only, no frames
	f.Add([]byte("NOTAWAL0garbage"))                // wrong magic
	f.Add(valid[:len(valid)-3])                     // truncated mid-frame
	f.Add(valid[:len(walHeader)+4])                 // truncated mid-header-of-frame
	f.Add(append(valid, 0xDE, 0xAD, 0xBE))          // garbage tail
	f.Add(append(valid, valid[len(walHeader):]...)) // duplicated frames (stale LSNs)
	mut := append([]byte(nil), valid...)
	if len(mut) > len(walHeader)+12 {
		mut[len(mut)-1] ^= 0xFF // corrupt the last frame's payload
		f.Add(mut)
	}
	crc := append([]byte(nil), valid...)
	if len(crc) > len(walHeader)+8 {
		crc[len(walHeader)+5] ^= 0xFF // corrupt the first frame's CRC
		f.Add(crc)
	}
	huge := append([]byte(walHeader), 0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0) // 4GiB length field
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		db := NewDB()
		applied, _, _, err := db.ReplayWAL(bytes.NewReader(data))
		if err != nil {
			return // rejected streams are fine; panics are not
		}
		reapplied, skipped, _, err := db.ReplayWAL(bytes.NewReader(data))
		if err != nil {
			return // a second pass may fail later than the first (already-applied DDL)
		}
		if reapplied != 0 {
			t.Fatalf("second replay applied %d records (first applied %d, skipped %d) — replay is not idempotent",
				reapplied, applied, skipped)
		}
	})
}

// TestReplayStopsAtCorruptFrame pins the never-replay-corrupt-frames
// guarantee directly: flipping one payload byte in the final frame makes
// replay report a torn tail and apply everything before the tear, nothing
// after.
func TestReplayStopsAtCorruptFrame(t *testing.T) {
	valid := validWALBytes(t)

	clean := NewDB()
	applied, _, torn, err := clean.ReplayWAL(bytes.NewReader(valid))
	if err != nil || torn {
		t.Fatalf("clean replay: applied=%d torn=%v err=%v", applied, torn, err)
	}

	mut := append([]byte(nil), valid...)
	mut[len(mut)-1] ^= 0xFF
	db := NewDB()
	gotApplied, _, gotTorn, err := db.ReplayWAL(bytes.NewReader(mut))
	if err != nil {
		t.Fatalf("corrupt tail must read as a torn frame, not an error: %v", err)
	}
	if !gotTorn {
		t.Fatal("corrupt final frame not reported as torn")
	}
	if gotApplied != applied-1 {
		t.Fatalf("applied %d records from corrupt log, want %d (all but the corrupt frame)", gotApplied, applied-1)
	}
}
