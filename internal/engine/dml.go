package engine

import (
	"context"
	"fmt"

	"repro/internal/sql"
)

// DML execution. Writes are copy-on-write at column granularity so that
// concurrent readers holding a snapshot never observe partial updates, and
// every write bumps the table version (feeding provenance's temporal model).

// whereMask evaluates an optional WHERE clause as a batch kernel and
// returns its truth mask over rs (nil when there is no clause, meaning
// every row matches).
func whereMask(where sql.Expr, rs *RowSet, env *compileEnv) ([]bool, error) {
	if where == nil {
		return nil, nil
	}
	fn, err := compileVec(where, rs.Schema, env)
	if err != nil {
		return nil, err
	}
	v, err := fn(rs)
	if err != nil {
		return nil, err
	}
	if err := v.pendingErr(rs.N); err != nil {
		return nil, err
	}
	m := v.truthyMask()
	if v.Const {
		hits := make([]bool, rs.N)
		if m[0] {
			for i := range hits {
				hits[i] = true
			}
		}
		return hits, nil
	}
	return m, nil
}

func (db *DB) execCreate(s *sql.CreateTableStmt) (*Result, error) {
	schema := make(Schema, len(s.Columns))
	for i, c := range s.Columns {
		t, err := ParseColType(c.Type)
		if err != nil {
			return nil, err
		}
		schema[i] = ColMeta{Name: c.Name, Type: t}
	}
	if _, err := db.CreateTable(s.Table, schema); err != nil {
		return nil, err
	}
	return &Result{}, nil
}

// ctxCheck polls ctx without blocking (the DML loops' cancellation
// checkpoint; nil never cancels).
func ctxCheck(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	select {
	case <-ctx.Done():
		return ctx.Err()
	default:
		return nil
	}
}

func (db *DB) execInsertLevel(ctx context.Context, s *sql.InsertStmt, o ExecOptions) (*Result, error) {
	t, err := db.Table(s.Table)
	if err != nil {
		return nil, err
	}
	schema := t.Schema()

	// Map statement columns onto table positions.
	target := make([]int, 0, len(schema))
	if len(s.Columns) == 0 {
		for i := range schema {
			target = append(target, i)
		}
	} else {
		for _, name := range s.Columns {
			idx, err := schema.Resolve("", name)
			if err != nil {
				return nil, err
			}
			target = append(target, idx)
		}
	}

	// Evaluate every row BEFORE applying any: cancellation and evaluation
	// errors can then only abort a statement that has written nothing —
	// a canceled INSERT never leaves a torn partial write behind.
	var buffered [][]Value

	if s.Query != nil {
		// INSERT ... SELECT: run the query, then append its rows (the batch
		// prediction write-back path: INSERT INTO scores SELECT id, PREDICT...).
		rs, _, err := db.ExecSelectContext(ctx, s.Query, o)
		if err != nil {
			return nil, err
		}
		if len(rs.Cols) != len(target) {
			return nil, fmt.Errorf("engine: INSERT ... SELECT produces %d columns for %d targets",
				len(rs.Cols), len(target))
		}
		buffered = make([][]Value, 0, rs.N)
		for r := 0; r < rs.N; r++ {
			if r%cancelBatchRows == 0 {
				if err := ctxCheck(ctx); err != nil {
					return nil, err
				}
			}
			vals := make([]Value, len(schema))
			assigned := make([]bool, len(schema))
			for i := range target {
				vals[target[i]] = rs.Cols[i].Value(r)
				assigned[target[i]] = true
			}
			for i := range vals {
				if !assigned[i] {
					vals[i] = NullValue()
				}
			}
			buffered = append(buffered, vals)
		}
	} else {
		env := &compileEnv{ctx: ctx, sessionFor: db.sessionFor, remoteFor: db.remoteFor, plane: db.plane()}
		oneRow := &RowSet{N: 1}
		buffered = make([][]Value, 0, len(s.Rows))
		for _, row := range s.Rows {
			if len(row) != len(target) {
				return nil, fmt.Errorf("engine: INSERT row has %d values for %d columns", len(row), len(target))
			}
			vals := make([]Value, len(schema))
			assigned := make([]bool, len(schema))
			for i, e := range row {
				fn, err := compileExpr(e, nil, env)
				if err != nil {
					return nil, err
				}
				v, err := fn(oneRow, 0)
				if err != nil {
					return nil, err
				}
				vals[target[i]] = v
				assigned[target[i]] = true
			}
			for i := range vals {
				if !assigned[i] {
					vals[i] = NullValue()
				}
			}
			buffered = append(buffered, vals)
		}
	}

	// Apply under the statement-level write lock so the batch append cannot
	// interleave with a concurrent UPDATE/DELETE rebuild of the same table.
	// The append is all-or-nothing and bumps the version once, so neither
	// cancellation nor a type error can commit a torn partial write; the
	// commit also lands one WAL record, making the acknowledged batch
	// crash-durable. The durability wait happens after the lock releases:
	// concurrent INSERTs on one table queue their frames back to back and
	// share a single group-commit fsync instead of paying one each.
	t.writeMu.Lock()
	if err := ctxCheck(ctx); err != nil {
		t.writeMu.Unlock()
		return nil, err
	}
	lsn, err := db.commitAppend(t, buffered)
	t.writeMu.Unlock()
	if err != nil {
		return nil, err
	}
	if err := db.walWaitDurable(lsn); err != nil {
		return nil, err
	}
	return &Result{Affected: int64(len(buffered))}, nil
}

func (db *DB) execUpdate(ctx context.Context, s *sql.UpdateStmt, o ExecOptions) (*Result, error) {
	t, err := db.Table(s.Table)
	if err != nil {
		return nil, err
	}
	lsn, affected, err := db.execUpdateLocked(ctx, t, s)
	if err != nil {
		return nil, err
	}
	// Ack only after the rebuild's WAL frame is fsynced (group commit); the
	// statement lock is already released, so concurrent writers batch.
	if err := db.walWaitDurable(lsn); err != nil {
		return nil, err
	}
	return &Result{Affected: affected}, nil
}

func (db *DB) execUpdateLocked(ctx context.Context, t *Table, s *sql.UpdateStmt) (int64, int64, error) {
	// Statement-level write exclusion: the snapshot -> rebuild -> replace
	// sequence must not interleave with another writer, or that writer's
	// rows would be silently dropped by ReplaceColumns.
	t.writeMu.Lock()
	defer t.writeMu.Unlock()
	cols, schema, n := t.snapshot()
	rs := &RowSet{Schema: schema, Cols: cols, N: n}
	env := &compileEnv{ctx: ctx, sessionFor: db.sessionFor, remoteFor: db.remoteFor, plane: db.plane()}

	hits, err := whereMask(s.Where, rs, env)
	if err != nil {
		return 0, 0, err
	}
	type setOp struct {
		idx int
		fn  evalFunc
	}
	sets := make([]setOp, len(s.Sets))
	for i, sc := range s.Sets {
		idx, err := schema.Resolve("", sc.Column)
		if err != nil {
			return 0, 0, err
		}
		fn, err := compileExpr(sc.Value, schema, env)
		if err != nil {
			return 0, 0, err
		}
		sets[i] = setOp{idx: idx, fn: fn}
	}

	// Copy-on-write rebuild of the affected columns.
	newCols := make([]Column, len(cols))
	for i := range cols {
		newCols[i] = NewColumn(cols[i].Type)
	}
	var affected int64
	for r := 0; r < n; r++ {
		if r%cancelBatchRows == 0 {
			if err := ctxCheck(ctx); err != nil {
				return 0, 0, err
			}
		}
		hit := hits == nil || hits[r]
		rowVals := make([]Value, len(cols))
		for c := range cols {
			rowVals[c] = cols[c].Value(r)
		}
		if hit {
			for _, op := range sets {
				v, err := op.fn(rs, r)
				if err != nil {
					return 0, 0, err
				}
				rowVals[op.idx] = v
			}
			affected++
		}
		for c := range newCols {
			if err := newCols[c].Append(rowVals[c]); err != nil {
				return 0, 0, err
			}
		}
	}
	lsn, err := db.commitReplace(t, newCols)
	if err != nil {
		return 0, 0, err
	}
	return lsn, affected, nil
}

func (db *DB) execDelete(ctx context.Context, s *sql.DeleteStmt, o ExecOptions) (*Result, error) {
	t, err := db.Table(s.Table)
	if err != nil {
		return nil, err
	}
	lsn, affected, err := db.execDeleteLocked(ctx, t, s)
	if err != nil {
		return nil, err
	}
	// Same ack-after-group-fsync discipline as UPDATE.
	if err := db.walWaitDurable(lsn); err != nil {
		return nil, err
	}
	return &Result{Affected: affected}, nil
}

func (db *DB) execDeleteLocked(ctx context.Context, t *Table, s *sql.DeleteStmt) (int64, int64, error) {
	t.writeMu.Lock()
	defer t.writeMu.Unlock()
	cols, schema, n := t.snapshot()
	rs := &RowSet{Schema: schema, Cols: cols, N: n}
	env := &compileEnv{ctx: ctx, sessionFor: db.sessionFor, remoteFor: db.remoteFor, plane: db.plane()}

	hits, err := whereMask(s.Where, rs, env)
	if err != nil {
		return 0, 0, err
	}
	var keep []int32
	var affected int64
	for r := 0; r < n; r++ {
		if r%cancelBatchRows == 0 {
			if err := ctxCheck(ctx); err != nil {
				return 0, 0, err
			}
		}
		hit := hits == nil || hits[r]
		if hit {
			affected++
		} else {
			keep = append(keep, int32(r))
		}
	}
	kept := rs.Gather(keep)
	lsn, err := db.commitReplace(t, kept.Cols)
	if err != nil {
		return 0, 0, err
	}
	return lsn, affected, nil
}
