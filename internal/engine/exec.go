package engine

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"repro/internal/ml"
	"repro/internal/onnx"
	"repro/internal/opt"
	"repro/internal/sql"
)

// ExecOptions controls physical execution.
type ExecOptions struct {
	// Level is the optimization level (see opt.Level).
	Level opt.Level
	// Parallelism caps worker count; 0 means GOMAXPROCS.
	Parallelism int
}

// parallelThreshold is the minimum row count before partitioned parallel
// execution pays for itself (the engine's "physical operator selection").
const parallelThreshold = 8192

// predictChunk is the vectorized inference batch size.
const predictChunk = 4096

type executor struct {
	db  *DB
	o   ExecOptions
	env *compileEnv
}

func (ex *executor) workers(n int) int {
	if ex.o.Level < opt.LevelParallel || n < parallelThreshold {
		return 1
	}
	w := ex.o.Parallelism
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	return w
}

// partition splits [0, n) into w contiguous ranges.
func partition(n, w int) [][2]int {
	if w < 1 {
		w = 1
	}
	out := make([][2]int, 0, w)
	size := (n + w - 1) / w
	for lo := 0; lo < n; lo += size {
		hi := lo + size
		if hi > n {
			hi = n
		}
		out = append(out, [2]int{lo, hi})
	}
	return out
}

func (ex *executor) exec(node opt.Node) (*RowSet, error) {
	switch n := node.(type) {
	case nil:
		return &RowSet{N: 1}, nil // FROM-less SELECT
	case *opt.Scan:
		return ex.execScan(n)
	case *opt.Filter:
		in, err := ex.exec(n.Input)
		if err != nil {
			return nil, err
		}
		return ex.filterRowSet(in, opt.AndAll(n.Preds))
	case *opt.Predict:
		return ex.execPredict(n)
	case *opt.Join:
		return ex.execJoin(n)
	case *opt.Aggregate:
		return ex.execAggregate(n)
	case *opt.Project:
		return ex.execProject(n)
	case *opt.Distinct:
		return ex.execDistinct(n)
	case *opt.Sort:
		return ex.execSort(n)
	case *opt.Limit:
		in, err := ex.exec(n.Input)
		if err != nil {
			return nil, err
		}
		if int64(in.N) <= n.N {
			return in, nil
		}
		return in.Slice(0, int(n.N)), nil
	}
	return nil, fmt.Errorf("engine: unknown plan node %T", node)
}

func (ex *executor) execScan(n *opt.Scan) (*RowSet, error) {
	t, err := ex.db.Table(n.Table)
	if err != nil {
		return nil, err
	}
	var cols []Column
	var schema Schema
	var rows int
	if n.Version >= 0 {
		cols, schema, rows, err = t.SnapshotAt(n.Version)
		if err != nil {
			return nil, err
		}
	} else {
		cols, schema, rows = t.snapshot()
	}
	qualified := make(Schema, len(schema))
	for i, m := range schema {
		qualified[i] = ColMeta{Qual: n.Alias, Name: m.Name, Type: m.Type}
	}
	rs := &RowSet{Schema: qualified, Cols: cols, N: rows}
	if len(n.Filters) == 0 {
		return rs, nil
	}
	return ex.filterRowSet(rs, opt.AndAll(n.Filters))
}

// filterRowSet evaluates pred over rs and gathers the surviving rows,
// in parallel partitions when warranted.
func (ex *executor) filterRowSet(rs *RowSet, pred sql.Expr) (*RowSet, error) {
	if pred == nil {
		return rs, nil
	}
	fn, err := compileExpr(pred, rs.Schema, ex.env)
	if err != nil {
		return nil, err
	}
	w := ex.workers(rs.N)
	parts := partition(rs.N, w)
	sels := make([][]int32, len(parts))
	errs := make([]error, len(parts))
	var wg sync.WaitGroup
	for pi, pr := range parts {
		wg.Add(1)
		go func(pi int, lo, hi int) {
			defer wg.Done()
			var sel []int32
			for r := lo; r < hi; r++ {
				v, err := fn(rs, r)
				if err != nil {
					errs[pi] = err
					return
				}
				if v.Truthy() {
					sel = append(sel, int32(r))
				}
			}
			sels[pi] = sel
		}(pi, pr[0], pr[1])
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	total := 0
	for _, s := range sels {
		total += len(s)
	}
	sel := make([]int32, 0, total)
	for _, s := range sels {
		sel = append(sel, s...)
	}
	if total == rs.N {
		return rs, nil
	}
	return rs.Gather(sel), nil
}

// execPredict runs the vectorized inference operator: it binds the argument
// columns to the model graph's inputs, scores in chunks (in parallel at
// LevelParallel and above), optionally applies a fused threshold compare,
// and appends the score column.
func (ex *executor) execPredict(n *opt.Predict) (*RowSet, error) {
	in, err := ex.exec(n.Input)
	if err != nil {
		return nil, err
	}
	g := n.Graph
	if len(n.Args) != len(g.Inputs) {
		return nil, fmt.Errorf("engine: PREDICT(%s, ...) takes %d arguments, got %d",
			n.Model, len(g.Inputs), len(n.Args))
	}
	sess, err := onnx.NewSession(g)
	if err != nil {
		return nil, err
	}

	// Bind each model input to a column (materializing derived arguments).
	batchCols := make([]onnx.Column, len(n.Args))
	for i, a := range n.Args {
		col, err := ex.bindColumn(in, a)
		if err != nil {
			return nil, fmt.Errorf("engine: PREDICT(%s) argument %d: %w", n.Model, i+1, err)
		}
		switch g.Inputs[i].Kind {
		case ml.KindNumeric:
			switch col.Type {
			case TypeFloat:
				batchCols[i] = onnx.Column{Nums: col.Floats}
			case TypeInt:
				conv := make([]float64, len(col.Ints))
				for j, v := range col.Ints {
					conv[j] = float64(v)
				}
				batchCols[i] = onnx.Column{Nums: conv}
			default:
				return nil, fmt.Errorf("engine: PREDICT(%s) argument %d: model wants numeric, column is %s",
					n.Model, i+1, col.Type)
			}
		default: // categorical or text
			if col.Type != TypeString {
				return nil, fmt.Errorf("engine: PREDICT(%s) argument %d: model wants text, column is %s",
					n.Model, i+1, col.Type)
			}
			batchCols[i] = onnx.Column{Strs: col.Strs}
		}
	}

	scores := make([]float64, in.N)
	w := ex.workers(in.N)
	var runErr error
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, pr := range partition(in.N, w) {
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for clo := lo; clo < hi; clo += predictChunk {
				chi := clo + predictChunk
				if chi > hi {
					chi = hi
				}
				b := onnx.Batch{N: chi - clo, Cols: make([]onnx.Column, len(batchCols))}
				for i := range batchCols {
					if batchCols[i].Nums != nil {
						b.Cols[i].Nums = batchCols[i].Nums[clo:chi]
					} else {
						b.Cols[i].Strs = batchCols[i].Strs[clo:chi]
					}
				}
				if err := sess.RunInto(&b, scores[clo:chi]); err != nil {
					mu.Lock()
					runErr = err
					mu.Unlock()
					return
				}
			}
		}(pr[0], pr[1])
	}
	wg.Wait()
	if runErr != nil {
		return nil, runErr
	}

	outSchema := append(append(Schema(nil), in.Schema...), ColMeta{Name: n.OutName, Type: TypeFloat})
	if n.Compare == nil {
		cols := append(append([]Column(nil), in.Cols...), FloatColumn(scores))
		return &RowSet{Schema: outSchema, Cols: cols, N: in.N}, nil
	}
	// Fused threshold filter.
	sel := make([]int32, 0, in.N/4)
	thr := n.Compare.Threshold
	switch n.Compare.Op {
	case ">":
		for r, s := range scores {
			if s > thr {
				sel = append(sel, int32(r))
			}
		}
	case ">=":
		for r, s := range scores {
			if s >= thr {
				sel = append(sel, int32(r))
			}
		}
	case "<":
		for r, s := range scores {
			if s < thr {
				sel = append(sel, int32(r))
			}
		}
	case "<=":
		for r, s := range scores {
			if s <= thr {
				sel = append(sel, int32(r))
			}
		}
	case "=":
		for r, s := range scores {
			if s == thr {
				sel = append(sel, int32(r))
			}
		}
	case "<>":
		for r, s := range scores {
			if s != thr {
				sel = append(sel, int32(r))
			}
		}
	default:
		return nil, fmt.Errorf("engine: unsupported fused compare %q", n.Compare.Op)
	}
	out := in.Gather(sel)
	fc := FloatColumn(scores)
	scoreCol := fc.Gather(sel)
	out.Schema = outSchema
	out.Cols = append(out.Cols, scoreCol)
	return out, nil
}

// bindColumn resolves an argument expression to a column, materializing a
// derived column when the argument is not a direct reference.
func (ex *executor) bindColumn(rs *RowSet, a sql.Expr) (Column, error) {
	if cr, ok := a.(*sql.ColRef); ok {
		idx, err := rs.Schema.Resolve(cr.Table, cr.Name)
		if err != nil {
			return Column{}, err
		}
		return rs.Cols[idx], nil
	}
	fn, err := compileExpr(a, rs.Schema, ex.env)
	if err != nil {
		return Column{}, err
	}
	typ, err := inferType(a, rs.Schema)
	if err != nil {
		return Column{}, err
	}
	col := NewColumn(typ)
	for r := 0; r < rs.N; r++ {
		v, err := fn(rs, r)
		if err != nil {
			return Column{}, err
		}
		if err := col.Append(v); err != nil {
			return Column{}, err
		}
	}
	return col, nil
}

func (ex *executor) execJoin(n *opt.Join) (*RowSet, error) {
	left, err := ex.exec(n.Left)
	if err != nil {
		return nil, err
	}
	right, err := ex.exec(n.Right)
	if err != nil {
		return nil, err
	}
	combined := append(append(Schema(nil), left.Schema...), right.Schema...)

	// Split the ON condition into equi-key pairs and residual predicates.
	var leftKeys, rightKeys []int
	var residual []sql.Expr
	for _, c := range opt.SplitConjuncts(n.On) {
		b, ok := c.(*sql.Binary)
		if ok && b.Op == "=" {
			if li, ri, ok := resolvePair(b.L, b.R, left.Schema, right.Schema); ok {
				leftKeys = append(leftKeys, li)
				rightKeys = append(rightKeys, ri)
				continue
			}
		}
		residual = append(residual, c)
	}
	if len(leftKeys) == 0 && n.On != nil {
		return nil, fmt.Errorf("engine: join requires at least one equality condition")
	}
	if n.On == nil {
		// Cross join: guard against blow-up.
		if left.N*right.N > 4_000_000 {
			return nil, fmt.Errorf("engine: refusing cross join of %d x %d rows", left.N, right.N)
		}
		var lsel, rsel []int32
		for l := 0; l < left.N; l++ {
			for r := 0; r < right.N; r++ {
				lsel = append(lsel, int32(l))
				rsel = append(rsel, int32(r))
			}
		}
		return ex.materializeJoin(left, right, combined, lsel, rsel, residual, nil)
	}

	// Hash the right side.
	build := map[string][]int32{}
	var key strings.Builder
	for r := 0; r < right.N; r++ {
		key.Reset()
		for _, k := range rightKeys {
			encodeValue(&key, right.Cols[k].Value(r))
		}
		build[key.String()] = append(build[key.String()], int32(r))
	}
	var lsel, rsel []int32
	matched := make([]bool, 0)
	var leftUnmatched []int32
	for l := 0; l < left.N; l++ {
		key.Reset()
		for _, k := range leftKeys {
			encodeValue(&key, left.Cols[k].Value(l))
		}
		rows := build[key.String()]
		if len(rows) == 0 {
			if n.Type == sql.JoinLeft {
				leftUnmatched = append(leftUnmatched, int32(l))
			}
			continue
		}
		for _, r := range rows {
			lsel = append(lsel, int32(l))
			rsel = append(rsel, r)
		}
	}
	_ = matched
	return ex.materializeJoin(left, right, combined, lsel, rsel, residual, leftUnmatched)
}

// materializeJoin gathers the matched pairs, applies residual predicates,
// and appends zero-padded unmatched left rows for LEFT JOIN.
func (ex *executor) materializeJoin(left, right *RowSet, schema Schema,
	lsel, rsel []int32, residual []sql.Expr, leftUnmatched []int32) (*RowSet, error) {

	lpart := left.Gather(lsel)
	rpart := right.Gather(rsel)
	out := &RowSet{Schema: schema, Cols: append(lpart.Cols, rpart.Cols...), N: len(lsel)}
	if len(residual) > 0 {
		var err error
		out, err = ex.filterRowSet(out, opt.AndAll(residual))
		if err != nil {
			return nil, err
		}
	}
	if len(leftUnmatched) > 0 {
		// LEFT JOIN unmatched rows: right columns are zero-valued (the
		// engine stores no NULL bitmap; documented limitation).
		lpad := left.Gather(leftUnmatched)
		padCols := make([]Column, len(right.Cols))
		for i := range right.Cols {
			padCols[i] = NewColumn(right.Cols[i].Type)
			for k := 0; k < len(leftUnmatched); k++ {
				_ = padCols[i].Append(NullValue())
			}
		}
		merged := &RowSet{Schema: schema, N: out.N + len(leftUnmatched)}
		merged.Cols = make([]Column, len(schema))
		for i := range schema {
			var a, b Column
			if i < len(left.Cols) {
				a, b = out.Cols[i], lpad.Cols[i]
			} else {
				a, b = out.Cols[i], padCols[i-len(left.Cols)]
			}
			merged.Cols[i] = concatColumns(a, b)
		}
		return merged, nil
	}
	return out, nil
}

func concatColumns(a, b Column) Column {
	out := Column{Type: a.Type}
	switch a.Type {
	case TypeInt:
		out.Ints = append(append([]int64(nil), a.Ints...), b.Ints...)
	case TypeFloat:
		out.Floats = append(append([]float64(nil), a.Floats...), b.Floats...)
	case TypeString:
		out.Strs = append(append([]string(nil), a.Strs...), b.Strs...)
	case TypeBool:
		out.Bools = append(append([]bool(nil), a.Bools...), b.Bools...)
	}
	return out
}

// resolvePair tries to resolve l in the left schema and r in the right (or
// mirrored), returning the column indices.
func resolvePair(l, r sql.Expr, left, right Schema) (int, int, bool) {
	lc, ok1 := l.(*sql.ColRef)
	rc, ok2 := r.(*sql.ColRef)
	if !ok1 || !ok2 {
		return 0, 0, false
	}
	if li, err := left.Resolve(lc.Table, lc.Name); err == nil {
		if ri, err := right.Resolve(rc.Table, rc.Name); err == nil {
			return li, ri, true
		}
	}
	if li, err := left.Resolve(rc.Table, rc.Name); err == nil {
		if ri, err := right.Resolve(lc.Table, lc.Name); err == nil {
			return li, ri, true
		}
	}
	return 0, 0, false
}

func encodeValue(b *strings.Builder, v Value) {
	if v.Null {
		b.WriteString("\x00N|")
		return
	}
	switch v.Kind {
	case TypeInt:
		fmt.Fprintf(b, "\x01%d|", v.I)
	case TypeFloat:
		fmt.Fprintf(b, "\x02%g|", v.F)
	case TypeString:
		b.WriteString("\x03")
		b.WriteString(v.S)
		b.WriteString("|")
	case TypeBool:
		if v.B {
			b.WriteString("\x04t|")
		} else {
			b.WriteString("\x04f|")
		}
	}
}

type aggState struct {
	groupVals []Value
	count     int64
	sum       float64
	sumIsInt  bool
	sumI      int64
	min, max  Value
	seen      bool
	distinct  map[string]bool
}

func (ex *executor) execAggregate(n *opt.Aggregate) (*RowSet, error) {
	in, err := ex.exec(n.Input)
	if err != nil {
		return nil, err
	}
	groupFns := make([]evalFunc, len(n.GroupBy))
	for i, g := range n.GroupBy {
		fn, err := compileExpr(g, in.Schema, ex.env)
		if err != nil {
			return nil, err
		}
		groupFns[i] = fn
	}
	argFns := make([]evalFunc, len(n.Aggs))
	for i, a := range n.Aggs {
		if a.Arg == nil {
			continue
		}
		fn, err := compileExpr(a.Arg, in.Schema, ex.env)
		if err != nil {
			return nil, err
		}
		argFns[i] = fn
	}

	states := map[string][]*aggState{} // key -> one state per agg (index 0 holds groupVals)
	var order []string
	var key strings.Builder
	for r := 0; r < in.N; r++ {
		key.Reset()
		groupVals := make([]Value, len(groupFns))
		for i, fn := range groupFns {
			v, err := fn(in, r)
			if err != nil {
				return nil, err
			}
			groupVals[i] = v
			encodeValue(&key, v)
		}
		k := key.String()
		sts := states[k]
		if sts == nil {
			sts = make([]*aggState, len(n.Aggs))
			for i := range sts {
				sts[i] = &aggState{sumIsInt: true}
				if n.Aggs[i].Distinct {
					sts[i].distinct = map[string]bool{}
				}
			}
			if len(sts) == 0 {
				sts = []*aggState{{}}
			}
			sts[0].groupVals = groupVals
			states[k] = sts
			order = append(order, k)
		}
		for i, spec := range n.Aggs {
			st := sts[i]
			if spec.Star {
				st.count++
				continue
			}
			v, err := argFns[i](in, r)
			if err != nil {
				return nil, err
			}
			if v.Null {
				continue
			}
			if spec.Distinct {
				var db strings.Builder
				encodeValue(&db, v)
				if st.distinct[db.String()] {
					continue
				}
				st.distinct[db.String()] = true
			}
			st.count++
			switch spec.Func {
			case "sum", "avg":
				f, err := v.AsFloat()
				if err != nil {
					return nil, fmt.Errorf("engine: %s over %s", spec.Func, v.Kind)
				}
				st.sum += f
				if v.Kind == TypeInt {
					st.sumI += v.I
				} else {
					st.sumIsInt = false
				}
			case "min":
				if !st.seen {
					st.min = v
				} else if c, _ := Compare(v, st.min); c < 0 {
					st.min = v
				}
			case "max":
				if !st.seen {
					st.max = v
				} else if c, _ := Compare(v, st.max); c > 0 {
					st.max = v
				}
			}
			st.seen = true
		}
	}

	// Global aggregate over empty input still yields one row.
	if len(order) == 0 && len(n.GroupBy) == 0 {
		sts := make([]*aggState, len(n.Aggs))
		for i := range sts {
			sts[i] = &aggState{}
		}
		if len(sts) == 0 {
			sts = []*aggState{{}}
		}
		states[""] = sts
		order = append(order, "")
	}

	// Build the output.
	outSchema := make(Schema, 0, len(n.GroupNames)+len(n.Aggs))
	outCols := make([]Column, 0, cap(outSchema))
	// Group column types come from the first group's values.
	firstGroup := states[order[0]][0].groupVals
	for i, name := range n.GroupNames {
		t := TypeString
		if i < len(firstGroup) && !firstGroup[i].Null {
			t = firstGroup[i].Kind
		}
		outSchema = append(outSchema, ColMeta{Name: name, Type: t})
		outCols = append(outCols, NewColumn(t))
	}
	for _, spec := range n.Aggs {
		t := TypeFloat
		if spec.Func == "count" {
			t = TypeInt
		}
		outSchema = append(outSchema, ColMeta{Name: spec.OutName, Type: t})
		outCols = append(outCols, NewColumn(t))
	}
	for _, k := range order {
		sts := states[k]
		for i := range n.GroupNames {
			if err := outCols[i].Append(sts[0].groupVals[i]); err != nil {
				return nil, err
			}
		}
		for i, spec := range n.Aggs {
			st := sts[i]
			var v Value
			switch spec.Func {
			case "count":
				v = IntValue(st.count)
			case "sum":
				v = FloatValue(st.sum)
			case "avg":
				if st.count == 0 {
					v = FloatValue(0)
				} else {
					v = FloatValue(st.sum / float64(st.count))
				}
			case "min":
				v = st.min
				if !st.seen {
					v = NullValue()
				}
			case "max":
				v = st.max
				if !st.seen {
					v = NullValue()
				}
			default:
				return nil, fmt.Errorf("engine: unknown aggregate %q", spec.Func)
			}
			if v.Kind == TypeInt && outSchema[len(n.GroupNames)+i].Type == TypeFloat {
				v = FloatValue(float64(v.I))
			}
			if err := outCols[len(n.GroupNames)+i].Append(v); err != nil {
				return nil, err
			}
		}
	}
	return NewRowSet(outSchema, outCols)
}

func (ex *executor) execProject(n *opt.Project) (*RowSet, error) {
	in, err := ex.exec(n.Input)
	if err != nil {
		return nil, err
	}
	outSchema := make(Schema, len(n.Exprs))
	outCols := make([]Column, len(n.Exprs))
	for i, e := range n.Exprs {
		// Fast path: bare column references alias storage.
		if cr, ok := e.(*sql.ColRef); ok {
			idx, err := in.Schema.Resolve(cr.Table, cr.Name)
			if err != nil {
				return nil, err
			}
			outSchema[i] = ColMeta{Name: n.Names[i], Type: in.Schema[idx].Type}
			outCols[i] = in.Cols[idx]
			continue
		}
		fn, err := compileExpr(e, in.Schema, ex.env)
		if err != nil {
			return nil, err
		}
		t, err := inferType(e, in.Schema)
		if err != nil {
			return nil, err
		}
		col := NewColumn(t)
		for r := 0; r < in.N; r++ {
			v, err := fn(in, r)
			if err != nil {
				return nil, err
			}
			if err := col.Append(v); err != nil {
				return nil, err
			}
		}
		outSchema[i] = ColMeta{Name: n.Names[i], Type: t}
		outCols[i] = col
	}
	return &RowSet{Schema: outSchema, Cols: outCols, N: in.N}, nil
}

func (ex *executor) execDistinct(n *opt.Distinct) (*RowSet, error) {
	in, err := ex.exec(n.Input)
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	var sel []int32
	var key strings.Builder
	for r := 0; r < in.N; r++ {
		key.Reset()
		for c := range in.Cols {
			encodeValue(&key, in.Cols[c].Value(r))
		}
		k := key.String()
		if !seen[k] {
			seen[k] = true
			sel = append(sel, int32(r))
		}
	}
	if len(sel) == in.N {
		return in, nil
	}
	return in.Gather(sel), nil
}

func (ex *executor) execSort(n *opt.Sort) (*RowSet, error) {
	in, err := ex.exec(n.Input)
	if err != nil {
		return nil, err
	}
	keyFns := make([]evalFunc, len(n.Keys))
	for i, k := range n.Keys {
		fn, err := compileExpr(k.Expr, in.Schema, ex.env)
		if err != nil {
			return nil, err
		}
		keyFns[i] = fn
	}
	// Precompute key values per row.
	keys := make([][]Value, in.N)
	for r := 0; r < in.N; r++ {
		kv := make([]Value, len(keyFns))
		for i, fn := range keyFns {
			v, err := fn(in, r)
			if err != nil {
				return nil, err
			}
			kv[i] = v
		}
		keys[r] = kv
	}
	sel := make([]int32, in.N)
	for i := range sel {
		sel[i] = int32(i)
	}
	var sortErr error
	sort.SliceStable(sel, func(a, b int) bool {
		ka, kb := keys[sel[a]], keys[sel[b]]
		for i := range ka {
			c, err := Compare(ka[i], kb[i])
			if err != nil {
				sortErr = err
				return false
			}
			if c != 0 {
				if n.Keys[i].Desc {
					return c > 0
				}
				return c < 0
			}
		}
		return false
	})
	if sortErr != nil {
		return nil, sortErr
	}
	return in.Gather(sel), nil
}

// inferType statically determines the result type of an expression.
func inferType(e sql.Expr, schema Schema) (ColType, error) {
	switch x := e.(type) {
	case *sql.ColRef:
		idx, err := schema.Resolve(x.Table, x.Name)
		if err != nil {
			return 0, err
		}
		return schema[idx].Type, nil
	case *sql.Lit:
		switch x.Kind {
		case sql.LitInt:
			return TypeInt, nil
		case sql.LitFloat:
			return TypeFloat, nil
		case sql.LitString:
			return TypeString, nil
		case sql.LitBool:
			return TypeBool, nil
		default:
			return TypeFloat, nil // NULL defaults to float storage
		}
	case *sql.Unary:
		if x.Op == "NOT" {
			return TypeBool, nil
		}
		return inferType(x.X, schema)
	case *sql.Binary:
		switch x.Op {
		case "AND", "OR", "=", "<>", "<", "<=", ">", ">=":
			return TypeBool, nil
		case "||":
			return TypeString, nil
		}
		if _, ok := x.R.(*sql.Interval); ok {
			return TypeString, nil
		}
		lt, err := inferType(x.L, schema)
		if err != nil {
			return 0, err
		}
		rt, err := inferType(x.R, schema)
		if err != nil {
			return 0, err
		}
		if lt == TypeInt && rt == TypeInt && x.Op != "/" {
			return TypeInt, nil
		}
		return TypeFloat, nil
	case *sql.Between, *sql.InList, *sql.Like, *sql.IsNull, *sql.Exists:
		return TypeBool, nil
	case *sql.Case:
		if len(x.Whens) > 0 {
			return inferType(x.Whens[0].Then, schema)
		}
		return TypeFloat, nil
	case *sql.FuncCall:
		switch x.Name {
		case "substring", "upper", "lower":
			return TypeString, nil
		case "length", "count":
			return TypeInt, nil
		default:
			return TypeFloat, nil
		}
	case *sql.Predict:
		return TypeFloat, nil
	}
	return TypeFloat, nil
}
