package engine

import (
	"context"
	"fmt"
	"runtime"
	"sort"

	"repro/internal/opt"
	"repro/internal/sql"
)

// ExecOptions controls physical execution.
type ExecOptions struct {
	// Level is the optimization level (see opt.Level).
	Level opt.Level
	// Parallelism caps worker count; 0 means GOMAXPROCS.
	Parallelism int
	// Counters, when non-nil, collects execution statistics (rows scanned);
	// used by tests pinning LIMIT pushdown and by operational probes.
	Counters *ExecCounters
}

// MaxWorkers resolves the option set's morsel worker cap: 1 below
// LevelParallel, else the explicit Parallelism (GOMAXPROCS when unset).
// Individual operators may use fewer workers on small inputs.
func (o ExecOptions) MaxWorkers() int {
	if o.Level < opt.LevelParallel {
		return 1
	}
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// parallelThreshold is the minimum row count before partitioned parallel
// execution pays for itself (the engine's "physical operator selection").
const parallelThreshold = 8192

// predictChunk is the vectorized inference batch size.
const predictChunk = 4096

// cancelBatchRows is the row granularity of cancellation checkpoints inside
// long kernel loops: a canceled query aborts at the next batch boundary, so
// the hot path stays branch-free within a batch.
const cancelBatchRows = 16384

type executor struct {
	ctx context.Context
	db  *DB
	o   ExecOptions
	env *compileEnv
}

// checkCtx is the cancellation checkpoint: it polls the query context
// without blocking. A nil context never cancels.
func (ex *executor) checkCtx() error { return ctxCheck(ex.ctx) }

// workers resolves the worker count for an n-row operator input: 1 below
// LevelParallel or the size threshold, otherwise the ctx worker cap
// (ExecOptions.Parallelism, GOMAXPROCS when unset) clamped so every worker
// has at least one morsel to pull. Every parallel operator sizes its pool
// through here, so the cap applies uniformly across the tree.
func (ex *executor) workers(n int) int {
	if ex.o.Level < opt.LevelParallel || n < parallelThreshold {
		return 1
	}
	w := ex.o.Parallelism
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if m := morselCount(n); w > m {
		w = m
	}
	if w < 1 {
		w = 1
	}
	return w
}

func (ex *executor) exec(node opt.Node) (*RowSet, error) {
	if err := ex.checkCtx(); err != nil {
		return nil, err
	}
	switch n := node.(type) {
	case nil:
		return &RowSet{N: 1}, nil // FROM-less SELECT
	case *opt.Scan:
		return ex.execScan(n)
	case *opt.Filter:
		in, err := ex.exec(n.Input)
		if err != nil {
			return nil, err
		}
		return ex.filterRowSet(in, opt.AndAll(n.Preds))
	case *opt.Predict:
		return ex.execPredict(n)
	case *opt.Join:
		return ex.execJoin(n)
	case *opt.Aggregate:
		return ex.execAggregate(n)
	case *opt.Project:
		return ex.execProject(n)
	case *opt.Distinct:
		return ex.execDistinct(n)
	case *opt.Sort:
		return ex.execSort(n)
	case *opt.Limit:
		in, err := ex.exec(n.Input)
		if err != nil {
			return nil, err
		}
		if int64(in.N) <= n.N {
			return in, nil
		}
		return in.Slice(0, int(n.N)), nil
	}
	return nil, fmt.Errorf("engine: unknown plan node %T", node)
}

// execScan materializes a scan: the shared snapshot (scanSource, which
// stream cursors also open) plus pushed-down filters.
func (ex *executor) execScan(n *opt.Scan) (*RowSet, error) {
	rs, err := ex.scanSource(n)
	if err != nil {
		return nil, err
	}
	if c := ex.o.Counters; c != nil {
		c.RowsScanned.Add(int64(rs.N))
	}
	if len(n.Filters) == 0 {
		return rs, nil
	}
	return ex.filterRowSet(rs, opt.AndAll(n.Filters))
}

// filterRowSet evaluates pred as a batch kernel over rs and gathers the
// surviving rows. Workers pull morsels from a shared queue (so a skewed
// predicate cannot idle part of the pool), buffer one pooled selection
// vector per morsel, and the buffers concatenate in morsel order — parallel
// output row order is identical to serial.
func (ex *executor) filterRowSet(rs *RowSet, pred sql.Expr) (*RowSet, error) {
	if pred == nil {
		return rs, nil
	}
	fn, err := compileVec(pred, rs.Schema, ex.env)
	if err != nil {
		return nil, err
	}
	return ex.filterCompiled(rs, fn)
}

// filterCompiled is filterRowSet after predicate compilation — the entry
// point for stream cursors, whose filter ops compile once at open and run
// the kernel per batch.
func (ex *executor) filterCompiled(rs *RowSet, fn vecFunc) (*RowSet, error) {
	sels, err := ex.filterMorsels(fn, rs, ex.workers(rs.N))
	release := func() {
		for _, s := range sels {
			if s != nil {
				putSel(s)
			}
		}
	}
	if err != nil {
		release()
		return nil, err
	}
	total := 0
	for _, s := range sels {
		total += len(*s)
	}
	if total == rs.N {
		release()
		return rs, nil
	}
	sel := make([]int32, 0, total)
	for _, s := range sels {
		sel = append(sel, *s...)
	}
	release()
	return rs.Gather(sel), nil
}

// filterMorsels runs the compiled predicate over every morsel of rs on w
// workers, returning one pooled selection vector per morsel (absolute row
// ids). The context is polled before each morsel, so a canceled query stops
// within one morsel of work; the caller owns (and must pool-return) the
// buffers, even on error.
func (ex *executor) filterMorsels(fn vecFunc, rs *RowSet, w int) ([]*[]int32, error) {
	sels := make([]*[]int32, morselCount(rs.N))
	err := ex.runMorsels(rs.N, w, func(wid, m, lo, hi int) error {
		sp := getSel()
		sels[m] = sp
		part := rs.Slice(lo, hi)
		v, err := fn(part)
		if err == nil {
			err = v.pendingErr(hi - lo)
		}
		if err != nil {
			return err
		}
		*sp = appendTrue((*sp)[:0], v, hi-lo, lo)
		return nil
	})
	return sels, err
}

// execPredict runs the vectorized inference operator: it binds the argument
// columns to the model graph's inputs, scores in chunks (in parallel at
// LevelParallel and above), optionally applies a fused threshold compare,
// and appends the score column. The operator body lives in predictOp
// (cursor.go) so the streaming path shares it batch-by-batch.
func (ex *executor) execPredict(n *opt.Predict) (*RowSet, error) {
	in, err := ex.exec(n.Input)
	if err != nil {
		return nil, err
	}
	op, err := newPredictOp(ex, n, in.Schema)
	if err != nil {
		return nil, err
	}
	return op.apply(ex, in)
}

func (ex *executor) execJoin(n *opt.Join) (*RowSet, error) {
	left, err := ex.exec(n.Left)
	if err != nil {
		return nil, err
	}
	right, err := ex.exec(n.Right)
	if err != nil {
		return nil, err
	}
	combined := append(append(Schema(nil), left.Schema...), right.Schema...)

	// Split the ON condition into equi-key pairs and residual predicates.
	var leftKeys, rightKeys []int
	var residual []sql.Expr
	for _, c := range opt.SplitConjuncts(n.On) {
		b, ok := c.(*sql.Binary)
		if ok && b.Op == "=" {
			if li, ri, ok := resolvePair(b.L, b.R, left.Schema, right.Schema); ok {
				leftKeys = append(leftKeys, li)
				rightKeys = append(rightKeys, ri)
				continue
			}
		}
		residual = append(residual, c)
	}
	if len(leftKeys) == 0 && n.On != nil {
		return nil, fmt.Errorf("engine: join requires at least one equality condition")
	}
	if n.On == nil {
		// Cross join: guard against blow-up.
		if left.N*right.N > 4_000_000 {
			return nil, fmt.Errorf("engine: refusing cross join of %d x %d rows", left.N, right.N)
		}
		var lsel, rsel []int32
		for l := 0; l < left.N; l++ {
			if l%cancelBatchRows == 0 {
				if err := ex.checkCtx(); err != nil {
					return nil, err
				}
			}
			for r := 0; r < right.N; r++ {
				lsel = append(lsel, int32(l))
				rsel = append(rsel, int32(r))
			}
		}
		return ex.materializeJoin(left, right, combined, lsel, rsel, residual, nil)
	}

	// Hash the right side with the typed multi-column table: keys are
	// compared column-wise (int/float keys numerically), no string encoding.
	leftVecs := make([]*Vec, len(leftKeys))
	rightVecs := make([]*Vec, len(rightKeys))
	for i := range leftKeys {
		leftVecs[i] = colVec(&left.Cols[leftKeys[i]])
		rightVecs[i] = colVec(&right.Cols[rightKeys[i]])
	}
	modes, comparable := pairKeyModes(leftVecs, rightVecs)
	var lsel, rsel []int32
	var leftUnmatched []int32
	if !comparable {
		// Some key pair can never be equal (e.g. text vs int), so no row
		// matches; LEFT JOIN still emits every left row.
		if n.Type == sql.JoinLeft {
			for l := 0; l < left.N; l++ {
				leftUnmatched = append(leftUnmatched, int32(l))
			}
		}
		return ex.materializeJoin(left, right, combined, lsel, rsel, residual, leftUnmatched)
	}
	jt, err := ex.buildJoinIndex(rightVecs, right.N, modes)
	if err != nil {
		return nil, err
	}
	// Morsel-parallel probe: workers pull probe-side morsels and buffer their
	// matched pairs (and unmatched left rows) per morsel; the buffers
	// concatenate in morsel order, so parallel output is identical to the
	// serial probe loop.
	type probeOut struct {
		lsel, rsel, unmatched []int32
	}
	w := ex.workers(left.N)
	outs := make([]probeOut, morselCount(left.N))
	err = ex.runMorsels(left.N, w, func(wid, m, lo, hi int) error {
		var out probeOut
		mp := getSel()
		matches := *mp
		for l := lo; l < hi; l++ {
			matches = jt.probe(leftVecs, l, matches[:0])
			if len(matches) == 0 {
				if n.Type == sql.JoinLeft {
					out.unmatched = append(out.unmatched, int32(l))
				}
				continue
			}
			for _, r := range matches {
				out.lsel = append(out.lsel, int32(l))
				out.rsel = append(out.rsel, r)
			}
		}
		*mp = matches
		putSel(mp)
		outs[m] = out
		return nil
	})
	if err != nil {
		return nil, err
	}
	pairs := 0
	unmatched := 0
	for i := range outs {
		pairs += len(outs[i].lsel)
		unmatched += len(outs[i].unmatched)
	}
	lsel = make([]int32, 0, pairs)
	rsel = make([]int32, 0, pairs)
	if unmatched > 0 {
		leftUnmatched = make([]int32, 0, unmatched)
	}
	for i := range outs {
		lsel = append(lsel, outs[i].lsel...)
		rsel = append(rsel, outs[i].rsel...)
		leftUnmatched = append(leftUnmatched, outs[i].unmatched...)
	}
	return ex.materializeJoin(left, right, combined, lsel, rsel, residual, leftUnmatched)
}

// materializeJoin gathers the matched pairs, applies residual predicates,
// and appends zero-padded unmatched left rows for LEFT JOIN.
func (ex *executor) materializeJoin(left, right *RowSet, schema Schema,
	lsel, rsel []int32, residual []sql.Expr, leftUnmatched []int32) (*RowSet, error) {

	lpart := left.Gather(lsel)
	rpart := right.Gather(rsel)
	out := &RowSet{Schema: schema, Cols: append(lpart.Cols, rpart.Cols...), N: len(lsel)}
	if len(residual) > 0 {
		var err error
		out, err = ex.filterRowSet(out, opt.AndAll(residual))
		if err != nil {
			return nil, err
		}
	}
	if len(leftUnmatched) > 0 {
		// LEFT JOIN unmatched rows: right columns are zero-valued (the
		// engine stores no NULL bitmap; documented limitation).
		lpad := left.Gather(leftUnmatched)
		padCols := make([]Column, len(right.Cols))
		for i := range right.Cols {
			padCols[i] = NewColumn(right.Cols[i].Type)
			for k := 0; k < len(leftUnmatched); k++ {
				_ = padCols[i].Append(NullValue())
			}
		}
		merged := &RowSet{Schema: schema, N: out.N + len(leftUnmatched)}
		merged.Cols = make([]Column, len(schema))
		for i := range schema {
			var a, b Column
			if i < len(left.Cols) {
				a, b = out.Cols[i], lpad.Cols[i]
			} else {
				a, b = out.Cols[i], padCols[i-len(left.Cols)]
			}
			merged.Cols[i] = concatColumns(a, b)
		}
		return merged, nil
	}
	return out, nil
}

func concatColumns(a, b Column) Column {
	out := Column{Type: a.Type}
	switch a.Type {
	case TypeInt:
		out.Ints = append(append([]int64(nil), a.Ints...), b.Ints...)
	case TypeFloat:
		out.Floats = append(append([]float64(nil), a.Floats...), b.Floats...)
	case TypeString:
		out.Strs = append(append([]string(nil), a.Strs...), b.Strs...)
	case TypeBool:
		out.Bools = append(append([]bool(nil), a.Bools...), b.Bools...)
	}
	return out
}

// resolvePair tries to resolve l in the left schema and r in the right (or
// mirrored), returning the column indices.
func resolvePair(l, r sql.Expr, left, right Schema) (int, int, bool) {
	lc, ok1 := l.(*sql.ColRef)
	rc, ok2 := r.(*sql.ColRef)
	if !ok1 || !ok2 {
		return 0, 0, false
	}
	if li, err := left.Resolve(lc.Table, lc.Name); err == nil {
		if ri, err := right.Resolve(rc.Table, rc.Name); err == nil {
			return li, ri, true
		}
	}
	if li, err := left.Resolve(rc.Table, rc.Name); err == nil {
		if ri, err := right.Resolve(lc.Table, lc.Name); err == nil {
			return li, ri, true
		}
	}
	return 0, 0, false
}

// aggAcc holds the typed per-group accumulators of one aggregate spec.
// Group ids index every slice; only the fields the function needs are
// allocated.
type aggAcc struct {
	count    []int64
	sum      []float64
	seen     []bool
	minI     []int64
	minF     []float64
	minS     []string
	minB     []bool
	distinct map[distinctKey]bool
}

func (ex *executor) execAggregate(n *opt.Aggregate) (*RowSet, error) {
	in, err := ex.exec(n.Input)
	if err != nil {
		return nil, err
	}

	// Evaluate the group keys as whole columns, then hash them once into
	// dense group ids.
	keyVecs := make([]*Vec, len(n.GroupBy))
	for i, g := range n.GroupBy {
		if err := ex.checkCtx(); err != nil {
			return nil, err
		}
		fn, err := compileVec(g, in.Schema, ex.env)
		if err != nil {
			return nil, err
		}
		v, err := fn(in)
		if err != nil {
			return nil, err
		}
		if err := v.pendingErr(in.N); err != nil {
			return nil, err
		}
		keyVecs[i] = v.materialize(in.N)
	}

	if w := ex.workers(in.N); w > 1 {
		return ex.execAggregateParallel(n, in, keyVecs, w)
	}

	gt := buildGroupTable(keyVecs, in.N)
	G := len(gt.groupRows)
	if G == 0 && len(n.GroupBy) == 0 {
		G = 1 // global aggregate over empty input still yields one row
	}
	rg := gt.rowGroup

	accs := make([]*aggAcc, len(n.Aggs))
	for ai, spec := range n.Aggs {
		if err := ex.checkCtx(); err != nil {
			return nil, err
		}
		a := &aggAcc{}
		a.growCount(G)
		accs[ai] = a
		if spec.Arg == nil {
			if spec.Star {
				for _, g := range rg {
					a.count[g]++
				}
			}
			continue
		}
		av, err := ex.evalAggArg(spec, in)
		if err != nil {
			return nil, err
		}
		if spec.Distinct {
			a.distinct = make(map[distinctKey]bool)
		}
		a.grow(spec, av.Type, G)
		if err := accumulateRange(a, spec, av, rg, 0, in.N); err != nil {
			return nil, err
		}
	}
	return ex.buildAggOutput(n, keyVecs, gt.groupRows, accs, G)
}

// evalAggArg materializes one aggregate's argument column.
func (ex *executor) evalAggArg(spec opt.AggSpec, in *RowSet) (*Vec, error) {
	fn, err := compileVec(spec.Arg, in.Schema, ex.env)
	if err != nil {
		return nil, err
	}
	v, err := fn(in)
	if err != nil {
		return nil, err
	}
	if err := v.pendingErr(in.N); err != nil {
		return nil, err
	}
	return v.materialize(in.N), nil
}

// buildAggOutput boxes the per-group accumulators into the result rowset
// (shared by the serial and parallel aggregate paths).
func (ex *executor) buildAggOutput(n *opt.Aggregate, keyVecs []*Vec, groupRows []int32, accs []*aggAcc, G int) (*RowSet, error) {
	outSchema := make(Schema, 0, len(n.GroupNames)+len(n.Aggs))
	outCols := make([]Column, 0, len(n.GroupNames)+len(n.Aggs))
	// Group column types come from the first group's values.
	for i, name := range n.GroupNames {
		t := TypeString
		if len(groupRows) > 0 && !keyVecs[i].isNull(int(groupRows[0])) {
			t = keyVecs[i].Type
		}
		outSchema = append(outSchema, ColMeta{Name: name, Type: t})
		outCols = append(outCols, NewColumn(t))
	}
	for _, spec := range n.Aggs {
		t := TypeFloat
		if spec.Func == "count" {
			t = TypeInt
		}
		outSchema = append(outSchema, ColMeta{Name: spec.OutName, Type: t})
		outCols = append(outCols, NewColumn(t))
	}
	for g := 0; g < G; g++ {
		if g%cancelBatchRows == 0 {
			if err := ex.checkCtx(); err != nil {
				return nil, err
			}
		}
		for i := range n.GroupNames {
			if err := outCols[i].Append(keyVecs[i].valueAt(int(groupRows[g]))); err != nil {
				return nil, err
			}
		}
		for ai, spec := range n.Aggs {
			a := accs[ai]
			var v Value
			switch spec.Func {
			case "count":
				v = IntValue(a.count[g])
			case "sum":
				// a.sum is nil for sum(*): no argument was ever folded, so
				// the total is zero (matching the old aggState behavior).
				if a.sum == nil {
					v = FloatValue(0)
				} else {
					v = FloatValue(a.sum[g])
				}
			case "avg":
				if a.sum == nil || a.count[g] == 0 {
					v = FloatValue(0)
				} else {
					v = FloatValue(a.sum[g] / float64(a.count[g]))
				}
			case "min", "max":
				v = minMaxValue(a, g)
			default:
				return nil, fmt.Errorf("engine: unknown aggregate %q", spec.Func)
			}
			if v.Kind == TypeInt && outSchema[len(n.GroupNames)+ai].Type == TypeFloat {
				v = FloatValue(float64(v.I))
			}
			if err := outCols[len(n.GroupNames)+ai].Append(v); err != nil {
				return nil, err
			}
		}
	}
	return NewRowSet(outSchema, outCols)
}

// growCount extends the count accumulator to G groups.
func (a *aggAcc) growCount(G int) {
	for len(a.count) < G {
		a.count = append(a.count, 0)
	}
}

// grow extends every accumulator array the (func, type) pair needs to G
// groups, preserving existing group state. The serial path grows once to the
// final group count; parallel workers grow as their thread-local tables
// discover groups.
func (a *aggAcc) grow(spec opt.AggSpec, t ColType, G int) {
	a.growCount(G)
	switch spec.Func {
	case "sum", "avg":
		if t == TypeInt || t == TypeFloat || t == TypeBool {
			for len(a.sum) < G {
				a.sum = append(a.sum, 0)
			}
		}
	case "min", "max":
		for len(a.seen) < G {
			a.seen = append(a.seen, false)
		}
		switch t {
		case TypeInt:
			for len(a.minI) < G {
				a.minI = append(a.minI, 0)
			}
		case TypeFloat:
			for len(a.minF) < G {
				a.minF = append(a.minF, 0)
			}
		case TypeString:
			for len(a.minS) < G {
				a.minS = append(a.minS, "")
			}
		case TypeBool:
			for len(a.minB) < G {
				a.minB = append(a.minB, false)
			}
		}
	}
}

// accumulateRange folds rows [lo, hi) of one aggregate's argument column
// into its per-group accumulators with a typed inner loop; rg maps each row
// to its group id and the accumulators are already grown to cover every
// referenced group. NULLs are skipped; DISTINCT deduplicates per
// (group, value) through the typed key.
func accumulateRange(a *aggAcc, spec opt.AggSpec, av *Vec, rg []int32, lo, hi int) error {
	// skip reports whether row r is null or a distinct-duplicate, mirroring
	// the row interpreter's per-row checks.
	skip := func(r int) bool {
		if av.Nulls != nil && av.Nulls[r] {
			return true
		}
		if a.distinct != nil {
			k := distinctKeyAt(av, r, rg[r])
			if a.distinct[k] {
				return true
			}
			a.distinct[k] = true
		}
		return false
	}
	switch spec.Func {
	case "count":
		if a.distinct == nil && av.Nulls == nil {
			for r := lo; r < hi; r++ {
				a.count[rg[r]]++
			}
			return nil
		}
		for r := lo; r < hi; r++ {
			if skip(r) {
				continue
			}
			a.count[rg[r]]++
		}
	case "sum", "avg":
		switch av.Type {
		case TypeFloat:
			if a.distinct == nil && av.Nulls == nil {
				for r := lo; r < hi; r++ {
					g := rg[r]
					a.count[g]++
					a.sum[g] += av.Floats[r]
				}
				return nil
			}
			for r := lo; r < hi; r++ {
				if skip(r) {
					continue
				}
				a.count[rg[r]]++
				a.sum[rg[r]] += av.Floats[r]
			}
		case TypeInt:
			if a.distinct == nil && av.Nulls == nil {
				for r := lo; r < hi; r++ {
					g := rg[r]
					a.count[g]++
					a.sum[g] += float64(av.Ints[r])
				}
				return nil
			}
			for r := lo; r < hi; r++ {
				if skip(r) {
					continue
				}
				a.count[rg[r]]++
				a.sum[rg[r]] += float64(av.Ints[r])
			}
		case TypeBool:
			for r := lo; r < hi; r++ {
				if skip(r) {
					continue
				}
				a.count[rg[r]]++
				if av.Bools[r] {
					a.sum[rg[r]]++
				}
			}
		default:
			for r := lo; r < hi; r++ {
				if av.Nulls != nil && av.Nulls[r] {
					continue
				}
				return fmt.Errorf("engine: %s over %s", spec.Func, av.Type)
			}
		}
	case "min", "max":
		isMin := spec.Func == "min"
		switch av.Type {
		case TypeInt:
			for r := lo; r < hi; r++ {
				if skip(r) {
					continue
				}
				g := rg[r]
				a.count[g]++
				v := av.Ints[r]
				if !a.seen[g] || (isMin && v < a.minI[g]) || (!isMin && v > a.minI[g]) {
					a.minI[g] = v
				}
				a.seen[g] = true
			}
		case TypeFloat:
			for r := lo; r < hi; r++ {
				if skip(r) {
					continue
				}
				g := rg[r]
				a.count[g]++
				v := av.Floats[r]
				if !a.seen[g] || (isMin && v < a.minF[g]) || (!isMin && v > a.minF[g]) {
					a.minF[g] = v
				}
				a.seen[g] = true
			}
		case TypeString:
			for r := lo; r < hi; r++ {
				if skip(r) {
					continue
				}
				g := rg[r]
				a.count[g]++
				v := av.Strs[r]
				if !a.seen[g] || (isMin && v < a.minS[g]) || (!isMin && v > a.minS[g]) {
					a.minS[g] = v
				}
				a.seen[g] = true
			}
		case TypeBool:
			for r := lo; r < hi; r++ {
				if skip(r) {
					continue
				}
				g := rg[r]
				a.count[g]++
				v := av.Bools[r]
				if !a.seen[g] || (isMin && a.minB[g] && !v) || (!isMin && !a.minB[g] && v) {
					a.minB[g] = v
				}
				a.seen[g] = true
			}
		}
	default:
		// Unknown functions surface the same error at output time as the
		// interpreter did; just count.
		for r := lo; r < hi; r++ {
			if skip(r) {
				continue
			}
			a.count[rg[r]]++
		}
	}
	return nil
}

// minMaxValue boxes the min/max accumulator of group g (NULL when the group
// saw no non-null values).
func minMaxValue(a *aggAcc, g int) Value {
	// a.seen is nil for min(*)/max(*), which never fold a value.
	if a.seen == nil || !a.seen[g] {
		return NullValue()
	}
	switch {
	case a.minI != nil:
		return IntValue(a.minI[g])
	case a.minF != nil:
		return FloatValue(a.minF[g])
	case a.minS != nil:
		return StringValue(a.minS[g])
	case a.minB != nil:
		return BoolValue(a.minB[g])
	}
	return NullValue()
}

// execProject computes the output expressions; the operator body lives in
// projectOp (cursor.go) so the streaming path shares it batch-by-batch.
func (ex *executor) execProject(n *opt.Project) (*RowSet, error) {
	in, err := ex.exec(n.Input)
	if err != nil {
		return nil, err
	}
	op, err := newProjectOp(ex, n, in.Schema)
	if err != nil {
		return nil, err
	}
	return op.apply(ex, in)
}

func (ex *executor) execDistinct(n *opt.Distinct) (*RowSet, error) {
	in, err := ex.exec(n.Input)
	if err != nil {
		return nil, err
	}
	if in.N == 0 {
		return in, nil
	}
	// All columns are the key: the group table's first-occurrence rows are
	// exactly the distinct rows, in input order.
	vecs := make([]*Vec, len(in.Cols))
	for i := range in.Cols {
		vecs[i] = colVec(&in.Cols[i])
	}
	if w := ex.workers(in.N); w > 1 {
		// Thread-local tables over morsels, merged in first-occurrence order
		// — the same machinery as parallel GROUP BY without accumulators.
		groupRows, err := ex.parallelGroupRows(vecs, in.N, w)
		if err != nil {
			return nil, err
		}
		if len(groupRows) == in.N {
			return in, nil
		}
		return in.Gather(groupRows), nil
	}
	gt := buildGroupTable(vecs, in.N)
	if len(gt.groupRows) == in.N {
		return in, nil
	}
	return in.Gather(gt.groupRows), nil
}

func (ex *executor) execSort(n *opt.Sort) (*RowSet, error) {
	in, err := ex.exec(n.Input)
	if err != nil {
		return nil, err
	}
	// Evaluate each key once as a whole column; comparisons then read typed
	// slices instead of boxed per-row values.
	keyVecs := make([]*Vec, len(n.Keys))
	for i, k := range n.Keys {
		if err := ex.checkCtx(); err != nil {
			return nil, err
		}
		fn, err := compileVec(k.Expr, in.Schema, ex.env)
		if err != nil {
			return nil, err
		}
		v, err := fn(in)
		if err != nil {
			return nil, err
		}
		if err := v.pendingErr(in.N); err != nil {
			return nil, err
		}
		keyVecs[i] = v.materialize(in.N)
	}
	if w := ex.workers(in.N); w > 1 {
		return ex.execSortParallel(in, n.Keys, keyVecs, w)
	}
	sel := make([]int32, in.N)
	for i := range sel {
		sel[i] = int32(i)
	}
	// The comparator polls the context at batch granularity: sort.SliceStable
	// offers no early exit, so after a cancellation the comparator degrades
	// to a constant (cheap passes to completion) and the sort's result is
	// discarded — a huge ORDER BY can no longer pin a worker between key
	// materialization and gather.
	canceled := false
	sinceCheck := 0
	sort.SliceStable(sel, func(a, b int) bool {
		if canceled {
			return false
		}
		sinceCheck++
		if sinceCheck >= cancelBatchRows {
			sinceCheck = 0
			if ex.checkCtx() != nil {
				canceled = true
				return false
			}
		}
		return lessRows(keyVecs, n.Keys, int(sel[a]), int(sel[b]))
	})
	if canceled {
		return nil, ex.ctx.Err()
	}
	return in.Gather(sel), nil
}

// lessRows is the shared ORDER BY comparator core: it orders rows ra and rb
// under the sort keys (NULLs first, numeric kinds as float64).
func lessRows(keyVecs []*Vec, keys []opt.SortKey, ra, rb int) bool {
	for i, kv := range keyVecs {
		c := vecCompareRows(kv, ra, rb)
		if c != 0 {
			if keys[i].Desc {
				return c > 0
			}
			return c < 0
		}
	}
	return false
}

// inferType statically determines the result type of an expression.
func inferType(e sql.Expr, schema Schema) (ColType, error) {
	switch x := e.(type) {
	case *sql.ColRef:
		idx, err := schema.Resolve(x.Table, x.Name)
		if err != nil {
			return 0, err
		}
		return schema[idx].Type, nil
	case *sql.Lit:
		switch x.Kind {
		case sql.LitInt:
			return TypeInt, nil
		case sql.LitFloat:
			return TypeFloat, nil
		case sql.LitString:
			return TypeString, nil
		case sql.LitBool:
			return TypeBool, nil
		default:
			return TypeFloat, nil // NULL defaults to float storage
		}
	case *sql.Unary:
		if x.Op == "NOT" {
			return TypeBool, nil
		}
		return inferType(x.X, schema)
	case *sql.Binary:
		switch x.Op {
		case "AND", "OR", "=", "<>", "<", "<=", ">", ">=":
			return TypeBool, nil
		case "||":
			return TypeString, nil
		}
		if _, ok := x.R.(*sql.Interval); ok {
			return TypeString, nil
		}
		lt, err := inferType(x.L, schema)
		if err != nil {
			return 0, err
		}
		rt, err := inferType(x.R, schema)
		if err != nil {
			return 0, err
		}
		if lt == TypeInt && rt == TypeInt && x.Op != "/" {
			return TypeInt, nil
		}
		return TypeFloat, nil
	case *sql.Between, *sql.InList, *sql.Like, *sql.IsNull, *sql.Exists:
		return TypeBool, nil
	case *sql.Case:
		if len(x.Whens) > 0 {
			return inferType(x.Whens[0].Then, schema)
		}
		return TypeFloat, nil
	case *sql.FuncCall:
		switch x.Name {
		case "substring", "upper", "lower":
			return TypeString, nil
		case "length", "count":
			return TypeInt, nil
		default:
			return TypeFloat, nil
		}
	case *sql.Predict:
		return TypeFloat, nil
	}
	return TypeFloat, nil
}
