package engine

// Morsel-driven parallel execution. Instead of carving the input into one
// contiguous range per worker (which idles workers when a predicate, probe,
// or group distribution is skewed), operators enqueue fixed-size row ranges
// — morsels — that a pool of workers pulls from a shared atomic cursor.
// A worker that drew cheap morsels simply pulls more; the last morsel
// bounds the idle tail. Results that must preserve row order are buffered
// per morsel and concatenated in morsel order, so parallel output is
// identical to serial output.
//
// The context is polled once per morsel (and per task), so cancellation
// granularity is at least as fine as the serial batch loops.

import (
	"sync"
	"sync/atomic"
)

// morselRows is the fixed morsel size: half the parallel threshold, so any
// input wide enough to parallelize yields at least two morsels, and small
// enough that per-morsel scratch (selection vectors, truth masks) pools
// cheaply. It also bounds cancellation latency: the context is polled per
// morsel.
const morselRows = 4096

// morselCount is the number of morsels covering n rows.
func morselCount(n int) int { return (n + morselRows - 1) / morselRows }

// morselBounds maps morsel m over n rows to its [lo, hi) row range.
func morselBounds(m, n int) (lo, hi int) {
	lo = m * morselRows
	hi = lo + morselRows
	if hi > n {
		hi = n
	}
	return lo, hi
}

// activeWorkers counts operator worker goroutines currently running across
// every in-flight query (the flock_exec_workers gauge).
var activeWorkers atomic.Int64

// ActiveWorkers reports how many engine operator workers are running right
// now, across all queries (exported on /metrics by the serving layer).
func ActiveWorkers() int64 { return activeWorkers.Load() }

// runTasks executes task(workerID, i) for every i in [0, count) on up to w
// workers pulling task indices from a shared cursor. The first error stops
// the pool (workers finish their current task); the context is polled before
// every task. With w <= 1 the tasks run inline on the calling goroutine.
func (ex *executor) runTasks(count, w int, task func(wid, i int) error) error {
	if count <= 0 {
		return nil
	}
	if w > count {
		w = count
	}
	if w <= 1 {
		for i := 0; i < count; i++ {
			if err := ex.checkCtx(); err != nil {
				return err
			}
			if err := task(0, i); err != nil {
				return err
			}
		}
		return nil
	}
	var cursor atomic.Int64
	var stop atomic.Bool
	errs := make([]error, w)
	var wg sync.WaitGroup
	for wid := 0; wid < w; wid++ {
		wg.Add(1)
		go func(wid int) {
			defer wg.Done()
			activeWorkers.Add(1)
			defer activeWorkers.Add(-1)
			for !stop.Load() {
				i := int(cursor.Add(1) - 1)
				if i >= count {
					return
				}
				if err := ex.checkCtx(); err != nil {
					errs[wid] = err
					stop.Store(true)
					return
				}
				if err := task(wid, i); err != nil {
					errs[wid] = err
					stop.Store(true)
					return
				}
			}
		}(wid)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// runMorsels fans n rows out to w workers pulling morsels from a shared
// queue. worker receives the worker id, the morsel index (for order-
// preserving per-morsel result buffers), and the morsel's [lo, hi) range.
func (ex *executor) runMorsels(n, w int, worker func(wid, m, lo, hi int) error) error {
	return ex.runTasks(morselCount(n), w, func(wid, m int) error {
		lo, hi := morselBounds(m, n)
		return worker(wid, m, lo, hi)
	})
}

// Scratch pools for the hot kernels: per-morsel selection vectors, truth
// masks, and join match buffers live exactly as long as one morsel (or one
// concatenation), so pooling them removes the dominant steady-state
// allocations of filter, join, and DML WHERE evaluation.

var selPool = sync.Pool{
	New: func() any {
		s := make([]int32, 0, morselRows)
		return &s
	},
}

// getSel returns an empty pooled []int32 with at least morselRows capacity.
func getSel() *[]int32 { return selPool.Get().(*[]int32) }

// putSel returns a selection buffer to the pool.
func putSel(s *[]int32) {
	*s = (*s)[:0]
	selPool.Put(s)
}

var maskPool = sync.Pool{
	New: func() any {
		m := make([]bool, 0, morselRows)
		return &m
	},
}

// getMask returns a pooled []bool resized to n (contents zeroed).
func getMask(n int) *[]bool {
	mp := maskPool.Get().(*[]bool)
	m := *mp
	if cap(m) < n {
		m = make([]bool, n)
	} else {
		m = m[:n]
		for i := range m {
			m[i] = false
		}
	}
	*mp = m
	return mp
}

// putMask returns a truth-mask buffer to the pool.
func putMask(m *[]bool) { maskPool.Put(m) }
