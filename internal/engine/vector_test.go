package engine

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/sql"
)

// --- kernel / interpreter equivalence ------------------------------------

// equivRowSet builds a randomized rowset exercising every column type,
// including NaN, ±0.0, negatives, empty strings, and repeated values.
func equivRowSet(r *rand.Rand, n int) *RowSet {
	i1 := make([]int64, n)
	i2 := make([]int64, n)
	f1 := make([]float64, n)
	f2 := make([]float64, n)
	s1 := make([]string, n)
	s2 := make([]string, n)
	b1 := make([]bool, n)
	words := []string{"", "a", "ab", "abc", "b%", "_c", "aa", "zz"}
	for i := 0; i < n; i++ {
		i1[i] = int64(r.Intn(21) - 10)
		i2[i] = int64(r.Intn(5) + 1) // strictly positive: safe divisor
		switch r.Intn(8) {
		case 0:
			f1[i] = math.NaN()
		case 1:
			f1[i] = math.Copysign(0, -1) // -0.0
		case 2:
			f1[i] = 0
		default:
			f1[i] = (r.Float64() - 0.5) * 100
		}
		f2[i] = r.Float64()*10 + 0.5 // strictly positive: safe divisor
		s1[i] = words[r.Intn(len(words))]
		s2[i] = words[r.Intn(len(words))]
		b1[i] = r.Intn(2) == 0
	}
	schema := Schema{
		{Name: "i1", Type: TypeInt}, {Name: "i2", Type: TypeInt},
		{Name: "f1", Type: TypeFloat}, {Name: "f2", Type: TypeFloat},
		{Name: "s1", Type: TypeString}, {Name: "s2", Type: TypeString},
		{Name: "b1", Type: TypeBool},
	}
	cols := []Column{
		IntColumn(i1), IntColumn(i2), FloatColumn(f1), FloatColumn(f2),
		StringColumn(s1), StringColumn(s2), BoolColumn(b1),
	}
	rs, err := NewRowSet(schema, cols)
	if err != nil {
		panic(err)
	}
	return rs
}

// valuesEquivalent compares interpreter and kernel outputs semantically:
// NULL matches NULL, numerics compare numerically with NaN==NaN and
// -0.0==0.0 (the interpreter can surface int 0 where the typed kernel
// surfaces float 0).
func valuesEquivalent(a, b Value) bool {
	if a.Null || b.Null {
		return a.Null == b.Null
	}
	an := a.Kind == TypeInt || a.Kind == TypeFloat || a.Kind == TypeBool
	bn := b.Kind == TypeInt || b.Kind == TypeFloat || b.Kind == TypeBool
	if an && bn {
		af, _ := a.AsFloat()
		bf, _ := b.AsFloat()
		if math.IsNaN(af) || math.IsNaN(bf) {
			return math.IsNaN(af) && math.IsNaN(bf)
		}
		return af == bf
	}
	if a.Kind == TypeString && b.Kind == TypeString {
		return a.S == b.S
	}
	return a.Kind == b.Kind
}

// TestKernelInterpreterEquivalence runs a grid of expressions through both
// the row-at-a-time reference interpreter (compileExpr) and the vector
// kernels (compileVec) over randomized columns and requires identical
// results — including whether each errors.
func TestKernelInterpreterEquivalence(t *testing.T) {
	exprs := []string{
		// Arithmetic, including int/float mixing and safe division.
		"i1 + i2", "i1 - 3", "i1 * f1", "f1 / f2", "i1 % i2", "f1 % f2",
		"-i1", "-f1", "i1 + f2 * 2",
		// Comparisons across types, NaN and -0.0 included.
		"i1 = i2", "i1 <> i2", "f1 < f2", "f1 >= 0.0", "i1 <= f1",
		"s1 = s2", "s1 < s2", "s1 >= 'ab'", "f1 = 0.0", "i1 > 5",
		// Boolean logic and NOT.
		"i1 > 0 AND f1 < 0.0", "s1 = 'a' OR i1 = 1", "NOT b1",
		"b1 AND i1 > 0", "b1 OR f1 > 0.0",
		// BETWEEN / IN / LIKE / IS NULL.
		"i1 BETWEEN 0 AND 5", "f1 BETWEEN -1.0 AND 1.0",
		"i1 NOT BETWEEN i2 AND 10",
		"s1 IN ('a', 'ab', 'zz')", "i1 IN (1, 2, 3)", "f1 IN (0.0, 1.0)",
		"s1 NOT IN ('a')",
		"s1 LIKE 'a%'", "s1 LIKE '_b'", "s1 NOT LIKE '%c'",
		"s1 IS NULL", "i1 IS NOT NULL",
		// CASE, both forms, with and without ELSE (NULL fallthrough).
		"CASE WHEN i1 > 0 THEN 'pos' WHEN i1 < 0 THEN 'neg' ELSE 'zero' END",
		"CASE WHEN f1 > 0.0 THEN f1 ELSE f2 END",
		"CASE WHEN i1 > 100 THEN 1 END",
		"CASE i2 WHEN 1 THEN 'one' WHEN 2 THEN 'two' ELSE 'many' END",
		// Functions.
		"length(s1)", "upper(s1)", "lower(s2)", "abs(i1)", "abs(f1)",
		"round(f1)", "substring(s1, 1, 2)", "substring(s2, 2)",
		// Concatenation (exercises Value.String formatting).
		"s1 || s2", "s1 || '-' || i1",
		// NULL literals flowing through kernels.
		"i1 + NULL", "NULL = i1", "CASE WHEN b1 THEN NULL ELSE i1 END",
		// Nested compositions.
		"(i1 + i2) * 2 > f1 AND s1 <> ''",
		"abs(i1 - i2) BETWEEN 0 AND 3 OR s1 LIKE 'z%'",
		"CASE WHEN i1 % 2 = 0 THEN 'even' ELSE 'odd' END = 'even'",
		// Guard-then-compute: short circuits and CASE branches must shield
		// data-dependent errors exactly as the interpreter does (i1 has
		// zeros, f1 has zeros and NaN).
		"i1 <> 0 AND 100 / i1 > 5",
		"i1 = 0 OR 100 / i1 > 5",
		"CASE WHEN i1 = 0 THEN 0.0 ELSE 100.0 / i1 END",
		"CASE WHEN f1 = 0.0 THEN 0.0 ELSE f2 / f1 END",
		"i1 <> 0 AND i2 % i1 = 0",
		"NOT (i1 = 0) AND 1 / i1 < 2",
		// Unguarded: both sides must error.
		"100 / i1", "i2 % i1",
	}
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 5; trial++ {
		rs := equivRowSet(r, 257)
		for _, src := range exprs {
			e := parseTestExpr(t, src)
			rowFn, rowCompileErr := compileExpr(e, rs.Schema, nil)
			vecFn, vecCompileErr := compileVec(e, rs.Schema, nil)
			if (rowCompileErr == nil) != (vecCompileErr == nil) {
				t.Fatalf("%q: compile disagreement: row=%v vec=%v", src, rowCompileErr, vecCompileErr)
			}
			if rowCompileErr != nil {
				continue
			}
			vec, vecErr := vecFn(rs)
			if vecErr == nil {
				// A deferred row error that survives all guards must
				// surface, exactly like the interpreter's eager error.
				vecErr = vec.pendingErr(rs.N)
			}
			var rowErr error
			rowVals := make([]Value, rs.N)
			for i := 0; i < rs.N; i++ {
				v, err := rowFn(rs, i)
				if err != nil {
					rowErr = err
					break
				}
				rowVals[i] = v
			}
			if (rowErr == nil) != (vecErr == nil) {
				t.Fatalf("%q: eval disagreement: row=%v vec=%v", src, rowErr, vecErr)
			}
			if rowErr != nil {
				continue
			}
			for i := 0; i < rs.N; i++ {
				got := vec.valueAt(i)
				if !valuesEquivalent(rowVals[i], got) {
					t.Fatalf("%q row %d: interpreter=%+v kernel=%+v", src, i, rowVals[i], got)
				}
			}
		}
	}
}

// parseTestExpr parses an expression by wrapping it in a SELECT.
func parseTestExpr(t testing.TB, src string) sql.Expr {
	t.Helper()
	stmt, err := sql.ParseOne("SELECT " + src + " AS x FROM t")
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	sel := stmt.(*sql.SelectStmt)
	return sel.Items[0].Expr
}

// --- typed hash semantics -------------------------------------------------

// TestGroupKeyFloatSemantics pins the float group-key fix: -0.0 and +0.0
// fall in one group (the old "%g" string encoding split them) and NaN
// groups with NaN.
func TestGroupKeyFloatSemantics(t *testing.T) {
	db := NewDB()
	if _, err := db.Exec("CREATE TABLE m (k float, v int)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO m VALUES (0.0, 1), (-0.0, 2), (1.5, 3), (-0.0, 4)"); err != nil {
		t.Fatal(err)
	}
	res, err := db.Exec("SELECT k, count(*) AS n FROM m GROUP BY k ORDER BY n DESC")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("0.0 and -0.0 must share a group: %v", res.Rows)
	}
	if res.Rows[0][1] != int64(3) {
		t.Errorf("zero group count = %v, want 3", res.Rows[0][1])
	}

	// count(DISTINCT k) agrees.
	res, err = db.Exec("SELECT count(DISTINCT k) AS n FROM m")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0] != int64(2) {
		t.Errorf("distinct float keys = %v, want 2", res.Rows[0][0])
	}

	// NaN groups with NaN at the hash-table level.
	nan := math.NaN()
	keys := []*Vec{{Type: TypeFloat, Floats: []float64{nan, 1, nan, math.Copysign(0, -1), 0}}}
	gt := buildGroupTable(keys, 5)
	if len(gt.groupRows) != 3 {
		t.Fatalf("NaN/zero normalization: %d groups, want 3", len(gt.groupRows))
	}
	if gt.rowGroup[0] != gt.rowGroup[2] {
		t.Error("NaN rows must share a group")
	}
	if gt.rowGroup[3] != gt.rowGroup[4] {
		t.Error("-0.0 and +0.0 rows must share a group")
	}
}

// TestGroupKeyNullSemantics pins NULL-vs-NULL grouping: NULL keys form one
// group and stay distinct from zero values.
func TestGroupKeyNullSemantics(t *testing.T) {
	nulls := []bool{true, false, true, false}
	keys := []*Vec{{Type: TypeInt, Ints: []int64{0, 0, 0, 7}, Nulls: nulls}}
	gt := buildGroupTable(keys, 4)
	if len(gt.groupRows) != 3 {
		t.Fatalf("groups = %d, want 3 (NULL, 0, 7)", len(gt.groupRows))
	}
	if gt.rowGroup[0] != gt.rowGroup[2] {
		t.Error("NULL keys must share a group")
	}
	if gt.rowGroup[0] == gt.rowGroup[1] {
		t.Error("NULL must not group with 0")
	}

	// End to end: a CASE key without ELSE yields NULL group keys.
	db := NewDB()
	if _, err := db.Exec("CREATE TABLE g (id int)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO g VALUES (1), (2), (3), (4), (5)"); err != nil {
		t.Fatal(err)
	}
	res, err := db.Exec(`SELECT CASE WHEN id > 3 THEN 'big' END AS k, count(*) AS n
		FROM g GROUP BY CASE WHEN id > 3 THEN 'big' END ORDER BY n`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	// 'big' group has 2 rows, NULL group has 3.
	if res.Rows[0][1] != int64(2) || res.Rows[1][1] != int64(3) {
		t.Errorf("group counts = %v", res.Rows)
	}
}

// TestJoinCrossTypeNumericKeys: an int key joins a float key numerically
// (the typed hash normalizes both sides to float64).
func TestJoinCrossTypeNumericKeys(t *testing.T) {
	db := NewDB()
	if _, err := db.Exec("CREATE TABLE li (k int, a text)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("CREATE TABLE rf (k float, b text)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO li VALUES (1, 'x'), (2, 'y'), (3, 'z')"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO rf VALUES (1.0, 'one'), (3.0, 'three'), (4.0, 'four')"); err != nil {
		t.Fatal(err)
	}
	res, err := db.Exec("SELECT li.a, rf.b FROM li JOIN rf ON li.k = rf.k ORDER BY li.a")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][1] != "one" || res.Rows[1][1] != "three" {
		t.Errorf("cross-type join rows = %v", res.Rows)
	}
}

// TestGroupTableManyKeys stresses the open-addressing table with multi-
// column keys against a reference map implementation.
func TestGroupTableManyKeys(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	n := 5000
	a := make([]int64, n)
	b := make([]string, n)
	for i := range a {
		a[i] = int64(r.Intn(50))
		b[i] = fmt.Sprintf("s%d", r.Intn(40))
	}
	keys := []*Vec{{Type: TypeInt, Ints: a}, {Type: TypeString, Strs: b}}
	gt := buildGroupTable(keys, n)

	ref := map[string]int{}
	var refOrder []string
	refGroup := make([]int, n)
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("%d|%s", a[i], b[i])
		g, ok := ref[k]
		if !ok {
			g = len(refOrder)
			ref[k] = g
			refOrder = append(refOrder, k)
		}
		refGroup[i] = g
	}
	if len(gt.groupRows) != len(refOrder) {
		t.Fatalf("groups = %d, want %d", len(gt.groupRows), len(refOrder))
	}
	for i := 0; i < n; i++ {
		if int(gt.rowGroup[i]) != refGroup[i] {
			t.Fatalf("row %d: group %d, want %d", i, gt.rowGroup[i], refGroup[i])
		}
	}
}

// TestJoinTableChainOrder verifies probe hits come back in build-row order
// (which keeps join output byte-identical to the old map of row lists).
func TestJoinTableChainOrder(t *testing.T) {
	build := []*Vec{{Type: TypeInt, Ints: []int64{7, 3, 7, 7, 3}}}
	modes := vecKeyModes(build)
	jt := buildJoinTable(build, 5, modes)
	probe := []*Vec{{Type: TypeInt, Ints: []int64{7, 3, 9}}}
	got := jt.probe(probe, 0, nil)
	if len(got) != 3 || got[0] != 0 || got[1] != 2 || got[2] != 3 {
		t.Errorf("probe(7) = %v, want [0 2 3]", got)
	}
	got = jt.probe(probe, 1, nil)
	if len(got) != 2 || got[0] != 1 || got[1] != 4 {
		t.Errorf("probe(3) = %v, want [1 4]", got)
	}
	if got := jt.probe(probe, 2, nil); len(got) != 0 {
		t.Errorf("probe(9) = %v, want empty", got)
	}
}

// TestGuardedDivision pins the short-circuit semantics end to end: a guard
// on the divisor must shield division by zero in WHERE, CASE, and UPDATE,
// while unguarded division still errors.
func TestGuardedDivision(t *testing.T) {
	db := NewDB()
	if _, err := db.Exec("CREATE TABLE q (a float, b float)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO q VALUES (10.0, 2.0), (5.0, 0.0), (9.0, 3.0)"); err != nil {
		t.Fatal(err)
	}
	res, err := db.Exec("SELECT a FROM q WHERE b <> 0.0 AND a / b > 2.0 ORDER BY a")
	if err != nil {
		t.Fatalf("guarded AND division must not error: %v", err)
	}
	if len(res.Rows) != 2 || res.Rows[0][0] != 9.0 || res.Rows[1][0] != 10.0 {
		t.Errorf("guarded filter rows = %v", res.Rows)
	}
	res, err = db.Exec("SELECT CASE WHEN b = 0.0 THEN 0.0 ELSE a / b END AS r FROM q ORDER BY r")
	if err != nil {
		t.Fatalf("guarded CASE division must not error: %v", err)
	}
	if len(res.Rows) != 3 || res.Rows[0][0] != 0.0 {
		t.Errorf("guarded case rows = %v", res.Rows)
	}
	if _, err := db.Exec("SELECT a / b FROM q"); err == nil {
		t.Error("unguarded division by zero must error")
	}
	if _, err := db.Exec("SELECT a FROM q WHERE a / b > 2.0"); err == nil {
		t.Error("unguarded division in WHERE must error")
	}
	// OR short circuit and DML WHERE.
	if _, err := db.Exec("UPDATE q SET a = a + 1.0 WHERE b = 0.0 OR a / b > 4.0"); err != nil {
		t.Fatalf("guarded OR division in UPDATE must not error: %v", err)
	}
	res, err = db.Exec("SELECT sum(a) AS s FROM q")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0] != 26.0 { // rows 10 (updated: 11) + 5 (updated: 6) + 9
		t.Errorf("sum after guarded update = %v, want 26", res.Rows[0][0])
	}
}

// TestStarAggregates: sum(*)/avg(*)/min(*)/max(*) parse and must not panic;
// they return the same zero/NULL-backed values the old aggState produced.
func TestStarAggregates(t *testing.T) {
	db := newTestDB(t)
	res, err := db.Exec("SELECT count(*) AS c, sum(*) AS s, avg(*) AS a, min(*) AS lo, max(*) AS hi FROM orders")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][0] != int64(6) {
		t.Errorf("count(*) = %v", res.Rows[0][0])
	}
	// sum/avg fold nothing: 0. min/max are NULL, stored as zero floats.
	for i := 1; i < 5; i++ {
		if res.Rows[0][i] != 0.0 {
			t.Errorf("star aggregate %d = %v, want 0", i, res.Rows[0][i])
		}
	}
}

// TestFilterMatchesInterpreter cross-checks the full filter path (mask +
// selection) against a row-at-a-time evaluation for several predicates.
func TestFilterMatchesInterpreter(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	rs := equivRowSet(r, 1024)
	ex := &executor{o: ExecOptions{}, env: nil}
	preds := []string{
		"i1 > 0 AND f1 < 10.0",
		"s1 LIKE 'a%' OR i1 BETWEEN 2 AND 6",
		"NOT b1 AND i1 % 2 = 0",
		"f1 = 0.0", // matches both +0.0 and -0.0
	}
	for _, src := range preds {
		e := parseTestExpr(t, src)
		got, err := ex.filterRowSet(rs, e)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		fn, err := compileExpr(e, rs.Schema, nil)
		if err != nil {
			t.Fatal(err)
		}
		var want []int32
		for i := 0; i < rs.N; i++ {
			v, err := fn(rs, i)
			if err != nil {
				t.Fatal(err)
			}
			if v.Truthy() {
				want = append(want, int32(i))
			}
		}
		if got.N != len(want) {
			t.Fatalf("%q: %d rows, interpreter says %d", src, got.N, len(want))
		}
	}
}
