package engine

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"
)

// Graceful degradation. A poisoned write-ahead log (failed fsync, an append
// that could not be rolled back, a failed rotation) used to brick every
// subsequent commit with an opaque error while leaving the process
// nominally healthy. Instead the DB now transitions to an explicit
// read-only degraded mode: reads and cursor fetches keep serving from the
// in-memory state, writes fail fast with ErrReadOnly, and the serving
// layer surfaces the state through /readyz and the flock_degraded_mode /
// flock_wal_poisoned gauges. Recovery is operator-triggered: once the disk
// heals, ReopenWAL folds the current in-memory state into a fresh durable
// snapshot, discards the poisoned log, and re-enables writes.

// ErrReadOnly is returned by every write once the DB has degraded to
// read-only mode. It wraps the poison cause, so errors.Is(err, ErrReadOnly)
// and errors.Is(err, ErrWALPoisoned) both hold for WAL-driven degradation.
var ErrReadOnly = errors.New("engine: database is in read-only degraded mode")

// degradedState records why and when the DB degraded.
type degradedState struct {
	reason string
	since  time.Time
}

// Degraded reports whether the DB is in read-only degraded mode and why.
func (db *DB) Degraded() (bool, string) {
	s := db.degraded.Load()
	if s == nil {
		return false, ""
	}
	return true, s.reason
}

// DegradedSince reports when the DB degraded (zero time when healthy).
func (db *DB) DegradedSince() time.Time {
	s := db.degraded.Load()
	if s == nil {
		return time.Time{}
	}
	return s.since
}

// checkWritable is the write-path gate: nil when healthy, a fast typed
// error once degraded. One atomic load on the happy path.
func (db *DB) checkWritable() error {
	if r := db.replica.Load(); r != nil {
		return fmt.Errorf("%w: read-only replica of %s; route writes to the leader", ErrReadOnly, r.leader)
	}
	if f := db.fenced.Load(); f != nil {
		return fmt.Errorf("%w: a newer leader at epoch %d was observed via %s; this deposed leader cannot ack writes (repoint it to the new leader)", ErrFenced, f.observed, f.source)
	}
	s := db.degraded.Load()
	if s == nil {
		return nil
	}
	return fmt.Errorf("%w (%s); reads still serve, writes resume after a successful ReopenWAL", ErrReadOnly, s.reason)
}

// noteWALErr inspects an error from a WAL operation and, when it carries
// the poison sentinel, transitions the DB to degraded mode (idempotent;
// first cause wins).
func (db *DB) noteWALErr(err error) {
	if err == nil || !errors.Is(err, ErrWALPoisoned) {
		return
	}
	db.degraded.CompareAndSwap(nil, &degradedState{
		reason: strings.TrimSpace(err.Error()),
		since:  time.Now(),
	})
}

// ReopenWAL recovers a degraded database back to read-write once the
// underlying fault (full disk, failed device) is resolved: under an
// exclusive commit barrier it writes the current in-memory state — which
// contains every acknowledged write, plus any installed-but-unacked
// statements whose clients saw errors — as a fresh durable snapshot,
// discards the poisoned log and any folded segments, and attaches a fresh
// WAL continuing the LSN sequence. On failure (the disk is still bad) the
// DB stays degraded and the error explains why.
//
// Also valid on a healthy DB, where it is equivalent to a checkpoint that
// additionally swaps the log file.
func (db *DB) ReopenWAL() error {
	db.ckptMu.Lock()
	defer db.ckptMu.Unlock()
	db.commitMu.Lock()
	defer db.commitMu.Unlock()
	if db.durDir == "" {
		return fmt.Errorf("engine: ReopenWAL requires a database opened with OpenDirDB")
	}
	if f := db.fenced.Load(); f != nil {
		// Fencing is terminal by design: an operator "fixing" a deposed
		// leader with a reopen would put two writable nodes on one lineage.
		return fmt.Errorf("%w: reopen refused; a newer leader at epoch %d exists (observed via %s) — repoint this node to it instead", ErrFenced, f.observed, f.source)
	}

	// The snapshot is built from memory, not from the poisoned log: memory
	// holds a superset of every durably acked statement (commit order is
	// install-then-ack), so folding it durably loses nothing.
	snap := db.buildSnapshotLocked()
	if db.wal != nil {
		db.wal.mu.Lock()
		if db.wal.lsn > snap.LSN {
			snap.LSN = db.wal.lsn
		}
		db.wal.mu.Unlock()
	} else if db.replayLSN > snap.LSN {
		snap.LSN = db.replayLSN
	}
	if err := writeSnapshotFile(filepath.Join(db.durDir, snapshotFile), snap); err != nil {
		return fmt.Errorf("engine: reopen: %w", err)
	}

	// The snapshot now covers everything; the old log and any segments are
	// garbage. Discard the poisoned handle (best-effort close, bypassing
	// failpoints) and remove the files — removal failures are tolerable
	// because recovery skips their records by LSN anyway.
	if db.wal != nil {
		db.wal.discard()
	}
	if entries, err := os.ReadDir(db.durDir); err == nil {
		for _, e := range entries {
			name := e.Name()
			if strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, walSegSuffix) {
				if lsn, ok := segLSN(name); ok && lsn <= snap.LSN {
					_ = os.Remove(filepath.Join(db.durDir, name))
				}
			}
		}
	}

	w, err := createWAL(filepath.Join(db.durDir, walFile), db.walSync, snap.LSN)
	if err != nil {
		// Acked state is safe in the snapshot, but with no log to append to
		// the DB must stay read-only.
		db.noteWALErr(fmt.Errorf("%w: reopen could not create a fresh log: %w", ErrWALPoisoned, err))
		return fmt.Errorf("engine: reopen: %w", err)
	}
	db.wal = w
	db.retiredWAL = nil
	db.walHorizon = snap.LSN // the old log and segments are gone
	db.degraded.Store(nil)
	return nil
}

// discard closes the underlying file ignoring errors and leaves the WAL
// poisoned — the reopen path's teardown, where the log's content is already
// superseded by a freshly written snapshot.
func (w *WAL) discard() {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f != nil {
		_ = w.f.File.Close()
		w.f = nil
	}
	w.broken = true
	if w.syncErr == nil {
		w.syncErr = fmt.Errorf("%w: log discarded by reopen", ErrWALPoisoned)
	}
	w.cond.Broadcast()
	w.notifyLocked()
}
