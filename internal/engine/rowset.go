package engine

import "fmt"

// RowSet is a materialized intermediate result: a schema plus columns of
// equal length. Columns may alias table storage (scans are zero-copy).
type RowSet struct {
	Schema Schema
	Cols   []Column
	N      int
}

// NewRowSet builds a rowset and validates column lengths.
func NewRowSet(schema Schema, cols []Column) (*RowSet, error) {
	if len(schema) != len(cols) {
		return nil, fmt.Errorf("engine: rowset schema/columns mismatch: %d vs %d", len(schema), len(cols))
	}
	n := 0
	if len(cols) > 0 {
		n = cols[0].Len()
	}
	for i := range cols {
		if cols[i].Len() != n {
			return nil, fmt.Errorf("engine: ragged rowset at column %s", schema[i].Name)
		}
	}
	return &RowSet{Schema: schema, Cols: cols, N: n}, nil
}

// Gather returns a rowset holding only the selected rows.
func (rs *RowSet) Gather(sel []int32) *RowSet {
	out := &RowSet{Schema: rs.Schema, N: len(sel)}
	out.Cols = make([]Column, len(rs.Cols))
	for i := range rs.Cols {
		out.Cols[i] = rs.Cols[i].Gather(sel)
	}
	return out
}

// Slice returns a zero-copy rowset over rows [lo, hi).
func (rs *RowSet) Slice(lo, hi int) *RowSet {
	out := &RowSet{Schema: rs.Schema, N: hi - lo}
	out.Cols = make([]Column, len(rs.Cols))
	for i := range rs.Cols {
		c := rs.Cols[i]
		switch c.Type {
		case TypeInt:
			c.Ints = c.Ints[lo:hi]
		case TypeFloat:
			c.Floats = c.Floats[lo:hi]
		case TypeString:
			c.Strs = c.Strs[lo:hi]
		case TypeBool:
			c.Bools = c.Bools[lo:hi]
		}
		out.Cols[i] = c
	}
	return out
}

// Row returns row i as values (for small results and tests).
func (rs *RowSet) Row(i int) []Value {
	out := make([]Value, len(rs.Cols))
	for c := range rs.Cols {
		out[c] = rs.Cols[c].Value(i)
	}
	return out
}

// Result is the query result surfaced to callers.
type Result struct {
	Columns  []string
	Rows     [][]any
	Affected int64
}

// ResultFromRowSet converts a rowset into a client Result (the
// prepared-statement path materializes results through here).
func ResultFromRowSet(rs *RowSet) *Result { return resultFromRowSet(rs) }

// resultFromRowSet converts a rowset into a Result.
func resultFromRowSet(rs *RowSet) *Result {
	res := &Result{Columns: rs.Schema.Names()}
	res.Rows = make([][]any, rs.N)
	for i := 0; i < rs.N; i++ {
		row := make([]any, len(rs.Cols))
		for c := range rs.Cols {
			row[c] = rs.Cols[c].Value(i).Any()
		}
		res.Rows[i] = row
	}
	return res
}
