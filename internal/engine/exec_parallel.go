package engine

// Parallel physical operators over the morsel queue: GROUP BY / DISTINCT
// with thread-local pre-aggregation and a deterministic merge phase, and
// ORDER BY as per-worker chunk sorts folded by pairwise merges. Every path
// here produces the same rows in the same order as its serial twin in
// exec.go (float sums may differ in rounding only, because parallel folding
// re-associates the additions).

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"repro/internal/opt"
)

// localGroups is one worker's (or the merge phase's) group hash table: open
// addressing over group hashes, growing as groups appear. groupRows holds
// the first input row of each group in discovery order.
type localGroups struct {
	slots     []int32 // open-addressing table of group ids (-1 empty)
	mask      uint64
	groupRows []int32  // first row of each group, in discovery order
	hashes    []uint64 // group hash, for rehashing without re-reading keys
}

func newLocalGroups() *localGroups {
	const initCap = 1024
	lg := &localGroups{slots: make([]int32, initCap), mask: initCap - 1}
	for i := range lg.slots {
		lg.slots[i] = -1
	}
	return lg
}

// gidFor returns the group id of row r, inserting a new group when the key
// is unseen.
func (lg *localGroups) gidFor(keys []*Vec, modes []keyMode, r int) int32 {
	h := hashKeyRow(keys, modes, r)
	p := h & lg.mask
	for {
		g := lg.slots[p]
		if g < 0 {
			g = int32(len(lg.groupRows))
			lg.groupRows = append(lg.groupRows, int32(r))
			lg.hashes = append(lg.hashes, h)
			lg.slots[p] = g
			if 2*len(lg.groupRows) > len(lg.slots) {
				lg.rehash()
			}
			return g
		}
		if keyRowsEqual(keys, r, keys, int(lg.groupRows[g]), modes) {
			return g
		}
		p = (p + 1) & lg.mask
	}
}

// rehash doubles the slot table, reseating every group by its stored hash.
func (lg *localGroups) rehash() {
	slots := make([]int32, 2*len(lg.slots))
	for i := range slots {
		slots[i] = -1
	}
	mask := uint64(len(slots) - 1)
	for g, h := range lg.hashes {
		p := h & mask
		for slots[p] >= 0 {
			p = (p + 1) & mask
		}
		slots[p] = int32(g)
	}
	lg.slots, lg.mask = slots, mask
}

// groupSrc identifies one worker-local group during the merge phase.
type groupSrc struct {
	row  int32 // the group's first row within its worker's morsels
	wid  int32
	lgid int32
}

// mergeLocalGroups folds worker-local group tables into one global table.
// Sources are sorted by first row before insertion, so global group ids are
// assigned in true first-occurrence order — the serial GROUP BY / DISTINCT
// output order — and each global group's representative row is its earliest
// occurrence. Returns the global table, the sorted sources (the
// deterministic fold order for accumulator merging), and the per-worker
// localGid -> globalGid remap.
func mergeLocalGroups(keyVecs []*Vec, modes []keyMode, tables []*localGroups) (*localGroups, []groupSrc, [][]int32) {
	total := 0
	for _, lg := range tables {
		if lg != nil {
			total += len(lg.groupRows)
		}
	}
	srcs := make([]groupSrc, 0, total)
	remap := make([][]int32, len(tables))
	for wid, lg := range tables {
		if lg == nil {
			continue
		}
		remap[wid] = make([]int32, len(lg.groupRows))
		for lgid, row := range lg.groupRows {
			srcs = append(srcs, groupSrc{row: row, wid: int32(wid), lgid: int32(lgid)})
		}
	}
	sort.Slice(srcs, func(i, j int) bool { return srcs[i].row < srcs[j].row })
	glob := newLocalGroups()
	for _, s := range srcs {
		remap[s.wid][s.lgid] = glob.gidFor(keyVecs, modes, int(s.row))
	}
	return glob, srcs, remap
}

// parallelGroupRows computes the first-occurrence rows of every distinct key
// combination (the parallel DISTINCT core): workers build thread-local
// tables over morsels, then the tables merge in first-occurrence order.
func (ex *executor) parallelGroupRows(keyVecs []*Vec, nRows, w int) ([]int32, error) {
	modes := vecKeyModes(keyVecs)
	tables := make([]*localGroups, w)
	err := ex.runMorsels(nRows, w, func(wid, m, lo, hi int) error {
		lg := tables[wid]
		if lg == nil {
			lg = newLocalGroups()
			tables[wid] = lg
		}
		for r := lo; r < hi; r++ {
			lg.gidFor(keyVecs, modes, r)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	glob, _, _ := mergeLocalGroups(keyVecs, modes, tables)
	return glob.groupRows, nil
}

// workerAgg is one worker's thread-local pre-aggregation state: its group
// table plus one accumulator per aggregate spec, all indexed by local group
// id.
type workerAgg struct {
	lg   *localGroups
	accs []*aggAcc
}

// execAggregateParallel is the morsel-parallel GROUP BY: each worker
// pre-aggregates its morsels into thread-local accumulators, the local
// tables merge into global group ids in first-occurrence order, and the
// local accumulators fold per group. DISTINCT aggregates collect per-group
// value sets instead (two workers may both have seen the same value, so
// pre-aggregated distinct sums would double-count); the merge unions the
// sets and recomputes.
func (ex *executor) execAggregateParallel(n *opt.Aggregate, in *RowSet, keyVecs []*Vec, w int) (*RowSet, error) {
	// Materialize every aggregate argument once, shared read-only. For the
	// common case — a bare column reference — the kernel aliases table
	// storage and materialize is a no-op, so this costs nothing. A computed
	// argument (sum(a*b)) does evaluate serially here before the fan-out,
	// which bounds speedup for expression-heavy aggregates; pushing kernel
	// evaluation into the morsel loop would need per-morsel Vec stitching
	// (nulls, errmasks, consts) and is left as a follow-up.
	argVecs := make([]*Vec, len(n.Aggs))
	for ai, spec := range n.Aggs {
		if spec.Arg == nil {
			continue
		}
		av, err := ex.evalAggArg(spec, in)
		if err != nil {
			return nil, err
		}
		argVecs[ai] = av
	}
	modes := vecKeyModes(keyVecs)
	// rowGid holds each row's local group id; rows are written only by the
	// worker that pulled their morsel, so the slice is write-disjoint.
	rowGid := make([]int32, in.N)
	states := make([]*workerAgg, w)
	err := ex.runMorsels(in.N, w, func(wid, m, lo, hi int) error {
		st := states[wid]
		if st == nil {
			st = &workerAgg{lg: newLocalGroups(), accs: make([]*aggAcc, len(n.Aggs))}
			for ai, spec := range n.Aggs {
				st.accs[ai] = &aggAcc{}
				if spec.Distinct && spec.Arg != nil {
					st.accs[ai].distinct = make(map[distinctKey]bool)
				}
			}
			states[wid] = st
		}
		for r := lo; r < hi; r++ {
			rowGid[r] = st.lg.gidFor(keyVecs, modes, r)
		}
		G := len(st.lg.groupRows)
		for ai := range n.Aggs {
			spec := n.Aggs[ai]
			a := st.accs[ai]
			a.growCount(G)
			if spec.Arg == nil {
				if spec.Star {
					for r := lo; r < hi; r++ {
						a.count[rowGid[r]]++
					}
				}
				continue
			}
			av := argVecs[ai]
			if spec.Distinct {
				for r := lo; r < hi; r++ {
					if av.Nulls != nil && av.Nulls[r] {
						continue
					}
					a.distinct[distinctKeyAt(av, r, rowGid[r])] = true
				}
				continue
			}
			a.grow(spec, av.Type, G)
			if err := accumulateRange(a, spec, av, rowGid, lo, hi); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	tables := make([]*localGroups, len(states))
	for wid, st := range states {
		if st != nil {
			tables[wid] = st.lg
		}
	}
	glob, srcs, remap := mergeLocalGroups(keyVecs, modes, tables)
	groupRows := glob.groupRows
	G := len(groupRows)
	if G == 0 && len(n.GroupBy) == 0 {
		G = 1 // parity with the serial path (unreachable: parallel implies rows)
	}

	accs := make([]*aggAcc, len(n.Aggs))
	for ai, spec := range n.Aggs {
		ga := &aggAcc{}
		ga.growCount(G)
		if spec.Arg != nil {
			ga.grow(spec, argVecs[ai].Type, G)
		}
		accs[ai] = ga
	}
	// Fold the non-distinct locals in first-occurrence order — a fixed,
	// input-determined order, so merged results are stable across runs.
	for _, s := range srcs {
		st := states[s.wid]
		g := int(remap[s.wid][s.lgid])
		for ai := range n.Aggs {
			spec := n.Aggs[ai]
			if spec.Distinct && spec.Arg != nil {
				continue
			}
			la, ga := st.accs[ai], accs[ai]
			lgid := int(s.lgid)
			if lgid < len(la.count) {
				ga.count[g] += la.count[lgid]
			}
			if ga.sum != nil && lgid < len(la.sum) {
				ga.sum[g] += la.sum[lgid]
			}
			if lgid < len(la.seen) && la.seen[lgid] {
				mergeMinMax(ga, g, la, lgid, spec.Func == "min", argVecs[ai].Type)
			}
		}
	}
	for ai := range n.Aggs {
		spec := n.Aggs[ai]
		if !spec.Distinct || spec.Arg == nil {
			continue
		}
		if err := mergeDistinct(accs[ai], spec, argVecs[ai].Type, G, states, remap, ai); err != nil {
			return nil, err
		}
	}
	return ex.buildAggOutput(n, keyVecs, groupRows, accs, G)
}

// mergeMinMax folds one local group's min/max into the global accumulator,
// replicating the serial comparison rules per type.
func mergeMinMax(ga *aggAcc, g int, la *aggAcc, lgid int, isMin bool, t ColType) {
	switch t {
	case TypeInt:
		v := la.minI[lgid]
		if !ga.seen[g] || (isMin && v < ga.minI[g]) || (!isMin && v > ga.minI[g]) {
			ga.minI[g] = v
		}
	case TypeFloat:
		v := la.minF[lgid]
		if !ga.seen[g] || (isMin && v < ga.minF[g]) || (!isMin && v > ga.minF[g]) {
			ga.minF[g] = v
		}
	case TypeString:
		v := la.minS[lgid]
		if !ga.seen[g] || (isMin && v < ga.minS[g]) || (!isMin && v > ga.minS[g]) {
			ga.minS[g] = v
		}
	case TypeBool:
		v := la.minB[lgid]
		if !ga.seen[g] || (isMin && ga.minB[g] && !v) || (!isMin && !ga.minB[g] && v) {
			ga.minB[g] = v
		}
	}
	ga.seen[g] = true
}

// mergeDistinct unions the workers' per-group distinct value sets under the
// global group ids and recomputes the aggregate from the deduplicated
// values, folding each group's values in sorted order so the result is
// deterministic.
func mergeDistinct(ga *aggAcc, spec opt.AggSpec, t ColType, G int, states []*workerAgg, remap [][]int32, ai int) error {
	seen := make(map[distinctKey]bool)
	perGroup := make([][]distinctKey, G)
	for wid, st := range states {
		if st == nil {
			continue
		}
		for k := range st.accs[ai].distinct {
			gk := k
			gk.g = remap[wid][k.g]
			if seen[gk] {
				continue
			}
			seen[gk] = true
			perGroup[gk.g] = append(perGroup[gk.g], gk)
		}
	}
	isMin := spec.Func == "min"
	for g := 0; g < G; g++ {
		ks := perGroup[g]
		sort.Slice(ks, func(i, j int) bool {
			if ks[i].i != ks[j].i {
				return ks[i].i < ks[j].i
			}
			return ks[i].s < ks[j].s
		})
		for _, k := range ks {
			if err := foldDistinctKey(ga, spec, t, g, k, isMin); err != nil {
				return err
			}
		}
	}
	return nil
}

// foldDistinctKey applies one deduplicated value to a global accumulator.
// The typed value is recovered from the distinct key (floats store their
// normalized bit pattern, so +0/-0 and NaNs round-trip canonically).
func foldDistinctKey(ga *aggAcc, spec opt.AggSpec, t ColType, g int, k distinctKey, isMin bool) error {
	switch spec.Func {
	case "count":
		ga.count[g]++
	case "sum", "avg":
		var v float64
		switch t {
		case TypeInt:
			v = float64(k.i)
		case TypeFloat:
			v = math.Float64frombits(uint64(k.i))
		case TypeBool:
			if k.i != 0 {
				v = 1
			}
		default:
			return fmt.Errorf("engine: %s over %s", spec.Func, t)
		}
		ga.count[g]++
		ga.sum[g] += v
	case "min", "max":
		ga.count[g]++
		switch t {
		case TypeInt:
			v := k.i
			if !ga.seen[g] || (isMin && v < ga.minI[g]) || (!isMin && v > ga.minI[g]) {
				ga.minI[g] = v
			}
		case TypeFloat:
			v := math.Float64frombits(uint64(k.i))
			if !ga.seen[g] || (isMin && v < ga.minF[g]) || (!isMin && v > ga.minF[g]) {
				ga.minF[g] = v
			}
		case TypeString:
			v := k.s
			if !ga.seen[g] || (isMin && v < ga.minS[g]) || (!isMin && v > ga.minS[g]) {
				ga.minS[g] = v
			}
		case TypeBool:
			v := k.i != 0
			if !ga.seen[g] || (isMin && ga.minB[g] && !v) || (!isMin && !ga.minB[g] && v) {
				ga.minB[g] = v
			}
		}
		ga.seen[g] = true
	default:
		ga.count[g]++
	}
	return nil
}

// buildJoinIndex builds the hash-join build side, in parallel when the
// build input is wide enough: key hashes are computed over morsels, rows
// are radix-partitioned by their high hash bits (with slack over the worker
// count so one hot partition cannot serialize the build), and the
// partitions' tables build as independent tasks.
func (ex *executor) buildJoinIndex(keys []*Vec, n int, modes []keyMode) (joinIndex, error) {
	w := ex.workers(n)
	if w <= 1 {
		if err := ex.checkCtx(); err != nil {
			return nil, err
		}
		return buildJoinTable(keys, n, modes), nil
	}
	hashes := make([]uint64, n)
	if err := ex.runMorsels(n, w, func(wid, m, lo, hi int) error {
		for r := lo; r < hi; r++ {
			hashes[r] = hashKeyRow(keys, modes, r)
		}
		return nil
	}); err != nil {
		return nil, err
	}
	P, logP := 1, 0
	for P < 2*w && P < 256 {
		P <<= 1
		logP++
	}
	shift := uint(64 - logP)
	// Parallel radix scatter: per-morsel partition histograms, a small
	// serial prefix-sum over (morsel × partition), then each morsel writes
	// its rows into disjoint slots of one flat array — no serial O(n) pass.
	// Within a partition, morsel-major order keeps rows ascending, which
	// the chain build below relies on.
	nm := morselCount(n)
	counts := make([][]int32, nm)
	if err := ex.runMorsels(n, w, func(wid, m, lo, hi int) error {
		c := make([]int32, P)
		for r := lo; r < hi; r++ {
			c[hashes[r]>>shift]++
		}
		counts[m] = c
		return nil
	}); err != nil {
		return nil, err
	}
	starts := make([]int32, P+1) // partition start offsets in the flat array
	for p := 0; p < P; p++ {
		total := starts[p]
		for m := 0; m < nm; m++ {
			c := counts[m][p]
			counts[m][p] = total // becomes morsel m's write cursor for p
			total += c
		}
		starts[p+1] = total
	}
	flat := make([]int32, n)
	if err := ex.runMorsels(n, w, func(wid, m, lo, hi int) error {
		cur := counts[m]
		for r := lo; r < hi; r++ {
			p := hashes[r] >> shift
			flat[cur[p]] = int32(r)
			cur[p]++
		}
		return nil
	}); err != nil {
		return nil, err
	}
	pt := &partedJoinTable{keys: keys, modes: modes, parts: make([]joinPart, P), shift: shift}
	if err := ex.runTasks(P, w, func(wid, p int) error {
		pt.parts[p] = buildJoinPart(flat[starts[p]:starts[p+1]], hashes)
		return nil
	}); err != nil {
		return nil, err
	}
	return pt, nil
}

// execSortParallel is the morsel-era ORDER BY: contiguous chunks sort in
// parallel (stable within each chunk), then pairwise merges — ties prefer
// the earlier-input run — fold them into one order identical to the serial
// stable sort.
func (ex *executor) execSortParallel(in *RowSet, keys []opt.SortKey, keyVecs []*Vec, w int) (*RowSet, error) {
	sel := make([]int32, in.N)
	for i := range sel {
		sel[i] = int32(i)
	}
	chunks := make([][]int32, 0, w)
	size := (in.N + w - 1) / w
	for lo := 0; lo < in.N; lo += size {
		hi := lo + size
		if hi > in.N {
			hi = in.N
		}
		chunks = append(chunks, sel[lo:hi])
	}
	var canceled atomic.Bool
	err := ex.runTasks(len(chunks), w, func(wid, ci int) error {
		chunk := chunks[ci]
		var cerr error
		sinceCheck := 0
		// Same comparator-degradation trick as the serial path: after a
		// cancellation the comparator turns constant so the doomed sort
		// finishes cheaply, and every other chunk bails through the flag.
		sort.SliceStable(chunk, func(a, b int) bool {
			if cerr != nil || canceled.Load() {
				return false
			}
			sinceCheck++
			if sinceCheck >= cancelBatchRows {
				sinceCheck = 0
				if e := ex.checkCtx(); e != nil {
					cerr = e
					canceled.Store(true)
					return false
				}
			}
			return lessRows(keyVecs, keys, int(chunk[a]), int(chunk[b]))
		})
		return cerr
	})
	if err != nil {
		return nil, err
	}
	for len(chunks) > 1 {
		merged := make([][]int32, (len(chunks)+1)/2)
		err := ex.runTasks(len(merged), w, func(wid, i int) error {
			a := chunks[2*i]
			if 2*i+1 == len(chunks) {
				merged[i] = a
				return nil
			}
			m, err := ex.mergeRuns(a, chunks[2*i+1], keyVecs, keys)
			merged[i] = m
			return err
		})
		if err != nil {
			return nil, err
		}
		chunks = merged
	}
	return in.Gather(chunks[0]), nil
}

// mergeRuns merges two sorted runs; equal keys take the left (earlier-input)
// run first, preserving stability. The context is polled at batch
// granularity.
func (ex *executor) mergeRuns(a, b []int32, keyVecs []*Vec, keys []opt.SortKey) ([]int32, error) {
	out := make([]int32, 0, len(a)+len(b))
	i, j, sinceCheck := 0, 0, 0
	for i < len(a) && j < len(b) {
		sinceCheck++
		if sinceCheck >= cancelBatchRows {
			sinceCheck = 0
			if err := ex.checkCtx(); err != nil {
				return nil, err
			}
		}
		if lessRows(keyVecs, keys, int(b[j]), int(a[i])) {
			out = append(out, b[j])
			j++
		} else {
			out = append(out, a[i])
			i++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out, nil
}
