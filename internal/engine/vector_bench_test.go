package engine

import (
	"math/rand"
	"testing"
)

// Kernel-level benchmarks pitting the vector kernels against the retained
// row-at-a-time reference interpreter on identical inputs, so the speedup
// stays measurable with benchstat without checking out old revisions:
//
//	go test ./internal/engine -bench 'Expression|PredicateMask' -benchmem

func benchRowSet(n int) *RowSet {
	r := rand.New(rand.NewSource(11))
	ints := make([]int64, n)
	floats := make([]float64, n)
	strs := make([]string, n)
	words := []string{"alpha", "beta", "gamma", "delta"}
	for i := 0; i < n; i++ {
		ints[i] = int64(r.Intn(1000))
		floats[i] = r.Float64() * 1000
		strs[i] = words[r.Intn(len(words))]
	}
	rs, err := NewRowSet(
		Schema{{Name: "a", Type: TypeInt}, {Name: "v", Type: TypeFloat}, {Name: "s", Type: TypeString}},
		[]Column{IntColumn(ints), FloatColumn(floats), StringColumn(strs)},
	)
	if err != nil {
		panic(err)
	}
	return rs
}

const benchPred = "v > 985.0 AND a <> 500 AND s <> 'beta'"

func BenchmarkPredicateMaskInterpreter(b *testing.B) {
	rs := benchRowSet(1 << 17)
	e := parseTestExpr(b, benchPred)
	fn, err := compileExpr(e, rs.Schema, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		count := 0
		for r := 0; r < rs.N; r++ {
			v, err := fn(rs, r)
			if err != nil {
				b.Fatal(err)
			}
			if v.Truthy() {
				count++
			}
		}
		_ = count
	}
}

func BenchmarkPredicateMaskKernel(b *testing.B) {
	rs := benchRowSet(1 << 17)
	e := parseTestExpr(b, benchPred)
	fn, err := compileVec(e, rs.Schema, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, err := fn(rs)
		if err != nil {
			b.Fatal(err)
		}
		sel := appendTrue(nil, v, rs.N, 0)
		_ = sel
	}
}

const benchProj = "(v * 1.07 + 2.0) / (a + 1)"

func BenchmarkExpressionInterpreter(b *testing.B) {
	rs := benchRowSet(1 << 17)
	e := parseTestExpr(b, benchProj)
	fn, err := compileExpr(e, rs.Schema, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sum float64
		for r := 0; r < rs.N; r++ {
			v, err := fn(rs, r)
			if err != nil {
				b.Fatal(err)
			}
			sum += v.F
		}
		_ = sum
	}
}

func BenchmarkExpressionKernel(b *testing.B) {
	rs := benchRowSet(1 << 17)
	e := parseTestExpr(b, benchProj)
	fn, err := compileVec(e, rs.Schema, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, err := fn(rs)
		if err != nil {
			b.Fatal(err)
		}
		var sum float64
		for _, f := range v.Floats {
			sum += f
		}
		_ = sum
	}
}
