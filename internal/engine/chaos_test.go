package engine

// Chaos suite for the durability plane: concurrent committers and a
// background checkpointer run under a randomized fault schedule (failed
// fsyncs, torn writes, failed checkpoint renames, failed snapshot writes),
// then the faults are lifted and the invariants checked. The contract under
// any schedule:
//
//  1. No acknowledged write is ever lost: every INSERT whose Exec returned
//     nil is present after a cold restart.
//  2. The instance ends healthy or cleanly degraded — a degraded instance
//     still serves reads, fails writes fast with ErrReadOnly, and heals
//     through ReopenWAL. Never a corrupt data directory.

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/fault"
)

func TestChaosMatrix(t *testing.T) {
	cases := []struct {
		point string
		spec  fault.Spec
	}{
		// Let some commits land first (After), then fail fsyncs at random:
		// the poisoned-WAL / degraded-mode path.
		{"wal.fsync", fault.Spec{Prob: 0.05, After: 40}},
		// Torn frames: the append persists half the frame then errors; the
		// WAL either rolls the tear back or poisons itself.
		{"wal.write", fault.Spec{Prob: 0.05, After: 40, Partial: true}},
		// The third log rotation fails mid-checkpoint.
		{"checkpoint.rename", fault.Spec{After: 2, Count: 1}},
		// Snapshot writes fail at random; checkpoints error but rotated
		// segments keep the state recoverable.
		{"snapshot.write", fault.Spec{Prob: 0.3}},
	}
	for _, tc := range cases {
		t.Run(tc.point, func(t *testing.T) { runChaos(t, tc.point, tc.spec) })
	}
}

func runChaos(t *testing.T, point string, spec fault.Spec) {
	dir := t.TempDir()
	db, _, err := OpenDirDB(dir, true) // sync per commit: acked means fsynced
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, "CREATE TABLE chaos (id int)")

	fault.Reset()
	fault.Seed(1)
	fault.Enable(point, spec)
	defer fault.Reset()

	const writers, perWriter = 4, 50
	var mu sync.Mutex
	acked := map[int64]bool{}

	stop := make(chan struct{})
	var ckptWG sync.WaitGroup
	ckptWG.Add(1)
	go func() {
		defer ckptWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = db.Checkpoint() // failures are expected under the schedule
			time.Sleep(2 * time.Millisecond)
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				id := int64(w*perWriter + i)
				if _, err := db.Exec(fmt.Sprintf("INSERT INTO chaos VALUES (%d)", id)); err == nil {
					mu.Lock()
					acked[id] = true
					mu.Unlock()
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	ckptWG.Wait()
	fault.Reset()

	// End state: healthy, or degraded with the full contract.
	if down, reason := db.Degraded(); down {
		if reason == "" {
			t.Error("degraded with empty reason")
		}
		if _, err := db.Exec("SELECT count(*) FROM chaos"); err != nil {
			t.Fatalf("degraded instance refused a read: %v", err)
		}
		if _, err := db.Exec("INSERT INTO chaos VALUES (-1)"); !errors.Is(err, ErrReadOnly) {
			t.Fatalf("degraded write error = %v, want ErrReadOnly", err)
		}
		if err := db.ReopenWAL(); err != nil {
			t.Fatalf("ReopenWAL: %v", err)
		}
		if down, _ := db.Degraded(); down {
			t.Fatal("still degraded after successful ReopenWAL")
		}
	}

	// Healed (or never degraded): writes flow again.
	mustExec(t, db, "INSERT INTO chaos VALUES (999999)")
	if err := db.CloseDurability(); err != nil {
		t.Fatalf("CloseDurability: %v", err)
	}

	// Cold restart: every acknowledged write must be present.
	db2, _, err := OpenDirDB(dir, true)
	if err != nil {
		t.Fatalf("recovery after chaos: %v", err)
	}
	res, err := db2.Exec("SELECT id FROM chaos")
	if err != nil {
		t.Fatal(err)
	}
	present := map[int64]bool{}
	for _, row := range res.Rows {
		present[row[0].(int64)] = true
	}
	lost := 0
	for id := range acked {
		if !present[id] {
			lost++
			if lost <= 5 {
				t.Errorf("acked id %d lost after recovery", id)
			}
		}
	}
	if lost > 0 {
		t.Fatalf("%d of %d acked writes lost (point %s)", lost, len(acked), point)
	}
	if !present[999999] {
		t.Fatal("post-chaos sentinel write lost")
	}
	t.Logf("%s: %d/%d inserts acked, %d faults fired", point, len(acked), writers*perWriter, fault.Triggered(point))
}

// TestPoisonedWALDegradesAndReopens pins the degraded-mode contract
// deterministically: the first fsync failure poisons the WAL, the database
// flips to read-only, reads keep serving, and ReopenWAL (after the disk
// "recovers") folds memory into a fresh snapshot and restores writes —
// without losing the pre-fault data.
func TestPoisonedWALDegradesAndReopens(t *testing.T) {
	dir := t.TempDir()
	db, _, err := OpenDirDB(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, "CREATE TABLE t (id int)")
	mustExec(t, db, "INSERT INTO t VALUES (1)")

	fault.Reset()
	fault.Enable("wal.fsync", fault.Spec{})
	if _, err := db.Exec("INSERT INTO t VALUES (2)"); err == nil {
		t.Fatal("insert under failing fsync should error")
	} else if !errors.Is(err, ErrWALPoisoned) {
		t.Fatalf("insert error = %v, want ErrWALPoisoned", err)
	}
	fault.Reset()

	down, reason := db.Degraded()
	if !down {
		t.Fatal("fsync failure did not degrade the database")
	}
	if reason == "" || db.DegradedSince().IsZero() {
		t.Fatalf("degraded metadata missing: reason=%q since=%v", reason, db.DegradedSince())
	}
	// Reads keep serving; writes fail fast with the typed sentinel.
	if got := countOf(t, db, "SELECT count(*) FROM t"); got < 1 {
		t.Fatalf("degraded read lost rows: %d", got)
	}
	if _, err := db.Exec("INSERT INTO t VALUES (3)"); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("degraded insert = %v, want ErrReadOnly", err)
	}
	if _, err := db.Exec("CREATE TABLE t2 (id int)"); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("degraded DDL = %v, want ErrReadOnly", err)
	}

	if err := db.ReopenWAL(); err != nil {
		t.Fatalf("ReopenWAL: %v", err)
	}
	if down, _ := db.Degraded(); down {
		t.Fatal("still degraded after ReopenWAL")
	}
	mustExec(t, db, "INSERT INTO t VALUES (4)")
	want := countOf(t, db, "SELECT count(*) FROM t")
	if err := db.CloseDurability(); err != nil {
		t.Fatal(err)
	}

	db2, _, err := OpenDirDB(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	if got := countOf(t, db2, "SELECT count(*) FROM t"); got != want {
		t.Fatalf("recovered %d rows, want %d", got, want)
	}
}

// TestReopenWALWhileHealthy is the no-op-ish path: reopening a healthy
// instance is allowed (operators may run it preventively) and loses
// nothing.
func TestReopenWALWhileHealthy(t *testing.T) {
	dir := t.TempDir()
	db, _, err := OpenDirDB(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, "CREATE TABLE t (id int)")
	mustExec(t, db, "INSERT INTO t VALUES (1)")
	if err := db.ReopenWAL(); err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, "INSERT INTO t VALUES (2)")
	if err := db.CloseDurability(); err != nil {
		t.Fatal(err)
	}
	db2, _, err := OpenDirDB(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	if got := countOf(t, db2, "SELECT count(*) FROM t"); got != 2 {
		t.Fatalf("rows = %d, want 2", got)
	}
}
