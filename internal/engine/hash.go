package engine

// Typed multi-column hash tables for the aggregate/distinct/join hot paths.
// These replace the old fmt.Fprintf/strings.Builder string-key encoding: key
// columns are hashed over their raw representation (int64 bits, normalized
// float64 bits, string bytes) and equality is checked column-wise, so the
// steady state allocates nothing per row.
//
// Float keys are normalized before hashing: -0.0 hashes and compares equal
// to +0.0, and every NaN collapses to one canonical pattern (the old "%g"
// encoding split -0.0 from 0.0 and could collide distinct high-precision
// values through formatting).

import "math"

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
	nullKeyHash = 0x9E3779B97F4A7C15 // distinguishes NULL from any value
	canonNaN    = 0x7FF8000000000001 // one bit pattern for every NaN
)

// mix64 is the splitmix64 finalizer; it spreads low-entropy values (small
// ints, float bit patterns) across the table.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// normFloatBits canonicalizes a float for hashing: +0/-0 collapse to one
// pattern and all NaNs to another, so hash equality follows value equality.
func normFloatBits(f float64) uint64 {
	if f == 0 {
		return 0
	}
	if f != f {
		return canonNaN
	}
	return math.Float64bits(f)
}

// keyMode selects the representation a key column is hashed and compared
// under. A join between an int and a float column compares numerically
// (modeFloat on both sides), matching the scalar Compare semantics.
type keyMode uint8

const (
	modeInt keyMode = iota
	modeFloat
	modeStr
	modeBool
	// modeNone marks an incomparable pair (e.g. text vs int): no row can
	// match, mirroring the interpreter where Compare errors mean no match.
	modeNone
)

// vecKeyModes derives per-column modes for single-sided keys (group by,
// distinct).
func vecKeyModes(keys []*Vec) []keyMode {
	modes := make([]keyMode, len(keys))
	for i, v := range keys {
		switch v.Type {
		case TypeInt:
			modes[i] = modeInt
		case TypeFloat:
			modes[i] = modeFloat
		case TypeString:
			modes[i] = modeStr
		case TypeBool:
			modes[i] = modeBool
		}
	}
	return modes
}

// pairKeyModes derives modes for join key pairs; ok is false when some pair
// can never compare equal.
func pairKeyModes(left, right []*Vec) (modes []keyMode, ok bool) {
	modes = make([]keyMode, len(left))
	ok = true
	for i := range left {
		lt, rt := left[i].Type, right[i].Type
		switch {
		case lt == TypeInt && rt == TypeInt:
			modes[i] = modeInt
		case isNumeric(lt) && isNumeric(rt):
			modes[i] = modeFloat
		case lt == TypeString && rt == TypeString:
			modes[i] = modeStr
		case lt == TypeBool && rt == TypeBool:
			modes[i] = modeBool
		default:
			modes[i] = modeNone
			ok = false
		}
	}
	return modes, ok
}

// hashKeyRow combines the key columns of logical row r into one hash.
func hashKeyRow(keys []*Vec, modes []keyMode, r int) uint64 {
	h := uint64(fnvOffset64)
	for k, v := range keys {
		var hv uint64
		i := v.idx(r)
		switch {
		case v.Nulls != nil && v.Nulls[i]:
			hv = nullKeyHash
		case modes[k] == modeInt:
			hv = mix64(uint64(v.Ints[i]))
		case modes[k] == modeFloat:
			var f float64
			if v.Type == TypeInt {
				f = float64(v.Ints[i])
			} else {
				f = v.Floats[i]
			}
			hv = mix64(normFloatBits(f))
		case modes[k] == modeStr:
			hv = fnvOffset64
			s := v.Strs[i]
			for j := 0; j < len(s); j++ {
				hv ^= uint64(s[j])
				hv *= fnvPrime64
			}
		case modes[k] == modeBool:
			hv = 1
			if v.Bools[i] {
				hv = 2
			}
		}
		h = (h ^ hv) * fnvPrime64
	}
	return mix64(h)
}

// keyRowsEqual compares row ar of keys a against row br of keys b under the
// shared modes. NULL equals only NULL (how the old encoding behaved); NaN
// equals NaN and -0.0 equals +0.0.
func keyRowsEqual(a []*Vec, ar int, b []*Vec, br int, modes []keyMode) bool {
	for k := range a {
		av, bv := a[k], b[k]
		ai, bi := av.idx(ar), bv.idx(br)
		an := av.Nulls != nil && av.Nulls[ai]
		bn := bv.Nulls != nil && bv.Nulls[bi]
		if an || bn {
			if an && bn {
				continue
			}
			return false
		}
		switch modes[k] {
		case modeInt:
			if av.Ints[ai] != bv.Ints[bi] {
				return false
			}
		case modeFloat:
			var x, y float64
			if av.Type == TypeInt {
				x = float64(av.Ints[ai])
			} else {
				x = av.Floats[ai]
			}
			if bv.Type == TypeInt {
				y = float64(bv.Ints[bi])
			} else {
				y = bv.Floats[bi]
			}
			if x != y && !(x != x && y != y) { // NaN groups with NaN
				return false
			}
		case modeStr:
			if av.Strs[ai] != bv.Strs[bi] {
				return false
			}
		case modeBool:
			if av.Bools[ai] != bv.Bools[bi] {
				return false
			}
		case modeNone:
			return false
		}
	}
	return true
}

// tableCap returns the open-addressing capacity for n keys (power of two,
// ≥ 2n so the load factor stays under 0.5).
func tableCap(n int) int {
	c := 16
	for c < 2*n {
		c <<= 1
	}
	return c
}

// groupTable assigns a dense group id to every row of a key-column batch.
type groupTable struct {
	// rowGroup maps each input row to its group id.
	rowGroup []int32
	// groupRows holds the first input row of each group, in first-occurrence
	// order (which is the output order of GROUP BY and DISTINCT).
	groupRows []int32
}

// buildGroupTable hashes the key columns of n rows into dense group ids
// with an open-addressing, linear-probe table. keys must be materialized
// (non-const) vectors of length n.
func buildGroupTable(keys []*Vec, n int) *groupTable {
	gt := &groupTable{rowGroup: make([]int32, n)}
	if len(keys) == 0 {
		// No keys: every row is the single global group.
		if n > 0 {
			gt.groupRows = []int32{0}
		}
		return gt
	}
	modes := vecKeyModes(keys)
	capacity := tableCap(n)
	mask := uint64(capacity - 1)
	slots := make([]int32, capacity)
	for i := range slots {
		slots[i] = -1
	}
	for r := 0; r < n; r++ {
		h := hashKeyRow(keys, modes, r)
		p := h & mask
		for {
			g := slots[p]
			if g < 0 {
				g = int32(len(gt.groupRows))
				gt.groupRows = append(gt.groupRows, int32(r))
				slots[p] = g
				gt.rowGroup[r] = g
				break
			}
			if keyRowsEqual(keys, r, keys, int(gt.groupRows[g]), modes) {
				gt.rowGroup[r] = g
				break
			}
			p = (p + 1) & mask
		}
	}
	return gt
}

// joinTable is the build side of a hash join: rows are chained per bucket
// in ascending row order so probe output preserves the original
// build-insertion order.
type joinTable struct {
	keys  []*Vec
	modes []keyMode
	slots []int32 // bucket heads (build row index, -1 empty)
	next  []int32 // chain: next build row in the same bucket, -1 end
	mask  uint64
}

// buildJoinTable indexes the right-side key columns (length n).
func buildJoinTable(keys []*Vec, n int, modes []keyMode) *joinTable {
	capacity := tableCap(n)
	jt := &joinTable{
		keys:  keys,
		modes: modes,
		slots: make([]int32, capacity),
		next:  make([]int32, n),
		mask:  uint64(capacity - 1),
	}
	for i := range jt.slots {
		jt.slots[i] = -1
	}
	// Insert in reverse so each chain reads in ascending row order.
	for r := n - 1; r >= 0; r-- {
		p := hashKeyRow(keys, modes, r) & jt.mask
		jt.next[r] = jt.slots[p]
		jt.slots[p] = int32(r)
	}
	return jt
}

// probe appends the build rows matching probe row l (of probeKeys) to dst,
// in build order.
func (jt *joinTable) probe(probeKeys []*Vec, l int, dst []int32) []int32 {
	p := hashKeyRow(probeKeys, jt.modes, l) & jt.mask
	for e := jt.slots[p]; e >= 0; e = jt.next[e] {
		if keyRowsEqual(probeKeys, l, jt.keys, int(e), jt.modes) {
			dst = append(dst, e)
		}
	}
	return dst
}

// joinIndex is the probe side's view of a hash-join build: the serial
// single-table build and the parallel radix-partitioned build both satisfy
// it, so the probe loop is build-agnostic.
type joinIndex interface {
	probe(probeKeys []*Vec, l int, dst []int32) []int32
}

// partedJoinTable is the parallel hash-join build: build rows are radix-
// partitioned by the high bits of their key hash, and each partition holds
// an independent open-addressing table built by one worker. Probes hash
// once, select the partition, and chain through it; chains read in
// ascending build-row order, so probe output matches the serial table
// exactly.
type partedJoinTable struct {
	keys  []*Vec
	modes []keyMode
	parts []joinPart
	shift uint // partition id = hash >> shift
}

// joinPart is one partition's table: rows lists the partition's build rows
// ascending, slots/next chain local indices into rows.
type joinPart struct {
	rows  []int32
	next  []int32
	slots []int32
	mask  uint64
}

// buildJoinPart indexes one partition's rows; hashes is the full build-side
// hash array (indexed by global row). Inserting in reverse leaves every
// bucket chain in ascending build-row order.
func buildJoinPart(rows []int32, hashes []uint64) joinPart {
	capacity := tableCap(len(rows))
	jp := joinPart{
		rows:  rows,
		next:  make([]int32, len(rows)),
		slots: make([]int32, capacity),
		mask:  uint64(capacity - 1),
	}
	for i := range jp.slots {
		jp.slots[i] = -1
	}
	for i := len(rows) - 1; i >= 0; i-- {
		p := hashes[rows[i]] & jp.mask
		jp.next[i] = jp.slots[p]
		jp.slots[p] = int32(i)
	}
	return jp
}

func (pt *partedJoinTable) probe(probeKeys []*Vec, l int, dst []int32) []int32 {
	h := hashKeyRow(probeKeys, pt.modes, l)
	jp := &pt.parts[h>>pt.shift]
	for e := jp.slots[h&jp.mask]; e >= 0; e = jp.next[e] {
		r := jp.rows[e]
		if keyRowsEqual(probeKeys, l, pt.keys, int(r), pt.modes) {
			dst = append(dst, r)
		}
	}
	return dst
}

// distinctKey is the per-group key for DISTINCT aggregates: the group id
// plus one typed value (floats store normalized bits in i so NaN keys
// behave; strings use s). No string encoding, no allocation.
type distinctKey struct {
	g    int32
	null bool
	i    int64
	s    string
}

// distinctKeyAt builds the map key for logical row r of v within group g.
func distinctKeyAt(v *Vec, r int, g int32) distinctKey {
	i := v.idx(r)
	if v.Nulls != nil && v.Nulls[i] {
		return distinctKey{g: g, null: true}
	}
	switch v.Type {
	case TypeInt:
		return distinctKey{g: g, i: v.Ints[i]}
	case TypeFloat:
		return distinctKey{g: g, i: int64(normFloatBits(v.Floats[i]))}
	case TypeString:
		return distinctKey{g: g, s: v.Strs[i]}
	case TypeBool:
		if v.Bools[i] {
			return distinctKey{g: g, i: 1}
		}
		return distinctKey{g: g}
	}
	return distinctKey{g: g, null: true}
}
