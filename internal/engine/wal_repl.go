package engine

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/fault"
)

// Replication hooks over the write-ahead log. The WAL is already a
// physical replication log — CRC-framed, LSN-sequenced, torn-tail
// tolerant — so leader/follower replication is log shipping: a leader
// reads committed frames back out of its own segments and live log
// (ReadWALSince), a follower appends each shipped frame to its own WAL at
// the leader's LSN and installs it through the replay primitives
// (ApplyReplicated), and both sides agree on exactly one sequence of
// frames. Nothing past the durable watermark is ever shipped: a frame the
// leader could still lose in a crash must not exist on a follower, or
// resume-from-LSN would diverge.

// ErrWALTruncated reports that a requested LSN predates the oldest frame
// still on disk: a checkpoint folded it into the snapshot. The caller
// (the log-shipping service) turns this into "bootstrap from a snapshot".
var ErrWALTruncated = errors.New("engine: wal truncated: requested LSN predates the oldest retained frame")

// ErrNotReplica guards the replica-only entry points.
var ErrNotReplica = errors.New("engine: not a replica (SetReplicaMode was never called)")

// replicaState records the leader this database replicates from.
type replicaState struct{ leader string }

// SetReplicaMode marks the database a read-only replica of leader: every
// local write fails fast with ErrReadOnly, and the only mutations accepted
// are shipped WAL frames through ApplyReplicated / BootstrapReplica.
// Local statements are still recorded in the in-memory query log (local
// provenance) but never WAL-logged — the replica's WAL holds exactly the
// leader's frame sequence, nothing else, so its LSNs stay aligned with the
// leader's.
func (db *DB) SetReplicaMode(leader string) {
	db.replica.Store(&replicaState{leader: leader})
}

// IsReplica reports whether this database is a read-only replica.
func (db *DB) IsReplica() bool { return db.replica.Load() != nil }

// ReplicaSource reports the leader address ("" when not a replica).
func (db *DB) ReplicaSource() string {
	if s := db.replica.Load(); s != nil {
		return s.leader
	}
	return ""
}

// SetCommitGate installs a hook invoked after a committed statement's frame
// is locally durable and before the commit is acknowledged to the client —
// the quorum-ack seam. The gate is called outside the commit barrier with
// the statement's LSN; returning an error fails the ack (the write is
// locally durable and installed: an ambiguous commit, exactly like a
// response lost on the wire). Pass nil to remove the gate.
func (db *DB) SetCommitGate(gate func(lsn int64) error) {
	if gate == nil {
		db.commitGate.Store(nil)
		return
	}
	db.commitGate.Store(&gate)
}

// waitCommitGate runs the installed commit gate, if any.
func (db *DB) waitCommitGate(lsn int64) error {
	g := db.commitGate.Load()
	if g == nil || lsn == 0 {
		return nil
	}
	replGateWaits.Add(1)
	return (*g)(lsn)
}

// DurableLSN reports the highest LSN known durable: the group-commit
// watermark under the fsync policy, the append position when flushing is
// left to the OS (where "durable" means "handed to the kernel" and a
// crash loses the tail on both leader and follower alike).
func (db *DB) DurableLSN() int64 {
	db.commitMu.RLock()
	defer db.commitMu.RUnlock()
	if db.wal == nil {
		return db.replayLSN
	}
	w := db.wal
	w.mu.Lock()
	defer w.mu.Unlock()
	if !w.sync {
		return w.lsn
	}
	return w.syncedLSN
}

// WatchDurable returns the current durable watermark and a channel closed
// the next time it advances (or the WAL fails/closes, so waiters re-check
// instead of hanging) — the log shipper's tailing primitive.
func (db *DB) WatchDurable() (int64, <-chan struct{}) {
	closed := make(chan struct{})
	close(closed)
	db.commitMu.RLock()
	defer db.commitMu.RUnlock()
	if db.wal == nil {
		return db.replayLSN, closed
	}
	w := db.wal
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil || w.broken {
		lsn := w.syncedLSN
		if !w.sync {
			lsn = w.lsn
		}
		return lsn, closed
	}
	if w.watch == nil {
		w.watch = make(chan struct{})
	}
	if !w.sync {
		return w.lsn, w.watch
	}
	return w.syncedLSN, w.watch
}

// SyncWALTo forces an fsync covering every frame up to lsn WITHOUT running
// the commit gate — the shipper's flush for the non-durable tail (query-log
// frames never force an fsync of their own), and the follower's batch
// durability wait. Running the gate here would deadlock the quorum path:
// the shipper would wait for acks it is itself responsible for producing.
func (db *DB) SyncWALTo(lsn int64) error {
	if lsn == 0 {
		return nil
	}
	db.commitMu.RLock()
	defer db.commitMu.RUnlock()
	w := db.wal
	if w == nil {
		w = db.retiredWAL
	}
	if w == nil {
		return nil
	}
	err := w.waitDurable(lsn)
	db.noteWALErr(err)
	return err
}

// WALHorizon reports the lowest LSN still readable from disk + 1's
// predecessor: frames with LSN <= horizon were folded into the snapshot and
// are gone. A follower behind the horizon must bootstrap from the snapshot.
func (db *DB) WALHorizon() int64 {
	db.ckptMu.Lock()
	defer db.ckptMu.Unlock()
	return db.walHorizon
}

// errStopRead is the internal sentinel that ends a bounded ReadWALSince
// scan early (watermark or byte budget reached).
var errStopRead = errors.New("engine: stop wal read")

// ReadWALSince streams committed, durable WAL frames with LSNs in
// (fromLSN, DurableLSN()] to fn in order, stopping after ~maxBytes of
// payload (at least one frame is always delivered when available). It
// returns the last LSN delivered and the durable watermark observed.
//
// fn receives the raw frame payload (the gob-encoded record, exactly the
// bytes on disk) and must not block: the scan holds the checkpoint lock so
// rotation cannot retire a segment mid-read — buffer, then transmit.
//
// A fromLSN older than the horizon returns ErrWALTruncated (the frames were
// folded into the snapshot; ship the snapshot instead). A gap or a tear
// anywhere below the durable watermark is corruption and errors loudly.
func (db *DB) ReadWALSince(fromLSN int64, maxBytes int, fn func(lsn int64, payload []byte) error) (last int64, durable int64, err error) {
	db.ckptMu.Lock()
	defer db.ckptMu.Unlock()
	if db.durDir == "" {
		return 0, 0, fmt.Errorf("engine: ReadWALSince requires a database opened with OpenDirDB")
	}
	durable = db.DurableLSN()
	if fromLSN < db.walHorizon {
		return 0, durable, fmt.Errorf("%w (from %d, horizon %d)", ErrWALTruncated, fromLSN, db.walHorizon)
	}
	if fromLSN >= durable {
		return fromLSN, durable, nil
	}
	files, err := walFilesInOrder(db.durDir)
	if err != nil {
		return 0, durable, err
	}
	last = fromLSN
	expect := fromLSN + 1
	sentBytes := 0
	for _, path := range files {
		if lsn, ok := segLSN(filepath.Base(path)); ok && lsn <= fromLSN {
			continue // the whole segment predates the request
		}
		stop, rerr := readWALFileRange(path, func(recLSN int64, payload []byte) error {
			if recLSN <= fromLSN {
				return nil
			}
			if recLSN > durable {
				return errStopRead
			}
			if recLSN != expect {
				return fmt.Errorf("engine: wal gap in %s: frame %d after %d", path, recLSN, expect-1)
			}
			if sentBytes > 0 && sentBytes+len(payload) > maxBytes {
				return errStopRead
			}
			if err := fn(recLSN, payload); err != nil {
				return err
			}
			last = recLSN
			expect++
			sentBytes += len(payload)
			return nil
		})
		if rerr != nil {
			return last, durable, rerr
		}
		if stop {
			return last, durable, nil
		}
	}
	if last < durable {
		// Every file was scanned yet durable frames are missing: the
		// directory lost data (a torn or deleted segment mid-sequence).
		return last, durable, fmt.Errorf("engine: wal ends at %d but the durable watermark is %d (missing frames)", last, durable)
	}
	return last, durable, nil
}

// readWALFileRange streams one WAL file's frames (decoding each record just
// far enough to learn its LSN) to fn. A torn tail ends the scan silently —
// frames past the durable watermark may legitimately be mid-append — and
// an errStopRead from fn reports stop=true.
func readWALFileRange(path string, fn func(lsn int64, payload []byte) error) (stop bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return false, err
	}
	defer func() { _ = f.Close() }()
	hdr := make([]byte, len(walHeader))
	if _, err := io.ReadFull(f, hdr); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return false, nil
		}
		return false, err
	}
	if string(hdr) != walHeader {
		return false, fmt.Errorf("engine: %s is not a WAL file", path)
	}
	_, err = ReadFrames(f, func(payload []byte) error {
		var rec WALRecord
		if derr := gob.NewDecoder(bytes.NewReader(payload)).Decode(&rec); derr != nil {
			return fmt.Errorf("engine: wal decode in %s: %w", path, derr)
		}
		return fn(rec.LSN, payload)
	})
	if errors.Is(err, errStopRead) {
		return true, nil
	}
	return false, err
}

// SnapshotForShip returns the on-disk snapshot (the follower bootstrap
// image) and the LSN it covers. Taken under the checkpoint lock so a
// concurrent checkpoint cannot swap the file mid-read; the bytes are
// buffered before return, so callers stream to slow followers without
// holding the lock.
func (db *DB) SnapshotForShip() ([]byte, int64, error) {
	db.ckptMu.Lock()
	defer db.ckptMu.Unlock()
	if db.durDir == "" {
		return nil, 0, fmt.Errorf("engine: SnapshotForShip requires a database opened with OpenDirDB")
	}
	blob, err := os.ReadFile(filepath.Join(db.durDir, snapshotFile))
	if errors.Is(err, os.ErrNotExist) {
		// No checkpoint yet: the horizon is 0 and the whole history is
		// still in the log — the follower replicates from LSN 0 instead.
		return nil, 0, fmt.Errorf("engine: no snapshot on disk yet (replicate from LSN 0)")
	}
	if err != nil {
		return nil, 0, err
	}
	return blob, db.walHorizon, nil
}

// AppliedLSN reports the highest LSN applied on a replica (== its WAL
// position: every shipped frame is appended at the leader's LSN before its
// effect installs).
func (db *DB) AppliedLSN() int64 { return db.LastLSN() }

// ApplyReplicated applies one shipped WAL frame on a replica: append the
// raw payload to the local WAL at the leader's LSN, then install its effect
// through the replay primitives (versions, time-travel history, the query
// log — identical to the original commit). It does NOT wait for
// durability; the follower applies a batch and then calls SyncWALTo once,
// riding one fsync per shipped batch exactly like the leader's group
// commit. Re-shipping an already-applied frame is a no-op (resume
// overlap); a frame that skips ahead is a gap and errors.
func (db *DB) ApplyReplicated(payload []byte) (lsn int64, err error) {
	if !db.IsReplica() {
		return 0, ErrNotReplica
	}
	var rec WALRecord
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&rec); err != nil {
		return 0, fmt.Errorf("engine: replicated frame decode: %w", err)
	}
	// The epoch gate runs before any LSN comparison: an epoch-transition
	// record from a superseded generation must never enter the local log,
	// not even as an "idempotent duplicate" — its LSN may collide with a
	// frame of the live lineage while carrying different history.
	if rec.Kind == WALEpoch && rec.Epoch < db.epoch.Load() {
		return 0, fmt.Errorf("%w: shipped epoch record %d below local epoch %d (lsn %d)", ErrStaleEpoch, rec.Epoch, db.epoch.Load(), rec.LSN)
	}
	db.applyMu.Lock()
	defer db.applyMu.Unlock()
	db.commitMu.RLock()
	defer db.commitMu.RUnlock()
	if db.wal == nil {
		return 0, fmt.Errorf("engine: replica has no attached WAL (open with OpenDirDB)")
	}
	cur := db.wal.currentLSN()
	if rec.LSN <= cur {
		return cur, nil // duplicate from a resume overlap: idempotent skip
	}
	if rec.LSN != cur+1 {
		return 0, fmt.Errorf("engine: replication gap: frame %d after %d (resume from %d)", rec.LSN, cur, cur)
	}
	if err := db.wal.appendRaw(payload, rec.LSN); err != nil {
		db.noteWALErr(err)
		return 0, err
	}
	if err := db.applyWALRecord(&rec); err != nil {
		// The frame is logged but its effect did not install: memory is now
		// behind the local WAL (a restart's replay would heal it, but until
		// then reads would serve a state no LSN describes). Degrade loudly.
		db.degraded.CompareAndSwap(nil, &degradedState{
			reason: fmt.Sprintf("replica apply failed at LSN %d: %v", rec.LSN, err),
			since:  time.Now(),
		})
		return 0, fmt.Errorf("engine: replica apply at LSN %d: %w", rec.LSN, err)
	}
	return rec.LSN, nil
}

// BootstrapReplica resets a replica from a leader snapshot stream (the
// recovery path when the leader's checkpoint horizon has passed the
// replica's position): validate and decode the snapshot, persist it as the
// local snapshot file, discard the local WAL and segments — their frames
// are all covered — and start a fresh WAL at the snapshot's LSN. In-flight
// local reads keep serving the pre-bootstrap table versions they hold;
// new lookups see the rebased state.
func (db *DB) BootstrapReplica(snapshot []byte) error {
	if !db.IsReplica() {
		return ErrNotReplica
	}
	db.applyMu.Lock()
	defer db.applyMu.Unlock()
	db.ckptMu.Lock()
	defer db.ckptMu.Unlock()
	db.commitMu.Lock()
	defer db.commitMu.Unlock()
	if db.durDir == "" {
		return fmt.Errorf("engine: BootstrapReplica requires a database opened with OpenDirDB")
	}

	// All-or-nothing: decode into a scratch database first, so a corrupt or
	// truncated snapshot stream changes nothing.
	scratch := NewDB()
	if err := scratch.LoadSnapshot(bytes.NewReader(snapshot)); err != nil {
		return fmt.Errorf("engine: bootstrap: %w", err)
	}

	// Persist the image durably before adopting it: a crash mid-bootstrap
	// must recover either the old state or the new, never a mix.
	if err := writeRawFileDurable(filepath.Join(db.durDir, snapshotFile), snapshot); err != nil {
		return fmt.Errorf("engine: bootstrap: %w", err)
	}
	if db.wal != nil {
		db.wal.discard()
	}
	if entries, err := os.ReadDir(db.durDir); err == nil {
		for _, e := range entries {
			name := e.Name()
			if name == walFile || (strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, walSegSuffix)) {
				_ = os.Remove(filepath.Join(db.durDir, name))
			}
		}
	}

	db.mu.Lock()
	db.tables = scratch.tables
	db.log = scratch.log
	db.logSeq = scratch.logSeq
	db.mu.Unlock()
	db.replayLSN = scratch.replayLSN
	db.walHorizon = scratch.replayLSN
	// Adopt the snapshot's leadership generation: a bootstrap from a
	// post-promotion leader is exactly how a deposed node (its divergent
	// tail now discarded) rejoins the new lineage, so any fence clears.
	if e := scratch.epoch.Load(); e > 0 {
		db.epoch.Store(e)
		db.epochStart.Store(scratch.epochStart.Load())
	}
	db.fenced.Store(nil)

	w, err := createWAL(filepath.Join(db.durDir, walFile), db.walSync, scratch.replayLSN)
	if err != nil {
		db.noteWALErr(fmt.Errorf("%w: bootstrap could not create a fresh log: %w", ErrWALPoisoned, err))
		return fmt.Errorf("engine: bootstrap: %w", err)
	}
	db.wal = w
	db.retiredWAL = nil
	db.degraded.Store(nil)
	return nil
}

// writeRawFileDurable writes pre-encoded bytes crash-safely: temp file,
// fsync, atomic rename, directory fsync (the raw-bytes sibling of
// writeSnapshotFile, used when the content arrives already encoded).
// All I/O rides the "bootstrap.*" failpoints so replica-bootstrap chaos
// schedules can tear any stage of the install.
func writeRawFileDurable(path string, blob []byte) error {
	dir := filepath.Dir(path)
	raw, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmp := fault.NewFile(raw, "bootstrap")
	tmpName := raw.Name()
	fail := func(err error) error {
		_ = tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if _, err := tmp.Write(blob); err != nil {
		return fail(err)
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := fault.Rename("bootstrap.rename", tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	_ = fault.SyncDir("bootstrap.dirsync", dir)
	return nil
}

// currentLSN reads the append position under w.mu.
func (w *WAL) currentLSN() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.lsn
}

// appendRaw frames an already-encoded payload at exactly lsn — the replica
// apply path, which preserves the leader's LSNs instead of assigning local
// ones. Same rewind-on-failure discipline as appendFrame.
func (w *WAL) appendRaw(payload []byte, lsn int64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.broken {
		return w.poisonedErrLocked()
	}
	if lsn != w.lsn+1 {
		return fmt.Errorf("engine: wal appendRaw: LSN %d does not follow %d", lsn, w.lsn)
	}
	if len(payload) > maxFrameLen {
		return fmt.Errorf("engine: wal appendRaw: frame of %d bytes exceeds the %d-byte limit", len(payload), maxFrameLen)
	}
	if err := AppendFrame(w.f, payload); err != nil {
		if terr := w.f.Truncate(w.size); terr != nil {
			w.poisonLocked(fmt.Errorf("engine: wal rewind after failed append: %w", terr))
		} else if _, serr := w.f.Seek(w.size, io.SeekStart); serr != nil {
			w.poisonLocked(fmt.Errorf("engine: wal rewind after failed append: %w", serr))
		}
		return fmt.Errorf("engine: wal appendRaw: %w", err)
	}
	w.lsn = lsn
	w.size += int64(frameHeaderLen + len(payload))
	w.durableAppended++
	if !w.sync {
		w.notifyLocked()
	}
	return nil
}

// replGateCounter counts gate invocations for tests/metrics.
var replGateWaits atomic.Int64

// CommitGateWaits reports how many commits have waited on the commit gate
// (quorum acks) since process start.
func CommitGateWaits() int64 { return replGateWaits.Load() }
