package engine

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"
)

// Leadership epochs and fencing. Replication failover needs every node to
// know which leadership generation a WAL record belongs to: the epoch is a
// monotonically increasing counter bumped by each promotion, persisted in
// snapshot metadata and as an in-band WALEpoch record, and stamped on
// every shipped batch and ack by the repl layer. Two rules keep exactly
// one writable lineage alive:
//
//  1. A node that observes a higher epoch than its own is deposed: Fence
//     flips it into a terminal read-only state that ReopenWAL refuses to
//     clear — only adopting the new lineage (DemoteToReplica or a
//     bootstrap from the new leader's snapshot) does.
//  2. Frames from a stale epoch are never applied: ErrStaleEpoch is the
//     typed rejection, checked before any LSN comparison.

// ErrStaleEpoch reports a replication message or record from a superseded
// leadership generation.
var ErrStaleEpoch = errors.New("engine: stale replication epoch")

// ErrFenced wraps ErrReadOnly: a fenced node is read-only like a degraded
// one, but the condition is terminal until the node rejoins the new
// leader's lineage. errors.Is(err, ErrReadOnly) holds for fenced errors.
var ErrFenced = fmt.Errorf("%w: fenced", ErrReadOnly)

// fencedState records the higher epoch this deposed leader observed.
type fencedState struct {
	observed int64
	source   string
	since    time.Time
}

// Epoch reports the leadership generation this node's log belongs to
// (0 only before OpenDirDB ran on the database).
func (db *DB) Epoch() int64 { return db.epoch.Load() }

// EpochStart reports the last LSN of the previous epoch: frames at or
// below it are shared history across the promotion that started the
// current epoch, frames above it belong to the current generation.
func (db *DB) EpochStart() int64 { return db.epochStart.Load() }

// Fence deposes this node: it observed observedEpoch (strictly above its
// own epoch) from source, so a newer leader exists and this node must
// never acknowledge another write. Idempotent; the first observation wins.
// A no-op when observedEpoch does not actually exceed the local epoch.
func (db *DB) Fence(observedEpoch int64, source string) {
	if observedEpoch <= db.epoch.Load() {
		return
	}
	db.fenced.CompareAndSwap(nil, &fencedState{
		observed: observedEpoch,
		source:   source,
		since:    time.Now(),
	})
}

// Fenced reports whether this node is fenced, and if so the higher epoch
// it observed and where.
func (db *DB) Fenced() (bool, int64, string) {
	f := db.fenced.Load()
	if f == nil {
		return false, 0, ""
	}
	return true, f.observed, f.source
}

// PromoteToLeader turns a replica into the leader of a new epoch: under an
// exclusive commit barrier it folds the replayed state — which contains
// every frame the old leader shipped, a superset of every quorum-acked
// write — into a fresh durable snapshot stamped epoch+1, discards the old
// log (reusing the ReopenWAL machinery), attaches a fresh WAL continuing
// the LSN sequence, appends a durable WALEpoch record so the transition
// ships in-band to other followers, and opens the write gate by leaving
// replica mode. Returns the new epoch.
//
// On failure the node stays a read-only replica: at most one writable node
// exists under any schedule, including a crash mid-promotion (recovery
// lands on either the old follower state or the fully promoted one).
func (db *DB) PromoteToLeader() (int64, error) {
	if !db.IsReplica() {
		return 0, fmt.Errorf("engine: promote: not a replica (already a leader?)")
	}
	db.applyMu.Lock()
	defer db.applyMu.Unlock()
	db.ckptMu.Lock()
	defer db.ckptMu.Unlock()
	db.commitMu.Lock()
	defer db.commitMu.Unlock()
	if db.durDir == "" {
		return 0, fmt.Errorf("engine: promote requires a database opened with OpenDirDB")
	}

	// The new generation supersedes everything this node has seen: its own
	// epoch, and any higher epoch it may have observed while fenced.
	newEpoch := db.epoch.Load() + 1
	if f := db.fenced.Load(); f != nil && f.observed >= newEpoch {
		newEpoch = f.observed + 1
	}

	snap := db.buildSnapshotLocked()
	if db.wal != nil {
		db.wal.mu.Lock()
		if db.wal.lsn > snap.LSN {
			snap.LSN = db.wal.lsn
		}
		db.wal.mu.Unlock()
	} else if db.replayLSN > snap.LSN {
		snap.LSN = db.replayLSN
	}
	// The fold point is the last LSN of the old epoch: frames above it (the
	// WALEpoch record and everything after) belong to the new generation.
	snap.Epoch = newEpoch
	snap.EpochStart = snap.LSN
	if err := writeSnapshotFile(filepath.Join(db.durDir, snapshotFile), snap); err != nil {
		return 0, fmt.Errorf("engine: promote: %w", err)
	}

	// The stamped snapshot now covers the whole shared prefix; the old log
	// and segments are garbage (same teardown as ReopenWAL).
	if db.wal != nil {
		db.wal.discard()
	}
	if entries, err := os.ReadDir(db.durDir); err == nil {
		for _, e := range entries {
			name := e.Name()
			if strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, walSegSuffix) {
				if lsn, ok := segLSN(name); ok && lsn <= snap.LSN {
					_ = os.Remove(filepath.Join(db.durDir, name))
				}
			}
		}
	}

	w, err := createWAL(filepath.Join(db.durDir, walFile), db.walSync, snap.LSN)
	if err != nil {
		// The fold succeeded but there is no log to lead with: stay a
		// read-only replica (degraded), never a half-promoted leader.
		db.noteWALErr(fmt.Errorf("%w: promote could not create a fresh log: %w", ErrWALPoisoned, err))
		return 0, fmt.Errorf("engine: promote: %w", err)
	}
	db.wal = w
	db.retiredWAL = nil
	db.walHorizon = snap.LSN
	db.replayLSN = snap.LSN

	// The epoch record is the first frame of the new generation. It must be
	// durable before the node leads: a leader whose own epoch transition
	// could vanish in a crash would resurrect at the old epoch, unfenced.
	lsn, err := w.appendFrame(&WALRecord{Kind: WALEpoch, Epoch: newEpoch}, true)
	if err == nil {
		err = w.waitDurable(lsn)
	}
	if err != nil {
		db.noteWALErr(err)
		return 0, fmt.Errorf("engine: promote: epoch record: %w", err)
	}

	db.epoch.Store(newEpoch)
	db.epochStart.Store(snap.EpochStart)
	db.fenced.Store(nil)
	db.replica.Store(nil) // the write gate opens last: everything above is in place
	db.degraded.Store(nil)
	return newEpoch, nil
}

// DemoteToReplica turns this node (typically a fenced ex-leader) into a
// read-only replica of leader: replica mode guards writes from here on,
// and the fence clears — the node is rejoining the new lineage. Its
// divergent unreplicated tail, if any, is handled by the new leader's
// (epoch, LSN) comparison on the first ship request: a tail past the
// promotion point draws a typed divergence rejection that routes the
// follower through a snapshot bootstrap, which discards the tail.
func (db *DB) DemoteToReplica(leader string) {
	db.replica.Store(&replicaState{leader: leader})
	db.fenced.Store(nil)
}
