package engine

import (
	"fmt"
	"sync"

	"repro/internal/onnx"
)

// Column is one typed column of values; exactly one backing slice is used,
// selected by Type.
type Column struct {
	Type   ColType
	Ints   []int64
	Floats []float64
	Strs   []string
	Bools  []bool
}

// NewColumn returns an empty column of the given type.
func NewColumn(t ColType) Column { return Column{Type: t} }

// IntColumn wraps a slice as a column (no copy).
func IntColumn(vals []int64) Column { return Column{Type: TypeInt, Ints: vals} }

// FloatColumn wraps a slice as a column (no copy).
func FloatColumn(vals []float64) Column { return Column{Type: TypeFloat, Floats: vals} }

// StringColumn wraps a slice as a column (no copy).
func StringColumn(vals []string) Column { return Column{Type: TypeString, Strs: vals} }

// BoolColumn wraps a slice as a column (no copy).
func BoolColumn(vals []bool) Column { return Column{Type: TypeBool, Bools: vals} }

// Len returns the number of rows.
func (c *Column) Len() int {
	switch c.Type {
	case TypeInt:
		return len(c.Ints)
	case TypeFloat:
		return len(c.Floats)
	case TypeString:
		return len(c.Strs)
	case TypeBool:
		return len(c.Bools)
	}
	return 0
}

// Value returns row i as a Value.
func (c *Column) Value(i int) Value {
	switch c.Type {
	case TypeInt:
		return IntValue(c.Ints[i])
	case TypeFloat:
		return FloatValue(c.Floats[i])
	case TypeString:
		return StringValue(c.Strs[i])
	case TypeBool:
		return BoolValue(c.Bools[i])
	}
	return NullValue()
}

// Append adds a value, coercing numerically when needed.
func (c *Column) Append(v Value) error {
	if v.Null {
		// NULL storage: zero value (the engine has no null bitmap; DML
		// paths reject NULLs for simplicity, matching the workloads).
		switch c.Type {
		case TypeInt:
			c.Ints = append(c.Ints, 0)
		case TypeFloat:
			c.Floats = append(c.Floats, 0)
		case TypeString:
			c.Strs = append(c.Strs, "")
		case TypeBool:
			c.Bools = append(c.Bools, false)
		}
		return nil
	}
	switch c.Type {
	case TypeInt:
		switch v.Kind {
		case TypeInt:
			c.Ints = append(c.Ints, v.I)
		case TypeFloat:
			c.Ints = append(c.Ints, int64(v.F))
		default:
			return fmt.Errorf("engine: cannot store %s into int column", v.Kind)
		}
	case TypeFloat:
		f, err := v.AsFloat()
		if err != nil {
			return fmt.Errorf("engine: cannot store %s into float column", v.Kind)
		}
		c.Floats = append(c.Floats, f)
	case TypeString:
		if v.Kind != TypeString {
			return fmt.Errorf("engine: cannot store %s into text column", v.Kind)
		}
		c.Strs = append(c.Strs, v.S)
	case TypeBool:
		if v.Kind != TypeBool {
			return fmt.Errorf("engine: cannot store %s into bool column", v.Kind)
		}
		c.Bools = append(c.Bools, v.B)
	}
	return nil
}

// Gather returns a new column holding the selected rows.
func (c *Column) Gather(sel []int32) Column {
	out := Column{Type: c.Type}
	switch c.Type {
	case TypeInt:
		out.Ints = make([]int64, len(sel))
		for i, s := range sel {
			out.Ints[i] = c.Ints[s]
		}
	case TypeFloat:
		out.Floats = make([]float64, len(sel))
		for i, s := range sel {
			out.Floats[i] = c.Floats[s]
		}
	case TypeString:
		out.Strs = make([]string, len(sel))
		for i, s := range sel {
			out.Strs[i] = c.Strs[s]
		}
	case TypeBool:
		out.Bools = make([]bool, len(sel))
		for i, s := range sel {
			out.Bools[i] = c.Bools[s]
		}
	}
	return out
}

// ColMeta describes one schema column; Qual carries the table alias for
// disambiguation in joins ("" for derived columns).
type ColMeta struct {
	Qual string
	Name string
	Type ColType
}

// Schema is an ordered column list.
type Schema []ColMeta

// Resolve finds the column index for a (qualifier, name) reference. An
// empty qualifier matches any unique bare name.
func (s Schema) Resolve(qual, name string) (int, error) {
	found := -1
	for i, m := range s {
		if m.Name != name {
			continue
		}
		if qual != "" && m.Qual != qual {
			continue
		}
		if found >= 0 {
			return 0, fmt.Errorf("engine: ambiguous column reference %q", name)
		}
		found = i
	}
	if found < 0 {
		if qual != "" {
			return 0, fmt.Errorf("engine: unknown column %s.%s", qual, name)
		}
		return 0, fmt.Errorf("engine: unknown column %q", name)
	}
	return found, nil
}

// Names returns the bare column names.
func (s Schema) Names() []string {
	out := make([]string, len(s))
	for i, m := range s {
		out[i] = m.Name
	}
	return out
}

// tableSnapshot is a retained historical version: column headers plus the
// row count at that version (columns are append-only or wholesale-replaced,
// so headers stay valid without copying data).
type tableSnapshot struct {
	version int64
	cols    []Column
	rows    int
}

// Table is a named, versioned, thread-safe columnar table. A bounded
// number of historical versions is retained for time-travel reads
// ("FROM t VERSION n") — the paper's data-versioning requirement.
type Table struct {
	Name string

	mu      sync.RWMutex
	schema  Schema
	cols    []Column
	version int64

	// writeMu serializes whole DML statements (not individual appends):
	// UPDATE/DELETE are snapshot -> rebuild -> replace, so without
	// statement-level exclusion a write committed between the snapshot and
	// the replace would be silently lost under concurrent sessions.
	writeMu sync.Mutex

	history []tableSnapshot
	retain  int

	statsVersion int64
	stats        onnx.Stats
}

// DefaultRetention is how many historical versions a table keeps.
const DefaultRetention = 8

// NewTable creates an empty table with the given schema (qualifiers are
// ignored and reset to empty).
func NewTable(name string, schema Schema) *Table {
	sc := make(Schema, len(schema))
	for i, m := range schema {
		sc[i] = ColMeta{Name: m.Name, Type: m.Type}
	}
	cols := make([]Column, len(sc))
	for i := range cols {
		cols[i] = NewColumn(sc[i].Type)
	}
	return &Table{Name: name, schema: sc, cols: cols, statsVersion: -1, retain: DefaultRetention}
}

// SetRetention bounds the historical versions kept for time travel.
func (t *Table) SetRetention(n int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.retain = n
	t.trimHistoryLocked()
}

// recordVersionLocked snapshots the pre-write state (caller holds the
// write lock and has not mutated yet).
func (t *Table) recordVersionLocked() {
	rows := 0
	if len(t.cols) > 0 {
		rows = t.cols[0].Len()
	}
	cols := make([]Column, len(t.cols))
	for i := range t.cols {
		cols[i] = truncateCol(t.cols[i], rows)
	}
	t.history = append(t.history, tableSnapshot{version: t.version, cols: cols, rows: rows})
	t.trimHistoryLocked()
}

func (t *Table) trimHistoryLocked() {
	if t.retain >= 0 && len(t.history) > t.retain {
		t.history = t.history[len(t.history)-t.retain:]
	}
}

// SnapshotAt returns the table state as of the given version. The current
// version is always available; older versions only within the retention
// window.
func (t *Table) SnapshotAt(version int64) ([]Column, Schema, int, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if version == t.version {
		rows := 0
		if len(t.cols) > 0 {
			rows = t.cols[0].Len()
		}
		cols := make([]Column, len(t.cols))
		for i := range t.cols {
			cols[i] = truncateCol(t.cols[i], rows)
		}
		return cols, t.schema, rows, nil
	}
	for i := len(t.history) - 1; i >= 0; i-- {
		if t.history[i].version == version {
			return t.history[i].cols, t.schema, t.history[i].rows, nil
		}
	}
	return nil, nil, 0, fmt.Errorf("engine: table %s version %d not retained (window %d, current %d)",
		t.Name, version, t.retain, t.version)
}

// RetainedVersions lists the historical versions available for time
// travel, oldest first, excluding the current version.
func (t *Table) RetainedVersions() []int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]int64, len(t.history))
	for i, h := range t.history {
		out[i] = h.version
	}
	return out
}

// Schema returns a copy of the table schema.
func (t *Table) Schema() Schema {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return append(Schema(nil), t.schema...)
}

// NumRows returns the row count.
func (t *Table) NumRows() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if len(t.cols) == 0 {
		return 0
	}
	return t.cols[0].Len()
}

// Version returns the table version (bumped on every write).
func (t *Table) Version() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.version
}

// snapshot returns the current columns for reading. Readers share the
// backing arrays; writers always append or replace whole columns under the
// write lock, and version-bump, so a snapshot stays internally consistent.
func (t *Table) snapshot() ([]Column, Schema, int) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := 0
	if len(t.cols) > 0 {
		n = t.cols[0].Len()
	}
	cols := make([]Column, len(t.cols))
	for i := range t.cols {
		cols[i] = truncateCol(t.cols[i], n)
	}
	return cols, t.schema, n
}

// truncateCol fixes the column length to n so concurrent appends past the
// snapshot are invisible.
func truncateCol(c Column, n int) Column {
	switch c.Type {
	case TypeInt:
		c.Ints = c.Ints[:n]
	case TypeFloat:
		c.Floats = c.Floats[:n]
	case TypeString:
		c.Strs = c.Strs[:n]
	case TypeBool:
		c.Bools = c.Bools[:n]
	}
	return c
}

// AppendRow appends one row of values atomically: on a type error nothing
// is committed (no ragged columns, no version bump).
func (t *Table) AppendRow(vals []Value) error {
	return t.AppendRows([][]Value{vals})
}

// AppendRows appends a batch of rows as ONE write: either every row lands
// or none does, the table version bumps once, and time travel sees a
// single new version — the INSERT paths' statement-level atomicity.
//
// Rows are appended to copies of the column headers and swapped in only on
// success; a mid-batch error therefore cannot leave ragged columns or a
// torn prefix. (Appends may land in shared backing arrays beyond the
// committed length, which snapshots never observe.)
func (t *Table) AppendRows(rows [][]Value) error {
	t.writeMu.Lock()
	defer t.writeMu.Unlock()
	if len(rows) == 0 {
		return nil
	}
	newCols, err := t.appendBuild(rows)
	if err != nil {
		return err
	}
	t.install(newCols)
	return nil
}

// appendBuild validates rows and builds the appended column set without
// installing it — the build/install split lets the durable write path put
// the WAL append between validation and the install, so a statement that
// fails either step mutates nothing. Caller holds t.writeMu.
func (t *Table) appendBuild(rows [][]Value) ([]Column, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	newCols := make([]Column, len(t.cols))
	copy(newCols, t.cols)
	for _, vals := range rows {
		if len(vals) != len(newCols) {
			return nil, fmt.Errorf("engine: table %s has %d columns, got %d values", t.Name, len(newCols), len(vals))
		}
		for i := range vals {
			if err := newCols[i].Append(vals[i]); err != nil {
				return nil, fmt.Errorf("engine: table %s column %s: %w", t.Name, t.schema[i].Name, err)
			}
		}
	}
	return newCols, nil
}

// install commits pre-built columns as one write: history records the
// pre-write state and the version bumps once. Caller holds t.writeMu.
func (t *Table) install(cols []Column) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.recordVersionLocked() // snapshots t.cols, still the pre-write state
	t.cols = cols
	t.version++
}

// ReplaceColumns swaps in fully-built columns (bulk load).
func (t *Table) ReplaceColumns(cols []Column) error {
	t.writeMu.Lock()
	defer t.writeMu.Unlock()
	if err := t.validateReplace(cols); err != nil {
		return err
	}
	t.install(cols)
	return nil
}

// validateReplace checks a bulk-load column set against the schema.
func (t *Table) validateReplace(cols []Column) error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if len(cols) != len(t.schema) {
		return fmt.Errorf("engine: table %s has %d columns, got %d", t.Name, len(t.schema), len(cols))
	}
	n := -1
	for i, c := range cols {
		if c.Type != t.schema[i].Type {
			return fmt.Errorf("engine: table %s column %s: type mismatch", t.Name, t.schema[i].Name)
		}
		if n == -1 {
			n = c.Len()
		} else if c.Len() != n {
			return fmt.Errorf("engine: table %s: ragged bulk load", t.Name)
		}
	}
	return nil
}

// maxTrackedCategories caps the distinct-set size tracked in statistics.
const maxTrackedCategories = 256

// Stats returns per-column statistics, recomputing them when the table
// version changed since the last computation. These feed the
// cross-optimizer's model-compression pass.
func (t *Table) Stats() onnx.Stats {
	t.mu.RLock()
	if t.statsVersion == t.version {
		s := t.stats
		t.mu.RUnlock()
		return s
	}
	t.mu.RUnlock()

	t.mu.Lock()
	defer t.mu.Unlock()
	if t.statsVersion == t.version {
		return t.stats
	}
	stats := onnx.Stats{}
	for i, m := range t.schema {
		c := &t.cols[i]
		switch m.Type {
		case TypeInt:
			if len(c.Ints) == 0 {
				continue
			}
			mn, mx := c.Ints[0], c.Ints[0]
			for _, v := range c.Ints {
				if v < mn {
					mn = v
				}
				if v > mx {
					mx = v
				}
			}
			stats[m.Name] = onnx.ColumnStats{HasRange: true, Min: float64(mn), Max: float64(mx)}
		case TypeFloat:
			if len(c.Floats) == 0 {
				continue
			}
			mn, mx := c.Floats[0], c.Floats[0]
			for _, v := range c.Floats {
				if v < mn {
					mn = v
				}
				if v > mx {
					mx = v
				}
			}
			stats[m.Name] = onnx.ColumnStats{HasRange: true, Min: mn, Max: mx}
		case TypeString:
			set := map[string]bool{}
			tooMany := false
			for _, v := range c.Strs {
				if !set[v] {
					set[v] = true
					if len(set) > maxTrackedCategories {
						tooMany = true
						break
					}
				}
			}
			if !tooMany {
				stats[m.Name] = onnx.ColumnStats{Categories: set}
			}
		}
	}
	t.stats = stats
	t.statsVersion = t.version
	return stats
}
