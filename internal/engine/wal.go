package engine

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Write-ahead logging and crash recovery. Every committed DML statement is
// appended to a durable log as one record, sequenced by a log sequence
// number (LSN); a periodic checkpoint folds the log into a snapshot
// (temp-file + fsync + atomic rename) and retires the folded segments; boot
// replays the latest snapshot plus any surviving log records, skipping
// records the snapshot already covers (LSN idempotence) and tolerating a
// torn record at the tail of the last segment (a crash mid-append). The
// commit point is PR 2's per-table statement write lock: under it a
// statement validates and builds its effect, appends the WAL record, and
// only then installs the effect in memory — so a statement that errors to
// the client (validation or WAL failure) has no effect at all, and an
// acknowledged write is always either in the snapshot or in the log.

// WAL record kinds.
const (
	WALCreate  uint8 = iota + 1 // CREATE TABLE: Table + Schema
	WALDrop                     // DROP TABLE: Table
	WALInsert                   // committed INSERT batch: Table + Rows
	WALReplace                  // committed UPDATE/DELETE/bulk-load rebuild: Table + Cols
	WALLog                      // query-log append: Entry
)

// WALRecord is one committed statement in the write-ahead log. Exactly the
// fields implied by Kind are populated.
type WALRecord struct {
	LSN    int64
	Kind   uint8
	Table  string
	Schema Schema
	Rows   [][]Value
	Cols   []Column
	Entry  *LogEntry
}

// File-layout names inside a durable data directory.
const (
	snapshotFile = "snapshot.flk"
	walFile      = "wal.log"
	walSegSuffix = ".seg"
)

// walHeader opens every WAL file so a snapshot can never be mistaken for a
// log (and vice versa).
const walHeader = "FLKWAL01"

// frame layout: 4-byte little-endian payload length, 4-byte IEEE CRC32 of
// the payload, then the payload (a gob-encoded WALRecord). A short or
// CRC-mismatching frame marks the torn tail of a crashed append.
const frameHeaderLen = 8

// maxFrameLen bounds a single record so a corrupt length field cannot
// trigger a multi-gigabyte allocation during recovery.
const maxFrameLen = 1 << 30

// AppendFrame writes one length+CRC framed payload (shared by the WAL and
// the audit persistence in core).
func AppendFrame(w io.Writer, payload []byte) error {
	var hdr [frameHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrames streams framed payloads to fn until EOF. A truncated or
// corrupt frame stops iteration and reports torn=true: everything before
// the tear was intact, the tear itself is an unacknowledged partial append.
func ReadFrames(r io.Reader, fn func(payload []byte) error) (torn bool, err error) {
	var hdr [frameHeaderLen]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			if errors.Is(err, io.EOF) {
				return false, nil
			}
			if errors.Is(err, io.ErrUnexpectedEOF) {
				return true, nil
			}
			return false, err
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		if n > maxFrameLen {
			return true, nil
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return true, nil
			}
			return false, err
		}
		if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(hdr[4:8]) {
			return true, nil
		}
		if err := fn(payload); err != nil {
			return false, err
		}
	}
}

// WAL is an append-only, CRC-framed record log. Appends are serialized by
// the WAL's own mutex (commits to different tables run concurrently);
// durability per record is governed by the sync policy (fsync on every
// committed DML record, or leave flushing to the OS).
type WAL struct {
	mu     sync.Mutex
	f      *os.File
	path   string
	sync   bool
	lsn    int64
	size   int64
	broken bool // a failed append could not be rolled back; refuse commits
}

// createWAL creates (truncating) a fresh log file whose next record gets
// LSN startLSN+1.
func createWAL(path string, syncPolicy bool, startLSN int64) (*WAL, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("engine: wal: %w", err)
	}
	if _, err := io.WriteString(f, walHeader); err != nil {
		f.Close()
		return nil, fmt.Errorf("engine: wal: %w", err)
	}
	if syncPolicy {
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, fmt.Errorf("engine: wal: %w", err)
		}
	}
	return &WAL{f: f, path: path, sync: syncPolicy, lsn: startLSN, size: int64(len(walHeader))}, nil
}

// append encodes rec (assigning the next LSN), frames it, and makes it
// durable per the sync policy when the record carries committed data.
// Callers hold the DB commit barrier in read mode plus the statement write
// lock of the state involved, so per-table records arrive in commit order;
// w.mu interleaves records from concurrent statements on different tables
// (which commute on replay) without tearing frames.
func (w *WAL) append(rec *WALRecord, durable bool) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.broken {
		return fmt.Errorf("engine: wal is failed (a previous append could not be rolled back); refusing commits")
	}
	var buf bytes.Buffer
	enc := &WALRecord{}
	*enc = *rec
	enc.LSN = w.lsn + 1
	if err := gob.NewEncoder(&buf).Encode(enc); err != nil {
		return fmt.Errorf("engine: wal append: %w", err)
	}
	if buf.Len() > maxFrameLen {
		// Enforced on the write side too: a frame recovery would reject as
		// torn must never be acknowledged.
		return fmt.Errorf("engine: wal append: record of %d bytes exceeds the %d-byte frame limit", buf.Len(), maxFrameLen)
	}
	if err := AppendFrame(w.f, buf.Bytes()); err != nil {
		// A partial frame mid-file would make recovery stop at the tear and
		// silently drop every later (acknowledged) record: rewind the file
		// to the last good frame boundary. If that fails, poison the WAL so
		// no further commit can be acknowledged after the garbage.
		if terr := w.f.Truncate(w.size); terr != nil {
			w.broken = true
		} else if _, serr := w.f.Seek(w.size, io.SeekStart); serr != nil {
			w.broken = true
		}
		return fmt.Errorf("engine: wal append: %w", err)
	}
	if durable && w.sync {
		if err := w.f.Sync(); err != nil {
			// The frame is intact but not known durable; the statement will
			// not be acknowledged and fsync failures are not retryable
			// (the page cache may already have dropped the dirty pages), so
			// stop accepting commits.
			w.broken = true
			return fmt.Errorf("engine: wal sync: %w", err)
		}
	}
	w.lsn++
	rec.LSN = w.lsn
	w.size += int64(frameHeaderLen + buf.Len())
	return nil
}

// segName is the rotated-segment name for a log holding records up to lsn;
// zero-padding keeps lexical order equal to LSN order.
func segName(lsn int64) string {
	return fmt.Sprintf("wal-%020d%s", lsn, walSegSuffix)
}

// segLSN parses the upper LSN out of a rotated segment name.
func segLSN(name string) (int64, bool) {
	name = strings.TrimSuffix(name, walSegSuffix)
	name = strings.TrimPrefix(name, "wal-")
	v, err := strconv.ParseInt(name, 10, 64)
	return v, err == nil
}

// rotate renames the live log to an LSN-stamped segment and starts a fresh
// one. The caller holds the commit barrier exclusively, so no append can
// race the swap.
func (w *WAL) rotate() (segment string, err error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.f.Sync(); err != nil {
		return "", fmt.Errorf("engine: wal rotate: %w", err)
	}
	if err := w.f.Close(); err != nil {
		return "", fmt.Errorf("engine: wal rotate: %w", err)
	}
	dir := filepath.Dir(w.path)
	segment = filepath.Join(dir, segName(w.lsn))
	if err := os.Rename(w.path, segment); err != nil {
		return "", fmt.Errorf("engine: wal rotate: %w", err)
	}
	nw, err := createWAL(w.path, w.sync, w.lsn)
	if err != nil {
		return "", err
	}
	w.f, w.size = nw.f, nw.size
	return segment, nil
}

func (w *WAL) close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	err := w.f.Sync()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.f = nil
	return err
}

// RecoveryInfo summarizes what boot-time recovery found and did.
type RecoveryInfo struct {
	SnapshotLoaded bool          // a snapshot file existed and was restored
	Segments       int           // WAL files replayed (segments + live log)
	Records        int           // records applied (after LSN skip)
	Skipped        int           // records the snapshot already covered
	TornTail       bool          // the last file ended in a torn record
	LSN            int64         // highest LSN after recovery
	Duration       time.Duration // wall time of the whole recovery
}

// OpenDirDB opens (or initializes) a durable database directory: it loads
// the latest snapshot, replays surviving WAL records in LSN order,
// consolidates the result into a fresh snapshot (so a crash loop cannot
// accumulate unbounded replay work), and attaches a fresh write-ahead log
// for subsequent commits. syncWAL selects the per-commit fsync policy.
func OpenDirDB(dir string, syncWAL bool) (*DB, RecoveryInfo, error) {
	start := time.Now()
	var info RecoveryInfo
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, info, fmt.Errorf("engine: open dir: %w", err)
	}
	db := NewDB()

	snapPath := filepath.Join(dir, snapshotFile)
	if f, err := os.Open(snapPath); err == nil {
		lerr := db.LoadSnapshot(f)
		f.Close()
		if lerr != nil {
			return nil, info, fmt.Errorf("engine: recovering %s: %w", snapPath, lerr)
		}
		info.SnapshotLoaded = true
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, info, fmt.Errorf("engine: open dir: %w", err)
	}

	// Replay rotated segments in LSN order, then the live log. A torn tail
	// is tolerated only on the final file: a tear in an earlier segment
	// would leave a sequencing gap, which is corruption, not a crash.
	files, err := walFilesInOrder(dir)
	if err != nil {
		return nil, info, err
	}
	for i, path := range files {
		applied, skipped, torn, err := db.replayWALFile(path)
		if err != nil {
			return nil, info, fmt.Errorf("engine: replaying %s: %w", path, err)
		}
		info.Segments++
		info.Records += applied
		info.Skipped += skipped
		if torn {
			if i != len(files)-1 {
				return nil, info, fmt.Errorf("engine: wal segment %s is torn mid-sequence (corrupt data directory)", path)
			}
			info.TornTail = true
		}
	}
	info.LSN = db.replayLSN

	// Consolidate: fold whatever we replayed into a durable snapshot so the
	// old segments can be retired before new commits arrive.
	if len(files) > 0 {
		if err := writeSnapshotFile(snapPath, db.buildSnapshot()); err != nil {
			return nil, info, err
		}
		for _, path := range files {
			if err := os.Remove(path); err != nil {
				return nil, info, fmt.Errorf("engine: retiring %s: %w", path, err)
			}
		}
	}

	wal, err := createWAL(filepath.Join(dir, walFile), syncWAL, info.LSN)
	if err != nil {
		return nil, info, err
	}
	db.commitMu.Lock()
	db.wal = wal
	db.durDir = dir
	db.commitMu.Unlock()
	info.Duration = time.Since(start)
	return db, info, nil
}

// walFilesInOrder lists the data directory's WAL files oldest-first:
// LSN-stamped segments, then the live log.
func walFilesInOrder(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("engine: open dir: %w", err)
	}
	var segs []string
	live := false
	for _, e := range entries {
		name := e.Name()
		if strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, walSegSuffix) {
			if _, ok := segLSN(name); ok {
				segs = append(segs, name)
			}
		}
		if name == walFile {
			live = true
		}
	}
	sort.Strings(segs) // zero-padded LSNs: lexical == numeric order
	out := make([]string, 0, len(segs)+1)
	for _, s := range segs {
		out = append(out, filepath.Join(dir, s))
	}
	if live {
		out = append(out, filepath.Join(dir, walFile))
	}
	return out, nil
}

// replayWALFile applies one log file's records to the database.
func (db *DB) replayWALFile(path string) (applied, skipped int, torn bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, false, err
	}
	defer f.Close()
	return db.replayWAL(f)
}

// ReplayWAL applies a WAL stream (header + frames) to the database,
// skipping records at or below the already-applied LSN — replaying the
// same log twice is a no-op. It reports the applied/skipped record counts
// and whether the stream ended in a torn record.
func (db *DB) ReplayWAL(r io.Reader) (applied, skipped int, torn bool, err error) {
	return db.replayWAL(r)
}

func (db *DB) replayWAL(r io.Reader) (applied, skipped int, torn bool, err error) {
	hdr := make([]byte, len(walHeader))
	if _, err := io.ReadFull(r, hdr); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return 0, 0, true, nil // an empty/torn header: nothing was ever logged
		}
		return 0, 0, false, err
	}
	if string(hdr) != walHeader {
		return 0, 0, false, fmt.Errorf("engine: not a WAL file (bad header)")
	}
	torn, err = ReadFrames(r, func(payload []byte) error {
		var rec WALRecord
		if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&rec); err != nil {
			return fmt.Errorf("engine: wal decode: %w", err)
		}
		if rec.LSN <= db.replayLSN {
			skipped++
			return nil
		}
		if err := db.applyWALRecord(&rec); err != nil {
			return err
		}
		applied++
		return nil
	})
	return applied, skipped, torn, err
}

// applyWALRecord re-executes one committed statement's physical effect.
// Replay runs single-threaded before the WAL is attached, so the regular
// table primitives (which bump versions and record time-travel history
// exactly as the original commit did) are used directly.
func (db *DB) applyWALRecord(rec *WALRecord) error {
	switch rec.Kind {
	case WALCreate:
		if _, err := db.CreateTable(rec.Table, rec.Schema); err != nil {
			return err
		}
	case WALDrop:
		if err := db.DropTable(rec.Table); err != nil {
			return err
		}
	case WALInsert:
		t, err := db.Table(rec.Table)
		if err != nil {
			return err
		}
		if err := t.AppendRows(rec.Rows); err != nil {
			return err
		}
	case WALReplace:
		t, err := db.Table(rec.Table)
		if err != nil {
			return err
		}
		if err := t.ReplaceColumns(rec.Cols); err != nil {
			return err
		}
	case WALLog:
		if rec.Entry == nil {
			return fmt.Errorf("engine: wal log record without entry (lsn %d)", rec.LSN)
		}
		db.mu.Lock()
		db.log = append(db.log, *rec.Entry)
		if rec.Entry.Seq > db.logSeq {
			db.logSeq = rec.Entry.Seq
		}
		db.mu.Unlock()
	default:
		return fmt.Errorf("engine: unknown wal record kind %d (lsn %d)", rec.Kind, rec.LSN)
	}
	db.replayLSN = rec.LSN
	return nil
}

// Checkpoint folds the write-ahead log into the snapshot: under the commit
// barrier it deep-copies the database state and rotates the live log, then
// (outside the barrier) writes the snapshot durably — temp file, fsync,
// atomic rename, directory fsync — and retires every folded segment. A
// crash at any point leaves a recoverable directory: until the rename
// lands, the old snapshot plus the rotated segments reconstruct the same
// state; after it, replay skips the folded records by LSN.
func (db *DB) Checkpoint() error {
	db.ckptMu.Lock()
	defer db.ckptMu.Unlock()
	db.commitMu.Lock()
	if db.wal == nil || db.durDir == "" {
		db.commitMu.Unlock()
		return fmt.Errorf("engine: Checkpoint requires a database opened with OpenDirDB")
	}
	snap := db.buildSnapshotLocked()
	_, err := db.wal.rotate()
	db.commitMu.Unlock()
	if err != nil {
		return err
	}

	if err := writeSnapshotFile(filepath.Join(db.durDir, snapshotFile), snap); err != nil {
		return err
	}
	// The snapshot covers every rotated segment (snap.LSN >= their records);
	// the live log holds only newer commits.
	entries, err := os.ReadDir(db.durDir)
	if err != nil {
		return fmt.Errorf("engine: checkpoint: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, walSegSuffix) {
			continue
		}
		if lsn, ok := segLSN(name); ok && lsn <= snap.LSN {
			if err := os.Remove(filepath.Join(db.durDir, name)); err != nil {
				return fmt.Errorf("engine: checkpoint: %w", err)
			}
		}
	}
	return nil
}

// writeSnapshotFile writes a snapshot durably and atomically: temp file in
// the same directory, fsync, rename over the target, fsync the directory.
func writeSnapshotFile(path string, snap savedDB) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("engine: snapshot: %w", err)
	}
	tmpName := tmp.Name()
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("engine: snapshot: %w", err)
	}
	if err := encodeSnapshot(tmp, snap); err != nil {
		return fail(err)
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("engine: snapshot: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("engine: snapshot: %w", err)
	}
	if d, err := os.Open(dir); err == nil {
		// Make the rename itself durable; best-effort where the platform
		// does not support directory fsync.
		_ = d.Sync()
		d.Close()
	}
	return nil
}

// WALSizeBytes reports the live log's current size (a /metrics gauge).
func (db *DB) WALSizeBytes() int64 {
	db.commitMu.RLock()
	defer db.commitMu.RUnlock()
	if db.wal == nil {
		return 0
	}
	db.wal.mu.Lock()
	defer db.wal.mu.Unlock()
	return db.wal.size
}

// LastLSN reports the highest assigned log sequence number.
func (db *DB) LastLSN() int64 {
	db.commitMu.RLock()
	defer db.commitMu.RUnlock()
	if db.wal == nil {
		return db.replayLSN
	}
	db.wal.mu.Lock()
	defer db.wal.mu.Unlock()
	return db.wal.lsn
}

// CloseDurability flushes and closes the write-ahead log (final shutdown;
// typically preceded by a Checkpoint). The database remains usable but
// subsequent commits are no longer logged.
func (db *DB) CloseDurability() error {
	db.commitMu.Lock()
	defer db.commitMu.Unlock()
	if db.wal == nil {
		return nil
	}
	err := db.wal.close()
	db.wal = nil
	return err
}

// walAppend logs one committed record. Callers hold commitMu (read side)
// plus the lock that serializes writes to the touched state (t.writeMu for
// table data, db.mu for DDL and the query log), which also serializes the
// underlying file appends. No-op without an attached WAL.
func (db *DB) walAppend(rec *WALRecord, durable bool) error {
	if db.wal == nil {
		return nil
	}
	return db.wal.append(rec, durable)
}
