package engine

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/fault"
)

// ErrWALPoisoned marks the write-ahead log's sticky failure state: an fsync
// or unrecoverable append error left the set of durable frames unknowable,
// so no further commit may be acknowledged from this log. Every error the
// WAL returns after poisoning wraps this sentinel; the DB layer reacts by
// entering read-only degraded mode (see ErrReadOnly) rather than bricking
// the process. Recovery is operator-triggered: ReopenWAL snapshots the
// in-memory state durably and starts a fresh log.
var ErrWALPoisoned = errors.New("engine: wal poisoned")

// Write-ahead logging and crash recovery. Every committed DML statement is
// appended to a durable log as one record, sequenced by a log sequence
// number (LSN); a periodic checkpoint folds the log into a snapshot
// (temp-file + fsync + atomic rename) and retires the folded segments; boot
// replays the latest snapshot plus any surviving log records, skipping
// records the snapshot already covers (LSN idempotence) and tolerating a
// torn record at the tail of the last segment (a crash mid-append). The
// commit point is PR 2's per-table statement write lock: under it a
// statement validates and builds its effect, appends the WAL record, and
// only then installs the effect in memory — so a statement that errors to
// the client (validation or WAL failure) has no effect at all, and an
// acknowledged write is always either in the snapshot or in the log.

// WAL record kinds.
const (
	WALCreate  uint8 = iota + 1 // CREATE TABLE: Table + Schema
	WALDrop                     // DROP TABLE: Table
	WALInsert                   // committed INSERT batch: Table + Rows
	WALReplace                  // committed UPDATE/DELETE/bulk-load rebuild: Table + Cols
	WALLog                      // query-log append: Entry
	WALEpoch                    // leadership epoch transition: Epoch (replication failover)
)

// WALRecord is one committed statement in the write-ahead log. Exactly the
// fields implied by Kind are populated.
type WALRecord struct {
	LSN    int64
	Kind   uint8
	Table  string
	Schema Schema
	Rows   [][]Value
	Cols   []Column
	Entry  *LogEntry
	// Epoch is set only on WALEpoch records: the leadership generation that
	// begins at this LSN. Shipping the record in-band teaches every follower
	// the new epoch through the ordinary apply path.
	Epoch int64
}

// File-layout names inside a durable data directory.
const (
	snapshotFile = "snapshot.flk"
	walFile      = "wal.log"
	walSegSuffix = ".seg"
)

// walHeader opens every WAL file so a snapshot can never be mistaken for a
// log (and vice versa).
const walHeader = "FLKWAL01"

// frame layout: 4-byte little-endian payload length, 4-byte IEEE CRC32 of
// the payload, then the payload (a gob-encoded WALRecord). A short or
// CRC-mismatching frame marks the torn tail of a crashed append.
const frameHeaderLen = 8

// maxFrameLen bounds a single record so a corrupt length field cannot
// trigger a multi-gigabyte allocation during recovery.
const maxFrameLen = 1 << 30

// AppendFrame writes one length+CRC framed payload (shared by the WAL and
// the audit persistence in core).
func AppendFrame(w io.Writer, payload []byte) error {
	var hdr [frameHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrames streams framed payloads to fn until EOF. A truncated or
// corrupt frame stops iteration and reports torn=true: everything before
// the tear was intact, the tear itself is an unacknowledged partial append.
func ReadFrames(r io.Reader, fn func(payload []byte) error) (torn bool, err error) {
	var hdr [frameHeaderLen]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			if errors.Is(err, io.EOF) {
				return false, nil
			}
			if errors.Is(err, io.ErrUnexpectedEOF) {
				return true, nil
			}
			return false, err
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		if n > maxFrameLen {
			return true, nil
		}
		// Grow the payload as bytes actually arrive rather than trusting
		// the length field with an upfront make([]byte, n): a corrupt
		// header claiming a near-maxFrameLen frame on a short file must
		// read as a torn tail, not a gigabyte allocation.
		var buf bytes.Buffer
		if _, err := io.CopyN(&buf, r, int64(n)); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return true, nil
			}
			return false, err
		}
		payload := buf.Bytes()
		if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(hdr[4:8]) {
			return true, nil
		}
		if err := fn(payload); err != nil {
			return false, err
		}
	}
}

// WAL is an append-only, CRC-framed record log. Appends are serialized by
// the WAL's own mutex (commits to different tables run concurrently);
// durability per record is governed by the sync policy (fsync before the
// commit is acknowledged, or leave flushing to the OS).
//
// Under the sync policy, durability is group commit: committers append
// their frames under w.mu and then wait for the synced watermark to reach
// their LSN. The first waiter behind the watermark elects itself leader,
// snapshots the current append LSN, and performs ONE fsync that covers
// every frame written so far — the whole batch of concurrent committers —
// then wakes the others. N concurrent commits cost ~1 fsync instead of N,
// and the ack-after-sync invariant is unchanged: no commit returns before
// a Sync covering its frame has completed.
type WAL struct {
	mu     sync.Mutex
	cond   *sync.Cond // broadcast when syncedLSN advances or the WAL fails
	f      *fault.File
	path   string
	sync   bool
	lsn    int64
	size   int64
	broken bool // a failed append could not be rolled back; refuse commits

	syncedLSN int64 // highest LSN covered by a completed fsync
	syncing   bool  // a leader's fsync is in flight
	syncErr   error // sticky fsync failure (fsync errors are not retryable)

	// watch, when non-nil, is closed (and discarded) the next time the
	// durable watermark advances or the WAL fails — the log shipper's
	// tailing wakeup (see DB.WatchDurable). Lazily created per wait round.
	watch chan struct{}

	// Group-commit accounting counts only durable-commit records (DML/DDL);
	// WALLog query-log frames ride the same fsyncs but asking for no
	// durability of their own, they would inflate the amortization gauge.
	durableAppended int64 // durable records framed so far
	durableSynced   int64 // durable records covered by completed fsyncs
	groupSyncs      int64 // completed group-commit fsyncs
	groupRecords    int64 // durable records those fsyncs covered
}

// createWAL creates (truncating) a fresh log file whose next record gets
// LSN startLSN+1.
func createWAL(path string, syncPolicy bool, startLSN int64) (*WAL, error) {
	raw, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("engine: wal: %w", err)
	}
	// All subsequent I/O goes through the "wal.*" failpoints so chaos
	// schedules can fail writes, fsyncs, and truncates deterministically.
	f := fault.NewFile(raw, "wal")
	if _, err := io.WriteString(f, walHeader); err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("engine: wal: %w", err)
	}
	if syncPolicy {
		if err := f.Sync(); err != nil {
			_ = f.Close()
			return nil, fmt.Errorf("engine: wal: %w", err)
		}
	}
	w := &WAL{f: f, path: path, sync: syncPolicy, lsn: startLSN, syncedLSN: startLSN, size: int64(len(walHeader))}
	w.cond = sync.NewCond(&w.mu)
	return w, nil
}

// appendFrame encodes rec (assigning the next LSN) and frames it into the
// log WITHOUT making it durable; the caller decides whether to wait on
// waitDurable. durable marks records a commit will wait on (group-commit
// accounting). Callers hold the DB commit barrier in read mode plus the
// statement write lock of the state involved, so per-table records arrive
// in commit order; w.mu interleaves records from concurrent statements on
// different tables (which commute on replay) without tearing frames.
func (w *WAL) appendFrame(rec *WALRecord, durable bool) (int64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.broken {
		return 0, w.poisonedErrLocked()
	}
	var buf bytes.Buffer
	enc := &WALRecord{}
	*enc = *rec
	enc.LSN = w.lsn + 1
	if err := gob.NewEncoder(&buf).Encode(enc); err != nil {
		return 0, fmt.Errorf("engine: wal append: %w", err)
	}
	if buf.Len() > maxFrameLen {
		// Enforced on the write side too: a frame recovery would reject as
		// torn must never be acknowledged.
		return 0, fmt.Errorf("engine: wal append: record of %d bytes exceeds the %d-byte frame limit", buf.Len(), maxFrameLen)
	}
	if err := AppendFrame(w.f, buf.Bytes()); err != nil {
		// A partial frame mid-file would make recovery stop at the tear and
		// silently drop every later (acknowledged) record: rewind the file
		// to the last good frame boundary. If that fails, poison the WAL so
		// no further commit can be acknowledged after the garbage.
		if terr := w.f.Truncate(w.size); terr != nil {
			w.poisonLocked(fmt.Errorf("engine: wal rewind after failed append: %w", terr))
		} else if _, serr := w.f.Seek(w.size, io.SeekStart); serr != nil {
			w.poisonLocked(fmt.Errorf("engine: wal rewind after failed append: %w", serr))
		}
		return 0, fmt.Errorf("engine: wal append: %w", err)
	}
	w.lsn++
	rec.LSN = w.lsn
	w.size += int64(frameHeaderLen + buf.Len())
	if durable {
		w.durableAppended++
	}
	if !w.sync {
		// Without the fsync policy the append position IS the durable
		// watermark: wake tailing shippers immediately.
		w.notifyLocked()
	}
	return w.lsn, nil
}

// poisonLocked (w.mu held) marks the WAL permanently failed: the set of
// durable frames is no longer knowable, so every pending and future commit
// must error instead of acking. The sticky error wraps ErrWALPoisoned so
// the DB layer can recognize it and degrade to read-only instead of
// failing opaquely.
func (w *WAL) poisonLocked(cause error) error {
	w.broken = true
	if w.syncErr == nil {
		w.syncErr = fmt.Errorf("%w: %w", ErrWALPoisoned, cause)
	}
	w.cond.Broadcast()
	w.notifyLocked()
	return w.syncErr
}

// notifyLocked (w.mu held) wakes durable-watermark watchers.
func (w *WAL) notifyLocked() {
	if w.watch != nil {
		close(w.watch)
		w.watch = nil
	}
}

// poisonedErrLocked (w.mu held) is the error commits see once the WAL is
// poisoned.
func (w *WAL) poisonedErrLocked() error {
	if w.syncErr != nil {
		return w.syncErr
	}
	return fmt.Errorf("%w: a previous append could not be rolled back; refusing commits", ErrWALPoisoned)
}

// poisoned reports the sticky failure, if any.
func (w *WAL) poisoned() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if !w.broken && w.syncErr == nil {
		return nil
	}
	return w.poisonedErrLocked()
}

// waitDurable blocks until every frame up to lsn is covered by a completed
// fsync (the group-commit wait). The first waiter behind the watermark
// becomes the leader: it snapshots the append LSN, releases w.mu for the
// fsync itself (so more committers can append frames that the NEXT fsync
// will cover), and broadcasts the new watermark. A no-op when the sync
// policy is off. Callers hold the commit barrier in read mode — rotation
// (which swaps the file under an exclusive barrier) can therefore never
// overlap an in-flight leader fsync.
func (w *WAL) waitDurable(lsn int64) error {
	if !w.sync || lsn == 0 {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	for w.syncedLSN < lsn {
		if w.syncErr != nil {
			return w.syncErr
		}
		if w.f == nil {
			return fmt.Errorf("engine: wal closed before commit %d was durable", lsn)
		}
		if w.syncing {
			w.cond.Wait()
			continue
		}
		w.syncing = true
		target := w.lsn // every frame appended so far rides this fsync
		durableTarget := w.durableAppended
		f := w.f
		w.mu.Unlock()
		err := f.Sync()
		w.mu.Lock()
		w.syncing = false
		if err != nil {
			// The batch is not known durable and fsync failures are not
			// retryable (the page cache may already have dropped the dirty
			// pages): poison the WAL so no later commit can be acknowledged,
			// and fail every current waiter.
			return w.poisonLocked(fmt.Errorf("engine: wal sync: %w", err))
		}
		if target > w.syncedLSN {
			w.groupSyncs++
			w.groupRecords += durableTarget - w.durableSynced
			w.durableSynced = durableTarget
			w.syncedLSN = target
			w.notifyLocked()
		}
		w.cond.Broadcast()
	}
	return nil
}

// append is the frame-then-wait composition for callers that can block with
// their locks held (DDL, which is rare and already serialized on db.mu).
// DML commits instead append under their statement lock and wait after
// releasing it, so concurrent writers on one table still share fsyncs.
func (w *WAL) append(rec *WALRecord, durable bool) error {
	lsn, err := w.appendFrame(rec, durable)
	if err != nil {
		return err
	}
	if durable {
		return w.waitDurable(lsn)
	}
	return nil
}

// groupCommitStats reports completed group-commit fsyncs and the records
// they covered (the fsync-amortization gauge).
func (w *WAL) groupCommitStats() (syncs, records int64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.groupSyncs, w.groupRecords
}

// segName is the rotated-segment name for a log holding records up to lsn;
// zero-padding keeps lexical order equal to LSN order.
func segName(lsn int64) string {
	return fmt.Sprintf("wal-%020d%s", lsn, walSegSuffix)
}

// segLSN parses the upper LSN out of a rotated segment name.
func segLSN(name string) (int64, bool) {
	name = strings.TrimSuffix(name, walSegSuffix)
	name = strings.TrimPrefix(name, "wal-")
	v, err := strconv.ParseInt(name, 10, 64)
	return v, err == nil
}

// rotate renames the live log to an LSN-stamped segment and starts a fresh
// one. The caller holds the commit barrier exclusively, so no append can
// race the swap.
func (w *WAL) rotate() (segment string, err error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.broken {
		return "", w.poisonedErrLocked()
	}
	if err := w.f.Sync(); err != nil {
		// Same rule as the group-commit path: a failed fsync means frames
		// behind the watermark are not known durable.
		return "", w.poisonLocked(fmt.Errorf("engine: wal rotate: %w", err))
	}
	if err := w.f.Close(); err != nil {
		return "", w.poisonLocked(fmt.Errorf("engine: wal rotate: %w", err))
	}
	dir := filepath.Dir(w.path)
	segment = filepath.Join(dir, segName(w.lsn))
	if err := fault.Rename("checkpoint.rename", w.path, segment); err != nil {
		// The live file is already closed; without a successful rename +
		// fresh log there is nothing to append to.
		return "", w.poisonLocked(fmt.Errorf("engine: wal rotate: %w", err))
	}
	nw, err := createWAL(w.path, w.sync, w.lsn)
	if err != nil {
		return "", w.poisonLocked(fmt.Errorf("engine: wal rotate: %w", err))
	}
	w.f, w.size = nw.f, nw.size
	// The pre-rotation Sync covered every frame in the old file.
	w.syncedLSN = w.lsn
	w.durableSynced = w.durableAppended
	w.cond.Broadcast()
	w.notifyLocked()
	return segment, nil
}

func (w *WAL) close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	err := w.f.Sync()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		w.syncedLSN = w.lsn
		w.durableSynced = w.durableAppended
	} else {
		// A failed final sync means frames behind the watermark are not
		// known durable: poison the WAL so any commit still racing toward
		// its durability wait errors instead of acking.
		w.poisonLocked(fmt.Errorf("engine: wal close: %w", err))
	}
	w.f = nil
	w.cond.Broadcast()
	w.notifyLocked()
	return err
}

// RecoveryInfo summarizes what boot-time recovery found and did.
type RecoveryInfo struct {
	SnapshotLoaded bool          // a snapshot file existed and was restored
	Segments       int           // WAL files replayed (segments + live log)
	Records        int           // records applied (after LSN skip)
	Skipped        int           // records the snapshot already covered
	TornTail       bool          // the last file ended in a torn record
	LSN            int64         // highest LSN after recovery
	Duration       time.Duration // wall time of the whole recovery
}

// OpenDirDB opens (or initializes) a durable database directory: it loads
// the latest snapshot, replays surviving WAL records in LSN order,
// consolidates the result into a fresh snapshot (so a crash loop cannot
// accumulate unbounded replay work), and attaches a fresh write-ahead log
// for subsequent commits. syncWAL selects the per-commit fsync policy.
func OpenDirDB(dir string, syncWAL bool) (*DB, RecoveryInfo, error) {
	start := time.Now()
	var info RecoveryInfo
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, info, fmt.Errorf("engine: open dir: %w", err)
	}
	db := NewDB()

	snapPath := filepath.Join(dir, snapshotFile)
	if f, err := os.Open(snapPath); err == nil {
		lerr := db.LoadSnapshot(f)
		_ = f.Close()
		if lerr != nil {
			return nil, info, fmt.Errorf("engine: recovering %s: %w", snapPath, lerr)
		}
		info.SnapshotLoaded = true
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, info, fmt.Errorf("engine: open dir: %w", err)
	}

	// Replay rotated segments in LSN order, then the live log. A torn tail
	// is tolerated only on the final file: a tear in an earlier segment
	// would leave a sequencing gap, which is corruption, not a crash.
	files, err := walFilesInOrder(dir)
	if err != nil {
		return nil, info, err
	}
	for i, path := range files {
		applied, skipped, torn, err := db.replayWALFile(path)
		if err != nil {
			return nil, info, fmt.Errorf("engine: replaying %s: %w", path, err)
		}
		info.Segments++
		info.Records += applied
		info.Skipped += skipped
		if torn {
			if i != len(files)-1 {
				return nil, info, fmt.Errorf("engine: wal segment %s is torn mid-sequence (corrupt data directory)", path)
			}
			info.TornTail = true
		}
	}
	info.LSN = db.replayLSN

	// Consolidate: fold whatever we replayed into a durable snapshot so the
	// old segments can be retired before new commits arrive.
	if len(files) > 0 {
		if err := writeSnapshotFile(snapPath, db.buildSnapshot()); err != nil {
			return nil, info, err
		}
		for _, path := range files {
			if err := os.Remove(path); err != nil {
				return nil, info, fmt.Errorf("engine: retiring %s: %w", path, err)
			}
		}
	}

	wal, err := createWAL(filepath.Join(dir, walFile), syncWAL, info.LSN)
	if err != nil {
		return nil, info, err
	}
	db.commitMu.Lock()
	db.wal = wal
	db.durDir = dir
	db.walSync = syncWAL
	db.commitMu.Unlock()
	// Everything at or below info.LSN is covered by the consolidated
	// snapshot (or by nothing, on a fresh directory where info.LSN is 0):
	// that is the shipping horizon until the next checkpoint moves it.
	db.walHorizon = info.LSN
	// A directory that never recorded an epoch (fresh, or written before
	// epochs existed) starts at generation 1; a directory that lived through
	// a promotion recovered its epoch from the snapshot or a WALEpoch frame.
	if db.epoch.Load() == 0 {
		db.epoch.Store(1)
	}
	info.Duration = time.Since(start)
	return db, info, nil
}

// walFilesInOrder lists the data directory's WAL files oldest-first:
// LSN-stamped segments, then the live log.
func walFilesInOrder(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("engine: open dir: %w", err)
	}
	var segs []string
	live := false
	for _, e := range entries {
		name := e.Name()
		if strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, walSegSuffix) {
			if _, ok := segLSN(name); ok {
				segs = append(segs, name)
			}
		}
		if name == walFile {
			live = true
		}
	}
	sort.Strings(segs) // zero-padded LSNs: lexical == numeric order
	out := make([]string, 0, len(segs)+1)
	for _, s := range segs {
		out = append(out, filepath.Join(dir, s))
	}
	if live {
		out = append(out, filepath.Join(dir, walFile))
	}
	return out, nil
}

// replayWALFile applies one log file's records to the database.
func (db *DB) replayWALFile(path string) (applied, skipped int, torn bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, false, err
	}
	defer func() { _ = f.Close() }()
	return db.replayWAL(f)
}

// ReplayWAL applies a WAL stream (header + frames) to the database,
// skipping records at or below the already-applied LSN — replaying the
// same log twice is a no-op. It reports the applied/skipped record counts
// and whether the stream ended in a torn record.
func (db *DB) ReplayWAL(r io.Reader) (applied, skipped int, torn bool, err error) {
	return db.replayWAL(r)
}

func (db *DB) replayWAL(r io.Reader) (applied, skipped int, torn bool, err error) {
	hdr := make([]byte, len(walHeader))
	if _, err := io.ReadFull(r, hdr); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return 0, 0, true, nil // an empty/torn header: nothing was ever logged
		}
		return 0, 0, false, err
	}
	if string(hdr) != walHeader {
		return 0, 0, false, fmt.Errorf("engine: not a WAL file (bad header)")
	}
	torn, err = ReadFrames(r, func(payload []byte) error {
		var rec WALRecord
		if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&rec); err != nil {
			return fmt.Errorf("engine: wal decode: %w", err)
		}
		if rec.LSN <= db.replayLSN {
			skipped++
			return nil
		}
		if err := db.applyWALRecord(&rec); err != nil {
			return err
		}
		applied++
		return nil
	})
	return applied, skipped, torn, err
}

// applyWALRecord re-executes one committed statement's physical effect
// through non-logging install primitives (which bump versions and record
// time-travel history exactly as the original commit did, but never write
// the WAL). Two callers share it: boot replay, single-threaded before the
// WAL is attached, and the replica apply path, where the frame was already
// appended verbatim at the leader's LSN — in both, re-logging would either
// double the record or assign it a divergent LSN.
func (db *DB) applyWALRecord(rec *WALRecord) error {
	switch rec.Kind {
	case WALCreate:
		if err := db.installCreate(rec.Table, rec.Schema); err != nil {
			return err
		}
	case WALDrop:
		if err := db.installDrop(rec.Table); err != nil {
			return err
		}
	case WALInsert:
		t, err := db.Table(rec.Table)
		if err != nil {
			return err
		}
		if err := t.AppendRows(rec.Rows); err != nil {
			return err
		}
	case WALReplace:
		t, err := db.Table(rec.Table)
		if err != nil {
			return err
		}
		if err := t.ReplaceColumns(rec.Cols); err != nil {
			return err
		}
	case WALLog:
		if rec.Entry == nil {
			return fmt.Errorf("engine: wal log record without entry (lsn %d)", rec.LSN)
		}
		db.mu.Lock()
		db.log = append(db.log, *rec.Entry)
		if rec.Entry.Seq > db.logSeq {
			db.logSeq = rec.Entry.Seq
		}
		db.mu.Unlock()
	case WALEpoch:
		// The epoch check precedes the LSN bookkeeping: a transition record
		// from a stale generation must never move this node's epoch backward.
		if rec.Epoch <= 0 {
			return fmt.Errorf("engine: wal epoch record without epoch (lsn %d)", rec.LSN)
		}
		if cur := db.epoch.Load(); rec.Epoch < cur {
			return fmt.Errorf("%w: wal epoch record %d below current epoch %d (lsn %d)", ErrStaleEpoch, rec.Epoch, cur, rec.LSN)
		} else if rec.Epoch > cur {
			db.epoch.Store(rec.Epoch)
			db.epochStart.Store(rec.LSN - 1)
		}
	default:
		return fmt.Errorf("engine: unknown wal record kind %d (lsn %d)", rec.Kind, rec.LSN)
	}
	db.replayLSN = rec.LSN
	return nil
}

// Checkpoint folds the write-ahead log into the snapshot: under the commit
// barrier it deep-copies the database state and rotates the live log, then
// (outside the barrier) writes the snapshot durably — temp file, fsync,
// atomic rename, directory fsync — and retires every folded segment. A
// crash at any point leaves a recoverable directory: until the rename
// lands, the old snapshot plus the rotated segments reconstruct the same
// state; after it, replay skips the folded records by LSN.
func (db *DB) Checkpoint() error {
	db.ckptMu.Lock()
	defer db.ckptMu.Unlock()
	db.commitMu.Lock()
	if db.wal == nil || db.durDir == "" {
		db.commitMu.Unlock()
		return fmt.Errorf("engine: Checkpoint requires a database opened with OpenDirDB")
	}
	snap := db.buildSnapshotLocked()
	_, err := db.wal.rotate()
	db.commitMu.Unlock()
	if err != nil {
		// A failed rotation poisons the WAL (the live file may already be
		// closed); make the degradation visible instead of just erroring.
		db.noteWALErr(err)
		return err
	}

	if err := writeSnapshotFile(filepath.Join(db.durDir, snapshotFile), snap); err != nil {
		return err
	}
	// Frames at or below snap.LSN are folded: followers behind this point
	// must bootstrap from the snapshot instead (ckptMu is held throughout,
	// so no ReadWALSince can observe the horizon ahead of the retirement).
	db.walHorizon = snap.LSN
	// The snapshot covers every rotated segment (snap.LSN >= their records);
	// the live log holds only newer commits.
	entries, err := os.ReadDir(db.durDir)
	if err != nil {
		return fmt.Errorf("engine: checkpoint: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, walSegSuffix) {
			continue
		}
		if lsn, ok := segLSN(name); ok && lsn <= snap.LSN {
			if err := os.Remove(filepath.Join(db.durDir, name)); err != nil {
				return fmt.Errorf("engine: checkpoint: %w", err)
			}
		}
	}
	return nil
}

// writeSnapshotFile writes a snapshot durably and atomically: temp file in
// the same directory, fsync, rename over the target, fsync the directory.
func writeSnapshotFile(path string, snap savedDB) error {
	dir := filepath.Dir(path)
	raw, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("engine: snapshot: %w", err)
	}
	tmp := fault.NewFile(raw, "snapshot")
	tmpName := raw.Name()
	fail := func(err error) error {
		_ = tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("engine: snapshot: %w", err)
	}
	if err := encodeSnapshot(tmp, snap); err != nil {
		return fail(err)
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("engine: snapshot: %w", err)
	}
	if err := fault.Rename("snapshot.rename", tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("engine: snapshot: %w", err)
	}
	// Make the rename itself durable; best-effort where the platform does
	// not support directory fsync, and a chaos schedule can fail it via
	// the snapshot.dirsync point.
	_ = fault.SyncDir("snapshot.dirsync", dir)
	return nil
}

// WALSizeBytes reports the live log's current size (a /metrics gauge).
func (db *DB) WALSizeBytes() int64 {
	db.commitMu.RLock()
	defer db.commitMu.RUnlock()
	if db.wal == nil {
		return 0
	}
	db.wal.mu.Lock()
	defer db.wal.mu.Unlock()
	return db.wal.size
}

// LastLSN reports the highest assigned log sequence number.
func (db *DB) LastLSN() int64 {
	db.commitMu.RLock()
	defer db.commitMu.RUnlock()
	if db.wal == nil {
		return db.replayLSN
	}
	db.wal.mu.Lock()
	defer db.wal.mu.Unlock()
	return db.wal.lsn
}

// CloseDurability flushes and closes the write-ahead log (final shutdown;
// typically preceded by a Checkpoint). The database remains usable but
// subsequent commits are no longer logged.
func (db *DB) CloseDurability() error {
	db.commitMu.Lock()
	defer db.commitMu.Unlock()
	if db.wal == nil {
		return nil
	}
	err := db.wal.close()
	db.retiredWAL = db.wal
	db.wal = nil
	return err
}

// walAppend logs one committed record, blocking for durability inline when
// durable is set (the DDL path; rare, already serialized on db.mu). Callers
// hold commitMu (read side) plus the lock that serializes writes to the
// touched state (t.writeMu for table data, db.mu for DDL and the query
// log), which also serializes the underlying file appends. No-op without an
// attached WAL.
func (db *DB) walAppend(rec *WALRecord, durable bool) error {
	if db.wal == nil {
		return nil
	}
	err := db.wal.append(rec, durable)
	db.noteWALErr(err)
	if err == nil && durable {
		// Quorum acks ride the DDL path inline (rare, already serialized):
		// the record is locally durable, now wait for follower acks.
		err = db.waitCommitGate(rec.LSN)
	}
	return err
}

// walAppendFrame frames one committed record without waiting for
// durability (the DML commit path: frame under the statement lock, wait
// after releasing it). No-op without an attached WAL.
func (db *DB) walAppendFrame(rec *WALRecord) error {
	if db.wal == nil {
		return nil
	}
	_, err := db.wal.appendFrame(rec, true)
	db.noteWALErr(err)
	return err
}

// walWaitDurable blocks until the frame at lsn is covered by a group-commit
// fsync; the statement must not be acknowledged before this returns nil.
// Holding the commit barrier in read mode here keeps checkpoint rotation
// from overlapping an in-flight leader fsync. A commit racing
// CloseDurability resolves against the retired WAL: the close's final sync
// either covered its frame (ack) or failed (the WAL is poisoned and the
// commit errors) — never a silent ack without a completed sync.
func (db *DB) walWaitDurable(lsn int64) error {
	if lsn == 0 {
		return nil
	}
	db.commitMu.RLock()
	w := db.wal
	if w == nil {
		w = db.retiredWAL
	}
	if w == nil {
		db.commitMu.RUnlock()
		return nil
	}
	err := w.waitDurable(lsn)
	db.noteWALErr(err)
	db.commitMu.RUnlock()
	if err != nil {
		return err
	}
	// The commit gate (quorum replication acks) runs OUTSIDE the commit
	// barrier: a slow follower must delay acks, not block checkpoints.
	return db.waitCommitGate(lsn)
}

// WALGroupCommitStats reports completed group-commit fsyncs and the records
// they covered; records/syncs is the live fsync-amortization factor
// exported as flock_wal_group_commit_batch.
func (db *DB) WALGroupCommitStats() (syncs, records int64) {
	db.commitMu.RLock()
	defer db.commitMu.RUnlock()
	if db.wal == nil {
		return 0, 0
	}
	return db.wal.groupCommitStats()
}
