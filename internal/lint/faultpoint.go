package lint

import (
	"go/ast"

	"repro/internal/lint/analysis"
)

// FaultPoint keeps the PR 6 chaos plane load-bearing: every mutating
// I/O operation on a durability file (WAL segments, checkpoints,
// snapshots, audit logs) must flow through the internal/fault wrappers
// — fault.File for writes/fsyncs, fault.Rename for atomic installs,
// fault.SyncDir for directory fsyncs — so a registered failpoint covers
// it. A raw *os.File write added to a commit path would be invisible to
// every fault-injection test in CI; this analyzer makes that a compile
// gate instead of a review hope.
var FaultPoint = &analysis.Analyzer{
	Name: "faultpoint",
	Doc: `durability I/O must pass through the fault plane

In internal/engine and internal/core, mutating calls on a raw *os.File
(Write, WriteString, WriteAt, Sync, Truncate) and direct os.Rename are
forbidden: wrap the handle in fault.NewFile and use fault.Rename /
fault.SyncDir so the chaos plane's failpoints cover the new I/O site.
Read-side use of os.File (Open/Read/Seek/Close) is fine.`,
	Run: runFaultPoint,
}

// mutatingFileMethods are the *os.File methods that alter on-disk state.
var mutatingFileMethods = map[string]bool{
	"Write":       true,
	"WriteString": true,
	"WriteAt":     true,
	"Sync":        true,
	"Truncate":    true,
}

func runFaultPoint(pass *analysis.Pass) (interface{}, error) {
	if !inScope(pass, "repro/internal/engine", "repro/internal/core") {
		return nil, nil
	}
	for _, file := range pass.Files {
		if testFile(pass.Fset, file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if full := funcFullName(pass.TypesInfo, call); full == "os.Rename" {
				pass.Reportf(call.Pos(), "direct os.Rename in durability code: use fault.Rename so the rename is a registered failpoint (fault-plane invariant, PR 6)")
				return true
			}
			name := calleeName(call)
			if !mutatingFileMethods[name] {
				return true
			}
			recv := recvExpr(call)
			if recv == nil {
				return true
			}
			if isPtrToNamed(pass.TypeOf(recv), "os", "File") {
				pass.Reportf(call.Pos(), "raw *os.File.%s in durability code: wrap the handle with fault.NewFile (or use fault.SyncDir for directory fsyncs) so the chaos plane covers this I/O site (fault-plane invariant, PR 6)", name)
			}
			return true
		})
	}
	return nil, nil
}
