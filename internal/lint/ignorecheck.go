package lint

import (
	"go/ast"

	"repro/internal/lint/analysis"
)

// IgnoreCheck keeps the suppression escape hatch auditable. The only
// way to silence another analyzer is
//
//	//flockvet:ignore <analyzer> <reason>
//
// and this analyzer rejects directives that name no known analyzer or
// carry no reason — a reason-less ignore is indistinguishable from a
// drive-by suppression and never takes effect anyway (the driver only
// honors well-formed directives).
var IgnoreCheck = &analysis.Analyzer{
	Name: "ignorecheck",
	Doc: `flockvet:ignore directives must name an analyzer and a reason

Malformed suppression directives are flagged: unknown analyzer names
catch typos (a misspelled ignore silently suppresses nothing), and
missing reasons make suppressions unauditable.`,
}

func init() { IgnoreCheck.Run = runIgnoreCheck }

func runIgnoreCheck(pass *analysis.Pass) (interface{}, error) {
	known := knownNames()
	for _, file := range pass.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				checkIgnoreComment(pass, known, c)
			}
		}
	}
	return nil, nil
}

func checkIgnoreComment(pass *analysis.Pass, known map[string]bool, c *ast.Comment) {
	d, ok := parseIgnoreComment(c)
	if !ok {
		return
	}
	switch {
	case d.analyzer == "":
		pass.Reportf(c.Pos(), "flockvet:ignore without an analyzer name: use //flockvet:ignore <analyzer> <reason>")
	case !known[d.analyzer]:
		pass.Reportf(c.Pos(), "flockvet:ignore names unknown analyzer %q: the directive suppresses nothing (known: ackaftersync, closecheck, ctxloop, faultpoint, ignorecheck, lockorder, retryidempotent)", d.analyzer)
	case d.reason == "":
		pass.Reportf(c.Pos(), "flockvet:ignore %s without a reason: suppressions must be auditable — state why the invariant does not apply here", d.analyzer)
	}
}
