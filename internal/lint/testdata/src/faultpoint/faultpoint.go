// Fixture for the faultpoint analyzer: mutating durability I/O must go
// through the fault plane's wrappers so failpoints cover every site.
package faultpoint_fixture

import (
	"os"

	"repro/internal/fault"
)

// Raw mutating calls on *os.File: invisible to every chaos schedule.
func badRawWrites(f *os.File, b []byte) error {
	if _, err := f.Write(b); err != nil { // want `raw \*os\.File\.Write in durability code`
		return err
	}
	if _, err := f.WriteString("x"); err != nil { // want `raw \*os\.File\.WriteString in durability code`
		return err
	}
	if err := f.Sync(); err != nil { // want `raw \*os\.File\.Sync in durability code`
		return err
	}
	return f.Truncate(0) // want `raw \*os\.File\.Truncate in durability code`
}

// Direct rename bypasses the rename failpoints.
func badRename(tmp, dst string) error {
	return os.Rename(tmp, dst) // want `direct os\.Rename in durability code`
}

// The same operations through the fault plane are the approved form.
func goodWrapped(raw *os.File, b []byte, tmp, dst string) error {
	f := fault.NewFile(raw, "seg")
	if _, err := f.Write(b); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	if err := fault.Rename("seg.rename", tmp, dst); err != nil {
		return err
	}
	return fault.SyncDir("seg.dirsync", ".")
}

// Read-side use of os.File never needs a failpoint.
func goodReads(f *os.File, b []byte) error {
	if _, err := f.Read(b); err != nil {
		return err
	}
	_, err := f.Seek(0, 0)
	return err
}
