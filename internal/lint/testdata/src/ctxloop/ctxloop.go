// Fixture for the ctxloop analyzer: loops that must poll ctx, and the
// loop shapes that legitimately need not.
package ctxloop_fixture

import (
	"context"
	"net/http"
	"time"
)

func work(ctx context.Context, n int) error { return nil }

// Unbounded loop with ctx in scope and no checkpoint: the PR 2/3 bug.
func badSpin(ctx context.Context) {
	for { // want `loop does not poll ctx`
		compute()
	}
}

// Sleep-poll loop that ignores its context.
func badSleepPoll(ctx context.Context, ready func() bool) {
	for !ready() { // want `loop does not poll ctx`
		time.Sleep(10 * time.Millisecond)
	}
}

// Even a bounded range loop must checkpoint once it sleeps.
func badRangeSleep(ctx context.Context, batches []int) {
	for range batches { // want `loop does not poll ctx`
		time.Sleep(time.Millisecond)
	}
}

// Handler with a request in scope: r.Context() is available and unused.
func badHandler(w http.ResponseWriter, r *http.Request) {
	for { // want `loop does not poll ctx`
		compute()
	}
}

// ctx.Err() poll is a checkpoint.
func goodErrPoll(ctx context.Context) error {
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		compute()
	}
}

// Selecting on Done is a checkpoint.
func goodSelect(ctx context.Context) {
	for {
		select {
		case <-ctx.Done():
			return
		case <-time.After(time.Millisecond):
		}
	}
}

// Passing ctx into the loop body hands cancellation to the callee.
func goodFlowsToCallee(ctx context.Context, batches []int) error {
	for i := range batches {
		if err := work(ctx, i); err != nil {
			return err
		}
		time.Sleep(time.Millisecond)
	}
	return nil
}

// The engine's shared checkpoint helper counts.
func goodCtxCheck(ctx context.Context) {
	for {
		if ctxCheck() != nil {
			return
		}
		compute()
	}
}

// A handler that selects on the request context.
func goodHandler(w http.ResponseWriter, r *http.Request) {
	for {
		select {
		case <-r.Context().Done():
			return
		default:
			compute()
		}
	}
}

// No context in scope: stop-channel loops are someone else's contract.
func goodNoCtx(stop chan struct{}) {
	for {
		select {
		case <-stop:
			return
		default:
			time.Sleep(time.Millisecond)
		}
	}
}

// The iterator-advance idiom: the cursor carries the query's context.
func goodIterator(ctx context.Context, it *iter) int {
	n := 0
	for it.Next() {
		n++
	}
	return n
}

// Bounded three-clause loops without sleeping are fine.
func goodBounded(ctx context.Context, n int) int {
	total := 0
	for i := 0; i < n; i++ {
		total += i
	}
	return total
}

func compute()        {}
func ctxCheck() error { return nil }

type iter struct{}

func (it *iter) Next() bool { return false }
