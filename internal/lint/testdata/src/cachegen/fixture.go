// Fixture for the cachegen analyzer: score-cache reads must be guarded by
// a model-generation comparison, and every cache lookup/store must thread
// the current registry generation through.
package cachegen_fixture

type entry struct {
	gen   int64
	score float64
}

type cache struct {
	entries map[uint64]*entry
	hits    int64
	misses  int64
}

func (c *cache) lookup(hash uint64, gen int64) (float64, bool) {
	e, ok := c.entries[hash]
	if !ok {
		c.misses++
		return 0, false
	}
	if e.gen != gen {
		c.misses++
		return 0, false
	}
	c.hits++
	return e.score, true
}

func (c *cache) store(hash uint64, gen int64, score float64) {
	c.entries[hash] = &entry{gen: gen, score: score}
}

type registry struct{ gen int64 }

func (r *registry) Generation() int64 { return r.gen }

// Serving a hit with no generation comparison anywhere: a redeploy bumps
// the registry and this keeps answering with the displaced model.
func (c *cache) badHitNoGate(hash uint64) (float64, bool) {
	e, ok := c.entries[hash]
	if !ok {
		return 0, false
	}
	c.hits++ // want `cache hit served without a preceding model-generation comparison`
	return e.score, true
}

// The comparison exists but runs after the hit was already served.
func (c *cache) badGateTooLate(hash uint64, gen int64) (float64, bool) {
	e, ok := c.entries[hash]
	if !ok {
		return 0, false
	}
	c.hits++ // want `cache hit served without a preceding model-generation comparison`
	if e.gen != gen {
		return 0, false
	}
	return e.score, true
}

// Reading the cache without threading the generation in: the provider's
// guard has nothing current to compare against.
func badLookupNoGen(c *cache, hash uint64) float64 {
	if s, ok := c.lookupUnguarded(hash); ok { // a sibling that takes no gen
		return s
	}
	return 0
}

func (c *cache) lookupUnguarded(hash uint64) (float64, bool) {
	e, ok := c.entries[hash]
	if !ok {
		return 0, false
	}
	c.hits++ // want `cache hit served without a preceding model-generation comparison`
	return e.score, true
}

// Stamping an entry with a constant instead of the registry generation:
// the entry can never be revalidated.
func badStoreConstant(scoreCache *cache, hash uint64, score float64) {
	scoreCache.store(hash, 0, score) // want `store on a score cache without a generation argument`
}

// The required shape: capture the generation once, thread it through both
// the read and the write.
func goodGuardedFlow(c *cache, r *registry, hash uint64, score float64) float64 {
	gen := r.Generation()
	if s, ok := c.lookup(hash, gen); ok {
		return s
	}
	c.store(hash, gen, score)
	return score
}
