// Fixture for the ignorecheck analyzer: suppression directives must
// name a real analyzer and carry a reason.
package ignorecheck_fixture

// A bare directive names nothing and suppresses nothing.
//flockvet:ignore
// want `flockvet:ignore without an analyzer name`

// A typoed analyzer silently suppresses nothing — flag it.
//flockvet:ignore closechek fd owned by caller
// want `names unknown analyzer "closechek"`

// A known analyzer without a reason is unauditable.
//flockvet:ignore ctxloop
// want `flockvet:ignore ctxloop without a reason`

// The well-formed shape passes.
//flockvet:ignore closecheck descriptor ownership documented at the open site

func placeholder() {}
