// Fixture for the ackaftersync analyzer: the LSN returned by a commit
// append must be awaited durable or handed to the caller, and WAL fsync
// errors must reach the poison machinery.
package ackaftersync_fixture

import "os"

type db struct{}

func (d *db) commitAppend(rows int) (int64, error)  { return 1, nil }
func (d *db) commitReplace(rows int) (int64, error) { return 1, nil }
func (d *db) walWaitDurable(lsn int64) error        { return nil }

// Acking before the frame is durable: the classic lost-commit bug.
func (d *db) badAckEarly(rows int) error {
	lsn, err := d.commitAppend(rows) // want `neither awaited durable nor returned`
	_ = lsn
	return err
}

// Dropping the LSN entirely is the same bug.
func (d *db) badDropLSN(rows int) {
	d.commitReplace(rows) // want `neither awaited durable nor returned`
}

// Waiting for durability before acking discharges the obligation.
func (d *db) goodWait(rows int) error {
	lsn, err := d.commitAppend(rows)
	if err != nil {
		return err
	}
	return d.walWaitDurable(lsn)
}

// Returning the LSN delegates the wait to the caller (the locked-helper
// pattern: append under writeMu, wait after release).
func (d *db) goodReturnLSN(rows int) (int64, error) {
	lsn, err := d.commitAppend(rows)
	return lsn, err
}

// Forwarding the call's results directly also delegates.
func (d *db) goodForward(rows int) (int64, error) {
	return d.commitReplace(rows)
}

// --- fsync-error half ---

type poisonWAL struct {
	f       *os.File
	syncErr error
}

func (w *poisonWAL) poisonLocked(err error) { w.syncErr = err }

// Error routed into poison: acceptable.
func (w *poisonWAL) goodSync() error {
	if err := w.f.Sync(); err != nil {
		w.poisonLocked(err)
		return err
	}
	return nil
}

type leakyWAL struct {
	f *os.File
}

// Sync error returned but the WAL never poisoned: the next append would
// happily ack on top of un-durable frames.
func (w *leakyWAL) badSync() error {
	if err := w.f.Sync(); err != nil { // want `never reaches poison/rewind`
		return err
	}
	return nil
}

// Non-WAL types are outside this rule (plain files fsync freely).
type spoolFile struct {
	f *os.File
}

func (s *spoolFile) flush() error {
	if err := s.f.Sync(); err != nil {
		return err
	}
	return nil
}
