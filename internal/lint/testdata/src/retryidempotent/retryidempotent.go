// Fixture for the retryidempotent analyzer: no static call path from an
// Exec method may reach the SDK's retry machinery (for-loops consulting
// IsTransient).
package retryidempotent_fixture

import "errors"

var errTransient = errors.New("transient")

// IsTransient is the transient-error classifier; a for-loop consulting
// it is, structurally, a retry loop.
func IsTransient(err error) bool { return errors.Is(err, errTransient) }

type client struct{}

func (c *client) post(path string) error { return nil }

// postIdem is the retry loop: only idempotent calls may route here.
func (c *client) postIdem(path string) error {
	var err error
	for attempt := 0; attempt < 3; attempt++ {
		err = c.post(path)
		if err == nil || !IsTransient(err) {
			return err
		}
	}
	return err
}

// Query is idempotent: retrying it is the point of postIdem.
func (c *client) Query(q string) error {
	return c.postIdem("/query?" + q)
}

// Exec through the retry loop double-applies lost-response writes.
func (c *client) Exec(stmt string) error { // want `Exec reaches retry machinery via Exec -> postIdem`
	return c.postIdem("/exec?" + stmt)
}

type stmt struct {
	c *client
}

// A transitive path (Exec -> run -> postIdem) is still a path.
func (s *stmt) run(q string) error { return s.c.postIdem(q) }

func (s *stmt) Exec(q string) error { // want `Exec reaches retry machinery via Exec -> run -> postIdem`
	return s.run(q)
}

type direct struct {
	c *client
}

// An Exec that posts once, without retry machinery, is the legal shape.
func (d *direct) Exec(stmt string) error {
	return d.c.post("/exec?" + stmt)
}
