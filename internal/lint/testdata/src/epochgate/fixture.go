// Fixture for the epochgate analyzer: replication code must gate on the
// leadership epoch before trusting any LSN, and apply/ack sinks must sit
// behind an epoch gate.
package epochgate_fixture

type db struct{ epoch int64 }

func (d *db) Epoch() int64                            { return d.epoch }
func (d *db) ApplyReplicated(p []byte) (int64, error) { return 0, nil }
func (d *db) BootstrapReplica(b []byte) error         { return nil }

type leader struct{ db *db }

func (l *leader) recordAck(id string, lsn int64) {}

type shipReq struct {
	Epoch   int64
	FromLSN int64
}

// Applying shipped frames with no epoch gate anywhere: a deposed
// leader's stream is applied as if it were live.
func (d *db) badApplyNoGate(frames [][]byte, applied int64) {
	for _, p := range frames {
		if lsn, _ := d.ApplyReplicated(p); lsn > applied { // want `without a preceding epoch gate`
			applied = lsn
		}
	}
}

// The gate exists but runs after the frames already applied: too late.
func (d *db) badGateTooLate(frames [][]byte, remote int64) bool {
	for _, p := range frames {
		_, _ = d.ApplyReplicated(p) // want `without a preceding epoch gate`
	}
	return remote < d.epoch
}

// Checking the LSN window before the epoch: a stale-epoch request whose
// LSNs happen to look plausible slips through the first check.
func (l *leader) badLSNFirst(req shipReq) bool {
	if req.FromLSN > 100 { // want `LSN comparison precedes the epoch check`
		return false
	}
	if req.Epoch < l.db.epoch {
		return false
	}
	return true
}

// Counting an ack without ever looking at its epoch lets a stale
// follower satisfy the quorum of the wrong generation.
func (l *leader) badAckNoGate(req shipReq) {
	l.recordAck("f", req.FromLSN) // want `without a preceding epoch gate`
}

// Epoch gate first, then LSN bookkeeping and the sink: the required
// shape.
func (l *leader) goodGateFirst(req shipReq) bool {
	if req.Epoch < l.db.epoch {
		return false
	}
	if req.FromLSN > 100 {
		return false
	}
	l.recordAck("f", req.FromLSN)
	return true
}

// A centralized fence helper counts as the gate for its callers.
func (l *leader) fenceOnHigherEpoch(remote int64) bool { return remote > l.db.epoch }

func (l *leader) goodFenceHelper(req shipReq) {
	if l.fenceOnHigherEpoch(req.Epoch) {
		return
	}
	l.recordAck("f", req.FromLSN)
}

// Comparing an LSN against an epoch boundary is still an LSN check: it
// must come after the true epoch comparison (and here it does).
func (l *leader) goodBoundaryAfterGate(req shipReq, epochStart int64) bool {
	if req.Epoch != 0 && req.Epoch < l.db.epoch && req.FromLSN > epochStart {
		return true // diverged
	}
	return false
}

// An audited exception: the suppression carries its justification.
func (l *leader) suppressedLagReport(req shipReq) {
	//flockvet:ignore epochgate lag metrics read acks without gating; the caller fenced already
	l.recordAck("f", req.FromLSN)
}

// Pure LSN bookkeeping with no epoch in sight is out of the invariant's
// reach.
func lagFrames(last, acked int64) int64 {
	if acked > last {
		return 0
	}
	return last - acked
}
