// Fixture for the closecheck analyzer: Close/Sync errors on file
// handles must be handled, captured, or explicitly discarded — and the
// flockvet:ignore escape hatch must actually suppress.
package closecheck_fixture

import (
	"io"
	"os"

	"repro/internal/fault"
)

// Implicit discards: the error evaporates.
func badBareClose(f *os.File) {
	f.Close() // want `Close error on file handle silently discarded`
}

func badDeferClose(f *os.File) {
	defer f.Close() // want `deferred Close error on file handle silently discarded`
}

func badBareSync(f *fault.File) {
	f.Sync() // want `Sync error on file handle silently discarded`
}

// Handled, captured, and explicitly discarded forms all pass.
func goodHandled(f *os.File) error {
	if err := f.Close(); err != nil {
		return err
	}
	return nil
}

func goodCaptured(f *fault.File) error {
	err := f.Sync()
	return err
}

func goodExplicitDiscard(f *os.File) {
	_ = f.Close()
}

func goodDeferClosure(f *os.File) {
	defer func() { _ = f.Close() }()
}

// Non-file closers (response bodies, row sets) are out of scope.
func goodOtherCloser(rc io.ReadCloser) {
	defer rc.Close()
	rc.Close()
}

// A well-formed ignore directive suppresses the finding (and is the
// end-to-end test that the driver's filtering works).
func goodIgnored(f *os.File) {
	f.Close() //flockvet:ignore closecheck descriptor owned by the caller, which reports the error
}

// A reason-less directive does NOT suppress.
func badIgnoreWithoutReason(f *os.File) {
	f.Close() //flockvet:ignore closecheck
	// want `Close error on file handle silently discarded`
}
