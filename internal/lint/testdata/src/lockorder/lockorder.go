// Fixture for the lockorder analyzer: the writeMu-before-commitMu
// hierarchy and the no-durability-wait-under-writeMu rule.
package lockorder_fixture

import (
	"os"
	"sync"
)

type table struct {
	writeMu sync.Mutex
	rows    int
}

type db struct {
	commitMu sync.RWMutex
	wal      *os.File
}

func (d *db) walWaitDurable(lsn int64) error { return nil }

// Inverted order: taking a writeMu inside the commit barrier deadlocks
// against commitMu.Lock() on the barrier side.
func (d *db) badInverted(t *table) {
	d.commitMu.RLock()
	t.writeMu.Lock() // want `writeMu acquired while holding commitMu`
	t.rows++
	t.writeMu.Unlock()
	d.commitMu.RUnlock()
}

// Blocking on durability while holding writeMu defeats group commit:
// every other writer on this table stalls for the fsync.
func (d *db) badWaitUnder(t *table) error {
	t.writeMu.Lock()
	err := d.walWaitDurable(7) // want `walWaitDurable called while holding writeMu`
	t.writeMu.Unlock()
	return err
}

// defer Unlock keeps the lock held to the end of the function, so the
// durability wait below is still under writeMu.
func (d *db) badWaitUnderDefer(t *table) error {
	t.writeMu.Lock()
	defer t.writeMu.Unlock()
	t.rows++
	return d.walWaitDurable(9) // want `walWaitDurable called while holding writeMu`
}

// A raw fsync is a durability wait too.
func (d *db) badSyncUnder(t *table) error {
	t.writeMu.Lock()
	defer t.writeMu.Unlock()
	return d.wal.Sync() // want `Sync called while holding writeMu`
}

// The legal shape: writeMu outer, commitMu.RLock inner, durability wait
// only after writeMu is released.
func (d *db) goodCommit(t *table) error {
	t.writeMu.Lock()
	d.commitMu.RLock()
	t.rows++
	d.commitMu.RUnlock()
	t.writeMu.Unlock()
	return d.walWaitDurable(11)
}

// Holding only commitMu while waiting is fine — that is the barrier's
// own job.
func (d *db) goodWaitUnderCommit() error {
	d.commitMu.RLock()
	defer d.commitMu.RUnlock()
	return d.walWaitDurable(13)
}
