package lint

import (
	"go/ast"

	"repro/internal/lint/analysis"
)

// LockOrder enforces the PR 4 group-commit lock hierarchy. The commit
// path takes a table's writeMu first and the DB-wide commitMu (read
// side) inside it — commitAppend/commitReplace run under the caller's
// writeMu. Two things must therefore never happen:
//
//  1. acquiring a writeMu while commitMu is held (inverted order —
//     deadlocks against the commit barrier's commitMu.Lock()), and
//  2. blocking on durability (waitDurable/walWaitDurable/SyncWALTo, or
//     an fsync on a durability file) while holding a writeMu — group
//     commit exists precisely so writers release writeMu before they
//     wait for the disk.
//
// The analysis is an in-order scan of each function body tracking which
// of the two mutex families is held; `defer Unlock` keeps the lock held
// for the remainder of the function, as it does at runtime.
var LockOrder = &analysis.Analyzer{
	Name: "lockorder",
	Doc: `commit-barrier lock ordering and no-durability-under-writeMu

writeMu is the outer lock, commitMu the inner: never acquire a writeMu
while holding commitMu, and never block on durability (waitDurable,
walWaitDurable, SyncWALTo, or a file Sync) while holding a writeMu.`,
	Run: runLockOrder,
}

func runLockOrder(pass *analysis.Pass) (interface{}, error) {
	if !inScope(pass, "repro/internal/engine", "repro/internal/core") {
		return nil, nil
	}
	for _, file := range pass.Files {
		if testFile(pass.Fset, file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			scanLockOrder(pass, fd.Body)
		}
	}
	return nil, nil
}

// mutex families, identified by field/variable name.
const (
	muWrite  = "writeMu"
	muCommit = "commitMu"
)

func lockFamily(recv ast.Expr) string {
	switch x := recv.(type) {
	case *ast.Ident:
		if x.Name == muWrite || x.Name == muCommit {
			return x.Name
		}
	case *ast.SelectorExpr:
		if x.Sel.Name == muWrite || x.Sel.Name == muCommit {
			return x.Sel.Name
		}
	}
	return ""
}

func scanLockOrder(pass *analysis.Pass, body *ast.BlockStmt) {
	held := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			// Closures run on their own goroutine/time; analyze their
			// bodies independently rather than under the current holds.
			scanLockOrder(pass, x.Body)
			return false
		case *ast.DeferStmt:
			// `defer mu.Unlock()` releases at return — the lock stays
			// held for everything that follows in source order, so the
			// scan must not clear it here. Other deferred calls are
			// scanned normally.
			if call := x.Call; call != nil {
				name := calleeName(call)
				if (name == "Unlock" || name == "RUnlock") && recvExpr(call) != nil && lockFamily(recvExpr(call)) != "" {
					return false
				}
			}
			return true
		case *ast.CallExpr:
			name := calleeName(x)
			recv := recvExpr(x)
			fam := ""
			if recv != nil {
				fam = lockFamily(recv)
			}
			switch name {
			case "Lock", "RLock":
				if fam == muWrite {
					if held[muCommit] {
						pass.Reportf(x.Pos(), "writeMu acquired while holding commitMu: the lock order is writeMu before commitMu (group-commit barrier invariant, PR 4)")
					}
					held[muWrite] = true
				} else if fam == muCommit {
					held[muCommit] = true
				}
			case "Unlock", "RUnlock":
				if fam != "" {
					delete(held, fam)
				}
			}
			if held[muWrite] && isDurabilityWait(pass, x) {
				pass.Reportf(x.Pos(), "%s called while holding writeMu: release writeMu before blocking on durability (group-commit invariant, PR 4)", name)
			}
		}
		return true
	})
}

// isDurabilityWait recognizes calls that block until bytes are on disk:
// the engine's durable-wait helpers by name, and fsync on a durability
// file handle by receiver type.
func isDurabilityWait(pass *analysis.Pass, call *ast.CallExpr) bool {
	switch calleeName(call) {
	case "waitDurable", "walWaitDurable", "WaitDurable", "SyncWALTo":
		return true
	case "Sync":
		if recv := recvExpr(call); recv != nil && isDurableFile(pass.TypeOf(recv)) {
			return true
		}
	}
	return false
}
