package lint

import (
	"go/token"
	"testing"

	"repro/internal/lint/load"
)

// TestFlockVetCleanOnTree is the meta-test backing the CI gate: the
// full invariant suite must run clean over every package in the module.
// When this fails, the same findings reproduce locally with
//
//	go run ./cmd/flock-vet ./...
//
// (or `make lint`). Fix the violation — or, when the invariant
// genuinely does not apply, suppress it with a reasoned
// //flockvet:ignore directive.
func TestFlockVetCleanOnTree(t *testing.T) {
	root, err := load.ModuleRoot(".")
	if err != nil {
		t.Fatalf("ModuleRoot: %v", err)
	}
	pkgs, err := load.Load(root, "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages — pattern ./... broken?", len(pkgs))
	}
	analyzers := Analyzers()
	if len(analyzers) < 7 {
		t.Fatalf("suite has %d analyzers, want >= 7", len(analyzers))
	}
	for _, pkg := range pkgs {
		findings, err := RunPackage(pkg, analyzers)
		if err != nil {
			t.Fatalf("%s: %v", pkg.PkgPath, err)
		}
		for _, f := range findings {
			t.Errorf("%s:%d:%d: %s (%s)", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Message, f.Analyzer)
		}
	}
}

// TestIgnoreDirectiveSuppression pins the driver's filtering rules
// beyond the fixture coverage: only well-formed directives for the
// right analyzer on the right line suppress.
func TestIgnoreDirectiveSuppression(t *testing.T) {
	idx := &ignoreIndex{byLine: map[string]map[int][]ignoreDirective{
		"f.go": {
			10: {{analyzer: "closecheck", reason: "caller owns fd"}},
			20: {{analyzer: "closecheck", reason: ""}},
			30: {{analyzer: "ctxloop", reason: "bounded by peer"}},
		},
	}}
	cases := []struct {
		analyzer string
		line     int
		want     bool
	}{
		{"closecheck", 10, true},  // same line
		{"closecheck", 11, true},  // directive on the line above
		{"closecheck", 12, false}, // too far away
		{"closecheck", 20, false}, // reason-less: never suppresses
		{"closecheck", 30, false}, // wrong analyzer
		{"ctxloop", 30, true},
	}
	for _, c := range cases {
		pos := tokenPosition("f.go", c.line)
		if got := idx.suppressed(c.analyzer, pos); got != c.want {
			t.Errorf("suppressed(%s, line %d) = %v, want %v", c.analyzer, c.line, got, c.want)
		}
	}
}

func tokenPosition(file string, line int) (p token.Position) {
	p.Filename = file
	p.Line = line
	return p
}
