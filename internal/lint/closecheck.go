package lint

import (
	"go/ast"

	"repro/internal/lint/analysis"
)

// CloseCheck forbids silently discarding Close/Sync errors on file
// handles (*os.File and *fault.File). On durability paths a dropped
// Close error can hide a failed flush of acked data; on read paths the
// discard must at least be explicit. Allowed forms:
//
//	if err := f.Close(); err != nil { ... }   // handled
//	err = f.Close()                           // captured
//	_ = f.Close()                             // explicit, auditable discard
//	defer func() { _ = f.Close() }()          // explicit discard in defer
//
// Flagged forms:
//
//	f.Close()          // implicit discard
//	defer f.Close()    // implicit discard at function exit
var CloseCheck = &analysis.Analyzer{
	Name: "closecheck",
	Doc: `Close/Sync errors on file handles may not be silently discarded

A bare f.Close() / f.Sync() statement or defer on an *os.File or
*fault.File drops the error on the floor. Handle it, capture it, or
discard it explicitly with _ = so the decision is visible in review.`,
	Run: runCloseCheck,
}

func runCloseCheck(pass *analysis.Pass) (interface{}, error) {
	if !inScope(pass, "repro") {
		return nil, nil
	}
	for _, file := range pass.Files {
		if testFile(pass.Fset, file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.ExprStmt:
				if call, ok := x.X.(*ast.CallExpr); ok {
					reportDiscardedClose(pass, call, false)
				}
			case *ast.DeferStmt:
				reportDiscardedClose(pass, x.Call, true)
			case *ast.GoStmt:
				reportDiscardedClose(pass, x.Call, true)
			}
			return true
		})
	}
	return nil, nil
}

func reportDiscardedClose(pass *analysis.Pass, call *ast.CallExpr, deferred bool) {
	name := calleeName(call)
	if name != "Close" && name != "Sync" {
		return
	}
	recv := recvExpr(call)
	if recv == nil || !isDurableFile(pass.TypeOf(recv)) {
		return
	}
	form := ""
	if deferred {
		form = "deferred "
	}
	pass.Reportf(call.Pos(), "%s%s error on file handle silently discarded: check it, or make the discard explicit with `_ = %s()` (durability errors surface at close/fsync time)", form, name, name)
}
