package lint

import (
	"go/ast"
	"strings"

	"repro/internal/lint/analysis"
)

// AckAfterSync enforces the PR 4 commit contract: appending a commit
// frame to the WAL does not make it durable — only waitDurable does.
// A function that calls commitAppend/commitReplace (which append the
// frame under writeMu and return its LSN) must either wait for that LSN
// to be durable before reporting success, or return the LSN so its
// caller inherits the obligation. Separately, WAL-method fsync error
// paths must reach the poison/rewind machinery: a swallowed fsync error
// is how acked data gets silently lost.
var AckAfterSync = &analysis.Analyzer{
	Name: "ackaftersync",
	Doc: `no success ack between WAL append and durable wait

Callers of commitAppend/commitReplace must call a waitDurable-family
helper before returning success, or return the LSN to delegate the
wait. WAL methods that observe an fsync error must route it into
poison/rewind (poisonLocked, noteWALErr, syncErr) rather than dropping
it.`,
	Run: runAckAfterSync,
}

func runAckAfterSync(pass *analysis.Pass) (interface{}, error) {
	if !inScope(pass, "repro/internal/engine", "repro/internal/core") {
		return nil, nil
	}
	for _, file := range pass.Files {
		if testFile(pass.Fset, file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkCommitWaits(pass, fd)
			checkSyncErrPoison(pass, fd)
		}
	}
	return nil, nil
}

// commitCallNames are the append-side commit helpers that return an LSN
// whose durability someone must await.
func isCommitAppendCall(call *ast.CallExpr) bool {
	switch calleeName(call) {
	case "commitAppend", "commitReplace":
		return true
	}
	return false
}

// checkCommitWaits flags commitAppend/commitReplace call sites in
// functions that neither wait for durability nor return the LSN.
func checkCommitWaits(pass *analysis.Pass, fd *ast.FuncDecl) {
	// Pass 1: find commit calls and the variables their LSN lands in.
	// `return db.commitAppend(...)` forwards the LSN directly and is a
	// legal delegation, so commit calls inside return statements are
	// collected as returns, not obligations.
	var commitCalls []*ast.CallExpr
	lsnVars := map[string]bool{}
	returnsLSN := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for _, rhs := range x.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !isCommitAppendCall(call) {
					continue
				}
				commitCalls = append(commitCalls, call)
				if len(x.Lhs) > 0 {
					if id, ok := x.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
						lsnVars[id.Name] = true
					}
				}
			}
			return true
		case *ast.ReturnStmt:
			for _, res := range x.Results {
				if call, ok := res.(*ast.CallExpr); ok && isCommitAppendCall(call) {
					returnsLSN = true
				}
			}
			return true
		case *ast.ExprStmt:
			if call, ok := x.X.(*ast.CallExpr); ok && isCommitAppendCall(call) {
				commitCalls = append(commitCalls, call)
			}
			return true
		}
		return true
	})

	if len(commitCalls) == 0 {
		return
	}

	// Pass 2: does the function discharge the durability obligation?
	waits := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			name := calleeName(x)
			if strings.Contains(name, "waitDurable") || strings.Contains(name, "WaitDurable") || name == "SyncWALTo" {
				waits = true
			}
		case *ast.ReturnStmt:
			for _, res := range x.Results {
				if id, ok := res.(*ast.Ident); ok && lsnVars[id.Name] {
					returnsLSN = true
				}
			}
		}
		return true
	})
	if waits || returnsLSN {
		return
	}
	for _, call := range commitCalls {
		pass.Reportf(call.Pos(), "%s appends a WAL frame but its LSN is neither awaited durable nor returned: call walWaitDurable(lsn) before acking, or return the LSN (ack-after-sync invariant, PR 4)", calleeName(call))
	}
}

// poisonRefNames are the identifiers whose presence shows an fsync
// error reached the WAL failure machinery.
var poisonRefNames = map[string]bool{
	"poisonLocked": true,
	"poison":       true,
	"rewind":       true,
	"noteWALErr":   true,
	"syncErr":      true,
	"broken":       true,
}

// checkSyncErrPoison flags WAL methods that check a file Sync error but
// never route it toward poison/rewind. Plain functions (like createWAL,
// which runs before a WAL exists) are exempt: the invariant binds
// methods operating on a live WAL.
func checkSyncErrPoison(pass *analysis.Pass, fd *ast.FuncDecl) {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return
	}
	recvName := receiverTypeName(fd)
	if !strings.HasSuffix(recvName, "WAL") {
		return
	}
	var syncChecked ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || calleeName(call) != "Sync" {
			return true
		}
		if recv := recvExpr(call); recv != nil && isDurableFile(pass.TypeOf(recv)) && syncChecked == nil {
			syncChecked = call
		}
		return true
	})
	if syncChecked == nil {
		return
	}
	reaches := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if reaches {
			return false
		}
		switch x := n.(type) {
		case *ast.Ident:
			if poisonRefNames[x.Name] {
				reaches = true
			}
		case *ast.SelectorExpr:
			if poisonRefNames[x.Sel.Name] {
				reaches = true
			}
		}
		return true
	})
	if !reaches {
		pass.Reportf(syncChecked.Pos(), "WAL method fsyncs but its error path never reaches poison/rewind (poisonLocked, noteWALErr, syncErr): a dropped fsync error silently un-durables acked commits (ack-after-sync invariant, PR 4)")
	}
}

func receiverTypeName(fd *ast.FuncDecl) string {
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}
