package analysis

import "fmt"

func sprintf(format string, args ...interface{}) string {
	if len(args) == 0 {
		return format
	}
	return fmt.Sprintf(format, args...)
}
