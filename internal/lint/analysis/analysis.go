// Package analysis is a minimal, dependency-free mirror of the
// golang.org/x/tools/go/analysis API surface that flock-vet's analyzers
// are written against. The container this repo builds in has no module
// proxy access, so rather than vendoring x/tools wholesale we implement
// the small subset the invariant suite needs: an Analyzer descriptor, a
// per-package Pass with type information, and positional Diagnostics.
// Analyzers written against this package port to the real go/analysis
// verbatim (same field and method names) if the dependency ever becomes
// available.
package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one invariant checker: a name (used in diagnostics
// and in //flockvet:ignore directives), documentation, and a Run
// function invoked once per type-checked package.
type Analyzer struct {
	// Name is the analyzer's identifier: lowercase, no spaces. It keys
	// ignore directives and CI output.
	Name string
	// Doc states the enforced invariant: first line is the summary, the
	// rest explains what flags and why (shown by flock-vet -help).
	Doc string
	// Run inspects one package and reports findings via pass.Report.
	// The returned value is ignored by this driver (the real go/analysis
	// uses it for inter-analyzer facts, which this suite does not need).
	Run func(*Pass) (interface{}, error)
}

// Pass carries one type-checked package through an analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Report delivers one finding. The driver applies //flockvet:ignore
	// filtering and output formatting.
	Report func(Diagnostic)
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf formats and reports a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: sprintf(format, args...)})
}

// TypeOf returns the type of expression e (nil when unknown), looking
// through the package's type info the same way go/analysis passes do.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if t := p.TypesInfo.TypeOf(e); t != nil {
		return t
	}
	return nil
}

// ObjectOf resolves an identifier to its object (nil when unknown).
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if o := p.TypesInfo.ObjectOf(id); o != nil {
		return o
	}
	return nil
}

// Inspect walks every file in the pass in depth-first order, calling f
// for each node; f returning false prunes the subtree (ast.Inspect
// semantics, extended over all files).
func (p *Pass) Inspect(f func(ast.Node) bool) {
	for _, file := range p.Files {
		ast.Inspect(file, f)
	}
}
