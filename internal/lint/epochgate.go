package lint

import (
	"go/ast"
	"go/token"
	"strings"

	"repro/internal/lint/analysis"
)

// EpochGate enforces the PR 9 failover contract: replication code must
// check leadership epochs before LSN positions. A stale-epoch stream can
// carry LSNs that look perfectly plausible — the old leader's log grew
// past the promotion point — so any code path that compares LSN windows
// first, or applies shipped state and records acks without an epoch gate
// at all, can graft a superseded lineage onto the live one.
var EpochGate = &analysis.Analyzer{
	Name: "epochgate",
	Doc: `epoch checks must precede LSN checks in replication code

Inside repro/internal/repl, a function that compares both epochs and
LSNs must perform the epoch comparison first, and a function that
reaches an apply/ack sink (ApplyReplicated, BootstrapReplica,
recordAck) must pass an epoch gate — an epoch comparison or a
fence/epoch helper call — before the sink (epoch-before-LSN invariant,
PR 9).`,
	Run: runEpochGate,
}

func runEpochGate(pass *analysis.Pass) (interface{}, error) {
	if !inScope(pass, "repro/internal/repl") {
		return nil, nil
	}
	for _, file := range pass.Files {
		if testFile(pass.Fset, file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkEpochBeforeLSN(pass, fd)
		}
	}
	return nil, nil
}

// replSinkNames are the calls through which shipped replication state
// takes effect: applying a frame, adopting a snapshot, counting an ack.
var replSinkNames = map[string]bool{
	"ApplyReplicated":  true,
	"BootstrapReplica": true,
	"recordAck":        true,
}

// exprMentions reports whether any identifier under e contains sub
// (case-insensitive): "lsn" matches FromLSN, AppliedLSN, lsn; "epoch"
// matches Epoch, respEpoch, EpochStart.
func exprMentions(e ast.Expr, sub string) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && strings.Contains(strings.ToLower(id.Name), sub) {
			found = true
		}
		return !found
	})
	return found
}

func isComparisonOp(op token.Token) bool {
	switch op {
	case token.EQL, token.NEQ, token.LSS, token.GTR, token.LEQ, token.GEQ:
		return true
	}
	return false
}

// checkEpochBeforeLSN walks one function and enforces both halves of the
// invariant. Classification: a comparison touching an LSN identifier is
// an LSN check even when the other side is epoch-derived (req.FromLSN >
// EpochStart() is LSN bookkeeping); a comparison touching only epoch
// identifiers is the epoch gate. Calls whose callee mentions epoch or
// fence (fenceOnHigherEpoch, Fence, Epoch) also count as the gate, so
// centralized helpers satisfy callers.
func checkEpochBeforeLSN(pass *analysis.Pass, fd *ast.FuncDecl) {
	firstEpochCmp := token.NoPos
	firstLSNCmp := token.NoPos
	firstGuard := token.NoPos // earliest epoch comparison or fence/epoch call
	var sinks []*ast.CallExpr
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.BinaryExpr:
			if !isComparisonOp(x.Op) {
				return true
			}
			mLSN := exprMentions(x, "lsn")
			mEpoch := exprMentions(x, "epoch")
			switch {
			case mEpoch && !mLSN:
				if !firstEpochCmp.IsValid() {
					firstEpochCmp = x.Pos()
				}
				if !firstGuard.IsValid() || x.Pos() < firstGuard {
					firstGuard = x.Pos()
				}
			case mLSN:
				if !firstLSNCmp.IsValid() {
					firstLSNCmp = x.Pos()
				}
			}
		case *ast.CallExpr:
			name := calleeName(x)
			if replSinkNames[name] {
				sinks = append(sinks, x)
				return true
			}
			lower := strings.ToLower(name)
			if strings.Contains(lower, "epoch") || strings.Contains(lower, "fence") {
				if !firstGuard.IsValid() || x.Pos() < firstGuard {
					firstGuard = x.Pos()
				}
			}
		}
		return true
	})

	if firstEpochCmp.IsValid() && firstLSNCmp.IsValid() && firstLSNCmp < firstEpochCmp {
		pass.Reportf(firstLSNCmp, "LSN comparison precedes the epoch check in %s: a stale-epoch stream with a plausible LSN window slips through — gate on the epoch first (epoch-before-LSN invariant, PR 9)", fd.Name.Name)
	}
	for _, sink := range sinks {
		if !firstGuard.IsValid() || firstGuard > sink.Pos() {
			pass.Reportf(sink.Pos(), "%s applies replicated state without a preceding epoch gate: compare epochs (or call a fence helper) before the sink, or a deposed leader's frames get applied (epoch-before-LSN invariant, PR 9)", calleeName(sink))
		}
	}
}
