package lint

import (
	"go/ast"
	"go/token"

	"repro/internal/lint/analysis"
)

// CacheGen enforces the PR 10 inference-plane contract: cached scores are
// only ever served under a model-generation guard. The score cache, like
// the plan cache, is revalidated rather than eagerly invalidated — a
// retrain or redeploy bumps the registry generation and the next read must
// notice. Code that serves a cache hit before comparing generations, or
// that reads/writes the cache without threading the current generation in
// at all, silently pins queries to a model that no longer exists.
var CacheGen = &analysis.Analyzer{
	Name: "cachegen",
	Doc: `score-cache reads must be guarded by a model-generation comparison

Inside repro/internal/infer, a function that serves a cache hit (bumps a
hit counter) must perform a generation comparison before doing so, and
every lookup/store call against a score cache must pass the current
registry generation as an argument — otherwise a retrain or redeploy
leaves stale scores serving as current (generation-guard invariant,
PR 10).`,
	Run: runCacheGen,
}

func runCacheGen(pass *analysis.Pass) (interface{}, error) {
	if !inScope(pass, "repro/internal/infer") {
		return nil, nil
	}
	for _, file := range pass.Files {
		if testFile(pass.Fset, file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkGenBeforeHit(pass, fd)
			checkCacheCallsCarryGen(pass, fd)
		}
	}
	return nil, nil
}

// checkGenBeforeHit enforces the provider half of the invariant: inside a
// function that serves cache hits (identified by a hit-counter increment,
// the idiomatic "this read was answered from cache" marker), a generation
// comparison must appear before the first hit is served. The comparison is
// any binary comparison mentioning a generation identifier ("gen" matches
// gen, e.gen, generation), and calls whose callee mentions "generation"
// (a registry read or a centralized guard helper) also count.
func checkGenBeforeHit(pass *analysis.Pass, fd *ast.FuncDecl) {
	firstGuard := token.NoPos
	var hits []token.Pos
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.BinaryExpr:
			if isComparisonOp(x.Op) && exprMentions(x, "gen") {
				if !firstGuard.IsValid() || x.Pos() < firstGuard {
					firstGuard = x.Pos()
				}
			}
		case *ast.CallExpr:
			if exprMentions(x.Fun, "generation") {
				if !firstGuard.IsValid() || x.Pos() < firstGuard {
					firstGuard = x.Pos()
				}
			}
		case *ast.IncDecStmt:
			if x.Tok == token.INC && exprMentions(x.X, "hit") {
				hits = append(hits, x.Pos())
			}
		}
		return true
	})
	for _, pos := range hits {
		if !firstGuard.IsValid() || firstGuard > pos {
			pass.Reportf(pos, "cache hit served without a preceding model-generation comparison in %s: a retrain or redeploy bumps the registry generation and this read would keep serving the displaced model's score — compare generations before serving (generation-guard invariant, PR 10)", fd.Name.Name)
		}
	}
}

// checkCacheCallsCarryGen enforces the consumer half: every lookup/store
// against a cache-named receiver must thread a generation argument, so the
// guard the provider performs actually compares against the caller's
// current generation rather than a constant or nothing.
func checkCacheCallsCarryGen(pass *analysis.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := calleeName(call)
		if name != "lookup" && name != "store" {
			return true
		}
		recv := recvExpr(call)
		if recv == nil || !exprMentions(recv, "cache") {
			return true
		}
		for _, arg := range call.Args {
			if exprMentions(arg, "gen") {
				return true
			}
		}
		pass.Reportf(call.Pos(), "%s on a score cache without a generation argument in %s: the read cannot be revalidated against the registry, so a retrain leaves it serving stale scores — pass the current generation (generation-guard invariant, PR 10)", name, fd.Name.Name)
		return true
	})
}
