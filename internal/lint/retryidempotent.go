package lint

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
)

// RetryIdempotent guards the SDK's retry contract from PR 7: transient
// failures may be retried only on idempotent calls (Query, Prepare,
// cursor fetches). Exec is not idempotent — an INSERT whose response
// was lost may have committed, and a blind retry double-applies it — so
// no static call path from an Exec method may reach the retry
// machinery.
//
// Retry machinery is recognized structurally rather than by name: any
// for-loop that consults IsTransient (the SDK's retryable-error
// classifier) is a retry loop. The analyzer then walks the
// package-internal call graph from every function or method named Exec
// and reports any path that reaches one.
var RetryIdempotent = &analysis.Analyzer{
	Name: "retryidempotent",
	Doc: `SDK retry loops must be unreachable from Exec paths

Exec is not idempotent; retry loops (for-loops consulting IsTransient)
must only wrap the idempotent call set. Any static call chain from a
function named Exec to a retry loop is an error.`,
	Run: runRetryIdempotent,
}

func runRetryIdempotent(pass *analysis.Pass) (interface{}, error) {
	if !inScope(pass, "repro/pkg/flockclient") {
		return nil, nil
	}

	// Collect package-local function declarations keyed by object.
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, file := range pass.Files {
		if testFile(pass.Fset, file.Pos()) {
			continue
		}
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				decls[obj] = fd
			}
		}
	}

	// Build the static call graph and the retry-loop set.
	callees := map[*types.Func][]*types.Func{}
	isRetry := map[*types.Func]bool{}
	for obj, fd := range decls {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if target := calleeObj(pass, call); target != nil {
					if _, local := decls[target]; local {
						callees[obj] = append(callees[obj], target)
					}
				}
			}
			return true
		})
		isRetry[obj] = hasRetryLoop(pass, fd)
	}

	// From every Exec, search for a reachable retry loop.
	for obj, fd := range decls {
		if obj.Name() != "Exec" {
			continue
		}
		if path := findRetryPath(obj, callees, isRetry, map[*types.Func]bool{}); path != nil {
			pass.Reportf(fd.Pos(), "%s reaches retry machinery via %s: Exec is not idempotent and must not be retried (SDK retry contract, PR 7)", describeFunc(obj), pathString(path))
		}
	}
	return nil, nil
}

// hasRetryLoop reports whether fd contains a for-loop that consults the
// transient-error classifier — the structural signature of the SDK's
// retry machinery.
func hasRetryLoop(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		var body *ast.BlockStmt
		switch loop := n.(type) {
		case *ast.ForStmt:
			body = loop.Body
		case *ast.RangeStmt:
			body = loop.Body
		default:
			return true
		}
		ast.Inspect(body, func(m ast.Node) bool {
			if call, ok := m.(*ast.CallExpr); ok {
				if name := calleeName(call); name == "IsTransient" || name == "isTransient" {
					found = true
					return false
				}
			}
			return true
		})
		return !found
	})
	return found
}

// calleeObj resolves a call to the *types.Func it invokes (nil for
// indirect calls, builtins, or conversions).
func calleeObj(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		id = fn
	case *ast.SelectorExpr:
		id = fn.Sel
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.ObjectOf(id).(*types.Func)
	return fn
}

// findRetryPath DFSes the call graph from fn and returns a call chain
// ending at a retry loop, or nil.
func findRetryPath(fn *types.Func, callees map[*types.Func][]*types.Func, isRetry map[*types.Func]bool, seen map[*types.Func]bool) []*types.Func {
	if seen[fn] {
		return nil
	}
	seen[fn] = true
	if isRetry[fn] {
		return []*types.Func{fn}
	}
	for _, c := range callees[fn] {
		if path := findRetryPath(c, callees, isRetry, seen); path != nil {
			return append([]*types.Func{fn}, path...)
		}
	}
	return nil
}

func describeFunc(fn *types.Func) string {
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return types.TypeString(sig.Recv().Type(), func(*types.Package) string { return "" }) + "." + fn.Name()
	}
	return fn.Name()
}

func pathString(path []*types.Func) string {
	s := ""
	for i, fn := range path {
		if i > 0 {
			s += " -> "
		}
		s += fn.Name()
	}
	return s
}
