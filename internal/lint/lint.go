// Package lint is flock-vet's invariant suite: custom analyzers that
// mechanically enforce the durability, concurrency, and resilience
// contracts PRs 2–7 established by hand. Each analyzer is grounded in a
// bug class a past PR fixed; docs/invariants.md catalogues the full set.
//
// Suppressions use an auditable escape hatch:
//
//	//flockvet:ignore <analyzer> <reason>
//
// placed on the flagged line or the line directly above. Directives
// without a reason (or naming no known analyzer) are themselves flagged
// by the ignorecheck analyzer, so every suppression carries its
// justification into review.
package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/load"
)

// Analyzers returns the full suite in deterministic order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		AckAfterSync,
		CacheGen,
		CloseCheck,
		CtxLoop,
		EpochGate,
		FaultPoint,
		IgnoreCheck,
		LockOrder,
		RetryIdempotent,
	}
}

// ByName resolves one analyzer (nil when unknown).
func ByName(name string) *analysis.Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// knownNames is the set ignore directives may reference.
func knownNames() map[string]bool {
	m := map[string]bool{}
	for _, a := range Analyzers() {
		m[a.Name] = true
	}
	return m
}

// Finding is one post-filter diagnostic ready for printing.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// RunPackage runs the given analyzers over one loaded package, applies
// //flockvet:ignore filtering, and returns the surviving findings.
func RunPackage(pkg *load.Package, analyzers []*analysis.Analyzer) ([]Finding, error) {
	ignores := collectIgnores(pkg.Fset, pkg.Files)
	var out []Finding
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
		}
		name := a.Name
		pass.Report = func(d analysis.Diagnostic) {
			pos := pkg.Fset.Position(d.Pos)
			if ignores.suppressed(name, pos) {
				return
			}
			out = append(out, Finding{Analyzer: name, Pos: pos, Message: d.Message})
		}
		if _, err := a.Run(pass); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// ignoreDirective is one parsed //flockvet:ignore comment.
type ignoreDirective struct {
	analyzer string // "" when malformed
	reason   string
	pos      token.Position
}

type ignoreIndex struct {
	// byLine maps file → line → directives on that line.
	byLine map[string]map[int][]ignoreDirective
	all    []ignoreDirective
}

const ignorePrefix = "//flockvet:ignore"

// collectIgnores parses every //flockvet:ignore directive in the files.
// Malformed directives are kept (for ignorecheck) but never suppress.
func collectIgnores(fset *token.FileSet, files []*ast.File) *ignoreIndex {
	idx := &ignoreIndex{byLine: map[string]map[int][]ignoreDirective{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d, ok := parseIgnoreComment(c)
				if !ok {
					continue
				}
				d.pos = fset.Position(c.Pos())
				idx.all = append(idx.all, d)
				if idx.byLine[d.pos.Filename] == nil {
					idx.byLine[d.pos.Filename] = map[int][]ignoreDirective{}
				}
				idx.byLine[d.pos.Filename][d.pos.Line] = append(idx.byLine[d.pos.Filename][d.pos.Line], d)
			}
		}
	}
	return idx
}

// parseIgnoreComment decodes one //flockvet:ignore comment; ok is
// false for unrelated comments. Missing analyzer/reason come back as
// empty strings — ignorecheck reports those, and suppression ignores
// them.
func parseIgnoreComment(c *ast.Comment) (ignoreDirective, bool) {
	if !strings.HasPrefix(c.Text, ignorePrefix) {
		return ignoreDirective{}, false
	}
	rest := strings.TrimPrefix(c.Text, ignorePrefix)
	fields := strings.Fields(rest)
	var d ignoreDirective
	if len(fields) >= 1 {
		d.analyzer = fields[0]
	}
	if len(fields) >= 2 {
		d.reason = strings.Join(fields[1:], " ")
	}
	return d, true
}

// suppressed reports whether a well-formed directive for analyzer sits
// on the diagnostic's line or the line directly above it.
func (idx *ignoreIndex) suppressed(analyzer string, pos token.Position) bool {
	lines := idx.byLine[pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, d := range lines[line] {
			if d.analyzer == analyzer && d.reason != "" {
				return true
			}
		}
	}
	return false
}

// --- shared analyzer helpers ---

// inScope restricts an analyzer to the module paths it guards, while
// always admitting its own analysistest fixture packages (package name
// "<analyzer>_fixture") so golden tests run without the real import
// paths.
func inScope(pass *analysis.Pass, prefixes ...string) bool {
	if pass.Pkg.Name() == pass.Analyzer.Name+"_fixture" {
		return true
	}
	path := pass.Pkg.Path()
	for _, p := range prefixes {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

// testFile reports whether the file holding pos is a _test.go file;
// the suite guards shipped code, not test scaffolding.
func testFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// isPtrToNamed reports whether t is *pkgPath.name.
func isPtrToNamed(t types.Type, pkgPath, name string) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// isDurableFile reports whether t is a durability file handle: *os.File
// or the fault plane's *fault.File wrapper (matched by type name so
// fixture packages can declare their own fault.File stand-in).
func isDurableFile(t types.Type) bool {
	if t == nil {
		return false
	}
	if isPtrToNamed(t, "os", "File") {
		return true
	}
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != "File" || obj.Pkg() == nil {
		return false
	}
	p := obj.Pkg().Path()
	return p == "repro/internal/fault" || strings.HasSuffix(p, "/fault") || obj.Pkg().Name() == "fault"
}

// calleeName returns the bare name of the function being called
// ("walWaitDurable", "Sync", ...) or "".
func calleeName(call *ast.CallExpr) string {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		return fn.Sel.Name
	}
	return ""
}

// recvExpr returns the receiver expression of a method-style call
// (x in x.Close()) or nil for plain calls.
func recvExpr(call *ast.CallExpr) ast.Expr {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		return sel.X
	}
	return nil
}

// funcFullName resolves a call to its fully-qualified callee
// ("time.Sleep", "os.Rename") when type info knows it, else "".
func funcFullName(info *types.Info, call *ast.CallExpr) string {
	var id *ast.Ident
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		id = fn
	case *ast.SelectorExpr:
		id = fn.Sel
	default:
		return ""
	}
	if fn, ok := info.ObjectOf(id).(*types.Func); ok {
		if fn.Pkg() != nil {
			return fn.Pkg().Path() + "." + fn.Name()
		}
		return fn.Name()
	}
	return ""
}
