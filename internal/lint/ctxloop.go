package lint

import (
	"go/ast"

	"repro/internal/lint/analysis"
)

// CtxLoop enforces the PR 2/3 cancellation contract: in the engine,
// replication, server, and command layers, any loop that can spin for a
// long time — an unbounded `for`/`for cond` loop, or any loop that
// sleeps — inside a function with a context in scope must give that
// context a chance to stop it. A checkpoint is a ctx.Err()/ctx.Done()
// poll, a select on a Done channel, a ctxCheck call, or passing the
// context into a callee (which then owns cancellation).
var CtxLoop = &analysis.Analyzer{
	Name: "ctxloop",
	Doc: `batch/poll loops must poll ctx

Unbounded loops and sleep loops in functions that have a context.Context
(or *http.Request) available must contain a cancellation checkpoint:
ctx.Err(), ctx.Done(), a select on Done, ctxCheck, or a call that the
context flows into. This is the PR 2/3 bug class where morsel loops and
long-poll tailers outlived their request.`,
	Run: runCtxLoop,
}

func runCtxLoop(pass *analysis.Pass) (interface{}, error) {
	if !inScope(pass, "repro/internal/engine", "repro/internal/repl", "repro/internal/server", "repro/cmd") {
		return nil, nil
	}
	for _, file := range pass.Files {
		if testFile(pass.Fset, file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkCtxLoops(pass, fd)
		}
	}
	return nil, nil
}

func checkCtxLoops(pass *analysis.Pass, fd *ast.FuncDecl) {
	if !hasCtxInScope(pass, fd) {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		var body *ast.BlockStmt
		trigger := false
		switch loop := n.(type) {
		case *ast.ForStmt:
			body = loop.Body
			// `for {}` and `for cond {}` are unbounded; three-clause
			// loops are bounded by their post condition and only count
			// when they sleep. The `for it.Next()` / `for sc.Scan()`
			// iterator idiom is exempt: the iterator was constructed
			// with the context and fails fast on cancellation.
			trigger = loop.Init == nil && loop.Post == nil && !isIteratorCond(loop.Cond)
		case *ast.RangeStmt:
			body = loop.Body
		default:
			return true
		}
		if !trigger && !containsSleep(pass, body) {
			return true
		}
		if containsSleep(pass, body) {
			trigger = true
		}
		if trigger && !hasCtxCheckpoint(pass, body) {
			pass.Reportf(n.Pos(), "loop does not poll ctx: add a ctx.Err()/ctx.Done() checkpoint, select on Done, or pass ctx to a callee (cancellation must reach batch and poll loops)")
			// Still descend: a nested loop may be a separate violation.
		}
		return true
	})
}

// hasCtxInScope reports whether the function can reach a context: a
// context.Context value (param or local) or an *http.Request param.
func hasCtxInScope(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	found := false
	ast.Inspect(fd, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Defs[id]
		if obj == nil {
			return true
		}
		if isContextType(obj.Type()) || isPtrToNamed(obj.Type(), "net/http", "Request") {
			found = true
			return false
		}
		return true
	})
	return found
}

// isIteratorCond recognizes a loop condition that is a bare method
// call (`for rs.Next()`, `for sc.Scan()`): the cursor/scanner advance
// idiom, where the iterator owns cancellation.
func isIteratorCond(cond ast.Expr) bool {
	call, ok := cond.(*ast.CallExpr)
	if !ok {
		return false
	}
	_, isMethod := call.Fun.(*ast.SelectorExpr)
	return isMethod
}

// containsSleep reports whether the block calls time.Sleep anywhere.
func containsSleep(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if funcFullName(pass.TypesInfo, call) == "time.Sleep" {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// hasCtxCheckpoint reports whether the loop body gives a context a
// chance to cancel the loop.
func hasCtxCheckpoint(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if x, ok := n.(*ast.CallExpr); ok {
			name := calleeName(x)
			// ctx.Err() / ctx.Done() / r.Context() polls.
			if name == "Err" || name == "Done" {
				if recv := recvExpr(x); recv != nil && isContextType(pass.TypeOf(recv)) {
					found = true
					return false
				}
			}
			if name == "Context" {
				if recv := recvExpr(x); recv != nil && isPtrToNamed(pass.TypeOf(recv), "net/http", "Request") {
					found = true
					return false
				}
			}
			// The engine's shared checkpoint helpers (free function and
			// the executor's method form).
			if name == "ctxCheck" || name == "checkCtx" {
				found = true
				return false
			}
			// Context handed to a callee: the callee owns cancellation.
			for _, arg := range x.Args {
				if isContextType(pass.TypeOf(arg)) {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}
