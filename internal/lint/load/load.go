// Package load type-checks Go packages for flock-vet without depending
// on golang.org/x/tools/go/packages (unavailable in the build
// environment). It shells out to `go list -export -deps -json` for
// package metadata and compiled export data — the same artifacts the
// go command hands to `go vet` — then parses and type-checks each
// target package from source, resolving every import through the
// export data via the standard library's gc importer.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked package ready for analysis.
type Package struct {
	PkgPath   string
	Dir       string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
	GoFiles   []string // absolute paths, parallel to Files
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Standard   bool
	DepOnly    bool
	Export     string
	GoFiles    []string
	ImportMap  map[string]string
	Module     *struct {
		Path      string
		GoVersion string
	}
	Error *struct {
		Err string
	}
}

// GoList runs `go list -e -deps -export -json` over patterns in dir and
// returns the decoded package stream.
func GoList(dir string, patterns ...string) ([]*listPkg, error) {
	args := append([]string{"list", "-e", "-deps", "-export", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	var pkgs []*listPkg
	dec := json.NewDecoder(out)
	for {
		p := new(listPkg)
		if err := dec.Decode(p); err != nil {
			if err == io.EOF {
				break
			}
			_ = cmd.Wait()
			return nil, fmt.Errorf("lint: decoding go list output: %w (stderr: %s)", err, stderr.String())
		}
		pkgs = append(pkgs, p)
	}
	if err := cmd.Wait(); err != nil {
		return nil, fmt.Errorf("lint: go list: %w (stderr: %s)", err, stderr.String())
	}
	return pkgs, nil
}

// Load type-checks the packages matching patterns (run from dir; "./..."
// is typical) and returns them ready for analysis. Test files are not
// loaded — flock-vet checks shipped code; the analyzers' own fixtures
// cover test-shaped idioms separately.
func Load(dir string, patterns ...string) ([]*Package, error) {
	listed, err := GoList(dir, patterns...)
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	goVersion := ""
	var targets []*listPkg
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if p.Error != nil && !p.DepOnly {
			return nil, fmt.Errorf("lint: %s: %s", p.ImportPath, p.Error.Err)
		}
		if !p.DepOnly && !p.Standard && len(p.GoFiles) > 0 {
			targets = append(targets, p)
			if goVersion == "" && p.Module != nil && p.Module.GoVersion != "" {
				goVersion = "go" + p.Module.GoVersion
			}
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	imp := NewImporter(fset, exports)
	var out []*Package
	for _, p := range targets {
		files := make([]string, len(p.GoFiles))
		for i, f := range p.GoFiles {
			files[i] = filepath.Join(p.Dir, f)
		}
		pkg, err := TypeCheck(fset, p.ImportPath, p.Dir, files, imp.ForPackage(p.ImportMap), goVersion)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// TypeCheck parses and type-checks one package from explicit source
// files, resolving imports through imp.
func TypeCheck(fset *token.FileSet, pkgPath, dir string, files []string, imp types.Importer, goVersion string) (*Package, error) {
	var syntax []*ast.File
	for _, f := range files {
		src, err := os.ReadFile(f)
		if err != nil {
			return nil, err
		}
		af, err := parser.ParseFile(fset, f, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: parse %s: %w", f, err)
		}
		syntax = append(syntax, af)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: imp, GoVersion: goVersion}
	tpkg, err := conf.Check(pkgPath, fset, syntax, info)
	if err != nil {
		return nil, fmt.Errorf("lint: typecheck %s: %w", pkgPath, err)
	}
	return &Package{
		PkgPath:   pkgPath,
		Dir:       dir,
		Fset:      fset,
		Files:     syntax,
		Types:     tpkg,
		TypesInfo: info,
		GoFiles:   files,
	}, nil
}

// Importer resolves import paths to compiled export data through
// the standard library's gc importer, with per-package source-path →
// canonical-path mapping (the vet.cfg ImportMap contract).
type Importer struct {
	gc      types.ImporterFrom
	exports map[string]string
}

func NewImporter(fset *token.FileSet, exports map[string]string) *Importer {
	m := &Importer{exports: exports}
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := m.exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(file)
	}
	m.gc = importer.ForCompiler(fset, "gc", lookup).(types.ImporterFrom)
	return m
}

// ForPackage returns a types.Importer applying pkg-specific import
// mapping before the shared export-data lookup.
func (m *Importer) ForPackage(importMap map[string]string) types.Importer {
	return importerFunc(func(path string) (*types.Package, error) {
		if mapped, ok := importMap[path]; ok {
			path = mapped
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return m.gc.ImportFrom(path, "", 0)
	})
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// ModuleRoot locates the enclosing module root of dir (the directory
// holding go.mod), for tests that need to run the loader from anywhere
// inside the repository.
func ModuleRoot(dir string) (string, error) {
	cmd := exec.Command("go", "env", "GOMOD")
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		return "", err
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		return "", fmt.Errorf("lint: not inside a module (dir %s)", dir)
	}
	return filepath.Dir(gomod), nil
}
