package load

import (
	"go/types"
	"testing"
)

// TestLoadEnginePackage exercises the full loader path — go list export
// data, the gc importer, and source type-checking — against a real
// package with non-trivial imports.
func TestLoadEnginePackage(t *testing.T) {
	root, err := ModuleRoot(".")
	if err != nil {
		t.Fatalf("ModuleRoot: %v", err)
	}
	pkgs, err := Load(root, "./internal/fault", "./internal/engine")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("got %d packages, want 2", len(pkgs))
	}
	byPath := map[string]*Package{}
	for _, p := range pkgs {
		byPath[p.PkgPath] = p
	}
	eng, ok := byPath["repro/internal/engine"]
	if !ok {
		t.Fatalf("engine package not loaded; got %v", keys(byPath))
	}
	if eng.Types == nil || !eng.Types.Complete() {
		t.Fatal("engine package types incomplete")
	}
	// Cross-package type resolution must work: the WAL's file handle is a
	// *fault.File, which only type-checks if the fault import resolved.
	wal, ok := eng.Types.Scope().Lookup("WAL").(*types.TypeName)
	if !ok {
		t.Fatal("WAL type not found in engine package")
	}
	st, ok := wal.Type().Underlying().(*types.Struct)
	if !ok {
		t.Fatalf("WAL is %T, want struct", wal.Type().Underlying())
	}
	found := false
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Name() == "f" {
			found = true
			if got := f.Type().String(); got != "*repro/internal/fault.File" {
				t.Fatalf("WAL.f type = %s, want *repro/internal/fault.File", got)
			}
		}
	}
	if !found {
		t.Fatal("WAL.f field not found")
	}
}

func keys(m map[string]*Package) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
