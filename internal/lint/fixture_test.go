package lint

// The analyzer golden tests: each analyzer has a fixture package under
// testdata/src/<name>/ (package name "<name>_fixture") annotated with
// analysistest-style expectations:
//
//	f.Close() // want `Close error .* silently discarded`
//
// A `// want` comment on its own line applies to the line above it (for
// cases, like ignore directives, where the flagged construct is itself
// a comment). Every want must be matched by a diagnostic on that line
// and every diagnostic must be wanted — both directions are errors.

import (
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/lint/analysis"
	"repro/internal/lint/load"
)

// fixtureExports lazily runs `go list -export` once for the repo and the
// stdlib packages fixtures import, shared across all fixture tests.
var fixtureExports struct {
	once sync.Once
	m    map[string]string
	root string
	err  error
}

func exportsForFixtures(t *testing.T) (string, map[string]string) {
	t.Helper()
	fixtureExports.once.Do(func() {
		root, err := load.ModuleRoot(".")
		if err != nil {
			fixtureExports.err = err
			return
		}
		fixtureExports.root = root
		pkgs, err := load.GoList(root, "os", "context", "time", "sync", "net/http", "io", "errors", "fmt", "./...")
		if err != nil {
			fixtureExports.err = err
			return
		}
		fixtureExports.m = map[string]string{}
		for _, p := range pkgs {
			if p.Export != "" {
				fixtureExports.m[p.ImportPath] = p.Export
			}
		}
	})
	if fixtureExports.err != nil {
		t.Fatalf("collecting export data: %v", fixtureExports.err)
	}
	return fixtureExports.root, fixtureExports.m
}

// wantRe matches `// want `regexp“ and `// want "regexp"` comments.
var wantRe = regexp.MustCompile("// want (?:`([^`]*)`|\"([^\"]*)\")")

type expectation struct {
	line int
	re   *regexp.Regexp
}

// runFixture loads testdata/src/<analyzer>/ and checks the analyzer's
// findings against the fixture's want annotations.
func runFixture(t *testing.T, a *analysis.Analyzer) {
	t.Helper()
	root, exports := exportsForFixtures(t)
	dir := filepath.Join(root, "internal", "lint", "testdata", "src", a.Name)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("fixture dir: %v", err)
	}
	var files []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	if len(files) == 0 {
		t.Fatalf("no fixture files in %s", dir)
	}

	// Collect expectations from the sources.
	expByFile := map[string][]expectation{}
	for _, f := range files {
		src, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(src), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			pat := m[1]
			if pat == "" {
				pat = m[2]
			}
			re, err := regexp.Compile(pat)
			if err != nil {
				t.Fatalf("%s:%d: bad want regexp: %v", f, i+1, err)
			}
			wantLine := i + 1
			if strings.HasPrefix(strings.TrimSpace(line), "// want ") {
				wantLine-- // standalone want: refers to the line above
			}
			expByFile[f] = append(expByFile[f], expectation{line: wantLine, re: re})
		}
	}

	fset := token.NewFileSet()
	imp := load.NewImporter(fset, exports)
	pkg, err := load.TypeCheck(fset, "testdata/"+a.Name, dir, files, imp.ForPackage(nil), "")
	if err != nil {
		t.Fatalf("typechecking fixture: %v", err)
	}
	findings, err := RunPackage(pkg, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	// Match findings to expectations.
	matched := map[*expectation]bool{}
	for _, f := range findings {
		exps := expByFile[f.Pos.Filename]
		ok := false
		for i := range exps {
			e := &exps[i]
			if e.line == f.Pos.Line && e.re.MatchString(f.Message) && !matched[e] {
				matched[e] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected finding at %s:%d: %s", filepath.Base(f.Pos.Filename), f.Pos.Line, f.Message)
		}
	}
	var missing []string
	for file, exps := range expByFile {
		for i := range exps {
			if !matched[&exps[i]] {
				missing = append(missing, fmt.Sprintf("%s:%d: want %q not reported", filepath.Base(file), exps[i].line, exps[i].re))
			}
		}
	}
	sort.Strings(missing)
	for _, m := range missing {
		t.Error(m)
	}
}

func TestCtxLoopFixture(t *testing.T)         { runFixture(t, CtxLoop) }
func TestLockOrderFixture(t *testing.T)       { runFixture(t, LockOrder) }
func TestAckAfterSyncFixture(t *testing.T)    { runFixture(t, AckAfterSync) }
func TestFaultPointFixture(t *testing.T)      { runFixture(t, FaultPoint) }
func TestCloseCheckFixture(t *testing.T)      { runFixture(t, CloseCheck) }
func TestRetryIdempotentFixture(t *testing.T) { runFixture(t, RetryIdempotent) }
func TestIgnoreCheckFixture(t *testing.T)     { runFixture(t, IgnoreCheck) }
func TestEpochGateFixture(t *testing.T)       { runFixture(t, EpochGate) }
func TestCacheGenFixture(t *testing.T)        { runFixture(t, CacheGen) }
