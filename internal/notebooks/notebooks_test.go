package notebooks

import (
	"testing"
	"testing/quick"
)

func TestExtractImports(t *testing.T) {
	src := `import numpy as np
from pandas.core import frame
import sklearn.linear_model
import numpy
x = 1
`
	got := ExtractImports(src)
	want := []string{"numpy", "pandas", "sklearn"}
	if len(got) != len(want) {
		t.Fatalf("imports = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("import[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestGenerateCorpusShape(t *testing.T) {
	c := Generate(Config{Label: "x", NumNotebooks: 500, NumPackages: 100, Alpha: 1.5, Seed: 1})
	if len(c.Notebooks) != 500 {
		t.Fatalf("notebooks = %d", len(c.Notebooks))
	}
	for _, nb := range c.Notebooks {
		if len(nb.Packages) < 2 {
			t.Fatal("notebook with fewer than 2 imports")
		}
		// Source round-trips through the extractor.
		ex := ExtractImports(nb.Source)
		if len(ex) != len(nb.Packages) {
			t.Fatalf("extractor mismatch: %v vs %v", ex, nb.Packages)
		}
	}
	// Zipf head: numpy must be the most popular package.
	if c.Popularity()[0] != "numpy" {
		t.Errorf("most popular = %s", c.Popularity()[0])
	}
}

func TestCoverageMonotone(t *testing.T) {
	c := Generate(Config{Label: "x", NumNotebooks: 2000, NumPackages: 300, Alpha: 1.5, Seed: 2})
	ks := []int{1, 5, 10, 50, 100, 300}
	cov := c.Coverage(ks)
	for i := 1; i < len(cov); i++ {
		if cov[i] < cov[i-1] {
			t.Fatalf("coverage not monotone: %v", cov)
		}
	}
	if cov[len(cov)-1] != 1.0 {
		t.Errorf("coverage at K=all packages = %v, want 1.0", cov[len(cov)-1])
	}
	if cov[0] > 0.1 {
		t.Errorf("coverage at K=1 = %v, implausibly high", cov[0])
	}
}

func TestFigure2Calibration(t *testing.T) {
	c2017 := Corpus2017()
	c2019 := Corpus2019()

	// "3x more packages" between the corpora.
	p17, p19 := c2017.DistinctPackages(), c2019.DistinctPackages()
	ratio := float64(p19) / float64(p17)
	if ratio < 2.4 || ratio > 3.6 {
		t.Errorf("package growth ratio = %.2f (%d -> %d), want ~3x", ratio, p17, p19)
	}

	// "Top10: ~5% more coverage" in 2019.
	cov17 := c2017.Coverage([]int{10})[0]
	cov19 := c2019.Coverage([]int{10})[0]
	delta := (cov19 - cov17) * 100
	if delta < 2 || delta > 10 {
		t.Errorf("top-10 coverage delta = %.1f points (%.1f%% -> %.1f%%), want ~5",
			delta, cov17*100, cov19*100)
	}

	// Both curves approach 1 at their tails.
	tail17 := c2017.Coverage([]int{1000})[0]
	tail19 := c2019.Coverage([]int{3000})[0]
	if tail17 < 0.999 || tail19 < 0.999 {
		t.Errorf("tail coverage: 2017=%v 2019=%v", tail17, tail19)
	}
}

// Property: coverage is monotone in K for arbitrary generated corpora.
func TestCoverageMonotoneProperty(t *testing.T) {
	f := func(seed uint16, alphaTenths uint8) bool {
		alpha := 1.1 + float64(alphaTenths%10)/10
		c := Generate(Config{
			Label: "p", NumNotebooks: 300, NumPackages: 150,
			Alpha: alpha, Seed: uint64(seed) + 1,
		})
		ks := []int{1, 2, 4, 8, 16, 32, 64, 150}
		cov := c.Coverage(ks)
		for i := 1; i < len(cov); i++ {
			if cov[i] < cov[i-1] {
				return false
			}
		}
		return cov[len(cov)-1] == 1.0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
