// Package notebooks reproduces the paper's GitHub notebook study
// (Figure 2): given a corpus of notebooks, what fraction would be
// completely supported if only the K most popular packages were covered?
//
// The original >4M-notebook crawl is unavailable, so the corpus is
// synthetic: package popularity follows a Zipf law (as observed in every
// package-ecosystem study), with the 2017 and 2019 corpora calibrated to
// the two shapes the paper annotates — 2019 has ~3x more packages in total
// (the field "still expanding quickly") while its head is more concentrated
// (numpy/pandas/sklearn "solidifying their position"), lifting top-10
// coverage by roughly five points.
package notebooks

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/ml"
)

// headPackages are the real-world names of the head of the distribution.
var headPackages = []string{
	"numpy", "pandas", "sklearn", "matplotlib", "scipy", "seaborn",
	"tensorflow", "keras", "xgboost", "torch", "statsmodels", "nltk",
	"plotly", "requests", "lightgbm", "gensim", "cv2", "pillow",
	"mlflow", "bokeh",
}

// Notebook is one corpus member: its source text (import lines) plus the
// extracted package set.
type Notebook struct {
	Source   string
	Packages []string
}

// Corpus is a labelled notebook collection.
type Corpus struct {
	Label     string
	Notebooks []Notebook
	NumPkgs   int
}

// Config controls corpus generation.
type Config struct {
	Label        string
	NumNotebooks int
	NumPackages  int
	// Alpha is the Zipf exponent; larger means a more concentrated head.
	Alpha float64
	// MaxImports bounds the imports per notebook (min is 2).
	MaxImports int
	Seed       uint64
}

// Generate builds a synthetic corpus under the config.
func Generate(cfg Config) *Corpus {
	if cfg.MaxImports < 2 {
		cfg.MaxImports = 10
	}
	r := ml.NewRand(cfg.Seed)
	// Precompute the Zipf CDF over package ranks.
	weights := make([]float64, cfg.NumPackages)
	var total float64
	for k := 0; k < cfg.NumPackages; k++ {
		weights[k] = 1 / math.Pow(float64(k+1), cfg.Alpha)
		total += weights[k]
	}
	cdf := make([]float64, cfg.NumPackages)
	acc := 0.0
	for k := range weights {
		acc += weights[k] / total
		cdf[k] = acc
	}
	sample := func() int {
		u := r.Float64()
		// Binary search the CDF.
		lo, hi := 0, cfg.NumPackages-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cdf[mid] < u {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return lo
	}

	c := &Corpus{Label: cfg.Label, NumPkgs: cfg.NumPackages}
	for i := 0; i < cfg.NumNotebooks; i++ {
		n := 2 + r.Intn(cfg.MaxImports-1)
		seen := map[int]bool{}
		var pkgs []string
		for len(pkgs) < n {
			k := sample()
			if seen[k] {
				continue
			}
			seen[k] = true
			pkgs = append(pkgs, pkgName(k))
		}
		var src strings.Builder
		for _, p := range pkgs {
			fmt.Fprintf(&src, "import %s\n", p)
		}
		c.Notebooks = append(c.Notebooks, Notebook{Source: src.String(), Packages: pkgs})
	}
	return c
}

func pkgName(rank int) string {
	if rank < len(headPackages) {
		return headPackages[rank]
	}
	return fmt.Sprintf("pkg_%04d", rank)
}

// ExtractImports parses a notebook's source and returns the imported
// package roots ("import a.b as c" and "from a.b import c" both yield "a").
func ExtractImports(source string) []string {
	seen := map[string]bool{}
	var out []string
	for _, line := range strings.Split(source, "\n") {
		line = strings.TrimSpace(line)
		var pkg string
		if strings.HasPrefix(line, "import ") {
			rest := strings.TrimPrefix(line, "import ")
			pkg = strings.FieldsFunc(rest, func(r rune) bool { return r == ' ' || r == '.' || r == ',' })[0]
		} else if strings.HasPrefix(line, "from ") {
			rest := strings.TrimPrefix(line, "from ")
			pkg = strings.FieldsFunc(rest, func(r rune) bool { return r == ' ' || r == '.' })[0]
		}
		if pkg != "" && !seen[pkg] {
			seen[pkg] = true
			out = append(out, pkg)
		}
	}
	return out
}

// Popularity returns package names ranked by how many notebooks import
// them (descending), with ties broken by name for determinism.
func (c *Corpus) Popularity() []string {
	counts := map[string]int{}
	for _, nb := range c.Notebooks {
		for _, p := range nb.Packages {
			counts[p]++
		}
	}
	names := make([]string, 0, len(counts))
	for n := range counts {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		if counts[names[i]] != counts[names[j]] {
			return counts[names[i]] > counts[names[j]]
		}
		return names[i] < names[j]
	})
	return names
}

// Coverage computes, for each requested K, the fraction of notebooks whose
// imports are fully contained in the top-K packages — Figure 2's y-axis.
func (c *Corpus) Coverage(ks []int) []float64 {
	ranked := c.Popularity()
	rank := make(map[string]int, len(ranked))
	for i, p := range ranked {
		rank[p] = i
	}
	// For each notebook, the max rank among its imports decides the
	// smallest covering K.
	maxRank := make([]int, len(c.Notebooks))
	for i, nb := range c.Notebooks {
		m := 0
		for _, p := range nb.Packages {
			if r, ok := rank[p]; ok {
				if r > m {
					m = r
				}
			} else {
				m = math.MaxInt32
			}
		}
		maxRank[i] = m
	}
	out := make([]float64, len(ks))
	for ki, k := range ks {
		covered := 0
		for _, m := range maxRank {
			if m < k {
				covered++
			}
		}
		out[ki] = float64(covered) / float64(len(c.Notebooks))
	}
	return out
}

// DistinctPackages counts the packages that actually occur in the corpus.
func (c *Corpus) DistinctPackages() int {
	seen := map[string]bool{}
	for _, nb := range c.Notebooks {
		for _, p := range nb.Packages {
			seen[p] = true
		}
	}
	return len(seen)
}

// DefaultKs is the K axis used for Figure 2.
var DefaultKs = []int{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 3000}

// Corpus2017 generates the calibrated 2017 corpus.
func Corpus2017() *Corpus {
	return Generate(Config{
		Label: "2017", NumNotebooks: 20000, NumPackages: 1000,
		Alpha: 1.45, MaxImports: 9, Seed: 2017,
	})
}

// Corpus2019 generates the calibrated 2019 corpus: 3x the packages, a more
// concentrated head.
func Corpus2019() *Corpus {
	return Generate(Config{
		Label: "2019", NumNotebooks: 60000, NumPackages: 3000,
		Alpha: 1.62, MaxImports: 9, Seed: 2019,
	})
}
