package server

import (
	"context"
	"errors"
	"sync/atomic"
	"time"
)

// errQueueFull rejects a query when the admission wait queue is at capacity
// — load shedding at the door instead of collapse under the load.
var errQueueFull = errors.New("server: admission queue full, try again later")

// admission is the bounded-concurrency gate in front of the engine: at most
// `workers` queries execute at once; up to `maxQueue` more wait for a slot;
// beyond that, requests are rejected immediately. Waiting respects the
// query context, so deadlines and disconnects apply while queued too.
type admission struct {
	sem      chan struct{}
	maxQueue int64
	queued   atomic.Int64
	inflight atomic.Int64
	met      *metrics
}

func newAdmission(workers, maxQueue int, met *metrics) *admission {
	return &admission{sem: make(chan struct{}, workers), maxQueue: int64(maxQueue), met: met}
}

// acquire blocks until a worker slot is free, the queue overflows, or ctx
// is done. On nil return the caller must release().
func (a *admission) acquire(ctx context.Context) error {
	// Fast path: a slot is free, no queueing.
	select {
	case a.sem <- struct{}{}:
		a.inflight.Add(1)
		return nil
	default:
	}
	if a.queued.Add(1) > a.maxQueue {
		a.queued.Add(-1)
		a.met.admissionRejected.Add(1)
		return errQueueFull
	}
	defer a.queued.Add(-1)
	start := time.Now()
	select {
	case a.sem <- struct{}{}:
		a.met.admissionWait.observe(time.Since(start).Seconds())
		a.inflight.Add(1)
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (a *admission) release() {
	a.inflight.Add(-1)
	<-a.sem
}
