package server

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"strconv"
	"sync"

	"repro/internal/core"
	"repro/internal/opt"
)

// planCache is an LRU of prepared statements keyed on (SQL, opt.Level).
// Each entry also carries a deterministic handle ("ps_<hash>") that
// /v1/exec resolves through the same LRU, so prepared-statement state is
// bounded by the cache capacity — a client preparing per request cannot
// grow server memory. Staleness is NOT the cache's problem: core.Prepared
// revalidates its plan against table versions and the model-registry
// generation on every execution, so the cache only ever amortizes work,
// never serves stale results.
type planCache struct {
	mu       sync.Mutex
	cap      int
	ll       *list.List // front = most recently used
	m        map[string]*list.Element
	byHandle map[string]*list.Element
	met      *metrics
}

type planCacheEntry struct {
	key    string
	handle string
	p      *core.Prepared
}

func newPlanCache(capacity int, met *metrics) *planCache {
	return &planCache{
		cap: capacity, ll: list.New(),
		m: map[string]*list.Element{}, byHandle: map[string]*list.Element{},
		met: met,
	}
}

func planKey(sql string, level opt.Level) string {
	return strconv.Itoa(int(level)) + "\x00" + sql
}

// handleOf derives the stable statement handle for a cache key: the same
// (SQL, level) always yields the same handle, so clients may cache it.
func handleOf(key string) string {
	sum := sha256.Sum256([]byte(key))
	return "ps_" + hex.EncodeToString(sum[:12])
}

// get returns the cached statement and its handle, if present.
func (c *planCache) get(key string) (*core.Prepared, string, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		c.met.planMisses.Add(1)
		return nil, "", false
	}
	c.ll.MoveToFront(el)
	c.met.planHits.Add(1)
	e := el.Value.(*planCacheEntry)
	return e.p, e.handle, true
}

// getByHandle resolves a prepared handle, touching the entry. A handle
// evicted from the LRU no longer resolves; the client re-prepares.
func (c *planCache) getByHandle(handle string) (*core.Prepared, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byHandle[handle]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*planCacheEntry).p, true
}

// put inserts (or refreshes) an entry and returns its handle, evicting the
// least-recently-used entries beyond capacity.
func (c *planCache) put(key string, p *core.Prepared) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		c.ll.MoveToFront(el)
		e := el.Value.(*planCacheEntry)
		e.p = p
		return e.handle
	}
	e := &planCacheEntry{key: key, handle: handleOf(key), p: p}
	el := c.ll.PushFront(e)
	c.m[key] = el
	c.byHandle[e.handle] = el
	for c.ll.Len() > c.cap {
		back := c.ll.Back()
		c.ll.Remove(back)
		be := back.Value.(*planCacheEntry)
		delete(c.m, be.key)
		delete(c.byHandle, be.handle)
		c.met.planEvictions.Add(1)
	}
	return e.handle
}

func (c *planCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
