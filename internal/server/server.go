// Package server is the concurrent SQL/PREDICT serving layer over
// core.Flock: an HTTP+JSON front end with authenticated sessions (session
// identity feeds the existing governance and audit path), prepared
// statements backed by an LRU plan cache, admission control (bounded worker
// pool plus a bounded wait queue with rejection), per-query deadlines,
// streaming result encoding, a Prometheus-style /metrics endpoint, and
// graceful shutdown with engine-wide cancellation — the seam the paper's
// "heavy traffic from millions of users" scaling work plugs into.
//
// Wire API (JSON bodies unless noted):
//
//	POST   /v1/sessions        {user, token}            -> {session, user}
//	DELETE /v1/sessions/{id}                            -> 204
//	POST   /v1/query           {session, sql, timeout_ms, level, stream, cursor, batch_rows}
//	POST   /v1/prepare         {session, sql, level}    -> {stmt, kind, cached}
//	POST   /v1/exec            {session, stmt, timeout_ms, stream, cursor}
//	POST   /v1/cursor/fetch    {session, cursor, max_rows, timeout_ms} -> {columns, rows, done}
//	POST   /v1/cursor/close    {session, cursor}        -> 204
//	POST   /v1/admin/reopen    {session}                -> {"status":"ok"} (recover a degraded instance)
//	POST   /v1/admin/promote   {session}                -> {"status":"ok", epoch} (promote this replica to leader)
//	POST   /v1/admin/repoint   {session, leader}        -> {"status":"ok"} (re-point this node at a new leader)
//	GET    /metrics            Prometheus text exposition
//	GET    /healthz            {"status":"ok"} (liveness: the process serves)
//	GET    /readyz             {"status":"ready"} | 503 {"status":"degraded", ...} (readiness: writes accepted)
//
// Results flow pull-based end-to-end: "stream": true drains an engine
// cursor as NDJSON with O(batch) server memory, and "cursor": true opens a
// server-side cursor (TTL-bound, session-scoped) that /v1/cursor/fetch
// pages through without ever re-running the query. See docs/api.md for the
// full wire protocol.
package server

import (
	"context"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/governance"
	"repro/internal/monitor"
	"repro/internal/onnx"
	"repro/internal/opt"
	"repro/internal/repl"
	sqlpkg "repro/internal/sql"
)

// Config tunes the serving layer. The zero value gets sane defaults from
// normalize.
type Config struct {
	// MaxWorkers bounds concurrently executing queries; defaults to
	// GOMAXPROCS (at least 4).
	MaxWorkers int
	// MaxQueue bounds queries waiting for a worker slot; beyond it requests
	// are rejected with 503. Defaults to 64.
	MaxQueue int
	// DefaultTimeout applies when a request carries no timeout_ms;
	// defaults to 30s.
	DefaultTimeout time.Duration
	// MaxTimeout clamps client-requested timeouts; defaults to 5m.
	MaxTimeout time.Duration
	// SessionTTL expires idle sessions; defaults to 30m. Sessions holding
	// open server-side cursors are not reaped (CursorTTL expires those
	// first).
	SessionTTL time.Duration
	// SessionMaxLifetime hard-caps a session's total lifetime: past it the
	// session expires even while holding open cursors or running queries,
	// and its cursors answer subsequent fetches with the 410 tombstone.
	// Bounds the cursor exemption from SessionTTL so an abandoned session
	// with an open cursor cannot pin server state forever. Defaults to 24h.
	SessionMaxLifetime time.Duration
	// CursorTTL expires idle server-side cursors; defaults to 5m.
	CursorTTL time.Duration
	// MaxCursorsPerSession bounds open server-side cursors per session;
	// defaults to 16.
	MaxCursorsPerSession int
	// MaxStreamDrains bounds concurrent NDJSON stream drains. A drain
	// holds a drain slot — not a worker slot — for its (client-paced)
	// lifetime, so slow readers can exhaust only the drain budget, never
	// the query worker pool. Defaults to 2x MaxWorkers.
	MaxStreamDrains int
	// PlanCacheSize bounds the prepared-plan LRU; defaults to 256 entries.
	PlanCacheSize int
	// Level is the optimization level for queries that don't specify one.
	// The zero value means "use the Flock DB default" (per-request "level"
	// can still force any level, including udf).
	Level opt.Level
	// Authenticate validates a (user, token) pair at session creation.
	// nil allows any non-empty user (development mode).
	Authenticate func(user, token string) error
	// OnSession runs after successful authentication (e.g. to grant roles).
	OnSession func(user string)
}

func (c Config) normalize() Config {
	if c.MaxWorkers <= 0 {
		c.MaxWorkers = runtime.GOMAXPROCS(0)
		if c.MaxWorkers < 4 {
			c.MaxWorkers = 4
		}
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 64
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 5 * time.Minute
	}
	if c.SessionTTL <= 0 {
		c.SessionTTL = 30 * time.Minute
	}
	if c.SessionMaxLifetime <= 0 {
		c.SessionMaxLifetime = 24 * time.Hour
	}
	if c.CursorTTL <= 0 {
		c.CursorTTL = 5 * time.Minute
	}
	if c.MaxCursorsPerSession <= 0 {
		c.MaxCursorsPerSession = 16
	}
	if c.MaxStreamDrains <= 0 {
		c.MaxStreamDrains = 2 * c.MaxWorkers
	}
	if c.PlanCacheSize <= 0 {
		c.PlanCacheSize = 256
	}
	return c
}

// Server serves a Flock instance over HTTP.
type Server struct {
	flock *core.Flock
	cfg   Config

	mux     *http.ServeMux
	httpSrv *http.Server
	lnMu    sync.Mutex
	ln      net.Listener

	baseCtx    context.Context
	cancelBase context.CancelFunc

	sessions *sessionStore
	adm      *admission
	met      *metrics
	plans    *planCache
	cursors  *cursorStore

	// streamDrains counts (and bounds) in-flight NDJSON drains; see
	// Config.MaxStreamDrains.
	streamDrains atomic.Int64

	monMu    sync.Mutex
	monitors []*monitor.ScoreMonitor

	gaugeMu      sync.Mutex
	gaugeSources []func() map[string]float64

	// reopenFn services POST /v1/admin/reopen; defaults to the engine's
	// ReopenWAL and is replaced via AttachReopen when a core.Durability
	// owns the data directory (its Reopen also syncs the audit log and
	// counts the fold as a checkpoint).
	reopenMu sync.Mutex
	reopenFn func() error

	// readyChecks extend /readyz beyond the degraded-mode probe (e.g. the
	// replica-mode lag gate); any check returning an error flips readiness
	// to 503 with its message.
	readyMu     sync.Mutex
	readyChecks []func() error

	// replNode, when attached, backs the promote/repoint admin endpoints
	// and enriches /readyz with the node's replication role and epoch.
	replMu   sync.Mutex
	replNode *repl.Node
}

// New assembles a server over flock. Call Serve/ListenAndServe to accept
// connections, or mount Handler() yourself (tests use httptest).
func New(flock *core.Flock, cfg Config) *Server {
	cfg = cfg.normalize()
	base, cancel := context.WithCancel(context.Background())
	s := &Server{
		flock:      flock,
		cfg:        cfg,
		mux:        http.NewServeMux(),
		baseCtx:    base,
		cancelBase: cancel,
		met:        newMetrics(),
	}
	s.sessions = newSessionStore(base, cfg.SessionTTL, cfg.SessionMaxLifetime)
	s.adm = newAdmission(cfg.MaxWorkers, cfg.MaxQueue, s.met)
	s.plans = newPlanCache(cfg.PlanCacheSize, s.met)
	s.cursors = newCursorStore(cfg.CursorTTL, cfg.MaxCursorsPerSession, &s.met.cursorsExpired)
	// A session hitting the hard lifetime cap retires its cursors, so a
	// fetch on one answers 410 (gone) instead of 404 (never existed). Set
	// under the store lock: its sweeper is already ticking.
	s.sessions.mu.Lock()
	s.sessions.onExpire = func(sess *session) { s.cursors.closeForSession(sess.id) }
	s.sessions.mu.Unlock()

	s.mux.HandleFunc("POST /v1/sessions", s.handleSessionCreate)
	s.mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleSessionDelete)
	s.mux.HandleFunc("POST /v1/query", s.handleQuery)
	s.mux.HandleFunc("POST /v1/prepare", s.handlePrepare)
	s.mux.HandleFunc("POST /v1/exec", s.handleExec)
	s.mux.HandleFunc("POST /v1/cursor/fetch", s.handleCursorFetch)
	s.mux.HandleFunc("POST /v1/cursor/close", s.handleCursorClose)
	s.mux.HandleFunc("POST /v1/admin/reopen", s.handleAdminReopen)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		// Liveness only: a degraded (read-only) instance is still alive and
		// serving reads, so /healthz stays ok — restarts don't heal a bad
		// disk. Readiness is /readyz's job.
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)

	s.httpSrv = &http.Server{
		Handler:           s.mux,
		ReadHeaderTimeout: 10 * time.Second,
	}
	return s
}

// Handler returns the HTTP handler (for mounting under a custom server).
func (s *Server) Handler() http.Handler { return s.mux }

// Flock returns the served instance.
func (s *Server) Flock() *core.Flock { return s.flock }

// AttachMonitor exports a score monitor's drift state on /metrics.
func (s *Server) AttachMonitor(m *monitor.ScoreMonitor) {
	s.monMu.Lock()
	s.monitors = append(s.monitors, m)
	s.monMu.Unlock()
}

// AttachGauges exports an external gauge source on /metrics; the source is
// polled per scrape (e.g. the durability subsystem's WAL size and
// checkpoint age).
func (s *Server) AttachGauges(src func() map[string]float64) {
	s.gaugeMu.Lock()
	s.gaugeSources = append(s.gaugeSources, src)
	s.gaugeMu.Unlock()
}

// AttachReopen replaces the function behind POST /v1/admin/reopen (wired
// to core.Durability.Reopen by flock-serve so the recovery fold also syncs
// the audit log and counts as a checkpoint).
func (s *Server) AttachReopen(fn func() error) {
	s.reopenMu.Lock()
	s.reopenFn = fn
	s.reopenMu.Unlock()
}

// AttachReadiness adds a readiness check to /readyz: any check returning
// an error makes the probe answer 503 with the message. Used by replica
// mode to gate readiness on replication lag, so load balancers stop
// routing reads to a follower that has fallen too far behind.
func (s *Server) AttachReadiness(check func() error) {
	s.readyMu.Lock()
	s.readyChecks = append(s.readyChecks, check)
	s.readyMu.Unlock()
}

// AttachReplicationLeader mounts the leader replication endpoints
// (/v1/repl/wal, /v1/repl/snapshot, /v1/repl/ack, /v1/repl/status) and
// exports the leader-side replication gauges on /metrics.
func (s *Server) AttachReplicationLeader(l *repl.Leader) {
	l.Register(s.mux)
	s.AttachGauges(l.Gauges)
}

// AttachReplicationFollower exposes the follower's replication status on
// /v1/repl/status and its gauges (apply LSN, lag, reconnects) on /metrics.
func (s *Server) AttachReplicationFollower(f *repl.Follower) {
	s.mux.HandleFunc("GET "+repl.PathStatus, f.HandleStatus)
	s.AttachGauges(f.Gauges)
}

// AttachReplicationNode mounts a role-switching replication node: the
// role-aware replication endpoints, the node gauges, and the promote /
// repoint admin endpoints that drive failover at runtime. Supersedes the
// fixed-role attach methods for deployments that may change roles.
func (s *Server) AttachReplicationNode(n *repl.Node) {
	s.replMu.Lock()
	s.replNode = n
	s.replMu.Unlock()
	n.Register(s.mux)
	s.AttachGauges(n.Gauges)
	s.mux.HandleFunc("POST /v1/admin/promote", s.handleAdminPromote)
	s.mux.HandleFunc("POST /v1/admin/repoint", s.handleAdminRepoint)
}

func (s *Server) replicationNode() *repl.Node {
	s.replMu.Lock()
	defer s.replMu.Unlock()
	return s.replNode
}

// handleReadyz is the readiness probe: 200 while the instance accepts
// writes, 503 with the degradation reason once the WAL is poisoned and the
// DB is read-only. Load balancers route writes away on 503; /healthz stays
// 200 so orchestrators don't restart a process that a restart cannot heal.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	// Replication context rides on every readiness answer so operators and
	// probes see the role and epoch without a second request.
	extra := map[string]any{}
	if n := s.replicationNode(); n != nil {
		extra["role"] = n.Role()
		extra["epoch"] = n.Epoch()
	}
	ready := func(status int, fields map[string]any) {
		for k, v := range extra {
			fields[k] = v
		}
		writeJSON(w, status, fields)
	}
	if fenced, observed, source := s.flock.DB.Fenced(); fenced {
		// A deposed leader can never ack a write again: route traffic away.
		ready(http.StatusServiceUnavailable, map[string]any{
			"status": "fenced", "mode": "read-only",
			"reason": fmt.Sprintf("a newer leader at epoch %d was observed via %s", observed, source),
		})
		return
	}
	if down, reason := s.flock.DB.Degraded(); down {
		ready(http.StatusServiceUnavailable, map[string]any{
			"status": "degraded", "mode": "read-only", "reason": reason,
		})
		return
	}
	s.readyMu.Lock()
	checks := append([]func() error(nil), s.readyChecks...)
	s.readyMu.Unlock()
	for _, check := range checks {
		if err := check(); err != nil {
			ready(http.StatusServiceUnavailable, map[string]any{
				"status": "not-ready", "reason": err.Error(),
			})
			return
		}
	}
	ready(http.StatusOK, map[string]any{"status": "ready"})
}

// handleAdminReopen recovers a degraded instance back to read-write (see
// engine.ReopenWAL): operator-triggered, session-authenticated, audited.
func (s *Server) handleAdminReopen(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Session string `json:"session"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad reopen request: %w", err))
		return
	}
	sess, ok := s.sessions.get(req.Session)
	if !ok {
		writeError(w, http.StatusUnauthorized, errors.New("unknown or expired session"))
		return
	}
	wasDegraded, _ := s.flock.DB.Degraded()
	s.reopenMu.Lock()
	reopen := s.reopenFn
	s.reopenMu.Unlock()
	if reopen == nil {
		reopen = s.flock.DB.ReopenWAL
	}
	err := reopen()
	s.flock.Audit.Record(sess.user, "admin.reopen", "", fmt.Sprintf("degraded=%v", wasDegraded), err == nil)
	if err != nil {
		// The disk is still bad: the instance stays degraded and the error
		// says why. 503 matches what writes are returning.
		writeError(w, http.StatusServiceUnavailable, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "was_degraded": wasDegraded})
}

// handleAdminPromote promotes this replica into the leader of a new epoch
// (see repl.Node.Promote): operator-triggered, session-authenticated,
// audited. Idempotent on an already-promoted node.
func (s *Server) handleAdminPromote(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Session string `json:"session"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad promote request: %w", err))
		return
	}
	sess, ok := s.sessions.get(req.Session)
	if !ok {
		writeError(w, http.StatusUnauthorized, errors.New("unknown or expired session"))
		return
	}
	n := s.replicationNode()
	if n == nil {
		writeError(w, http.StatusConflict, errors.New("this node has no replication role"))
		return
	}
	epoch, err := n.Promote(r.Context())
	s.flock.Audit.Record(sess.user, "admin.promote", "", fmt.Sprintf("epoch=%d", epoch), err == nil)
	if err != nil {
		// The node is still a follower (Promote's contract); 409 says the
		// operation could not proceed, not that the server is down.
		writeError(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "epoch": epoch, "role": n.Role()})
}

// handleAdminRepoint re-targets this node at a new leader (see
// repl.Node.Repoint): a follower swaps its tailing URL, a (typically
// fenced) leader demotes to a replica of it. Session-authenticated,
// audited.
func (s *Server) handleAdminRepoint(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Session string `json:"session"`
		Leader  string `json:"leader"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad repoint request: %w", err))
		return
	}
	sess, ok := s.sessions.get(req.Session)
	if !ok {
		writeError(w, http.StatusUnauthorized, errors.New("unknown or expired session"))
		return
	}
	if req.Leader == "" {
		writeError(w, http.StatusBadRequest, errors.New("repoint requires a leader URL"))
		return
	}
	n := s.replicationNode()
	if n == nil {
		writeError(w, http.StatusConflict, errors.New("this node has no replication role"))
		return
	}
	err := n.Repoint(r.Context(), req.Leader)
	s.flock.Audit.Record(sess.user, "admin.repoint", "", "leader="+req.Leader, err == nil)
	if err != nil {
		writeError(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "role": n.Role(), "leader": req.Leader})
}

// setLeaderHint stamps X-Flock-Leader on read-only rejections from a
// replica, so a client that wrote to the wrong node learns where the
// leader is without a config push (the SDK follows it during failover).
func (s *Server) setLeaderHint(w http.ResponseWriter, err error) {
	if !errors.Is(err, engine.ErrReadOnly) {
		return
	}
	if leader := s.flock.DB.ReplicaSource(); leader != "" {
		w.Header().Set("X-Flock-Leader", leader)
	}
}

// retryAfterSeconds derives backpressure advice from live pressure instead
// of a constant: the deeper the wait queue (or drain-slot overflow)
// relative to the worker pool, the longer shed clients should back off.
// Bounded to [1, 30] so advice stays actionable.
func (s *Server) retryAfterSeconds() int {
	pressure := int(s.adm.queued.Load())
	if over := int(s.streamDrains.Load()) - s.cfg.MaxStreamDrains; over > pressure {
		pressure = over
	}
	secs := 1 + pressure/s.cfg.MaxWorkers
	if secs > 30 {
		secs = 30
	}
	return secs
}

// setRetryAfter stamps the derived backoff on a 503 response.
func (s *Server) setRetryAfter(w http.ResponseWriter) {
	w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
}

// ListenAndServe binds addr and serves until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve accepts connections on ln until Shutdown.
func (s *Server) Serve(ln net.Listener) error {
	s.lnMu.Lock()
	s.ln = ln
	s.lnMu.Unlock()
	err := s.httpSrv.Serve(ln)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// Addr reports the bound address ("" before Serve).
func (s *Server) Addr() string {
	s.lnMu.Lock()
	defer s.lnMu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Shutdown drains the server: stop accepting, wait for in-flight requests
// up to ctx's deadline, then cancel the base context so any straggling
// query aborts at its next batch boundary (engine-wide cancellation).
func (s *Server) Shutdown(ctx context.Context) error {
	s.sessions.stopSweeper()
	s.cursors.stopSweeper()
	err := s.httpSrv.Shutdown(ctx)
	if err != nil {
		// Drain window expired: cancel every session (and through them
		// every running query), then force-close connections.
		s.cancelBase()
		_ = s.httpSrv.Close()
	}
	s.cancelBase()
	s.cursors.closeAll()
	s.sessions.closeAll()
	return err
}

// ---- request/response shapes ----

type sessionRequest struct {
	User  string `json:"user"`
	Token string `json:"token"`
}

type queryRequest struct {
	Session   string `json:"session"`
	SQL       string `json:"sql"`
	TimeoutMS int64  `json:"timeout_ms"`
	Level     string `json:"level"`
	Stream    bool   `json:"stream"`
	// Cursor opens a server-side cursor instead of returning rows: the
	// response carries a cursor id for /v1/cursor/fetch. SELECT only.
	Cursor bool `json:"cursor"`
}

type prepareRequest struct {
	Session string `json:"session"`
	SQL     string `json:"sql"`
	Level   string `json:"level"`
}

type execRequest struct {
	Session   string `json:"session"`
	Stmt      string `json:"stmt"`
	TimeoutMS int64  `json:"timeout_ms"`
	Stream    bool   `json:"stream"`
	// Cursor opens a server-side cursor over a prepared SELECT.
	Cursor bool `json:"cursor"`
}

// queryResponse always carries columns and rows (as [] rather than null or
// an absent key for empty results), so clients can index unconditionally.
type queryResponse struct {
	Columns   []string `json:"columns"`
	Rows      [][]any  `json:"rows"`
	Affected  int64    `json:"affected"`
	ElapsedMS float64  `json:"elapsed_ms"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// ---- handlers ----

func (s *Server) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	var req sessionRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad session request: %w", err))
		return
	}
	if req.User == "" {
		writeError(w, http.StatusBadRequest, errors.New("user is required"))
		return
	}
	if s.cfg.Authenticate != nil {
		if err := s.cfg.Authenticate(req.User, req.Token); err != nil {
			s.flock.Audit.Record(req.User, "login", "", "rejected", false)
			writeError(w, http.StatusUnauthorized, errors.New("authentication failed"))
			return
		}
	}
	if s.cfg.OnSession != nil {
		s.cfg.OnSession(req.User)
	}
	sess, err := s.sessions.create(req.User)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	s.flock.Audit.Record(req.User, "login", "", "session "+sess.id[:8], true)
	writeJSON(w, http.StatusOK, map[string]any{
		"session": sess.id,
		"user":    sess.user,
		"ttl_s":   s.cfg.SessionTTL.Seconds(),
	})
}

func (s *Server) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	// Release the session's server-side cursors first, so their engine
	// cursors close deterministically rather than waiting for the TTL.
	s.cursors.closeForSession(id)
	if !s.sessions.close(id) {
		writeError(w, http.StatusNotFound, errors.New("unknown session"))
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad query request: %w", err))
		return
	}
	sess, ok := s.sessions.get(req.Session)
	if !ok {
		writeError(w, http.StatusUnauthorized, errors.New("unknown or expired session"))
		return
	}
	level, err := s.levelOf(req.Level)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.Cursor {
		s.openServerCursor(w, r, sess, req.TimeoutMS, func(ctx context.Context) (engine.Cursor, error) {
			return s.flock.QueryLevel(ctx, sess.user, req.SQL, level)
		})
		return
	}
	if req.Stream && isSingleSelect(req.SQL) {
		// Pull-based drain: the cursor feeds NDJSON batch by batch, so the
		// server holds O(batch) memory no matter the result size.
		s.streamCursor(w, r, sess, req.TimeoutMS, func(ctx context.Context) (engine.Cursor, error) {
			return s.flock.QueryLevel(ctx, sess.user, req.SQL, level)
		})
		return
	}
	s.run(w, r, sess, req.TimeoutMS, kindOfSQL(req.SQL), req.Stream,
		func(ctx context.Context) (*engine.Result, error) {
			return s.flock.ExecLevelContext(ctx, sess.user, req.SQL, level)
		})
}

// isSingleSelect reports whether sql parses as exactly one SELECT — the
// shapes the cursor/stream paths accept; everything else (DML,
// multi-statement strings) takes the materialized path.
func isSingleSelect(query string) bool {
	stmt, err := sqlpkg.ParseOne(query)
	if err != nil {
		return false
	}
	_, ok := stmt.(*sqlpkg.SelectStmt)
	return ok
}

func (s *Server) handlePrepare(w http.ResponseWriter, r *http.Request) {
	var req prepareRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad prepare request: %w", err))
		return
	}
	sess, ok := s.sessions.get(req.Session)
	if !ok {
		writeError(w, http.StatusUnauthorized, errors.New("unknown or expired session"))
		return
	}
	level, err := s.levelOf(req.Level)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// Planning is real work (optimizer passes, stats-driven model
	// rewrites), so prepares go through the same admission gate as
	// queries — prepare floods cannot starve query traffic. The deadline
	// and disconnect handling bound the queue wait; planning itself is
	// short (no table scans) and runs to completion once admitted.
	pctx, cancel := context.WithTimeout(sess.ctx, s.cfg.DefaultTimeout)
	defer cancel()
	stop := context.AfterFunc(r.Context(), cancel) // abandon the queue slot if the client goes away
	defer stop()
	sess.begin()
	defer sess.end()
	if err := s.adm.acquire(pctx); err != nil {
		status, _ := classifyErr(err)
		if status == http.StatusServiceUnavailable {
			s.setRetryAfter(w)
			s.setLeaderHint(w, err)
		}
		writeError(w, status, err)
		return
	}
	defer s.adm.release()

	key := planKey(req.SQL, level)
	p, handle, cached := s.plans.get(key)
	if cached {
		// Cache-shared plans still require this user to pass governance.
		if err := s.flock.CheckPrepared(sess.user, p); err != nil {
			writeError(w, http.StatusForbidden, err)
			return
		}
	} else {
		// Access is checked before planning: an unauthorized user gets a
		// 403 and an audit record, not planner output.
		p, err = s.flock.PrepareAs(sess.user, req.SQL, level)
		if err != nil {
			var perm *governance.PermissionError
			if errors.As(err, &perm) {
				writeError(w, http.StatusForbidden, err)
				return
			}
			writeError(w, http.StatusBadRequest, err)
			return
		}
		handle = s.plans.put(key, p)
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"stmt": handle, "kind": p.Kind(), "cached": cached,
	})
}

func (s *Server) handleExec(w http.ResponseWriter, r *http.Request) {
	var req execRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad exec request: %w", err))
		return
	}
	sess, ok := s.sessions.get(req.Session)
	if !ok {
		writeError(w, http.StatusUnauthorized, errors.New("unknown or expired session"))
		return
	}
	p, ok := s.plans.getByHandle(req.Stmt)
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("unknown prepared statement (evicted or never prepared); re-prepare"))
		return
	}
	kind := p.Kind()
	if kind != "select" {
		kind = "dml"
	}
	if req.Cursor {
		if kind != "select" {
			writeError(w, http.StatusBadRequest, errors.New("cursor requires a prepared SELECT"))
			return
		}
		s.openServerCursor(w, r, sess, req.TimeoutMS, func(ctx context.Context) (engine.Cursor, error) {
			return s.flock.QueryPrepared(ctx, sess.user, p)
		})
		return
	}
	if req.Stream && kind == "select" {
		s.streamCursor(w, r, sess, req.TimeoutMS, func(ctx context.Context) (engine.Cursor, error) {
			return s.flock.QueryPrepared(ctx, sess.user, p)
		})
		return
	}
	s.run(w, r, sess, req.TimeoutMS, kind, req.Stream,
		func(ctx context.Context) (*engine.Result, error) {
			return s.flock.ExecPrepared(ctx, sess.user, p)
		})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	gauges := map[string]float64{
		"flock_admission_inflight":    float64(s.adm.inflight.Load()),
		"flock_admission_queue_depth": float64(s.adm.queued.Load()),
		"flock_sessions_active":       float64(s.sessions.count()),
		"flock_plan_cache_entries":    float64(s.plans.len()),
		// Engine operator workers running right now across every in-flight
		// query: the live intra-query parallel degree.
		"flock_exec_workers": float64(engine.ActiveWorkers()),
		// Server-side cursors currently open, engine cursors open across
		// the whole process (drains included; the two diverging for long
		// means a leak), and in-flight NDJSON stream drains.
		"flock_cursors_open":         float64(s.cursors.count()),
		"flock_engine_cursors_open":  float64(engine.CursorsOpen()),
		"flock_stream_drains_active": float64(s.streamDrains.Load()),
	}
	// Fsync amortization: committed records per group-commit fsync (0 until
	// the first durable commit; ~1 under serial writers; >1 when concurrent
	// writers share sync batches).
	syncs, records := s.flock.DB.WALGroupCommitStats()
	gauges["flock_wal_group_commit_syncs"] = float64(syncs)
	if syncs > 0 {
		gauges["flock_wal_group_commit_batch"] = float64(records) / float64(syncs)
	} else {
		gauges["flock_wal_group_commit_batch"] = 0
	}
	// Degradation state straight from the engine, so the gauges exist even
	// when no durability subsystem is attached (an attached one exports the
	// same values — map assignment keeps them single).
	gauges["flock_degraded_mode"], gauges["flock_wal_poisoned"] = 0, 0
	if down, _ := s.flock.DB.Degraded(); down {
		gauges["flock_degraded_mode"], gauges["flock_wal_poisoned"] = 1, 1
	}
	// Log position and durable watermark: what replication lag is measured
	// against (a follower's flock_repl_apply_lsn converging to the
	// leader's flock_wal_last_lsn is the smoke-test invariant).
	gauges["flock_wal_last_lsn"] = float64(s.flock.DB.LastLSN())
	gauges["flock_wal_durable_lsn"] = float64(s.flock.DB.DurableLSN())
	gauges["flock_retry_after_seconds"] = float64(s.retryAfterSeconds())
	// Scorer resilience: per-endpoint circuit-breaker state plus the
	// process-wide retry/fallback counters (present even before the first
	// remote scorer is built — the registry is process-wide).
	for k, v := range onnx.BreakerGauges() {
		gauges[k] = v
	}
	s.gaugeMu.Lock()
	sources := append([]func() map[string]float64(nil), s.gaugeSources...)
	s.gaugeMu.Unlock()
	for _, src := range sources {
		for k, v := range src() {
			gauges[k] = v
		}
	}
	s.monMu.Lock()
	monitors := append([]*monitor.ScoreMonitor(nil), s.monitors...)
	s.monMu.Unlock()
	for _, m := range monitors {
		label := fmt.Sprintf(`flock_monitor_window_size{model=%q}`, m.Model)
		gauges[label] = float64(m.WindowSize())
		gauges[fmt.Sprintf(`flock_monitor_alerts{model=%q}`, m.Model)] = float64(len(m.Alerts()))
		if psi, err := m.PSI(); err == nil {
			gauges[fmt.Sprintf(`flock_monitor_psi{model=%q}`, m.Model)] = psi
			gauges[fmt.Sprintf(`flock_monitor_drift_status{model=%q}`, m.Model)] = float64(monitor.StatusOf(psi))
		}
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.met.writeProm(w, gauges)
}

// run pushes one query through admission control, deadline management, the
// engine, and result encoding, recording metrics for every outcome.
func (s *Server) run(w http.ResponseWriter, r *http.Request, sess *session,
	timeoutMS int64, kind string, stream bool,
	do func(ctx context.Context) (*engine.Result, error)) {

	timeout := s.cfg.DefaultTimeout
	if timeoutMS > 0 {
		timeout = time.Duration(timeoutMS) * time.Millisecond
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	// The query context descends from the session (so session close and
	// server shutdown cancel it) and additionally dies with the client
	// connection and the deadline.
	qctx, cancel := context.WithTimeout(sess.ctx, timeout)
	defer cancel()
	stop := context.AfterFunc(r.Context(), cancel)
	defer stop()
	sess.begin()
	defer sess.end()

	start := time.Now()
	if err := s.adm.acquire(qctx); err != nil {
		status, label := classifyErr(err)
		s.met.observeQuery(kind, label, time.Since(start))
		if status == http.StatusServiceUnavailable {
			s.setRetryAfter(w)
			s.setLeaderHint(w, err)
		}
		writeError(w, status, err)
		return
	}

	released := false
	release := func() {
		if !released {
			released = true
			s.adm.release()
		}
	}
	defer release() // a panicking handler must not leak the worker slot

	res, err := do(qctx)
	// The result is fully materialized: release the worker slot BEFORE
	// encoding, so a slow-reading client stalls only its own connection,
	// never the worker pool.
	release()
	elapsed := time.Since(start)
	if err != nil {
		status, label := classifyErr(err)
		s.met.observeQuery(kind, label, elapsed)
		if status == http.StatusServiceUnavailable {
			// Degraded instance (or saturated queue): tell clients how long
			// to back off instead of letting them spin.
			s.setRetryAfter(w)
			s.setLeaderHint(w, err)
		}
		writeError(w, status, err)
		return
	}
	if res == nil {
		// Defense in depth: no execution path should hand back (nil, nil),
		// but a nil here must not panic the handler.
		res = &engine.Result{}
	}
	s.met.observeQuery(kind, "ok", elapsed)
	if stream {
		s.streamResult(w, res, elapsed)
		return
	}
	cols, rows := res.Columns, res.Rows
	if cols == nil {
		cols = []string{}
	}
	if rows == nil {
		rows = [][]any{}
	}
	writeJSON(w, http.StatusOK, queryResponse{
		Columns: cols, Rows: rows, Affected: res.Affected,
		ElapsedMS: float64(elapsed.Microseconds()) / 1000,
	})
}

// streamCursor drains a governed cursor as NDJSON: a header object, one
// JSON array per row, and a trailer object. Admission: the open (planning
// plus any blocking materialization) runs under a worker slot; the drain
// itself — whose pace the client controls — downgrades to a bounded drain
// slot so slow readers can never pin the query worker pool. A mid-stream
// encode/write error aborts the drain and releases the cursor (recorded in
// flock_stream_aborts_total) instead of silently truncating; a mid-stream
// execution error is reported in the trailer (the 200 header is long
// gone).
func (s *Server) streamCursor(w http.ResponseWriter, r *http.Request, sess *session,
	timeoutMS int64, open func(ctx context.Context) (engine.Cursor, error)) {

	timeout := s.cfg.DefaultTimeout
	if timeoutMS > 0 {
		timeout = time.Duration(timeoutMS) * time.Millisecond
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	// The drain context has NO deadline of its own — a stream's total
	// duration is paced by the client, exactly like the pre-cursor path
	// where only execution was deadline-bound. It still dies with the
	// session, the server, and the client connection. The query timeout
	// bounds execution instead: the open below, and each engine pull in
	// the drain loop.
	qctx, cancel := context.WithCancel(sess.ctx)
	defer cancel()
	stop := context.AfterFunc(r.Context(), cancel)
	defer stop()
	sess.begin()
	defer sess.end()

	start := time.Now()
	octx, ocancel := context.WithTimeout(qctx, timeout)
	defer ocancel()
	if err := s.adm.acquire(octx); err != nil {
		status, label := classifyErr(err)
		s.met.observeQuery("select", label, time.Since(start))
		if status == http.StatusServiceUnavailable {
			s.setRetryAfter(w)
			s.setLeaderHint(w, err)
		}
		writeError(w, status, err)
		return
	}
	released := false
	release := func() {
		if !released {
			released = true
			s.adm.release()
		}
	}
	defer release()

	cur, err := open(octx)
	if err != nil {
		release()
		status, label := classifyErr(err)
		s.met.observeQuery("select", label, time.Since(start))
		if status == http.StatusServiceUnavailable {
			s.setRetryAfter(w)
			s.setLeaderHint(w, err)
		}
		writeError(w, status, err)
		return
	}
	defer cur.Close()

	// Downgrade worker slot -> drain slot before the client-paced part.
	if s.streamDrains.Add(1) > int64(s.cfg.MaxStreamDrains) {
		s.streamDrains.Add(-1)
		release()
		s.met.observeQuery("select", "rejected", time.Since(start))
		s.setRetryAfter(w)
		writeError(w, http.StatusServiceUnavailable,
			errors.New("server: too many concurrent stream drains, try again later"))
		return
	}
	defer s.streamDrains.Add(-1)
	release()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	cols := cur.Schema().Names()
	if cols == nil {
		cols = []string{} // same always-arrays contract as the non-stream path
	}
	abort := func() {
		s.met.streamAborts.Add(1)
		s.met.observeQuery("select", "abort", time.Since(start))
	}
	if err := enc.Encode(map[string]any{"columns": cols}); err != nil {
		abort()
		return
	}
	n := 0
	for {
		// Per-pull deadline: bounds one window of engine work, not the
		// client-paced transfer.
		nctx, ncancel := context.WithTimeout(qctx, timeout)
		b, err := cur.Next(nctx)
		ncancel()
		if err == io.EOF {
			break
		}
		if err != nil {
			// Execution died mid-stream: the trailer is the only channel
			// left to tell the client the stream is incomplete.
			_, label := classifyErr(err)
			s.met.observeQuery("select", label, time.Since(start))
			_ = enc.Encode(map[string]any{"error": err.Error(), "rows": n})
			if flusher != nil {
				flusher.Flush()
			}
			return
		}
		for _, row := range engine.ResultFromRowSet(b).Rows {
			if err := enc.Encode(row); err != nil {
				abort()
				return
			}
			n++
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
	if err := enc.Encode(map[string]any{
		"rows": n, "affected": int64(0),
		"elapsed_ms": float64(time.Since(start).Microseconds()) / 1000,
	}); err != nil {
		abort()
		return
	}
	if flusher != nil {
		flusher.Flush()
	}
	s.met.observeQuery("select", "ok", time.Since(start))
}

// streamResult encodes an already-materialized result as NDJSON — the
// legacy stream shape kept for DML and multi-statement strings (SELECTs
// stream through streamCursor). Encode/write errors abort the stream and
// count in flock_stream_aborts_total instead of being dropped.
func (s *Server) streamResult(w http.ResponseWriter, res *engine.Result, elapsed time.Duration) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	cols := res.Columns
	if cols == nil {
		cols = []string{} // same always-arrays contract as the non-stream path
	}
	if err := enc.Encode(map[string]any{"columns": cols}); err != nil {
		s.met.streamAborts.Add(1)
		return
	}
	for i, row := range res.Rows {
		if err := enc.Encode(row); err != nil {
			s.met.streamAborts.Add(1)
			return
		}
		if flusher != nil && i%256 == 255 {
			flusher.Flush()
		}
	}
	if err := enc.Encode(map[string]any{
		"rows": len(res.Rows), "affected": res.Affected,
		"elapsed_ms": float64(elapsed.Microseconds()) / 1000,
	}); err != nil {
		s.met.streamAborts.Add(1)
		return
	}
	if flusher != nil {
		flusher.Flush()
	}
}

// classifyErr maps an execution error to an HTTP status and a metrics
// status label.
func classifyErr(err error) (int, string) {
	var perm *governance.PermissionError
	var se *onnx.ScoreError
	switch {
	case errors.Is(err, errQueueFull):
		return http.StatusServiceUnavailable, "rejected"
	case errors.Is(err, repl.ErrQuorumTimeout):
		// The write is locally durable and installed but a follower quorum
		// did not ack in time: an ambiguous commit, like a response lost on
		// the wire. 503 (not 400) so clients treat it as a timeout; the SDK
		// never auto-retries writes, so no duplication risk.
		return http.StatusServiceUnavailable, "quorum-timeout"
	case errors.Is(err, engine.ErrReadOnly) || errors.Is(err, engine.ErrWALPoisoned):
		// The instance degraded to read-only (poisoned WAL): the write is
		// refused but the condition is the server's, not the request's. 503
		// tells load balancers to route writes elsewhere; reads still serve.
		return http.StatusServiceUnavailable, "degraded"
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, "timeout"
	case errors.Is(err, context.Canceled):
		// 499: client closed request (nginx convention) — the session was
		// closed, the client disconnected, or the server is shutting down.
		return 499, "canceled"
	case errors.As(err, &perm):
		return http.StatusForbidden, "denied"
	case errors.As(err, &se):
		// A typed scoring-transport failure (connect/timeout/HTTP 5xx from
		// the remote backend, or an open circuit breaker).
		return http.StatusBadGateway, "backend"
	case strings.HasPrefix(err.Error(), "onnx:"):
		// A scoring-backend failure (e.g. the remote model service is
		// down) is an upstream fault, not a bad request — 502 keeps 5xx
		// alerting honest. The repo's error-prefix convention makes the
		// origin identifiable without an error taxonomy.
		return http.StatusBadGateway, "backend"
	default:
		return http.StatusBadRequest, "error"
	}
}

// levelOf parses a request optimization level; "" uses the configured
// default (or the Flock DB default when the config is zero).
func (s *Server) levelOf(name string) (opt.Level, error) {
	switch strings.ToLower(name) {
	case "":
		if s.cfg.Level != 0 {
			return s.cfg.Level, nil
		}
		return s.flock.DB.DefaultLevel, nil
	case "udf":
		return opt.LevelUDF, nil
	case "vectorized":
		return opt.LevelVectorized, nil
	case "parallel":
		return opt.LevelParallel, nil
	case "full":
		return opt.LevelFull, nil
	}
	return 0, fmt.Errorf("unknown optimization level %q", name)
}

// kindOfSQL classifies a statement string for the latency histogram.
func kindOfSQL(sql string) string {
	f := strings.ToLower(firstWord(sql))
	switch f {
	case "select":
		return "select"
	case "insert", "update", "delete", "create":
		return "dml"
	}
	return "other"
}

func firstWord(s string) string {
	s = strings.TrimSpace(s)
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z') {
			return s[:i]
		}
	}
	return s
}

// StaticTokenAuth builds an Authenticate func over a fixed user->token
// map. Both sides are hashed before a constant-time compare, so neither
// token length nor user existence leaks through comparison timing
// (ConstantTimeCompare alone short-circuits on length mismatch).
func StaticTokenAuth(tokens map[string]string) func(user, token string) error {
	return func(user, token string) error {
		want, ok := tokens[user]
		wantSum := sha256.Sum256([]byte(want))
		gotSum := sha256.Sum256([]byte(token))
		match := subtle.ConstantTimeCompare(wantSum[:], gotSum[:]) == 1
		if !ok || !match {
			return errors.New("server: bad credentials")
		}
		return nil
	}
}
