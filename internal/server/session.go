package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// session is one authenticated client. Its context descends from the
// server's base context, and every query context descends from it, so the
// cancellation tree is: shutdown -> session close -> query deadline.
type session struct {
	id       string
	user     string
	created  time.Time
	lastUsed atomic.Int64 // unix nanos
	inflight atomic.Int64 // queries currently executing on this session
	// cursors counts open server-side cursors owned by this session. A
	// session holding cursors is never TTL-reaped: the cursor store's own
	// (shorter) TTL expires abandoned cursors first, which re-arms the
	// session for expiry.
	cursors atomic.Int64
	ctx     context.Context
	cancel  context.CancelFunc
}

func (s *session) touch() { s.lastUsed.Store(time.Now().UnixNano()) }

// begin/end bracket one in-flight query: a session is idle — and thus
// TTL-expirable — only between requests, never while a long query (whose
// runtime may legitimately exceed the TTL) is still executing.
func (s *session) begin() { s.inflight.Add(1) }
func (s *session) end()   { s.inflight.Add(-1); s.touch() }

// sessionStore holds live sessions and expires idle ones after the TTL.
type sessionStore struct {
	mu  sync.Mutex
	m   map[string]*session
	ttl time.Duration
	// maxLife is the hard lifetime cap: past it a session expires even
	// while holding cursors or with queries in flight. The cursor
	// exemption from the idle TTL is bounded, not a pin-forever lease.
	maxLife time.Duration
	// onExpire runs (outside the lock) for each swept session — the hook
	// that tombstones its open cursors so later fetches get the 410.
	onExpire func(*session)
	base     context.Context
	stop     chan struct{}
	stopOnce sync.Once
}

func newSessionStore(base context.Context, ttl, maxLife time.Duration) *sessionStore {
	st := &sessionStore{m: map[string]*session{}, ttl: ttl, maxLife: maxLife, base: base, stop: make(chan struct{})}
	go st.sweep()
	return st
}

func (st *sessionStore) create(user string) (*session, error) {
	var buf [16]byte
	if _, err := rand.Read(buf[:]); err != nil {
		return nil, fmt.Errorf("server: session id: %w", err)
	}
	ctx, cancel := context.WithCancel(st.base)
	s := &session{
		id: hex.EncodeToString(buf[:]), user: user,
		created: time.Now(), ctx: ctx, cancel: cancel,
	}
	s.touch()
	st.mu.Lock()
	st.m[s.id] = s
	st.mu.Unlock()
	return s, nil
}

// get resolves and touches a session.
func (st *sessionStore) get(id string) (*session, bool) {
	st.mu.Lock()
	s, ok := st.m[id]
	st.mu.Unlock()
	if ok {
		s.touch()
	}
	return s, ok
}

// close cancels a session's context (aborting its in-flight queries at the
// next batch boundary) and forgets it.
func (st *sessionStore) close(id string) bool {
	st.mu.Lock()
	s, ok := st.m[id]
	delete(st.m, id)
	st.mu.Unlock()
	if ok {
		s.cancel()
	}
	return ok
}

func (st *sessionStore) count() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.m)
}

// closeAll cancels every session (server shutdown).
func (st *sessionStore) closeAll() {
	st.mu.Lock()
	sessions := make([]*session, 0, len(st.m))
	for _, s := range st.m {
		sessions = append(sessions, s)
	}
	st.m = map[string]*session{}
	st.mu.Unlock()
	for _, s := range sessions {
		s.cancel()
	}
}

func (st *sessionStore) stopSweeper() { st.stopOnce.Do(func() { close(st.stop) }) }

// sweep expires sessions idle past the TTL, and — regardless of open
// cursors or in-flight queries — any session older than the hard
// max-lifetime cap. Without the cap, a session holding one abandoned
// cursor would pin server state forever (the cursor exempts it from the
// idle TTL); with it, expiry cancels the session context, the onExpire
// hook retires its cursors, and later fetches get the 410 tombstone.
func (st *sessionStore) sweep() {
	interval := st.ttl / 4
	if interval < time.Second {
		interval = time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-st.stop:
			return
		case <-t.C:
			now := time.Now()
			cutoff := now.Add(-st.ttl).UnixNano()
			born := now.Add(-st.maxLife)
			st.mu.Lock()
			var expired []*session
			for id, s := range st.m {
				tooOld := st.maxLife > 0 && s.created.Before(born)
				idle := s.inflight.Load() == 0 && s.cursors.Load() == 0 && s.lastUsed.Load() < cutoff
				if tooOld || idle {
					expired = append(expired, s)
					delete(st.m, id)
				}
			}
			onExpire := st.onExpire
			st.mu.Unlock()
			for _, s := range expired {
				s.cancel()
				if onExpire != nil {
					onExpire(s)
				}
			}
		}
	}
}
