package server

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// latencyBuckets are the histogram upper bounds in seconds, spanning
// sub-millisecond point lookups to multi-second analytical scans.
var latencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// histogram is a fixed-bucket cumulative histogram (Prometheus exposition
// shape). Observations are mutex-guarded; the serving hot path makes one
// observe call per query, which is noise next to query execution.
type histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []uint64 // len(bounds)+1; the extra slot is +Inf
	sum    float64
	total  uint64
}

func newHistogram(bounds []float64) *histogram {
	return &histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
}

func (h *histogram) observe(v float64) {
	h.mu.Lock()
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.sum += v
	h.total++
	h.mu.Unlock()
}

// writeProm renders the histogram in Prometheus text exposition format.
// labels is a pre-rendered label body like `kind="select"` ("" for none).
func (h *histogram) writeProm(w io.Writer, name, labels string) {
	h.mu.Lock()
	counts := append([]uint64(nil), h.counts...)
	sum, total := h.sum, h.total
	h.mu.Unlock()

	sep := ""
	if labels != "" {
		sep = ","
	}
	cum := uint64(0)
	for i, b := range h.bounds {
		cum += counts[i]
		fmt.Fprintf(w, "%s_bucket{%s%sle=\"%s\"} %d\n", name, labels, sep, formatBound(b), cum)
	}
	cum += counts[len(h.bounds)]
	fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, cum)
	if labels == "" {
		fmt.Fprintf(w, "%s_sum %g\n", name, sum)
		fmt.Fprintf(w, "%s_count %d\n", name, total)
	} else {
		fmt.Fprintf(w, "%s_sum{%s} %g\n", name, labels, sum)
		fmt.Fprintf(w, "%s_count{%s} %d\n", name, labels, total)
	}
}

func formatBound(b float64) string {
	return strconv.FormatFloat(b, 'g', -1, 64)
}

// counterVec is a labeled counter family.
type counterVec struct {
	mu sync.Mutex
	m  map[string]uint64
}

func newCounterVec() *counterVec { return &counterVec{m: map[string]uint64{}} }

func (c *counterVec) inc(label string) {
	c.mu.Lock()
	c.m[label]++
	c.mu.Unlock()
}

func (c *counterVec) snapshot() map[string]uint64 {
	c.mu.Lock()
	out := make(map[string]uint64, len(c.m))
	for k, v := range c.m {
		out[k] = v
	}
	c.mu.Unlock()
	return out
}

// queryKinds are the fixed latency-histogram families ("fetch" is one
// server-side cursor page pull).
var queryKinds = []string{"select", "dml", "fetch", "other"}

// metrics aggregates everything /metrics exports. All members are safe for
// concurrent use.
type metrics struct {
	start time.Time

	queryLatency  map[string]*histogram // by query kind
	admissionWait *histogram

	queriesTotal      *counterVec // by terminal status
	admissionRejected atomic.Uint64

	// streamAborts counts NDJSON drains aborted by a mid-stream encode or
	// write error (client went away): the output was truncated, visibly.
	streamAborts atomic.Uint64
	// cursorsExpired counts server-side cursors reaped by the TTL sweep.
	cursorsExpired atomic.Uint64

	planHits      atomic.Uint64
	planMisses    atomic.Uint64
	planEvictions atomic.Uint64
}

func newMetrics() *metrics {
	m := &metrics{
		start:         time.Now(),
		queryLatency:  map[string]*histogram{},
		admissionWait: newHistogram(latencyBuckets),
		queriesTotal:  newCounterVec(),
	}
	for _, k := range queryKinds {
		m.queryLatency[k] = newHistogram(latencyBuckets)
	}
	return m
}

// observeQuery records one finished query.
func (m *metrics) observeQuery(kind, status string, elapsed time.Duration) {
	h, ok := m.queryLatency[kind]
	if !ok {
		h = m.queryLatency["other"]
	}
	h.observe(elapsed.Seconds())
	m.queriesTotal.inc(status)
}

// writeProm renders every metric. Gauges whose state lives elsewhere
// (admission occupancy, session count, monitor drift) are passed in.
func (m *metrics) writeProm(w io.Writer, gauges map[string]float64) {
	fmt.Fprintf(w, "# HELP flock_uptime_seconds Time since the server started.\n")
	fmt.Fprintf(w, "# TYPE flock_uptime_seconds gauge\n")
	fmt.Fprintf(w, "flock_uptime_seconds %g\n", time.Since(m.start).Seconds())

	fmt.Fprintf(w, "# HELP flock_query_seconds Query latency by statement kind.\n")
	fmt.Fprintf(w, "# TYPE flock_query_seconds histogram\n")
	for _, k := range queryKinds {
		m.queryLatency[k].writeProm(w, "flock_query_seconds", `kind="`+k+`"`)
	}

	fmt.Fprintf(w, "# HELP flock_queries_total Finished queries by terminal status.\n")
	fmt.Fprintf(w, "# TYPE flock_queries_total counter\n")
	statuses := m.queriesTotal.snapshot()
	keys := make([]string, 0, len(statuses))
	for k := range statuses {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "flock_queries_total{status=%q} %d\n", k, statuses[k])
	}

	fmt.Fprintf(w, "# HELP flock_admission_wait_seconds Time queries queued waiting for a worker slot.\n")
	fmt.Fprintf(w, "# TYPE flock_admission_wait_seconds histogram\n")
	m.admissionWait.writeProm(w, "flock_admission_wait_seconds", "")

	fmt.Fprintf(w, "# HELP flock_admission_rejected_total Queries rejected because the wait queue was full.\n")
	fmt.Fprintf(w, "# TYPE flock_admission_rejected_total counter\n")
	fmt.Fprintf(w, "flock_admission_rejected_total %d\n", m.admissionRejected.Load())

	fmt.Fprintf(w, "# HELP flock_stream_aborts_total Stream drains aborted by a mid-stream write error.\n")
	fmt.Fprintf(w, "# TYPE flock_stream_aborts_total counter\n")
	fmt.Fprintf(w, "flock_stream_aborts_total %d\n", m.streamAborts.Load())

	fmt.Fprintf(w, "# HELP flock_cursors_expired_total Server-side cursors reaped by the TTL sweep.\n")
	fmt.Fprintf(w, "# TYPE flock_cursors_expired_total counter\n")
	fmt.Fprintf(w, "flock_cursors_expired_total %d\n", m.cursorsExpired.Load())

	fmt.Fprintf(w, "# HELP flock_plan_cache_events_total Prepared-plan cache hits, misses and evictions.\n")
	fmt.Fprintf(w, "# TYPE flock_plan_cache_events_total counter\n")
	fmt.Fprintf(w, "flock_plan_cache_events_total{event=\"hit\"} %d\n", m.planHits.Load())
	fmt.Fprintf(w, "flock_plan_cache_events_total{event=\"miss\"} %d\n", m.planMisses.Load())
	fmt.Fprintf(w, "flock_plan_cache_events_total{event=\"eviction\"} %d\n", m.planEvictions.Load())

	gk := make([]string, 0, len(gauges))
	for k := range gauges {
		gk = append(gk, k)
	}
	sort.Strings(gk)
	// One TYPE line per metric family: labeled keys of the same name (e.g.
	// flock_monitor_psi{model="a"} and {model="b"}) sort adjacently, so the
	// family header is emitted only when the name changes.
	prevName := ""
	for _, k := range gk {
		if name := metricNameOf(k); name != prevName {
			fmt.Fprintf(w, "# TYPE %s gauge\n", name)
			prevName = name
		}
		fmt.Fprintf(w, "%s %g\n", k, gauges[k])
	}
}

// metricNameOf strips a label body from a gauge key ("name{...}" -> name).
func metricNameOf(k string) string {
	for i := 0; i < len(k); i++ {
		if k[i] == '{' {
			return k[:i]
		}
	}
	return k
}
