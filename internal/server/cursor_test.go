package server

// Server-side cursor protocol + stream-drain pinning: pagination without
// re-running queries, session scoping, the distinct 410 for expired
// cursors, TTL interplay with the session sweep, mid-stream client
// disconnects (abort counter, no silent truncation), and cursor-leak
// detection under -race.

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/engine"
)

// waitForCursorsClosed polls until no engine cursor is open (drains tear
// down asynchronously with the client's departure).
func waitForCursorsClosed(t *testing.T) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if engine.CursorsOpen() == 0 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("%d engine cursors still open", engine.CursorsOpen())
}

func TestCursorProtocolPagination(t *testing.T) {
	const rows = 10_000
	_, ts := newTestServer(t, rows, Config{})
	sid := openSession(t, ts.URL, "root")

	resp, body := postJSON(t, ts.URL+"/v1/query", map[string]any{
		"session": sid, "sql": "SELECT id, income FROM customers", "cursor": true,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cursor open: %d %v", resp.StatusCode, body)
	}
	curID, _ := body["cursor"].(string)
	if curID == "" {
		t.Fatalf("no cursor id in %v", body)
	}
	cols := body["columns"].([]any)
	if len(cols) != 2 || cols[0] != "id" {
		t.Fatalf("columns: %v", cols)
	}

	// Page through; the query never re-runs (total must be exact, and rows
	// must arrive in order with no overlap).
	total, pages := 0, 0
	lastID := -1.0
	for {
		resp, body := postJSON(t, ts.URL+"/v1/cursor/fetch", map[string]any{
			"session": sid, "cursor": curID, "max_rows": 1500,
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("fetch page %d: %d %v", pages, resp.StatusCode, body)
		}
		page := body["rows"].([]any)
		for _, r := range page {
			id := r.([]any)[0].(float64)
			if id <= lastID {
				t.Fatalf("rows out of order or repeated: %v after %v", id, lastID)
			}
			lastID = id
		}
		total += len(page)
		pages++
		if body["done"].(bool) {
			break
		}
		if pages > rows {
			t.Fatal("fetch never reported done")
		}
	}
	if total != rows {
		t.Fatalf("paged %d rows, want %d", total, rows)
	}
	if pages < 3 {
		t.Fatalf("only %d pages; pagination did not page", pages)
	}

	// Fetch after done: the cursor is gone, distinctly (410).
	resp, body = postJSON(t, ts.URL+"/v1/cursor/fetch", map[string]any{
		"session": sid, "cursor": curID,
	})
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("fetch after done: want 410, got %d %v", resp.StatusCode, body)
	}
	waitForCursorsClosed(t)
}

func TestCursorSessionScopeAndClose(t *testing.T) {
	s, ts := newTestServer(t, 2000, Config{})
	sidA := openSession(t, ts.URL, "root")
	sidB := openSession(t, ts.URL, "root")

	_, body := postJSON(t, ts.URL+"/v1/query", map[string]any{
		"session": sidA, "sql": "SELECT id FROM customers", "cursor": true,
	})
	curID := body["cursor"].(string)

	// Another session cannot fetch or close it — and cannot learn it exists.
	resp, _ := postJSON(t, ts.URL+"/v1/cursor/fetch", map[string]any{
		"session": sidB, "cursor": curID,
	})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("cross-session fetch: want 404, got %d", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/cursor/close", map[string]any{
		"session": sidB, "cursor": curID,
	})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("cross-session close: want 404, got %d", resp.StatusCode)
	}

	// Unknown id is 404, not 410.
	resp, _ = postJSON(t, ts.URL+"/v1/cursor/fetch", map[string]any{
		"session": sidA, "cursor": strings.Repeat("ab", 16),
	})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown cursor: want 404, got %d", resp.StatusCode)
	}

	// Owner close is 204; a second close stays 204 (idempotent); a fetch
	// after close is 410.
	resp, _ = postJSON(t, ts.URL+"/v1/cursor/close", map[string]any{
		"session": sidA, "cursor": curID,
	})
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("close: want 204, got %d", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/cursor/close", map[string]any{
		"session": sidA, "cursor": curID,
	})
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("double close: want 204, got %d", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/cursor/fetch", map[string]any{
		"session": sidA, "cursor": curID,
	})
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("fetch after close: want 410, got %d", resp.StatusCode)
	}
	// The 410 is owner-only: another session probing the dead id sees the
	// same 404 as a never-existed id (no cross-session liveness leak).
	resp, _ = postJSON(t, ts.URL+"/v1/cursor/fetch", map[string]any{
		"session": sidB, "cursor": curID,
	})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("cross-session fetch of dead cursor: want 404, got %d", resp.StatusCode)
	}
	if n := s.cursors.count(); n != 0 {
		t.Fatalf("%d cursors still registered", n)
	}
	waitForCursorsClosed(t)
}

// TestCursorTTLAndSessionSweep pins the two TTL rules: (1) an idle session
// holding an open cursor is NOT reaped by the session sweep; (2) the cursor
// TTL expires the abandoned cursor (fetches then get 410), after which the
// session becomes reapable again.
func TestCursorTTLAndSessionSweep(t *testing.T) {
	s, ts := newTestServer(t, 2000, Config{
		SessionTTL: 600 * time.Millisecond,
		CursorTTL:  1500 * time.Millisecond,
	})
	sid := openSession(t, ts.URL, "root")
	_, body := postJSON(t, ts.URL+"/v1/query", map[string]any{
		"session": sid, "sql": "SELECT id FROM customers", "cursor": true,
	})
	curID := body["cursor"].(string)

	// Idle long past the session TTL: the open cursor must shield the
	// session from the sweep.
	time.Sleep(1100 * time.Millisecond)
	resp, body := postJSON(t, ts.URL+"/v1/cursor/fetch", map[string]any{
		"session": sid, "cursor": curID, "max_rows": 10,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fetch on cursor-holding session after session TTL: %d %v", resp.StatusCode, body)
	}

	// Now abandon the cursor past the cursor TTL, keeping the session
	// itself alive with queries that never touch the cursor: the sweep
	// reaps it and a late fetch gets the distinct 410.
	deadline := time.Now().Add(10 * time.Second)
	for s.met.cursorsExpired.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("cursor never expired")
		}
		time.Sleep(200 * time.Millisecond)
		postJSON(t, ts.URL+"/v1/query", map[string]any{
			"session": sid, "sql": "SELECT count(*) FROM customers"})
	}
	resp, body = postJSON(t, ts.URL+"/v1/cursor/fetch", map[string]any{
		"session": sid, "cursor": curID, "max_rows": 1,
	})
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("fetch on expired cursor: want 410, got %d %v", resp.StatusCode, body)
	}
	// With the cursor gone the idle session is reapable again (the session
	// sweeper ticks at most every second, so give it two full ticks).
	time.Sleep(2500 * time.Millisecond)
	resp, _ = postJSON(t, ts.URL+"/v1/query", map[string]any{
		"session": sid, "sql": "SELECT count(*) FROM customers"})
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("cursor-free idle session survived the sweep: %d", resp.StatusCode)
	}
	waitForCursorsClosed(t)
}

// TestStreamDrainFromCursor pins the pull-based NDJSON path: header, rows,
// trailer — and that the drain consumed a cursor (no engine cursor leaks).
func TestStreamDrainFromCursor(t *testing.T) {
	const rows = 20_000
	_, ts := newTestServer(t, rows, Config{})
	sid := openSession(t, ts.URL, "root")

	buf, _ := json.Marshal(map[string]any{
		"session": sid, "sql": "SELECT id, income FROM customers", "stream": true,
	})
	resp, err := http.Post(ts.URL+"/v1/query", "application/json", strings.NewReader(string(buf)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lines := 0
	var trailer map[string]any
	for sc.Scan() {
		lines++
		line := sc.Bytes()
		if lines == 1 {
			var hdr map[string]any
			if err := json.Unmarshal(line, &hdr); err != nil || hdr["columns"] == nil {
				t.Fatalf("bad header: %s", line)
			}
			continue
		}
		if line[0] == '{' {
			trailer = map[string]any{}
			if err := json.Unmarshal(line, &trailer); err != nil {
				t.Fatalf("bad trailer: %s", line)
			}
		}
	}
	if trailer == nil {
		t.Fatal("no trailer object")
	}
	if got := trailer["rows"].(float64); int(got) != rows {
		t.Fatalf("trailer rows %v, want %d", got, rows)
	}
	if lines != rows+2 {
		t.Fatalf("%d NDJSON lines, want %d", lines, rows+2)
	}
	waitForCursorsClosed(t)
}

// TestStreamAbortOnClientDisconnect pins the satellite fix: a client
// vanishing mid-drain aborts the stream, closes the cursor, and counts in
// flock_stream_aborts_total — no silent truncation, no leak.
func TestStreamAbortOnClientDisconnect(t *testing.T) {
	s, ts := newTestServer(t, 200_000, Config{})
	sid := openSession(t, ts.URL, "root")

	ctx, cancel := context.WithCancel(context.Background())
	buf, _ := json.Marshal(map[string]any{
		"session": sid, "sql": "SELECT id, income FROM customers", "stream": true,
	})
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/query", strings.NewReader(string(buf)))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// Read a little, then walk away mid-stream.
	b := make([]byte, 4096)
	if _, err := resp.Body.Read(b); err != nil {
		t.Fatal(err)
	}
	cancel()
	resp.Body.Close()

	deadline := time.Now().Add(5 * time.Second)
	for s.met.streamAborts.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("flock_stream_aborts_total never incremented after a client disconnect")
		}
		time.Sleep(10 * time.Millisecond)
	}
	waitForCursorsClosed(t)

	// The counter is on /metrics.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	sc := bufio.NewScanner(mresp.Body)
	found := false
	for sc.Scan() {
		if strings.HasPrefix(sc.Text(), "flock_stream_aborts_total") &&
			!strings.HasPrefix(sc.Text(), "#") {
			found = true
			if strings.HasSuffix(sc.Text(), " 0") {
				t.Fatalf("metric exported but zero: %s", sc.Text())
			}
		}
	}
	if !found {
		t.Fatal("flock_stream_aborts_total not exported")
	}
}

// TestCursorCloseDuringFetch races /v1/cursor/close (and session delete)
// against in-flight fetches: the engine cursor must never be closed under
// a running Next (finish takes the fetch mutex), and every outcome must be
// one of 200 / 404 / 410 / 499 / 401 — never a 500 or a crash. Run under
// -race in CI's cursor focus pass.
func TestCursorCloseDuringFetch(t *testing.T) {
	_, ts := newTestServer(t, 50_000, Config{})
	sid := openSession(t, ts.URL, "root")

	for round := 0; round < 8; round++ {
		_, body := postJSON(t, ts.URL+"/v1/query", map[string]any{
			"session": sid,
			"sql":     "SELECT id, PREDICT(churn, age, income, tenure, region) AS s FROM customers",
			"cursor":  true,
		})
		curID, _ := body["cursor"].(string)
		if curID == "" {
			t.Fatalf("round %d: no cursor: %v", round, body)
		}
		var wg sync.WaitGroup
		for f := 0; f < 3; f++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				resp, _ := postJSON(t, ts.URL+"/v1/cursor/fetch", map[string]any{
					"session": sid, "cursor": curID, "max_rows": 2000,
				})
				switch resp.StatusCode {
				case http.StatusOK, http.StatusNotFound, http.StatusGone, 499, http.StatusUnauthorized:
				default:
					t.Errorf("fetch during close: unexpected %d", resp.StatusCode)
				}
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			postJSON(t, ts.URL+"/v1/cursor/close", map[string]any{
				"session": sid, "cursor": curID,
			})
		}()
		wg.Wait()
	}
	waitForCursorsClosed(t)
}

// TestCursorPerSessionLimit pins the open-cursor bound.
func TestCursorPerSessionLimit(t *testing.T) {
	_, ts := newTestServer(t, 1000, Config{MaxCursorsPerSession: 2})
	sid := openSession(t, ts.URL, "root")
	open := func() (*http.Response, map[string]any) {
		return postJSON(t, ts.URL+"/v1/query", map[string]any{
			"session": sid, "sql": "SELECT id FROM customers", "cursor": true,
		})
	}
	var ids []string
	for i := 0; i < 2; i++ {
		resp, body := open()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("open %d: %d %v", i, resp.StatusCode, body)
		}
		ids = append(ids, body["cursor"].(string))
	}
	resp, _ := open()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-limit open: want 429, got %d", resp.StatusCode)
	}
	// Closing one frees a slot.
	postJSON(t, ts.URL+"/v1/cursor/close", map[string]any{"session": sid, "cursor": ids[0]})
	if resp, body := open(); resp.StatusCode != http.StatusOK {
		t.Fatalf("open after close: %d %v", resp.StatusCode, body)
	}
}

// TestCursorPreparedStatement pins /v1/exec with cursor:true over a
// prepared SELECT, including PREDICT.
func TestCursorPreparedStatement(t *testing.T) {
	_, ts := newTestServer(t, 5000, Config{})
	sid := openSession(t, ts.URL, "root")

	resp, body := postJSON(t, ts.URL+"/v1/prepare", map[string]any{
		"session": sid,
		"sql":     "SELECT id, PREDICT(churn, age, income, tenure, region) AS risk FROM customers WHERE income > 50000.0",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("prepare: %d %v", resp.StatusCode, body)
	}
	stmt := body["stmt"].(string)

	resp, body = postJSON(t, ts.URL+"/v1/exec", map[string]any{
		"session": sid, "stmt": stmt, "cursor": true,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("exec cursor open: %d %v", resp.StatusCode, body)
	}
	curID := body["cursor"].(string)
	total := 0
	for {
		resp, body = postJSON(t, ts.URL+"/v1/cursor/fetch", map[string]any{
			"session": sid, "cursor": curID, "max_rows": 1000,
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("fetch: %d %v", resp.StatusCode, body)
		}
		page := body["rows"].([]any)
		if len(page) > 0 {
			row := page[0].([]any)
			if len(row) != 2 {
				t.Fatalf("row shape: %v", row)
			}
			if risk := row[1].(float64); risk < 0 || risk > 1 {
				t.Fatalf("risk out of range: %v", risk)
			}
		}
		total += len(page)
		if body["done"].(bool) {
			break
		}
	}
	if total == 0 || total >= 5000 {
		t.Fatalf("prepared cursor drained %d rows; want a filtered subset", total)
	}
	waitForCursorsClosed(t)

	// DML handles cannot be cursored.
	resp, body = postJSON(t, ts.URL+"/v1/prepare", map[string]any{
		"session": sid, "sql": "INSERT INTO customers (id) VALUES (1)",
	})
	if resp.StatusCode == http.StatusOK {
		stmt = body["stmt"].(string)
		resp, _ = postJSON(t, ts.URL+"/v1/exec", map[string]any{
			"session": sid, "stmt": stmt, "cursor": true,
		})
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("DML cursor: want 400, got %d", resp.StatusCode)
		}
	}
}

// TestCursorFetchCancellationKeepsCursor pins retryability: a fetch whose
// deadline expires mid-page leaves the cursor open; the next fetch
// succeeds.
func TestCursorFetchCancellationKeepsCursor(t *testing.T) {
	_, ts := newTestServer(t, 5000, Config{})
	sid := openSession(t, ts.URL, "root")
	_, body := postJSON(t, ts.URL+"/v1/query", map[string]any{
		"session": sid, "sql": "SELECT id FROM customers", "cursor": true,
	})
	curID := body["cursor"].(string)

	// A canceled fetch request (client walks away while queued/working)
	// must not kill the cursor.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	buf, _ := json.Marshal(map[string]any{"session": sid, "cursor": curID, "max_rows": 100})
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/cursor/fetch",
		strings.NewReader(string(buf)))
	_, err := http.DefaultClient.Do(req)
	if err == nil {
		t.Fatal("expected canceled request error")
	}

	resp, body := postJSON(t, ts.URL+"/v1/cursor/fetch", map[string]any{
		"session": sid, "cursor": curID, "max_rows": 100,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fetch after canceled fetch: %d %v", resp.StatusCode, body)
	}
	if len(body["rows"].([]any)) != 100 {
		t.Fatalf("page size %d, want 100", len(body["rows"].([]any)))
	}
	postJSON(t, ts.URL+"/v1/cursor/close", map[string]any{"session": sid, "cursor": curID})
	waitForCursorsClosed(t)
}

// TestSessionMaxLifetimeCap pins the hard lifetime cap: a session that
// stays active AND holds an open cursor — both of which exempt it from the
// idle TTL — is still expired once it outlives SessionMaxLifetime, and a
// late fetch on its cursor gets the distinct 410 tombstone, not a 404.
func TestSessionMaxLifetimeCap(t *testing.T) {
	_, ts := newTestServer(t, 2000, Config{
		SessionTTL:         600 * time.Millisecond, // sweeper ticks every second
		CursorTTL:          time.Hour,              // cursor TTL must not be what kills it
		SessionMaxLifetime: 1500 * time.Millisecond,
	})
	sid := openSession(t, ts.URL, "root")
	_, body := postJSON(t, ts.URL+"/v1/query", map[string]any{
		"session": sid, "sql": "SELECT id FROM customers", "cursor": true,
	})
	curID := body["cursor"].(string)

	// Stay active the whole time: the cap must fire on age, not idleness.
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, _ := postJSON(t, ts.URL+"/v1/query", map[string]any{
			"session": sid, "sql": "SELECT count(*) FROM customers"})
		if resp.StatusCode == http.StatusUnauthorized {
			break
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query while waiting for cap: %d", resp.StatusCode)
		}
		if time.Now().After(deadline) {
			t.Fatal("session outlived its max lifetime cap")
		}
		time.Sleep(150 * time.Millisecond)
	}
	resp, body := postJSON(t, ts.URL+"/v1/cursor/fetch", map[string]any{
		"session": sid, "cursor": curID, "max_rows": 1,
	})
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("fetch after max-lifetime expiry: want 410, got %d %v", resp.StatusCode, body)
	}
	waitForCursorsClosed(t)
}
