package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/infer"
)

// AttachInferPlane mounts the inference-plane admin endpoints and exports
// the plane's gauges on /metrics:
//
//	POST /v1/admin/infer/deploy   {session, model, version, stage}
//	POST /v1/admin/infer/promote  {session, model}
//	POST /v1/admin/infer/rollback {session, model}
//	POST /v1/admin/infer/status   {session}
//
// All four are session-authenticated and audited, following the other
// admin endpoints. Deploy registers a candidate version in shadow or
// canary stage; promote/rollback act manually on the candidate ahead of
// (or against) the automatic gate; status reports every candidate's
// mirrored-traffic stats.
func (s *Server) AttachInferPlane(p *infer.Plane) {
	s.AttachGauges(p.Gauges)
	s.mux.HandleFunc("POST /v1/admin/infer/deploy", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Session string `json:"session"`
			Model   string `json:"model"`
			Version int    `json:"version"`
			Stage   string `json:"stage"`
		}
		user, ok := s.adminSession(w, r, &req, &req.Session)
		if !ok {
			return
		}
		stage, err := infer.ParseStage(req.Stage)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		st, err := p.Deploy(req.Model, req.Version, stage)
		s.flock.Audit.Record(user, "admin.infer.deploy",
			fmt.Sprintf("model:%s", req.Model),
			fmt.Sprintf("version %d as %s", req.Version, req.Stage), err == nil)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	s.mux.HandleFunc("POST /v1/admin/infer/promote", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Session string `json:"session"`
			Model   string `json:"model"`
		}
		user, ok := s.adminSession(w, r, &req, &req.Session)
		if !ok {
			return
		}
		st, err := p.PromoteCandidate(req.Model)
		s.flock.Audit.Record(user, "admin.infer.promote",
			fmt.Sprintf("model:%s", req.Model), "manual promotion", err == nil)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	s.mux.HandleFunc("POST /v1/admin/infer/rollback", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Session string `json:"session"`
			Model   string `json:"model"`
		}
		user, ok := s.adminSession(w, r, &req, &req.Session)
		if !ok {
			return
		}
		st, err := p.RollbackCandidate(req.Model)
		s.flock.Audit.Record(user, "admin.infer.rollback",
			fmt.Sprintf("model:%s", req.Model), "manual rollback", err == nil)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	s.mux.HandleFunc("POST /v1/admin/infer/status", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Session string `json:"session"`
		}
		if _, ok := s.adminSession(w, r, &req, &req.Session); !ok {
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"deployments": p.Deployments()})
	})
}

// adminSession decodes the request body into req and authenticates the
// session named by *sessionField, the shared preamble of the admin
// endpoints. On failure it writes the HTTP error and returns ok=false.
func (s *Server) adminSession(w http.ResponseWriter, r *http.Request, req any, sessionField *string) (string, bool) {
	if err := json.NewDecoder(r.Body).Decode(req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad admin request: %w", err))
		return "", false
	}
	sess, ok := s.sessions.get(*sessionField)
	if !ok {
		writeError(w, http.StatusUnauthorized, errors.New("unknown or expired session"))
		return "", false
	}
	return sess.user, true
}
