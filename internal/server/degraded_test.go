package server

// Serving-layer failure-mode tests: a poisoned WAL flips the instance to
// read-only degraded mode (visible on /readyz and /metrics, curable over
// POST /v1/admin/reopen), and a dead scoring backend fails PREDICT fast
// through the circuit breaker instead of hanging queries — then heals via
// the half-open probe once the backend returns.

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/onnx"
)

func getBody(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(raw)
}

func TestDegradedModeEndToEnd(t *testing.T) {
	dir := t.TempDir()
	flock, dur, err := core.OpenDir(dir, core.DurabilityOptions{WALSync: true})
	if err != nil {
		t.Fatal(err)
	}
	flock.Access.AssignRole("root", "admin")
	s := New(flock, Config{OnSession: func(u string) { flock.Access.AssignRole(u, "admin") }})
	s.AttachGauges(dur.Gauges)
	s.AttachReopen(dur.Reopen)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	sid := openSession(t, ts.URL, "root")

	exec := func(sql string) (int, map[string]any) {
		resp, body := postJSON(t, ts.URL+"/v1/query", map[string]any{"session": sid, "sql": sql})
		return resp.StatusCode, body
	}
	if code, body := exec("CREATE TABLE t (id int)"); code != http.StatusOK {
		t.Fatalf("create: %d %v", code, body)
	}
	if code, body := exec("INSERT INTO t VALUES (1)"); code != http.StatusOK {
		t.Fatalf("insert: %d %v", code, body)
	}
	if code, _ := getBody(t, ts.URL+"/readyz"); code != http.StatusOK {
		t.Fatalf("healthy /readyz = %d", code)
	}

	// Disk starts eating fsyncs: the next commit poisons the WAL.
	fault.Reset()
	fault.Enable("wal.fsync", fault.Spec{})
	defer fault.Reset()
	code, body := exec("INSERT INTO t VALUES (2)")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("poisoning insert: %d %v, want 503", code, body)
	}
	fault.Reset()

	// Degraded: not ready, but alive — and reads still serve.
	if code, raw := getBody(t, ts.URL+"/readyz"); code != http.StatusServiceUnavailable || !strings.Contains(raw, "degraded") {
		t.Fatalf("degraded /readyz = %d %q", code, raw)
	}
	if code, _ := getBody(t, ts.URL+"/healthz"); code != http.StatusOK {
		t.Fatalf("degraded /healthz = %d (liveness must not flap on a bad disk)", code)
	}
	if code, body := exec("SELECT count(*) FROM t"); code != http.StatusOK {
		t.Fatalf("degraded read: %d %v", code, body)
	}
	if code, body := exec("INSERT INTO t VALUES (3)"); code != http.StatusServiceUnavailable ||
		!strings.Contains(body["error"].(string), "read-only") {
		t.Fatalf("degraded write: %d %v, want 503 read-only", code, body)
	}
	// Retry-After accompanies the 503 so clients back off instead of spinning.
	resp, _ := postJSON(t, ts.URL+"/v1/query", map[string]any{"session": sid, "sql": "INSERT INTO t VALUES (3)"})
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("degraded 503 missing Retry-After")
	}
	if code, raw := getBody(t, ts.URL+"/metrics"); code != http.StatusOK ||
		!strings.Contains(raw, "flock_degraded_mode 1") || !strings.Contains(raw, "flock_wal_poisoned 1") {
		t.Fatalf("degraded /metrics missing gauges (code %d):\n%s", code, raw)
	}

	// Operator recovery: fold memory into a fresh snapshot + WAL.
	resp, rbody := postJSON(t, ts.URL+"/v1/admin/reopen", map[string]any{"session": sid})
	if resp.StatusCode != http.StatusOK || rbody["was_degraded"] != true {
		t.Fatalf("admin reopen: %d %v", resp.StatusCode, rbody)
	}
	if code, _ := getBody(t, ts.URL+"/readyz"); code != http.StatusOK {
		t.Fatalf("post-reopen /readyz = %d", code)
	}
	if code, body := exec("INSERT INTO t VALUES (4)"); code != http.StatusOK {
		t.Fatalf("post-reopen insert: %d %v", code, body)
	}
	// Nothing acked was lost across degradation + reopen. Expected rows:
	// the two acked inserts (1, 4) plus the poisoning insert 2 — its frame
	// was installed before the failed fsync, so it stays visible (and the
	// reopen snapshot, a superset of all acked writes, preserved it). The
	// gated degraded-mode inserts never installed anything.
	if code, body := exec("SELECT count(*) FROM t"); code != http.StatusOK || body["rows"] == nil {
		t.Fatalf("final read: %d %v", code, body)
	} else if n := body["rows"].([]any)[0].([]any)[0].(float64); n != 3 {
		t.Fatalf("rows = %v, want 3", n)
	}
}

// TestPredictBreakerFailsFastAndHeals pins the breaker behavior end to end:
// a down scoring backend makes PREDICT fail fast with 502 (no fallback
// configured), and once the backend returns, the half-open probe restores
// service without a restart.
func TestPredictBreakerFailsFastAndHeals(t *testing.T) {
	s, ts := newTestServer(t, 100, Config{})
	t.Cleanup(onnx.ResetBreakers)

	// A backend whose health we control: 503 while down, real scoring when up.
	var down atomic.Bool
	down.Store(true)
	var scoring *onnx.ScoringServer
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if down.Load() {
			http.Error(w, "backend down", http.StatusServiceUnavailable)
			return
		}
		body, _ := io.ReadAll(r.Body)
		req, _ := http.NewRequest(http.MethodPost, scoring.URL, strings.NewReader(string(body)))
		req.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		w.WriteHeader(resp.StatusCode)
		_, _ = io.Copy(w, resp.Body)
	}))
	defer backend.Close()

	const cooldown = 100 * time.Millisecond
	s.Flock().DB.SetUDFScorerFactory(func(g *onnx.Graph) (onnx.Scorer, error) {
		if scoring == nil {
			srv, err := onnx.ServeGraph(g)
			if err != nil {
				return nil, err
			}
			t.Cleanup(func() { srv.Close() })
			scoring = srv
		}
		return &onnx.ResilientScorer{
			S:           onnx.NewHTTPScorer(g, backend.URL, 1000),
			Breaker:     onnx.SharedBreaker(backend.URL, 2, cooldown),
			MaxRetries:  1,
			BaseBackoff: time.Millisecond,
		}, nil
	})
	sid := openSession(t, ts.URL, "alice")
	predict := func() (int, map[string]any, time.Duration) {
		start := time.Now()
		resp, body := postJSON(t, ts.URL+"/v1/query", map[string]any{
			"session": sid, "sql": predictUDFSQL, "level": "udf"})
		return resp.StatusCode, body, time.Since(start)
	}

	// Down backend: typed backend error, mapped to 502.
	code, body, _ := predict()
	if code != http.StatusBadGateway {
		t.Fatalf("down backend: %d %v, want 502", code, body)
	}
	// The failures opened the breaker: the next call fails fast (no retry
	// loop, no backend round-trips).
	code, _, elapsed := predict()
	if code != http.StatusBadGateway {
		t.Fatalf("open breaker: %d, want 502", code)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("open breaker took %v, want fast failure", elapsed)
	}
	if raw := metricsBody(t, ts.URL); !strings.Contains(raw, "flock_scorer_breaker_state") {
		t.Fatalf("/metrics missing breaker state:\n%s", raw)
	}

	// Backend recovers; after the cooldown the half-open probe restores
	// service with no operator action.
	down.Store(false)
	time.Sleep(cooldown + 20*time.Millisecond)
	code, body, _ = predict()
	if code != http.StatusOK {
		t.Fatalf("healed backend: %d %v, want 200 via half-open probe", code, body)
	}
}

func metricsBody(t *testing.T, base string) string {
	t.Helper()
	_, raw := getBody(t, base+"/metrics")
	return raw
}

// TestRetryAfterTracksPressure pins the satellite: Retry-After is derived
// from queue pressure, not hardcoded to 1.
func TestRetryAfterTracksPressure(t *testing.T) {
	flock := newTestFlock(t, 10)
	s := New(flock, Config{OnSession: func(u string) { flock.Access.AssignRole(u, "admin") }})
	defer s.Shutdown(context.Background())
	if got := s.retryAfterSeconds(); got != 1 {
		t.Fatalf("idle Retry-After = %d, want 1", got)
	}
	rec := httptest.NewRecorder()
	s.setRetryAfter(rec)
	if v := rec.Header().Get("Retry-After"); v != "1" {
		t.Fatalf("header = %q, want 1", v)
	}
	// The /metrics surface exports the current advice.
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	if raw := metricsBody(t, ts.URL); !strings.Contains(raw, "flock_retry_after_seconds") {
		t.Fatalf("/metrics missing flock_retry_after_seconds:\n%s", raw)
	}
}

// TestAdminReopenRequiresSession rejects unauthenticated recovery calls.
func TestAdminReopenRequiresSession(t *testing.T) {
	_, ts := newTestServer(t, 10, Config{})
	resp, body := postJSON(t, ts.URL+"/v1/admin/reopen", map[string]any{"session": "bogus"})
	if resp.StatusCode != http.StatusUnauthorized && resp.StatusCode != http.StatusNotFound {
		t.Fatalf("bogus session reopen: %d %v", resp.StatusCode, body)
	}
}
