package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/monitor"
	"repro/internal/onnx"
	"repro/internal/workload"
)

// newTestFlock builds a Flock with the scoring table and a deployed churn
// model: PREDICT(churn, age, income, tenure, region).
func newTestFlock(t testing.TB, rows int) *core.Flock {
	t.Helper()
	f, err := core.New()
	if err != nil {
		t.Fatal(err)
	}
	f.Access.AssignRole("root", "admin")
	if err := workload.LoadScoringTable(f.DB, workload.ScoringConfig{
		Rows: rows, Seed: 7, Regions: 6,
	}); err != nil {
		t.Fatal(err)
	}
	pipe, err := workload.TrainScoringPipeline(500, 42, 10, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.DeployPipeline("root", "churn", pipe, core.TrainingInfo{
		Script: "server_test", Tables: []string{"customers"},
	}); err != nil {
		t.Fatal(err)
	}
	return f
}

func newTestServer(t testing.TB, rows int, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.OnSession == nil {
		flock := newTestFlock(t, rows)
		cfg.OnSession = func(user string) { flock.Access.AssignRole(user, "admin") }
		s := New(flock, cfg)
		ts := httptest.NewServer(s.Handler())
		t.Cleanup(func() {
			ts.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			_ = s.Shutdown(ctx)
		})
		return s, ts
	}
	panic("unused")
}

func postJSON(t testing.TB, url string, body any) (*http.Response, map[string]any) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	if len(raw) > 0 && json.Valid(raw) {
		_ = json.Unmarshal(raw, &out)
	} else if len(raw) > 0 {
		out = map[string]any{"_raw": string(raw)}
	}
	return resp, out
}

func openSession(t testing.TB, baseURL, user string) string {
	t.Helper()
	resp, body := postJSON(t, baseURL+"/v1/sessions", map[string]string{"user": user})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("session create: %d %v", resp.StatusCode, body)
	}
	return body["session"].(string)
}

func TestSessionLifecycleAndAuth(t *testing.T) {
	flock := newTestFlock(t, 100)
	s := New(flock, Config{
		Authenticate: StaticTokenAuth(map[string]string{"alice": "s3cret"}),
		OnSession:    func(user string) { flock.Access.AssignRole(user, "admin") },
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Shutdown(context.Background())

	// Bad token rejected.
	resp, _ := postJSON(t, ts.URL+"/v1/sessions", map[string]string{"user": "alice", "token": "wrong"})
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("bad token: want 401, got %d", resp.StatusCode)
	}
	// Good token admitted.
	resp, body := postJSON(t, ts.URL+"/v1/sessions", map[string]string{"user": "alice", "token": "s3cret"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("good token: want 200, got %d", resp.StatusCode)
	}
	sid := body["session"].(string)

	// Session works...
	resp, body = postJSON(t, ts.URL+"/v1/query", map[string]any{
		"session": sid, "sql": "SELECT count(*) FROM customers"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query: want 200, got %d %v", resp.StatusCode, body)
	}
	// ...until deleted.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sessions/"+sid, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: want 204, got %d", dresp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/query", map[string]any{
		"session": sid, "sql": "SELECT count(*) FROM customers"})
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("closed session: want 401, got %d", resp.StatusCode)
	}
	// The login attempts are on the audit trail.
	denied, granted := false, false
	for _, e := range flock.Audit.Entries() {
		if e.Action == "login" {
			if e.Allowed {
				granted = true
			} else {
				denied = true
			}
		}
	}
	if !denied || !granted {
		t.Fatalf("audit trail missing login records (denied=%t granted=%t)", denied, granted)
	}
}

func TestQueryGovernanceDenied(t *testing.T) {
	flock := newTestFlock(t, 100)
	// No OnSession role grant: the user has no permissions at all.
	s := New(flock, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Shutdown(context.Background())

	sid := openSession(t, ts.URL, "mallory")
	resp, body := postJSON(t, ts.URL+"/v1/query", map[string]any{
		"session": sid, "sql": "SELECT count(*) FROM customers"})
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("want 403 for ungranted user, got %d %v", resp.StatusCode, body)
	}
}

func TestDegenerateSQLReturns400(t *testing.T) {
	_, ts := newTestServer(t, 50, Config{})
	sid := openSession(t, ts.URL, "alice")
	for _, sql := range []string{";", "", "   "} {
		resp, body := postJSON(t, ts.URL+"/v1/query", map[string]any{"session": sid, "sql": sql})
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("sql %q: want 400, got %d %v", sql, resp.StatusCode, body)
		}
	}
	// Streaming a DML result still yields a columns array, not null.
	buf, _ := json.Marshal(map[string]any{
		"session": sid, "sql": "INSERT INTO customers VALUES (7777, 30.0, 50000.0, 2.0, 'us-east')", "stream": true})
	resp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	first := strings.SplitN(strings.TrimSpace(string(raw)), "\n", 2)[0]
	if !strings.Contains(first, `"columns":[]`) {
		t.Fatalf("stream header for DML must carry an empty columns array, got %q", first)
	}
}

func TestPrepareGovernanceDenied(t *testing.T) {
	flock := newTestFlock(t, 100)
	s := New(flock, Config{}) // no role grant: user has no permissions
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Shutdown(context.Background())

	sid := openSession(t, ts.URL, "mallory")
	resp, body := postJSON(t, ts.URL+"/v1/prepare", map[string]any{
		"session": sid, "sql": "SELECT count(*) FROM customers"})
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("want 403 preparing without grants, got %d %v", resp.StatusCode, body)
	}
	denied := false
	for _, e := range flock.Audit.Entries() {
		if e.User == "mallory" && e.Action == "denied" {
			denied = true
		}
	}
	if !denied {
		t.Fatal("denied prepare missing from audit log")
	}
	// The same cached entry must also be refused when another user without
	// grants hits it after an authorized user planned it.
	flock.Access.AssignRole("alice", "admin")
	aid := openSession(t, ts.URL, "alice")
	if resp, body := postJSON(t, ts.URL+"/v1/prepare", map[string]any{
		"session": aid, "sql": "SELECT count(*) FROM customers"}); resp.StatusCode != http.StatusOK {
		t.Fatalf("authorized prepare failed: %d %v", resp.StatusCode, body)
	}
	if resp, _ := postJSON(t, ts.URL+"/v1/prepare", map[string]any{
		"session": sid, "sql": "SELECT count(*) FROM customers"}); resp.StatusCode != http.StatusForbidden {
		t.Fatalf("cache hit bypassed governance: got %d", resp.StatusCode)
	}
}

func TestQueryStreamNDJSON(t *testing.T) {
	_, ts := newTestServer(t, 300, Config{})
	sid := openSession(t, ts.URL, "alice")
	buf, _ := json.Marshal(map[string]any{
		"session": sid, "sql": "SELECT id, region FROM customers ORDER BY id LIMIT 5", "stream": true})
	resp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("want ndjson content type, got %q", ct)
	}
	raw, _ := io.ReadAll(resp.Body)
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	// header + 5 rows + trailer
	if len(lines) != 7 {
		t.Fatalf("want 7 NDJSON lines, got %d: %q", len(lines), lines)
	}
	var header struct {
		Columns []string `json:"columns"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &header); err != nil || len(header.Columns) != 2 {
		t.Fatalf("bad stream header %q: %v", lines[0], err)
	}
	var trailer struct {
		Rows int `json:"rows"`
	}
	if err := json.Unmarshal([]byte(lines[6]), &trailer); err != nil || trailer.Rows != 5 {
		t.Fatalf("bad stream trailer %q: %v", lines[6], err)
	}
}

// TestConcurrentSessions is the headline integration test: N parallel
// sessions issuing mixed SELECT / PREDICT / DML traffic, with the race
// detector watching the whole serving + engine + governance stack.
func TestConcurrentSessions(t *testing.T) {
	s, ts := newTestServer(t, 2000, Config{MaxWorkers: 8, MaxQueue: 256})
	const workers = 16
	const iters = 10

	var wg sync.WaitGroup
	errs := make(chan error, workers*iters)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sid := openSession(t, ts.URL, fmt.Sprintf("user%d", w))
			for i := 0; i < iters; i++ {
				var sql string
				switch i % 4 {
				case 0:
					sql = "SELECT count(*), avg(age) FROM customers"
				case 1:
					sql = "SELECT id, PREDICT(churn, age, income, tenure, region) AS s FROM customers WHERE id < 50"
				case 2:
					sql = fmt.Sprintf("INSERT INTO customers VALUES (%d, 30.0, 50000.0, 2.0, 'us-east')", 100000+w*1000+i)
				case 3:
					sql = "SELECT region, count(*) FROM customers GROUP BY region ORDER BY region"
				}
				resp, body := postJSON(t, ts.URL+"/v1/query", map[string]any{"session": sid, "sql": sql})
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("worker %d iter %d: %d %v", w, i, resp.StatusCode, body)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if idx := s.Flock().Audit.Verify(); idx != -1 {
		t.Fatalf("audit chain corrupted at %d", idx)
	}
}

// gatedScorer blocks scoring until released (or the query is canceled),
// simulating a slow/hung model service behind UDF-mode PREDICT.
type gatedScorer struct {
	started chan struct{} // buffered; one token per scoring call
	release chan struct{}
}

func (g *gatedScorer) Score(b *onnx.Batch) ([]float64, error) {
	return g.ScoreContext(context.Background(), b)
}

func (g *gatedScorer) ScoreContext(ctx context.Context, b *onnx.Batch) ([]float64, error) {
	select {
	case g.started <- struct{}{}:
	default:
	}
	select {
	case <-g.release:
		return make([]float64, b.N), nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

const predictUDFSQL = "SELECT PREDICT(churn, age, income, tenure, region) FROM customers"

// TestCancellationOnSessionClose proves a canceled query's handler returns
// promptly: a query wedged on a hung scorer unwinds as soon as its session
// is closed.
func TestCancellationOnSessionClose(t *testing.T) {
	s, ts := newTestServer(t, 200, Config{})
	gate := &gatedScorer{started: make(chan struct{}, 1), release: make(chan struct{})}
	defer close(gate.release)
	s.Flock().DB.SetUDFScorerFactory(func(g *onnx.Graph) (onnx.Scorer, error) { return gate, nil })

	sid := openSession(t, ts.URL, "alice")
	type result struct {
		code    int
		elapsed time.Duration
	}
	done := make(chan result, 1)
	go func() {
		start := time.Now()
		resp, _ := postJSON(t, ts.URL+"/v1/query", map[string]any{
			"session": sid, "sql": predictUDFSQL, "level": "udf"})
		done <- result{resp.StatusCode, time.Since(start)}
	}()

	select {
	case <-gate.started:
	case <-time.After(10 * time.Second):
		t.Fatal("query never reached the scorer")
	}
	cancelAt := time.Now()
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sessions/"+sid, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()

	select {
	case r := <-done:
		if r.code != 499 {
			t.Fatalf("want 499 for canceled query, got %d", r.code)
		}
		if since := time.Since(cancelAt); since > 3*time.Second {
			t.Fatalf("handler took %v to unwind after cancel", since)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("canceled query's handler never returned")
	}
}

func TestQueryDeadline(t *testing.T) {
	s, ts := newTestServer(t, 200, Config{})
	gate := &gatedScorer{started: make(chan struct{}, 1), release: make(chan struct{})}
	defer close(gate.release)
	s.Flock().DB.SetUDFScorerFactory(func(g *onnx.Graph) (onnx.Scorer, error) { return gate, nil })

	sid := openSession(t, ts.URL, "alice")
	start := time.Now()
	resp, body := postJSON(t, ts.URL+"/v1/query", map[string]any{
		"session": sid, "sql": predictUDFSQL, "level": "udf", "timeout_ms": 100})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("want 504 on deadline, got %d %v", resp.StatusCode, body)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline enforcement took %v", elapsed)
	}
}

func TestAdmissionControlRejectsOverload(t *testing.T) {
	s, ts := newTestServer(t, 200, Config{MaxWorkers: 1, MaxQueue: 1})
	gate := &gatedScorer{started: make(chan struct{}, 8), release: make(chan struct{})}
	s.Flock().DB.SetUDFScorerFactory(func(g *onnx.Graph) (onnx.Scorer, error) { return gate, nil })
	sid := openSession(t, ts.URL, "alice")

	codes := make(chan int, 3)
	var wg sync.WaitGroup
	// First query occupies the worker slot.
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, _ := postJSON(t, ts.URL+"/v1/query", map[string]any{
			"session": sid, "sql": predictUDFSQL, "level": "udf"})
		codes <- resp.StatusCode
	}()
	<-gate.started

	// Second and third: one queues, one must be rejected with 503.
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, _ := postJSON(t, ts.URL+"/v1/query", map[string]any{
				"session": sid, "sql": predictUDFSQL, "level": "udf"})
			codes <- resp.StatusCode
		}()
	}
	// Give both stragglers time to hit admission before releasing.
	deadline := time.Now().Add(5 * time.Second)
	for s.adm.queued.Load() < 1 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	time.Sleep(50 * time.Millisecond)
	close(gate.release)
	wg.Wait()
	close(codes)

	var ok, rejected int
	for c := range codes {
		switch c {
		case http.StatusOK:
			ok++
		case http.StatusServiceUnavailable:
			rejected++
		default:
			t.Fatalf("unexpected status %d", c)
		}
	}
	if rejected != 1 || ok != 2 {
		t.Fatalf("want 2 ok + 1 rejected, got %d ok + %d rejected", ok, rejected)
	}
	// The rejection is visible on /metrics.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(string(mbody), "flock_admission_rejected_total 1") {
		t.Fatal("admission rejection not exported on /metrics")
	}
}

func TestPreparedExecReflectsWrites(t *testing.T) {
	s, ts := newTestServer(t, 100, Config{})
	sid := openSession(t, ts.URL, "alice")

	resp, body := postJSON(t, ts.URL+"/v1/prepare", map[string]any{
		"session": sid, "sql": "SELECT count(*) FROM customers"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("prepare: %d %v", resp.StatusCode, body)
	}
	stmt := body["stmt"].(string)
	if body["cached"].(bool) {
		t.Fatal("first prepare cannot be a cache hit")
	}

	count := func() float64 {
		resp, body := postJSON(t, ts.URL+"/v1/exec", map[string]any{"session": sid, "stmt": stmt})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("exec: %d %v", resp.StatusCode, body)
		}
		return body["rows"].([]any)[0].([]any)[0].(float64)
	}
	before := count()
	resp, body = postJSON(t, ts.URL+"/v1/query", map[string]any{
		"session": sid, "sql": "INSERT INTO customers VALUES (99999, 30.0, 50000.0, 2.0, 'us-east')"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("insert: %d %v", resp.StatusCode, body)
	}
	if after := count(); after != before+1 {
		t.Fatalf("prepared plan served stale data: before=%v after=%v", before, after)
	}

	// Re-preparing the same SQL hits the plan cache.
	resp, body = postJSON(t, ts.URL+"/v1/prepare", map[string]any{
		"session": sid, "sql": "SELECT count(*) FROM customers"})
	if resp.StatusCode != http.StatusOK || !body["cached"].(bool) {
		t.Fatalf("second prepare should be a cache hit: %d %v", resp.StatusCode, body)
	}
	_ = s
}

func TestMetricsEndpoint(t *testing.T) {
	s, ts := newTestServer(t, 100, Config{})
	sid := openSession(t, ts.URL, "alice")
	for i := 0; i < 3; i++ {
		resp, _ := postJSON(t, ts.URL+"/v1/query", map[string]any{
			"session": sid, "sql": "SELECT count(*) FROM customers"})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query %d failed", i)
		}
	}
	// Attach a monitor with enough window to compute PSI.
	base := make([]float64, 100)
	window := make([]float64, 60)
	for i := range base {
		base[i] = float64(i) / 100
	}
	for i := range window {
		window[i] = float64(i) / 60
	}
	for _, model := range []string{"churn", "fraud"} {
		mon, err := monitor.NewScoreMonitor(model, base, 1000)
		if err != nil {
			t.Fatal(err)
		}
		mon.Observe(window...)
		s.AttachMonitor(mon)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(raw)
	for _, want := range []string{
		`flock_query_seconds_count{kind="select"} 3`,
		`flock_query_seconds_bucket{kind="select",le="+Inf"} 3`,
		`flock_queries_total{status="ok"} 3`,
		"flock_admission_wait_seconds_count",
		"flock_sessions_active 1",
		`flock_monitor_psi{model="churn"}`,
		`flock_monitor_psi{model="fraud"}`,
		`flock_monitor_drift_status{model="churn"}`,
		"flock_exec_workers",
		"flock_wal_group_commit_batch",
		"flock_wal_group_commit_syncs",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// Prometheus exposition requires exactly one TYPE line per family even
	// with several labeled series.
	if n := strings.Count(text, "# TYPE flock_monitor_psi gauge"); n != 1 {
		t.Errorf("want exactly 1 TYPE line for flock_monitor_psi, got %d", n)
	}
}

func TestGracefulShutdown(t *testing.T) {
	flock := newTestFlock(t, 100)
	s := New(flock, Config{OnSession: func(user string) { flock.Access.AssignRole(user, "admin") }})
	go func() {
		if err := s.ListenAndServe("127.0.0.1:0"); err != nil {
			t.Error(err)
		}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for s.Addr() == "" && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	base := "http://" + s.Addr()
	sid := openSession(t, base, "alice")
	resp, body := postJSON(t, base+"/v1/query", map[string]any{
		"session": sid, "sql": "SELECT count(*) FROM customers"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query before shutdown: %d %v", resp.StatusCode, body)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown not clean: %v", err)
	}
	if _, err := http.Post(base+"/v1/query", "application/json", strings.NewReader("{}")); err == nil {
		t.Fatal("server still accepting connections after shutdown")
	}
}

func BenchmarkServerConcurrent(b *testing.B) {
	for _, clients := range []int{1, 8, 32} {
		b.Run(fmt.Sprintf("clients=%d", clients), func(b *testing.B) {
			_, ts := newTestServer(b, 10000, Config{MaxWorkers: 16, MaxQueue: 1024})
			sids := make([]string, clients)
			for i := range sids {
				sids[i] = openSession(b, ts.URL, fmt.Sprintf("bench%d", i))
			}
			payloads := make([][]byte, clients)
			for i := range payloads {
				payloads[i], _ = json.Marshal(map[string]any{
					"session": sids[i],
					"sql":     "SELECT count(*) FROM customers WHERE age > 40 AND income > 60000",
				})
			}
			var wg sync.WaitGroup
			per := (b.N + clients - 1) / clients
			b.ResetTimer()
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					client := &http.Client{}
					for i := 0; i < per; i++ {
						resp, err := client.Post(ts.URL+"/v1/query", "application/json",
							bytes.NewReader(payloads[c]))
						if err != nil {
							b.Error(err)
							return
						}
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
						if resp.StatusCode != http.StatusOK {
							b.Errorf("status %d", resp.StatusCode)
							return
						}
					}
				}(c)
			}
			wg.Wait()
			b.StopTimer()
			total := float64(per * clients)
			b.ReportMetric(total/b.Elapsed().Seconds(), "queries/s")
		})
	}
}

// TestMetricsAttachedGauges: external gauge sources (the durability
// subsystem) are polled per scrape and exported alongside the built-ins.
func TestMetricsAttachedGauges(t *testing.T) {
	s, ts := newTestServer(t, 50, Config{})
	polls := 0
	s.AttachGauges(func() map[string]float64 {
		polls++
		return map[string]float64{
			"flock_wal_bytes":              1234,
			"flock_checkpoint_age_seconds": 0.5,
		}
	})
	for i := 0; i < 2; i++ {
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		text := string(raw)
		for _, want := range []string{
			"flock_wal_bytes 1234",
			"# TYPE flock_wal_bytes gauge",
			"flock_checkpoint_age_seconds 0.5",
		} {
			if !strings.Contains(text, want) {
				t.Errorf("/metrics missing %q", want)
			}
		}
	}
	if polls != 2 {
		t.Errorf("gauge source polled %d times, want once per scrape (2)", polls)
	}
}
