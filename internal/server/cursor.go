package server

// Server-side cursor protocol. A paginating client opens a cursor once
// (POST /v1/query with "cursor": true), then pulls pages with
// POST /v1/cursor/fetch and releases it with POST /v1/cursor/close — the
// query is planned, governed, and (for blocking plans) executed exactly
// once, no matter how many pages are fetched. Cursors are session-scoped
// (only the opening session can fetch), TTL-bound (abandoned cursors are
// swept, and fetches against an expired or completed cursor get a distinct
// 410 so clients can tell "re-run the query" from "bad request"), and
// engine work per fetch goes through the same admission gate as queries.

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
)

// cursorState classifies a cursor-id lookup.
type cursorState int

const (
	cursorLive cursorState = iota
	// cursorGone: the id did exist but the cursor expired, completed, or
	// was closed — a 410, distinct from never-existed (404).
	cursorGone
	cursorUnknown
)

// serverCursor is one open server-side cursor: a live engine cursor plus
// the session scope and per-fetch bookkeeping.
type serverCursor struct {
	id   string
	sess *session
	cur  engine.Cursor
	cols []string

	// ctx descends from the owning session, so session close and server
	// shutdown abort an in-flight fetch and poison later ones; each fetch
	// derives its own deadline-bound child.
	ctx    context.Context
	cancel context.CancelFunc

	// mu serializes fetches on one cursor (engine cursors are not safe for
	// concurrent Next). The sweeper only reaps cursors it can TryLock, so
	// it never blocks behind a long fetch.
	mu       sync.Mutex
	lastUsed atomic.Int64 // unix nanos
	finished atomic.Bool

	// pending holds the unconsumed tail of the last engine batch: fetches
	// honor max_rows exactly (pages are the client's memory bound), so a
	// batch larger than the remaining page budget parks here until the
	// next fetch. Guarded by mu.
	pending *engine.Batch
	pendOff int
}

func (c *serverCursor) touch() { c.lastUsed.Store(time.Now().UnixNano()) }

// cursorStore holds open server-side cursors, bounds them per session,
// expires idle ones, and remembers recently dead ids so expired fetches
// return 410 instead of 404.
type cursorStore struct {
	mu sync.Mutex
	m  map[string]*serverCursor
	// tomb maps recently dead cursor ids to the session that owned them:
	// only the owner gets the 410 (anyone else sees the same 404 as a
	// never-existed id, so ids don't leak liveness across sessions).
	tomb map[string]string
	// tombOrder bounds the tombstone set FIFO (dead ids are a courtesy for
	// clients, not a ledger).
	tombOrder []string

	ttl        time.Duration
	perSession int
	expired    *atomic.Uint64 // metrics: cursors reaped by the TTL sweep

	stop     chan struct{}
	stopOnce sync.Once
}

const cursorTombstones = 1024

func newCursorStore(ttl time.Duration, perSession int, expired *atomic.Uint64) *cursorStore {
	cs := &cursorStore{
		m: map[string]*serverCursor{}, tomb: map[string]string{},
		ttl: ttl, perSession: perSession, expired: expired,
		stop: make(chan struct{}),
	}
	go cs.sweep()
	return cs
}

// put registers a freshly opened engine cursor under a new id, counting it
// against the owning session (which also shields the session from TTL
// reaping while the cursor lives).
func (cs *cursorStore) put(sess *session, cur engine.Cursor, cols []string) (*serverCursor, error) {
	// Atomically reserve the session slot (increment first, check after):
	// concurrent opens cannot slip past the per-session cap together.
	if n := sess.cursors.Add(1); n > int64(cs.perSession) {
		sess.cursors.Add(-1)
		return nil, fmt.Errorf("server: session holds %d open cursors (limit %d); close some first", n-1, cs.perSession)
	}
	var buf [16]byte
	if _, err := rand.Read(buf[:]); err != nil {
		sess.cursors.Add(-1)
		return nil, fmt.Errorf("server: cursor id: %w", err)
	}
	ctx, cancel := context.WithCancel(sess.ctx)
	c := &serverCursor{
		id: hex.EncodeToString(buf[:]), sess: sess, cur: cur, cols: cols,
		ctx: ctx, cancel: cancel,
	}
	c.touch()
	cs.mu.Lock()
	cs.m[c.id] = c
	cs.mu.Unlock()
	return c, nil
}

// get resolves a cursor id for one session, distinguishing live,
// recently-dead (410, owner only), and never-seen (404). Dead cursors of
// other sessions report unknown — same as never-existed.
func (cs *cursorStore) get(id, sessID string) (*serverCursor, cursorState) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if c, ok := cs.m[id]; ok {
		return c, cursorLive
	}
	if owner, ok := cs.tomb[id]; ok && owner == sessID {
		return nil, cursorGone
	}
	return nil, cursorUnknown
}

// finish closes a cursor exactly once: removes it from the store, leaves a
// tombstone, cancels its context, closes the engine cursor, and releases
// the session's hold. Idempotent (reports whether this call did the
// close). The caller must NOT hold c.mu: finish cancels first (unwedging
// any in-flight fetch at its next cancellation checkpoint), then takes
// c.mu before closing the engine cursor — Close never runs under a live
// Next. Callers already holding c.mu use finishLocked.
func (cs *cursorStore) finish(c *serverCursor) bool {
	if !c.finished.CompareAndSwap(false, true) {
		return false
	}
	cs.retire(c)
	c.cancel()
	c.mu.Lock()
	_ = c.cur.Close()
	c.mu.Unlock()
	c.sess.cursors.Add(-1)
	return true
}

// finishLocked is finish for callers that already hold c.mu (the fetch
// handler's done/error paths and the sweeper's TryLock'd reap).
func (cs *cursorStore) finishLocked(c *serverCursor) bool {
	if !c.finished.CompareAndSwap(false, true) {
		return false
	}
	cs.retire(c)
	c.cancel()
	_ = c.cur.Close()
	c.sess.cursors.Add(-1)
	return true
}

// retire removes a cursor from the live map and tombstones its id.
func (cs *cursorStore) retire(c *serverCursor) {
	cs.mu.Lock()
	delete(cs.m, c.id)
	cs.tomb[c.id] = c.sess.id
	cs.tombOrder = append(cs.tombOrder, c.id)
	for len(cs.tombOrder) > cursorTombstones {
		delete(cs.tomb, cs.tombOrder[0])
		cs.tombOrder = cs.tombOrder[1:]
	}
	cs.mu.Unlock()
}

// closeForSession releases every cursor a closing session still holds.
func (cs *cursorStore) closeForSession(sessID string) {
	cs.mu.Lock()
	var own []*serverCursor
	for _, c := range cs.m {
		if c.sess.id == sessID {
			own = append(own, c)
		}
	}
	cs.mu.Unlock()
	for _, c := range own {
		cs.finish(c)
	}
}

// closeAll releases every cursor (server shutdown).
func (cs *cursorStore) closeAll() {
	cs.mu.Lock()
	all := make([]*serverCursor, 0, len(cs.m))
	for _, c := range cs.m {
		all = append(all, c)
	}
	cs.mu.Unlock()
	for _, c := range all {
		cs.finish(c)
	}
}

func (cs *cursorStore) count() int {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return len(cs.m)
}

func (cs *cursorStore) stopSweeper() { cs.stopOnce.Do(func() { close(cs.stop) }) }

// sweep expires cursors idle past the cursor TTL. A cursor mid-fetch holds
// its mutex, so TryLock both skips busy cursors and guarantees the engine
// cursor is never closed under a running Next.
func (cs *cursorStore) sweep() {
	interval := cs.ttl / 4
	if interval < 250*time.Millisecond {
		interval = 250 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-cs.stop:
			return
		case <-t.C:
			cutoff := time.Now().Add(-cs.ttl).UnixNano()
			cs.mu.Lock()
			var idle []*serverCursor
			for _, c := range cs.m {
				if c.lastUsed.Load() < cutoff {
					idle = append(idle, c)
				}
			}
			cs.mu.Unlock()
			for _, c := range idle {
				if !c.mu.TryLock() {
					continue // a fetch is running; it touched lastUsed anyway
				}
				reaped := cs.finishLocked(c)
				c.mu.Unlock()
				// Count only real reaps: a client close racing the sweep
				// makes finish a no-op.
				if reaped && cs.expired != nil {
					cs.expired.Add(1)
				}
			}
		}
	}
}

// ---- handlers ----

type fetchRequest struct {
	Session   string `json:"session"`
	Cursor    string `json:"cursor"`
	MaxRows   int    `json:"max_rows"`
	TimeoutMS int64  `json:"timeout_ms"`
}

type cursorCloseRequest struct {
	Session string `json:"session"`
	Cursor  string `json:"cursor"`
}

// defaultFetchRows is the page size when a fetch names none — one engine
// batch on the serial path.
const defaultFetchRows = 4096

// maxFetchRows caps one page so a single fetch cannot be asked to
// materialize an unbounded result.
const maxFetchRows = 1 << 20

// errCursorExpired is the 410 body for fetches against dead cursors.
var errCursorExpired = errors.New("cursor expired or closed; re-run the query")

// resolveCursor maps a (session, cursor) pair to a live cursor or an HTTP
// error. Cursors are session-scoped: another session's id — live or dead —
// is a 404, not a hint the id exists.
func (s *Server) resolveCursor(sessID, curID string) (*session, *serverCursor, int, error) {
	sess, ok := s.sessions.get(sessID)
	if !ok {
		// The session may have just been expired (idle TTL or the hard
		// lifetime cap), which retires its cursors. The owner presenting the
		// dead pair still gets the precise 410 — this cursor is gone for
		// good — rather than a generic auth error inviting a blind retry.
		if _, state := s.cursors.get(curID, sessID); state == cursorGone {
			return nil, nil, http.StatusGone, errCursorExpired
		}
		return nil, nil, http.StatusUnauthorized, errors.New("unknown or expired session")
	}
	c, state := s.cursors.get(curID, sess.id)
	switch {
	case state == cursorGone:
		return nil, nil, http.StatusGone, errCursorExpired
	case state == cursorUnknown, c.sess.id != sess.id:
		return nil, nil, http.StatusNotFound, errors.New("unknown cursor")
	}
	return sess, c, 0, nil
}

// handleCursorFetch pulls the next page from a server-side cursor. Engine
// work happens under a worker slot from the shared admission gate, but the
// slot is held only for this page — paginating clients never pin the pool
// between fetches.
func (s *Server) handleCursorFetch(w http.ResponseWriter, r *http.Request) {
	var req fetchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad fetch request: %w", err))
		return
	}
	sess, c, status, err := s.resolveCursor(req.Session, req.Cursor)
	if err != nil {
		writeError(w, status, err)
		return
	}
	maxRows := req.MaxRows
	if maxRows <= 0 {
		maxRows = defaultFetchRows
	}
	if maxRows > maxFetchRows {
		maxRows = maxFetchRows
	}
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	// The fetch context descends from the cursor (whose context descends
	// from the session), dies with the client connection, and carries this
	// page's deadline.
	fctx, cancel := context.WithTimeout(c.ctx, timeout)
	defer cancel()
	stop := context.AfterFunc(r.Context(), cancel)
	defer stop()
	sess.begin()
	defer sess.end()
	start := time.Now()

	// Serialize on the cursor BEFORE taking a worker slot: fetches queued
	// behind a slow page on one cursor must not pin pool slots other
	// sessions need. The wait is bounded — a close/expiry cancels c.ctx
	// (and through it fctx), and a client disconnect cancels fctx.
	if !c.mu.TryLock() {
		lockErr := func() error {
			done := make(chan struct{})
			go func() { c.mu.Lock(); close(done) }()
			select {
			case <-done:
				return nil
			case <-fctx.Done():
				// The lock grab is still in flight; hand its eventual
				// acquisition to a releaser so the mutex is not leaked.
				go func() { <-done; c.mu.Unlock() }()
				return fctx.Err()
			}
		}()
		if lockErr != nil {
			status, label := classifyErr(lockErr)
			s.met.observeQuery("fetch", label, time.Since(start))
			writeError(w, status, lockErr)
			return
		}
	}
	defer c.mu.Unlock()
	if c.finished.Load() {
		// Lost a race with close/expiry while waiting for the lock.
		writeError(w, http.StatusGone, errCursorExpired)
		return
	}
	c.touch()

	// Worker slot for this page's engine work only.
	if err := s.adm.acquire(fctx); err != nil {
		status, label := classifyErr(err)
		s.met.observeQuery("fetch", label, time.Since(start))
		if status == http.StatusServiceUnavailable {
			s.setRetryAfter(w)
		}
		writeError(w, status, err)
		return
	}
	defer s.adm.release()

	capHint := maxRows
	if capHint > defaultFetchRows {
		capHint = defaultFetchRows
	}
	rows := make([][]any, 0, capHint)
	done := false
	for len(rows) < maxRows {
		// Drain the parked tail of the previous batch before pulling more.
		if c.pending != nil {
			take := maxRows - len(rows)
			if avail := c.pending.N - c.pendOff; take >= avail {
				rows = append(rows, engine.ResultFromRowSet(c.pending.Slice(c.pendOff, c.pending.N)).Rows...)
				c.pending, c.pendOff = nil, 0
				continue
			}
			rows = append(rows, engine.ResultFromRowSet(c.pending.Slice(c.pendOff, c.pendOff+take)).Rows...)
			c.pendOff += take
			break
		}
		b, err := c.cur.Next(fctx)
		if err == io.EOF {
			done = true
			break
		}
		if err != nil {
			status, label := classifyErr(err)
			if status == http.StatusGatewayTimeout || status == 499 {
				// Deadline/disconnect: the engine rolled back the failing
				// window and the cursor stays open. Rows already pulled
				// this fetch are PAST the rollback point, so deliver them
				// as a short page rather than dropping them — a retry then
				// resumes exactly after what the client received.
				if len(rows) > 0 {
					break
				}
				s.met.observeQuery("fetch", label, time.Since(start))
				writeError(w, status, err)
				return
			}
			// Execution errors are sticky in the engine cursor: release it.
			s.cursors.finishLocked(c)
			s.met.observeQuery("fetch", label, time.Since(start))
			writeError(w, status, err)
			return
		}
		c.pending, c.pendOff = b, 0
	}
	if done {
		s.cursors.finishLocked(c)
	}
	c.touch()
	s.met.observeQuery("fetch", "ok", time.Since(start))
	writeJSON(w, http.StatusOK, map[string]any{
		"columns": c.cols,
		"rows":    rows,
		"done":    done,
	})
}

// handleCursorClose releases a cursor early. Closing an already-dead
// cursor is a no-op 204 (close is how clients clean up; it must not race
// the sweeper into an error).
func (s *Server) handleCursorClose(w http.ResponseWriter, r *http.Request) {
	var req cursorCloseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad cursor close request: %w", err))
		return
	}
	sess, ok := s.sessions.get(req.Session)
	if !ok {
		writeError(w, http.StatusUnauthorized, errors.New("unknown or expired session"))
		return
	}
	c, state := s.cursors.get(req.Cursor, sess.id)
	switch state {
	case cursorGone:
		w.WriteHeader(http.StatusNoContent)
		return
	case cursorUnknown:
		writeError(w, http.StatusNotFound, errors.New("unknown cursor"))
		return
	}
	if c.sess.id != sess.id {
		writeError(w, http.StatusNotFound, errors.New("unknown cursor"))
		return
	}
	s.cursors.finish(c)
	w.WriteHeader(http.StatusNoContent)
}

// openServerCursor runs the open half of the cursor protocol: admission,
// governance-gated open (planning plus any blocking materialization happen
// here, deadline-bound), and registration in the store. open must return a
// governed cursor (core.Flock.Query*).
func (s *Server) openServerCursor(w http.ResponseWriter, r *http.Request, sess *session,
	timeoutMS int64, open func(ctx context.Context) (engine.Cursor, error)) {

	timeout := s.cfg.DefaultTimeout
	if timeoutMS > 0 {
		timeout = time.Duration(timeoutMS) * time.Millisecond
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	qctx, cancel := context.WithTimeout(sess.ctx, timeout)
	defer cancel()
	stop := context.AfterFunc(r.Context(), cancel)
	defer stop()
	sess.begin()
	defer sess.end()

	start := time.Now()
	if err := s.adm.acquire(qctx); err != nil {
		status, label := classifyErr(err)
		s.met.observeQuery("select", label, time.Since(start))
		if status == http.StatusServiceUnavailable {
			s.setRetryAfter(w)
		}
		writeError(w, status, err)
		return
	}
	released := false
	release := func() {
		if !released {
			released = true
			s.adm.release()
		}
	}
	defer release()

	cur, err := open(qctx)
	release() // open work (planning, blocking materialization) is done
	elapsed := time.Since(start)
	if err != nil {
		status, label := classifyErr(err)
		s.met.observeQuery("select", label, elapsed)
		writeError(w, status, err)
		return
	}
	cols := cur.Schema().Names()
	if cols == nil {
		cols = []string{}
	}
	c, err := s.cursors.put(sess, cur, cols)
	if err != nil {
		_ = cur.Close()
		s.met.observeQuery("select", "rejected", elapsed)
		writeError(w, http.StatusTooManyRequests, err)
		return
	}
	s.met.observeQuery("select", "ok", elapsed)
	writeJSON(w, http.StatusOK, map[string]any{
		"cursor":  c.id,
		"columns": cols,
		"ttl_s":   s.cfg.CursorTTL.Seconds(),
	})
}
