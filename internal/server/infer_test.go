package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/infer"
	"repro/internal/workload"
)

// newInferServer is newTestServer with the inference plane enabled and its
// admin endpoints mounted.
func newInferServer(t testing.TB, rows int) (*core.Flock, *httptest.Server) {
	t.Helper()
	flock := newTestFlock(t, rows)
	plane := flock.EnableInferPlane(infer.Config{BatchWindow: time.Millisecond, CanaryMinSamples: 50})
	s := New(flock, Config{OnSession: func(user string) { flock.Access.AssignRole(user, "admin") }})
	s.AttachInferPlane(plane)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
		flock.DisableInferPlane()
	})
	return flock, ts
}

func TestInferAdminEndpoints(t *testing.T) {
	flock, ts := newInferServer(t, 200)
	sid := openSession(t, ts.URL, "opal")

	// Deploy a second model version so there is a candidate to stage.
	pipe, err := workload.TrainScoringPipeline(400, 43, 8, false)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := flock.DeployPipeline("root", "churn", pipe, core.TrainingInfo{Script: "infer_test v2"})
	if err != nil {
		t.Fatal(err)
	}

	// Unauthenticated requests bounce.
	resp, _ := postJSON(t, ts.URL+"/v1/admin/infer/deploy",
		map[string]any{"session": "nope", "model": "churn", "version": v2, "stage": "shadow"})
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("bad session: want 401, got %d", resp.StatusCode)
	}

	// Bad stage is a 400.
	resp, body := postJSON(t, ts.URL+"/v1/admin/infer/deploy",
		map[string]any{"session": sid, "model": "churn", "version": v2, "stage": "yolo"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad stage: want 400, got %d %v", resp.StatusCode, body)
	}

	// Shadow-deploy the candidate.
	resp, body = postJSON(t, ts.URL+"/v1/admin/infer/deploy",
		map[string]any{"session": sid, "model": "churn", "version": v2, "stage": "shadow"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("deploy: want 200, got %d %v", resp.StatusCode, body)
	}
	if body["stage"] != "shadow" || int(body["version"].(float64)) != v2 {
		t.Fatalf("deploy status: %v", body)
	}

	// Mirrored traffic accumulates stats visible in status.
	for i := 0; i < 3; i++ {
		resp, body = postJSON(t, ts.URL+"/v1/query", map[string]any{
			"session": sid, "sql": "SELECT id, PREDICT(churn, age, income, tenure, region) AS s FROM customers"})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query: want 200, got %d %v", resp.StatusCode, body)
		}
	}
	resp, body = postJSON(t, ts.URL+"/v1/admin/infer/status", map[string]any{"session": sid})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status: want 200, got %d %v", resp.StatusCode, body)
	}
	deps := body["deployments"].([]any)
	if len(deps) != 1 {
		t.Fatalf("want 1 deployment, got %v", body)
	}
	dep := deps[0].(map[string]any)
	if dep["samples"].(float64) == 0 {
		t.Fatalf("shadow saw no mirrored traffic: %v", dep)
	}

	// Manual promote flips the registry's production version.
	resp, body = postJSON(t, ts.URL+"/v1/admin/infer/promote", map[string]any{"session": sid, "model": "churn"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("promote: want 200, got %d %v", resp.StatusCode, body)
	}
	if body["stage"] != "promoted" {
		t.Fatalf("promote status: %v", body)
	}
	meta, err := flock.Models.Meta("churn", v2)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Stage != core.StageProduction {
		t.Fatalf("version %d stage after promote: %s", v2, meta.Stage)
	}

	// A promoted candidate cannot be promoted again.
	resp, _ = postJSON(t, ts.URL+"/v1/admin/infer/promote", map[string]any{"session": sid, "model": "churn"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("double promote: want 400, got %d", resp.StatusCode)
	}

	// Rollback of an unknown model is a 400.
	resp, _ = postJSON(t, ts.URL+"/v1/admin/infer/rollback", map[string]any{"session": sid, "model": "ghost"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("ghost rollback: want 400, got %d", resp.StatusCode)
	}
}

func TestInferGaugesOnMetrics(t *testing.T) {
	_, ts := newInferServer(t, 150)
	sid := openSession(t, ts.URL, "mika")
	resp, body := postJSON(t, ts.URL+"/v1/query", map[string]any{
		"session": sid, "sql": "SELECT id, PREDICT(churn, age, income, tenure, region) AS s FROM customers"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query: want 200, got %d %v", resp.StatusCode, body)
	}
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	buf := make([]byte, 1<<20)
	n, _ := mresp.Body.Read(buf)
	text := string(buf[:n])
	for _, want := range []string{
		"flock_infer_batch_occupancy",
		"flock_infer_cache_misses_total",
		"flock_infer_coalesced_total",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %s:\n%s", want, text)
		}
	}
}
