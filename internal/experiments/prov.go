package experiments

import (
	"time"

	"repro/internal/engine"
	"repro/internal/provenance"
	"repro/internal/pyprov"
	"repro/internal/workload"
)

// ProvRow is one line of the SQL-provenance capture table (Table 1).
type ProvRow struct {
	Dataset    string
	Queries    int
	Latency    time.Duration
	Nodes      int
	Edges      int
	Skipped    int
	Compressed int // nodes+edges after compression
}

// RunProvenanceCapture reproduces the paper's table: eager capture of the
// TPC-H and TPC-C workloads, reporting capture latency and provenance
// graph size (nodes+edges), plus the effect of template compression.
func RunProvenanceCapture(tpchQueries, tpccQueries int) ([]ProvRow, error) {
	var out []ProvRow
	for _, w := range []struct {
		name    string
		queries []string
	}{
		{"TPC-H", workload.TPCHWorkload(tpchQueries, 1)},
		{"TPC-C", workload.TPCCWorkload(tpccQueries, 2)},
	} {
		catalog := provenance.NewCatalog()
		tracker := provenance.NewSQLTracker(catalog)
		start := time.Now()
		skipped := 0
		for _, q := range w.queries {
			if _, err := tracker.CaptureQuery(q, "loader"); err != nil {
				skipped++
			}
		}
		elapsed := time.Since(start)
		nodes, edges := catalog.Size()
		compressed, _ := provenance.Compress(catalog)
		cn, ce := compressed.Size()
		out = append(out, ProvRow{
			Dataset: w.name, Queries: len(w.queries), Latency: elapsed,
			Nodes: nodes, Edges: edges, Skipped: skipped, Compressed: cn + ce,
		})
	}
	return out, nil
}

// EagerVsLazy compares per-query eager capture against batch lazy capture
// from a query log (ablation).
func EagerVsLazy(queries []string) (eager, lazy time.Duration) {
	catalog := provenance.NewCatalog()
	tracker := provenance.NewSQLTracker(catalog)
	start := time.Now()
	for _, q := range queries {
		_, _ = tracker.CaptureQuery(q, "u")
	}
	eager = time.Since(start)

	log := make([]engine.LogEntry, len(queries))
	for i, q := range queries {
		log[i] = engine.LogEntry{Seq: int64(i + 1), Text: q, User: "u"}
	}
	catalog2 := provenance.NewCatalog()
	tracker2 := provenance.NewSQLTracker(catalog2)
	start = time.Now()
	tracker2.CaptureLog(log)
	lazy = time.Since(start)
	return eager, lazy
}

// PyProvRow is one line of the Python-provenance coverage table (Table 2).
type PyProvRow struct {
	Dataset     string
	Scripts     int
	ModelsPct   float64
	DatasetsPct float64
}

// RunPyProvCoverage reproduces the coverage table over the two corpora.
func RunPyProvCoverage() []PyProvRow {
	a := pyprov.NewAnalyzer()
	k := pyprov.EvaluateCoverage(a, pyprov.KaggleCorpus())
	m := pyprov.EvaluateCoverage(a, pyprov.MicrosoftCorpus())
	return []PyProvRow{
		{Dataset: "Kaggle", Scripts: k.Scripts, ModelsPct: k.ModelPct(), DatasetsPct: k.DatasetPct()},
		{Dataset: "Microsoft", Scripts: m.Scripts, ModelsPct: m.ModelPct(), DatasetsPct: m.DatasetPct()},
	}
}
