// Package experiments contains the harnesses that regenerate every table
// and figure in the paper's evaluation. Each harness returns structured
// rows; cmd/flock-experiments prints them in the paper's layout and the
// root bench_test.go wraps them as benchmarks.
package experiments

import (
	"fmt"
	"time"

	"repro/internal/engine"
	"repro/internal/ml"
	"repro/internal/onnx"
	"repro/internal/opt"
	"repro/internal/workload"
)

// Fig4Env is the prepared environment for the Figure-4 comparison: the
// same trained pipeline deployed four ways.
type Fig4Env struct {
	Rows  int
	DB    *engine.DB
	Pipe  *ml.Pipeline
	Graph *onnx.Graph
	Frame *ml.Frame // standalone configurations read an exported frame

	remote onnx.Scorer
	server *onnx.ScoringServer
	query  string
}

// Close shuts down the scoring service backing the standalone paths.
func (e *Fig4Env) Close() {
	if e.server != nil {
		e.server.Close()
	}
}

// fig4Models adapts a single graph as the engine's model provider.
type fig4Models struct{ g *onnx.Graph }

func (m fig4Models) GraphFor(name string) (*onnx.Graph, error) {
	if name != "churn" {
		return nil, fmt.Errorf("unknown model %q", name)
	}
	return m.g, nil
}

// Fig4Threshold and Fig4AgeCut define the scoring query's predicates: the
// age predicate is the pushdown-able relational filter, the threshold the
// fused model predicate.
const (
	Fig4Threshold = 0.5
	Fig4IncomeCut = 150000.0
)

// NewFig4Env trains the pipeline (on a superset population), loads the
// scoring table, and prepares all four scoring paths.
func NewFig4Env(rows, trees int) (*Fig4Env, error) {
	pipe, err := workload.TrainScoringPipeline(4000, 42, trees, true)
	if err != nil {
		return nil, err
	}
	g, err := onnx.Export(pipe)
	if err != nil {
		return nil, err
	}
	db := engine.NewDB()
	cfg := workload.ScoringConfig{Rows: rows, Seed: 7, Regions: 6, WithText: true}
	if err := workload.LoadScoringTable(db, cfg); err != nil {
		return nil, err
	}
	db.SetModelProvider(fig4Models{g})
	frame, _ := workload.ScoringFrame(cfg)
	// A real loopback HTTP scoring service backs both standalone ORT
	// (1000-row requests) and UDF-mode PREDICT (one request per call).
	server, err := onnx.ServeGraph(g)
	if err != nil {
		return nil, err
	}
	db.SetUDFScorerFactory(func(g2 *onnx.Graph) (onnx.Scorer, error) {
		return onnx.NewHTTPScorer(g2, server.URL, 1), nil
	})
	query := fmt.Sprintf(
		`SELECT count(*) AS n FROM customers WHERE income > %g AND PREDICT(churn, age, income, tenure, region, notes) >= %g`,
		Fig4IncomeCut, Fig4Threshold)
	return &Fig4Env{
		Rows: rows, DB: db, Pipe: pipe, Graph: g, Frame: frame,
		remote: onnx.NewHTTPScorer(g, server.URL, 1000), server: server, query: query,
	}, nil
}

// countQualifying applies the query's semantics to a standalone score
// vector (the standalone paths filter after scoring everything).
func (e *Fig4Env) countQualifying(scores []float64) int64 {
	income := e.Frame.Col("income").Nums
	var n int64
	for i, s := range scores {
		if income[i] > Fig4IncomeCut && s >= Fig4Threshold {
			n++
		}
	}
	return n
}

// RunSklearn scores via the interpreted pipeline path (the "scikit-learn"
// baseline): boxed, dynamically-dispatched, row-at-a-time featurization and
// prediction over the exported frame, then a post-hoc filter.
func (e *Fig4Env) RunSklearn() (int64, error) {
	scores, err := e.Pipe.PredictInterpreted(e.Frame)
	if err != nil {
		return 0, err
	}
	return e.countQualifying(scores), nil
}

// RunORT scores via the standalone optimized runtime behind the
// remote-scoring pipe: the data leaves the "database", is serialized in
// chunks, scored by a single-threaded session, and shipped back.
func (e *Fig4Env) RunORT() (int64, error) {
	b, err := onnx.BatchFromFrame(e.Graph, e.Frame)
	if err != nil {
		return 0, err
	}
	scores, err := e.remote.Score(b)
	if err != nil {
		return 0, err
	}
	return e.countQualifying(scores), nil
}

// RunInDB scores via the engine's PREDICT operator at the given level
// (LevelParallel = "SONNX", LevelFull = "SONNX-ext", LevelUDF = external
// UDF calls, LevelVectorized = UDF inlining only).
func (e *Fig4Env) RunInDB(level opt.Level) (int64, error) {
	res, err := e.DB.ExecAs(e.query, "bench", engine.ExecOptions{Level: level})
	if err != nil {
		return 0, err
	}
	return res.Rows[0][0].(int64), nil
}

// Fig4Row is one line of the Figure-4 (left) series.
type Fig4Row struct {
	Rows     int
	Sklearn  time.Duration
	ORT      time.Duration
	SONNX    time.Duration
	SONNXExt time.Duration
	Count    int64 // qualifying rows (identical across configurations)
}

// timeIt runs fn `reps` times and returns the best duration (standard
// practice for wall-clock microbenchmarks) and the result.
func timeIt(reps int, fn func() (int64, error)) (time.Duration, int64, error) {
	best := time.Duration(1<<62 - 1)
	var out int64
	for i := 0; i < reps; i++ {
		start := time.Now()
		n, err := fn()
		if err != nil {
			return 0, 0, err
		}
		if d := time.Since(start); d < best {
			best = d
		}
		out = n
	}
	return best, out, nil
}

// RunFigure4 produces the left-panel series for the given dataset sizes.
func RunFigure4(sizes []int, trees, reps int) ([]Fig4Row, error) {
	if reps <= 0 {
		reps = 3
	}
	var out []Fig4Row
	for _, rows := range sizes {
		env, err := NewFig4Env(rows, trees)
		if err != nil {
			return nil, err
		}
		row := Fig4Row{Rows: rows}
		defer env.Close()
		var n1, n2, n3, n4 int64
		if row.Sklearn, n1, err = timeIt(reps, env.RunSklearn); err != nil {
			return nil, err
		}
		if row.ORT, n2, err = timeIt(reps, env.RunORT); err != nil {
			return nil, err
		}
		if row.SONNX, n3, err = timeIt(reps, func() (int64, error) { return env.RunInDB(opt.LevelParallel) }); err != nil {
			return nil, err
		}
		if row.SONNXExt, n4, err = timeIt(reps, func() (int64, error) { return env.RunInDB(opt.LevelFull) }); err != nil {
			return nil, err
		}
		if n1 != n2 || n1 != n3 || n1 != n4 {
			return nil, fmt.Errorf("experiments: configurations disagree at %d rows: %d %d %d %d", rows, n1, n2, n3, n4)
		}
		row.Count = n1
		out = append(out, row)
	}
	return out, nil
}

// SpeedupRow is one bar of the Figure-4 right panel.
type SpeedupRow struct {
	Config  string
	Elapsed time.Duration
	Speedup float64 // vs the first row
}

// RunFigure4Speedup produces the right panel at one dataset size: external
// UDF calls (baseline) vs inlined vectorized execution vs the full
// cross-optimizer.
func RunFigure4Speedup(rows, trees, reps int) ([]SpeedupRow, error) {
	if reps <= 0 {
		reps = 3
	}
	env, err := NewFig4Env(rows, trees)
	if err != nil {
		return nil, err
	}
	defer env.Close()
	configs := []struct {
		name  string
		level opt.Level
	}{
		{"UDF calls (baseline)", opt.LevelUDF},
		{"Inline SQL (vectorized+parallel)", opt.LevelParallel},
		{"Optimized (cross-opt)", opt.LevelFull},
	}
	var out []SpeedupRow
	var counts []int64
	for _, c := range configs {
		d, n, err := timeIt(reps, func() (int64, error) { return env.RunInDB(c.level) })
		if err != nil {
			return nil, err
		}
		counts = append(counts, n)
		out = append(out, SpeedupRow{Config: c.name, Elapsed: d})
	}
	for i := range counts {
		if counts[i] != counts[0] {
			return nil, fmt.Errorf("experiments: speedup configurations disagree: %v", counts)
		}
	}
	base := out[0].Elapsed.Seconds()
	for i := range out {
		out[i].Speedup = base / out[i].Elapsed.Seconds()
	}
	return out, nil
}
