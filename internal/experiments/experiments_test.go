package experiments

import (
	"testing"

	"repro/internal/opt"
)

func TestFig4EnvConfigurationsAgree(t *testing.T) {
	env, err := NewFig4Env(2000, 10)
	if err != nil {
		t.Fatal(err)
	}
	defer env.Close()
	n1, err := env.RunSklearn()
	if err != nil {
		t.Fatal(err)
	}
	n2, err := env.RunORT()
	if err != nil {
		t.Fatal(err)
	}
	n3, err := env.RunInDB(opt.LevelParallel)
	if err != nil {
		t.Fatal(err)
	}
	n4, err := env.RunInDB(opt.LevelFull)
	if err != nil {
		t.Fatal(err)
	}
	n5, err := env.RunInDB(opt.LevelUDF)
	if err != nil {
		t.Fatal(err)
	}
	if n1 != n2 || n1 != n3 || n1 != n4 || n1 != n5 {
		t.Fatalf("configurations disagree: %d %d %d %d %d", n1, n2, n3, n4, n5)
	}
	if n1 == 0 {
		t.Fatal("degenerate workload: no qualifying rows")
	}
	if n1 == int64(env.Rows) {
		t.Fatal("degenerate workload: every row qualifies")
	}
}

func TestRunFigure4Small(t *testing.T) {
	rows, err := RunFigure4([]int{500, 1500}, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Sklearn <= 0 || r.ORT <= 0 || r.SONNX <= 0 || r.SONNXExt <= 0 {
			t.Errorf("non-positive timing: %+v", r)
		}
		if r.Count <= 0 {
			t.Errorf("no qualifying rows at %d", r.Rows)
		}
	}
	// Larger datasets take longer per configuration.
	if rows[1].SONNXExt < rows[0].SONNXExt {
		t.Log("note: timing inversion at tiny sizes is possible; not fatal")
	}
}

func TestRunFigure4SpeedupOrdering(t *testing.T) {
	panel, err := RunFigure4Speedup(5000, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(panel) != 3 {
		t.Fatalf("panel = %+v", panel)
	}
	if panel[0].Speedup != 1.0 {
		t.Errorf("baseline speedup = %v", panel[0].Speedup)
	}
	// The optimized configuration must beat the UDF baseline clearly.
	if panel[2].Speedup < 2 {
		t.Errorf("optimized speedup = %.2fx, want >= 2x over UDF calls", panel[2].Speedup)
	}
	// And the cross-optimizer must beat plain inlining.
	if panel[2].Elapsed >= panel[1].Elapsed {
		t.Errorf("cross-opt (%v) should beat inlining (%v)", panel[2].Elapsed, panel[1].Elapsed)
	}
}

func TestRunProvenanceCaptureShape(t *testing.T) {
	rows, err := RunProvenanceCapture(220, 220)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %+v", rows)
	}
	for _, r := range rows {
		if r.Skipped != 0 {
			t.Errorf("%s: %d unparseable queries", r.Dataset, r.Skipped)
		}
		if r.Nodes+r.Edges == 0 {
			t.Errorf("%s: empty graph", r.Dataset)
		}
		if r.Compressed >= r.Nodes+r.Edges {
			t.Errorf("%s: compression did not shrink (%d -> %d)", r.Dataset, r.Nodes+r.Edges, r.Compressed)
		}
	}
	// Write-induced versioning: TPC-C graph is larger per query.
	perH := float64(rows[0].Nodes+rows[0].Edges) / float64(rows[0].Queries)
	perC := float64(rows[1].Nodes+rows[1].Edges) / float64(rows[1].Queries)
	if perC <= perH {
		t.Errorf("TPC-C per-query graph (%.1f) should exceed TPC-H (%.1f)", perC, perH)
	}
}

func TestEagerVsLazyBothComplete(t *testing.T) {
	queries := []string{
		"SELECT a FROM t WHERE b = 1",
		"INSERT INTO t (a) VALUES (2)",
		"UPDATE t SET a = 3 WHERE b = 4",
	}
	eager, lazy := EagerVsLazy(queries)
	if eager <= 0 || lazy <= 0 {
		t.Errorf("timings: eager=%v lazy=%v", eager, lazy)
	}
}

func TestRunPyProvCoverageMatchesPaper(t *testing.T) {
	rows := RunPyProvCoverage()
	if len(rows) != 2 {
		t.Fatalf("rows = %+v", rows)
	}
	if rows[0].Dataset != "Kaggle" || rows[0].ModelsPct < 94 || rows[0].ModelsPct > 96 {
		t.Errorf("Kaggle models = %+v", rows[0])
	}
	if rows[0].DatasetsPct < 60 || rows[0].DatasetsPct > 63 {
		t.Errorf("Kaggle datasets = %+v", rows[0])
	}
	if rows[1].ModelsPct != 100 || rows[1].DatasetsPct != 100 {
		t.Errorf("Microsoft = %+v", rows[1])
	}
}

func TestRunFigure2Annotations(t *testing.T) {
	res := RunFigure2()
	if res.Top10Delta < 2 || res.Top10Delta > 10 {
		t.Errorf("top-10 delta = %v, want ~5", res.Top10Delta)
	}
	ratio := float64(res.Packages2019) / float64(res.Packages2017)
	if ratio < 2.2 || ratio > 3.8 {
		t.Errorf("package growth = %.2f, want ~3x", ratio)
	}
	// Curves are monotone and end at 1.
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].Coverage2017 < res.Rows[i-1].Coverage2017 ||
			res.Rows[i].Coverage2019 < res.Rows[i-1].Coverage2019 {
			t.Fatal("coverage not monotone")
		}
	}
	last := res.Rows[len(res.Rows)-1]
	if last.Coverage2019 < 0.999 {
		t.Errorf("2019 tail coverage = %v", last.Coverage2019)
	}
}
