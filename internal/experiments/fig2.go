package experiments

import "repro/internal/notebooks"

// Fig2Row is one point of the Figure-2 coverage curves.
type Fig2Row struct {
	K            int
	Coverage2017 float64
	Coverage2019 float64
}

// Fig2Result carries the curves plus the two headline annotations.
type Fig2Result struct {
	Rows         []Fig2Row
	Packages2017 int
	Packages2019 int
	Top10Delta   float64 // percentage points gained at K=10 in 2019
}

// RunFigure2 regenerates the notebook coverage study.
func RunFigure2() Fig2Result {
	c17 := notebooks.Corpus2017()
	c19 := notebooks.Corpus2019()
	ks := notebooks.DefaultKs
	cov17 := c17.Coverage(ks)
	cov19 := c19.Coverage(ks)
	res := Fig2Result{
		Packages2017: c17.DistinctPackages(),
		Packages2019: c19.DistinctPackages(),
	}
	for i, k := range ks {
		res.Rows = append(res.Rows, Fig2Row{K: k, Coverage2017: cov17[i], Coverage2019: cov19[i]})
		if k == 10 {
			res.Top10Delta = (cov19[i] - cov17[i]) * 100
		}
	}
	return res
}
