package workload

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/ml"
)

// TPC-H data generation at a reduced scale: row counts keep the standard's
// proportions (customer : orders : lineitem = 1 : 10 : 40 per unit) so the
// executable query subset produces realistically-shaped intermediate
// results.

var tpchRegions = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}

var tpchNations = []struct {
	name   string
	region int
}{
	{"ALGERIA", 0}, {"ETHIOPIA", 0}, {"KENYA", 0}, {"MOROCCO", 0}, {"MOZAMBIQUE", 0},
	{"ARGENTINA", 1}, {"BRAZIL", 1}, {"CANADA", 1}, {"PERU", 1}, {"UNITED STATES", 1},
	{"CHINA", 2}, {"INDIA", 2}, {"INDONESIA", 2}, {"JAPAN", 2}, {"VIETNAM", 2},
	{"FRANCE", 3}, {"GERMANY", 3}, {"ROMANIA", 3}, {"RUSSIA", 3}, {"UNITED KINGDOM", 3},
	{"EGYPT", 4}, {"IRAN", 4}, {"IRAQ", 4}, {"JORDAN", 4}, {"SAUDI ARABIA", 4},
}

var tpchSegments = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"}
var tpchPriorities = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}
var tpchShipModes = []string{"AIR", "AIR REG", "FOB", "MAIL", "RAIL", "SHIP", "TRUCK"}
var tpchTypes = []string{"ECONOMY ANODIZED STEEL", "STANDARD POLISHED TIN", "PROMO BURNISHED COPPER", "MEDIUM PLATED BRASS", "SMALL BRUSHED NICKEL"}
var tpchContainers = []string{"SM CASE", "MED BOX", "LG DRUM", "JUMBO PKG"}

func tpchDate(r *ml.Rand) string {
	y := 1992 + r.Intn(7)
	m := 1 + r.Intn(12)
	d := 1 + r.Intn(28)
	return fmt.Sprintf("%04d-%02d-%02d", y, m, d)
}

// LoadTPCH creates and bulk-loads the 8 TPC-H tables into db. scale=1
// yields 150 customers / 1,500 orders / ~6,000 lineitems (1/1000 of SF-1).
func LoadTPCH(db *engine.DB, scale int) error {
	if scale <= 0 {
		scale = 1
	}
	r := ml.NewRand(uint64(scale) * 7919)
	for _, ddl := range TPCHSchema {
		if _, err := db.Exec(ddl); err != nil {
			return fmt.Errorf("workload: LoadTPCH: %w", err)
		}
	}
	load := func(name string, names []string, cols []engine.Column) error {
		t, err := db.Table(name)
		if err != nil {
			return err
		}
		_ = names
		return t.ReplaceColumns(cols)
	}

	// region
	rk := make([]int64, len(tpchRegions))
	rn := make([]string, len(tpchRegions))
	rc := make([]string, len(tpchRegions))
	for i, name := range tpchRegions {
		rk[i] = int64(i)
		rn[i] = name
		rc[i] = "region comment"
	}
	if err := load("region", nil, []engine.Column{
		engine.IntColumn(rk), engine.StringColumn(rn), engine.StringColumn(rc)}); err != nil {
		return err
	}

	// nation
	nk := make([]int64, len(tpchNations))
	nn := make([]string, len(tpchNations))
	nr := make([]int64, len(tpchNations))
	nc := make([]string, len(tpchNations))
	for i, n := range tpchNations {
		nk[i] = int64(i)
		nn[i] = n.name
		nr[i] = int64(n.region)
		nc[i] = "nation comment"
	}
	if err := load("nation", nil, []engine.Column{
		engine.IntColumn(nk), engine.StringColumn(nn), engine.IntColumn(nr), engine.StringColumn(nc)}); err != nil {
		return err
	}

	// supplier: 10 per scale unit
	nSupp := 10 * scale
	sk := make([]int64, nSupp)
	sn := make([]string, nSupp)
	sa := make([]string, nSupp)
	snat := make([]int64, nSupp)
	sp := make([]string, nSupp)
	sb := make([]float64, nSupp)
	scm := make([]string, nSupp)
	for i := 0; i < nSupp; i++ {
		sk[i] = int64(i + 1)
		sn[i] = fmt.Sprintf("Supplier#%05d", i+1)
		sa[i] = fmt.Sprintf("addr-%d", i)
		snat[i] = int64(r.Intn(25))
		sp[i] = fmt.Sprintf("%02d-555-%04d", 10+r.Intn(25), r.Intn(10000))
		sb[i] = -999 + r.Float64()*10999
		scm[i] = "supplier comment"
		if r.Intn(20) == 0 {
			scm[i] = "Customer unhappy Complaints filed"
		}
	}
	if err := load("supplier", nil, []engine.Column{
		engine.IntColumn(sk), engine.StringColumn(sn), engine.StringColumn(sa),
		engine.IntColumn(snat), engine.StringColumn(sp), engine.FloatColumn(sb),
		engine.StringColumn(scm)}); err != nil {
		return err
	}

	// customer: 150 per scale unit
	nCust := 150 * scale
	ck := make([]int64, nCust)
	cn := make([]string, nCust)
	ca := make([]string, nCust)
	cnat := make([]int64, nCust)
	cp := make([]string, nCust)
	cb := make([]float64, nCust)
	cs := make([]string, nCust)
	cc := make([]string, nCust)
	for i := 0; i < nCust; i++ {
		ck[i] = int64(i + 1)
		cn[i] = fmt.Sprintf("Customer#%06d", i+1)
		ca[i] = fmt.Sprintf("caddr-%d", i)
		cnat[i] = int64(r.Intn(25))
		cp[i] = fmt.Sprintf("%02d-555-%04d", 10+r.Intn(25), r.Intn(10000))
		cb[i] = -999 + r.Float64()*10999
		cs[i] = tpchSegments[r.Intn(len(tpchSegments))]
		cc[i] = "customer comment"
	}
	if err := load("customer", nil, []engine.Column{
		engine.IntColumn(ck), engine.StringColumn(cn), engine.StringColumn(ca),
		engine.IntColumn(cnat), engine.StringColumn(cp), engine.FloatColumn(cb),
		engine.StringColumn(cs), engine.StringColumn(cc)}); err != nil {
		return err
	}

	// part: 20 per scale unit
	nPart := 20 * scale
	pk := make([]int64, nPart)
	pn := make([]string, nPart)
	pm := make([]string, nPart)
	pb := make([]string, nPart)
	pt := make([]string, nPart)
	ps := make([]int64, nPart)
	pc := make([]string, nPart)
	pr := make([]float64, nPart)
	pcm := make([]string, nPart)
	colors := []string{"green", "red", "blue", "ivory", "azure", "forest", "lace"}
	for i := 0; i < nPart; i++ {
		pk[i] = int64(i + 1)
		pn[i] = fmt.Sprintf("%s polished part %d", colors[r.Intn(len(colors))], i+1)
		pm[i] = fmt.Sprintf("Manufacturer#%d", 1+r.Intn(5))
		pb[i] = fmt.Sprintf("Brand#%d%d", 1+r.Intn(5), 1+r.Intn(5))
		pt[i] = tpchTypes[r.Intn(len(tpchTypes))]
		ps[i] = int64(1 + r.Intn(50))
		pc[i] = tpchContainers[r.Intn(len(tpchContainers))]
		pr[i] = 900 + r.Float64()*1100
		pcm[i] = "part comment"
	}
	if err := load("part", nil, []engine.Column{
		engine.IntColumn(pk), engine.StringColumn(pn), engine.StringColumn(pm),
		engine.StringColumn(pb), engine.StringColumn(pt), engine.IntColumn(ps),
		engine.StringColumn(pc), engine.FloatColumn(pr), engine.StringColumn(pcm)}); err != nil {
		return err
	}

	// partsupp: 4 suppliers per part
	nPS := nPart * 4
	pspk := make([]int64, nPS)
	pssk := make([]int64, nPS)
	psq := make([]int64, nPS)
	psc := make([]float64, nPS)
	pscm := make([]string, nPS)
	for i := 0; i < nPS; i++ {
		pspk[i] = int64(i/4 + 1)
		pssk[i] = int64(r.Intn(nSupp) + 1)
		psq[i] = int64(1 + r.Intn(9999))
		psc[i] = 1 + r.Float64()*999
		pscm[i] = "partsupp comment"
	}
	if err := load("partsupp", nil, []engine.Column{
		engine.IntColumn(pspk), engine.IntColumn(pssk), engine.IntColumn(psq),
		engine.FloatColumn(psc), engine.StringColumn(pscm)}); err != nil {
		return err
	}

	// orders: 10 per customer
	nOrd := nCust * 10
	ok := make([]int64, nOrd)
	ocust := make([]int64, nOrd)
	ost := make([]string, nOrd)
	otp := make([]float64, nOrd)
	od := make([]string, nOrd)
	opr := make([]string, nOrd)
	ocl := make([]string, nOrd)
	osp := make([]int64, nOrd)
	ocm := make([]string, nOrd)
	for i := 0; i < nOrd; i++ {
		ok[i] = int64(i + 1)
		ocust[i] = int64(r.Intn(nCust) + 1)
		ost[i] = []string{"F", "O", "P"}[r.Intn(3)]
		otp[i] = 1000 + r.Float64()*400000
		od[i] = tpchDate(r)
		opr[i] = tpchPriorities[r.Intn(len(tpchPriorities))]
		ocl[i] = fmt.Sprintf("Clerk#%03d", r.Intn(100))
		osp[i] = 0
		ocm[i] = []string{"order comment", "special requests noted", "pending packages"}[r.Intn(3)]
	}
	if err := load("orders", nil, []engine.Column{
		engine.IntColumn(ok), engine.IntColumn(ocust), engine.StringColumn(ost),
		engine.FloatColumn(otp), engine.StringColumn(od), engine.StringColumn(opr),
		engine.StringColumn(ocl), engine.IntColumn(osp), engine.StringColumn(ocm)}); err != nil {
		return err
	}

	// lineitem: ~4 per order
	var lok, lpk, lsk, lln, lqty []int64
	var lep, ldisc, ltax []float64
	var lrf, lls, lsd, lcd, lrd, lsi, lsm, lcm []string
	for o := 0; o < nOrd; o++ {
		lines := 1 + r.Intn(6)
		for l := 0; l < lines; l++ {
			lok = append(lok, int64(o+1))
			lpk = append(lpk, int64(r.Intn(nPart)+1))
			lsk = append(lsk, int64(r.Intn(nSupp)+1))
			lln = append(lln, int64(l+1))
			q := int64(1 + r.Intn(50))
			lqty = append(lqty, q)
			lep = append(lep, float64(q)*(900+r.Float64()*1100))
			ldisc = append(ldisc, float64(r.Intn(11))/100)
			ltax = append(ltax, float64(r.Intn(9))/100)
			lrf = append(lrf, []string{"A", "N", "R"}[r.Intn(3)])
			lls = append(lls, []string{"F", "O"}[r.Intn(2)])
			ship := tpchDate(r)
			lsd = append(lsd, ship)
			commit, _ := engine.AddInterval(ship, 1+r.Intn(60), "day")
			lcd = append(lcd, commit)
			receipt, _ := engine.AddInterval(ship, 1+r.Intn(90), "day")
			lrd = append(lrd, receipt)
			lsi = append(lsi, []string{"DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"}[r.Intn(4)])
			lsm = append(lsm, tpchShipModes[r.Intn(len(tpchShipModes))])
			lcm = append(lcm, "lineitem comment")
		}
	}
	qtyF := make([]float64, len(lqty))
	for i, q := range lqty {
		qtyF[i] = float64(q)
	}
	return load("lineitem", nil, []engine.Column{
		engine.IntColumn(lok), engine.IntColumn(lpk), engine.IntColumn(lsk),
		engine.IntColumn(lln), engine.FloatColumn(qtyF), engine.FloatColumn(lep),
		engine.FloatColumn(ldisc), engine.FloatColumn(ltax), engine.StringColumn(lrf),
		engine.StringColumn(lls), engine.StringColumn(lsd), engine.StringColumn(lcd),
		engine.StringColumn(lrd), engine.StringColumn(lsi), engine.StringColumn(lsm),
		engine.StringColumn(lcm)})
}

// ExecutableTPCHQueries lists the template numbers the engine can execute
// end to end (the rest require correlated subqueries and are parse-only,
// used by the provenance study).
var ExecutableTPCHQueries = []int{1, 3, 5, 6, 10, 12, 14, 19}
