package workload

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/ml"
)

// The Figure-4 scoring workload: a customer table with numeric,
// categorical and text features, plus a GBM-over-featurizers training
// pipeline — the "practical end-to-end prediction pipeline composed of a
// larger variety of operators (featurizers such as text encoding and
// models such as decision trees)" of §4.1.

// ScoringConfig shapes the synthetic customer population.
type ScoringConfig struct {
	Rows int
	Seed uint64
	// Regions is the category cardinality stored in the table; the model
	// is trained over a super-set, so stats-driven compression has
	// something to drop.
	Regions int
	// WithText adds a free-text column scored via the hashing featurizer.
	WithText bool
}

var regionNames = []string{
	"us-east", "us-west", "eu-north", "eu-south", "apac", "latam",
	"mea", "anz", "india", "japan", "brazil", "canada",
}

var notePhrases = []string{
	"pays on time", "late payment flagged", "disputed charge", "loyal customer",
	"requested credit increase", "support escalation", "",
}

// ScoringColumns generates the raw columns of the customer population.
func ScoringColumns(cfg ScoringConfig) (ids []int64, ages, income []float64, tenure []float64, regions, notes []string, labels []float64) {
	if cfg.Regions <= 0 || cfg.Regions > len(regionNames) {
		cfg.Regions = 6
	}
	r := ml.NewRand(cfg.Seed)
	n := cfg.Rows
	ids = make([]int64, n)
	ages = make([]float64, n)
	income = make([]float64, n)
	tenure = make([]float64, n)
	regions = make([]string, n)
	notes = make([]string, n)
	labels = make([]float64, n)
	for i := 0; i < n; i++ {
		ids[i] = int64(i + 1)
		ages[i] = 18 + r.Float64()*62
		income[i] = 15000 + r.Float64()*185000
		tenure[i] = r.Float64() * 20
		regions[i] = regionNames[r.Intn(cfg.Regions)]
		notes[i] = notePhrases[r.Intn(len(notePhrases))]
		score := (ages[i]-49)/15 + (income[i]-105000)/60000 + (tenure[i]-10)/8
		switch regions[i] {
		case "us-east", "eu-north":
			score += 0.8
		case "apac", "latam":
			score -= 0.5
		}
		if notes[i] == "late payment flagged" || notes[i] == "disputed charge" {
			score -= 0.7
		}
		score += r.NormFloat64() * 0.4
		if score > 0 {
			labels[i] = 1
		}
	}
	return ids, ages, income, tenure, regions, notes, labels
}

// LoadScoringTable creates table `customers` in db with the generated
// population (bulk load, no per-row SQL).
func LoadScoringTable(db *engine.DB, cfg ScoringConfig) error {
	ids, ages, income, tenure, regions, notes, _ := ScoringColumns(cfg)
	names := []string{"id", "age", "income", "tenure", "region"}
	cols := []engine.Column{
		engine.IntColumn(ids),
		engine.FloatColumn(ages),
		engine.FloatColumn(income),
		engine.FloatColumn(tenure),
		engine.StringColumn(regions),
	}
	if cfg.WithText {
		names = append(names, "notes")
		cols = append(cols, engine.StringColumn(notes))
	}
	if _, err := db.CreateTableFromColumns("customers", names, cols); err != nil {
		return fmt.Errorf("workload: loading scoring table: %w", err)
	}
	return nil
}

// TrainScoringPipeline fits the Figure-4 pipeline on a training population
// drawn over ALL regions (a superset of what any one table stores) so that
// the deployed model carries categories and feature ranges the
// cross-optimizer can specialize away.
func TrainScoringPipeline(trainRows int, seed uint64, nTrees int, withText bool) (*ml.Pipeline, error) {
	cfg := ScoringConfig{Rows: trainRows, Seed: seed, Regions: len(regionNames), WithText: withText}
	_, ages, income, tenure, regions, notes, labels := ScoringColumns(cfg)
	f := ml.NewFrame().
		AddNumeric("age", ages).
		AddNumeric("income", income).
		AddNumeric("tenure", tenure).
		AddCategorical("region", regions)
	feat := ml.NewFeaturizer().
		With("age", &ml.StandardScaler{}).
		With("income", &ml.StandardScaler{}).
		With("tenure", &ml.StandardScaler{}).
		With("region", &ml.OneHotEncoder{})
	if withText {
		f.AddText("notes", notes)
		feat.With("notes", &ml.HashingVectorizer{Buckets: 32})
	}
	if nTrees <= 0 {
		nTrees = 100
	}
	pipe := ml.NewPipeline("churn", feat,
		&ml.GradientBoosting{NTrees: nTrees, MaxDepth: 4, Loss: ml.LossLogistic})
	if err := pipe.Fit(f, labels); err != nil {
		return nil, err
	}
	return pipe, nil
}

// ScoringFrame builds an ml.Frame view of the same population (for the
// standalone scikit-learn and ORT configurations, which read exported
// files rather than the DBMS).
func ScoringFrame(cfg ScoringConfig) (*ml.Frame, []float64) {
	_, ages, income, tenure, regions, notes, labels := ScoringColumns(cfg)
	f := ml.NewFrame().
		AddNumeric("age", ages).
		AddNumeric("income", income).
		AddNumeric("tenure", tenure).
		AddCategorical("region", regions)
	if cfg.WithText {
		f.AddText("notes", notes)
	}
	return f, labels
}
