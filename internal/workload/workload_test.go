package workload

import (
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/ml"
	"repro/internal/sql"
)

func TestTPCHAllTemplatesParse(t *testing.T) {
	p := NewTPCHParams(1)
	for q := 1; q <= 22; q++ {
		text := TPCHQuery(q, p)
		stmt, err := sql.ParseOne(text)
		if err != nil {
			t.Fatalf("Q%d does not parse: %v\n%s", q, err, text)
		}
		acc := sql.Analyze(stmt)
		if len(acc.ReadTables) == 0 {
			t.Errorf("Q%d: no read tables extracted", q)
		}
	}
}

func TestTPCHWorkloadSize(t *testing.T) {
	qs := TPCHWorkload(2208, 42)
	if len(qs) != 2208 {
		t.Fatalf("len = %d", len(qs))
	}
	// All 22 templates cycle: queries i and i+22 share a template shape.
	if qs[0][:20] != qs[22][:20] {
		t.Errorf("template cycling broken")
	}
	// Parameters vary between instantiations of the same template.
	if qs[1] == qs[23] {
		t.Error("parameters should differ across rounds")
	}
	for i, q := range qs {
		if _, err := sql.ParseOne(q); err != nil {
			t.Fatalf("query %d unparseable: %v", i, err)
		}
	}
}

func TestTPCHSchemaExecutes(t *testing.T) {
	db := engine.NewDB()
	for _, ddl := range TPCHSchema {
		if _, err := db.Exec(ddl); err != nil {
			t.Fatalf("%s: %v", ddl, err)
		}
	}
	if len(db.TableNames()) != 8 {
		t.Errorf("tables = %v", db.TableNames())
	}
}

func TestTPCCWorkload(t *testing.T) {
	qs := TPCCWorkload(2200, 7)
	if len(qs) != 2200 {
		t.Fatalf("len = %d", len(qs))
	}
	var sel, ins, upd, del int
	for i, q := range qs {
		stmt, err := sql.ParseOne(q)
		if err != nil {
			t.Fatalf("statement %d unparseable: %v\n%s", i, err, q)
		}
		switch stmt.(type) {
		case *sql.SelectStmt:
			sel++
		case *sql.InsertStmt:
			ins++
		case *sql.UpdateStmt:
			upd++
		case *sql.DeleteStmt:
			del++
		}
	}
	// TPC-C is write-heavy relative to TPC-H: writes must be a large
	// fraction of the mix.
	writes := ins + upd + del
	if writes*100/len(qs) < 30 {
		t.Errorf("write fraction = %d%%, too low for TPC-C", writes*100/len(qs))
	}
	if sel == 0 || ins == 0 || upd == 0 || del == 0 {
		t.Errorf("mix missing statement kinds: sel=%d ins=%d upd=%d del=%d", sel, ins, upd, del)
	}
}

func TestTPCCSchemaExecutesAndRuns(t *testing.T) {
	db := engine.NewDB()
	for _, ddl := range TPCCSchema {
		if _, err := db.Exec(ddl); err != nil {
			t.Fatalf("%s: %v", ddl, err)
		}
	}
	// Seed minimal rows so a transaction's statements actually run.
	seed := []string{
		"INSERT INTO warehouse VALUES (1, 'w1', 0.05, 0.0)",
		"INSERT INTO district VALUES (1, 1, 'd1', 0.02, 0.0, 10001)",
		"INSERT INTO customer_t VALUES (1, 1, 1, 'SMITH', 100.0, 0.0, 0, 0)",
		"INSERT INTO item VALUES (1, 'widget', 9.99, 'data')",
		"INSERT INTO stock VALUES (1, 1, 50, 0.0, 0)",
	}
	for _, q := range seed {
		if _, err := db.Exec(q); err != nil {
			t.Fatal(err)
		}
	}
	// Run a deterministic Payment transaction shape end to end.
	for _, q := range []string{
		"UPDATE warehouse SET w_ytd = w_ytd + 10.00 WHERE w_id = 1",
		"SELECT w_name FROM warehouse WHERE w_id = 1",
		"UPDATE district SET d_ytd = d_ytd + 10.00 WHERE d_id = 1 AND d_w_id = 1",
		"UPDATE customer_t SET c_balance = c_balance - 10.00 WHERE c_id = 1",
		"INSERT INTO history (h_c_id, h_d_id, h_w_id, h_date, h_amount) VALUES (1, 1, 1, '2019-06-01', 10.00)",
	} {
		if _, err := db.Exec(q); err != nil {
			t.Fatalf("%s: %v", q, err)
		}
	}
	res, err := db.Exec("SELECT c_balance FROM customer_t WHERE c_id = 1")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0] != 90.0 {
		t.Errorf("balance = %v", res.Rows[0][0])
	}
}

func TestScoringTableAndPipeline(t *testing.T) {
	db := engine.NewDB()
	cfg := ScoringConfig{Rows: 3000, Seed: 5, Regions: 6, WithText: true}
	if err := LoadScoringTable(db, cfg); err != nil {
		t.Fatal(err)
	}
	tab, err := db.Table("customers")
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 3000 {
		t.Fatalf("rows = %d", tab.NumRows())
	}
	stats := tab.Stats()
	if len(stats["region"].Categories) != 6 {
		t.Errorf("stored regions = %d, want 6", len(stats["region"].Categories))
	}

	pipe, err := TrainScoringPipeline(4000, 6, 30, true)
	if err != nil {
		t.Fatal(err)
	}
	// Model learns something: accuracy well above chance on a fresh draw.
	f, labels := ScoringFrame(ScoringConfig{Rows: 2000, Seed: 99, Regions: 6, WithText: true})
	pred, err := pipe.PredictBatch(f)
	if err != nil {
		t.Fatal(err)
	}
	if acc := ml.Accuracy(pred, labels); acc < 0.75 {
		t.Errorf("accuracy = %v, want >= 0.75", acc)
	}
	// The training population spans more regions than the table stores
	// (compression fodder).
	trained := map[string]bool{}
	_, _, _, _, regions, _, _ := ScoringColumns(ScoringConfig{Rows: 4000, Seed: 6, Regions: len(regionNames)})
	for _, r := range regions {
		trained[r] = true
	}
	if len(trained) <= 6 {
		t.Errorf("training regions = %d, want > 6", len(trained))
	}
}

func TestTPCHQueryPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for query 23")
		}
	}()
	TPCHQuery(23, NewTPCHParams(1))
}

func TestScoringDeterminism(t *testing.T) {
	a, _, _, _, ra, _, la := ScoringColumns(ScoringConfig{Rows: 100, Seed: 11, Regions: 4})
	b, _, _, _, rb, _, lb := ScoringColumns(ScoringConfig{Rows: 100, Seed: 11, Regions: 4})
	for i := range a {
		if a[i] != b[i] || ra[i] != rb[i] || la[i] != lb[i] {
			t.Fatal("generation is not deterministic")
		}
	}
	if !strings.HasPrefix(regionNames[0], "us") {
		t.Error("region naming changed unexpectedly")
	}
}
