package workload

import (
	"fmt"

	"repro/internal/ml"
)

// TPCCSchema is the DDL for the (simplified) TPC-C schema.
var TPCCSchema = []string{
	`CREATE TABLE warehouse (w_id int, w_name text, w_tax float, w_ytd float)`,
	`CREATE TABLE district (d_id int, d_w_id int, d_name text, d_tax float, d_ytd float, d_next_o_id int)`,
	`CREATE TABLE customer_t (c_id int, c_d_id int, c_w_id int, c_last text, c_balance float, c_ytd_payment float, c_payment_cnt int, c_delivery_cnt int)`,
	`CREATE TABLE orders_t (o_id int, o_d_id int, o_w_id int, o_c_id int, o_entry_d text, o_carrier_id int, o_ol_cnt int)`,
	`CREATE TABLE new_order (no_o_id int, no_d_id int, no_w_id int)`,
	`CREATE TABLE order_line (ol_o_id int, ol_d_id int, ol_w_id int, ol_number int, ol_i_id int, ol_quantity int, ol_amount float, ol_delivery_d text)`,
	`CREATE TABLE item (i_id int, i_name text, i_price float, i_data text)`,
	`CREATE TABLE stock (s_i_id int, s_w_id int, s_quantity int, s_ytd float, s_order_cnt int)`,
	`CREATE TABLE history (h_c_id int, h_d_id int, h_w_id int, h_date text, h_amount float)`,
}

// tpccGen generates parameterized TPC-C transactions.
type tpccGen struct {
	rng *ml.Rand
	oid int
}

// NewOrder renders the statements of one New-Order transaction
// (10 statements: reads of warehouse/district/customer/item/stock, the
// district sequence bump, and the order/new-order/order-line/stock writes).
func (g *tpccGen) NewOrder() []string {
	w := g.rng.Intn(10) + 1
	d := g.rng.Intn(10) + 1
	c := g.rng.Intn(3000) + 1
	item := g.rng.Intn(100000) + 1
	g.oid++
	o := 10000 + g.oid
	return []string{
		fmt.Sprintf("SELECT w_tax FROM warehouse WHERE w_id = %d", w),
		fmt.Sprintf("SELECT d_tax, d_next_o_id FROM district WHERE d_id = %d AND d_w_id = %d", d, w),
		fmt.Sprintf("UPDATE district SET d_next_o_id = d_next_o_id + 1 WHERE d_id = %d AND d_w_id = %d", d, w),
		fmt.Sprintf("SELECT c_last, c_balance FROM customer_t WHERE c_id = %d AND c_d_id = %d AND c_w_id = %d", c, d, w),
		fmt.Sprintf("INSERT INTO orders_t (o_id, o_d_id, o_w_id, o_c_id, o_entry_d, o_carrier_id, o_ol_cnt) VALUES (%d, %d, %d, %d, '2019-06-01', 0, 1)", o, d, w, c),
		fmt.Sprintf("INSERT INTO new_order (no_o_id, no_d_id, no_w_id) VALUES (%d, %d, %d)", o, d, w),
		fmt.Sprintf("SELECT i_price, i_name, i_data FROM item WHERE i_id = %d", item),
		fmt.Sprintf("SELECT s_quantity FROM stock WHERE s_i_id = %d AND s_w_id = %d", item, w),
		fmt.Sprintf("UPDATE stock SET s_quantity = s_quantity - %d, s_ytd = s_ytd + %d, s_order_cnt = s_order_cnt + 1 WHERE s_i_id = %d AND s_w_id = %d",
			g.rng.Intn(9)+1, g.rng.Intn(9)+1, item, w),
		fmt.Sprintf("INSERT INTO order_line (ol_o_id, ol_d_id, ol_w_id, ol_number, ol_i_id, ol_quantity, ol_amount, ol_delivery_d) VALUES (%d, %d, %d, 1, %d, %d, %d.00, '2019-06-02')",
			o, d, w, item, g.rng.Intn(9)+1, g.rng.Intn(900)+10),
	}
}

// Payment renders one Payment transaction (6 statements).
func (g *tpccGen) Payment() []string {
	w := g.rng.Intn(10) + 1
	d := g.rng.Intn(10) + 1
	c := g.rng.Intn(3000) + 1
	amt := g.rng.Intn(4900) + 100
	return []string{
		fmt.Sprintf("UPDATE warehouse SET w_ytd = w_ytd + %d.00 WHERE w_id = %d", amt, w),
		fmt.Sprintf("SELECT w_name FROM warehouse WHERE w_id = %d", w),
		fmt.Sprintf("UPDATE district SET d_ytd = d_ytd + %d.00 WHERE d_id = %d AND d_w_id = %d", amt, d, w),
		fmt.Sprintf("SELECT c_balance, c_ytd_payment FROM customer_t WHERE c_id = %d AND c_d_id = %d AND c_w_id = %d", c, d, w),
		fmt.Sprintf("UPDATE customer_t SET c_balance = c_balance - %d.00, c_ytd_payment = c_ytd_payment + %d.00, c_payment_cnt = c_payment_cnt + 1 WHERE c_id = %d AND c_d_id = %d AND c_w_id = %d",
			amt, amt, c, d, w),
		fmt.Sprintf("INSERT INTO history (h_c_id, h_d_id, h_w_id, h_date, h_amount) VALUES (%d, %d, %d, '2019-06-01', %d.00)", c, d, w, amt),
	}
}

// OrderStatus renders one Order-Status transaction (3 statements).
func (g *tpccGen) OrderStatus() []string {
	w := g.rng.Intn(10) + 1
	d := g.rng.Intn(10) + 1
	c := g.rng.Intn(3000) + 1
	return []string{
		fmt.Sprintf("SELECT c_balance, c_last FROM customer_t WHERE c_id = %d AND c_d_id = %d AND c_w_id = %d", c, d, w),
		fmt.Sprintf("SELECT o_id, o_entry_d, o_carrier_id FROM orders_t WHERE o_c_id = %d AND o_d_id = %d AND o_w_id = %d ORDER BY o_id DESC LIMIT 1", c, d, w),
		fmt.Sprintf("SELECT ol_i_id, ol_quantity, ol_amount, ol_delivery_d FROM order_line WHERE ol_o_id = %d AND ol_d_id = %d AND ol_w_id = %d", 10000+g.rng.Intn(100), d, w),
	}
}

// Delivery renders one Delivery transaction (5 statements, one district).
func (g *tpccGen) Delivery() []string {
	w := g.rng.Intn(10) + 1
	d := g.rng.Intn(10) + 1
	o := 10000 + g.rng.Intn(100)
	return []string{
		fmt.Sprintf("SELECT no_o_id FROM new_order WHERE no_d_id = %d AND no_w_id = %d ORDER BY no_o_id LIMIT 1", d, w),
		fmt.Sprintf("DELETE FROM new_order WHERE no_o_id = %d AND no_d_id = %d AND no_w_id = %d", o, d, w),
		fmt.Sprintf("UPDATE orders_t SET o_carrier_id = %d WHERE o_id = %d AND o_d_id = %d AND o_w_id = %d", g.rng.Intn(10)+1, o, d, w),
		fmt.Sprintf("UPDATE order_line SET ol_delivery_d = '2019-06-03' WHERE ol_o_id = %d AND ol_d_id = %d AND ol_w_id = %d", o, d, w),
		fmt.Sprintf("UPDATE customer_t SET c_balance = c_balance + %d.00, c_delivery_cnt = c_delivery_cnt + 1 WHERE c_id = %d AND c_d_id = %d AND c_w_id = %d",
			g.rng.Intn(500)+1, g.rng.Intn(3000)+1, d, w),
	}
}

// StockLevel renders one Stock-Level transaction (2 statements).
func (g *tpccGen) StockLevel() []string {
	w := g.rng.Intn(10) + 1
	d := g.rng.Intn(10) + 1
	return []string{
		fmt.Sprintf("SELECT d_next_o_id FROM district WHERE d_id = %d AND d_w_id = %d", d, w),
		fmt.Sprintf("SELECT count(DISTINCT s_i_id) AS low_stock FROM order_line, stock WHERE ol_w_id = %d AND ol_d_id = %d AND ol_o_id >= %d AND s_i_id = ol_i_id AND s_w_id = %d AND s_quantity < %d",
			w, d, 10000+g.rng.Intn(100), w, g.rng.Intn(10)+10),
	}
}

// TPCCWorkload generates n statements following the standard TPC-C
// transaction mix (~45% New-Order, ~43% Payment, ~4% each of Order-Status,
// Delivery and Stock-Level), which is write-heavy: one mix cycle runs
// 5 New-Order + 5 Payment + 1 of each read-mostly transaction.
func TPCCWorkload(n int, seed uint64) []string {
	g := &tpccGen{rng: ml.NewRand(seed)}
	out := make([]string, 0, n)
	for len(out) < n {
		for i := 0; i < 5; i++ {
			out = append(out, g.NewOrder()...)
			out = append(out, g.Payment()...)
		}
		out = append(out, g.OrderStatus()...)
		out = append(out, g.Delivery()...)
		out = append(out, g.StockLevel()...)
	}
	return out[:n]
}
