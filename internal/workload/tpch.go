// Package workload provides the workload generators behind the paper's
// experiments: TPC-H-style analytical query templates and TPC-C-style
// transaction templates (driving the provenance-capture study), plus the
// synthetic scoring table and pipeline used by the in-DB inference
// experiments (Figure 4).
package workload

import (
	"fmt"

	"repro/internal/ml"
)

// TPCHSchema is the DDL for the (simplified) TPC-H schema; column names
// follow the standard.
var TPCHSchema = []string{
	`CREATE TABLE region (r_regionkey int, r_name text, r_comment text)`,
	`CREATE TABLE nation (n_nationkey int, n_name text, n_regionkey int, n_comment text)`,
	`CREATE TABLE supplier (s_suppkey int, s_name text, s_address text, s_nationkey int, s_phone text, s_acctbal float, s_comment text)`,
	`CREATE TABLE customer (c_custkey int, c_name text, c_address text, c_nationkey int, c_phone text, c_acctbal float, c_mktsegment text, c_comment text)`,
	`CREATE TABLE part (p_partkey int, p_name text, p_mfgr text, p_brand text, p_type text, p_size int, p_container text, p_retailprice float, p_comment text)`,
	`CREATE TABLE partsupp (ps_partkey int, ps_suppkey int, ps_availqty int, ps_supplycost float, ps_comment text)`,
	`CREATE TABLE orders (o_orderkey int, o_custkey int, o_orderstatus text, o_totalprice float, o_orderdate text, o_orderpriority text, o_clerk text, o_shippriority int, o_comment text)`,
	`CREATE TABLE lineitem (l_orderkey int, l_partkey int, l_suppkey int, l_linenumber int, l_quantity float, l_extendedprice float, l_discount float, l_tax float, l_returnflag text, l_linestatus text, l_shipdate text, l_commitdate text, l_receiptdate text, l_shipinstruct text, l_shipmode text, l_comment text)`,
}

// TPCHParams seeds template parameter generation for one round.
type TPCHParams struct {
	rng *ml.Rand
}

// NewTPCHParams creates a parameter generator.
func NewTPCHParams(seed uint64) *TPCHParams { return &TPCHParams{rng: ml.NewRand(seed)} }

func (p *TPCHParams) date(yearLo, yearHi int) string {
	y := yearLo + p.rng.Intn(yearHi-yearLo+1)
	m := 1 + p.rng.Intn(12)
	return fmt.Sprintf("%04d-%02d-01", y, m)
}

func (p *TPCHParams) pick(vals ...string) string { return vals[p.rng.Intn(len(vals))] }

func (p *TPCHParams) intIn(lo, hi int) int { return lo + p.rng.Intn(hi-lo+1) }

// TPCHQuery renders query template q (1..22) with fresh parameters. The
// templates follow the standard's structure (simplified to the engine's
// grammar: EXTRACT becomes substring, nested aggregate views are inlined).
func TPCHQuery(q int, p *TPCHParams) string {
	switch q {
	case 1:
		return fmt.Sprintf(`SELECT l_returnflag, l_linestatus, sum(l_quantity) AS sum_qty,
 sum(l_extendedprice) AS sum_base_price,
 sum(l_extendedprice * (1 - l_discount)) AS sum_disc_price,
 sum(l_extendedprice * (1 - l_discount) * (1 + l_tax)) AS sum_charge,
 avg(l_quantity) AS avg_qty, avg(l_extendedprice) AS avg_price, avg(l_discount) AS avg_disc,
 count(*) AS count_order
 FROM lineitem WHERE l_shipdate <= DATE '1998-12-01' - INTERVAL '%d' day
 GROUP BY l_returnflag, l_linestatus ORDER BY l_returnflag, l_linestatus`, p.intIn(60, 120))
	case 2:
		return fmt.Sprintf(`SELECT s.s_acctbal, s.s_name, n.n_name, pa.p_partkey, pa.p_mfgr, s.s_address, s.s_phone, s.s_comment
 FROM part pa, supplier s, partsupp ps, nation n, region r
 WHERE pa.p_partkey = ps.ps_partkey AND s.s_suppkey = ps.ps_suppkey AND pa.p_size = %d
 AND pa.p_type LIKE '%%%s' AND s.s_nationkey = n.n_nationkey AND n.n_regionkey = r.r_regionkey
 AND r.r_name = '%s'
 AND ps.ps_supplycost = (SELECT min(ps2.ps_supplycost) FROM partsupp ps2, supplier s2, nation n2, region r2
 WHERE pa.p_partkey = ps2.ps_partkey AND s2.s_suppkey = ps2.ps_suppkey
 AND s2.s_nationkey = n2.n_nationkey AND n2.n_regionkey = r2.r_regionkey AND r2.r_name = '%s')
 ORDER BY s.s_acctbal DESC, n.n_name, s.s_name, pa.p_partkey LIMIT 100`,
			p.intIn(1, 50), p.pick("BRASS", "STEEL", "COPPER", "TIN"), p.pick("EUROPE", "ASIA", "AMERICA"), p.pick("EUROPE", "ASIA", "AMERICA"))
	case 3:
		return fmt.Sprintf(`SELECT l.l_orderkey, sum(l.l_extendedprice * (1 - l.l_discount)) AS revenue,
 o.o_orderdate, o.o_shippriority
 FROM customer c, orders o, lineitem l
 WHERE c.c_mktsegment = '%s' AND c.c_custkey = o.o_custkey AND l.l_orderkey = o.o_orderkey
 AND o.o_orderdate < DATE '%s' AND l.l_shipdate > DATE '%s'
 GROUP BY l.l_orderkey, o.o_orderdate, o.o_shippriority
 ORDER BY revenue DESC, o.o_orderdate LIMIT 10`,
			p.pick("BUILDING", "AUTOMOBILE", "MACHINERY", "HOUSEHOLD", "FURNITURE"), p.date(1995, 1995), p.date(1995, 1995))
	case 4:
		d := p.date(1993, 1997)
		return fmt.Sprintf(`SELECT o_orderpriority, count(*) AS order_count FROM orders
 WHERE o_orderdate >= DATE '%s' AND o_orderdate < DATE '%s' + INTERVAL '3' month
 AND EXISTS (SELECT 1 FROM lineitem WHERE l_orderkey = o_orderkey AND l_commitdate < l_receiptdate)
 GROUP BY o_orderpriority ORDER BY o_orderpriority`, d, d)
	case 5:
		d := p.date(1993, 1997)
		return fmt.Sprintf(`SELECT n.n_name, sum(l.l_extendedprice * (1 - l.l_discount)) AS revenue
 FROM customer c, orders o, lineitem l, supplier s, nation n, region r
 WHERE c.c_custkey = o.o_custkey AND l.l_orderkey = o.o_orderkey AND l.l_suppkey = s.s_suppkey
 AND c.c_nationkey = s.s_nationkey AND s.s_nationkey = n.n_nationkey AND n.n_regionkey = r.r_regionkey
 AND r.r_name = '%s' AND o.o_orderdate >= DATE '%s' AND o.o_orderdate < DATE '%s' + INTERVAL '1' year
 GROUP BY n.n_name ORDER BY revenue DESC`, p.pick("ASIA", "EUROPE", "AMERICA", "AFRICA"), d, d)
	case 6:
		d := p.date(1993, 1997)
		disc := float64(p.intIn(2, 9)) / 100
		return fmt.Sprintf(`SELECT sum(l_extendedprice * l_discount) AS revenue FROM lineitem
 WHERE l_shipdate >= DATE '%s' AND l_shipdate < DATE '%s' + INTERVAL '1' year
 AND l_discount BETWEEN %g AND %g AND l_quantity < %d`, d, d, disc-0.01, disc+0.01, p.intIn(24, 25))
	case 7:
		return fmt.Sprintf(`SELECT n1.n_name AS supp_nation, n2.n_name AS cust_nation,
 substring(l.l_shipdate, 1, 4) AS l_year, sum(l.l_extendedprice * (1 - l.l_discount)) AS revenue
 FROM supplier s, lineitem l, orders o, customer c, nation n1, nation n2
 WHERE s.s_suppkey = l.l_suppkey AND o.o_orderkey = l.l_orderkey AND c.c_custkey = o.o_custkey
 AND s.s_nationkey = n1.n_nationkey AND c.c_nationkey = n2.n_nationkey
 AND n1.n_name = '%s' AND n2.n_name = '%s'
 AND l.l_shipdate BETWEEN '1995-01-01' AND '1996-12-31'
 GROUP BY n1.n_name, n2.n_name, substring(l.l_shipdate, 1, 4)
 ORDER BY supp_nation, cust_nation, l_year`, p.pick("FRANCE", "GERMANY"), p.pick("GERMANY", "FRANCE"))
	case 8:
		return fmt.Sprintf(`SELECT substring(o.o_orderdate, 1, 4) AS o_year,
 sum(CASE WHEN n2.n_name = '%s' THEN l.l_extendedprice * (1 - l.l_discount) ELSE 0 END) / sum(l.l_extendedprice * (1 - l.l_discount)) AS mkt_share
 FROM part pa, supplier s, lineitem l, orders o, customer c, nation n1, nation n2, region r
 WHERE pa.p_partkey = l.l_partkey AND s.s_suppkey = l.l_suppkey AND l.l_orderkey = o.o_orderkey
 AND o.o_custkey = c.c_custkey AND c.c_nationkey = n1.n_nationkey AND n1.n_regionkey = r.r_regionkey
 AND r.r_name = '%s' AND s.s_nationkey = n2.n_nationkey
 AND o.o_orderdate BETWEEN '1995-01-01' AND '1996-12-31' AND pa.p_type = '%s'
 GROUP BY substring(o.o_orderdate, 1, 4) ORDER BY o_year`,
			p.pick("BRAZIL", "INDIA"), p.pick("AMERICA", "ASIA"), p.pick("ECONOMY ANODIZED STEEL", "STANDARD POLISHED TIN"))
	case 9:
		return fmt.Sprintf(`SELECT n.n_name AS nation, substring(o.o_orderdate, 1, 4) AS o_year,
 sum(l.l_extendedprice * (1 - l.l_discount) - ps.ps_supplycost * l.l_quantity) AS sum_profit
 FROM part pa, supplier s, lineitem l, partsupp ps, orders o, nation n
 WHERE s.s_suppkey = l.l_suppkey AND ps.ps_suppkey = l.l_suppkey AND ps.ps_partkey = l.l_partkey
 AND pa.p_partkey = l.l_partkey AND o.o_orderkey = l.l_orderkey AND s.s_nationkey = n.n_nationkey
 AND pa.p_name LIKE '%%%s%%'
 GROUP BY n.n_name, substring(o.o_orderdate, 1, 4) ORDER BY nation, o_year DESC`,
			p.pick("green", "red", "blue", "ivory"))
	case 10:
		d := p.date(1993, 1994)
		return fmt.Sprintf(`SELECT c.c_custkey, c.c_name, sum(l.l_extendedprice * (1 - l.l_discount)) AS revenue,
 c.c_acctbal, n.n_name, c.c_address, c.c_phone, c.c_comment
 FROM customer c, orders o, lineitem l, nation n
 WHERE c.c_custkey = o.o_custkey AND l.l_orderkey = o.o_orderkey
 AND o.o_orderdate >= DATE '%s' AND o.o_orderdate < DATE '%s' + INTERVAL '3' month
 AND l.l_returnflag = 'R' AND c.c_nationkey = n.n_nationkey
 GROUP BY c.c_custkey, c.c_name, c.c_acctbal, c.c_phone, n.n_name, c.c_address, c.c_comment
 ORDER BY revenue DESC LIMIT 20`, d, d)
	case 11:
		return fmt.Sprintf(`SELECT ps.ps_partkey, sum(ps.ps_supplycost * ps.ps_availqty) AS value
 FROM partsupp ps, supplier s, nation n
 WHERE ps.ps_suppkey = s.s_suppkey AND s.s_nationkey = n.n_nationkey AND n.n_name = '%s'
 GROUP BY ps.ps_partkey
 HAVING sum(ps.ps_supplycost * ps.ps_availqty) > (SELECT sum(ps2.ps_supplycost * ps2.ps_availqty) * %g
 FROM partsupp ps2, supplier s2, nation n2
 WHERE ps2.ps_suppkey = s2.s_suppkey AND s2.s_nationkey = n2.n_nationkey AND n2.n_name = '%s')
 ORDER BY value DESC`, p.pick("GERMANY", "JAPAN", "CANADA"), 0.0001, p.pick("GERMANY", "JAPAN", "CANADA"))
	case 12:
		d := p.date(1993, 1997)
		return fmt.Sprintf(`SELECT l.l_shipmode,
 sum(CASE WHEN o.o_orderpriority = '1-URGENT' OR o.o_orderpriority = '2-HIGH' THEN 1 ELSE 0 END) AS high_line_count,
 sum(CASE WHEN o.o_orderpriority <> '1-URGENT' AND o.o_orderpriority <> '2-HIGH' THEN 1 ELSE 0 END) AS low_line_count
 FROM orders o, lineitem l
 WHERE o.o_orderkey = l.l_orderkey AND l.l_shipmode IN ('%s', '%s')
 AND l.l_commitdate < l.l_receiptdate AND l.l_shipdate < l.l_commitdate
 AND l.l_receiptdate >= DATE '%s' AND l.l_receiptdate < DATE '%s' + INTERVAL '1' year
 GROUP BY l.l_shipmode ORDER BY l.l_shipmode`, p.pick("MAIL", "RAIL", "AIR"), p.pick("SHIP", "TRUCK", "FOB"), d, d)
	case 13:
		return fmt.Sprintf(`SELECT c_count, count(*) AS custdist FROM
 (SELECT c.c_custkey AS c_custkey, count(o.o_orderkey) AS c_count
 FROM customer c LEFT JOIN orders o ON c.c_custkey = o.o_custkey
 WHERE o.o_comment NOT LIKE '%%%s%%%s%%' GROUP BY c.c_custkey) AS c_orders
 GROUP BY c_count ORDER BY custdist DESC, c_count DESC`,
			p.pick("special", "pending"), p.pick("requests", "packages"))
	case 14:
		d := p.date(1993, 1997)
		return fmt.Sprintf(`SELECT 100.00 * sum(CASE WHEN pa.p_type LIKE 'PROMO%%' THEN l.l_extendedprice * (1 - l.l_discount) ELSE 0 END) / sum(l.l_extendedprice * (1 - l.l_discount)) AS promo_revenue
 FROM lineitem l, part pa
 WHERE l.l_partkey = pa.p_partkey AND l.l_shipdate >= DATE '%s' AND l.l_shipdate < DATE '%s' + INTERVAL '1' month`, d, d)
	case 15:
		d := p.date(1993, 1997)
		return fmt.Sprintf(`SELECT s.s_suppkey, s.s_name, s.s_address, s.s_phone, sum(l.l_extendedprice * (1 - l.l_discount)) AS total_revenue
 FROM supplier s, lineitem l
 WHERE s.s_suppkey = l.l_suppkey AND l.l_shipdate >= DATE '%s' AND l.l_shipdate < DATE '%s' + INTERVAL '3' month
 GROUP BY s.s_suppkey, s.s_name, s.s_address, s.s_phone
 ORDER BY total_revenue DESC LIMIT 1`, d, d)
	case 16:
		return fmt.Sprintf(`SELECT pa.p_brand, pa.p_type, pa.p_size, count(DISTINCT ps.ps_suppkey) AS supplier_cnt
 FROM partsupp ps, part pa
 WHERE pa.p_partkey = ps.ps_partkey AND pa.p_brand <> '%s' AND pa.p_type NOT LIKE '%s%%'
 AND pa.p_size IN (%d, %d, %d, %d)
 AND ps.ps_suppkey NOT IN (SELECT s_suppkey FROM supplier WHERE s_comment LIKE '%%Customer%%Complaints%%')
 GROUP BY pa.p_brand, pa.p_type, pa.p_size
 ORDER BY supplier_cnt DESC, pa.p_brand, pa.p_type, pa.p_size`,
			p.pick("Brand#45", "Brand#21"), p.pick("MEDIUM POLISHED", "SMALL BRUSHED"),
			p.intIn(1, 10), p.intIn(11, 20), p.intIn(21, 30), p.intIn(31, 50))
	case 17:
		return fmt.Sprintf(`SELECT sum(l.l_extendedprice) / 7.0 AS avg_yearly FROM lineitem l, part pa
 WHERE pa.p_partkey = l.l_partkey AND pa.p_brand = '%s' AND pa.p_container = '%s'
 AND l.l_quantity < (SELECT 0.2 * avg(l2.l_quantity) FROM lineitem l2 WHERE l2.l_partkey = pa.p_partkey)`,
			p.pick("Brand#23", "Brand#12"), p.pick("MED BOX", "JUMBO PKG"))
	case 18:
		return fmt.Sprintf(`SELECT c.c_name, c.c_custkey, o.o_orderkey, o.o_orderdate, o.o_totalprice, sum(l.l_quantity) AS total_qty
 FROM customer c, orders o, lineitem l
 WHERE o.o_orderkey IN (SELECT l_orderkey FROM lineitem GROUP BY l_orderkey HAVING sum(l_quantity) > %d)
 AND c.c_custkey = o.o_custkey AND o.o_orderkey = l.l_orderkey
 GROUP BY c.c_name, c.c_custkey, o.o_orderkey, o.o_orderdate, o.o_totalprice
 ORDER BY o.o_totalprice DESC, o.o_orderdate LIMIT 100`, p.intIn(300, 315))
	case 19:
		return fmt.Sprintf(`SELECT sum(l.l_extendedprice * (1 - l.l_discount)) AS revenue FROM lineitem l, part pa
 WHERE pa.p_partkey = l.l_partkey AND l.l_shipmode IN ('AIR', 'AIR REG') AND l.l_shipinstruct = 'DELIVER IN PERSON'
 AND ((pa.p_brand = '%s' AND l.l_quantity BETWEEN %d AND %d AND pa.p_size BETWEEN 1 AND 5)
 OR (pa.p_brand = '%s' AND l.l_quantity BETWEEN %d AND %d AND pa.p_size BETWEEN 1 AND 10))`,
			p.pick("Brand#12", "Brand#31"), p.intIn(1, 10), p.intIn(11, 20),
			p.pick("Brand#23", "Brand#52"), p.intIn(10, 20), p.intIn(20, 30))
	case 20:
		d := p.date(1993, 1997)
		return fmt.Sprintf(`SELECT s.s_name, s.s_address FROM supplier s, nation n
 WHERE s.s_suppkey IN (SELECT ps_suppkey FROM partsupp
 WHERE ps_partkey IN (SELECT p_partkey FROM part WHERE p_name LIKE '%s%%')
 AND ps_availqty > (SELECT 0.5 * sum(l_quantity) FROM lineitem
 WHERE l_partkey = ps_partkey AND l_suppkey = ps_suppkey
 AND l_shipdate >= DATE '%s' AND l_shipdate < DATE '%s' + INTERVAL '1' year))
 AND s.s_nationkey = n.n_nationkey AND n.n_name = '%s' ORDER BY s.s_name`,
			p.pick("forest", "azure", "lace"), d, d, p.pick("CANADA", "FRANCE", "KENYA"))
	case 21:
		return fmt.Sprintf(`SELECT s.s_name, count(*) AS numwait
 FROM supplier s, lineitem l1, orders o, nation n
 WHERE s.s_suppkey = l1.l_suppkey AND o.o_orderkey = l1.l_orderkey AND o.o_orderstatus = 'F'
 AND l1.l_receiptdate > l1.l_commitdate
 AND EXISTS (SELECT 1 FROM lineitem l2 WHERE l2.l_orderkey = l1.l_orderkey AND l2.l_suppkey <> l1.l_suppkey)
 AND NOT EXISTS (SELECT 1 FROM lineitem l3 WHERE l3.l_orderkey = l1.l_orderkey AND l3.l_suppkey <> l1.l_suppkey AND l3.l_receiptdate > l3.l_commitdate)
 AND s.s_nationkey = n.n_nationkey AND n.n_name = '%s'
 GROUP BY s.s_name ORDER BY numwait DESC, s.s_name LIMIT 100`,
			p.pick("SAUDI ARABIA", "UNITED STATES", "CHINA"))
	case 22:
		return fmt.Sprintf(`SELECT substring(c.c_phone, 1, 2) AS cntrycode, count(*) AS numcust, sum(c.c_acctbal) AS totacctbal
 FROM customer c
 WHERE substring(c.c_phone, 1, 2) IN ('%d', '%d', '%d', '%d', '%d', '%d', '%d')
 AND c.c_acctbal > (SELECT avg(c2.c_acctbal) FROM customer c2 WHERE c2.c_acctbal > 0.00
 AND substring(c2.c_phone, 1, 2) IN ('%d', '%d', '%d', '%d', '%d', '%d', '%d'))
 AND NOT EXISTS (SELECT 1 FROM orders o WHERE o.o_custkey = c.c_custkey)
 GROUP BY substring(c.c_phone, 1, 2) ORDER BY cntrycode`,
			13, 31, 23, 29, 30, 18, 17, 13, 31, 23, 29, 30, 18, 17)
	}
	panic(fmt.Sprintf("workload: TPC-H has 22 queries, got %d", q))
}

// TPCHWorkload generates n statements by cycling through all 22 templates
// with fresh parameters (the paper's provenance study used 2,208 queries —
// 22 templates × ~100 parameter instantiations).
func TPCHWorkload(n int, seed uint64) []string {
	p := NewTPCHParams(seed)
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, TPCHQuery(i%22+1, p))
	}
	return out
}
