package workload

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/opt"
)

func loadedTPCH(t testing.TB) *engine.DB {
	t.Helper()
	db := engine.NewDB()
	if err := LoadTPCH(db, 1); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestLoadTPCHShape(t *testing.T) {
	db := loadedTPCH(t)
	counts := map[string]int{
		"region": 5, "nation": 25, "supplier": 10, "customer": 150,
		"part": 20, "partsupp": 80, "orders": 1500,
	}
	for name, want := range counts {
		tab, err := db.Table(name)
		if err != nil {
			t.Fatal(err)
		}
		if tab.NumRows() != want {
			t.Errorf("%s rows = %d, want %d", name, tab.NumRows(), want)
		}
	}
	li, _ := db.Table("lineitem")
	if li.NumRows() < 1500 || li.NumRows() > 9000 {
		t.Errorf("lineitem rows = %d, want ~4 per order", li.NumRows())
	}
}

// TestExecutableTPCHQueries runs the executable template subset end to end
// over generated data and sanity-checks each result's shape.
func TestExecutableTPCHQueries(t *testing.T) {
	db := loadedTPCH(t)
	p := NewTPCHParams(99)
	for _, q := range ExecutableTPCHQueries {
		text := TPCHQuery(q, p)
		res, err := db.Exec(text)
		if err != nil {
			t.Fatalf("Q%d failed: %v\n%s", q, err, text)
		}
		switch q {
		case 1:
			// Aggregate over returnflag/linestatus: at most 6 groups, every
			// sum positive.
			if len(res.Rows) == 0 || len(res.Rows) > 6 {
				t.Errorf("Q1 groups = %d", len(res.Rows))
			}
			for _, row := range res.Rows {
				if row[2].(float64) <= 0 {
					t.Errorf("Q1 sum_qty = %v", row[2])
				}
			}
		case 6:
			if len(res.Rows) != 1 {
				t.Errorf("Q6 rows = %d", len(res.Rows))
			}
		case 3, 10:
			// Revenue queries are ORDER BY revenue DESC; verify ordering.
			revCol := 2
			if q == 3 {
				revCol = 1
			}
			for i := 1; i < len(res.Rows); i++ {
				if res.Rows[i][revCol].(float64) > res.Rows[i-1][revCol].(float64) {
					t.Errorf("Q%d not sorted by revenue", q)
					break
				}
			}
		}
	}
}

// TestQ1ManualVerification cross-checks the Q1 aggregate against a manual
// computation over raw scans.
func TestQ1ManualVerification(t *testing.T) {
	db := loadedTPCH(t)
	const cutoff = "1998-09-01"
	res, err := db.Exec(`SELECT l_returnflag, l_linestatus, sum(l_quantity) AS sq, count(*) AS n
		FROM lineitem WHERE l_shipdate <= '` + cutoff + `'
		GROUP BY l_returnflag, l_linestatus ORDER BY l_returnflag, l_linestatus`)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := db.Exec("SELECT l_returnflag, l_linestatus, l_quantity, l_shipdate FROM lineitem")
	if err != nil {
		t.Fatal(err)
	}
	type key struct{ f, s string }
	sums := map[key]float64{}
	counts := map[key]int64{}
	for _, row := range raw.Rows {
		if row[3].(string) > cutoff {
			continue
		}
		k := key{row[0].(string), row[1].(string)}
		sums[k] += row[2].(float64)
		counts[k]++
	}
	if len(res.Rows) != len(sums) {
		t.Fatalf("groups = %d, want %d", len(res.Rows), len(sums))
	}
	for _, row := range res.Rows {
		k := key{row[0].(string), row[1].(string)}
		if got := row[2].(float64); got != sums[k] {
			t.Errorf("group %v sum = %v, want %v", k, got, sums[k])
		}
		if got := row[3].(int64); got != counts[k] {
			t.Errorf("group %v count = %v, want %v", k, got, counts[k])
		}
	}
}

// TestJoinConditionExtraction verifies comma joins execute as hash joins
// via WHERE-clause equality extraction (no cross-product blowup).
func TestJoinConditionExtraction(t *testing.T) {
	db := loadedTPCH(t)
	// customer x orders x lineitem would be 150 * 1500 * ~6000 as a cross
	// product — execution succeeding at all proves the equalities were
	// extracted into join conditions.
	res, err := db.Exec(`SELECT c.c_mktsegment, count(*) AS n
		FROM customer c, orders o, lineitem l
		WHERE c.c_custkey = o.o_custkey AND l.l_orderkey = o.o_orderkey
		GROUP BY c.c_mktsegment ORDER BY c.c_mktsegment`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("segments = %d", len(res.Rows))
	}
	var total int64
	for _, row := range res.Rows {
		total += row[1].(int64)
	}
	li, _ := db.Table("lineitem")
	if total != int64(li.NumRows()) {
		t.Errorf("joined rows = %d, want %d (every lineitem exactly once)", total, li.NumRows())
	}
}

// TestOptimizedVsNaivePlansAgree is the optimizer-correctness property on
// real queries: the same query at LevelUDF and LevelFull returns identical
// results.
func TestOptimizedVsNaivePlansAgree(t *testing.T) {
	db := loadedTPCH(t)
	queries := []string{
		"SELECT sum(l_extendedprice * l_discount) AS revenue FROM lineitem WHERE l_quantity < 24",
		"SELECT o_orderpriority, count(*) AS n FROM orders WHERE o_totalprice > 200000 GROUP BY o_orderpriority ORDER BY o_orderpriority",
		"SELECT c.c_name, o.o_totalprice FROM customer c JOIN orders o ON c.c_custkey = o.o_custkey WHERE o.o_totalprice > 390000 ORDER BY o.o_totalprice DESC LIMIT 5",
	}
	for _, q := range queries {
		naive, err := db.ExecAs(q, "t", engine.ExecOptions{Level: opt.LevelUDF})
		if err != nil {
			t.Fatalf("naive %q: %v", q, err)
		}
		full, err := db.ExecAs(q, "t", engine.ExecOptions{Level: opt.LevelFull})
		if err != nil {
			t.Fatalf("full %q: %v", q, err)
		}
		if len(naive.Rows) != len(full.Rows) {
			t.Fatalf("%q: %d vs %d rows", q, len(naive.Rows), len(full.Rows))
		}
		for i := range naive.Rows {
			for c := range naive.Rows[i] {
				if naive.Rows[i][c] != full.Rows[i][c] {
					t.Fatalf("%q row %d col %d: %v vs %v", q, i, c, naive.Rows[i][c], full.Rows[i][c])
				}
			}
		}
	}
}
